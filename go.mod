module roadtrojan

go 1.22

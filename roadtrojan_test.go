package roadtrojan

import (
	"os"
	"path/filepath"
	"testing"
)

// microDetector trains a deliberately tiny detector so facade paths can be
// exercised quickly; accuracy is irrelevant here.
func microDetector(t *testing.T) *Detector {
	t.Helper()
	cfg := DetectorConfig{TrainImages: 8, TestImages: 2, Epochs: 1, BatchSize: 4, LR: 1e-3, Seed: 3}
	det, ds, err := TrainDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Train) != 8 || len(ds.Test) != 2 {
		t.Fatalf("dataset split %d/%d", len(ds.Train), len(ds.Test))
	}
	return det
}

func TestFacadeTrainSaveLoadDetect(t *testing.T) {
	if testing.Short() {
		t.Skip("facade training test skipped in -short mode")
	}
	det := microDetector(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "det.rtwt")
	if err := det.SaveDetector(path); err != nil {
		t.Fatal(err)
	}
	det2, err := LoadDetector(path)
	if err != nil {
		t.Fatal(err)
	}

	sc := NewSimScene()
	// Render a frame via the evaluation path and ensure Detect runs.
	s, err := EvaluateScenario(det2, sc, nil, Car, "fix", DigitalCondition())
	if err != nil {
		t.Fatal(err)
	}
	if s.Frames == 0 {
		t.Fatal("no frames evaluated")
	}
}

func TestLoadDetectorMissingFile(t *testing.T) {
	if _, err := LoadDetector(filepath.Join(t.TempDir(), "nope.rtwt")); err == nil {
		t.Fatal("expected error")
	}
}

func TestLoadDetectorCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.rtwt")
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDetector(path); err == nil {
		t.Fatal("expected error")
	}
}

func TestFacadeCraftAndEvaluate(t *testing.T) {
	if testing.Short() {
		t.Skip("facade attack test skipped in -short mode")
	}
	det := microDetector(t)
	sc := NewSimScene()
	cfg := DefaultAttackConfig()
	cfg.Iters = 2
	cfg.N = 2
	p, err := CraftPatch(det, sc, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.IsColored() {
		t.Fatal("ours must be monochrome")
	}
	pb, err := CraftBaselinePatch(det, sc, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !pb.IsColored() {
		t.Fatal("baseline must be colored")
	}
	cond := PhysicalCondition()
	cond.Runs = 1
	s, err := EvaluateScenario(det, sc, p, cfg.TargetClass, "fix", cond)
	if err != nil {
		t.Fatal(err)
	}
	if s.PWC < 0 || s.PWC > 100 {
		t.Fatalf("PWC = %v", s.PWC)
	}
	dir := t.TempDir()
	if err := SavePatchPNG(filepath.Join(dir, "p.png"), p); err != nil {
		t.Fatal(err)
	}
}

func TestAllChallengesList(t *testing.T) {
	chs := AllChallenges()
	if len(chs) != 8 {
		t.Fatalf("challenges = %d", len(chs))
	}
	// Returned slice is a copy: mutating it must not affect a second call.
	chs[0] = "tampered"
	if AllChallenges()[0] == "tampered" {
		t.Fatal("AllChallenges leaked internal state")
	}
}

func TestEvaluateScenarioUnknownChallengePanics(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a detector")
	}
	det := microDetector(t)
	sc := NewSimScene()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown challenge")
		}
	}()
	_, _ = EvaluateScenario(det, sc, nil, Car, "hyperspace", DigitalCondition())
}

func TestVerifyDigitalFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a detector")
	}
	det := microDetector(t)
	sc := NewSimScene()
	cfg := DefaultAttackConfig()
	cfg.Iters = 1
	cfg.N = 2
	p, err := CraftPatch(det, sc, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	frac, err := VerifyDigital(det, sc, p)
	if err != nil {
		t.Fatal(err)
	}
	if frac < 0 || frac > 1 {
		t.Fatalf("fraction = %v", frac)
	}
}

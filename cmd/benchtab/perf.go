package main

// The -perf mode renders the committed perf records (BENCH_tensor.json from
// `make bench`, BENCH_serve.json from `make bench-serve`) as aligned text
// tables — the human view of the machine-gated artifacts, kept in benchtab
// because these are the performance tables of the repo the way Tables I–VI
// are the evaluation tables of the paper. The two files have different
// shapes (kernel speedups vs serving throughput), so each gets its own
// renderer, dispatched on the fields present.

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

type perfKernelBench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	RefNsPerOp  float64 `json:"ref_ns_per_op"`
	Speedup     float64 `json:"speedup"`
}

type perfServeBench struct {
	Name        string  `json:"name"`
	Requests    int     `json:"requests"`
	RPS         float64 `json:"rps"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	BaselineRPS float64 `json:"baseline_rps"`
	Ratio       float64 `json:"ratio"`
	Gated       bool    `json:"gated"`
}

type perfFile struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Runs       int    `json:"runs"`
	Smoke      bool   `json:"smoke"`
}

// renderPerf prints one perf record; the benchmark shape decides the table.
func renderPerf(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var f struct {
		perfFile
		Benchmarks []json.RawMessage `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	mode := "full"
	if f.Smoke {
		mode = "smoke"
	}
	fmt.Printf("%s  (%s, GOMAXPROCS=%d, %d runs, %s)\n", path, f.GoVersion, f.GOMAXPROCS, f.Runs, mode)
	if len(f.Benchmarks) == 0 {
		fmt.Println("  (no benchmarks)")
		return nil
	}
	if strings.Contains(string(f.Benchmarks[0]), `"rps"`) {
		return renderServePerf(f.Benchmarks)
	}
	return renderKernelPerf(f.Benchmarks)
}

func renderKernelPerf(raw []json.RawMessage) error {
	fmt.Printf("  %-20s %14s %12s %14s %9s\n", "benchmark", "ns/op", "allocs/op", "ref ns/op", "speedup")
	for _, r := range raw {
		var b perfKernelBench
		if err := json.Unmarshal(r, &b); err != nil {
			return err
		}
		fmt.Printf("  %-20s %14.0f %12.1f %14.0f %8.2fx\n",
			b.Name, b.NsPerOp, b.AllocsPerOp, b.RefNsPerOp, b.Speedup)
	}
	return nil
}

func renderServePerf(raw []json.RawMessage) error {
	fmt.Printf("  %-20s %10s %10s %10s %9s  %s\n", "benchmark", "req/s", "p50 ms", "p99 ms", "ratio", "gate")
	for _, r := range raw {
		var b perfServeBench
		if err := json.Unmarshal(r, &b); err != nil {
			return err
		}
		gate := "recorded"
		if b.Gated {
			gate = "gated"
		}
		ratio := "-"
		if b.Ratio > 0 {
			ratio = fmt.Sprintf("%.2fx", b.Ratio)
		}
		fmt.Printf("  %-20s %10.1f %10.2f %10.2f %9s  %s\n",
			b.Name, b.RPS, b.P50Ms, b.P99Ms, ratio, gate)
	}
	return nil
}

// runPerf renders each comma-separated perf record path.
func runPerf(paths string) error {
	for i, p := range strings.Split(paths, ",") {
		if i > 0 {
			fmt.Println()
		}
		if err := renderPerf(strings.TrimSpace(p)); err != nil {
			return err
		}
	}
	return nil
}

// Command benchtab regenerates every table (I–VI) and figure (2–8) of the
// paper's evaluation on the synthetic substrate, writing text tables, CSVs
// and PNGs under -out. This is the full-quality run backing EXPERIMENTS.md;
// bench_test.go runs reduced versions of the same experiments.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"roadtrojan"

	"roadtrojan/internal/eval"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		weights = flag.String("weights", "testdata/detector.rtwt", "detector weights")
		outDir  = flag.String("out", "out/experiments", "output directory")
		iters   = flag.Int("iters", 300, "attack training iterations per patch")
		runs    = flag.Int("runs", 3, "evaluation runs to average")
		seed    = flag.Int64("seed", 7, "experiment seed")
		only    = flag.String("only", "", "run a single experiment: I..VI or figures")
		perf    = flag.String("perf", "", "render committed perf records (comma-separated paths, e.g. BENCH_tensor.json,BENCH_serve.json) instead of running experiments")
		verbose = flag.Bool("v", false, "log attack training progress")
	)
	flag.Parse()

	if *perf != "" {
		return runPerf(*perf)
	}

	det, err := roadtrojan.LoadDetector(*weights)
	if err != nil {
		return fmt.Errorf("%w (train one first: go run ./cmd/trainyolo -out %s)", err, *weights)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	var logw *os.File
	if *verbose {
		logw = os.Stderr
	}
	env := eval.NewEnv(det.Model(), *iters, *runs, *seed, logw)

	if s, err := env.CheckNoAttackBaseline(); err == nil {
		fmt.Printf("clean-scene sanity: target detect-rate %.2f, PWC %.0f%%\n", s.DetectRate, s.PWC)
	} else {
		return err
	}

	tables := []struct {
		name string
		run  func() (eval.Table, error)
	}{
		{"I", env.TableI},
		{"II", env.TableII},
		{"III", env.TableIII},
		{"IV", env.TableIV},
		{"V", env.TableV},
		{"VI", env.TableVI},
		{"alpha", env.AblationAlpha},
		{"ink", env.AblationInk},
		{"ganfree", env.AblationGANFree},
		{"defense", env.DefenseTable},
		{"shadow", env.ShadowTable},
	}
	for _, tb := range tables {
		if *only != "" && *only != tb.name && *only != "all" {
			continue
		}
		start := time.Now()
		t, err := tb.run()
		if err != nil {
			return fmt.Errorf("table %s: %w", tb.name, err)
		}
		fmt.Printf("\n%s\n(%.0fs)\n", t.String(), time.Since(start).Seconds())
		if err := os.WriteFile(filepath.Join(*outDir, "table"+tb.name+".txt"), []byte(t.String()), 0o644); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(*outDir, "table"+tb.name+".csv"), []byte(t.CSV()), 0o644); err != nil {
			return err
		}
	}

	if *only == "" || *only == "figures" || *only == "all" {
		figDir := filepath.Join(*outDir, "figures")
		if err := os.MkdirAll(figDir, 0o755); err != nil {
			return err
		}
		if err := env.Figures(figDir); err != nil {
			return fmt.Errorf("figures: %w", err)
		}
		fmt.Printf("\nfigures written to %s\n", figDir)
	}
	return nil
}

// Command evalattack scores a saved patch (or the no-attack baseline) under
// the paper's challenge settings, printing PWC / CWC per challenge.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"roadtrojan"

	"roadtrojan/internal/attack"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "evalattack:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		weights    = flag.String("weights", "testdata/detector.rtwt", "detector weights")
		patchPath  = flag.String("patch", "", "patch file (empty = no attack)")
		env        = flag.String("env", "road", "road | sim")
		mode       = flag.String("mode", "physical", "physical | digital")
		challenges = flag.String("challenges", strings.Join(roadtrojan.AllChallenges(), ","), "comma-separated challenge names")
		runs       = flag.Int("runs", 3, "runs to average")
		seed       = flag.Int64("seed", 100, "evaluation seed")
	)
	flag.Parse()

	det, err := roadtrojan.LoadDetector(*weights)
	if err != nil {
		return err
	}
	sc := roadtrojan.NewRoadScene(*seed)
	if *env == "sim" {
		sc = roadtrojan.NewSimScene()
	}
	var p *roadtrojan.Patch
	target := roadtrojan.Car
	if *patchPath != "" {
		p, err = attack.LoadPatch(*patchPath)
		if err != nil {
			return err
		}
		target = p.Cfg.TargetClass
	}
	cond := roadtrojan.PhysicalCondition()
	if *mode == "digital" {
		cond = roadtrojan.DigitalCondition()
	}
	cond.Runs = *runs
	cond.Seed = *seed

	for _, ch := range strings.Split(*challenges, ",") {
		ch = strings.TrimSpace(ch)
		if ch == "" {
			continue
		}
		s, err := roadtrojan.EvaluateScenario(det, sc, p, target, ch, cond)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %s   (frames %d, detect-rate %.2f, longest run %d)\n",
			ch, s.String(), s.Frames, s.DetectRate, s.WrongRun)
	}
	return nil
}

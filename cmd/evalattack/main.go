// Command evalattack scores a saved patch (or the no-attack baseline) under
// the paper's challenge settings, printing PWC / CWC per challenge. With
// -journal the per-run and averaged scores are also recorded as a JSONL
// journal (render with cmd/runreport).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"roadtrojan"

	"roadtrojan/internal/attack"
	"roadtrojan/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "evalattack:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		weights    = flag.String("weights", "testdata/detector.rtwt", "detector weights")
		patchPath  = flag.String("patch", "", "patch file (empty = no attack)")
		env        = flag.String("env", "road", "road | sim")
		mode       = flag.String("mode", "physical", "physical | digital")
		challenges = flag.String("challenges", strings.Join(roadtrojan.AllChallenges(), ","), "comma-separated challenge names")
		runs       = flag.Int("runs", 3, "runs to average")
		seed       = flag.Int64("seed", 100, "evaluation seed")
		journal    = flag.String("journal", "", "write a JSONL evaluation journal here (render with cmd/runreport)")
		progress   = flag.String("progress", "", "serve live /progress, /metrics and /debug/pprof on this address")
	)
	flag.Parse()

	names := splitChallenges(*challenges)
	if len(names) == 0 {
		return fmt.Errorf("-challenges is empty; valid names: %s", strings.Join(roadtrojan.AllChallenges(), ", "))
	}
	for _, ch := range names {
		if !knownChallenge(ch) {
			return fmt.Errorf("unknown challenge %q; valid names: %s", ch, strings.Join(roadtrojan.AllChallenges(), ", "))
		}
	}
	if *mode != "physical" && *mode != "digital" {
		return fmt.Errorf("unknown -mode %q (want physical or digital)", *mode)
	}
	if *env != "road" && *env != "sim" {
		return fmt.Errorf("unknown -env %q (want road or sim)", *env)
	}

	det, err := roadtrojan.LoadDetector(*weights)
	if err != nil {
		return fmt.Errorf("%w (train one first: go run ./cmd/trainyolo -out %s)", err, *weights)
	}
	sc := roadtrojan.NewRoadScene(*seed)
	if *env == "sim" {
		sc = roadtrojan.NewSimScene()
	}
	var p *roadtrojan.Patch
	target := roadtrojan.Car
	if *patchPath != "" {
		p, err = attack.LoadPatch(*patchPath)
		if err != nil {
			return err
		}
		target = p.Cfg.TargetClass
	}
	cond := roadtrojan.PhysicalCondition()
	if *mode == "digital" {
		cond = roadtrojan.DigitalCondition()
	}
	cond.Runs = *runs
	cond.Seed = *seed

	var sinks []obs.Sink
	var j *obs.Journal
	if *journal != "" {
		if dir := filepath.Dir(*journal); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return fmt.Errorf("journal dir: %w", err)
			}
		}
		if j, err = obs.OpenJournal(*journal); err != nil {
			return err
		}
		sinks = append(sinks, j)
	}
	if *progress != "" {
		prog := obs.NewProgressSink(nil)
		srv, err := obs.ServeProgress(*progress, prog)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("progress on http://%s/progress (metrics: /metrics, profiler: /debug/pprof)\n", srv.Addr)
		sinks = append(sinks, prog, obs.NewTelemetrySink(prog.Registry()))
	}
	tr := obs.New(obs.Multi(sinks...), obs.NewLogicalClock())

	for _, ch := range names {
		s, err := roadtrojan.EvaluateScenarioTraced(det, sc, p, target, ch, cond, tr)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %s   (frames %d, detect-rate %.2f, longest run %d)\n",
			ch, s.String(), s.Frames, s.DetectRate, s.WrongRun)
	}
	if j != nil {
		if err := j.Close(); err != nil {
			return err
		}
		fmt.Printf("journal written to %s (render: go run ./cmd/runreport %s)\n", *journal, *journal)
	}
	return nil
}

// splitChallenges parses the comma-separated -challenges flag, dropping
// empty segments.
func splitChallenges(s string) []string {
	var out []string
	for _, ch := range strings.Split(s, ",") {
		if ch = strings.TrimSpace(ch); ch != "" {
			out = append(out, ch)
		}
	}
	return out
}

// knownChallenge reports whether name is a valid challenge; unknown names
// would otherwise panic deep inside scene.Challenges.
func knownChallenge(name string) bool {
	for _, n := range roadtrojan.AllChallenges() {
		if n == name {
			return true
		}
	}
	return false
}

// Command scenegen renders previews of the synthetic substrate: labeled
// dataset scenes, an approach video, and the Fig. 3 angle-setting triptych.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"roadtrojan/internal/imaging"
	"roadtrojan/internal/scene"
	"roadtrojan/internal/tensor"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scenegen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		outDir = flag.String("out", "out/preview", "output directory")
		count  = flag.Int("scenes", 6, "number of dataset scenes to render")
		seed   = flag.Int64("seed", 3, "random seed")
	)
	flag.Parse()

	// Labeled dataset scenes.
	ds := scene.GenerateDataset(scene.DatasetConfig{
		Cam: scene.DefaultCamera(), NumTrain: *count, NumTest: 0, Seed: *seed,
	})
	for i, f := range ds.Train {
		img := f.Image.Clone()
		for _, o := range f.Objects {
			x0, y0, x1, y1 := o.Box.X0Y0X1Y1()
			imaging.DrawRect(img, int(x0), int(y0), int(x1), int(y1), [3]float64{1, 0, 0})
		}
		if err := imaging.SavePNG(filepath.Join(*outDir, fmt.Sprintf("scene%02d.png", i)), img); err != nil {
			return err
		}
		fmt.Printf("scene %d: %v\n", i, f.Objects)
	}

	// An approach video on the sim-room ground.
	g := scene.NewSimRoom(8, 30, 0.05)
	x0, y0, x1, y1 := g.PaintArrow(0, 15, 1.8)
	rng := rand.New(rand.NewSource(*seed))
	steps := scene.BuildTrajectory(scene.DefaultCamera(), scene.Challenges("slow")[0], 0, 15, rng)
	frames, err := scene.RenderVideo(g, steps, x0, y0, x1, y1)
	if err != nil {
		return err
	}
	for i := 0; i < len(frames); i += 4 {
		img := frames[i].Image.Clone()
		if frames[i].TargetOK {
			bx0, by0, bx1, by1 := frames[i].TargetBox.X0Y0X1Y1()
			imaging.DrawRect(img, int(bx0), int(by0), int(bx1), int(by1), [3]float64{0, 1, 0})
		}
		if err := imaging.SavePNG(filepath.Join(*outDir, fmt.Sprintf("video%02d.png", i)), img); err != nil {
			return err
		}
	}

	// Fig. 3: the three angle settings.
	var tiles []*tensor.Tensor
	for _, name := range []string{"angle-15", "angle0", "angle+15"} {
		st := scene.BuildTrajectory(scene.DefaultCamera(), scene.Challenges(name)[0], 0, 15, rng)
		fr, err := scene.RenderVideo(g, st[:1], x0, y0, x1, y1)
		if err != nil {
			return err
		}
		img := fr[0].Image.Clone()
		if fr[0].TargetOK {
			bx0, by0, bx1, by1 := fr[0].TargetBox.X0Y0X1Y1()
			imaging.DrawRect(img, int(bx0), int(by0), int(bx1), int(by1), [3]float64{0, 1, 0})
		}
		tiles = append(tiles, img)
	}
	if err := imaging.SavePNG(filepath.Join(*outDir, "fig3_angles.png"), imaging.TileHorizontal(tiles, 2)); err != nil {
		return err
	}
	// Animated approach preview.
	var gifFrames []*tensor.Tensor
	for _, f := range frames {
		gifFrames = append(gifFrames, f.Image)
	}
	if err := imaging.SaveGIF(filepath.Join(*outDir, "approach.gif"), gifFrames, 12); err != nil {
		return err
	}
	fmt.Printf("wrote previews to %s (%d video frames + approach.gif)\n", *outDir, len(frames))
	return nil
}

// Command attackgen crafts adversarial road decals against a trained
// detector: ours (GAN, monochrome, consecutive frames), the no-consecutive
// ablation, or the colored baseline [34]. It saves the patch and its print
// preview. With -journal it also records a structured JSONL run journal
// (render with cmd/runreport); with -progress it serves live training
// introspection over HTTP.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"roadtrojan"

	"roadtrojan/internal/attack"
	"roadtrojan/internal/eot"
	"roadtrojan/internal/obs"
	"roadtrojan/internal/shapes"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "attackgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		weights  = flag.String("weights", "testdata/detector.rtwt", "detector weights")
		out      = flag.String("out", "out/patch.rtwt", "patch output path")
		png      = flag.String("png", "out/patch.png", "print-preview PNG path")
		method   = flag.String("method", "ours", "ours | ours-static | baseline")
		env      = flag.String("env", "road", "road | sim")
		shape    = flag.String("shape", "star", "star | circle | square | triangle")
		n        = flag.Int("n", 4, "number of decals N")
		k        = flag.Int("k", 60, "patch print size k")
		iters    = flag.Int("iters", 300, "training iterations")
		alpha    = flag.Float64("alpha", 0.5, "attack-loss weight α")
		tricks   = flag.String("tricks", "1245", "EOT trick numbers, e.g. 1245")
		seed     = flag.Int64("seed", 1, "random seed")
		journal  = flag.String("journal", "", "write a JSONL run journal here (render with cmd/runreport); also runs a post-train digital check so the journal carries PWC/CWC")
		progress = flag.String("progress", "", "serve live /progress, /metrics and /debug/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	var nums []int
	for _, r := range *tricks {
		if r < '1' || r > '5' {
			return fmt.Errorf("bad -tricks %q: each character must be a trick number 1-5 (e.g. 1245)", *tricks)
		}
		nums = append(nums, int(r-'0'))
	}
	if *env != "road" && *env != "sim" {
		return fmt.Errorf("unknown -env %q (want road or sim)", *env)
	}

	det, err := roadtrojan.LoadDetector(*weights)
	if err != nil {
		return fmt.Errorf("%w (train one first: go run ./cmd/trainyolo -out %s)", err, *weights)
	}
	sh, err := shapes.ParseShape(*shape)
	if err != nil {
		return err
	}

	cfg := attack.DefaultConfig()
	cfg.N = *n
	cfg.K = *k
	cfg.Shape = sh
	cfg.Iters = *iters
	cfg.Alpha = *alpha
	cfg.Tricks = eot.NewSet(nums...)
	cfg.Seed = *seed

	sc := roadtrojan.NewRoadScene(*seed)
	if *env == "sim" {
		sc = roadtrojan.NewSimScene()
	}

	// Sink stack: optional journal + the legacy stdout text log + optional
	// live progress. The trace runs on a logical clock so the same seed
	// yields a byte-identical journal.
	var sinks []obs.Sink
	var j *obs.Journal
	if *journal != "" {
		if dir := filepath.Dir(*journal); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return fmt.Errorf("journal dir: %w", err)
			}
		}
		if j, err = obs.OpenJournal(*journal); err != nil {
			return err
		}
		sinks = append(sinks, j)
	}
	sinks = append(sinks, obs.NewTextSink(os.Stdout))
	if *progress != "" {
		prog := obs.NewProgressSink(nil)
		srv, err := obs.ServeProgress(*progress, prog)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("progress on http://%s/progress (metrics: /metrics, profiler: /debug/pprof)\n", srv.Addr)
		// The telemetry sink folds the same record stream into the
		// registry /metrics serves, so scrapers see live counters too.
		sinks = append(sinks, prog, obs.NewTelemetrySink(prog.Registry()))
	}
	tr := obs.New(obs.Multi(sinks...), obs.NewLogicalClock())

	var p *roadtrojan.Patch
	switch *method {
	case "ours":
		cfg.Consecutive = true
		p, err = roadtrojan.CraftPatchTraced(det, sc, cfg, tr)
	case "ours-static":
		cfg.Consecutive = false
		p, err = roadtrojan.CraftPatchTraced(det, sc, cfg, tr)
	case "baseline":
		p, err = roadtrojan.CraftBaselinePatchTraced(det, sc, cfg, tr)
	default:
		return fmt.Errorf("unknown method %q", *method)
	}
	if err != nil {
		return err
	}

	// When journaling, append a short digital evaluation so cmd/runreport
	// can show PWC/CWC next to the training curves. Two repetitions keep the
	// check cheap; the full protocol lives in cmd/evalattack.
	if j != nil {
		cond := roadtrojan.DigitalCondition()
		cond.Runs = 2
		cond.Seed = *seed
		s, err := roadtrojan.EvaluateScenarioTraced(det, sc, p, p.Cfg.TargetClass, "fix", cond, tr)
		if err != nil {
			return fmt.Errorf("post-train digital check: %w", err)
		}
		fmt.Printf("digital check (fix): %s\n", s.String())
		if err := j.Close(); err != nil {
			return err
		}
		fmt.Printf("journal written to %s (render: go run ./cmd/runreport %s)\n", *journal, *journal)
	}

	if err := attack.SavePatch(*out, p); err != nil {
		return err
	}
	if err := roadtrojan.SavePatchPNG(*png, p); err != nil {
		return err
	}
	fmt.Printf("saved %s patch to %s (preview %s)\n", *method, *out, *png)
	return nil
}

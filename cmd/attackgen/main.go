// Command attackgen crafts adversarial road decals against a trained
// detector: ours (GAN, monochrome, consecutive frames), the no-consecutive
// ablation, or the colored baseline [34]. It saves the patch and its print
// preview.
package main

import (
	"flag"
	"fmt"
	"os"

	"roadtrojan"

	"roadtrojan/internal/attack"
	"roadtrojan/internal/eot"
	"roadtrojan/internal/shapes"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "attackgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		weights = flag.String("weights", "testdata/detector.rtwt", "detector weights")
		out     = flag.String("out", "out/patch.rtwt", "patch output path")
		png     = flag.String("png", "out/patch.png", "print-preview PNG path")
		method  = flag.String("method", "ours", "ours | ours-static | baseline")
		env     = flag.String("env", "road", "road | sim")
		shape   = flag.String("shape", "star", "star | circle | square | triangle")
		n       = flag.Int("n", 4, "number of decals N")
		k       = flag.Int("k", 60, "patch print size k")
		iters   = flag.Int("iters", 300, "training iterations")
		alpha   = flag.Float64("alpha", 0.5, "attack-loss weight α")
		tricks  = flag.String("tricks", "1245", "EOT trick numbers, e.g. 1245")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	var nums []int
	for _, r := range *tricks {
		if r < '1' || r > '5' {
			return fmt.Errorf("bad -tricks %q: each character must be a trick number 1-5 (e.g. 1245)", *tricks)
		}
		nums = append(nums, int(r-'0'))
	}
	if *env != "road" && *env != "sim" {
		return fmt.Errorf("unknown -env %q (want road or sim)", *env)
	}

	det, err := roadtrojan.LoadDetector(*weights)
	if err != nil {
		return fmt.Errorf("%w (train one first: go run ./cmd/trainyolo -out %s)", err, *weights)
	}
	sh, err := shapes.ParseShape(*shape)
	if err != nil {
		return err
	}

	cfg := attack.DefaultConfig()
	cfg.N = *n
	cfg.K = *k
	cfg.Shape = sh
	cfg.Iters = *iters
	cfg.Alpha = *alpha
	cfg.Tricks = eot.NewSet(nums...)
	cfg.Seed = *seed

	sc := roadtrojan.NewRoadScene(*seed)
	if *env == "sim" {
		sc = roadtrojan.NewSimScene()
	}

	var p *roadtrojan.Patch
	switch *method {
	case "ours":
		cfg.Consecutive = true
		p, err = roadtrojan.CraftPatch(det, sc, cfg, os.Stdout)
	case "ours-static":
		cfg.Consecutive = false
		p, err = roadtrojan.CraftPatch(det, sc, cfg, os.Stdout)
	case "baseline":
		p, err = roadtrojan.CraftBaselinePatch(det, sc, cfg, os.Stdout)
	default:
		return fmt.Errorf("unknown method %q", *method)
	}
	if err != nil {
		return err
	}
	if err := attack.SavePatch(*out, p); err != nil {
		return err
	}
	if err := roadtrojan.SavePatchPNG(*png, p); err != nil {
		return err
	}
	fmt.Printf("saved %s patch to %s (preview %s)\n", *method, *out, *png)
	return nil
}

package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"roadtrojan/internal/obs"
)

var update = flag.Bool("update", false, "rewrite the testdata fixture journals and golden output")

// writeFixtures builds the committed three-process fixture: a gateway
// journal with one request (a failed attempt, then a winning one) and two
// node journals, one joining the trace under the winning attempt and one
// recording an unrelated local job. Everything runs on logical clocks, so
// the bytes are a pure function of this code.
func writeFixtures(t *testing.T, dir string) {
	t.Helper()
	journal := func(name string, fn func(tr *obs.Trace)) {
		f, err := os.Create(filepath.Join(dir, name+".jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		j := obs.NewJournal(f)
		tr := obs.New(j, obs.NewLogicalClock())
		tr.SetProcess(name)
		fn(tr)
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}

	var winCtx obs.SpanContext
	journal("gw", func(tr *obs.Trace) {
		req := tr.SpanInContext(obs.SpanContext{}, "gateway_request",
			obs.S("endpoint", "evaluate"), obs.S("method", "POST"))
		dsp := req.Child("dispatch", obs.S("key", "a1b2c3"))
		lost := dsp.Child("attempt", obs.S("node", "n1"), obs.I("pass", 0))
		_ = lost.Context() // the context travelled, but the node never answered
		lost.End(obs.S("outcome", "attempt_timeout"))
		win := dsp.Child("attempt", obs.S("node", "n2"), obs.I("pass", 0))
		winCtx = win.Context()
		win.End(obs.S("outcome", "ok"))
		dsp.End(obs.S("outcome", "ok"))
		req.End(obs.I("code", 200))
	})
	journal("n2", func(tr *obs.Trace) {
		job := tr.SpanInContext(winCtx, "fabric_job", obs.S("node", "n2"), obs.I64("job", 1))
		ev := job.Child("eval")
		run := ev.Child("run", obs.I("run", 0), obs.I("frames", 2))
		for frame := 0; frame < 2; frame++ {
			f := run.Child("forward", obs.I("frame", frame))
			f.End()
			d := run.Child("decode", obs.I("frame", frame))
			d.End()
		}
		run.End()
		ev.End()
		job.End(obs.S("code", "ok"))
	})
	journal("n1", func(tr *obs.Trace) {
		// A local root: this node did work outside any gateway trace.
		sp := tr.Span("fabric_job", obs.S("node", "n1"), obs.I64("job", 7))
		sp.End(obs.S("code", "ok"))
	})
}

func fixtureArgs(dir string) []string {
	return []string{
		"gw=" + filepath.Join(dir, "gw.jsonl"),
		"n1=" + filepath.Join(dir, "n1.jsonl"),
		"n2=" + filepath.Join(dir, "n2.jsonl"),
	}
}

func TestTracetoolGolden(t *testing.T) {
	dir := "testdata"
	golden := filepath.Join(dir, "merged.golden")
	if *update {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		writeFixtures(t, dir)
	}

	var out, errw bytes.Buffer
	if err := run(fixtureArgs(dir), &out, &errw); err != nil {
		t.Fatal(err)
	}
	if errw.Len() != 0 {
		t.Fatalf("unexpected warnings: %s", errw.String())
	}

	if *update {
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with: go test ./cmd/tracetool -run Golden -update)", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("merged output drifted from golden (regenerate with -update if intended):\n--- got\n%s\n--- want\n%s", out.Bytes(), want)
	}

	// The golden output must show one cross-process tree (gw root carrying
	// n2's subtree), the unrelated n1 root, and the analysis sections.
	for _, wantStr := range []string{
		"merged trace: 3 process(es), 2 root span(s)",
		"== causal tree",
		"== stage breakdown",
		"== critical path",
		"forward",
		"decode",
	} {
		if !strings.Contains(out.String(), wantStr) {
			t.Fatalf("golden output missing %q:\n%s", wantStr, out.String())
		}
	}
}

func TestTracetoolByteIdenticalReruns(t *testing.T) {
	render := func() string {
		var out, errw bytes.Buffer
		if err := run(fixtureArgs("testdata"), &out, &errw); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("tracetool output not byte-identical across runs:\n%s\n---\n%s", a, b)
	}
}

func TestTracetoolTornJournalWarnsAndMerges(t *testing.T) {
	// Copy the fixture, tear the last line of one journal, and merge: the
	// tool must warn on stderr and still produce a report.
	tmp := t.TempDir()
	for _, name := range []string{"gw.jsonl", "n1.jsonl", "n2.jsonl"} {
		data, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		if name == "n1.jsonl" {
			cut := bytes.LastIndexByte(data[:len(data)-1], '\n') + 1
			data = data[:cut+4] // half a record
		}
		if err := os.WriteFile(filepath.Join(tmp, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var out, errw bytes.Buffer
	args := []string{
		"gw=" + filepath.Join(tmp, "gw.jsonl"),
		"n1=" + filepath.Join(tmp, "n1.jsonl"),
		"n2=" + filepath.Join(tmp, "n2.jsonl"),
	}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errw.String(), "torn trailing line") {
		t.Fatalf("no torn-line warning, stderr: %q", errw.String())
	}
	if !strings.Contains(out.String(), "== causal tree") {
		t.Fatalf("merge failed after torn line:\n%s", out.String())
	}
}

func TestTracetoolBarePathDefaultsProcName(t *testing.T) {
	// A bare path (no proc= prefix) names the process after the file.
	tmp := t.TempDir()
	data, err := os.ReadFile(filepath.Join("testdata", "n1.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(tmp, "solo.jsonl")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	if err := run([]string{path}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "solo") {
		t.Fatalf("default process name not derived from filename:\n%s", out.String())
	}
}

// Command tracetool merges per-process JSONL trace journals (gatewayd
// -journal, servd -journal) into one causal timeline: spans from every
// process are aligned onto the root process's logical clock via the
// parent-tick annotations that cross-process span contexts leave in the
// journals, then rendered as a causal tree, a per-stage latency breakdown,
// and the critical path through each root span.
//
// Each argument is proc=path, naming the process that wrote the journal —
// the same name the process was started with (gatewayd -trace-proc, servd
// -node-id) — or a bare path, in which case the file's base name without
// extension is used. Journals are read leniently: a torn trailing line
// (writer killed mid-record) is dropped with a warning.
//
// Usage:
//
//	go run ./cmd/tracetool gw=out/gw.jsonl n1=out/n1.jsonl n2=out/n2.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"roadtrojan/internal/obs"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tracetool <proc=journal.jsonl> [proc=journal.jsonl ...]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if err := run(flag.Args(), os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "tracetool:", err)
		os.Exit(1)
	}
}

// run merges the named journals and renders the result to w; warnings
// (torn lines) go to errw. Split out of main so tests can drive it.
func run(args []string, w, errw io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("no journals given (usage: tracetool <proc=journal.jsonl> ...)")
	}
	journals := make([]obs.ProcessJournal, 0, len(args))
	for _, arg := range args {
		proc, path, ok := strings.Cut(arg, "=")
		if !ok {
			path = arg
			proc = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		}
		if proc == "" {
			return fmt.Errorf("%s: empty process name", arg)
		}
		recs, warning, err := readJournal(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if warning != "" {
			fmt.Fprintf(errw, "tracetool: %s: %s\n", path, warning)
		}
		journals = append(journals, obs.ProcessJournal{Proc: proc, Records: recs})
	}
	m, err := obs.MergeTrace(journals)
	if err != nil {
		return err
	}
	return obs.RenderMerged(w, m)
}

func readJournal(path string) ([]obs.JournalRecord, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	return obs.ReadJournalLenient(f)
}

// Command trainyolo generates the synthetic road dataset, trains the victim
// YOLOv3-tiny-style detector from scratch, reports its test accuracy, and
// saves the weights for the attack experiments.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"roadtrojan/internal/nn"
	"roadtrojan/internal/scene"
	"roadtrojan/internal/yolo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "trainyolo:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out      = flag.String("out", "testdata/detector.rtwt", "weights output path")
		epochs   = flag.Int("epochs", 30, "training epochs")
		numTrain = flag.Int("train", 1000, "training images (paper: 1000)")
		numTest  = flag.Int("test", 71, "test images (paper: 71)")
		batch    = flag.Int("batch", 16, "batch size")
		lr       = flag.Float64("lr", 1e-3, "learning rate")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	fmt.Printf("generating dataset: %d train / %d test images\n", *numTrain, *numTest)
	ds := scene.GenerateDataset(scene.DatasetConfig{
		Cam: scene.DefaultCamera(), NumTrain: *numTrain, NumTest: *numTest, Seed: *seed,
	})

	rng := rand.New(rand.NewSource(*seed + 1))
	model := yolo.New(rng, yolo.DefaultConfig())
	fmt.Printf("detector parameters: %d\n", nn.CountParams(model.Params()))

	cfg := yolo.TrainConfig{
		Epochs: *epochs, BatchSize: *batch, LR: *lr, Seed: *seed + 2,
		Weights: yolo.DefaultLossWeights(), Log: os.Stdout,
	}
	if _, err := yolo.Train(model, ds, cfg); err != nil {
		return err
	}

	train := yolo.Evaluate(model, ds.Train[:min(len(ds.Train), 100)], yolo.DefaultDecode())
	test := yolo.Evaluate(model, ds.Test, yolo.DefaultDecode())
	fmt.Printf("train(100): recall %.3f class-acc %.3f fp %d\n", train.Recall(), train.ClassAccuracy(), train.FalsePositives)
	fmt.Printf("test:       recall %.3f class-acc %.3f fp %d (objects %d)\n", test.Recall(), test.ClassAccuracy(), test.FalsePositives, test.Objects)

	if err := nn.SaveStateFile(*out, model.State()); err != nil {
		return err
	}
	fmt.Printf("saved weights to %s\n", *out)
	return nil
}

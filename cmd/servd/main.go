// Command servd runs the concurrent patch-evaluation service: a worker pool
// of detector replicas behind POST /v1/detect, POST /v1/evaluate,
// GET /healthz and GET /metrics. With -fabric it additionally joins the
// distributed eval fabric, serving the same executor over the framed node
// protocol so a gatewayd can shard jobs onto it. SIGTERM/SIGINT drain
// gracefully: the listeners stop accepting, in-flight evaluations finish,
// then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"roadtrojan"

	"roadtrojan/internal/fabric"
	"roadtrojan/internal/obs"
	"roadtrojan/internal/serve"
	"roadtrojan/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "servd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		fabricAddr = flag.String("fabric", "", "fabric node listen address (empty = fabric disabled)")
		nodeID     = flag.String("node-id", "", "fabric node identity (default: the fabric listen address)")
		weights    = flag.String("weights", "testdata/detector.rtwt", "detector weights")
		workers    = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 0, "job queue capacity (0 = 2×workers)")
		cache      = flag.Int("cache", 128, "evaluation result cache entries (negative disables)")
		cacheBytes = flag.Int64("cache-bytes", 0, "evaluation result cache byte budget (0 = 64 MiB, negative = entries-only accounting)")
		batchSize  = flag.Int("batch-size", 0, "micro-batch size: coalesce up to this many concurrent requests per dispatch (0 or 1 = no batching)")
		batchWait  = flag.Duration("batch-deadline", 0, "longest a parked request waits for its micro-batch to fill (0 = 2ms)")
		timeout    = flag.Duration("timeout", 2*time.Minute, "per-job deadline")
		drain      = flag.Duration("drain", 30*time.Second, "graceful shutdown budget")
		pprofOn    = flag.Bool("pprof", false, "expose /debug/pprof (off by default: the profiler leaks operational detail, enable only on trusted networks)")
		journal    = flag.String("journal", "", "write a JSONL trace journal here (merge across processes with cmd/tracetool)")
	)
	flag.Parse()

	det, err := roadtrojan.LoadDetector(*weights)
	if err != nil {
		return fmt.Errorf("load detector: %w (train one first: go run ./cmd/trainyolo -out %s)", err, *weights)
	}

	// Tracing: spans journal under the node's identity so cmd/tracetool can
	// merge this process's journal with the gateway's into one causal tree.
	// The logical clock makes journal bytes a function of event order alone.
	var tr *obs.Trace
	if *journal != "" {
		j, err := obs.OpenJournal(*journal)
		if err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		defer j.Close()
		tr = obs.New(j, obs.NewLogicalClock())
		proc := *nodeID
		if proc == "" {
			proc = "servd"
		}
		tr.SetProcess(proc)
		fmt.Printf("servd: tracing to %s as process %q\n", *journal, proc)
	}

	cfg := serve.Config{
		Workers: *workers, QueueSize: *queue, CacheSize: *cache, CacheBytes: *cacheBytes,
		BatchSize: *batchSize, BatchDeadline: *batchWait, JobTimeout: *timeout,
		EnablePprof: *pprofOn, Trace: tr,
	}
	// One executor (worker pool + cache) behind both transports: the HTTP
	// server and, when -fabric is set, the framed node protocol.
	exec := serve.NewExecutor(det.Model(), cfg, nil)
	s := serve.NewWith(exec, cfg)

	// build_info follows the Prometheus convention: a constant-1 gauge whose
	// labels carry the build identity, so dashboards can join on it.
	s.Metrics().Gauge("roadtrojan_build_info", "build identity of this servd process",
		telemetry.Labels{"go_version": runtime.Version(), "module": "roadtrojan"}).Set(1)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 2)
	listeners := 1
	go func() { errc <- s.ListenAndServe(*addr) }()
	fmt.Printf("servd: listening on %s (weights %s)\n", *addr, *weights)
	if *pprofOn {
		fmt.Printf("servd: profiler exposed at /debug/pprof\n")
	}
	if *batchSize > 1 {
		wait := *batchWait
		if wait <= 0 {
			wait = 2 * time.Millisecond
		}
		fmt.Printf("servd: micro-batching up to %d requests per dispatch (deadline %s)\n", *batchSize, wait)
	}

	var node *fabric.Node
	if *fabricAddr != "" {
		node = fabric.NewNode(exec, fabric.NodeConfig{ID: *nodeID, Trace: tr})
		listeners++
		go func() { errc <- node.Listen(*fabricAddr) }()
		fmt.Printf("servd: fabric node listening on %s\n", *fabricAddr)
	}

	select {
	case err := <-errc:
		listeners--
		if err != nil {
			return err
		}
	case <-ctx.Done():
	}
	fmt.Println("servd: draining...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if node != nil {
		if err := node.Close(shutdownCtx); err != nil {
			return fmt.Errorf("fabric shutdown: %w", err)
		}
	}
	if err := s.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := exec.Close(shutdownCtx); err != nil {
		return fmt.Errorf("executor shutdown: %w", err)
	}
	for ; listeners > 0; listeners-- {
		if err := <-errc; err != nil {
			return err
		}
	}
	fmt.Println("servd: drained, bye")
	return nil
}

// Command servd runs the concurrent patch-evaluation service: a worker pool
// of detector replicas behind POST /v1/detect, POST /v1/evaluate,
// GET /healthz and GET /metrics. SIGTERM/SIGINT drain gracefully: the
// listener stops accepting, in-flight evaluations finish, then the process
// exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"roadtrojan"

	"roadtrojan/internal/serve"
	"roadtrojan/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "servd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		weights = flag.String("weights", "testdata/detector.rtwt", "detector weights")
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 0, "job queue capacity (0 = 2×workers)")
		cache   = flag.Int("cache", 128, "evaluation result cache entries (negative disables)")
		timeout = flag.Duration("timeout", 2*time.Minute, "per-job deadline")
		drain   = flag.Duration("drain", 30*time.Second, "graceful shutdown budget")
		pprofOn = flag.Bool("pprof", false, "expose /debug/pprof (off by default: the profiler leaks operational detail, enable only on trusted networks)")
	)
	flag.Parse()

	det, err := roadtrojan.LoadDetector(*weights)
	if err != nil {
		return fmt.Errorf("load detector: %w (train one first: go run ./cmd/trainyolo -out %s)", err, *weights)
	}

	s := serve.New(det.Model(), serve.Config{
		Workers: *workers, QueueSize: *queue, CacheSize: *cache, JobTimeout: *timeout,
		EnablePprof: *pprofOn,
	})

	// build_info follows the Prometheus convention: a constant-1 gauge whose
	// labels carry the build identity, so dashboards can join on it.
	s.Metrics().Gauge("roadtrojan_build_info", "build identity of this servd process",
		telemetry.Labels{"go_version": runtime.Version(), "module": "roadtrojan"}).Set(1)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- s.ListenAndServe(*addr) }()
	fmt.Printf("servd: listening on %s (weights %s)\n", *addr, *weights)
	if *pprofOn {
		fmt.Printf("servd: profiler exposed at /debug/pprof\n")
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Println("servd: draining...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := s.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil {
		return err
	}
	fmt.Println("servd: drained, bye")
	return nil
}

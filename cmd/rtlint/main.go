// Command rtlint runs the repository's invariant checks (internal/analysis)
// over every package in the module:
//
//	go run ./cmd/rtlint ./...
//
// It loads and type-checks the module with only the standard library, runs
// the sharedforward, globalrand, floateq, panicpolicy and gradcoverage
// checks, subtracts the committed baseline (rtlint.baseline, if present),
// and exits non-zero when any new finding remains. Per-line suppressions
// use `//rtlint:ignore <check> <reason>`.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"roadtrojan/internal/analysis"
)

func main() {
	var (
		baselinePath  = flag.String("baseline", "rtlint.baseline", "baseline file of grandfathered findings (relative to the module root; missing file = empty)")
		writeBaseline = flag.Bool("write-baseline", false, "rewrite the baseline file from the current findings and exit 0")
		checkList     = flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
		list          = flag.Bool("list", false, "list the registered checks and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: rtlint [flags] [./...]\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	checks := analysis.AllChecks()
	if *list {
		for _, c := range checks {
			fmt.Printf("%-14s %s\n", c.Name, c.Doc)
		}
		return
	}
	if *checkList != "" {
		byName := map[string]analysis.Check{}
		for _, c := range checks {
			byName[c.Name] = c
		}
		checks = checks[:0]
		for _, name := range strings.Split(*checkList, ",") {
			c, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fatalf("unknown check %q (try -list)", name)
			}
			checks = append(checks, c)
		}
	}

	root, err := findModuleRoot()
	if err != nil {
		fatalf("%v", err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fatalf("%v", err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fatalf("%v", err)
	}
	pkgs = filterPatterns(pkgs, loader.Module(), flag.Args())

	cfg := analysis.DefaultConfig(loader.Module())
	findings := analysis.Run(cfg, pkgs, checks)

	blPath := *baselinePath
	if !filepath.IsAbs(blPath) {
		blPath = filepath.Join(root, blPath)
	}
	if *writeBaseline {
		if err := analysis.WriteBaseline(blPath, findings, root); err != nil {
			fatalf("writing baseline: %v", err)
		}
		fmt.Printf("rtlint: wrote %d finding(s) to %s\n", len(findings), blPath)
		return
	}
	baseline, err := analysis.LoadBaseline(blPath)
	if err != nil {
		fatalf("loading baseline: %v", err)
	}
	fresh := baseline.Filter(findings, root)
	for _, f := range fresh {
		rel, err := filepath.Rel(root, f.Pos.Filename)
		if err != nil {
			rel = f.Pos.Filename
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", filepath.ToSlash(rel), f.Pos.Line, f.Pos.Column, f.Check, f.Msg)
	}
	if n := len(fresh); n > 0 {
		fmt.Fprintf(os.Stderr, "rtlint: %d finding(s) not covered by the baseline\n", n)
		os.Exit(1)
	}
}

// filterPatterns keeps packages matching the command-line patterns. The
// forms understood are "./..." / "all" (everything), "./dir/..." (subtree)
// and "./dir" or an import path (exact). No patterns means everything.
func filterPatterns(pkgs []*analysis.Pkg, module string, patterns []string) []*analysis.Pkg {
	if len(patterns) == 0 {
		return pkgs
	}
	keep := func(p *analysis.Pkg) bool {
		for _, pat := range patterns {
			if pat == "./..." || pat == "..." || pat == "all" {
				return true
			}
			pat = strings.TrimPrefix(pat, "./")
			if sub, ok := strings.CutSuffix(pat, "/..."); ok {
				if p.Path == module+"/"+sub || strings.HasPrefix(p.Path, module+"/"+sub+"/") {
					return true
				}
				continue
			}
			if p.Path == pat || p.Path == module+"/"+pat || (pat == "." && p.Path == module) {
				return true
			}
		}
		return false
	}
	var out []*analysis.Pkg
	for _, p := range pkgs {
		if keep(p) {
			out = append(out, p)
		}
	}
	return out
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("rtlint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rtlint: "+format+"\n", args...)
	os.Exit(1)
}

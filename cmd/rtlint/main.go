// Command rtlint runs the repository's invariant checks (internal/analysis)
// over every package in the module:
//
//	go run ./cmd/rtlint ./...
//
// It loads and type-checks the module with only the standard library, runs
// the syntactic checks (sharedforward, globalrand, floateq, panicpolicy,
// gradcoverage) and the CFG/dataflow checks (goroutinelife, lockheld,
// ctxflow), subtracts the committed baseline (rtlint.baseline, if present),
// and exits non-zero when any new finding remains. Per-line suppressions
// use `//rtlint:ignore <check> <reason>`. -json emits a machine-readable
// report on stdout; -timing prints a per-check wall-clock breakdown.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"roadtrojan/internal/analysis"
)

// jsonReport is the -json schema: stable field names so CI artifacts can
// be diffed across runs.
type jsonReport struct {
	Module    string        `json:"module"`
	Checks    []string      `json:"checks"`
	Findings  []jsonFinding `json:"findings"`
	Baselined int           `json:"baselined"`
	Stale     []string      `json:"stale_baseline,omitempty"`
	TimingMS  []jsonTiming  `json:"timing_ms,omitempty"`
}

type jsonFinding struct {
	File  string `json:"file"`
	Line  int    `json:"line"`
	Col   int    `json:"col"`
	Check string `json:"check"`
	Msg   string `json:"msg"`
}

type jsonTiming struct {
	Check    string  `json:"check"`
	MS       float64 `json:"ms"`
	Findings int     `json:"findings"`
}

func main() {
	var (
		baselinePath  = flag.String("baseline", "rtlint.baseline", "baseline file of grandfathered findings (relative to the module root; missing file = empty)")
		writeBaseline = flag.Bool("write-baseline", false, "rewrite the baseline file from the current findings and exit 0")
		checkList     = flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
		list          = flag.Bool("list", false, "list the registered checks and exit")
		jsonOut       = flag.Bool("json", false, "emit a machine-readable report on stdout instead of plain findings")
		timing        = flag.Bool("timing", false, "print a per-check wall-clock breakdown on stderr")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: rtlint [flags] [./...]\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	checks := analysis.AllChecks()
	if *list {
		for _, c := range checks {
			fmt.Printf("%-14s %s\n", c.Name, c.Doc)
		}
		return
	}
	if *checkList != "" {
		byName := map[string]analysis.Check{}
		for _, c := range checks {
			byName[c.Name] = c
		}
		checks = checks[:0]
		for _, name := range strings.Split(*checkList, ",") {
			c, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fatalf("unknown check %q (try -list)", name)
			}
			checks = append(checks, c)
		}
	}

	root, err := findModuleRoot()
	if err != nil {
		fatalf("%v", err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fatalf("%v", err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fatalf("%v", err)
	}
	pkgs = filterPatterns(pkgs, loader.Module(), flag.Args())

	cfg := analysis.DefaultConfig(loader.Module())
	findings, timings := analysis.RunTimed(cfg, pkgs, checks)
	if *timing {
		for _, tm := range timings {
			fmt.Fprintf(os.Stderr, "rtlint: %-14s %8.1fms  %d finding(s)\n", tm.Name, float64(tm.Elapsed.Microseconds())/1000, tm.Findings)
		}
	}

	blPath := *baselinePath
	if !filepath.IsAbs(blPath) {
		blPath = filepath.Join(root, blPath)
	}
	if *writeBaseline {
		if err := analysis.WriteBaseline(blPath, findings, root); err != nil {
			fatalf("writing baseline: %v", err)
		}
		fmt.Printf("rtlint: wrote %d finding(s) to %s\n", len(findings), blPath)
		return
	}
	baseline, err := analysis.LoadBaseline(blPath)
	if err != nil {
		fatalf("loading baseline: %v", err)
	}
	fresh := baseline.Filter(findings, root)
	stale := baseline.Stale(findings, root)
	for _, key := range stale {
		fmt.Fprintf(os.Stderr, "rtlint: stale baseline entry (violation fixed — prune it): %s\n", key)
	}

	if *jsonOut {
		report := jsonReport{
			Module:    loader.Module(),
			Checks:    []string{},
			Findings:  []jsonFinding{},
			Baselined: len(findings) - len(fresh),
			Stale:     stale,
		}
		for _, c := range checks {
			report.Checks = append(report.Checks, c.Name)
		}
		for _, f := range fresh {
			report.Findings = append(report.Findings, jsonFinding{
				File:  relPath(root, f.Pos.Filename),
				Line:  f.Pos.Line,
				Col:   f.Pos.Column,
				Check: f.Check,
				Msg:   f.Msg,
			})
		}
		for _, tm := range timings {
			report.TimingMS = append(report.TimingMS, jsonTiming{
				Check:    tm.Name,
				MS:       float64(tm.Elapsed.Microseconds()) / 1000,
				Findings: tm.Findings,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fatalf("encoding report: %v", err)
		}
	} else {
		for _, f := range fresh {
			fmt.Printf("%s:%d:%d: %s: %s\n", relPath(root, f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Check, f.Msg)
		}
	}
	if n := len(fresh); n > 0 {
		fmt.Fprintf(os.Stderr, "rtlint: %d finding(s) not covered by the baseline\n", n)
		os.Exit(1)
	}
}

// relPath renders file relative to the module root with forward slashes,
// matching the baseline key format.
func relPath(root, file string) string {
	rel, err := filepath.Rel(root, file)
	if err != nil {
		rel = file
	}
	return filepath.ToSlash(rel)
}

// filterPatterns keeps packages matching the command-line patterns. The
// forms understood are "./..." / "all" (everything), "./dir/..." (subtree)
// and "./dir" or an import path (exact). No patterns means everything.
func filterPatterns(pkgs []*analysis.Pkg, module string, patterns []string) []*analysis.Pkg {
	if len(patterns) == 0 {
		return pkgs
	}
	keep := func(p *analysis.Pkg) bool {
		for _, pat := range patterns {
			if pat == "./..." || pat == "..." || pat == "all" {
				return true
			}
			pat = strings.TrimPrefix(pat, "./")
			if sub, ok := strings.CutSuffix(pat, "/..."); ok {
				if p.Path == module+"/"+sub || strings.HasPrefix(p.Path, module+"/"+sub+"/") {
					return true
				}
				continue
			}
			if p.Path == pat || p.Path == module+"/"+pat || (pat == "." && p.Path == module) {
				return true
			}
		}
		return false
	}
	var out []*analysis.Pkg
	for _, p := range pkgs {
		if keep(p) {
			out = append(out, p)
		}
	}
	return out
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("rtlint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rtlint: "+format+"\n", args...)
	os.Exit(1)
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// The golden pair lives with the obs package; runreport is a thin shell
// over obs.ReadJournal + BuildReport + Render, so the same fixture pins the
// end-to-end CLI path.
const sampleDir = "../../internal/obs/testdata"

func TestRunRendersGoldenReport(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{filepath.Join(sampleDir, "sample.jsonl")}, &buf); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join(sampleDir, "sample.report.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("report drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestRunRejectsMissingArgs(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Fatal("want usage error for empty args")
	}
}

func TestRunRejectsBadJournal(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(bad, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bad}, &bytes.Buffer{}); err == nil {
		t.Fatal("want error for malformed journal")
	}
}

func TestRunMultipleJournalsAreHeadered(t *testing.T) {
	p := filepath.Join(sampleDir, "sample.jsonl")
	var buf bytes.Buffer
	if err := run([]string{p, p}, &buf); err != nil {
		t.Fatal(err)
	}
	if got := bytes.Count(buf.Bytes(), []byte("== ")); got != 2 {
		t.Fatalf("want 2 per-file headers, got %d:\n%s", got, buf.Bytes())
	}
}

// Command runreport renders a JSONL run journal (written by cmd/attackgen
// or cmd/evalattack via -journal) into a human-readable summary: one table
// row per restart segment with loss statistics, ASCII sparklines of the
// loss curves, the verification history, and the evaluation's PWC/CWC.
//
// Usage:
//
//	go run ./cmd/runreport out/run.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"roadtrojan/internal/obs"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: runreport <journal.jsonl>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if err := run(flag.Args(), os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "runreport:", err)
		os.Exit(1)
	}
}

// run renders each journal named in args to w. Split out of main so the
// golden test can drive it.
func run(args []string, w io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("no journal file given (usage: runreport <journal.jsonl>)")
	}
	for i, path := range args {
		if i > 0 {
			fmt.Fprintln(w)
		}
		if len(args) > 1 {
			fmt.Fprintf(w, "== %s ==\n", path)
		}
		if err := render(path, w); err != nil {
			return err
		}
	}
	return nil
}

func render(path string, w io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	// Lenient read: a journal whose writer was killed mid-line (crash, disk
	// full) still renders — the torn trailing line is dropped with a warning
	// instead of failing the whole report.
	recs, warning, err := obs.ReadJournalLenient(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if warning != "" {
		fmt.Fprintf(os.Stderr, "runreport: %s: %s\n", path, warning)
	}
	obs.BuildReport(recs).Render(w)
	return nil
}

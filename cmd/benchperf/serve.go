package main

// The -serve suite: end-to-end serving benchmarks over the executor core,
// written to BENCH_serve.json. Where the tensor suite compares production
// kernels against the preserved reference kernels, the serving suite compares
// the micro-batched request path against the one-request-at-a-time path in
// the same process — the headline, machine-comparable number is the RPS ratio
// between the two, measured with 8 concurrent clients whose requests collapse
// onto 2 unique patch digests per round (the fabric's cache-affinity routing
// concentrates duplicates exactly like this). On a single-core host the win
// is within-batch dedupe, not parallelism, so the ratio is stable across
// machine sizes. Latency percentiles and warm-cache throughput are recorded
// for the record but never gated.

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"roadtrojan/internal/eval"
	"roadtrojan/internal/metrics"
	"roadtrojan/internal/serve"
	"roadtrojan/internal/yolo"
)

// serveRatioFloor is the acceptance floor for the gated batched-vs-single
// benchmark: micro-batching must at least double throughput on the duplicate
// -heavy workload, or the coalescer is not earning its latency cost.
const serveRatioFloor = 2.0

// serveRatioDropTolerance mirrors speedupDropTolerance for the serving gate:
// how far the batched/single RPS ratio may fall below the previously
// committed value before the run fails.
const serveRatioDropTolerance = 0.25

type serveResult struct {
	Name     string  `json:"name"`
	Requests int     `json:"requests"`
	RPS      float64 `json:"rps"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
	// BaselineRPS is the single-request-path throughput for ratio
	// benchmarks (zero when the benchmark has no baseline window).
	BaselineRPS float64 `json:"baseline_rps,omitempty"`
	// Ratio is the median over runs of batched RPS / baseline RPS — the
	// gated, machine-comparable figure.
	Ratio float64 `json:"ratio,omitempty"`
	// Gated marks the benchmarks the regression gate enforces; the rest are
	// informational (latency and warm-cache numbers move with the host).
	Gated bool `json:"gated"`
}

type serveBenchFile struct {
	SchemaVersion int           `json:"schema_version"`
	GoVersion     string        `json:"go_version"`
	GOMAXPROCS    int           `json:"gomaxprocs"`
	Runs          int           `json:"runs"`
	Smoke         bool          `json:"smoke,omitempty"`
	Benchmarks    []serveResult `json:"benchmarks"`
}

// serveEvalWork is the deterministic stand-in for one evaluation: enough
// floating-point work (a fraction of a millisecond) that dispatch overhead is
// a small part of each request, so the benchmark measures batching policy
// rather than stub speed.
func serveEvalWork(seed int64) float64 {
	s := float64(seed)
	for i := 0; i < 1_000_000; i++ {
		s += math.Sqrt(float64(i&1023) + 1)
	}
	return s
}

func serveStubJob(j eval.Job) (eval.Detail, error) {
	return eval.Detail{Score: metrics.Score{PWC: serveEvalWork(j.Cond.Seed)}}, nil
}

// serveExecCfg is the shared executor shape; batch toggles the coalescer and
// cacheEntries toggles the result cache (-1 for the cold-cache windows).
func serveExecCfg(batch, cacheEntries int) serve.Config {
	return serve.Config{
		Workers:       runtime.GOMAXPROCS(0),
		QueueSize:     64,
		CacheSize:     cacheEntries,
		BatchSize:     batch,
		BatchDeadline: 2 * time.Millisecond,
		Job:           serveStubJob,
	}
}

// loadWindow fires rounds of concurrent evaluate requests at an executor and
// reports throughput plus per-request latency percentiles. Each round's
// clients start together (a barrier per round), modelling the gateway
// delivering a burst; seedFor controls how many distinct cache keys a round
// contains.
func loadWindow(e *serve.Executor, clients, rounds int, seedFor func(round, client int) int64) (rps, p50, p99 float64, n int, err error) {
	lat := make([]time.Duration, 0, clients*rounds)
	var mu sync.Mutex
	var firstErr error
	start := time.Now()
	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(r, c int) {
				defer wg.Done()
				req := serve.EvalRequest{
					Scene: "road", Challenge: "fix", Mode: "digital",
					Runs: 1, Seed: seedFor(r, c), Target: 2,
				}
				t0 := time.Now()
				_, reqErr := e.Evaluate(context.Background(), req)
				d := time.Since(t0)
				mu.Lock()
				lat = append(lat, d)
				if reqErr != nil && firstErr == nil {
					firstErr = reqErr
				}
				mu.Unlock()
			}(r, c)
		}
		wg.Wait()
	}
	total := time.Since(start)
	if firstErr != nil {
		return 0, 0, 0, 0, firstErr
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return float64(len(lat)) / total.Seconds(),
		quantileMs(lat, 0.50), quantileMs(lat, 0.99), len(lat), nil
}

func quantileMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i].Nanoseconds()) / 1e6
}

// serveMain runs the serving suite, writes the bench file, and gates against
// the previously committed one at prevPath. Returns the process exit code.
func serveMain(out, prevPath string, runs int, smoke bool) int {
	prev := readPreviousServe(prevPath)
	file := serveBenchFile{
		SchemaVersion: 1,
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Runs:          runs,
		Smoke:         smoke,
	}

	evalRounds, warmRounds, detectRounds := 12, 12, 3
	if smoke {
		evalRounds, warmRounds, detectRounds = 4, 4, 1
	}

	batch8, err := benchEvalBatch8(runs, evalRounds)
	if err == nil {
		file.Benchmarks = append(file.Benchmarks, batch8)
		var warm serveResult
		if warm, err = benchEvalWarmCache(runs, warmRounds); err == nil {
			file.Benchmarks = append(file.Benchmarks, warm)
			var det serveResult
			if det, err = benchDetectBatch(runs, detectRounds); err == nil {
				file.Benchmarks = append(file.Benchmarks, det)
			}
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchperf: serve suite: %v\n", err)
		return 1
	}
	for _, r := range file.Benchmarks {
		gate := "recorded"
		if r.Gated {
			gate = "gated"
		}
		fmt.Printf("%-20s %8.1f req/s   p50 %7.2fms  p99 %7.2fms   ratio %.2fx (%s)\n",
			r.Name, r.RPS, r.P50Ms, r.P99Ms, r.Ratio, gate)
	}

	if err := writeServeFile(out, file); err != nil {
		fmt.Fprintf(os.Stderr, "benchperf: %v\n", err)
		return 1
	}
	fmt.Printf("wrote %s\n", out)

	if msgs := compareServe(prev, file); len(msgs) > 0 {
		for _, m := range msgs {
			fmt.Fprintln(os.Stderr, "benchperf: "+m)
		}
		return 1
	}
	return 0
}

// benchEvalBatch8 is the gated benchmark: 8 concurrent clients, 2 unique
// patch digests per round, fresh seeds every round, result cache disabled in
// both windows — the cold-cache scenario, where every burst of duplicates
// reaches the executor before any result exists. The batched executor wins by
// collapsing the six duplicates in each burst into the two unique runs; the
// single-request path runs all eight. (With the cache on, a single-core host
// serializes clients against the worker and the baseline accidentally hits
// the cache mid-burst, hiding exactly the concurrent-miss race batching
// exists to win.) Baseline and batched windows run back-to-back within each
// run and the ratio is the median of per-run ratios, same discipline as the
// tensor suite.
func benchEvalBatch8(runs, rounds int) (serveResult, error) {
	const clients, unique = 8, 2
	var ratios, rpss, baselines, p50s, p99s []float64
	n := 0
	for r := 0; r < runs; r++ {
		seedBase := int64(1 + r*10_000)
		seedFor := func(round, client int) int64 {
			return seedBase + int64(round*unique+client%unique)
		}
		base, _, _, _, err := measureEval(serveExecCfg(0, -1), clients, rounds, seedFor)
		if err != nil {
			return serveResult{}, err
		}
		rps, p50, p99, reqs, err := measureEval(serveExecCfg(clients, -1), clients, rounds, seedFor)
		if err != nil {
			return serveResult{}, err
		}
		n = reqs
		rpss, baselines = append(rpss, rps), append(baselines, base)
		p50s, p99s = append(p50s, p50), append(p99s, p99)
		if base > 0 {
			ratios = append(ratios, rps/base)
		}
	}
	return serveResult{
		Name: "ServeEvalBatch8", Requests: n,
		RPS: median(rpss), P50Ms: median(p50s), P99Ms: median(p99s),
		BaselineRPS: median(baselines), Ratio: median(ratios), Gated: true,
	}, nil
}

// benchEvalWarmCache measures the front-door cache path: every request after
// the priming round short-circuits before the coalescer. Informational —
// it bounds what cache-affinity routing can deliver on this host.
func benchEvalWarmCache(runs, rounds int) (serveResult, error) {
	const clients, unique = 8, 2
	var rpss, p50s, p99s []float64
	n := 0
	for r := 0; r < runs; r++ {
		seedFor := func(_, client int) int64 { return int64(1 + client%unique) }
		rps, p50, p99, reqs, err := measureEval(serveExecCfg(clients, 256), clients, rounds, seedFor)
		if err != nil {
			return serveResult{}, err
		}
		n = reqs
		rpss, p50s, p99s = append(rpss, rps), append(p50s, p50), append(p99s, p99)
	}
	return serveResult{
		Name: "ServeEvalWarmCache", Requests: n,
		RPS: median(rpss), P50Ms: median(p50s), P99Ms: median(p99s),
	}, nil
}

// measureEval builds a fresh executor for one window, drives it, and closes
// it so worker goroutines never overlap between windows.
func measureEval(cfg serve.Config, clients, rounds int, seedFor func(int, int) int64) (rps, p50, p99 float64, n int, err error) {
	rng := rand.New(rand.NewSource(8))
	det := yolo.New(rng, yolo.DefaultConfig())
	det.SetTraining(false)
	e := serve.NewExecutor(det, cfg, nil)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = e.Close(ctx)
	}()
	return loadWindow(e, clients, rounds, seedFor)
}

// benchDetectBatch compares the stacked batched forward against per-request
// forwards on real detector inference (32×32 frames, 4 concurrent clients).
// Informational: on one core the gain is im2col/matmul efficiency at N=4,
// modest by design — the dedupe-driven evaluate gate is the hard contract.
func benchDetectBatch(runs, rounds int) (serveResult, error) {
	const clients = 4
	rng := rand.New(rand.NewSource(9))
	det := yolo.New(rng, yolo.DefaultConfig())
	det.SetTraining(false)
	const h, w = 32, 32
	frames := make([][]float64, clients)
	for i := range frames {
		img := make([]float64, 3*h*w)
		for j := range img {
			img[j] = rng.Float64()
		}
		frames[i] = img
	}

	window := func(batch int) (float64, float64, float64, int, error) {
		e := serve.NewExecutor(det, serve.Config{
			Workers: runtime.GOMAXPROCS(0), QueueSize: 64,
			BatchSize: batch, BatchDeadline: 2 * time.Millisecond,
		}, nil)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			_ = e.Close(ctx)
		}()
		lat := make([]time.Duration, 0, clients*rounds)
		var mu sync.Mutex
		var firstErr error
		start := time.Now()
		for r := 0; r < rounds; r++ {
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					t0 := time.Now()
					_, reqErr := e.Detect(context.Background(),
						serve.DetectRequest{Image: frames[c], Height: h, Width: w})
					d := time.Since(t0)
					mu.Lock()
					lat = append(lat, d)
					if reqErr != nil && firstErr == nil {
						firstErr = reqErr
					}
					mu.Unlock()
				}(c)
			}
			wg.Wait()
		}
		total := time.Since(start)
		if firstErr != nil {
			return 0, 0, 0, 0, firstErr
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return float64(len(lat)) / total.Seconds(), quantileMs(lat, 0.50), quantileMs(lat, 0.99), len(lat), nil
	}

	var ratios, rpss, baselines, p50s, p99s []float64
	n := 0
	for r := 0; r < runs; r++ {
		base, _, _, _, err := window(0)
		if err != nil {
			return serveResult{}, err
		}
		rps, p50, p99, reqs, err := window(clients)
		if err != nil {
			return serveResult{}, err
		}
		n = reqs
		rpss, baselines = append(rpss, rps), append(baselines, base)
		p50s, p99s = append(p50s, p50), append(p99s, p99)
		if base > 0 {
			ratios = append(ratios, rps/base)
		}
	}
	return serveResult{
		Name: "ServeDetectBatch4", Requests: n,
		RPS: median(rpss), P50Ms: median(p50s), P99Ms: median(p99s),
		BaselineRPS: median(baselines), Ratio: median(ratios),
	}, nil
}

func readPreviousServe(path string) *serveBenchFile {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var f serveBenchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil
	}
	return &f
}

// compareServe enforces the serving gate: every gated benchmark must clear
// the absolute ratio floor, and must not fall more than
// serveRatioDropTolerance below the previously committed ratio. Latency and
// RPS numbers are host-dependent and reported as information only.
func compareServe(prev *serveBenchFile, cur serveBenchFile) []string {
	var msgs []string
	byName := map[string]serveResult{}
	if prev != nil {
		for _, r := range prev.Benchmarks {
			byName[r.Name] = r
		}
	}
	for _, r := range cur.Benchmarks {
		if !r.Gated {
			continue
		}
		if r.Ratio < serveRatioFloor {
			msgs = append(msgs, fmt.Sprintf(
				"%s: batched/single throughput ratio %.2fx below the %.1fx floor",
				r.Name, r.Ratio, serveRatioFloor))
		}
		if p, ok := byName[r.Name]; ok && p.Ratio > 0 {
			if r.Ratio < p.Ratio*(1-serveRatioDropTolerance) {
				msgs = append(msgs, fmt.Sprintf(
					"%s: throughput ratio regressed %.2fx -> %.2fx (tolerance %.0f%%)",
					r.Name, p.Ratio, r.Ratio, serveRatioDropTolerance*100))
			}
			if p.RPS > 0 {
				fmt.Printf("%-20s rps %+.1f%% vs previous file (informational)\n",
					r.Name, 100*(r.RPS-p.RPS)/p.RPS)
			}
		}
	}
	return msgs
}

func writeServeFile(path string, f serveBenchFile) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	back, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var check serveBenchFile
	if err := json.Unmarshal(back, &check); err != nil {
		return fmt.Errorf("self-check: written file does not parse: %w", err)
	}
	if len(check.Benchmarks) != len(f.Benchmarks) {
		return fmt.Errorf("self-check: written file lost benchmarks")
	}
	return nil
}

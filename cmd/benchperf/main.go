// Command benchperf measures the tensor hot path and writes the results to
// a JSON file (BENCH_tensor.json at the repo root by convention, committed
// alongside kernel changes so the perf history travels with the code).
//
// Every benchmark is timed twice in the same process: once through the
// production kernels and once through the preserved pre-optimization
// reference kernels (tensor.SetRefKernels). The headline number is the
// speedup ratio between the two — unlike raw ns/op it is comparable across
// machines, so it is the figure the regression gate checks against the
// previously committed file. Raw ns/op, allocs/op and B/op medians are
// recorded for the record but never gated (they move with the hardware).
//
// The -serve flag switches to the serving suite (see serve.go): end-to-end
// executor benchmarks of micro-batched versus one-at-a-time request handling,
// written to BENCH_serve.json and gated on the batched/single throughput
// ratio. -prev points the gate at a different previously committed file than
// -out, so CI can write a scratch artifact while comparing against the
// committed history.
//
// Usage:
//
//	go run ./cmd/benchperf -runs 5 -out BENCH_tensor.json   # full (make bench)
//	go run ./cmd/benchperf -smoke -out out/bench_smoke.json # CI smoke step
//	go run ./cmd/benchperf -serve -out BENCH_serve.json     # serving suite (make bench-serve)
//	go run ./cmd/benchperf -serve -smoke -prev BENCH_serve.json -out out/bench_serve_smoke.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"regexp"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"roadtrojan/internal/gan"
	"roadtrojan/internal/obs"
	"roadtrojan/internal/tensor"
	"roadtrojan/internal/yolo"
)

// speedupDropTolerance is how far a benchmark's ref/production speedup may
// fall below the previously committed value before benchperf fails. The
// ratio is machine-independent, but still jittery on loaded hosts; 25%
// headroom separates real kernel regressions from scheduler noise.
const speedupDropTolerance = 0.25

type result struct {
	Name           string  `json:"name"`
	Ops            int     `json:"ops"`
	NsPerOp        float64 `json:"ns_per_op"`
	AllocsPerOp    float64 `json:"allocs_per_op"`
	BytesPerOp     float64 `json:"bytes_per_op"`
	RefNsPerOp     float64 `json:"ref_ns_per_op"`
	RefAllocsPerOp float64 `json:"ref_allocs_per_op"`
	RefBytesPerOp  float64 `json:"ref_bytes_per_op"`
	// Speedup is the median over runs of the per-run ratio between the
	// reference and production windows (each run times both back-to-back).
	Speedup float64 `json:"speedup"`
}

type benchFile struct {
	SchemaVersion int      `json:"schema_version"`
	GoVersion     string   `json:"go_version"`
	GOMAXPROCS    int      `json:"gomaxprocs"`
	Runs          int      `json:"runs"`
	Smoke         bool     `json:"smoke,omitempty"`
	Benchmarks    []result `json:"benchmarks"`
}

// bench is one workload: setup builds the closures once (outside timing),
// op runs one iteration. ops/smokeOps set the per-run iteration count.
type bench struct {
	name     string
	ops      int
	smokeOps int
	setup    func() func()
}

func main() {
	out := flag.String("out", "", "output JSON path (default BENCH_tensor.json, or BENCH_serve.json with -serve)")
	runs := flag.Int("runs", 5, "timed runs per benchmark; medians are reported")
	smoke := flag.Bool("smoke", false, "single fast run per benchmark (CI gate)")
	serveSuite := flag.Bool("serve", false, "run the serving suite (micro-batched vs single-request executor) instead of the tensor suite")
	prevPath := flag.String("prev", "", "previously committed bench file to gate against (default: the -out path)")
	filter := flag.String("bench", "", "regexp selecting benchmarks to run (default all)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile covering the timed windows")
	flag.Parse()

	if *smoke {
		*runs = 1
	}
	if *runs < 1 {
		fmt.Fprintln(os.Stderr, "benchperf: -runs must be >= 1")
		os.Exit(2)
	}
	if *out == "" {
		*out = "BENCH_tensor.json"
		if *serveSuite {
			*out = "BENCH_serve.json"
		}
	}
	if *prevPath == "" {
		*prevPath = *out
	}
	if *serveSuite {
		os.Exit(serveMain(*out, *prevPath, *runs, *smoke))
	}

	var sel *regexp.Regexp
	if *filter != "" {
		var err error
		if sel, err = regexp.Compile(*filter); err != nil {
			fmt.Fprintf(os.Stderr, "benchperf: bad -bench regexp: %v\n", err)
			os.Exit(2)
		}
	}
	// profStop is called explicitly once the timed windows finish: the exit
	// paths below use os.Exit, which would skip a deferred StopCPUProfile and
	// truncate the profile.
	profStop := func() {}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchperf: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchperf: %v\n", err)
			os.Exit(2)
		}
		profStop = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}

	prev := readPrevious(*prevPath)

	file := benchFile{
		SchemaVersion: 1,
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Runs:          *runs,
		Smoke:         *smoke,
	}
	for _, b := range benches() {
		if sel != nil && !sel.MatchString(b.name) {
			continue
		}
		ops := b.ops
		if *smoke {
			ops = b.smokeOps
		}
		r := run(b, ops, *runs)
		file.Benchmarks = append(file.Benchmarks, r)
		fmt.Printf("%-20s %12.0f ns/op %8.1f allocs/op   ref %12.0f ns/op   speedup %.2fx\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.RefNsPerOp, r.Speedup)
	}
	profStop()

	if err := writeFile(*out, file); err != nil {
		fmt.Fprintf(os.Stderr, "benchperf: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)

	if msgs := compare(prev, file); len(msgs) > 0 {
		for _, m := range msgs {
			fmt.Fprintln(os.Stderr, "benchperf: "+m)
		}
		os.Exit(1)
	}
}

// benches defines the measured workloads, ordered from microkernel to full
// pipeline. All use fixed seeds so both kernel configurations see identical
// data.
func benches() []bench {
	return []bench{
		{
			name: "MatMul128", ops: 100, smokeOps: 10,
			setup: func() func() {
				rng := rand.New(rand.NewSource(1))
				a := tensor.NewRandN(rng, 1, 128, 128)
				b := tensor.NewRandN(rng, 1, 128, 128)
				return func() { tensor.MatMul(a, b) }
			},
		},
		{
			name: "Conv2DForward", ops: 10, smokeOps: 2,
			setup: func() func() {
				rng := rand.New(rand.NewSource(2))
				in := tensor.NewRandN(rng, 1, 2, 16, 64, 64)
				wt := tensor.NewRandN(rng, 0.1, 32, 16, 3, 3)
				bias := tensor.NewRandN(rng, 0.1, 32)
				return func() { tensor.Conv2D(in, wt, bias, 1, 1) }
			},
		},
		{
			name: "Conv2DBackward", ops: 8, smokeOps: 2,
			setup: func() func() {
				rng := rand.New(rand.NewSource(3))
				in := tensor.NewRandN(rng, 1, 2, 16, 32, 32)
				wt := tensor.NewRandN(rng, 0.1, 32, 16, 3, 3)
				dOut := tensor.NewRandN(rng, 1, 2, 32, 32, 32)
				dW := tensor.New(32, 16, 3, 3)
				dB := tensor.New(32)
				return func() { tensor.Conv2DBackward(in, wt, dOut, 1, 1, dW, dB) }
			},
		},
		{
			name: "DetectorInference", ops: 5, smokeOps: 1,
			setup: func() func() {
				rng := rand.New(rand.NewSource(4))
				det := yolo.New(rng, yolo.DefaultConfig())
				det.SetTraining(false)
				frame := tensor.NewRandN(rng, 0.25, 1, 3, 64, 64).AddScalar(0.5).Clamp(0, 1)
				return func() { det.Forward(frame) }
			},
		},
		{
			// The disabled-observability contract: a nil trace's typed event
			// methods must cost nothing — no allocation (AllocsPerOp 0 here)
			// and low single-digit nanoseconds — because the trainers call
			// them unconditionally inside their hot loops. The kernel-config
			// toggle does not touch this path, so the speedup hovers at 1.0;
			// the numbers that matter are allocs/op and ns/op.
			name: "ObsNoopEmit", ops: 5_000_000, smokeOps: 500_000,
			setup: func() func() {
				var tr *obs.Trace // nil = observability off
				sp := tr.Span("train")
				st := obs.IterStats{Method: "ours", Attack: 0.5, GanG: 0.1, PTarget: 0.2}
				return func() {
					st.It++
					sp.Iter(st)
					sp.EOT(obs.EOTDraw{It: st.It, Resize: 1})
					sp.Verify(obs.VerifyStats{It: st.It, Score: 0.5})
				}
			},
		},
		{
			name: "AttackIteration", ops: 3, smokeOps: 1,
			setup: func() func() {
				rng := rand.New(rand.NewSource(5))
				det := yolo.New(rng, yolo.DefaultConfig())
				det.SetTraining(true)
				g := gan.NewGenerator(rng)
				d := gan.NewDiscriminator(rng)
				z := gan.SampleZ(rand.New(rand.NewSource(6)), 1)
				frame := tensor.NewRandN(rng, 0.25, 1, 3, 64, 64).AddScalar(0.5).Clamp(0, 1)
				probeRNG := rand.New(rand.NewSource(7))
				var probe yolo.Heads
				// One generator update worth of compute: patch synthesis,
				// adversarial gradient from the discriminator, detector
				// forward/backward on the patched frame, generator backward.
				return func() {
					patch := g.Forward(z)
					_, dAdv := gan.GeneratorAdversarialGrad(d, patch)
					pasted := pastePatch(frame, patch)
					heads := det.Forward(pasted)
					if probe.Coarse == nil {
						probe.Coarse = tensor.NewRandN(probeRNG, 0.1, heads.Coarse.Shape()...)
						probe.Fine = tensor.NewRandN(probeRNG, 0.1, heads.Fine.Shape()...)
					}
					dFrame := det.Backward(probe)
					dPatch := cropGrad(dFrame, patch)
					dPatch.AddInPlace(dAdv)
					g.Backward(dPatch)
				}
			},
		},
	}
}

// pastePatch composites the grayscale [1,1,P,P] patch into the top-left
// corner of every channel of a copy of the [1,3,H,W] frame — the monochrome
// decal compositing of the attack loop without the scene machinery.
func pastePatch(frame, patch *tensor.Tensor) *tensor.Tensor {
	out := frame.Clone()
	p := patch.Dim(2)
	h, w := frame.Dim(2), frame.Dim(3)
	for c := 0; c < 3; c++ {
		for y := 0; y < p; y++ {
			dst := out.Data()[(c*h+y)*w : (c*h+y)*w+p]
			copy(dst, patch.Data()[y*p:(y+1)*p])
		}
	}
	return out
}

// cropGrad sums the patch-region gradient over the frame's channels back
// into a [1,1,P,P] patch gradient (the adjoint of pastePatch).
func cropGrad(dFrame, patch *tensor.Tensor) *tensor.Tensor {
	p := patch.Dim(2)
	h, w := dFrame.Dim(2), dFrame.Dim(3)
	out := tensor.New(1, 1, p, p)
	for c := 0; c < 3; c++ {
		for y := 0; y < p; y++ {
			src := dFrame.Data()[(c*h+y)*w : (c*h+y)*w+p]
			dst := out.Data()[y*p : (y+1)*p]
			for i, v := range src {
				dst[i] += v
			}
		}
	}
	return out
}

// run measures b for the given per-run op count under both kernel
// configurations. Production and reference windows are interleaved
// back-to-back within each run and the speedup is the median of the per-run
// ratios: on a shared host the background load drifts over seconds, so two
// adjacent windows see near-identical conditions while two blocks measured
// minutes apart do not.
func run(b bench, ops, runs int) result {
	op := b.setup()

	window := func(ref bool) (ns, allocs, bytes float64) {
		tensor.SetRefKernels(ref)
		defer tensor.SetRefKernels(false)
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		for i := 0; i < ops; i++ {
			op()
		}
		dt := time.Since(start)
		runtime.ReadMemStats(&m1)
		return float64(dt.Nanoseconds()) / float64(ops),
			float64(m1.Mallocs-m0.Mallocs) / float64(ops),
			float64(m1.TotalAlloc-m0.TotalAlloc) / float64(ops)
	}

	// Warm-up both configurations: grows arena buffers, faults in pages.
	tensor.SetRefKernels(true)
	op()
	tensor.SetRefKernels(false)
	op()

	var ns, allocs, bytes, refNs, refAllocs, refBytes, ratios []float64
	for r := 0; r < runs; r++ {
		n1, a1, b1 := window(false)
		n2, a2, b2 := window(true)
		ns, allocs, bytes = append(ns, n1), append(allocs, a1), append(bytes, b1)
		refNs, refAllocs, refBytes = append(refNs, n2), append(refAllocs, a2), append(refBytes, b2)
		if n1 > 0 {
			ratios = append(ratios, n2/n1)
		}
	}

	r := result{
		Name:           b.name,
		Ops:            ops,
		NsPerOp:        median(ns),
		AllocsPerOp:    median(allocs),
		BytesPerOp:     median(bytes),
		RefNsPerOp:     median(refNs),
		RefAllocsPerOp: median(refAllocs),
		RefBytesPerOp:  median(refBytes),
		Speedup:        median(ratios),
	}
	return r
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// readPrevious loads the previously committed bench file, if any. A missing
// or unparseable file disables the regression gate (first run, new schema).
func readPrevious(path string) *benchFile {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil
	}
	return &f
}

// speedupExempt names benchmarks that never touch the tensor kernels: the
// production and reference windows run identical code, so their ratio is
// scheduler noise and gating it would flake. Their allocation count is
// gated instead — for ObsNoopEmit, allocs/op creeping above zero means the
// disabled-observability hot path started allocating.
var speedupExempt = map[string]bool{"ObsNoopEmit": true}

// compare gates the new speedups against the previous file: a benchmark
// whose ref/production ratio fell more than speedupDropTolerance is a
// kernel regression. ns/op deltas are reported as information only.
func compare(prev *benchFile, cur benchFile) []string {
	if prev == nil {
		return nil
	}
	byName := make(map[string]result, len(prev.Benchmarks))
	for _, r := range prev.Benchmarks {
		byName[r.Name] = r
	}
	var msgs []string
	for _, r := range cur.Benchmarks {
		p, ok := byName[r.Name]
		if !ok || p.Speedup <= 0 {
			continue
		}
		if speedupExempt[r.Name] {
			if p.AllocsPerOp == 0 && r.AllocsPerOp > 0 {
				msgs = append(msgs, fmt.Sprintf(
					"%s: allocs/op regressed 0 -> %.1f (no-op path must not allocate)",
					r.Name, r.AllocsPerOp))
			}
			continue
		}
		if r.Speedup < p.Speedup*(1-speedupDropTolerance) {
			msgs = append(msgs, fmt.Sprintf(
				"%s: speedup regressed %.2fx -> %.2fx (tolerance %.0f%%)",
				r.Name, p.Speedup, r.Speedup, speedupDropTolerance*100))
		}
		if p.NsPerOp > 0 {
			fmt.Printf("%-20s ns/op %+.1f%% vs previous file (informational)\n",
				r.Name, 100*(r.NsPerOp-p.NsPerOp)/p.NsPerOp)
		}
	}
	return msgs
}

// writeFile marshals, writes, and re-reads the bench file so a truncated or
// malformed artifact can never be committed silently.
func writeFile(path string, f benchFile) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	back, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var check benchFile
	if err := json.Unmarshal(back, &check); err != nil {
		return fmt.Errorf("self-check: written file does not parse: %w", err)
	}
	if len(check.Benchmarks) != len(f.Benchmarks) {
		return fmt.Errorf("self-check: written file lost benchmarks")
	}
	return nil
}

// Command gatewayd runs the stateless fabric gateway: it shards
// /v1/evaluate and async /v1/jobs requests across a fleet of
// `servd -fabric` nodes by consistent hashing on the patch digest, retries
// idempotent jobs around node failures, and applies backpressure (429 +
// Retry-After) when every shard's queue is full. SIGTERM/SIGINT drain
// gracefully.
//
// Quickstart against two local nodes:
//
//	servd -addr :8081 -fabric :9091 &
//	servd -addr :8082 -fabric :9092 &
//	gatewayd -addr :8080 -nodes 127.0.0.1:9091,127.0.0.1:9092
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"roadtrojan/internal/fabric"
	"roadtrojan/internal/obs"
	"roadtrojan/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gatewayd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", ":8080", "HTTP listen address")
		nodes    = flag.String("nodes", "", "comma-separated fabric node addresses (host:port); required")
		attempts = flag.Int("attempts", 3, "dispatch passes per job before giving up")
		timeout  = flag.Duration("timeout", 2*time.Minute, "per-job deadline including retries")
		jobTable = flag.Int("jobs", 1024, "async job table capacity")
		hbTO     = flag.Duration("heartbeat-timeout", 5*time.Second, "mark a silent node unavailable after this")
		drain    = flag.Duration("drain", 30*time.Second, "graceful shutdown budget")

		attemptTO = flag.Duration("attempt-timeout", 30*time.Second, "per-node round-trip bound; on expiry the job fails over to the next ring owner (0 disables)")
		helloTO   = flag.Duration("hello-timeout", 3*time.Second, "Hello handshake bound after a dial; cuts off slow-loris peers")
		brkThresh = flag.Int("breaker-threshold", 3, "consecutive transport failures that open a backend's circuit breaker")
		brkCool   = flag.Duration("breaker-cooldown", 5*time.Second, "open-breaker wait before a half-open probe")
		walPath   = flag.String("wal", "", "async-job journal path; replayed on restart (empty = no durability)")
		journal   = flag.String("journal", "", "write a JSONL trace journal here (merge across processes with cmd/tracetool)")
		traceProc = flag.String("trace-proc", "gw", "process name stamped on this gateway's trace spans")
	)
	flag.Parse()

	var fleet []string
	for _, n := range strings.Split(*nodes, ",") {
		if n = strings.TrimSpace(n); n != "" {
			fleet = append(fleet, n)
		}
	}
	if len(fleet) == 0 {
		return errors.New("no nodes given; pass -nodes host:port[,host:port...] " +
			"(start nodes with: go run ./cmd/servd -fabric :9091)")
	}

	var wal *fabric.WAL
	if *walPath != "" {
		var err error
		if wal, err = fabric.OpenWAL(*walPath); err != nil {
			return err
		}
	}

	// Tracing: the gateway is usually the trace root, so its logical clock
	// becomes the global frame cmd/tracetool aligns node journals onto.
	var tr *obs.Trace
	if *journal != "" {
		j, err := obs.OpenJournal(*journal)
		if err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		defer j.Close()
		tr = obs.New(j, obs.NewLogicalClock())
		tr.SetProcess(*traceProc)
		fmt.Printf("gatewayd: tracing to %s as process %q\n", *journal, *traceProc)
	}

	g := fabric.NewGateway(fabric.GatewayConfig{
		Nodes:            fleet,
		MaxAttempts:      *attempts,
		JobTimeout:       *timeout,
		JobTableSize:     *jobTable,
		HeartbeatTimeout: *hbTO,
		AttemptTimeout:   *attemptTO,
		HelloTimeout:     *helloTO,
		BreakerThreshold: *brkThresh,
		BreakerCooldown:  *brkCool,
		WAL:              wal,
		Trace:            tr,
	})
	g.Metrics().Gauge("roadtrojan_build_info", "build identity of this gatewayd process",
		telemetry.Labels{"go_version": runtime.Version(), "module": "roadtrojan"}).Set(1)

	srv := &http.Server{Addr: *addr, Handler: g.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		err := srv.ListenAndServe()
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
		errc <- err
	}()
	fmt.Printf("gatewayd: listening on %s, fronting %d node(s): %s\n", *addr, len(fleet), strings.Join(fleet, ", "))

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Println("gatewayd: draining...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	httpErr := srv.Shutdown(shutdownCtx)
	if err := g.Close(shutdownCtx); err != nil {
		return err
	}
	if httpErr != nil {
		return fmt.Errorf("shutdown: %w", httpErr)
	}
	if err := <-errc; err != nil {
		return err
	}
	fmt.Println("gatewayd: drained, bye")
	return nil
}

#!/usr/bin/env sh
# Tier-1 verification: gofmt, build, vet, rtlint, race-enabled tests.
# Run from anywhere; operates on the repository root.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== rtlint ./..."
mkdir -p out
# Machine-readable report kept as a CI artifact; the command still exits
# non-zero on any finding the baseline does not cover.
go run ./cmd/rtlint -json ./... > out/rtlint.json

# Baseline-free gate: the tree must be clean on its own. A committed
# rtlint.baseline means someone grandfathered a violation instead of
# fixing it — reject that here.
if [ -f rtlint.baseline ]; then
    echo "check: rtlint.baseline exists; fix the findings instead of grandfathering them" >&2
    exit 1
fi

# Analyzer self-test: the corpus wants and the seeded scratch bugs must
# still fire, so a regression in the CFG/dataflow engine cannot silently
# turn the checks into no-ops.
echo "== rtlint corpus + seeded-scratch self-test"
go test -count 1 -run 'TestCorpus|TestSeededScratch' ./internal/analysis

# Focused journal checks first: golden-report drift and journal
# determinism fail in seconds here, before the full race suite spins up.
echo "== golden journal + report"
go test -count 1 -run 'TestTrainJournal' ./internal/attack
go test -count 1 -run 'Golden' ./internal/obs ./cmd/runreport

# Fabric smoke gate: a gateway fronting two real nodes over loopback TCP
# must complete an evaluate round-trip and drain cleanly, under the race
# detector. Fast and focused, so fabric wiring regressions fail here with
# a readable name before the full suite runs.
echo "== fabric smoke (gateway + 2 nodes)"
go test -race -count 1 -run 'TestFabricSmoke' ./internal/fabric

# Trace golden gate: the committed tracetool fixture must merge
# byte-for-byte into testdata/merged.golden, and a live gateway plus
# three journaled nodes must produce one causal tree whose merged
# rendering is identical across fresh runs (injected logical clocks).
echo "== trace golden (tracetool fixture + cross-process merge)"
go test -count 1 ./cmd/tracetool
go test -race -count 1 -run 'TestTraceGoldenCrossProcess' ./internal/fabric

# Chaos gate: seed-deterministic fault injection (partitions, corrupt and
# truncated frames, slow-loris handshakes, duplicate delivery) against the
# chaos wrappers and the gateway/node pair, race-enabled. Seeds are pinned
# in the tests — a failure here reproduces byte-for-byte.
echo "== chaos suite (deterministic fault injection)"
go test -race -count 1 -run 'TestChaos' ./internal/chaos ./internal/fabric

echo "== go test -race ./..."
go test -race ./...

echo "== benchperf smoke"
mkdir -p out
go run ./cmd/benchperf -smoke -out out/bench_smoke.json

# Serving gate: micro-batched throughput must stay >= 2x the single-request
# path on the duplicate-heavy burst workload, and must not regress more than
# the tolerance against the committed BENCH_serve.json. Writes a scratch
# artifact; the committed file only changes via `make bench-serve`.
echo "== benchperf serve smoke"
go run ./cmd/benchperf -serve -smoke -prev BENCH_serve.json -out out/bench_serve_smoke.json

echo "== checks passed"

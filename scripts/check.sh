#!/usr/bin/env sh
# Tier-1 verification: gofmt, build, vet, rtlint, race-enabled tests.
# Run from anywhere; operates on the repository root.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== rtlint ./..."
go run ./cmd/rtlint ./...

# Focused journal checks first: golden-report drift and journal
# determinism fail in seconds here, before the full race suite spins up.
echo "== golden journal + report"
go test -count 1 -run 'TestTrainJournal' ./internal/attack
go test -count 1 -run 'Golden' ./internal/obs ./cmd/runreport

# Fabric smoke gate: a gateway fronting two real nodes over loopback TCP
# must complete an evaluate round-trip and drain cleanly, under the race
# detector. Fast and focused, so fabric wiring regressions fail here with
# a readable name before the full suite runs.
echo "== fabric smoke (gateway + 2 nodes)"
go test -race -count 1 -run 'TestFabricSmoke' ./internal/fabric

# Chaos gate: seed-deterministic fault injection (partitions, corrupt and
# truncated frames, slow-loris handshakes, duplicate delivery) against the
# chaos wrappers and the gateway/node pair, race-enabled. Seeds are pinned
# in the tests — a failure here reproduces byte-for-byte.
echo "== chaos suite (deterministic fault injection)"
go test -race -count 1 -run 'TestChaos' ./internal/chaos ./internal/fabric

echo "== go test -race ./..."
go test -race ./...

echo "== benchperf smoke"
mkdir -p out
go run ./cmd/benchperf -smoke -out out/bench_smoke.json

echo "== checks passed"

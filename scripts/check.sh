#!/usr/bin/env sh
# Tier-1 verification: build, vet, race-enabled tests.
# Run from anywhere; operates on the repository root.
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race ./...

echo "== checks passed"

package obs

import (
	"context"
	"strconv"
	"strings"
)

// TraceHeader is the HTTP header that carries an encoded SpanContext into
// the gateway and the servd HTTP front end.
const TraceHeader = "X-Roadtrojan-Trace"

// SpanContext is the compact cross-process trace context: which trace a
// request belongs to, which span in which process caused it, and the parent
// process's clock reading at the moment the context was captured. It is
// what travels on the wire — as the X-Roadtrojan-Trace HTTP header and the
// RTFB job-envelope "trace" key — so that spans opened in different
// processes land in one causal tree when their journals are merged.
//
// The wire form is four ';'-separated fields:
//
//	traceID;process;parentSpanID;tick
//
// ';' cannot appear in any field: span IDs are built from code-chosen span
// names joined with '/' and '#', trace IDs from a process name plus a span
// ID joined with ':', and ticks are decimal integers. A zero SpanContext
// encodes as "" and decodes back to zero, so "no context" needs no special
// casing at call sites.
type SpanContext struct {
	// TraceID identifies the whole causal tree. Minted at the root as
	// "process:rootSpanID" (e.g. "gw:gateway_request#0"), so it is
	// deterministic under injected clocks.
	TraceID string
	// Proc names the process that owns Parent. Process names are operator
	// chosen (gatewayd -trace-proc, servd -node-id); the merger uses them
	// to resolve the parent span in the right journal.
	Proc string
	// Parent is the parent span's ID inside Proc. Empty means "root": the
	// receiver starts a new tree under TraceID.
	Parent string
	// Tick is Proc's clock when the context was captured (the causal send
	// point). The merger uses it to align per-process logical clocks: the
	// child span cannot have started, in global time, before its parent
	// process reached Tick.
	Tick int64
}

// IsZero reports whether sc carries no context at all.
func (sc SpanContext) IsZero() bool {
	return sc.TraceID == "" && sc.Proc == "" && sc.Parent == "" && sc.Tick == 0
}

// Encode renders the wire form. The zero context encodes as "".
func (sc SpanContext) Encode() string {
	if sc.IsZero() {
		return ""
	}
	return sc.TraceID + ";" + sc.Proc + ";" + sc.Parent + ";" + strconv.FormatInt(sc.Tick, 10)
}

// ParseSpanContext decodes the wire form. It returns ok=false for anything
// that is not exactly four fields with a decimal tick; "" parses to the
// zero context with ok=true, mirroring Encode.
func ParseSpanContext(s string) (SpanContext, bool) {
	if s == "" {
		return SpanContext{}, true
	}
	parts := strings.Split(s, ";")
	if len(parts) != 4 {
		return SpanContext{}, false
	}
	tick, err := strconv.ParseInt(parts[3], 10, 64)
	if err != nil {
		return SpanContext{}, false
	}
	sc := SpanContext{TraceID: parts[0], Proc: parts[1], Parent: parts[2], Tick: tick}
	if sc.IsZero() {
		// "";;;0 is not a sanctioned spelling of the zero context.
		return SpanContext{}, false
	}
	return sc, true
}

// SetProcess names the process for cross-process tracing. The name becomes
// the "proc" half of minted trace IDs and of SpanContexts handed to remote
// callees; the journal merger matches it against the per-journal process
// label. Call once at startup, before spans are opened. Nil-safe.
func (t *Trace) SetProcess(name string) {
	if t == nil {
		return
	}
	t.process = name
}

// Process returns the name set by SetProcess ("" on a nil or unnamed trace).
func (t *Trace) Process() string {
	if t == nil {
		return ""
	}
	return t.process
}

// SpanInContext opens a top-level span that joins the causal tree described
// by sc. The span_start record carries the trace attributes the merger
// needs: "trace" always, and — when sc names a remote parent — "parent",
// "pproc", and "ptick". With a zero sc this mints a fresh trace ID
// ("process:spanID"), making the span a global root.
func (t *Trace) SpanInContext(sc SpanContext, name string, attrs ...Attr) *Span {
	if !t.Enabled() {
		return nil
	}
	n := t.roots.Add(1) - 1
	id := name + "#" + strconv.FormatInt(n, 10)
	traceID := sc.TraceID
	if traceID == "" {
		traceID = t.process + ":" + id
	}
	ctx := make([]Attr, 0, 4)
	ctx = append(ctx, S("trace", traceID))
	if sc.Parent != "" {
		ctx = append(ctx, S("parent", sc.Parent), S("pproc", sc.Proc), I64("ptick", sc.Tick))
	}
	return t.startSpan(name, id, traceID, ctx, attrs)
}

// Context captures a SpanContext pointing at s, stamped with the trace's
// current clock tick (the causal send point). Pass its Encode() form to a
// remote callee so the span it opens becomes a child of s in the merged
// tree. If s was opened outside any context, a trace ID is minted exactly
// as SpanInContext would have ("process:spanID"), so plain Trace.Span roots
// still produce linkable contexts. A nil span yields the zero context.
func (s *Span) Context() SpanContext {
	if !s.Enabled() {
		return SpanContext{}
	}
	tid := s.traceID
	if tid == "" {
		tid = s.t.process + ":" + s.rootID()
	}
	return SpanContext{TraceID: tid, Proc: s.t.process, Parent: s.ID, Tick: s.t.clock.Now()}
}

// rootID returns the top-level ancestor's span ID (the part before the
// first '/', or the whole ID for a root span).
func (s *Span) rootID() string {
	if i := strings.IndexByte(s.ID, '/'); i >= 0 {
		return s.ID[:i]
	}
	return s.ID
}

// TraceID returns the trace this span belongs to ("" when the span was
// opened outside any context and none has been minted).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.traceID
}

type spanCtxKey struct{}

// ContextWithSpan attaches s to ctx so lower layers (the executor worker
// pool, the coalescer dispatch path) can parent their spans correctly
// without threading *Span through every signature. Attaching nil is a no-op
// returning ctx unchanged.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the span attached by ContextWithSpan, or nil —
// and a nil *Span is the standard no-op, so callers use the result
// unconditionally.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

package obs

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"strings"
	"testing"
)

// emitFixture drives one representative record sequence into a trace.
func emitFixture(tr *Trace) {
	root := tr.Span("train", S("method", "ours"), I("iters", 5))
	root.Iter(IterStats{
		Method: "ours", It: 0, Seg: 0,
		Attack: 12.5, Alpha: 10, Weighted: 125, GanG: 0.7, GanD: 1.386,
		Total: 125.7, PTarget: 0.01, GradNorm: 3.25, LR: 0.002,
		InkMean: 0.5, InkFrac: 0.5, Best: -1,
	})
	root.EOT(EOTDraw{It: 0, Frame: 1, Resize: 1.05, Rotation: -0.02, Bright: 1, Gamma: 1, Persp: 2.5})
	root.Verify(VerifyStats{It: 0, Score: 0.25, Best: 0.25, Kept: true})
	root.End()
	ev := tr.Span("eval")
	ev.EvalRun(EvalRunStats{Run: 0, PWC: 0.8, CWC: true, Frames: 24, WrongRun: 1, DetectRate: 0.96})
	ev.EvalScore(EvalScoreStats{PWC: 0.8, CWC: true, Frames: 24, WrongRun: 1, DetectRate: 0.96, Runs: 1})
	ev.End()
	_ = tr.Flush()
}

func TestJournalRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewJournal(&buf), NewLogicalClock())
	emitFixture(tr)

	if !strings.HasPrefix(buf.String(), fmt.Sprintf("{\"k\":\"journal\",\"schema\":%d}\n", SchemaVersion)) {
		t.Fatalf("missing or malformed header:\n%s", buf.String())
	}
	recs, err := ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadJournal: %v", err)
	}
	kinds := make([]string, len(recs))
	for i := range recs {
		kinds[i] = recs[i].Kind
	}
	want := []string{"span_start", "iter", "eot", "verify", "span_end", "span_start", "eval_run", "eval_score", "span_end"}
	if fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	iter := recs[1]
	if iter.Span != "train#0" {
		t.Fatalf("iter span = %q", iter.Span)
	}
	if iter.Float("attack") != 12.5 || iter.Int("it") != 0 || iter.Str("method") != "ours" {
		t.Fatalf("iter fields wrong: %+v", iter.Fields)
	}
	if iter.Float("best") != -1 {
		t.Fatalf("best = %v, want -1", iter.Float("best"))
	}
	score := recs[7]
	if score.Float("pwc") != 0.8 || score.Int("cwc") != 1 || score.Int("runs") != 1 {
		t.Fatalf("eval_score fields wrong: %+v", score.Fields)
	}
}

func TestJournalByteStable(t *testing.T) {
	run := func() []byte {
		var buf bytes.Buffer
		tr := New(NewJournal(&buf), NewLogicalClock())
		emitFixture(tr)
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("identical record sequences produced different journal bytes:\n%s\n---\n%s", a, b)
	}
}

func TestJournalNonFiniteFloats(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewJournal(&buf), NewLogicalClock())
	sp := tr.Span("train")
	sp.Iter(IterStats{Method: "direct", Attack: math.NaN(), GradNorm: math.Inf(1), Total: math.Inf(-1)})
	sp.End()
	_ = tr.Flush()

	recs, err := ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("journal with non-finite floats failed to parse: %v", err)
	}
	iter := recs[1]
	if !math.IsNaN(iter.Float("attack")) {
		t.Fatalf("attack = %v, want NaN", iter.Float("attack"))
	}
	if !math.IsInf(iter.Float("grad_norm"), 1) || !math.IsInf(iter.Float("total"), -1) {
		t.Fatalf("inf fields wrong: %v %v", iter.Float("grad_norm"), iter.Float("total"))
	}
}

func TestJournalStringEscaping(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewJournal(&buf), NewLogicalClock())
	sp := tr.Span("odd")
	sp.Event("span_start", S("name", "has\"quote\\back\nnew\ttab\x01ctl"))
	sp.End()
	_ = tr.Flush()
	recs, err := ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("escaped journal failed to parse: %v", err)
	}
	if !strings.Contains(buf.String(), "\\u0001") {
		t.Fatalf("control byte not escaped:\n%s", buf.String())
	}
	if got := recs[1].Str("name"); got != "has\"quote\\back\nnew\ttab\x01ctl" {
		t.Fatalf("string did not round-trip: %q", got)
	}
}

func TestReadJournalRejections(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"empty", "", "empty journal"},
		{"no header", `{"k":"iter","t":1}` + "\n", "want header"},
		{"wrong schema", `{"k":"journal","schema":999}` + "\n", "schema"},
		{"bad json", "{\"k\":\"journal\",\"schema\":1}\nnot json\n", "line 2"},
		{"unknown kind", "{\"k\":\"journal\",\"schema\":1}\n{\"k\":\"mystery\",\"t\":1}\n", "unknown record kind"},
		{"missing kind", "{\"k\":\"journal\",\"schema\":1}\n{\"t\":1}\n", "missing record kind"},
		{"missing tick", "{\"k\":\"journal\",\"schema\":1}\n{\"k\":\"iter\"}\n", "missing tick"},
		{"dup header", "{\"k\":\"journal\",\"schema\":1}\n{\"k\":\"journal\",\"schema\":1}\n", "duplicate header"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadJournal(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("ReadJournal accepted %q", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestReadJournalLenientTornTail(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewJournal(&buf), NewLogicalClock())
	emitFixture(tr)

	strict, err := ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a writer killed mid-record: chop the final line in half.
	whole := buf.Bytes()
	cut := bytes.LastIndexByte(whole[:len(whole)-1], '\n') + 1
	torn := append(append([]byte{}, whole[:cut]...), whole[cut:cut+5]...)

	if _, err := ReadJournal(bytes.NewReader(torn)); err == nil {
		t.Fatal("strict reader accepted a torn trailing line")
	}
	recs, warning, err := ReadJournalLenient(bytes.NewReader(torn))
	if err != nil {
		t.Fatalf("lenient reader failed: %v", err)
	}
	if warning == "" || !strings.Contains(warning, "torn trailing line") {
		t.Fatalf("warning = %q, want torn-line mention", warning)
	}
	if len(recs) != len(strict)-1 {
		t.Fatalf("lenient read kept %d records, want %d", len(recs), len(strict)-1)
	}

	// An intact journal reads identically with no warning.
	recs, warning, err = ReadJournalLenient(bytes.NewReader(whole))
	if err != nil || warning != "" {
		t.Fatalf("intact journal: err=%v warning=%q", err, warning)
	}
	if len(recs) != len(strict) {
		t.Fatalf("intact lenient read dropped records: %d vs %d", len(recs), len(strict))
	}
}

func TestReadJournalLenientMidFileStillFatal(t *testing.T) {
	// A bad line followed by a good one is corruption, not a torn tail.
	in := "{\"k\":\"journal\",\"schema\":1}\nnot json\n{\"k\":\"iter\",\"t\":1}\n"
	if _, _, err := ReadJournalLenient(strings.NewReader(in)); err == nil {
		t.Fatal("lenient reader accepted mid-file corruption")
	}
	// A torn header is fatal too: there is nothing trustworthy to salvage.
	if _, _, err := ReadJournalLenient(strings.NewReader(`{"k":"jour`)); err == nil {
		t.Fatal("lenient reader accepted a torn header")
	}
}

func TestJournalFileLifecycle(t *testing.T) {
	path := t.TempDir() + "/run.jsonl"
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	tr := New(j, NewLogicalClock())
	emitFixture(tr)
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := ReadJournal(f)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if len(recs) != 9 {
		t.Fatalf("got %d records, want 9", len(recs))
	}
}

package obs

import (
	"roadtrojan/internal/telemetry"
)

// attackLossBuckets cover the observed range of detector attack losses
// (roughly 0.01 … 100 across methods and scenes), log-spaced.
var attackLossBuckets = []float64{0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30, 100}

// TelemetrySink folds structured records into a telemetry.Registry, so a
// long-running process (servd, or attackgen with -progress) exposes training
// and evaluation counters on the same Prometheus scrape endpoint as the
// serving metrics.
type TelemetrySink struct {
	iters      *telemetry.Counter
	evalRuns   *telemetry.Counter
	verifies   *telemetry.Counter
	spans      *telemetry.Counter
	attackLoss *telemetry.Histogram
	pTarget    *telemetry.Gauge
	bestScore  *telemetry.Gauge
	lastPWC    *telemetry.Gauge
	gradNorm   *telemetry.Gauge
}

// NewTelemetrySink registers the obs metric families on reg.
func NewTelemetrySink(reg *telemetry.Registry) *TelemetrySink {
	if reg == nil {
		return nil
	}
	return &TelemetrySink{
		iters:      reg.Counter("obs_train_iterations_total", "Attack-trainer iterations observed.", nil),
		evalRuns:   reg.Counter("obs_eval_runs_total", "Evaluation repetitions observed.", nil),
		verifies:   reg.Counter("obs_verify_total", "Snapshot verifications observed.", nil),
		spans:      reg.Counter("obs_spans_total", "Spans opened.", nil),
		attackLoss: reg.Histogram("obs_attack_loss", "Per-iteration raw attack loss.", nil, attackLossBuckets),
		pTarget:    reg.Gauge("obs_p_target", "Latest mean target-class probability.", nil),
		bestScore:  reg.Gauge("obs_best_verify_score", "Best combined verify score so far.", nil),
		lastPWC:    reg.Gauge("obs_last_pwc", "Most recent per-run PWC.", nil),
		gradNorm:   reg.Gauge("obs_grad_norm", "Latest patch-layer gradient L2 norm.", nil),
	}
}

// Emit folds one record into the registry.
func (t *TelemetrySink) Emit(r *Record) {
	switch r.Kind {
	case "iter":
		t.iters.Inc()
		t.attackLoss.Observe(r.Float("attack"))
		t.pTarget.Set(r.Float("p_target"))
		t.bestScore.Set(r.Float("best"))
		t.gradNorm.Set(r.Float("grad_norm"))
	case "eval_run":
		t.evalRuns.Inc()
		t.lastPWC.Set(r.Float("pwc"))
	case "verify":
		t.verifies.Inc()
		t.bestScore.Set(r.Float("best"))
	case "span_start":
		t.spans.Inc()
	}
}

// Flush is a no-op: the registry is always current.
func (t *TelemetrySink) Flush() error { return nil }

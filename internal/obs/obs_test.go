package obs

import (
	"fmt"
	"sync"
	"testing"
)

// captureSink retains copies of everything emitted.
type captureSink struct {
	mu   sync.Mutex
	recs []Record
}

func (c *captureSink) Emit(r *Record) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := *r
	cp.Attrs = append([]Attr(nil), r.Attrs...)
	c.recs = append(c.recs, cp)
}

func (c *captureSink) Flush() error { return nil }

func TestTextTraceNilWriterIsDisabled(t *testing.T) {
	tr := TextTrace(nil)
	if tr != nil {
		t.Fatalf("TextTrace(nil) = %v, want nil trace", tr)
	}
	if tr.Enabled() {
		t.Fatal("TextTrace(nil).Enabled() = true, want false")
	}
	// The full no-op path must survive use, not just construction.
	sp := tr.Span("train")
	sp.Iter(IterStats{It: 1})
	sp.End()
}

func TestNilTraceIsNoop(t *testing.T) {
	var tr *Trace
	if tr.Enabled() {
		t.Fatal("nil trace reports enabled")
	}
	if err := tr.Flush(); err != nil {
		t.Fatalf("nil trace Flush: %v", err)
	}
	sp := tr.Span("train")
	if sp != nil {
		t.Fatal("nil trace handed out a non-nil span")
	}
	// Every method on the nil span must return without panicking.
	sp.Iter(IterStats{})
	sp.EOT(EOTDraw{})
	sp.Verify(VerifyStats{})
	sp.GanD(GanDStep{})
	sp.Epoch(EpochStats{})
	sp.EvalRun(EvalRunStats{})
	sp.EvalScore(EvalScoreStats{})
	sp.Event("custom", F("x", 1))
	sp.End()
	if child := sp.Child("seg"); child != nil {
		t.Fatal("nil span handed out a non-nil child")
	}
	if New(nil, nil) != nil {
		t.Fatal("New(nil sink) should return a nil trace")
	}
}

func TestNoopZeroAllocs(t *testing.T) {
	var sp *Span
	allocs := testing.AllocsPerRun(1000, func() {
		sp.Iter(IterStats{It: 3, Attack: 1.5})
		sp.EOT(EOTDraw{It: 3, Resize: 1.1})
		sp.Verify(VerifyStats{It: 3, Score: 0.5})
		sp.GanD(GanDStep{It: 3, Loss: 0.7})
		sp.EvalRun(EvalRunStats{Run: 1, PWC: 0.8})
	})
	if allocs != 0 {
		t.Fatalf("no-op typed events allocated %.1f/op, want 0", allocs)
	}
}

func TestDeterministicSpanIDs(t *testing.T) {
	build := func() []string {
		sink := &captureSink{}
		tr := New(sink, NewLogicalClock())
		root := tr.Span("train", S("method", "ours"))
		for seg := 0; seg < 3; seg++ {
			c := root.Child("segment", I("seg", seg))
			c.Iter(IterStats{Method: "ours", It: seg * 10, Seg: seg})
			c.End()
		}
		root.End()
		tr.Span("eval").End()
		ids := make([]string, 0, len(sink.recs))
		for i := range sink.recs {
			ids = append(ids, sink.recs[i].Kind+"|"+sink.recs[i].Span+"|"+fmt.Sprint(sink.recs[i].Tick))
		}
		return ids
	}
	a, b := build(), build()
	if len(a) == 0 {
		t.Fatal("no records captured")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("span IDs/ticks differ across identical runs:\n%v\n%v", a, b)
	}
	want := []string{
		"span_start|train#0|1",
		"span_start|train#0/segment#0|2",
		"iter|train#0/segment#0|3",
	}
	for i, w := range want {
		if a[i] != w {
			t.Fatalf("record %d = %q, want %q", i, a[i], w)
		}
	}
}

func TestSpanRecordShapes(t *testing.T) {
	sink := &captureSink{}
	tr := New(sink, FixedClock(42))
	sp := tr.Span("train", S("method", "direct"))
	sp.Iter(IterStats{Method: "direct", It: 7, Attack: 2.5, PTarget: 0.25, Best: -1})
	sp.End(F("final_loss", 2.5))
	if len(sink.recs) != 3 {
		t.Fatalf("got %d records, want 3", len(sink.recs))
	}
	start := sink.recs[0]
	if start.Kind != "span_start" || start.Str("name") != "train" || start.Str("method") != "direct" {
		t.Fatalf("bad span_start: %+v", start)
	}
	iter := sink.recs[1]
	if iter.Kind != "iter" || iter.Int("it") != 7 || iter.Float("attack") != 2.5 {
		t.Fatalf("bad iter: %+v", iter)
	}
	if iter.Float("it") != 7 {
		t.Fatalf("Float should convert int attrs, got %v", iter.Float("it"))
	}
	end := sink.recs[2]
	if end.Kind != "span_end" || end.Int("dur") != 0 || end.Float("final_loss") != 2.5 {
		t.Fatalf("bad span_end: %+v", end)
	}
	if tr.Flush() != nil {
		t.Fatal("flush failed")
	}
}

func TestMulti(t *testing.T) {
	if Multi() != nil {
		t.Fatal("Multi() should be nil")
	}
	if Multi(nil, nil) != nil {
		t.Fatal("Multi(nil, nil) should be nil")
	}
	a, b := &captureSink{}, &captureSink{}
	if got := Multi(a, nil); got != Sink(a) {
		t.Fatal("Multi with one live sink should return it directly")
	}
	m := Multi(a, b)
	tr := New(m, NewLogicalClock())
	tr.Span("x").End()
	if len(a.recs) != 2 || len(b.recs) != 2 {
		t.Fatalf("fan-out mismatch: %d vs %d", len(a.recs), len(b.recs))
	}
	// A nil *TextSink (typed nil) must also be dropped, not kept as a
	// non-nil interface holding nil.
	if Multi(NewTextSink(nil)) != nil {
		t.Fatal("Multi should drop a nil *TextSink")
	}
}

func TestConcurrentEmit(t *testing.T) {
	sink := &captureSink{}
	tr := New(sink, WallClock())
	root := tr.Span("serve")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			sp := root.Child("request", I("worker", n))
			for j := 0; j < 50; j++ {
				sp.Iter(IterStats{It: j})
			}
			sp.End()
		}(i)
	}
	wg.Wait()
	root.End()
	want := 1 + 8*(1+50+1) + 1
	if len(sink.recs) != want {
		t.Fatalf("got %d records, want %d", len(sink.recs), want)
	}
	ids := map[string]bool{}
	for i := range sink.recs {
		if sink.recs[i].Kind == "span_start" {
			if ids[sink.recs[i].Span] {
				t.Fatalf("duplicate span ID %q under concurrency", sink.recs[i].Span)
			}
			ids[sink.recs[i].Span] = true
		}
	}
}

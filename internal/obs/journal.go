package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"sync"
)

// Journal is a buffered JSONL sink with a versioned schema. Each record is
// one JSON object per line; the first line is the header
// {"k":"journal","schema":N}. Encoding is hand-rolled over a reused scratch
// buffer so that field order, float formatting, and therefore the journal
// bytes are a pure function of the emitted records — the property the
// golden-journal test pins.
type Journal struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	closer io.Closer
	buf    []byte
	err    error
}

// NewJournal wraps w and writes the schema header immediately.
func NewJournal(w io.Writer) *Journal {
	j := &Journal{bw: bufio.NewWriterSize(w, 64<<10)}
	fmt.Fprintf(j.bw, "{\"k\":\"journal\",\"schema\":%d}\n", SchemaVersion)
	return j
}

// OpenJournal creates (truncating) a journal file at path.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: open journal: %w", err)
	}
	j := NewJournal(f)
	j.closer = f
	return j, nil
}

// Emit encodes one record as a JSON line.
func (j *Journal) Emit(r *Record) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	b := j.buf[:0]
	b = append(b, `{"k":`...)
	b = appendJSONString(b, r.Kind)
	if r.Span != "" {
		b = append(b, `,"sp":`...)
		b = appendJSONString(b, r.Span)
	}
	b = append(b, `,"t":`...)
	b = strconv.AppendInt(b, r.Tick, 10)
	for i := range r.Attrs {
		a := &r.Attrs[i]
		b = append(b, ',')
		b = appendJSONString(b, a.Key)
		b = append(b, ':')
		switch a.Kind {
		case AttrInt:
			b = strconv.AppendInt(b, a.Int, 10)
		case AttrString:
			b = appendJSONString(b, a.Str)
		default:
			b = appendJSONFloat(b, a.Num)
		}
	}
	b = append(b, '}', '\n')
	j.buf = b
	if _, err := j.bw.Write(b); err != nil {
		j.err = err
	}
}

// Flush drains the write buffer, reporting the first write error.
func (j *Journal) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.bw.Flush(); err != nil && j.err == nil {
		j.err = err
	}
	return j.err
}

// Close flushes and closes the underlying file, when Journal owns one.
func (j *Journal) Close() error {
	err := j.Flush()
	if j.closer != nil {
		if cerr := j.closer.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// appendJSONString appends s as a JSON string literal. Only the escapes
// JSON requires: backslash, double quote, and control characters.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '\\' || c == '"':
			b = append(b, '\\', c)
		case c == '\n':
			b = append(b, '\\', 'n')
		case c == '\t':
			b = append(b, '\\', 't')
		case c < 0x20:
			b = append(b, '\\', 'u', '0', '0', hexDigit(c>>4), hexDigit(c&0xf))
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}

func hexDigit(n byte) byte {
	if n < 10 {
		return '0' + n
	}
	return 'a' + n - 10
}

// appendJSONFloat appends v in shortest round-trip form. NaN and ±Inf are
// not representable in JSON numbers; they are stored as strings so the
// journal stays parseable even when a loss diverges.
func appendJSONFloat(b []byte, v float64) []byte {
	if math.IsNaN(v) {
		return append(b, `"NaN"`...)
	}
	if math.IsInf(v, 1) {
		return append(b, `"+Inf"`...)
	}
	if math.IsInf(v, -1) {
		return append(b, `"-Inf"`...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// JournalRecord is one parsed journal line.
type JournalRecord struct {
	Kind   string
	Span   string
	Tick   int64
	Fields map[string]any // the full decoded object, including k/sp/t
}

// Float returns a numeric field (accepting the string forms of NaN/±Inf);
// 0 when absent.
func (r *JournalRecord) Float(key string) float64 {
	switch v := r.Fields[key].(type) {
	case float64:
		return v
	case string:
		switch v {
		case "NaN":
			return math.NaN()
		case "+Inf":
			return math.Inf(1)
		case "-Inf":
			return math.Inf(-1)
		}
	}
	return 0
}

// Int returns a numeric field truncated to int64; 0 when absent.
func (r *JournalRecord) Int(key string) int64 {
	if v, ok := r.Fields[key].(float64); ok {
		return int64(v)
	}
	return 0
}

// Str returns a string field; "" when absent.
func (r *JournalRecord) Str(key string) string {
	v, _ := r.Fields[key].(string)
	return v
}

// ReadJournal parses and validates a JSONL journal: the header must carry
// the current schema version, every line must be a JSON object, and every
// record kind must be known to this schema. The header record is not
// returned.
func ReadJournal(r io.Reader) ([]JournalRecord, error) {
	recs, _, err := readJournal(r, false)
	return recs, err
}

// ReadJournalLenient reads like ReadJournal but tolerates a torn trailing
// line — the signature of a process killed mid-Emit or a copy of a live
// journal — the same way fabric WAL replay does. When the final non-empty
// line fails to decode, the records before it are returned along with a
// non-empty warning describing what was dropped. Corruption anywhere else
// (a bad line with valid lines after it) still fails hard: that is not a
// torn tail, it is a damaged file.
func ReadJournalLenient(r io.Reader) (recs []JournalRecord, warning string, err error) {
	return readJournal(r, true)
}

func readJournal(r io.Reader, lenient bool) ([]JournalRecord, string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	known := KnownKinds()
	var out []JournalRecord
	line := 0
	// In lenient mode a decode failure is held here while we look for any
	// later non-empty line; only a failure on the final line is forgiven.
	var tornLine int
	var tornErr error
	fail := func(err error) ([]JournalRecord, string, error) { return nil, "", err }
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		if tornErr != nil {
			// The earlier bad line was not the tail after all.
			return fail(tornErr)
		}
		hold := func(err error) bool {
			if lenient && line > 1 {
				tornLine, tornErr = line, err
				return true
			}
			return false
		}
		var fields map[string]any
		if err := json.Unmarshal(text, &fields); err != nil {
			err = fmt.Errorf("obs: journal line %d: %w", line, err)
			if hold(err) {
				continue
			}
			return fail(err)
		}
		kind, _ := fields["k"].(string)
		if kind == "" {
			err := fmt.Errorf("obs: journal line %d: missing record kind", line)
			if hold(err) {
				continue
			}
			return fail(err)
		}
		if !known[kind] {
			err := fmt.Errorf("obs: journal line %d: unknown record kind %q", line, kind)
			if hold(err) {
				continue
			}
			return fail(err)
		}
		if line == 1 {
			if kind != "journal" {
				return fail(fmt.Errorf("obs: journal line 1: want header record, got %q", kind))
			}
			schema, ok := fields["schema"].(float64)
			if !ok || int(schema) != SchemaVersion {
				return fail(fmt.Errorf("obs: journal schema %v, want %d", fields["schema"], SchemaVersion))
			}
			continue
		}
		if kind == "journal" {
			return fail(fmt.Errorf("obs: journal line %d: duplicate header", line))
		}
		rec := JournalRecord{Kind: kind, Fields: fields}
		rec.Span, _ = fields["sp"].(string)
		if t, ok := fields["t"].(float64); ok {
			rec.Tick = int64(t)
		} else {
			err := fmt.Errorf("obs: journal line %d: missing tick", line)
			if hold(err) {
				continue
			}
			return fail(err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return fail(fmt.Errorf("obs: reading journal: %w", err))
	}
	if line == 0 {
		return fail(fmt.Errorf("obs: empty journal (no header)"))
	}
	var warning string
	if tornErr != nil {
		warning = fmt.Sprintf("dropped torn trailing line %d: %v", tornLine, tornErr)
	}
	return out, warning, nil
}

package obs

import (
	"fmt"
	"io"
	"sync"
)

// TextSink reproduces the repository's historical free-form log lines from
// structured records, so replacing the trainers' `logw io.Writer` parameters
// with a *Trace leaves the default CLI output byte-for-byte unchanged. It
// applies the same cadence the call sites used to (every 25th iteration plus
// the final one) and ignores record kinds that never had a text form.
type TextSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewTextSink wraps w; a nil writer yields a nil (dropped by Multi) sink.
func NewTextSink(w io.Writer) *TextSink {
	if w == nil {
		return nil
	}
	return &TextSink{w: w}
}

// TextTrace is the adapter used by the public API and legacy call sites: a
// trace whose only sink is the historical text log. A nil writer gives a nil
// (disabled) trace, matching the old `logw == nil` behavior.
func TextTrace(w io.Writer) *Trace {
	return New(NewTextSink(w), NewLogicalClock())
}

// Emit renders the record kinds that historically had log lines.
func (t *TextSink) Emit(r *Record) {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch r.Kind {
	case "iter":
		it := int(r.Int("it"))
		if it%25 != 0 && r.Int("final") == 0 {
			return
		}
		switch r.Str("method") {
		case "ours":
			fmt.Fprintf(t.w, "iter %4d  attack %.4f  ganG %.4f  ganD %.4f  p(target) %.3f  best %.2f\n",
				it, r.Float("attack"), r.Float("gan_g"), r.Float("gan_d"), r.Float("p_target"), r.Float("best"))
		case "direct":
			fmt.Fprintf(t.w, "direct iter %4d  attack %.4f  p(target) %.3f  |g| %.4g\n",
				it, r.Float("attack"), r.Float("p_target"), r.Float("grad_norm"))
		case "baseline":
			fmt.Fprintf(t.w, "baseline iter %4d  attack %.4f  p(target) %.3f\n",
				it, r.Float("attack"), r.Float("p_target"))
		}
	case "epoch":
		fmt.Fprintf(t.w, "epoch %3d  loss %.4f\n", int(r.Int("epoch")), r.Float("loss"))
	}
}

// Flush is a no-op: the sink writes through on every line.
func (t *TextSink) Flush() error { return nil }

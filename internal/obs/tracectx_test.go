package obs

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestSpanContextEncodeParseRoundTrip(t *testing.T) {
	cases := []SpanContext{
		{},
		{TraceID: "gw:gateway_request#0", Proc: "gw", Parent: "gateway_request#0", Tick: 7},
		{TraceID: "n1:fabric_job#3", Proc: "n1", Parent: "fabric_job#3/eval#0", Tick: 0},
	}
	for _, sc := range cases {
		got, ok := ParseSpanContext(sc.Encode())
		if !ok {
			t.Fatalf("ParseSpanContext(%q) rejected", sc.Encode())
		}
		if got != sc {
			t.Fatalf("roundtrip %+v -> %q -> %+v", sc, sc.Encode(), got)
		}
	}
	if s := (SpanContext{}).Encode(); s != "" {
		t.Fatalf("zero context encodes as %q, want empty", s)
	}
}

func TestParseSpanContextRejections(t *testing.T) {
	bad := []string{
		"a;b;c",         // too few fields
		"a;b;c;d;e",     // too many fields
		"a;b;c;notnum",  // non-decimal tick
		";;;0",          // zero context spelled out
		"a;b;c;1.5",     // float tick
		"trace;p;s;1;x", // trailing garbage field
	}
	for _, s := range bad {
		if _, ok := ParseSpanContext(s); ok {
			t.Fatalf("ParseSpanContext(%q) accepted, want rejection", s)
		}
	}
}

func TestSpanInContextAttrs(t *testing.T) {
	sink := &captureSink{}
	tr := New(sink, NewLogicalClock())
	tr.SetProcess("n1")

	sc := SpanContext{TraceID: "gw:gateway_request#0", Proc: "gw", Parent: "gateway_request#0/attempt#0", Tick: 9}
	sp := tr.SpanInContext(sc, "fabric_job", S("node", "n1"))
	sp.End()

	start := sink.recs[0]
	if start.Kind != "span_start" || start.Span != "fabric_job#0" {
		t.Fatalf("unexpected start record %+v", start)
	}
	attrs := map[string]Attr{}
	for _, a := range start.Attrs {
		attrs[a.Key] = a
	}
	if got := attrs["trace"].Str; got != "gw:gateway_request#0" {
		t.Fatalf("trace attr = %q", got)
	}
	if got := attrs["parent"].Str; got != "gateway_request#0/attempt#0" {
		t.Fatalf("parent attr = %q", got)
	}
	if got := attrs["pproc"].Str; got != "gw" {
		t.Fatalf("pproc attr = %q", got)
	}
	if got := attrs["ptick"].Int; got != 9 {
		t.Fatalf("ptick attr = %d", got)
	}
	if got := attrs["node"].Str; got != "n1" {
		t.Fatalf("user attr survives: node = %q", got)
	}
}

func TestSpanInContextZeroMintsTrace(t *testing.T) {
	sink := &captureSink{}
	tr := New(sink, NewLogicalClock())
	tr.SetProcess("gw")
	sp := tr.SpanInContext(SpanContext{}, "gateway_request")
	if got := sp.TraceID(); got != "gw:gateway_request#0" {
		t.Fatalf("minted trace id = %q", got)
	}
	// No remote parent: the start record must carry trace but not parent.
	for _, a := range sink.recs[0].Attrs {
		if a.Key == "parent" || a.Key == "pproc" || a.Key == "ptick" {
			t.Fatalf("zero-context root leaked remote-parent attr %q", a.Key)
		}
	}
	// Children inherit the trace id and contexts point at them.
	c := sp.Child("dispatch")
	cc := c.Context()
	if cc.TraceID != "gw:gateway_request#0" || cc.Proc != "gw" || cc.Parent != "gateway_request#0/dispatch#0" {
		t.Fatalf("child context = %+v", cc)
	}
}

func TestPlainSpanContextMintsLazily(t *testing.T) {
	sink := &captureSink{}
	tr := New(sink, NewLogicalClock())
	tr.SetProcess("solo")
	sp := tr.Span("train")
	sc := sp.Context()
	if sc.TraceID != "solo:train#0" {
		t.Fatalf("plain span context trace = %q", sc.TraceID)
	}
	// The plain span's journal bytes must not change: no trace attr.
	for _, a := range sink.recs[0].Attrs {
		if a.Key == "trace" {
			t.Fatal("plain Trace.Span emitted a trace attr")
		}
	}
}

func TestContextWithSpan(t *testing.T) {
	ctx := context.Background()
	if got := SpanFromContext(ctx); got != nil {
		t.Fatalf("empty context carries span %v", got)
	}
	if got := ContextWithSpan(ctx, nil); got != ctx {
		t.Fatal("attaching nil span should be a no-op")
	}
	tr := New(&captureSink{}, NewLogicalClock())
	sp := tr.Span("x")
	if got := SpanFromContext(ContextWithSpan(ctx, sp)); got != sp {
		t.Fatalf("SpanFromContext = %v, want %v", got, sp)
	}
}

// journalFor runs fn against a trace journaling into memory and returns the
// decoded records.
func journalFor(t *testing.T, proc string, fn func(tr *Trace)) []JournalRecord {
	t.Helper()
	var buf bytes.Buffer
	j := NewJournal(&buf)
	tr := New(j, NewLogicalClock())
	tr.SetProcess(proc)
	fn(tr)
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestMergeTraceTwoProcesses(t *testing.T) {
	// Gateway opens request -> dispatch -> attempt, hands the attempt's
	// context to the "node", which opens fabric_job -> forward under it.
	var attemptCtx SpanContext
	gw := journalFor(t, "gw", func(tr *Trace) {
		req := tr.SpanInContext(SpanContext{}, "gateway_request")
		dsp := req.Child("dispatch")
		asp := dsp.Child("attempt", S("node", "n1"))
		attemptCtx = asp.Context()
		asp.End(S("outcome", "ok"))
		dsp.End()
		req.End()
	})
	node := journalFor(t, "n1", func(tr *Trace) {
		job := tr.SpanInContext(attemptCtx, "fabric_job")
		fwd := job.Child("forward")
		fwd.End()
		job.End()
	})

	m, err := MergeTrace([]ProcessJournal{
		{Proc: "gw", Records: gw},
		{Proc: "n1", Records: node},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Roots) != 1 {
		t.Fatalf("got %d roots, want 1", len(m.Roots))
	}
	root := m.Roots[0]
	if root.Proc != "gw" || root.Name != "gateway_request" {
		t.Fatalf("root = %s %s", root.Proc, root.Name)
	}
	if m.Orphans != 0 {
		t.Fatalf("%d orphans", m.Orphans)
	}

	// Walk: request -> dispatch -> attempt -> fabric_job -> forward.
	var path []string
	var walk func(s *MergedSpan)
	walk = func(s *MergedSpan) {
		path = append(path, s.Proc+"/"+s.Name)
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(root)
	want := []string{"gw/gateway_request", "gw/dispatch", "gw/attempt", "n1/fabric_job", "n1/forward"}
	if strings.Join(path, " ") != strings.Join(want, " ") {
		t.Fatalf("tree = %v, want %v", path, want)
	}

	// Causality: the node's job cannot start before the attempt captured
	// its context, in global (offset-adjusted) time.
	var job *MergedSpan
	for _, c := range root.Children[0].Children[0].Children {
		if c.Name == "fabric_job" {
			job = c
		}
	}
	if job == nil {
		t.Fatal("fabric_job not under attempt")
	}
	if job.GStart <= job.PTick+m.Offsets["gw"] {
		t.Fatalf("job GStart %d not after parent tick %d", job.GStart, job.PTick)
	}
	if m.Offsets["gw"] != 0 {
		t.Fatalf("root process offset = %d, want 0", m.Offsets["gw"])
	}
}

func TestMergeTraceOrphanPromoted(t *testing.T) {
	node := journalFor(t, "n1", func(tr *Trace) {
		// Remote parent context whose journal we never supply.
		sc := SpanContext{TraceID: "gw:gateway_request#0", Proc: "gw", Parent: "gateway_request#0", Tick: 5}
		sp := tr.SpanInContext(sc, "fabric_job")
		sp.End()
	})
	m, err := MergeTrace([]ProcessJournal{{Proc: "n1", Records: node}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Orphans != 1 || len(m.Roots) != 1 {
		t.Fatalf("orphans=%d roots=%d, want 1/1", m.Orphans, len(m.Roots))
	}
}

func TestMergeTraceDuplicateProcess(t *testing.T) {
	recs := journalFor(t, "p", func(tr *Trace) { tr.Span("x").End() })
	_, err := MergeTrace([]ProcessJournal{{Proc: "p", Records: recs}, {Proc: "p", Records: recs}})
	if err == nil {
		t.Fatal("duplicate process accepted")
	}
}

func TestRenderMergedDeterministic(t *testing.T) {
	build := func() string {
		var attemptCtx SpanContext
		gw := journalFor(t, "gw", func(tr *Trace) {
			req := tr.SpanInContext(SpanContext{}, "gateway_request")
			asp := req.Child("attempt")
			attemptCtx = asp.Context()
			asp.End()
			req.End()
		})
		n1 := journalFor(t, "n1", func(tr *Trace) {
			tr.SpanInContext(attemptCtx, "fabric_job").End()
		})
		m, err := MergeTrace([]ProcessJournal{{Proc: "gw", Records: gw}, {Proc: "n1", Records: n1}})
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		if err := RenderMerged(&out, m); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	a, b := build(), build()
	if a != b {
		t.Fatalf("merged render differs across identical runs:\n%s\n---\n%s", a, b)
	}
	for _, want := range []string{"merged trace:", "== causal tree", "== stage breakdown", "== critical path"} {
		if !strings.Contains(a, want) {
			t.Fatalf("render missing %q:\n%s", want, a)
		}
	}
}

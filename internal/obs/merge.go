package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file merges per-process journals into one cross-process causal tree.
// Each process records spans against its own clock (usually a LogicalClock,
// so ticks are process-local counters); the cross-process span_start
// attributes written by SpanInContext — trace, parent, pproc, ptick — carry
// enough structure to both re-parent spans across journals and align the
// clocks: a child span cannot start, in global time, before its parent
// process captured the context at ptick. Everything here is deterministic:
// given the same journals, the merged tree, the alignment offsets, and the
// rendered report are byte-identical.

// ProcessJournal pairs a process name with its parsed journal records. The
// name must match what the process handed to Trace.SetProcess, because the
// pproc attributes in other journals refer to it.
type ProcessJournal struct {
	Proc    string
	Records []JournalRecord
}

// MergedSpan is one node of the merged cross-process tree.
type MergedSpan struct {
	Proc    string
	ID      string // span ID inside Proc
	Name    string
	TraceID string
	Start   int64 // local ticks
	End     int64 // local ticks; == Start when the span never ended
	GStart  int64 // globally aligned ticks (local + process offset)
	GEnd    int64
	Dur     int64 // End-Start; -1 when the span_end record is missing
	// Parent/PProc/PTick are the remote-parent pointers from the wire
	// context; empty for locally parented spans and for global roots.
	Parent   string
	PProc    string
	PTick    int64
	Children []*MergedSpan
}

// MergedTrace is the result of merging: the forest of global roots (one
// root in the healthy single-request case) plus the per-process clock
// offsets the alignment chose.
type MergedTrace struct {
	Roots   []*MergedSpan
	Offsets map[string]int64
	// Orphans counts spans whose remote parent could not be found in any
	// supplied journal (a journal is missing, or the parent's process name
	// does not match). They are promoted to roots so no data is dropped.
	Orphans int
}

// MergeTrace builds the causal tree across journals. Journals may be passed
// in any order; every ordering yields identical output.
func MergeTrace(journals []ProcessJournal) (*MergedTrace, error) {
	type key struct{ proc, id string }
	spans := map[key]*MergedSpan{}
	perProc := map[string][]*MergedSpan{}
	procs := make([]string, 0, len(journals))
	for _, j := range journals {
		if _, dup := perProc[j.Proc]; dup {
			return nil, fmt.Errorf("obs: merge: duplicate process name %q", j.Proc)
		}
		perProc[j.Proc] = nil
		procs = append(procs, j.Proc)
		for i := range j.Records {
			r := &j.Records[i]
			switch r.Kind {
			case "span_start":
				s := &MergedSpan{
					Proc: j.Proc, ID: r.Span, Name: r.Str("name"),
					TraceID: r.Str("trace"), Start: r.Tick, End: r.Tick, Dur: -1,
					Parent: r.Str("parent"), PProc: r.Str("pproc"), PTick: r.Int("ptick"),
				}
				if _, dup := spans[key{j.Proc, r.Span}]; dup {
					return nil, fmt.Errorf("obs: merge: duplicate span %s in process %q", r.Span, j.Proc)
				}
				spans[key{j.Proc, r.Span}] = s
				perProc[j.Proc] = append(perProc[j.Proc], s)
			case "span_end":
				if s, ok := spans[key{j.Proc, r.Span}]; ok {
					s.End = r.Tick
					s.Dur = r.Tick - s.Start
				}
			}
		}
	}
	sort.Strings(procs)

	// Parent resolution. Local first (span IDs encode their ancestry), then
	// the wire context for local roots.
	m := &MergedTrace{Offsets: map[string]int64{}}
	type edge struct {
		child *MergedSpan
		ptick int64 // parent-process tick at the send point
	}
	crossEdges := map[string][]edge{} // keyed by child process
	for _, proc := range procs {
		for _, s := range perProc[proc] {
			if i := strings.LastIndexByte(s.ID, '/'); i >= 0 {
				if p, ok := spans[key{proc, s.ID[:i]}]; ok {
					p.Children = append(p.Children, s)
					if s.TraceID == "" {
						s.TraceID = p.TraceID
					}
					continue
				}
			}
			if s.Parent != "" {
				if p, ok := spans[key{s.PProc, s.Parent}]; ok {
					p.Children = append(p.Children, s)
					crossEdges[proc] = append(crossEdges[proc], edge{child: s, ptick: s.PTick})
					continue
				}
				m.Orphans++
			}
			m.Roots = append(m.Roots, s)
		}
	}

	// Clock alignment: pick per-process offsets so every cross-process
	// child starts strictly after its parent's send tick in global time.
	// Iterative relaxation to a fixpoint; processes with no inbound edges
	// (the gateway) keep offset 0, so gateway ticks are the global frame.
	for _, proc := range procs {
		m.Offsets[proc] = 0
	}
	for iter := 0; iter <= len(procs); iter++ {
		changed := false
		for _, proc := range procs {
			for _, e := range crossEdges[proc] {
				need := m.Offsets[e.child.PProc] + e.ptick + 1 - e.child.Start
				if need > m.Offsets[proc] {
					m.Offsets[proc] = need
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	for _, proc := range procs {
		off := m.Offsets[proc]
		for _, s := range perProc[proc] {
			s.GStart = s.Start + off
			s.GEnd = s.End + off
		}
	}

	less := func(a, b *MergedSpan) bool {
		if a.GStart != b.GStart {
			return a.GStart < b.GStart
		}
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		return a.ID < b.ID
	}
	var sortTree func(s *MergedSpan)
	sortTree = func(s *MergedSpan) {
		sort.Slice(s.Children, func(i, j int) bool { return less(s.Children[i], s.Children[j]) })
		for _, c := range s.Children {
			sortTree(c)
		}
	}
	sort.Slice(m.Roots, func(i, j int) bool { return less(m.Roots[i], m.Roots[j]) })
	for _, r := range m.Roots {
		sortTree(r)
	}
	return m, nil
}

// CriticalPath walks from root to the leaf that determines the root's end
// time: at every level it descends into the child whose global end is
// latest (ties broken by global start, then process, then ID — all
// deterministic). The returned slice starts at root.
func CriticalPath(root *MergedSpan) []*MergedSpan {
	var path []*MergedSpan
	for s := root; s != nil; {
		path = append(path, s)
		var next *MergedSpan
		for _, c := range s.Children {
			if next == nil || laterEnd(c, next) {
				next = c
			}
		}
		s = next
	}
	return path
}

func laterEnd(a, b *MergedSpan) bool {
	if a.GEnd != b.GEnd {
		return a.GEnd > b.GEnd
	}
	if a.GStart != b.GStart {
		return a.GStart > b.GStart
	}
	if a.Proc != b.Proc {
		return a.Proc > b.Proc
	}
	return a.ID > b.ID
}

// StageStat aggregates all spans sharing one name — the per-stage view of
// the merged trace (forward, decode, dispatch, ...).
type StageStat struct {
	Name            string
	Count           int
	Total, Min, Max int64
	Unfinished      int
}

// StageBreakdown aggregates span durations by span name, sorted by total
// duration descending (ties by name) so the dominant stage leads the table.
// Unfinished spans are counted but contribute no duration.
func (m *MergedTrace) StageBreakdown() []StageStat {
	agg := map[string]*StageStat{}
	var walk func(s *MergedSpan)
	walk = func(s *MergedSpan) {
		st := agg[s.Name]
		if st == nil {
			st = &StageStat{Name: s.Name}
			agg[s.Name] = st
		}
		st.Count++
		if s.Dur < 0 {
			st.Unfinished++
		} else {
			st.Total += s.Dur
			if st.Count-st.Unfinished == 1 || s.Dur < st.Min {
				st.Min = s.Dur
			}
			if s.Dur > st.Max {
				st.Max = s.Dur
			}
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	for _, r := range m.Roots {
		walk(r)
	}
	out := make([]StageStat, 0, len(agg))
	for _, st := range agg {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// RenderMerged writes the human-readable merged-trace report: clock
// offsets, the causal tree, the per-stage breakdown table, and the critical
// path for each root. The output is a pure function of the input journals.
func RenderMerged(w io.Writer, m *MergedTrace) error {
	procs := make([]string, 0, len(m.Offsets))
	for p := range m.Offsets {
		procs = append(procs, p)
	}
	sort.Strings(procs)
	fmt.Fprintf(w, "merged trace: %d process(es), %d root span(s)\n", len(procs), len(m.Roots))
	for _, p := range procs {
		fmt.Fprintf(w, "  clock %-12s offset %+d\n", p, m.Offsets[p])
	}
	if m.Orphans > 0 {
		fmt.Fprintf(w, "  warning: %d span(s) reference a parent in a journal not supplied; promoted to roots\n", m.Orphans)
	}

	fmt.Fprintf(w, "\n== causal tree\n")
	var render func(s *MergedSpan, depth int)
	render = func(s *MergedSpan, depth int) {
		dur := "?"
		if s.Dur >= 0 {
			dur = fmt.Sprintf("%d", s.Dur)
		}
		fmt.Fprintf(w, "%s%s [%s %s] t=[%d,%d] dur=%s\n",
			strings.Repeat("  ", depth), s.Name, s.Proc, s.ID, s.GStart, s.GEnd, dur)
		for _, c := range s.Children {
			render(c, depth+1)
		}
	}
	for _, r := range m.Roots {
		if r.TraceID != "" {
			fmt.Fprintf(w, "trace %s\n", r.TraceID)
		}
		render(r, 0)
	}

	fmt.Fprintf(w, "\n== stage breakdown (ticks)\n")
	stats := m.StageBreakdown()
	nameW := len("stage")
	for _, st := range stats {
		if len(st.Name) > nameW {
			nameW = len(st.Name)
		}
	}
	fmt.Fprintf(w, "%-*s %6s %8s %6s %6s\n", nameW, "stage", "count", "total", "min", "max")
	for _, st := range stats {
		fmt.Fprintf(w, "%-*s %6d %8d %6d %6d", nameW, st.Name, st.Count, st.Total, st.Min, st.Max)
		if st.Unfinished > 0 {
			fmt.Fprintf(w, "  (%d unfinished)", st.Unfinished)
		}
		fmt.Fprintln(w)
	}

	for _, r := range m.Roots {
		fmt.Fprintf(w, "\n== critical path (root %s [%s %s])\n", r.Name, r.Proc, r.ID)
		path := CriticalPath(r)
		for i, s := range path {
			self := s.Dur
			if i+1 < len(path) && self >= 0 && path[i+1].Dur >= 0 {
				self -= path[i+1].Dur
			}
			dur, selfs := "?", "?"
			if s.Dur >= 0 {
				dur = fmt.Sprintf("%d", s.Dur)
			}
			if s.Dur >= 0 && (i+1 >= len(path) || path[i+1].Dur >= 0) {
				selfs = fmt.Sprintf("%d", self)
			}
			fmt.Fprintf(w, "%s%s [%s] dur=%s self=%s\n", strings.Repeat("  ", i), s.Name, s.Proc, dur, selfs)
		}
	}
	return nil
}

// Package obs is the structured observability layer: hierarchical spans
// with deterministic IDs, typed events for the attack/eval/serving loops,
// and pluggable sinks (JSONL journal, legacy text log, telemetry fan-in,
// live progress). It exists so a training run can be replayed and
// interrogated — "why did restart 2 win?", "which EOT draw killed
// convergence?" — without rerunning it.
//
// Two properties are load-bearing:
//
//   - Determinism. Nothing in this package draws randomness, and all
//     timestamps come from an injected Clock. Deterministic packages
//     (attack, eval, gan, yolo) stamp records with a LogicalClock — a
//     monotone counter — so the same seed produces a byte-identical
//     journal. Wall-clock reads live here (obs is on rtlint's globalrand
//     allowlist) and never leak into the packages that import obs.
//
//   - A free off-switch. A nil *Trace (or nil *Span) is the no-op sink:
//     every method returns immediately and allocates nothing, so trainers
//     instrument their hot loops unconditionally. The typed event methods
//     take structs by value for exactly this reason — no variadic slice is
//     built before the enabled check. cmd/benchperf's ObsNoopEmit
//     benchmark and TestNoopZeroAllocs pin the 0 allocs/op contract.
package obs

import (
	"reflect"
	"strconv"
	"sync/atomic"
	"time"
)

// SchemaVersion is the journal record-format version. Bump it whenever a
// record kind changes meaning or a field is renamed; readers refuse
// journals from a different version rather than misreading them.
const SchemaVersion = 1

// Clock supplies record timestamps. Implementations must be safe for
// concurrent use.
type Clock interface {
	// Now returns the current tick. The unit is implementation-defined:
	// nanoseconds for the wall clock, a call counter for the logical clock.
	Now() int64
}

// LogicalClock is a deterministic clock: each Now() returns the next value
// of a monotone counter. Journals stamped with it are byte-identical across
// runs with the same event sequence.
type LogicalClock struct {
	n atomic.Int64
}

// NewLogicalClock returns a counter clock starting at 1.
func NewLogicalClock() *LogicalClock { return &LogicalClock{} }

// Now returns the next counter value.
func (c *LogicalClock) Now() int64 { return c.n.Add(1) }

type wallClock struct{}

func (wallClock) Now() int64 { return time.Now().UnixNano() }

// WallClock returns the real-time clock (UnixNano ticks). Use it for
// serving-path traces where durations matter and determinism does not.
func WallClock() Clock { return wallClock{} }

// FixedClock always returns its own value — for tests that want fully
// static journal bytes.
type FixedClock int64

// Now returns the fixed tick.
func (c FixedClock) Now() int64 { return int64(c) }

// AttrKind discriminates the value slot of an Attr.
type AttrKind uint8

// The three attribute value kinds.
const (
	AttrFloat AttrKind = iota
	AttrInt
	AttrString
)

// Attr is one key/value pair on a record. Exactly one value slot is
// meaningful, selected by Kind.
type Attr struct {
	Key  string
	Kind AttrKind
	Num  float64
	Int  int64
	Str  string
}

// F builds a float attribute.
func F(key string, v float64) Attr { return Attr{Key: key, Kind: AttrFloat, Num: v} }

// I builds an int attribute.
func I(key string, v int) Attr { return Attr{Key: key, Kind: AttrInt, Int: int64(v)} }

// I64 builds an int64 attribute.
func I64(key string, v int64) Attr { return Attr{Key: key, Kind: AttrInt, Int: v} }

// B builds a 0/1 int attribute from a bool.
func B(key string, v bool) Attr {
	n := int64(0)
	if v {
		n = 1
	}
	return Attr{Key: key, Kind: AttrInt, Int: n}
}

// S builds a string attribute.
func S(key, v string) Attr { return Attr{Key: key, Kind: AttrString, Str: v} }

// Record is one observation: a kind, the span it belongs to, a clock tick,
// and ordered attributes. Attribute order is the journal field order, so
// emitters must build it deterministically.
type Record struct {
	Kind  string
	Span  string // span ID; "" for trace-level records
	Tick  int64
	Attrs []Attr
}

// Float returns the named float attribute (0 when absent). Int attributes
// are converted.
func (r *Record) Float(key string) float64 {
	for i := range r.Attrs {
		if r.Attrs[i].Key == key {
			if r.Attrs[i].Kind == AttrInt {
				return float64(r.Attrs[i].Int)
			}
			return r.Attrs[i].Num
		}
	}
	return 0
}

// Int returns the named int attribute (0 when absent).
func (r *Record) Int(key string) int64 {
	for i := range r.Attrs {
		if r.Attrs[i].Key == key {
			return r.Attrs[i].Int
		}
	}
	return 0
}

// Str returns the named string attribute ("" when absent).
func (r *Record) Str(key string) string {
	for i := range r.Attrs {
		if r.Attrs[i].Key == key {
			return r.Attrs[i].Str
		}
	}
	return ""
}

// Sink receives stamped records. Implementations must be safe for
// concurrent Emit calls and must not retain r or r.Attrs after returning
// (the caller may reuse the backing array).
type Sink interface {
	Emit(r *Record)
	Flush() error
}

// Trace is the root observability handle threaded through trainers and the
// evaluation/serving paths. A nil *Trace is the canonical no-op: every
// method on it (and on the nil *Span it hands out) returns immediately.
type Trace struct {
	sink    Sink
	clock   Clock
	process string
	roots   atomic.Int64
}

// New builds a trace around a sink. A nil sink — including a typed nil
// like NewTextSink(nil) — yields a nil (disabled) trace; a nil clock
// defaults to a fresh LogicalClock so the trace is deterministic unless the
// caller opts into wall time.
func New(sink Sink, clock Clock) *Trace {
	if isNilSink(sink) {
		return nil
	}
	if clock == nil {
		clock = NewLogicalClock()
	}
	return &Trace{sink: sink, clock: clock}
}

// Enabled reports whether records are being collected.
func (t *Trace) Enabled() bool { return t != nil && t.sink != nil }

// Flush flushes the underlying sink.
func (t *Trace) Flush() error {
	if !t.Enabled() {
		return nil
	}
	return t.sink.Flush()
}

// emit stamps and forwards one record.
func (t *Trace) emit(kind, span string, attrs []Attr) {
	r := Record{Kind: kind, Span: span, Tick: t.clock.Now(), Attrs: attrs}
	t.sink.Emit(&r)
}

// Span opens a top-level span. IDs are deterministic — "name#n" where n is
// the per-trace sequence number — so two runs with the same seed produce
// identical span trees.
func (t *Trace) Span(name string, attrs ...Attr) *Span {
	if !t.Enabled() {
		return nil
	}
	n := t.roots.Add(1) - 1
	return t.startSpan(name, name+"#"+strconv.FormatInt(n, 10), "", nil, attrs)
}

// startSpan opens a span and emits its span_start record. ctx holds the
// trace-context attributes (trace/parent/pproc/ptick) that SpanInContext
// prepends between the name and the caller's attrs; plain spans pass nil so
// their journal bytes are unchanged.
func (t *Trace) startSpan(name, id, traceID string, ctx, attrs []Attr) *Span {
	s := &Span{t: t, ID: id, name: name, traceID: traceID, start: t.clock.Now()}
	rec := make([]Attr, 0, len(ctx)+len(attrs)+1)
	rec = append(rec, S("name", name))
	rec = append(rec, ctx...)
	rec = append(rec, attrs...)
	r := Record{Kind: "span_start", Span: id, Tick: s.start, Attrs: rec}
	t.sink.Emit(&r)
	return s
}

// Span is one node of the trace hierarchy. A nil *Span is a no-op.
type Span struct {
	t        *Trace
	ID       string
	name     string
	traceID  string
	start    int64
	children atomic.Int64
}

// Enabled reports whether events on this span are collected.
func (s *Span) Enabled() bool { return s != nil && s.t.Enabled() }

// Child opens a sub-span with a deterministic ID parent/name#n.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if !s.Enabled() {
		return nil
	}
	n := s.children.Add(1) - 1
	id := s.ID + "/" + name + "#" + strconv.FormatInt(n, 10)
	return s.t.startSpan(name, id, s.traceID, nil, attrs)
}

// End closes the span, recording its duration in clock ticks.
func (s *Span) End(attrs ...Attr) {
	if !s.Enabled() {
		return
	}
	end := s.t.clock.Now()
	rec := make([]Attr, 0, len(attrs)+1)
	rec = append(rec, I64("dur", end-s.start))
	rec = append(rec, attrs...)
	r := Record{Kind: "span_end", Span: s.ID, Tick: end, Attrs: rec}
	s.t.sink.Emit(&r)
}

// Event emits a generic event on the span. Cold paths only: the variadic
// attribute slice is built before the enabled check, so hot loops should
// use the typed methods in events.go (struct arguments, zero allocation
// when disabled).
func (s *Span) Event(kind string, attrs ...Attr) {
	if !s.Enabled() {
		return
	}
	s.t.emit(kind, s.ID, attrs)
}

// multiSink fans records out to several sinks in order.
type multiSink []Sink

func (m multiSink) Emit(r *Record) {
	for _, s := range m {
		s.Emit(r)
	}
}

func (m multiSink) Flush() error {
	var first error
	for _, s := range m {
		if err := s.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// isNilSink reports whether s is nil or a non-nil interface holding a nil
// pointer (a typed nil, like the NewTextSink(nil) result).
func isNilSink(s Sink) bool {
	if s == nil {
		return true
	}
	v := reflect.ValueOf(s)
	return v.Kind() == reflect.Pointer && v.IsNil()
}

// Multi combines sinks, dropping nils — including typed nils. It returns
// nil when no sink remains, so New(Multi(maybeNil...), clock) degrades to a
// disabled trace.
func Multi(sinks ...Sink) Sink {
	var out multiSink
	for _, s := range sinks {
		if isNilSink(s) {
			continue
		}
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil
	}
	if len(out) == 1 {
		return out[0]
	}
	return out
}

package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"roadtrojan/internal/telemetry"
)

// ProgressState is the live snapshot served at /progress: the most recent
// value of each headline quantity, plus totals. It is a monitoring view, not
// a journal — history lives in the JSONL file.
type ProgressState struct {
	Iter       int     `json:"iter"`
	Segment    int     `json:"segment"`
	Method     string  `json:"method"`
	AttackLoss float64 `json:"attack_loss"`
	GanG       float64 `json:"gan_g"`
	GanD       float64 `json:"gan_d"`
	Total      float64 `json:"total"`
	PTarget    float64 `json:"p_target"`
	GradNorm   float64 `json:"grad_norm"`
	Best       float64 `json:"best"`
	InkMean    float64 `json:"ink_mean"`
	Verifies   int     `json:"verifies"`
	EvalRuns   int     `json:"eval_runs"`
	LastPWC    float64 `json:"last_pwc"`
	LastCWC    bool    `json:"last_cwc"`
	Records    int64   `json:"records"`
}

// ProgressSink maintains ProgressState from the record stream and serves it
// over HTTP together with /metrics and (always, since a progress listener is
// an explicit debugging opt-in) /debug/pprof.
type ProgressSink struct {
	mu    sync.Mutex
	state ProgressState
	reg   *telemetry.Registry
}

// NewProgressSink returns an empty progress view. reg may be nil; then
// /metrics serves an empty registry.
func NewProgressSink(reg *telemetry.Registry) *ProgressSink {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return &ProgressSink{reg: reg}
}

// Registry returns the registry /metrics serves, for composing with a
// TelemetrySink feeding the same registry.
func (p *ProgressSink) Registry() *telemetry.Registry { return p.reg }

// Emit updates the live snapshot.
func (p *ProgressSink) Emit(r *Record) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.state.Records++
	switch r.Kind {
	case "iter":
		p.state.Iter = int(r.Int("it"))
		p.state.Segment = int(r.Int("seg"))
		p.state.Method = r.Str("method")
		p.state.AttackLoss = r.Float("attack")
		p.state.GanG = r.Float("gan_g")
		p.state.GanD = r.Float("gan_d")
		p.state.Total = r.Float("total")
		p.state.PTarget = r.Float("p_target")
		p.state.GradNorm = r.Float("grad_norm")
		p.state.Best = r.Float("best")
		p.state.InkMean = r.Float("ink_mean")
	case "verify":
		p.state.Verifies++
		p.state.Best = r.Float("best")
	case "eval_run":
		p.state.EvalRuns++
		p.state.LastPWC = r.Float("pwc")
		p.state.LastCWC = r.Int("cwc") == 1
	}
}

// Flush is a no-op: the snapshot is always current.
func (p *ProgressSink) Flush() error { return nil }

// Snapshot returns a copy of the current state.
func (p *ProgressSink) Snapshot() ProgressState {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state
}

// Handler serves the live-introspection endpoints:
//
//	/progress     current ProgressState as JSON
//	/metrics      the telemetry registry (Prometheus text format)
//	/debug/pprof  the standard Go profiler index and profiles
func (p *ProgressSink) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		st := p.Snapshot()
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(st)
	})
	mux.Handle("/metrics", p.reg.Handler())
	RegisterPprof(mux)
	return mux
}

// RegisterPprof mounts the net/http/pprof handlers on mux under
// /debug/pprof. Mounting is explicit (rather than the package's
// DefaultServeMux side effect) so servers only expose the profiler when
// asked to.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// ServeProgress binds addr synchronously (so a bad address fails fast),
// then serves the progress endpoints in a goroutine. The returned server's
// Close stops it. Intended for CLI -progress flags.
func ServeProgress(addr string, p *ProgressSink) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: progress listen: %w", err)
	}
	srv := &http.Server{Addr: ln.Addr().String(), Handler: p.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return srv, nil
}

package obs

// Typed events for the repository's hot loops. Each takes its payload as a
// struct by value so that calling it on a disabled span costs nothing: no
// slice is materialized before the enabled check, which is what keeps the
// no-op path at 0 allocs/op (see TestNoopZeroAllocs and the ObsNoopEmit
// benchmark in cmd/benchperf).
//
// The attribute build order below is the journal field order; keep it
// stable — golden journals depend on it.

// IterStats is one attack-trainer iteration: the Eq. 1/2 loss
// decomposition (GAN realism + α-weighted attack term), the gradient norm
// reaching the patch, and the patch's ink statistics.
type IterStats struct {
	Method string // "ours" | "direct" | "baseline"
	It     int    // global iteration index
	Seg    int    // restart-segment index
	Final  bool   // last iteration of the run

	Attack   float64 // raw attack loss
	Alpha    float64 // α weight from Eq. 1/2
	Weighted float64 // α·Attack, the attack term as optimized
	GanG     float64 // generator adversarial loss (ours only)
	GanD     float64 // discriminator loss (ours only)
	Total    float64 // full objective: GanG + α·Attack (Eq. 1), or Attack

	PTarget  float64 // detector's mean target-class probability
	GradNorm float64 // L2 of the gradient reaching the patch layer
	LR       float64 // generator/patch learning rate after decay
	InkMean  float64 // mean ink coverage over the silhouette (1 = solid)
	InkFrac  float64 // fraction of silhouette pixels more ink than paper
	Best     float64 // best combined verify score so far (-1 = none yet)
}

// Iter emits one "iter" record.
func (s *Span) Iter(v IterStats) {
	if !s.Enabled() {
		return
	}
	s.t.emit("iter", s.ID, []Attr{
		S("method", v.Method), I("it", v.It), I("seg", v.Seg), B("final", v.Final),
		F("attack", v.Attack), F("alpha", v.Alpha), F("weighted", v.Weighted),
		F("gan_g", v.GanG), F("gan_d", v.GanD), F("total", v.Total),
		F("p_target", v.PTarget), F("grad_norm", v.GradNorm), F("lr", v.LR),
		F("ink_mean", v.InkMean), F("ink_frac", v.InkFrac), F("best", v.Best),
	})
}

// EOTDraw is one sampled EOT transform chain A(·;θ): the drawn parameters
// for each of the paper's five tricks, at their identity values when the
// trick is not in the active set.
type EOTDraw struct {
	It       int // iteration the draw belongs to
	Frame    int // frame index within the window
	Resize   float64
	Rotation float64 // radians
	Bright   float64
	Gamma    float64
	Persp    float64 // mean absolute corner displacement, px
}

// EOT emits one "eot" record.
func (s *Span) EOT(v EOTDraw) {
	if !s.Enabled() {
		return
	}
	s.t.emit("eot", s.ID, []Attr{
		I("it", v.It), I("frame", v.Frame),
		F("resize", v.Resize), F("rot", v.Rotation), F("bright", v.Bright),
		F("gamma", v.Gamma), F("persp", v.Persp),
	})
}

// VerifyStats is one snapshot verification: the paper's
// confirm-digitally-then-physically protocol score for a candidate patch.
type VerifyStats struct {
	It    int
	Score float64 // combined digital+physical verify score
	Best  float64 // best score after this verification
	Kept  bool    // this candidate became the printed artifact so far
}

// Verify emits one "verify" record.
func (s *Span) Verify(v VerifyStats) {
	if !s.Enabled() {
		return
	}
	s.t.emit("verify", s.ID, []Attr{
		I("it", v.It), F("score", v.Score), F("best", v.Best), B("kept", v.Kept),
	})
}

// GanDStep is one discriminator update inside the GAN trainer.
type GanDStep struct {
	It   int
	Loss float64 // real+fake BCE after the step's forward passes
}

// GanD emits one "gan_d" record.
func (s *Span) GanD(v GanDStep) {
	if !s.Enabled() {
		return
	}
	s.t.emit("gan_d", s.ID, []Attr{I("it", v.It), F("loss", v.Loss)})
}

// EpochStats is one detector-training epoch.
type EpochStats struct {
	Epoch int
	Loss  float64
	LR    float64
}

// Epoch emits one "epoch" record.
func (s *Span) Epoch(v EpochStats) {
	if !s.Enabled() {
		return
	}
	s.t.emit("epoch", s.ID, []Attr{I("epoch", v.Epoch), F("loss", v.Loss), F("lr", v.LR)})
}

// EvalRunStats is one evaluation repetition's PWC/CWC outcome.
type EvalRunStats struct {
	Run        int
	PWC        float64
	CWC        bool
	Frames     int
	WrongRun   int
	DetectRate float64
}

// EvalRun emits one "eval_run" record.
func (s *Span) EvalRun(v EvalRunStats) {
	if !s.Enabled() {
		return
	}
	s.t.emit("eval_run", s.ID, []Attr{
		I("run", v.Run), F("pwc", v.PWC), B("cwc", v.CWC),
		I("frames", v.Frames), I("wrong_run", v.WrongRun), F("detect_rate", v.DetectRate),
	})
}

// EvalScoreStats is the aggregate PWC/CWC over a job's repetitions.
type EvalScoreStats struct {
	PWC        float64
	CWC        bool
	Frames     int
	WrongRun   int
	DetectRate float64
	Runs       int
}

// EvalScore emits one "eval_score" record.
func (s *Span) EvalScore(v EvalScoreStats) {
	if !s.Enabled() {
		return
	}
	s.t.emit("eval_score", s.ID, []Attr{
		F("pwc", v.PWC), B("cwc", v.CWC), I("frames", v.Frames),
		I("wrong_run", v.WrongRun), F("detect_rate", v.DetectRate), I("runs", v.Runs),
	})
}

// KnownKinds returns the set of record kinds this schema version defines.
// ReadJournal rejects records outside it.
func KnownKinds() map[string]bool {
	return map[string]bool{
		"journal": true, "span_start": true, "span_end": true,
		"iter": true, "eot": true, "verify": true, "gan_d": true,
		"epoch": true, "eval_run": true, "eval_score": true,
	}
}

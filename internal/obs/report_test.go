package obs

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"unicode/utf8"
)

func loadSampleReport(t *testing.T) (*Report, string) {
	t.Helper()
	f, err := os.Open("testdata/sample.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := ReadJournal(f)
	if err != nil {
		t.Fatalf("sample journal invalid: %v", err)
	}
	rep := BuildReport(recs)
	var buf bytes.Buffer
	rep.Render(&buf)
	return rep, buf.String()
}

func TestBuildReport(t *testing.T) {
	rep, _ := loadSampleReport(t)
	if len(rep.Segments) != 2 {
		t.Fatalf("got %d segments, want 2", len(rep.Segments))
	}
	s0, s1 := rep.Segments[0], rep.Segments[1]
	if s0.Seg != 0 || s0.Iters != 3 || s0.FirstIt != 0 || s0.LastIt != 2 {
		t.Fatalf("segment 0 wrong: %+v", s0)
	}
	if s0.FirstLoss != 12.5 || s0.LastLoss != 5.5 || s0.MinLoss != 5.5 {
		t.Fatalf("segment 0 losses wrong: %+v", s0)
	}
	if s1.Seg != 1 || s1.MinLoss != 2.8 || s1.LastProb != 0.35 {
		t.Fatalf("segment 1 wrong: %+v", s1)
	}
	if rep.Verify.Count != 2 || rep.Verify.Best != 0.62 || rep.Verify.BestIt != 5 || rep.Verify.Kept != 2 {
		t.Fatalf("verify summary wrong: %+v", rep.Verify)
	}
	if !rep.Eval.Present || rep.Eval.PWC != 0.825 || !rep.Eval.CWC || rep.Eval.Runs != 2 {
		t.Fatalf("eval summary wrong: %+v", rep.Eval)
	}
	if len(rep.Eval.RunPWC) != 2 {
		t.Fatalf("per-run PWC missing: %+v", rep.Eval.RunPWC)
	}
}

// TestReportGolden pins the rendered report byte-for-byte. Regenerate with
// ROADTROJAN_UPDATE_GOLDEN=1 go test ./internal/obs -run Golden
func TestReportGolden(t *testing.T) {
	_, got := loadSampleReport(t)
	const golden = "testdata/sample.report.golden"
	if os.Getenv("ROADTROJAN_UPDATE_GOLDEN") == "1" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("report drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil, 10) != "" {
		t.Fatal("empty input should render empty")
	}
	if Sparkline([]float64{1, 2, 3}, 0) != "" {
		t.Fatal("zero width should render empty")
	}
	// A flat series renders at mid height, not blanks.
	flat := Sparkline([]float64{2, 2, 2, 2}, 4)
	if utf8.RuneCountInString(flat) != 4 {
		t.Fatalf("flat sparkline width = %d, want 4", utf8.RuneCountInString(flat))
	}
	for _, r := range flat {
		if r != sparkRunes[len(sparkRunes)/2] {
			t.Fatalf("flat sparkline should be mid-height, got %q", flat)
		}
	}
	// A monotone ramp starts at the lowest rune and ends at the highest.
	ramp := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	runes := []rune(ramp)
	if runes[0] != sparkRunes[0] || runes[len(runes)-1] != sparkRunes[len(sparkRunes)-1] {
		t.Fatalf("ramp endpoints wrong: %q", ramp)
	}
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Fatalf("ramp not monotone: %q", ramp)
		}
	}
	// Downsampling keeps the requested width.
	long := make([]float64, 1000)
	for i := range long {
		long[i] = float64(i % 37)
	}
	if w := utf8.RuneCountInString(Sparkline(long, 48)); w != 48 {
		t.Fatalf("downsampled width = %d, want 48", w)
	}
	// Width beyond the data clamps to the data length.
	if w := utf8.RuneCountInString(Sparkline([]float64{1, 2}, 48)); w != 2 {
		t.Fatalf("short-series width = %d, want 2", w)
	}
}

func TestRenderMentionsSegments(t *testing.T) {
	_, out := loadSampleReport(t)
	for _, want := range []string{"restart segments", "attack-loss curves", "PWC 0.825", "CWC yes", "best score 0.620 at iter 5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// This file turns a parsed journal back into something a human can read:
// per-restart-segment summary tables with ASCII loss-curve sparklines, the
// verification history, and the final PWC/CWC evaluation. cmd/runreport is a
// thin shell around BuildReport + Render.

// SegmentSummary aggregates the iter records of one restart segment.
type SegmentSummary struct {
	Method    string
	Seg       int
	FirstIt   int
	LastIt    int
	Iters     int
	FirstLoss float64
	LastLoss  float64
	MinLoss   float64
	MeanLoss  float64
	LastProb  float64
	BestScore float64   // best verify score reached by the segment's end
	Losses    []float64 // attack-loss curve, iteration order
}

// VerifySummary aggregates verify records.
type VerifySummary struct {
	Count  int
	Best   float64
	BestIt int
	Kept   int
}

// EvalSummary is the final eval_score record plus per-run PWC values.
type EvalSummary struct {
	Present    bool
	PWC        float64
	CWC        bool
	Frames     int
	WrongRun   int
	DetectRate float64
	Runs       int
	RunPWC     []float64
}

// Report is the digest of one journal.
type Report struct {
	Records  int
	Segments []SegmentSummary
	Verify   VerifySummary
	Eval     EvalSummary
	Epochs   int // detector-training epoch records, if the journal has any
}

// BuildReport folds journal records into a Report. Records outside the
// kinds it understands are counted but otherwise ignored, so journals from
// mixed pipelines (train + eval in one file) digest cleanly.
func BuildReport(recs []JournalRecord) *Report {
	rep := &Report{Records: len(recs)}
	segIdx := map[[2]interface{}]int{} // (method, seg) -> index in rep.Segments
	for i := range recs {
		r := &recs[i]
		switch r.Kind {
		case "iter":
			key := [2]interface{}{r.Str("method"), int(r.Int("seg"))}
			idx, ok := segIdx[key]
			if !ok {
				idx = len(rep.Segments)
				segIdx[key] = idx
				rep.Segments = append(rep.Segments, SegmentSummary{
					Method:  r.Str("method"),
					Seg:     int(r.Int("seg")),
					FirstIt: int(r.Int("it")),
					MinLoss: math.Inf(1),
				})
			}
			s := &rep.Segments[idx]
			loss := r.Float("attack")
			s.LastIt = int(r.Int("it"))
			s.Iters++
			if s.Iters == 1 {
				s.FirstLoss = loss
			}
			s.LastLoss = loss
			if loss < s.MinLoss {
				s.MinLoss = loss
			}
			s.MeanLoss += loss
			s.LastProb = r.Float("p_target")
			s.BestScore = r.Float("best")
			s.Losses = append(s.Losses, loss)
		case "verify":
			rep.Verify.Count++
			if r.Int("kept") == 1 {
				rep.Verify.Kept++
			}
			if sc := r.Float("score"); rep.Verify.Count == 1 || sc > rep.Verify.Best {
				rep.Verify.Best = sc
				rep.Verify.BestIt = int(r.Int("it"))
			}
		case "eval_run":
			rep.Eval.RunPWC = append(rep.Eval.RunPWC, r.Float("pwc"))
		case "eval_score":
			rep.Eval.Present = true
			rep.Eval.PWC = r.Float("pwc")
			rep.Eval.CWC = r.Int("cwc") == 1
			rep.Eval.Frames = int(r.Int("frames"))
			rep.Eval.WrongRun = int(r.Int("wrong_run"))
			rep.Eval.DetectRate = r.Float("detect_rate")
			rep.Eval.Runs = int(r.Int("runs"))
		case "epoch":
			rep.Epochs++
		}
	}
	for i := range rep.Segments {
		if rep.Segments[i].Iters > 0 {
			rep.Segments[i].MeanLoss /= float64(rep.Segments[i].Iters)
		}
	}
	sort.SliceStable(rep.Segments, func(a, b int) bool {
		sa, sb := &rep.Segments[a], &rep.Segments[b]
		if sa.Method != sb.Method {
			return sa.Method < sb.Method
		}
		return sa.Seg < sb.Seg
	})
	return rep
}

// sparkRunes are the eight block heights of an ASCII(-art) sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders vals as a fixed-width block-character curve. Values are
// bucketed by mean when len(vals) > width; a flat (or single-value) series
// renders at mid height so it is visibly "present but flat".
func Sparkline(vals []float64, width int) string {
	if len(vals) == 0 || width <= 0 {
		return ""
	}
	if width > len(vals) {
		width = len(vals)
	}
	buckets := make([]float64, width)
	for i := 0; i < width; i++ {
		lo := i * len(vals) / width
		hi := (i + 1) * len(vals) / width
		if hi <= lo {
			hi = lo + 1
		}
		sum := 0.0
		for _, v := range vals[lo:hi] {
			sum += v
		}
		buckets[i] = sum / float64(hi-lo)
	}
	min, max := buckets[0], buckets[0]
	for _, v := range buckets[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	var sb strings.Builder
	span := max - min
	for _, v := range buckets {
		idx := len(sparkRunes) / 2
		if span > 0 {
			idx = int((v - min) / span * float64(len(sparkRunes)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(sparkRunes) {
				idx = len(sparkRunes) - 1
			}
		}
		sb.WriteRune(sparkRunes[idx])
	}
	return sb.String()
}

// sparkWidth is the sparkline column width in Render.
const sparkWidth = 48

// Render writes the report as aligned text tables.
func (rep *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "journal: schema %d, %d records\n", SchemaVersion, rep.Records)
	if len(rep.Segments) > 0 {
		fmt.Fprintf(w, "\nrestart segments\n")
		fmt.Fprintf(w, "%-9s %4s %11s %12s %12s %12s %12s %10s %6s\n",
			"method", "seg", "iters", "first", "last", "min", "mean", "p(target)", "best")
		for i := range rep.Segments {
			s := &rep.Segments[i]
			fmt.Fprintf(w, "%-9s %4d %5d..%-5d %12.4f %12.4f %12.4f %12.4f %10.3f %6.2f\n",
				s.Method, s.Seg, s.FirstIt, s.LastIt, s.FirstLoss, s.LastLoss, s.MinLoss, s.MeanLoss, s.LastProb, s.BestScore)
		}
		fmt.Fprintf(w, "\nattack-loss curves\n")
		for i := range rep.Segments {
			s := &rep.Segments[i]
			fmt.Fprintf(w, "%-9s seg %d  %s\n", s.Method, s.Seg, Sparkline(s.Losses, sparkWidth))
		}
	}
	if rep.Verify.Count > 0 {
		fmt.Fprintf(w, "\nverification: %d snapshots, %d kept, best score %.3f at iter %d\n",
			rep.Verify.Count, rep.Verify.Kept, rep.Verify.Best, rep.Verify.BestIt)
	}
	if len(rep.Eval.RunPWC) > 0 {
		fmt.Fprintf(w, "\nper-run PWC  %s\n", Sparkline(rep.Eval.RunPWC, sparkWidth))
		for i, p := range rep.Eval.RunPWC {
			fmt.Fprintf(w, "  run %2d  PWC %.3f\n", i, p)
		}
	}
	if rep.Eval.Present {
		cwc := "no"
		if rep.Eval.CWC {
			cwc = "yes"
		}
		fmt.Fprintf(w, "\nevaluation: PWC %.3f  CWC %s  frames %d  wrong-run %d  detect %.3f  (%d runs)\n",
			rep.Eval.PWC, cwc, rep.Eval.Frames, rep.Eval.WrongRun, rep.Eval.DetectRate, rep.Eval.Runs)
	}
	if rep.Epochs > 0 {
		fmt.Fprintf(w, "\ndetector training: %d epochs\n", rep.Epochs)
	}
}

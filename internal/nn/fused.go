package nn

import (
	"math"
	"math/rand"

	"roadtrojan/internal/tensor"
)

// ConvBNLeaky is the darknet conv block — Conv2D → BatchNorm2D → LeakyReLU —
// as one module, with an eval-time fused fast path. Training-mode behavior is
// exactly the three submodules chained (Forward caches, Backward, batch
// statistics all intact). In inference mode, when fusing is switched on with
// SetFused(true), Forward runs a single tensor kernel pass instead of three
// module passes:
//
//   - exact-parity mode (the default): tensor.Conv2DBNLeaky keeps the
//     batch-norm arithmetic verbatim, so the output is bit-identical to the
//     unfused chain — fused and unfused serving replicas stay
//     byte-interchangeable.
//   - folded mode (SetExactParity(false)): the batch-norm scale/shift is
//     folded into the convolution weights once (tensor.FoldBN), and
//     tensor.Conv2DBiasLeaky runs conv+bias+leaky in one pass. Equal to the
//     unfused chain only up to floating-point reassociation (see the parity
//     suite's epsilon).
//
// Folds snapshot the parameters and running statistics at SetTraining(false)
// / SetFused(true) time; mutate either and the next mode switch refolds.
// When tensor.RefKernelsEnabled() is set (benchmark/parity harness), Forward
// always takes the unfused chain so the reference window measures the
// genuinely unfused pipeline.
//
// The fused pass does not populate Backward caches: Backward after a fused
// Forward panics. The attack trainer's eval-mode Forward→Backward loop keeps
// fusing off (the default) and is unaffected.
type ConvBNLeaky struct {
	Conv *Conv2D
	BN   *BatchNorm2D
	Act  *LeakyReLU

	fused       bool
	exactParity bool

	// Fold snapshot, rebuilt lazily after any mode switch.
	foldDirty bool
	gamma     []float64
	beta      []float64
	mean      []float64
	invSD     []float64
	foldedW   *tensor.Tensor
	foldedB   *tensor.Tensor

	// True when the most recent Forward took the fused kernel path (and
	// therefore left no Backward caches behind).
	fusedForward bool
}

var _ Module = (*ConvBNLeaky)(nil)
var _ ModeSetter = (*ConvBNLeaky)(nil)

// NewConvBNLeaky builds a fresh darknet conv block: bias-free He-initialized
// convolution, batch norm over outC channels, leaky rectifier. Fusing starts
// off; exact parity starts on.
func NewConvBNLeaky(rng *rand.Rand, name string, inC, outC, kernel, stride, pad int, slope float64) *ConvBNLeaky {
	return WrapConvBNLeaky(
		NewConv2D(rng, name, inC, outC, kernel, stride, pad, false),
		NewBatchNorm2D(name+".bn", outC),
		NewLeakyReLU(slope),
	)
}

// WrapConvBNLeaky assembles a block from existing submodules (the path
// yolo.Model uses when loading states built around the unfused layers). The
// convolution must be bias-free: batch norm's β is the block's shift, per
// the darknet conv+BN convention.
func WrapConvBNLeaky(conv *Conv2D, bn *BatchNorm2D, act *LeakyReLU) *ConvBNLeaky {
	if conv.Bias != nil {
		panic("nn: ConvBNLeaky requires a bias-free Conv2D (batch norm supplies the shift)")
	}
	if conv.OutC != bn.C {
		panic("nn: ConvBNLeaky channel mismatch between Conv2D and BatchNorm2D")
	}
	return &ConvBNLeaky{Conv: conv, BN: bn, Act: act, exactParity: true, foldDirty: true}
}

// SetFused toggles the eval-time fused kernel path. Enabling it while in
// inference mode folds immediately; in training mode the fold waits for
// SetTraining(false).
func (f *ConvBNLeaky) SetFused(on bool) {
	f.fused = on
	f.foldDirty = true
	if on && !f.BN.Training() {
		f.refold()
	}
}

// Fused reports whether the fused kernel path is enabled.
func (f *ConvBNLeaky) Fused() bool { return f.fused }

// SetExactParity selects between the bit-identical fused kernel (true, the
// default) and the folded-weights kernel (false, epsilon-close but one
// elementwise pass cheaper).
func (f *ConvBNLeaky) SetExactParity(on bool) { f.exactParity = on }

// SetTraining propagates the mode to the batch norm. Entering inference mode
// with fusing enabled folds the weights once, here, so serving paths pay the
// fold outside the request hot path.
func (f *ConvBNLeaky) SetTraining(training bool) {
	f.BN.SetTraining(training)
	f.foldDirty = true
	if !training && f.fused {
		f.refold()
	}
}

// refold rebuilds the fold snapshot from the current parameters and running
// statistics: the per-channel affine (exact-parity kernel) and the folded
// weight/bias tensors (folded kernel).
func (f *ConvBNLeaky) refold() {
	if !f.foldDirty {
		return
	}
	c := f.BN.C
	if len(f.gamma) != c {
		f.gamma = make([]float64, c)
		f.beta = make([]float64, c)
		f.mean = make([]float64, c)
		f.invSD = make([]float64, c)
	}
	copy(f.gamma, f.BN.Gamma.Value.Data())
	copy(f.beta, f.BN.Beta.Value.Data())
	copy(f.mean, f.BN.RunningMean.Data())
	for ch, v := range f.BN.RunningVar.Data() {
		f.invSD[ch] = 1 / math.Sqrt(v+f.BN.Eps)
	}
	f.foldedW, f.foldedB = tensor.FoldBN(f.Conv.Weight.Value,
		f.gamma, f.beta, f.mean, f.BN.RunningVar.Data(), f.BN.Eps)
	f.foldDirty = false
}

// Forward runs the block. Fused inference takes one kernel pass; every other
// mode chains the submodules (preserving their Backward caches).
func (f *ConvBNLeaky) Forward(x *tensor.Tensor) *tensor.Tensor {
	if f.fused && !f.BN.Training() && !tensor.RefKernelsEnabled() {
		f.refold()
		f.fusedForward = true
		if f.exactParity {
			return tensor.Conv2DBNLeaky(x, f.Conv.Weight.Value,
				f.gamma, f.beta, f.mean, f.invSD, f.Conv.Stride, f.Conv.Pad, f.Act.Slope)
		}
		return tensor.Conv2DBiasLeaky(x, f.foldedW, f.foldedB, f.Conv.Stride, f.Conv.Pad, f.Act.Slope)
	}
	f.fusedForward = false
	return f.Act.Forward(f.BN.Forward(f.Conv.Forward(x)))
}

// Backward chains the submodule gradients. A fused Forward leaves no caches
// behind, so Backward after one panics — run with fusing off (the default)
// to train, as the attack trainer does.
func (f *ConvBNLeaky) Backward(dOut *tensor.Tensor) *tensor.Tensor {
	if f.fusedForward {
		panic("nn: ConvBNLeaky.Backward after a fused Forward; fused kernels are inference-only (SetFused(false) to train)")
	}
	return f.Conv.Backward(f.BN.Backward(f.Act.Backward(dOut)))
}

// Params returns the convolution weights and the batch-norm affine.
func (f *ConvBNLeaky) Params() []*Param {
	return append(f.Conv.Params(), f.BN.Params()...)
}

// Clone returns a deep copy sharing no state; the fold snapshot is rebuilt
// on the clone's first fused Forward (or mode switch).
func (f *ConvBNLeaky) Clone() *ConvBNLeaky {
	return &ConvBNLeaky{
		Conv: f.Conv.Clone(), BN: f.BN.Clone(), Act: f.Act.Clone(),
		fused: f.fused, exactParity: f.exactParity, foldDirty: true,
	}
}

// CloneModule implements Cloner.
func (f *ConvBNLeaky) CloneModule() Module { return f.Clone() }

package nn

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"roadtrojan/internal/tensor"
)

// State is a named collection of tensors — parameters plus persistent
// buffers such as batch-norm running statistics.
type State map[string]*tensor.Tensor

// ErrBadWeights is returned when a weights stream is corrupt or has the
// wrong magic/version.
var ErrBadWeights = errors.New("nn: malformed weights data")

const (
	weightsMagic   = uint32(0x52545754) // "RTWT"
	weightsVersion = uint32(1)
)

// SaveState writes the state to w in a deterministic binary format
// (entries sorted by name).
func SaveState(w io.Writer, state State) error {
	bw := bufio.NewWriter(w)
	names := make([]string, 0, len(state))
	for n := range state {
		names = append(names, n)
	}
	sort.Strings(names)

	hdr := []uint32{weightsMagic, weightsVersion, uint32(len(names))}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, name := range names {
		t := state[name]
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(name); err != nil {
			return err
		}
		shape := t.Shape()
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(shape))); err != nil {
			return err
		}
		for _, d := range shape {
			if err := binary.Write(bw, binary.LittleEndian, uint32(d)); err != nil {
				return err
			}
		}
		buf := make([]byte, 8*t.Len())
		for i, v := range t.Data() {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadState reads a state previously written by SaveState.
func LoadState(r io.Reader) (State, error) {
	br := bufio.NewReader(r)
	var magic, version, count uint32
	for _, p := range []*uint32{&magic, &version, &count} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("%w: short header: %v", ErrBadWeights, err)
		}
	}
	if magic != weightsMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrBadWeights, magic)
	}
	if version != weightsVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadWeights, version)
	}
	const maxEntries = 1 << 20
	if count > maxEntries {
		return nil, fmt.Errorf("%w: implausible entry count %d", ErrBadWeights, count)
	}
	state := make(State, count)
	for i := uint32(0); i < count; i++ {
		var nameLen uint32
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadWeights, err)
		}
		if nameLen > 4096 {
			return nil, fmt.Errorf("%w: name length %d", ErrBadWeights, nameLen)
		}
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(br, nameBuf); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadWeights, err)
		}
		var rank uint32
		if err := binary.Read(br, binary.LittleEndian, &rank); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadWeights, err)
		}
		if rank > 8 {
			return nil, fmt.Errorf("%w: rank %d", ErrBadWeights, rank)
		}
		const maxElems = 1 << 28
		shape := make([]int, rank)
		n := 1
		for d := range shape {
			var dim uint32
			if err := binary.Read(br, binary.LittleEndian, &dim); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadWeights, err)
			}
			shape[d] = int(dim)
			// Checked after every multiply: with n bounded by maxElems the
			// product cannot overflow int64, so a crafted shape cannot wrap
			// around to a small element count that disagrees with the dims.
			n *= int(dim)
			if n > maxElems {
				return nil, fmt.Errorf("%w: tensor %q too large (>%d elements)", ErrBadWeights, nameBuf, maxElems)
			}
		}
		// Read tensor data in bounded chunks: the header alone may claim up
		// to maxElems elements, and allocating that up front would let a
		// short hostile stream pin ~2 GiB before ReadFull notices the
		// truncation.
		const chunkElems = 1 << 16
		chunk := n
		if chunk > chunkElems {
			chunk = chunkElems
		}
		buf := make([]byte, 8*chunk)
		data := make([]float64, 0, chunk)
		for read := 0; read < n; {
			c := n - read
			if c > chunkElems {
				c = chunkElems
			}
			b := buf[:8*c]
			if _, err := io.ReadFull(br, b); err != nil {
				return nil, fmt.Errorf("%w: truncated tensor %q: %v", ErrBadWeights, nameBuf, err)
			}
			for j := 0; j < c; j++ {
				data = append(data, math.Float64frombits(binary.LittleEndian.Uint64(b[j*8:])))
			}
			read += c
		}
		state[string(nameBuf)] = tensor.FromSlice(data, shape...)
	}
	return state, nil
}

// SaveStateFile writes state to path, creating parent directories as
// needed, atomically enough for this project (write then rename is
// overkill here).
func SaveStateFile(path string, state State) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("save weights: %w", err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("save weights: %w", err)
	}
	if err := SaveState(f, state); err != nil {
		f.Close()
		return fmt.Errorf("save weights: %w", err)
	}
	return f.Close()
}

// LoadStateFile reads a state file from path.
func LoadStateFile(path string) (State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("load weights: %w", err)
	}
	defer f.Close()
	state, err := LoadState(f)
	if err != nil {
		return nil, fmt.Errorf("load weights %q: %w", path, err)
	}
	return state, nil
}

// ApplyState copies entries from state into the matching parameters by name.
// Every parameter must be present with a matching element count.
func ApplyState(state State, params []*Param) error {
	for _, p := range params {
		t, ok := state[p.Name]
		if !ok {
			return fmt.Errorf("%w: missing parameter %q", ErrBadWeights, p.Name)
		}
		if t.Len() != p.Value.Len() {
			return fmt.Errorf("%w: parameter %q has %d elements, want %d", ErrBadWeights, p.Name, t.Len(), p.Value.Len())
		}
		p.Value.CopyFrom(t)
	}
	return nil
}

// CollectState builds a State from parameters.
func CollectState(params []*Param) State {
	s := make(State, len(params))
	for _, p := range params {
		s[p.Name] = p.Value
	}
	return s
}

package nn

import (
	"math"

	"roadtrojan/internal/tensor"
)

// BatchNorm2D normalizes each channel of an NCHW batch to zero mean and unit
// variance, then applies a learnable per-channel affine transform. Running
// statistics are tracked for inference mode.
type BatchNorm2D struct {
	Gamma *Param // [C] scale
	Beta  *Param // [C] shift

	C        int
	Eps      float64
	Momentum float64

	RunningMean *tensor.Tensor
	RunningVar  *tensor.Tensor

	training bool

	// Forward cache.
	lastInput *tensor.Tensor
	lastXHat  *tensor.Tensor
	lastMean  []float64
	lastInvSD []float64
}

var _ Module = (*BatchNorm2D)(nil)
var _ ModeSetter = (*BatchNorm2D)(nil)

// NewBatchNorm2D creates a batch norm over c channels (γ=1, β=0).
func NewBatchNorm2D(name string, c int) *BatchNorm2D {
	return &BatchNorm2D{
		Gamma:       NewParam(name+".gamma", tensor.Ones(c)),
		Beta:        NewParam(name+".beta", tensor.New(c)),
		C:           c,
		Eps:         1e-5,
		Momentum:    0.1,
		RunningMean: tensor.New(c),
		RunningVar:  tensor.Ones(c),
		training:    true,
	}
}

// SetTraining toggles between batch statistics and running statistics.
func (b *BatchNorm2D) SetTraining(training bool) { b.training = training }

// Training reports the current mode (ConvBNLeaky consults it to decide
// whether the fused eval kernel may run).
func (b *BatchNorm2D) Training() bool { return b.training }

// Forward normalizes x per channel.
func (b *BatchNorm2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	out := tensor.New(n, c, h, w)
	b.lastInput = x
	// The x̂ cache is only consumed by Backward; in inference mode it is
	// recomputed there from lastInput instead, saving a full-tensor
	// allocation and store pass on the serving path.
	if b.training {
		b.lastXHat = tensor.New(n, c, h, w)
	} else {
		b.lastXHat = nil
	}
	b.lastMean = make([]float64, c)
	b.lastInvSD = make([]float64, c)
	plane := h * w
	cnt := float64(n * plane)

	for ch := 0; ch < c; ch++ {
		var mean, variance float64
		if b.training {
			sum := 0.0
			for s := 0; s < n; s++ {
				base := (s*c + ch) * plane
				for i := 0; i < plane; i++ {
					sum += x.Data()[base+i]
				}
			}
			mean = sum / cnt
			sq := 0.0
			for s := 0; s < n; s++ {
				base := (s*c + ch) * plane
				for i := 0; i < plane; i++ {
					d := x.Data()[base+i] - mean
					sq += d * d
				}
			}
			variance = sq / cnt
			b.RunningMean.Data()[ch] = (1-b.Momentum)*b.RunningMean.Data()[ch] + b.Momentum*mean
			b.RunningVar.Data()[ch] = (1-b.Momentum)*b.RunningVar.Data()[ch] + b.Momentum*variance
		} else {
			mean = b.RunningMean.Data()[ch]
			variance = b.RunningVar.Data()[ch]
		}
		invSD := 1 / math.Sqrt(variance+b.Eps)
		b.lastMean[ch] = mean
		b.lastInvSD[ch] = invSD
		g := b.Gamma.Value.Data()[ch]
		bt := b.Beta.Value.Data()[ch]
		for s := 0; s < n; s++ {
			base := (s*c + ch) * plane
			xs := x.Data()[base : base+plane]
			os := out.Data()[base : base+plane]
			if b.training {
				xhs := b.lastXHat.Data()[base : base+plane]
				for i, v := range xs {
					xh := (v - mean) * invSD
					xhs[i] = xh
					os[i] = g*xh + bt
				}
			} else {
				for i, v := range xs {
					os[i] = g*((v-mean)*invSD) + bt
				}
			}
		}
	}
	return out
}

// Backward implements the standard batch-norm gradient. In training mode the
// mean/variance dependence on the batch is accounted for; in inference mode
// the running statistics are constants.
func (b *BatchNorm2D) Backward(dOut *tensor.Tensor) *tensor.Tensor {
	mustForwarded(b.lastInput, "BatchNorm2D")
	n, c, h, w := dOut.Dim(0), dOut.Dim(1), dOut.Dim(2), dOut.Dim(3)
	plane := h * w
	cnt := float64(n * plane)
	dIn := tensor.New(n, c, h, w)

	for ch := 0; ch < c; ch++ {
		g := b.Gamma.Value.Data()[ch]
		invSD := b.lastInvSD[ch]
		mean := b.lastMean[ch]
		var sumD, sumDXhat float64
		for s := 0; s < n; s++ {
			base := (s*c + ch) * plane
			ds := dOut.Data()[base : base+plane]
			if b.lastXHat != nil {
				xhs := b.lastXHat.Data()[base : base+plane]
				for i, d := range ds {
					sumD += d
					sumDXhat += d * xhs[i]
				}
			} else {
				// Inference-mode forward skipped the x̂ cache; rebuild each
				// value from the cached input with the identical expression.
				xs := b.lastInput.Data()[base : base+plane]
				for i, d := range ds {
					sumD += d
					sumDXhat += d * ((xs[i] - mean) * invSD)
				}
			}
		}
		b.Beta.Grad.Data()[ch] += sumD
		b.Gamma.Grad.Data()[ch] += sumDXhat

		if b.training {
			for s := 0; s < n; s++ {
				base := (s*c + ch) * plane
				ds := dOut.Data()[base : base+plane]
				xhs := b.lastXHat.Data()[base : base+plane]
				dis := dIn.Data()[base : base+plane]
				for i, d := range ds {
					dis[i] = g * invSD / cnt * (cnt*d - sumD - xhs[i]*sumDXhat)
				}
			}
		} else {
			for s := 0; s < n; s++ {
				base := (s*c + ch) * plane
				ds := dOut.Data()[base : base+plane]
				dis := dIn.Data()[base : base+plane]
				for i, d := range ds {
					dis[i] = g * invSD * d
				}
			}
		}
	}
	return dIn
}

// Params returns γ and β.
func (b *BatchNorm2D) Params() []*Param { return []*Param{b.Gamma, b.Beta} }

// Clone returns a deep copy: parameters, running statistics, and the
// training flag are copied; forward caches are not.
func (b *BatchNorm2D) Clone() *BatchNorm2D {
	return &BatchNorm2D{
		Gamma: b.Gamma.Clone(), Beta: b.Beta.Clone(),
		C: b.C, Eps: b.Eps, Momentum: b.Momentum,
		RunningMean: b.RunningMean.Clone(), RunningVar: b.RunningVar.Clone(),
		training: b.training,
	}
}

// CloneModule implements Cloner.
func (b *BatchNorm2D) CloneModule() Module { return b.Clone() }

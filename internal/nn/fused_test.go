package nn

import (
	"math"
	"math/rand"
	"testing"

	"roadtrojan/internal/tensor"
)

// warmBlock builds a ConvBNLeaky with non-trivial batch-norm statistics and
// affine, then freezes it in inference mode.
func warmBlock(rng *rand.Rand, inC, outC, kernel, stride, pad int) *ConvBNLeaky {
	f := NewConvBNLeaky(rng, "blk", inC, outC, kernel, stride, pad, 0.1)
	// Perturb γ/β so the fold is not the identity affine.
	for i := range f.BN.Gamma.Value.Data() {
		f.BN.Gamma.Value.Data()[i] = 0.5 + rng.Float64()
		f.BN.Beta.Value.Data()[i] = rng.NormFloat64() * 0.3
	}
	h := kernel + 2 + rng.Intn(6)
	w := kernel + 2 + rng.Intn(6)
	warm := tensor.NewRandN(rng, 1, 3, inC, h, w)
	f.Forward(warm) // training mode: populates running statistics
	f.SetTraining(false)
	return f
}

func TestConvBNLeakyGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := NewConvBNLeaky(rng, "blk", 2, 3, 3, 1, 1, 0.1)
	x := tensor.NewRandN(rng, 1, 2, 2, 5, 5)
	gradCheck(t, f, x, 1e-4)
}

func TestConvBNLeakyInferenceGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	f := warmBlock(rng, 2, 3, 3, 1, 1)
	// Fusing stays off: eval-mode Forward→Backward is the attack trainer's
	// hot loop and must keep working through the unfused chain.
	x := tensor.NewRandN(rng, 1, 2, 2, 5, 5)
	gradCheck(t, f, x, 1e-5)
}

// TestConvBNLeakyFusedParity is the randomized fused-vs-unfused suite: across
// 32 random shapes (batch sizes cycling through 1, 2, 7, 16) the exact-parity
// fused kernel must match the unfused module chain bit for bit, and the
// folded-weights kernel within 1e-9 relative.
func TestConvBNLeakyFusedParity(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	batches := []int{1, 2, 7, 16}
	for it := 0; it < 32; it++ {
		n := batches[it%len(batches)]
		inC := 1 + rng.Intn(4)
		outC := 1 + rng.Intn(6)
		kernel := 1 + 2*rng.Intn(3) // 1, 3, 5
		stride := 1 + rng.Intn(2)
		pad := rng.Intn(kernel)
		f := warmBlock(rng, inC, outC, kernel, stride, pad)
		h := kernel + rng.Intn(10)
		w := kernel + rng.Intn(10)
		x := tensor.NewRandN(rng, 1, n, inC, h, w)

		want := f.Forward(x) // unfused chain (fusing off)

		f.SetFused(true)
		got := f.Forward(x)
		if gs, ws := got.Shape(), want.Shape(); len(gs) != len(ws) {
			t.Fatalf("it %d: fused shape %v want %v", it, gs, ws)
		}
		for i, v := range got.Data() {
			if v != want.Data()[i] {
				t.Fatalf("it %d (n=%d c=%d->%d k=%d s=%d p=%d h=%d w=%d): exact-parity fused[%d]=%v unfused=%v",
					it, n, inC, outC, kernel, stride, pad, h, w, i, v, want.Data()[i])
			}
		}

		f.SetExactParity(false)
		folded := f.Forward(x)
		for i, v := range folded.Data() {
			ref := want.Data()[i]
			if diff := math.Abs(v - ref); diff > 1e-9*math.Max(1, math.Abs(ref)) {
				t.Fatalf("it %d: folded fused[%d]=%v unfused=%v (|diff| %v)", it, i, v, ref, diff)
			}
		}
	}
}

// TestConvBNLeakyRefKernelsFallback: with the reference kernels routed, a
// fused block must fall back to the unfused module chain so parity and bench
// reference windows measure the genuinely unfused pipeline.
func TestConvBNLeakyRefKernelsFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	f := warmBlock(rng, 2, 4, 3, 1, 1)
	f.SetFused(true)
	x := tensor.NewRandN(rng, 1, 2, 2, 6, 6)
	fused := f.Forward(x)
	if !f.fusedForward {
		t.Fatal("expected the fused path")
	}
	tensor.SetRefKernels(true)
	defer tensor.SetRefKernels(false)
	ref := f.Forward(x)
	if f.fusedForward {
		t.Fatal("ref-kernel window must take the unfused chain")
	}
	for i, v := range ref.Data() {
		if v != fused.Data()[i] {
			t.Fatalf("ref[%d]=%v fused=%v", i, v, fused.Data()[i])
		}
	}
}

func TestConvBNLeakyBackwardAfterFusedPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	f := warmBlock(rng, 1, 2, 3, 1, 1)
	f.SetFused(true)
	x := tensor.NewRandN(rng, 1, 1, 1, 5, 5)
	out := f.Forward(x)
	defer func() {
		if recover() == nil {
			t.Fatal("Backward after fused Forward must panic")
		}
	}()
	f.Backward(out)
}

// TestConvBNLeakyRefoldAfterTraining: parameters changed between eval
// periods must be re-folded on the next SetTraining(false).
func TestConvBNLeakyRefoldAfterTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	f := warmBlock(rng, 2, 3, 3, 1, 1)
	f.SetFused(true)
	x := tensor.NewRandN(rng, 1, 2, 2, 6, 6)
	before := f.Forward(x)

	// Another training period shifts weights and statistics.
	f.SetTraining(true)
	for i := range f.Conv.Weight.Value.Data() {
		f.Conv.Weight.Value.Data()[i] *= 1.25
	}
	f.Forward(tensor.NewRandN(rng, 2, 4, 2, 7, 7))
	f.SetTraining(false)

	after := f.Forward(x)
	f.SetFused(false)
	want := f.Forward(x)
	same := true
	for i, v := range after.Data() {
		if v != before.Data()[i] {
			same = false
		}
		if v != want.Data()[i] {
			t.Fatalf("refolded fused[%d]=%v unfused=%v", i, v, want.Data()[i])
		}
	}
	if same {
		t.Fatal("fused output unchanged despite retraining; stale fold")
	}
}

func TestConvBNLeakyCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	f := warmBlock(rng, 2, 3, 3, 1, 1)
	f.SetFused(true)
	x := tensor.NewRandN(rng, 1, 2, 2, 6, 6)
	want := f.Forward(x)
	c := f.Clone()
	if !c.Fused() {
		t.Fatal("clone must inherit the fused flag")
	}
	got := c.Forward(x)
	for i, v := range got.Data() {
		if v != want.Data()[i] {
			t.Fatalf("clone[%d]=%v want %v", i, v, want.Data()[i])
		}
	}
	// Mutating the clone's weights must not leak into the source.
	c.Conv.Weight.Value.Data()[0] += 1
	c.foldDirty = true
	again := f.Forward(x)
	for i, v := range again.Data() {
		if v != want.Data()[i] {
			t.Fatalf("source drifted after clone mutation: [%d]=%v want %v", i, v, want.Data()[i])
		}
	}
}

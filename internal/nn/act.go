package nn

import (
	"math"

	"roadtrojan/internal/tensor"
)

// LeakyReLU applies max(x, slope*x) elementwise; darknet uses slope 0.1.
type LeakyReLU struct {
	Slope float64

	lastInput *tensor.Tensor
}

var _ Module = (*LeakyReLU)(nil)

// NewLeakyReLU returns a leaky rectifier with the given negative slope.
func NewLeakyReLU(slope float64) *LeakyReLU { return &LeakyReLU{Slope: slope} }

// Forward applies the rectifier.
func (l *LeakyReLU) Forward(x *tensor.Tensor) *tensor.Tensor {
	l.lastInput = x
	out := tensor.New(x.Shape()...)
	os := out.Data()
	for i, v := range x.Data() {
		if v > 0 {
			os[i] = v
		} else {
			os[i] = l.Slope * v
		}
	}
	return out
}

// Backward gates the gradient with the rectifier's derivative.
func (l *LeakyReLU) Backward(dOut *tensor.Tensor) *tensor.Tensor {
	mustForwarded(l.lastInput, "LeakyReLU")
	dIn := tensor.New(dOut.Shape()...)
	ds := dOut.Data()
	dis := dIn.Data()
	for i, v := range l.lastInput.Data() {
		if v > 0 {
			dis[i] = ds[i]
		} else {
			dis[i] = l.Slope * ds[i]
		}
	}
	return dIn
}

// Params returns nil.
func (l *LeakyReLU) Params() []*Param { return nil }

// Clone returns a fresh rectifier with the same slope.
func (l *LeakyReLU) Clone() *LeakyReLU { return NewLeakyReLU(l.Slope) }

// CloneModule implements Cloner.
func (l *LeakyReLU) CloneModule() Module { return l.Clone() }

// Sigmoid applies 1/(1+e^-x) elementwise.
type Sigmoid struct {
	lastOutput *tensor.Tensor
}

var _ Module = (*Sigmoid)(nil)

// NewSigmoid returns a sigmoid activation module.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Forward applies the logistic function.
func (s *Sigmoid) Forward(x *tensor.Tensor) *tensor.Tensor {
	out := x.Map(SigmoidScalar)
	s.lastOutput = out
	return out
}

// Backward multiplies by σ(x)(1−σ(x)).
func (s *Sigmoid) Backward(dOut *tensor.Tensor) *tensor.Tensor {
	mustForwarded(s.lastOutput, "Sigmoid")
	dIn := tensor.New(dOut.Shape()...)
	for i, y := range s.lastOutput.Data() {
		dIn.Data()[i] = dOut.Data()[i] * y * (1 - y)
	}
	return dIn
}

// Params returns nil.
func (s *Sigmoid) Params() []*Param { return nil }

// Clone returns a fresh sigmoid module.
func (s *Sigmoid) Clone() *Sigmoid { return NewSigmoid() }

// CloneModule implements Cloner.
func (s *Sigmoid) CloneModule() Module { return s.Clone() }

// Tanh applies the hyperbolic tangent elementwise.
type Tanh struct {
	lastOutput *tensor.Tensor
}

var _ Module = (*Tanh)(nil)

// NewTanh returns a tanh activation module.
func NewTanh() *Tanh { return &Tanh{} }

// Forward applies tanh.
func (t *Tanh) Forward(x *tensor.Tensor) *tensor.Tensor {
	out := x.Map(math.Tanh)
	t.lastOutput = out
	return out
}

// Backward multiplies by 1−tanh².
func (t *Tanh) Backward(dOut *tensor.Tensor) *tensor.Tensor {
	mustForwarded(t.lastOutput, "Tanh")
	dIn := tensor.New(dOut.Shape()...)
	for i, y := range t.lastOutput.Data() {
		dIn.Data()[i] = dOut.Data()[i] * (1 - y*y)
	}
	return dIn
}

// Params returns nil.
func (t *Tanh) Params() []*Param { return nil }

// Clone returns a fresh tanh module.
func (t *Tanh) Clone() *Tanh { return NewTanh() }

// CloneModule implements Cloner.
func (t *Tanh) CloneModule() Module { return t.Clone() }

// SigmoidScalar is the logistic function on a scalar, shared by modules and
// the YOLO decoder.
func SigmoidScalar(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// MaxPool2D is a max-pooling module (kernel/stride per darknet configs).
type MaxPool2D struct {
	Kernel, Stride int

	lastShape []int
	lastArg   []int32
}

var _ Module = (*MaxPool2D)(nil)

// NewMaxPool2D returns a pooling module.
func NewMaxPool2D(kernel, stride int) *MaxPool2D {
	return &MaxPool2D{Kernel: kernel, Stride: stride}
}

// Forward pools the input.
func (m *MaxPool2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	m.lastShape = x.Shape()
	out, arg := tensor.MaxPool2D(x, m.Kernel, m.Stride)
	m.lastArg = arg
	return out
}

// Backward routes gradients to the argmax positions.
func (m *MaxPool2D) Backward(dOut *tensor.Tensor) *tensor.Tensor {
	if m.lastShape == nil {
		panic("nn: MaxPool2D.Backward called before Forward")
	}
	return tensor.MaxPool2DBackward(m.lastShape, dOut, m.lastArg)
}

// Params returns nil.
func (m *MaxPool2D) Params() []*Param { return nil }

// Clone returns a fresh pool with the same kernel and stride.
func (m *MaxPool2D) Clone() *MaxPool2D { return NewMaxPool2D(m.Kernel, m.Stride) }

// CloneModule implements Cloner.
func (m *MaxPool2D) CloneModule() Module { return m.Clone() }

// Upsample2D nearest-neighbour upsamples by an integer factor.
type Upsample2D struct {
	Factor int

	forwarded bool
}

var _ Module = (*Upsample2D)(nil)

// NewUpsample2D returns an upsampling module.
func NewUpsample2D(factor int) *Upsample2D { return &Upsample2D{Factor: factor} }

// Forward upsamples the input.
func (u *Upsample2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	u.forwarded = true
	return tensor.Upsample2D(x, u.Factor)
}

// Backward pools the gradient back down by summation.
func (u *Upsample2D) Backward(dOut *tensor.Tensor) *tensor.Tensor {
	if !u.forwarded {
		panic("nn: Upsample2D.Backward called before Forward")
	}
	return tensor.Upsample2DBackward(dOut, u.Factor)
}

// Params returns nil.
func (u *Upsample2D) Params() []*Param { return nil }

// Clone returns a fresh upsampler with the same factor.
func (u *Upsample2D) Clone() *Upsample2D { return NewUpsample2D(u.Factor) }

// CloneModule implements Cloner.
func (u *Upsample2D) CloneModule() Module { return u.Clone() }

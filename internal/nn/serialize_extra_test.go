package nn

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"roadtrojan/internal/tensor"
)

func TestSaveStateDeterministicBytes(t *testing.T) {
	state := State{
		"b": tensor.FromSlice([]float64{1, 2}, 2),
		"a": tensor.FromSlice([]float64{3}, 1),
	}
	var x, y bytes.Buffer
	if err := SaveState(&x, state); err != nil {
		t.Fatal(err)
	}
	if err := SaveState(&y, state); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(x.Bytes(), y.Bytes()) {
		t.Fatal("SaveState must be byte-deterministic (sorted names)")
	}
}

func TestLoadStateRejectsImplausibleCounts(t *testing.T) {
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, uint32(0x52545754))
	binary.Write(&buf, binary.LittleEndian, uint32(1))
	binary.Write(&buf, binary.LittleEndian, uint32(1<<21)) // > maxEntries
	if _, err := LoadState(&buf); err == nil {
		t.Fatal("expected error for implausible entry count")
	}
}

func TestStatePreservesSpecialFloats(t *testing.T) {
	state := State{"x": tensor.FromSlice([]float64{math.Inf(1), math.SmallestNonzeroFloat64, math.Copysign(0, -1)}, 3)}
	var buf bytes.Buffer
	if err := SaveState(&buf, state); err != nil {
		t.Fatal(err)
	}
	got, err := LoadState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	d := got["x"].Data()
	if !math.IsInf(d[0], 1) || d[1] != math.SmallestNonzeroFloat64 || math.Signbit(d[2]) != true {
		t.Fatalf("special floats drifted: %v", d)
	}
}

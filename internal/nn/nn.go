// Package nn is a layer-based neural-network framework with hand-written
// forward and backward passes over internal/tensor. Modules cache whatever
// their backward pass needs during Forward; calling Backward before Forward
// panics. Parameter gradients accumulate across Backward calls until
// ZeroGrads.
//
// # Concurrency
//
// Modules are NOT reentrant: every Forward overwrites the layer's cached
// activations (lastInput and friends), so two goroutines running Forward —
// or Forward and Backward — on the same module race on those caches and
// silently corrupt each other's results even in inference mode. To run a
// network from several goroutines, give each goroutine its own deep replica
// via the Cloner interface (yolo.Model.Clone builds on it); a clone shares
// no mutable state with its source.
package nn

import (
	"fmt"

	"roadtrojan/internal/tensor"
)

// Param is a learnable tensor with its accumulated gradient.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// NewParam allocates a parameter (and matching zero gradient) around v.
func NewParam(name string, v *tensor.Tensor) *Param {
	return &Param{Name: name, Value: v, Grad: tensor.New(v.Shape()...)}
}

// Clone returns a deep copy of the parameter: value and gradient are fresh
// tensors sharing no storage with p.
func (p *Param) Clone() *Param {
	return &Param{Name: p.Name, Value: p.Value.Clone(), Grad: p.Grad.Clone()}
}

// Module is a differentiable computation stage. Modules are not safe for
// concurrent use: Forward caches activations for Backward in place (see the
// package comment); clone the module per goroutine instead of sharing it.
type Module interface {
	// Forward consumes a batch and returns the module output.
	Forward(x *tensor.Tensor) *tensor.Tensor
	// Backward consumes the gradient w.r.t. the output of the most recent
	// Forward and returns the gradient w.r.t. that Forward's input,
	// accumulating parameter gradients along the way.
	Backward(dOut *tensor.Tensor) *tensor.Tensor
	// Params returns the module's learnable parameters (possibly empty).
	Params() []*Param
}

// Cloner is implemented by modules that can deep-copy themselves. A clone
// shares no mutable state with its source — parameters, gradients, running
// statistics, and forward caches are all fresh — so source and clone can
// run Forward/Backward from different goroutines without synchronization.
// Forward caches are not copied: a clone starts as if Forward had never
// been called.
type Cloner interface {
	CloneModule() Module
}

// MustCloneModule deep-copies m via its Cloner implementation, panicking if
// the module does not support cloning.
func MustCloneModule(m Module) Module {
	c, ok := m.(Cloner)
	if !ok {
		panic(fmt.Sprintf("nn: module %T does not implement Cloner", m))
	}
	return c.CloneModule()
}

// ModeSetter is implemented by modules that behave differently in training
// and inference (BatchNorm).
type ModeSetter interface {
	SetTraining(training bool)
}

// Sequential chains modules; the output of each feeds the next.
type Sequential struct {
	mods []Module
}

var _ Module = (*Sequential)(nil)

// NewSequential builds a chain out of the given modules.
func NewSequential(mods ...Module) *Sequential {
	return &Sequential{mods: mods}
}

// Add appends a module to the chain and returns the Sequential for chaining.
func (s *Sequential) Add(m Module) *Sequential {
	s.mods = append(s.mods, m)
	return s
}

// Modules returns the underlying chain (shared slice; do not mutate).
func (s *Sequential) Modules() []Module { return s.mods }

// Forward runs the chain left to right.
func (s *Sequential) Forward(x *tensor.Tensor) *tensor.Tensor {
	for _, m := range s.mods {
		x = m.Forward(x)
	}
	return x
}

// Backward runs the chain right to left.
func (s *Sequential) Backward(dOut *tensor.Tensor) *tensor.Tensor {
	for i := len(s.mods) - 1; i >= 0; i-- {
		dOut = s.mods[i].Backward(dOut)
	}
	return dOut
}

// Params collects the parameters of every stage in order.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, m := range s.mods {
		ps = append(ps, m.Params()...)
	}
	return ps
}

// Clone deep-copies the chain stage by stage.
func (s *Sequential) Clone() *Sequential {
	out := &Sequential{mods: make([]Module, len(s.mods))}
	for i, m := range s.mods {
		out.mods[i] = MustCloneModule(m)
	}
	return out
}

// CloneModule implements Cloner.
func (s *Sequential) CloneModule() Module { return s.Clone() }

// SetTraining propagates the training flag to every stage that cares.
func (s *Sequential) SetTraining(training bool) {
	for _, m := range s.mods {
		if ms, ok := m.(ModeSetter); ok {
			ms.SetTraining(training)
		}
	}
}

// ZeroGrads clears the gradients of every parameter in ps.
func ZeroGrads(ps []*Param) {
	for _, p := range ps {
		p.Grad.Zero()
	}
}

// CountParams returns the total number of scalar parameters in ps.
func CountParams(ps []*Param) int {
	n := 0
	for _, p := range ps {
		n += p.Value.Len()
	}
	return n
}

func mustForwarded(cached *tensor.Tensor, module string) {
	if cached == nil {
		panic(fmt.Sprintf("nn: %s.Backward called before Forward", module))
	}
}

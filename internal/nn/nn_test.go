package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"roadtrojan/internal/tensor"
)

// gradCheck verifies every parameter of m and the input gradient against
// central finite differences of loss(x) = <m(x), probe>.
func gradCheck(t *testing.T, m Module, x *tensor.Tensor, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	out := m.Forward(x)
	probe := tensor.NewRandN(rng, 1, out.Shape()...)
	loss := func() float64 { return tensor.Dot(m.Forward(x), probe) }

	ZeroGrads(m.Params())
	m.Forward(x)
	dIn := m.Backward(probe.Clone())

	const eps = 1e-6
	checkTensor := func(name string, vals *tensor.Tensor, grads *tensor.Tensor) {
		stride := 1 + vals.Len()/23
		for i := 0; i < vals.Len(); i += stride {
			orig := vals.Data()[i]
			vals.Data()[i] = orig + eps
			lp := loss()
			vals.Data()[i] = orig - eps
			lm := loss()
			vals.Data()[i] = orig
			num := (lp - lm) / (2 * eps)
			if diff := math.Abs(num - grads.Data()[i]); diff > tol {
				t.Fatalf("%s grad[%d]: analytic %v numeric %v (|diff| %v)", name, i, grads.Data()[i], num, diff)
			}
		}
	}
	for _, p := range m.Params() {
		checkTensor(p.Name, p.Value, p.Grad)
	}
	checkTensor("input", x, dIn)
}

func TestConv2DGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv2D(rng, "c", 2, 3, 3, 1, 1, true)
	x := tensor.NewRandN(rng, 1, 2, 2, 5, 5)
	gradCheck(t, c, x, 1e-5)
}

func TestConv2DStride2GradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := NewConv2D(rng, "c", 1, 2, 3, 2, 1, false)
	x := tensor.NewRandN(rng, 1, 1, 1, 7, 7)
	gradCheck(t, c, x, 1e-5)
}

func TestLinearGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewLinear(rng, "fc", 6, 4)
	x := tensor.NewRandN(rng, 1, 3, 6)
	gradCheck(t, l, x, 1e-5)
}

func TestLeakyReLUGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := tensor.NewRandN(rng, 1, 2, 3, 4, 4)
	gradCheck(t, NewLeakyReLU(0.1), x, 1e-5)
}

func TestSigmoidGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := tensor.NewRandN(rng, 1, 2, 8)
	gradCheck(t, NewSigmoid(), x, 1e-5)
}

func TestTanhGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := tensor.NewRandN(rng, 1, 2, 8)
	gradCheck(t, NewTanh(), x, 1e-5)
}

func TestBatchNormTrainingGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bn := NewBatchNorm2D("bn", 3)
	// Running stats update on every Forward, but they do not feed the
	// training-mode output, so the finite-difference loss stays valid.
	x := tensor.NewRandN(rng, 1, 2, 3, 4, 4)
	gradCheck(t, bn, x, 1e-4)
}

func TestBatchNormInferenceGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	bn := NewBatchNorm2D("bn", 2)
	// Populate running stats first.
	warm := tensor.NewRandN(rng, 2, 4, 2, 3, 3).AddScalar(1)
	bn.Forward(warm)
	bn.SetTraining(false)
	x := tensor.NewRandN(rng, 1, 2, 2, 3, 3)
	gradCheck(t, bn, x, 1e-5)
}

func TestBatchNormNormalizes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	bn := NewBatchNorm2D("bn", 2)
	x := tensor.NewRandN(rng, 3, 4, 2, 8, 8).AddScalar(5)
	y := bn.Forward(x)
	// Per-channel mean ≈ 0, var ≈ 1 (γ=1, β=0).
	for ch := 0; ch < 2; ch++ {
		var sum, sq float64
		n := 0
		for s := 0; s < 4; s++ {
			for i := 0; i < 64; i++ {
				v := y.At(s, ch, i/8, i%8)
				sum += v
				sq += v * v
				n++
			}
		}
		mean := sum / float64(n)
		variance := sq/float64(n) - mean*mean
		if math.Abs(mean) > 1e-9 || math.Abs(variance-1) > 1e-3 {
			t.Fatalf("channel %d: mean %v var %v", ch, mean, variance)
		}
	}
}

func TestMaxPoolGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	// Use well-separated values so eps perturbations don't flip the argmax.
	x := tensor.New(1, 2, 4, 4)
	perm := rng.Perm(32)
	for i, p := range perm {
		x.Data()[i] = float64(p)
	}
	gradCheck(t, NewMaxPool2D(2, 2), x, 1e-5)
}

func TestUpsampleGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := tensor.NewRandN(rng, 1, 1, 2, 3, 3)
	gradCheck(t, NewUpsample2D(2), x, 1e-5)
}

func TestSequentialGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	seq := NewSequential(
		NewConv2D(rng, "c1", 1, 4, 3, 1, 1, false),
		NewBatchNorm2D("bn1", 4),
		NewLeakyReLU(0.1),
		NewMaxPool2D(2, 2),
		NewConv2D(rng, "c2", 4, 2, 3, 1, 1, true),
	)
	x := tensor.NewRandN(rng, 1, 2, 1, 8, 8)
	gradCheck(t, seq, x, 1e-4)
}

func TestSequentialSetTrainingPropagates(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	bn := NewBatchNorm2D("bn", 1)
	seq := NewSequential(NewConv2D(rng, "c", 1, 1, 1, 1, 0, true), bn)
	seq.SetTraining(false)
	if bn.training {
		t.Fatal("SetTraining(false) did not propagate")
	}
}

func TestReshapeRoundTrip(t *testing.T) {
	r := NewReshape(4, 2, 2)
	x := tensor.NewRandN(rand.New(rand.NewSource(14)), 1, 3, 16)
	y := r.Forward(x)
	if y.Dim(1) != 4 || y.Dim(3) != 2 {
		t.Fatalf("shape = %v", y.Shape())
	}
	back := r.Backward(y)
	if back.Dim(1) != 16 {
		t.Fatalf("backward shape = %v", back.Shape())
	}
}

func TestReshapeGradCheck(t *testing.T) {
	r := NewReshape(4, 2, 2)
	x := tensor.NewRandN(rand.New(rand.NewSource(15)), 1, 3, 16)
	gradCheck(t, r, x, 1e-6)
}

func TestBackwardBeforeForwardPanics(t *testing.T) {
	mods := map[string]Module{
		"conv":    NewConv2D(rand.New(rand.NewSource(1)), "c", 1, 1, 1, 1, 0, true),
		"linear":  NewLinear(rand.New(rand.NewSource(1)), "l", 2, 2),
		"relu":    NewLeakyReLU(0.1),
		"sigmoid": NewSigmoid(),
		"bn":      NewBatchNorm2D("bn", 1),
		"pool":    NewMaxPool2D(2, 2),
	}
	for name, m := range mods {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			m.Backward(tensor.New(1, 1))
		})
	}
}

func TestSigmoidScalarStable(t *testing.T) {
	if v := SigmoidScalar(1000); v != 1 {
		t.Fatalf("sigmoid(1000) = %v", v)
	}
	if v := SigmoidScalar(-1000); v != 0 {
		t.Fatalf("sigmoid(-1000) = %v", v)
	}
	if v := SigmoidScalar(0); v != 0.5 {
		t.Fatalf("sigmoid(0) = %v", v)
	}
}

func TestCountParams(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	c := NewConv2D(rng, "c", 2, 3, 3, 1, 1, true)
	if got := CountParams(c.Params()); got != 3*2*3*3+3 {
		t.Fatalf("CountParams = %d", got)
	}
}

func TestStateSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	state := State{
		"a.weight": tensor.NewRandN(rng, 1, 3, 4),
		"b.bias":   tensor.NewRandN(rng, 1, 7),
		"scalar":   tensor.Scalar(3.25),
	}
	var buf bytes.Buffer
	if err := SaveState(&buf, state); err != nil {
		t.Fatal(err)
	}
	got, err := LoadState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(state) {
		t.Fatalf("entries = %d, want %d", len(got), len(state))
	}
	for name, want := range state {
		g, ok := got[name]
		if !ok {
			t.Fatalf("missing %q", name)
		}
		if !g.SameShape(want) || tensor.MaxAbsDiff(g, want) != 0 {
			t.Fatalf("%q round trip mismatch", name)
		}
	}
}

func TestLoadStateRejectsCorrupt(t *testing.T) {
	tests := []struct {
		name string
		data []byte
	}{
		{name: "empty", data: nil},
		{name: "bad magic", data: []byte{1, 2, 3, 4, 1, 0, 0, 0, 0, 0, 0, 0}},
		{name: "truncated", data: func() []byte {
			var buf bytes.Buffer
			if err := SaveState(&buf, State{"x": tensor.Ones(8)}); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()[:buf.Len()-9]
		}()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := LoadState(bytes.NewReader(tt.data)); err == nil {
				t.Fatal("expected error for corrupt data")
			}
		})
	}
}

func TestApplyState(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	c := NewConv2D(rng, "c", 1, 1, 1, 1, 0, true)
	state := State{
		"c.weight": tensor.Full(2, 1, 1, 1, 1),
		"c.bias":   tensor.Full(-1, 1),
	}
	if err := ApplyState(state, c.Params()); err != nil {
		t.Fatal(err)
	}
	if c.Weight.Value.At(0, 0, 0, 0) != 2 || c.Bias.Value.At(0) != -1 {
		t.Fatal("ApplyState did not copy values")
	}
	if err := ApplyState(State{}, c.Params()); err == nil {
		t.Fatal("expected missing-parameter error")
	}
	bad := State{"c.weight": tensor.Ones(5), "c.bias": tensor.Ones(1)}
	if err := ApplyState(bad, c.Params()); err == nil {
		t.Fatal("expected shape-mismatch error")
	}
}

func TestPropStateRoundTripArbitrary(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		state := make(State, n)
		for i := 0; i < n; i++ {
			name := string(rune('a'+i)) + ".p"
			state[name] = tensor.NewRandN(rng, 1, 1+rng.Intn(5), 1+rng.Intn(5))
		}
		var buf bytes.Buffer
		if err := SaveState(&buf, state); err != nil {
			return false
		}
		got, err := LoadState(&buf)
		if err != nil {
			return false
		}
		for name, want := range state {
			if g, ok := got[name]; !ok || tensor.MaxAbsDiff(g, want) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPropConvLinearInInput(t *testing.T) {
	// Convolution without bias is linear: conv(a·x) = a·conv(x).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewConv2D(rng, "c", 1, 2, 3, 1, 1, false)
		x := tensor.NewRandN(rng, 1, 1, 1, 6, 6)
		a := 0.5 + rng.Float64()*2
		y1 := c.Forward(x).Clone().Scale(a)
		xs := x.Clone().Scale(a)
		y2 := c.Forward(xs)
		return tensor.MaxAbsDiff(y1, y2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestConvTranslationEquivariance(t *testing.T) {
	// Shifting the input by one pixel shifts the (interior of the) output
	// by one pixel for a stride-1 same conv.
	rng := rand.New(rand.NewSource(30))
	c := NewConv2D(rng, "c", 1, 1, 3, 1, 1, false)
	x := tensor.New(1, 1, 8, 8)
	x.Set(1, 0, 0, 3, 3)
	y := c.Forward(x)
	xs := tensor.New(1, 1, 8, 8)
	xs.Set(1, 0, 0, 3, 4)
	ys := c.Forward(xs)
	for oy := 1; oy < 7; oy++ {
		for ox := 1; ox < 6; ox++ {
			if math.Abs(y.At(0, 0, oy, ox)-ys.At(0, 0, oy, ox+1)) > 1e-12 {
				t.Fatalf("not equivariant at (%d,%d)", oy, ox)
			}
		}
	}
}

func TestPropLinearAdditivity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := NewLinear(rng, "l", 4, 3)
		a := tensor.NewRandN(rng, 1, 1, 4)
		b := tensor.NewRandN(rng, 1, 1, 4)
		ya := l.Forward(a)
		yb := l.Forward(b)
		sum := tensor.Add(ya, yb)
		yab := l.Forward(tensor.Add(a, b))
		// f(a)+f(b) = f(a+b) + bias (bias counted twice on the left).
		for i := range sum.Data() {
			sum.Data()[i] -= l.Bias.Value.Data()[i%3]
		}
		return tensor.MaxAbsDiff(sum, yab) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialEmptyIsIdentity(t *testing.T) {
	seq := NewSequential()
	x := tensor.FromSlice([]float64{1, 2, 3}, 1, 3)
	if tensor.MaxAbsDiff(seq.Forward(x), x) != 0 {
		t.Fatal("empty Sequential must be identity")
	}
	if tensor.MaxAbsDiff(seq.Backward(x), x) != 0 {
		t.Fatal("empty Sequential backward must be identity")
	}
	if seq.Params() != nil {
		t.Fatal("empty Sequential has no params")
	}
}

package nn

import (
	"math"
	"math/rand"

	"roadtrojan/internal/tensor"
)

// Conv2D is a batched 2-D convolution layer over NCHW input.
type Conv2D struct {
	Weight *Param // [OC, C, K, K]
	Bias   *Param // [OC], nil when the layer is followed by BatchNorm

	InC, OutC, Kernel, Stride, Pad int

	lastInput *tensor.Tensor
}

var _ Module = (*Conv2D)(nil)

// NewConv2D creates a convolution with He-normal initialized weights. Pass
// withBias=false for conv+BN stacks (darknet convention).
func NewConv2D(rng *rand.Rand, name string, inC, outC, kernel, stride, pad int, withBias bool) *Conv2D {
	fanIn := float64(inC * kernel * kernel)
	std := math.Sqrt(2 / fanIn)
	c := &Conv2D{
		Weight: NewParam(name+".weight", tensor.NewRandN(rng, std, outC, inC, kernel, kernel)),
		InC:    inC, OutC: outC, Kernel: kernel, Stride: stride, Pad: pad,
	}
	if withBias {
		c.Bias = NewParam(name+".bias", tensor.New(outC))
	}
	return c
}

// Forward computes the cross-correlation of x with the layer weights.
func (c *Conv2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	c.lastInput = x
	var b *tensor.Tensor
	if c.Bias != nil {
		b = c.Bias.Value
	}
	return tensor.Conv2D(x, c.Weight.Value, b, c.Stride, c.Pad)
}

// Backward accumulates weight/bias gradients and returns dInput.
func (c *Conv2D) Backward(dOut *tensor.Tensor) *tensor.Tensor {
	mustForwarded(c.lastInput, "Conv2D")
	var dB *tensor.Tensor
	if c.Bias != nil {
		dB = c.Bias.Grad
	}
	return tensor.Conv2DBackward(c.lastInput, c.Weight.Value, dOut, c.Stride, c.Pad, c.Weight.Grad, dB)
}

// Params returns the layer's parameters.
func (c *Conv2D) Params() []*Param {
	if c.Bias != nil {
		return []*Param{c.Weight, c.Bias}
	}
	return []*Param{c.Weight}
}

// Clone returns a deep copy with fresh parameters and no forward cache.
func (c *Conv2D) Clone() *Conv2D {
	out := &Conv2D{
		Weight: c.Weight.Clone(),
		InC:    c.InC, OutC: c.OutC, Kernel: c.Kernel, Stride: c.Stride, Pad: c.Pad,
	}
	if c.Bias != nil {
		out.Bias = c.Bias.Clone()
	}
	return out
}

// CloneModule implements Cloner.
func (c *Conv2D) CloneModule() Module { return c.Clone() }

// Linear is a fully connected layer on [N, In] input.
type Linear struct {
	Weight *Param // [In, Out]
	Bias   *Param // [Out]

	In, Out int

	lastInput *tensor.Tensor
}

var _ Module = (*Linear)(nil)

// NewLinear creates a dense layer with He-normal weights and zero bias.
func NewLinear(rng *rand.Rand, name string, in, out int) *Linear {
	std := math.Sqrt(2 / float64(in))
	return &Linear{
		Weight: NewParam(name+".weight", tensor.NewRandN(rng, std, in, out)),
		Bias:   NewParam(name+".bias", tensor.New(out)),
		In:     in, Out: out,
	}
}

// Forward computes x @ W + b.
func (l *Linear) Forward(x *tensor.Tensor) *tensor.Tensor {
	x2 := x.Reshape(x.Dim(0), -1)
	l.lastInput = x2
	out := tensor.MatMul(x2, l.Weight.Value)
	n := out.Dim(0)
	bias := l.Bias.Value.Data()
	data := out.Data()
	for r := 0; r < n; r++ {
		row := data[r*l.Out : (r+1)*l.Out]
		for i, bv := range bias {
			row[i] += bv
		}
	}
	return out
}

// Backward accumulates dW = xᵀ dOut, dB = Σ dOut and returns dOut @ Wᵀ.
// The two transposes go through arena scratch instead of fresh tensors, so
// repeated backward passes stop allocating once the buffers reach size.
func (l *Linear) Backward(dOut *tensor.Tensor) *tensor.Tensor {
	mustForwarded(l.lastInput, "Linear")
	ss := tensor.AcquireScratch(1)
	sc := ss[0]
	xT := tensor.Transpose2DInto(sc.Buf(tensor.ScratchA, l.lastInput.Len()), l.lastInput)
	tensor.MatMulAccum(l.Weight.Grad, xT, dOut)
	l.Bias.Grad.AddInPlace(tensor.SumAxis0(dOut))
	wT := tensor.Transpose2DInto(sc.Buf(tensor.ScratchB, l.Weight.Value.Len()), l.Weight.Value)
	out := tensor.MatMul(dOut, wT)
	tensor.ReleaseScratch(ss)
	return out
}

// Params returns the layer's parameters.
func (l *Linear) Params() []*Param { return []*Param{l.Weight, l.Bias} }

// Clone returns a deep copy with fresh parameters and no forward cache.
func (l *Linear) Clone() *Linear {
	return &Linear{Weight: l.Weight.Clone(), Bias: l.Bias.Clone(), In: l.In, Out: l.Out}
}

// CloneModule implements Cloner.
func (l *Linear) CloneModule() Module { return l.Clone() }

// Reshape is a parameterless module that reinterprets its input's shape,
// keeping the batch dimension and reshaping the rest to the given dims.
type Reshape struct {
	Dims []int

	lastShape []int
}

var _ Module = (*Reshape)(nil)

// NewReshape returns a module reshaping [N, ...] to [N, dims...].
func NewReshape(dims ...int) *Reshape { return &Reshape{Dims: dims} }

// Forward reshapes to [N, Dims...].
func (r *Reshape) Forward(x *tensor.Tensor) *tensor.Tensor {
	r.lastShape = x.Shape()
	shape := append([]int{x.Dim(0)}, r.Dims...)
	return x.Reshape(shape...)
}

// Backward restores the pre-Forward shape.
func (r *Reshape) Backward(dOut *tensor.Tensor) *tensor.Tensor {
	if r.lastShape == nil {
		panic("nn: Reshape.Backward called before Forward")
	}
	return dOut.Reshape(r.lastShape...)
}

// Params returns nil; Reshape has no parameters.
func (r *Reshape) Params() []*Param { return nil }

// Clone returns a fresh Reshape with the same target dims.
func (r *Reshape) Clone() *Reshape { return NewReshape(append([]int(nil), r.Dims...)...) }

// CloneModule implements Cloner.
func (r *Reshape) CloneModule() Module { return r.Clone() }

package gan

import (
	"math/rand"
	"testing"

	"roadtrojan/internal/tensor"
)

// TestGeneratorForwardKernelParity runs the full generator stack under the
// production kernels and the pre-optimization reference kernels and demands
// bit-identical patches: the attack pipeline's outputs must not shift by a
// single ULP because of the perf work.
func TestGeneratorForwardKernelParity(t *testing.T) {
	defer tensor.SetRefKernels(false)
	rng := rand.New(rand.NewSource(4))
	g := NewGenerator(rng)
	z := SampleZ(rand.New(rand.NewSource(5)), 4)

	tensor.SetRefKernels(false)
	fast := g.Forward(z)
	tensor.SetRefKernels(true)
	ref := g.Forward(z)

	if d := tensor.MaxAbsDiff(fast, ref); d != 0 {
		t.Fatalf("generator output differs between production and reference kernels: max |Δ| = %g", d)
	}
}

package gan

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"roadtrojan/internal/nn"
	"roadtrojan/internal/optim"
	"roadtrojan/internal/shapes"
	"roadtrojan/internal/tensor"
)

func TestGeneratorOutputShapeAndRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := NewGenerator(rng)
	z := SampleZ(rng, 3)
	p := g.Forward(z)
	if p.Dim(0) != 3 || p.Dim(1) != 1 || p.Dim(2) != PatchRes || p.Dim(3) != PatchRes {
		t.Fatalf("patch shape %v", p.Shape())
	}
	if p.Min() <= 0 || p.Max() >= 1 {
		t.Fatalf("sigmoid output escaped (0,1): [%v,%v]", p.Min(), p.Max())
	}
}

func TestGeneratorBackwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := NewGenerator(rng)
	z := SampleZ(rng, 2)
	p := g.Forward(z)
	dz := g.Backward(tensor.Ones(p.Shape()...))
	if dz.Dim(0) != 2 || dz.Dim(1) != ZDim {
		t.Fatalf("dz shape %v", dz.Shape())
	}
	// Gradients accumulated on parameters.
	any := false
	for _, pr := range g.Params() {
		if pr.Grad.L2() > 0 {
			any = true
			break
		}
	}
	if !any {
		t.Fatal("no parameter gradients accumulated")
	}
}

func TestDiscriminatorShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewDiscriminator(rng)
	x := tensor.NewRandU(rng, 0, 1, 4, 1, PatchRes, PatchRes)
	logits := d.Forward(x)
	if logits.Dim(0) != 4 || logits.Dim(1) != 1 {
		t.Fatalf("logits shape %v", logits.Shape())
	}
	dx := d.Backward(tensor.Ones(4, 1))
	if dx.Dim(1) != 1 || dx.Dim(2) != PatchRes {
		t.Fatalf("dx shape %v", dx.Shape())
	}
}

func TestBCEWithLogits(t *testing.T) {
	logits := tensor.FromSlice([]float64{0}, 1, 1)
	loss, grad := BCEWithLogits(logits, 1)
	if math.Abs(loss-math.Log(2)) > 1e-12 {
		t.Fatalf("BCE(0,1) = %v, want ln2", loss)
	}
	if math.Abs(grad.At(0, 0)+0.5) > 1e-12 {
		t.Fatalf("grad = %v, want -0.5", grad.At(0, 0))
	}
	// Extreme logits stay finite.
	logits2 := tensor.FromSlice([]float64{-100, 100}, 2, 1)
	loss2, _ := BCEWithLogits(logits2, 0)
	if math.IsInf(loss2, 0) || math.IsNaN(loss2) {
		t.Fatalf("BCE overflow: %v", loss2)
	}
}

func TestBCEGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	logits := tensor.NewRandN(rng, 1, 5, 1)
	for _, target := range []float64{0, 1} {
		_, grad := BCEWithLogits(logits, target)
		const eps = 1e-6
		for i := 0; i < logits.Len(); i++ {
			orig := logits.Data()[i]
			logits.Data()[i] = orig + eps
			lp, _ := BCEWithLogits(logits, target)
			logits.Data()[i] = orig - eps
			lm, _ := BCEWithLogits(logits, target)
			logits.Data()[i] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-grad.Data()[i]) > 1e-6 {
				t.Fatalf("target %v grad[%d]: analytic %v numeric %v", target, i, grad.Data()[i], num)
			}
		}
	}
}

func TestAdversarialTrainingMovesDiscriminator(t *testing.T) {
	if testing.Short() {
		t.Skip("GAN training test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(5))
	g := NewGenerator(rng)
	d := NewDiscriminator(rng)
	optD := optim.NewAdam(d.Params(), 2e-3)
	optG := optim.NewAdam(g.Params(), 2e-3)

	const n = 8
	real := shapes.Samples(rng, shapes.Star, PatchRes, n)

	var dLossFirst, dLossLast float64
	for it := 0; it < 30; it++ {
		z := SampleZ(rng, n)
		fake := g.Forward(z)

		nn.ZeroGrads(d.Params())
		dLoss := DiscriminatorStep(d, real, fake)
		optD.Step()
		if it == 0 {
			dLossFirst = dLoss
		}
		dLossLast = dLoss

		nn.ZeroGrads(g.Params())
		nn.ZeroGrads(d.Params())
		z2 := SampleZ(rng, n)
		fake2 := g.Forward(z2)
		_, dFake := GeneratorAdversarialGrad(d, fake2)
		g.Backward(dFake)
		nn.ZeroGrads(d.Params()) // generator step must not move D
		optG.Step()
	}
	if dLossLast >= dLossFirst {
		t.Fatalf("discriminator did not learn: %v -> %v", dLossFirst, dLossLast)
	}
}

func TestGeneratorStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g1 := NewGenerator(rng)
	z := SampleZ(rng, 2)
	g1.Forward(z) // populate BN stats
	g1.SetTraining(false)
	out1 := g1.Forward(z)

	var buf bytes.Buffer
	if err := nn.SaveState(&buf, g1.State()); err != nil {
		t.Fatal(err)
	}
	state, err := nn.LoadState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g2 := NewGenerator(rand.New(rand.NewSource(77)))
	if err := g2.LoadState(state); err != nil {
		t.Fatal(err)
	}
	g2.SetTraining(false)
	out2 := g2.Forward(z)
	if d := tensor.MaxAbsDiff(out1, out2); d > 1e-12 {
		t.Fatalf("state round trip changed output by %v", d)
	}
}

func TestDiscriminatorStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d1 := NewDiscriminator(rng)
	x := tensor.NewRandU(rng, 0, 1, 2, 1, PatchRes, PatchRes)
	d1.Forward(x)
	d1.SetTraining(false)
	out1 := d1.Forward(x)

	var buf bytes.Buffer
	if err := nn.SaveState(&buf, d1.State()); err != nil {
		t.Fatal(err)
	}
	state, err := nn.LoadState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	d2 := NewDiscriminator(rand.New(rand.NewSource(88)))
	if err := d2.LoadState(state); err != nil {
		t.Fatal(err)
	}
	d2.SetTraining(false)
	out2 := d2.Forward(x)
	if dd := tensor.MaxAbsDiff(out1, out2); dd > 1e-12 {
		t.Fatalf("state round trip changed output by %v", dd)
	}
}

func TestLoadStateMissing(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := NewGenerator(rng)
	if err := g.LoadState(nn.State{}); err == nil {
		t.Fatal("expected error for empty state")
	}
}

func TestSampleZShapeAndDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	z := SampleZ(rng, 64)
	if z.Dim(0) != 64 || z.Dim(1) != ZDim {
		t.Fatalf("z shape %v", z.Shape())
	}
	m := z.Mean()
	if m < -0.2 || m > 0.2 {
		t.Fatalf("z mean %v far from 0", m)
	}
}

func TestGeneratorDiversityAcrossZ(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := NewGenerator(rng)
	z := SampleZ(rng, 2)
	out := g.Forward(z)
	a := out.Data()[:PatchRes*PatchRes]
	b := out.Data()[PatchRes*PatchRes:]
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different z produced identical patches")
	}
}

func TestDiscriminatorStepAccumulatesGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := NewDiscriminator(rng)
	real := tensor.NewRandU(rng, 0, 1, 2, 1, PatchRes, PatchRes)
	fake := tensor.NewRandU(rng, 0, 1, 2, 1, PatchRes, PatchRes)
	nn.ZeroGrads(d.Params())
	loss := DiscriminatorStep(d, real, fake)
	if loss <= 0 {
		t.Fatalf("loss = %v", loss)
	}
	any := false
	for _, p := range d.Params() {
		if p.Grad.L2() > 0 {
			any = true
		}
	}
	if !any {
		t.Fatal("no gradients accumulated")
	}
}

// Package gan implements the generative adversarial network of Sec. III:
// a generator that synthesizes monochrome k×k adversarial patches from
// noise, and a discriminator trained to tell them apart from Four Shapes
// samples. The generator's full loss (Eq. 1) adds the α-weighted targeted
// attack term, which the attack package supplies as an external gradient on
// the generated patch.
package gan

import (
	"fmt"
	"math"
	"math/rand"

	"roadtrojan/internal/nn"
	"roadtrojan/internal/obs"
	"roadtrojan/internal/tensor"
)

// PatchRes is the generator's native output resolution. Patches are
// bilinearly resized to the physical print size k afterwards (the paper's k
// sweep is a physical-size sweep; the generator capacity stays fixed).
const PatchRes = 32

// ZDim is the noise dimension.
const ZDim = 32

// Generator maps z ∈ R^ZDim to a [1,PatchRes,PatchRes] grayscale patch in
// (0,1).
type Generator struct {
	net *nn.Sequential
	bns []*nn.BatchNorm2D
}

// NewGenerator builds a DCGAN-style generator.
func NewGenerator(rng *rand.Rand) *Generator {
	bn1 := nn.NewBatchNorm2D("g.bn1", 32)
	bn2 := nn.NewBatchNorm2D("g.bn2", 16)
	bn3 := nn.NewBatchNorm2D("g.bn3", 8)
	net := nn.NewSequential(
		nn.NewLinear(rng, "g.fc", ZDim, 64*4*4),
		nn.NewReshape(64, 4, 4),
		nn.NewUpsample2D(2), // 8×8
		nn.NewConv2D(rng, "g.c1", 64, 32, 3, 1, 1, false),
		bn1,
		nn.NewLeakyReLU(0.1),
		nn.NewUpsample2D(2), // 16×16
		nn.NewConv2D(rng, "g.c2", 32, 16, 3, 1, 1, false),
		bn2,
		nn.NewLeakyReLU(0.1),
		nn.NewUpsample2D(2), // 32×32
		nn.NewConv2D(rng, "g.c3", 16, 8, 3, 1, 1, false),
		bn3,
		nn.NewLeakyReLU(0.1),
		nn.NewConv2D(rng, "g.out", 8, 1, 3, 1, 1, true),
		nn.NewSigmoid(),
	)
	return &Generator{net: net, bns: []*nn.BatchNorm2D{bn1, bn2, bn3}}
}

// Forward synthesizes patches from a [n, ZDim] noise batch, returning
// [n,1,PatchRes,PatchRes].
func (g *Generator) Forward(z *tensor.Tensor) *tensor.Tensor {
	return g.net.Forward(z)
}

// Backward accumulates parameter gradients from dPatch and returns dZ.
func (g *Generator) Backward(dPatch *tensor.Tensor) *tensor.Tensor {
	return g.net.Backward(dPatch)
}

// Params returns the generator's parameters.
func (g *Generator) Params() []*nn.Param { return g.net.Params() }

// SetTraining toggles batch-norm mode.
func (g *Generator) SetTraining(training bool) { g.net.SetTraining(training) }

// State captures parameters and BN buffers.
func (g *Generator) State() nn.State { return stateWithBN("g", g.Params(), g.bns) }

// LoadState restores parameters and BN buffers.
func (g *Generator) LoadState(s nn.State) error { return loadWithBN("g", s, g.Params(), g.bns) }

// SampleZ draws a [n, ZDim] standard-normal noise batch.
func SampleZ(rng *rand.Rand, n int) *tensor.Tensor {
	return tensor.NewRandN(rng, 1, n, ZDim)
}

// Discriminator scores patches: positive logits mean "real Four Shapes
// sample".
type Discriminator struct {
	net *nn.Sequential
	bns []*nn.BatchNorm2D
}

// NewDiscriminator builds a DCGAN-style critic.
func NewDiscriminator(rng *rand.Rand) *Discriminator {
	bn1 := nn.NewBatchNorm2D("d.bn1", 16)
	bn2 := nn.NewBatchNorm2D("d.bn2", 32)
	net := nn.NewSequential(
		nn.NewConv2D(rng, "d.c1", 1, 8, 3, 2, 1, true), // 16×16
		nn.NewLeakyReLU(0.2),
		nn.NewConv2D(rng, "d.c2", 8, 16, 3, 2, 1, false), // 8×8
		bn1,
		nn.NewLeakyReLU(0.2),
		nn.NewConv2D(rng, "d.c3", 16, 32, 3, 2, 1, false), // 4×4
		bn2,
		nn.NewLeakyReLU(0.2),
		nn.NewReshape(32*4*4),
		nn.NewLinear(rng, "d.fc", 32*4*4, 1),
	)
	return &Discriminator{net: net, bns: []*nn.BatchNorm2D{bn1, bn2}}
}

// Forward returns [n,1] logits.
func (d *Discriminator) Forward(x *tensor.Tensor) *tensor.Tensor {
	return d.net.Forward(x)
}

// Backward accumulates parameter gradients and returns dX.
func (d *Discriminator) Backward(dOut *tensor.Tensor) *tensor.Tensor {
	return d.net.Backward(dOut)
}

// Params returns the discriminator's parameters.
func (d *Discriminator) Params() []*nn.Param { return d.net.Params() }

// SetTraining toggles batch-norm mode.
func (d *Discriminator) SetTraining(training bool) { d.net.SetTraining(training) }

// State captures parameters and BN buffers.
func (d *Discriminator) State() nn.State { return stateWithBN("d", d.Params(), d.bns) }

// LoadState restores parameters and BN buffers.
func (d *Discriminator) LoadState(s nn.State) error { return loadWithBN("d", s, d.Params(), d.bns) }

// BCEWithLogits returns the mean binary cross-entropy of logits [n,1]
// against the constant target, plus d(loss)/d(logits).
func BCEWithLogits(logits *tensor.Tensor, target float64) (float64, *tensor.Tensor) {
	n := logits.Len()
	grad := tensor.New(logits.Shape()...)
	loss := 0.0
	for i, v := range logits.Data() {
		p := nn.SigmoidScalar(v)
		loss += -target*math.Log(math.Max(p, 1e-12)) - (1-target)*math.Log(math.Max(1-p, 1e-12))
		grad.Data()[i] = (p - target) / float64(n)
	}
	return loss / float64(n), grad
}

// DiscriminatorStep computes the standard GAN discriminator loss on a real
// and a fake batch, accumulating parameter gradients (call ZeroGrads first,
// then an optimizer step). It returns the loss value.
func DiscriminatorStep(d *Discriminator, real, fake *tensor.Tensor) float64 {
	logitsR := d.Forward(real)
	lossR, gradR := BCEWithLogits(logitsR, 1)
	d.Backward(gradR)
	logitsF := d.Forward(fake)
	lossF, gradF := BCEWithLogits(logitsF, 0)
	d.Backward(gradF)
	return lossR + lossF
}

// TracedDiscriminatorStep is DiscriminatorStep plus a "gan_d" record on sp
// (free when sp is nil). The attack trainer uses it so the discriminator's
// own update cadence — it only steps while its loss is above the
// saturation gate — is visible in run journals.
func TracedDiscriminatorStep(sp *obs.Span, it int, d *Discriminator, real, fake *tensor.Tensor) float64 {
	loss := DiscriminatorStep(d, real, fake)
	sp.GanD(obs.GanDStep{It: it, Loss: loss})
	return loss
}

// GeneratorAdversarialGrad computes the generator's GAN objective — make
// the discriminator call fakes real — returning the loss and d(loss)/d(fake)
// without touching discriminator parameter gradients (the caller zeroes
// them afterwards or uses a separate optimizer).
func GeneratorAdversarialGrad(d *Discriminator, fake *tensor.Tensor) (float64, *tensor.Tensor) {
	logits := d.Forward(fake)
	loss, grad := BCEWithLogits(logits, 1)
	return loss, d.Backward(grad)
}

func stateWithBN(prefix string, params []*nn.Param, bns []*nn.BatchNorm2D) nn.State {
	s := nn.CollectState(params)
	for _, bn := range bns {
		s[bn.Gamma.Name+".rmean"] = bn.RunningMean
		s[bn.Gamma.Name+".rvar"] = bn.RunningVar
	}
	return s
}

func loadWithBN(prefix string, s nn.State, params []*nn.Param, bns []*nn.BatchNorm2D) error {
	if err := nn.ApplyState(s, params); err != nil {
		return fmt.Errorf("gan: %w", err)
	}
	for _, bn := range bns {
		for suffix, dst := range map[string]*tensor.Tensor{".rmean": bn.RunningMean, ".rvar": bn.RunningVar} {
			name := bn.Gamma.Name + suffix
			t, ok := s[name]
			if !ok {
				return fmt.Errorf("gan: %w: missing buffer %q", nn.ErrBadWeights, name)
			}
			dst.CopyFrom(t)
		}
	}
	return nil
}

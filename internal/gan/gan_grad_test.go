package gan

import (
	"math"
	"math/rand"
	"testing"

	"roadtrojan/internal/nn"
	"roadtrojan/internal/tensor"
)

// ganGradCheck verifies sampled parameter and input gradients against
// central finite differences of loss(x) = <m(x), probe>. The networks are
// full-size (the architecture is fixed), so only a strided subset of each
// tensor is probed to keep the test fast.
func ganGradCheck(t *testing.T, m nn.Module, x *tensor.Tensor, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	out := m.Forward(x)
	probe := tensor.NewRandN(rng, 1, out.Shape()...)
	loss := func() float64 { return tensor.Dot(m.Forward(x), probe) }

	nn.ZeroGrads(m.Params())
	m.Forward(x)
	dIn := m.Backward(probe.Clone())

	const eps = 1e-6
	check := func(name string, vals, grads *tensor.Tensor) {
		stride := 1 + vals.Len()/5
		for i := 0; i < vals.Len(); i += stride {
			orig := vals.Data()[i]
			vals.Data()[i] = orig + eps
			lp := loss()
			vals.Data()[i] = orig - eps
			lm := loss()
			vals.Data()[i] = orig
			num := (lp - lm) / (2 * eps)
			if diff := math.Abs(num - grads.Data()[i]); diff > tol {
				t.Fatalf("%s grad[%d]: analytic %v numeric %v (|diff| %v)", name, i, grads.Data()[i], num, diff)
			}
		}
	}
	for _, p := range m.Params() {
		check(p.Name, p.Value, p.Grad)
	}
	check("input", x, dIn)
}

func TestGeneratorGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := NewGenerator(rng)
	g.SetTraining(true)
	z := SampleZ(rng, 1)
	ganGradCheck(t, g, z, 2e-4)
}

func TestDiscriminatorGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	d := NewDiscriminator(rng)
	d.SetTraining(true)
	x := tensor.NewRandU(rng, 0.1, 0.9, 2, 1, PatchRes, PatchRes)
	ganGradCheck(t, d, x, 2e-4)
}

package serve

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"regexp"
	"strconv"
	"sync"
	"testing"
	"time"

	"roadtrojan/internal/attack"
	"roadtrojan/internal/eval"
	"roadtrojan/internal/scene"
	"roadtrojan/internal/shapes"
	"roadtrojan/internal/tensor"
	"roadtrojan/internal/yolo"
)

// testDetector builds a deterministic (untrained) victim — evaluation only
// needs a fixed function, not an accurate one.
func testDetector(t *testing.T) *yolo.Model {
	t.Helper()
	m := yolo.New(rand.New(rand.NewSource(11)), yolo.DefaultConfig())
	m.SetTraining(false)
	return m
}

// testPatch crafts an untrained monochrome patch with the base config.
func testPatch(t *testing.T) *attack.Patch {
	t.Helper()
	rng := rand.New(rand.NewSource(12))
	gray := tensor.New(1, 32, 32)
	for i := range gray.Data() {
		gray.Data()[i] = rng.Float64()
	}
	cfg := attack.DefaultConfig()
	return &attack.Patch{Gray: gray, Mask: shapes.Mask(cfg.Shape, 32, cfg.ShapeScale(), 0), Cfg: cfg}
}

func encodePatchB64(t *testing.T, p *attack.Patch) string {
	t.Helper()
	raw, err := attack.EncodePatch(p)
	if err != nil {
		t.Fatal(err)
	}
	return base64.StdEncoding.EncodeToString(raw)
}

func startServer(t *testing.T, det *yolo.Model, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(det, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// serialScenes rebuilds the exact locations the server evaluates on.
func serialScenes() map[string]attack.Scene {
	road := scene.NewRoad(rand.New(rand.NewSource(roadSceneSeed)), 8, 30, 0.05)
	sim := scene.NewSimRoom(8, 30, 0.05)
	return map[string]attack.Scene{
		"road": attack.NewArrowScene(road, 0, 15, 1.8),
		"sim":  attack.NewArrowScene(sim, 0, 15, 1.8),
	}
}

// serialEvaluate runs the same job the server would, on a private replica.
func serialEvaluate(t *testing.T, det *yolo.Model, scenes map[string]attack.Scene,
	req EvalRequest) EvalResponse {
	t.Helper()
	p, target, err := req.normalize()
	if err != nil {
		t.Fatalf("normalize serial request: %v", err)
	}
	cond := eval.DefaultCondition()
	if req.Mode == "digital" {
		cond = eval.Digital()
	}
	cond.Runs = req.Runs
	cond.Seed = req.Seed
	replica := det.Clone()
	replica.SetTraining(false)
	d, err := eval.RunJob(eval.Job{
		Det: replica, Cam: scene.DefaultCamera(), Scene: scenes[req.Scene],
		Patch: p, Target: target, Ch: scene.Challenges(req.Challenge)[0], Cond: cond,
	})
	if err != nil {
		t.Fatalf("serial evaluate: %v", err)
	}
	return detailToResponse(d)
}

// requestsTotal sums serve_requests_total for one endpoint across status
// codes, also returning the per-code breakdown.
func requestsTotal(t *testing.T, metricsURL, endpoint string) (int, map[string]int) {
	t.Helper()
	resp, err := http.Get(metricsURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`serve_requests_total\{code="(\d+)",endpoint="` + endpoint + `"\} (\d+)`)
	total := 0
	byCode := map[string]int{}
	for _, m := range re.FindAllStringSubmatch(buf.String(), -1) {
		n, _ := strconv.Atoi(m[2])
		total += n
		byCode[m[1]] += n
	}
	return total, byCode
}

// TestConcurrentEvaluateMatchesSerial is the tentpole acceptance test: the
// server answers ≥8 concurrent /v1/evaluate requests with results
// bit-identical to serial evaluation, and /metrics accounts for every one.
func TestConcurrentEvaluateMatchesSerial(t *testing.T) {
	det := testDetector(t)
	_, ts := startServer(t, det, Config{Workers: 4, QueueSize: 32})

	patchB64 := encodePatchB64(t, testPatch(t))
	reqs := make([]EvalRequest, 8)
	for i := range reqs {
		reqs[i] = EvalRequest{
			Scene: "road", Challenge: "fix", Mode: "digital",
			Runs: 1, Seed: int64(100 + i),
		}
		if i%2 == 0 {
			reqs[i].Patch = patchB64
		} else {
			reqs[i].Target = int(scene.Car)
		}
		if i == 7 {
			reqs[i].Scene = "sim"
		}
	}

	// Serial references first, on private replicas of the same detector.
	scenes := serialScenes()
	want := make([]EvalResponse, len(reqs))
	for i, r := range reqs {
		want[i] = serialEvaluate(t, det, scenes, r)
	}

	got := make([]EvalResponse, len(reqs))
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL+"/v1/evaluate", reqs[i])
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, resp.StatusCode, body)
				return
			}
			if err := json.Unmarshal(body, &got[i]); err != nil {
				t.Errorf("request %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	for i := range reqs {
		got[i].Cached = false
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("request %d: concurrent result differs from serial:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}

	total, byCode := requestsTotal(t, ts.URL+"/metrics", "evaluate")
	if total != len(reqs) {
		t.Errorf("serve_requests_total{endpoint=evaluate} = %d (%v), want %d", total, byCode, len(reqs))
	}
	if byCode["200"] != len(reqs) {
		t.Errorf("code=200 count = %d, want %d", byCode["200"], len(reqs))
	}
}

// TestEvaluateCacheHit proves the LRU short-circuits a repeated request and
// returns the identical payload.
func TestEvaluateCacheHit(t *testing.T) {
	det := testDetector(t)
	s, ts := startServer(t, det, Config{Workers: 2})

	req := EvalRequest{Scene: "road", Challenge: "fix", Mode: "digital",
		Runs: 1, Seed: 42, Target: int(scene.Car)}

	_, body1 := postJSON(t, ts.URL+"/v1/evaluate", req)
	resp2, body2 := postJSON(t, ts.URL+"/v1/evaluate", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second request: %d: %s", resp2.StatusCode, body2)
	}
	var first, second EvalResponse
	if err := json.Unmarshal(body1, &first); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body2, &second); err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first response claims cached")
	}
	if !second.Cached {
		t.Error("second response not served from cache")
	}
	second.Cached = false
	if !reflect.DeepEqual(first, second) {
		t.Errorf("cached result differs:\n got %+v\nwant %+v", second, first)
	}
	if s.exec.cacheHits.Value() != 1 || s.exec.cacheMisses.Value() != 1 {
		t.Errorf("cache hit/miss = %d/%d, want 1/1", s.exec.cacheHits.Value(), s.exec.cacheMisses.Value())
	}
}

// TestQueueOverflowReturns429 fills the one-worker, one-slot queue with a
// blocked job and checks the spillover gets backpressure, not latency.
func TestQueueOverflowReturns429(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	det := testDetector(t)
	_, ts := startServer(t, det, Config{
		Workers: 1, QueueSize: 1,
		Job: func(j eval.Job) (eval.Detail, error) {
			started <- struct{}{}
			<-release
			return eval.Detail{}, nil
		},
	})

	// First request occupies the worker.
	var wg sync.WaitGroup
	fire := func(seed int64, codes chan<- int) {
		defer wg.Done()
		resp, _ := postJSON(t, ts.URL+"/v1/evaluate", EvalRequest{
			Scene: "road", Challenge: "fix", Runs: 1, Seed: seed, Target: int(scene.Car)})
		codes <- resp.StatusCode
	}
	codes := make(chan int, 8)
	wg.Add(1)
	go fire(1, codes)
	<-started // worker is now busy

	// Seven more: one fits the queue slot, the other six must bounce with
	// 429 immediately (the two accepted requests are parked on release, so
	// the first six codes can only be rejections).
	for i := int64(2); i <= 8; i++ {
		wg.Add(1)
		go fire(i, codes)
	}
	counts := map[int]int{}
	for i := 0; i < 6; i++ {
		counts[<-codes]++
	}
	if counts[http.StatusTooManyRequests] != 6 {
		t.Errorf("status counts %v, want 6 rejections with 429", counts)
	}
	close(release)
	wg.Wait()
	counts[<-codes]++
	counts[<-codes]++
	if counts[http.StatusOK] != 2 {
		t.Errorf("status counts %v, want exactly 2 × 200 (worker + queued slot)", counts)
	}
}

// TestDetectEndpoint round-trips one rendered frame and compares against a
// direct forward pass on a replica.
func TestDetectEndpoint(t *testing.T) {
	det := testDetector(t)
	_, ts := startServer(t, det, Config{Workers: 2})

	scenes := serialScenes()
	frame, err := scene.DefaultCamera().Render(scenes["road"].Ground)
	if err != nil {
		t.Fatal(err)
	}
	req := DetectRequest{
		Image:  append([]float64(nil), frame.Data()...),
		Height: frame.Dim(1), Width: frame.Dim(2),
	}
	resp, body := postJSON(t, ts.URL+"/v1/detect", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got DetectResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}

	replica := det.Clone()
	replica.SetTraining(false)
	batch := frame.Reshape(1, 3, frame.Dim(1), frame.Dim(2))
	want := toWireDetections(replica.DecodeSample(replica.Forward(batch), 0, yolo.DefaultDecode()))
	if len(want) == 0 {
		t.Log("untrained detector produced no detections; endpoint equality still checked")
	}
	if !reflect.DeepEqual(got.Detections, want) && !(len(got.Detections) == 0 && len(want) == 0) {
		t.Errorf("detections differ:\n got %+v\nwant %+v", got.Detections, want)
	}
}

// TestBadRequests exercises the validation surface.
func TestBadRequests(t *testing.T) {
	det := testDetector(t)
	_, ts := startServer(t, det, Config{Workers: 1})

	cases := []struct {
		name string
		req  EvalRequest
	}{
		{"unknown challenge", EvalRequest{Scene: "road", Challenge: "warp9", Target: int(scene.Car)}},
		{"unknown scene", EvalRequest{Scene: "moon", Challenge: "fix", Target: int(scene.Car)}},
		{"missing target without patch", EvalRequest{Scene: "road", Challenge: "fix"}},
		{"bad base64 patch", EvalRequest{Scene: "road", Challenge: "fix", Patch: "!!!"}},
		{"runs out of range", EvalRequest{Scene: "road", Challenge: "fix", Runs: 999, Target: int(scene.Car)}},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/evaluate", tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", tc.name, resp.StatusCode, body)
		}
	}

	resp, _ := postJSON(t, ts.URL+"/v1/detect", DetectRequest{Image: []float64{1, 2}, Height: 4, Width: 4})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("short image: status %d, want 400", resp.StatusCode)
	}
	getResp, err := http.Get(ts.URL + "/v1/evaluate")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET evaluate: status %d, want 405", getResp.StatusCode)
	}
}

// TestJobPanicBecomes500 proves panic recovery keeps the worker alive.
func TestJobPanicBecomes500(t *testing.T) {
	det := testDetector(t)
	calls := 0
	var mu sync.Mutex
	_, ts := startServer(t, det, Config{
		Workers: 1,
		Job: func(j eval.Job) (eval.Detail, error) {
			mu.Lock()
			calls++
			first := calls == 1
			mu.Unlock()
			if first {
				panic("boom")
			}
			return eval.Detail{}, nil
		},
	})
	req := EvalRequest{Scene: "road", Challenge: "fix", Runs: 1, Seed: 1, Target: int(scene.Car)}
	resp, body := postJSON(t, ts.URL+"/v1/evaluate", req)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking job: status %d (%s), want 500", resp.StatusCode, body)
	}
	// The same worker must survive and serve the next request.
	req.Seed = 2
	resp, body = postJSON(t, ts.URL+"/v1/evaluate", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after panic: status %d (%s), want 200", resp.StatusCode, body)
	}
}

// TestHealthz checks the liveness endpoint shape.
func TestHealthz(t *testing.T) {
	det := testDetector(t)
	_, ts := startServer(t, det, Config{Workers: 3, QueueSize: 5})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h["status"] != "ok" {
		t.Errorf("status = %v", h["status"])
	}
	if h["workers"] != float64(3) || h["queue_capacity"] != float64(5) {
		t.Errorf("healthz = %v", h)
	}
}

// TestShutdownDrains proves graceful drain: in-flight jobs finish, new
// submissions are refused with 503.
func TestShutdownDrains(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	det := testDetector(t)
	s := New(det, Config{
		Workers: 1, QueueSize: 4,
		Job: func(j eval.Job) (eval.Detail, error) {
			started <- struct{}{}
			<-release
			return eval.Detail{}, nil
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var inflightCode int
	var inflightBody []byte
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, body := postJSON(t, ts.URL+"/v1/evaluate", EvalRequest{
			Scene: "road", Challenge: "fix", Runs: 1, Seed: 9, Target: int(scene.Car)})
		inflightCode, inflightBody = resp.StatusCode, body
	}()
	<-started

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	// Let the drain flag settle, then release the worker.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if inflightCode != http.StatusOK {
		t.Fatalf("in-flight request during drain: status %d (%s), want 200", inflightCode, inflightBody)
	}

	resp, _ := postJSON(t, ts.URL+"/v1/evaluate", EvalRequest{
		Scene: "road", Challenge: "fix", Runs: 1, Seed: 10, Target: int(scene.Car)})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown request: status %d, want 503", resp.StatusCode)
	}
}

// TestPatchWireRoundTrip sanity-checks the reuse of the attack (de)serializer
// as the wire format.
func TestPatchWireRoundTrip(t *testing.T) {
	p := testPatch(t)
	raw, err := attack.EncodePatch(p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := attack.DecodePatch(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Cfg, q.Cfg) {
		t.Errorf("config round trip: %+v != %+v", q.Cfg, p.Cfg)
	}
	if !reflect.DeepEqual(p.Gray.Data(), q.Gray.Data()) || !reflect.DeepEqual(p.Mask.Data(), q.Mask.Data()) {
		t.Error("patch tensors corrupted on the wire")
	}
	if _, err := attack.DecodePatch([]byte("garbage")); err == nil {
		t.Error("DecodePatch accepted garbage")
	}
}

// TestQueueOverflowRetryAfterHeader: a 429 must carry a usable Retry-After
// so well-behaved clients (and the fabric gateway) know when to come back.
func TestQueueOverflowRetryAfterHeader(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	det := testDetector(t)
	s, ts := startServer(t, det, Config{
		Workers: 1, QueueSize: 1,
		Job: func(eval.Job) (eval.Detail, error) {
			started <- struct{}{}
			<-release
			return eval.Detail{}, nil
		},
	})
	var releaseOnce sync.Once
	releaseAll := func() { releaseOnce.Do(func() { close(release) }) }
	defer releaseAll()

	var wg sync.WaitGroup
	for seed := int64(1); seed <= 2; seed++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			postJSON(t, ts.URL+"/v1/evaluate", EvalRequest{
				Scene: "road", Challenge: "fix", Runs: 1, Seed: seed, Target: int(scene.Car)})
		}(seed)
	}
	<-started // worker busy
	deadline := time.Now().Add(10 * time.Second)
	for s.exec.QueueDepth() != 1 { // queue slot taken
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	resp, body := postJSON(t, ts.URL+"/v1/evaluate", EvalRequest{
		Scene: "road", Challenge: "fix", Runs: 1, Seed: 99, Target: int(scene.Car)})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d (%s), want 429", resp.StatusCode, body)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 60 {
		t.Errorf("Retry-After = %q, want integer in [1,60]", resp.Header.Get("Retry-After"))
	}
	releaseAll()
	wg.Wait()
}

// TestCacheHitRatioMetric: the derived gauge on /metrics tracks the live
// hit/miss counters.
func TestCacheHitRatioMetric(t *testing.T) {
	det := testDetector(t)
	_, ts := startServer(t, det, Config{Workers: 2})
	req := EvalRequest{Scene: "road", Challenge: "fix", Mode: "digital",
		Runs: 1, Seed: 77, Target: int(scene.Car)}

	scrape := func() string {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if out := scrape(); !regexp.MustCompile(`serve_cache_hit_ratio 0\n`).MatchString(out) {
		t.Fatalf("cold cache should expose ratio 0:\n%s", out)
	}
	postJSON(t, ts.URL+"/v1/evaluate", req) // miss
	postJSON(t, ts.URL+"/v1/evaluate", req) // hit
	if out := scrape(); !regexp.MustCompile(`serve_cache_hit_ratio 0\.5\n`).MatchString(out) {
		t.Fatalf("after 1 hit / 1 miss, want ratio 0.5:\n%s", out)
	}
}

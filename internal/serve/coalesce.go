package serve

import (
	"context"
	"time"

	"roadtrojan/internal/eval"
	"roadtrojan/internal/obs"
	"roadtrojan/internal/tensor"
	"roadtrojan/internal/yolo"
)

// Micro-batching coalescer. With Config.BatchSize > 1, concurrent requests
// park in a small buffer in front of the executor instead of entering the
// job queue one by one; the buffer flushes as one batch when either
// BatchSize requests are waiting (size flush) or BatchDeadline has elapsed
// since the first request arrived (deadline flush), whichever comes first —
// so an idle service adds at most one deadline of latency to a lone request
// while a busy one amortizes dispatch and, for evaluations, collapses
// duplicate patch digests into a single run. Closing the input channel
// flushes whatever is pending (drain flush) before the run loop exits.

// Flush reasons, used as the serve_batch_flushes_total label.
const (
	flushSize     = "size"
	flushDeadline = "deadline"
	flushDrain    = "drain"
)

// coalescer batches items of one request kind. The zero-goroutine contract:
// items enter through in (the sender handles full-buffer backpressure), one
// run loop owns the pending batch, and flush is called on the run loop
// goroutine — it must dispatch without blocking on results.
type coalescer[T any] struct {
	in    chan T
	done  chan struct{}
	size  int
	wait  time.Duration
	clock Clock
	flush func(batch []T, reason string)
}

func newCoalescer[T any](size, buffer int, wait time.Duration, clock Clock, flush func([]T, string)) *coalescer[T] {
	c := &coalescer[T]{
		in:    make(chan T, buffer),
		done:  make(chan struct{}),
		size:  size,
		wait:  wait,
		clock: clock,
		flush: flush,
	}
	go c.run()
	return c
}

// run owns the pending batch: append on arrival, flush on size, deadline, or
// input close. The deadline timer starts with the batch's first item; a nil
// timer channel blocks forever, which is exactly the idle state.
func (c *coalescer[T]) run() {
	defer close(c.done)
	var batch []T
	var timer <-chan time.Time
	for {
		select {
		case it, ok := <-c.in:
			if !ok {
				if len(batch) > 0 {
					c.flush(batch, flushDrain)
				}
				return
			}
			batch = append(batch, it)
			if len(batch) == 1 {
				timer = c.clock.After(c.wait)
			}
			if len(batch) >= c.size {
				c.flush(batch, flushSize)
				batch, timer = nil, nil
			}
		case <-timer:
			// A timer from an already-flushed batch can fire late; the
			// length guard makes that a no-op.
			if len(batch) > 0 {
				c.flush(batch, flushDeadline)
			}
			batch, timer = nil, nil
		}
	}
}

// close stops intake and waits for the final drain flush to dispatch.
func (c *coalescer[T]) close() {
	close(c.in)
	<-c.done
}

// callResult is one evaluate waiter's outcome.
type callResult struct {
	detail eval.Detail
	cached bool
	err    error
}

// evalCall is one evaluate request parked in the coalescer: its cache key
// (the dedupe identity), the prepared job, and a buffered reply channel so
// fan-out never blocks on a waiter that gave up. parked/traceID feed the
// batch_wait stage histogram.
type evalCall struct {
	key     string
	job     eval.Job
	done    chan callResult
	parked  time.Time
	traceID string
}

// flushEvaluate dispatches one evaluate batch: requests are grouped by cache
// key, each group re-checks the cache (an earlier flush may have filled it
// while these waited), and each remaining unique key becomes exactly one
// pool task whose result fans out to every waiter in the group and fills the
// cache once.
func (e *Executor) flushEvaluate(batch []*evalCall, reason string) {
	e.flushCounter(reason).Inc()
	e.batchOccupancy.Observe(float64(len(batch)))
	now := e.cfg.Clock.Now()
	for _, c := range batch {
		e.observeStage(StageBatchWait, now.Sub(c.parked), c.traceID)
	}
	groups := make(map[string][]*evalCall, len(batch))
	var order []string
	for _, c := range batch {
		if _, ok := groups[c.key]; !ok {
			order = append(order, c.key)
		}
		groups[c.key] = append(groups[c.key], c)
	}
	for _, key := range order {
		g := groups[key]
		if len(g) > 1 {
			e.batchDedup.Add(int64(len(g) - 1))
		}
		if v, ok := e.cache.get(key); ok {
			d := v.(eval.Detail)
			for _, c := range g {
				e.cacheHits.Inc()
				c.done <- callResult{detail: d, cached: true}
			}
			continue
		}
		e.cacheMisses.Inc()
		e.dispatchEvalGroup(key, g)
	}
}

// dispatchEvalGroup enqueues one pool task for a unique cache key and fans
// its result out to the group's waiters. The task runs under its own
// JobTimeout deadline — waiters enforce their individual request contexts on
// their side of the reply channel.
func (e *Executor) dispatchEvalGroup(key string, g []*evalCall) {
	ctx, cancel := context.WithTimeout(context.Background(), e.cfg.JobTimeout)
	job := g[0].job
	t := &task{ctx: ctx, done: make(chan taskResult, 1), traceID: g[0].traceID, run: func(det *yolo.Model) (any, error) {
		j := job
		j.Det = det
		return e.cfg.Job(j)
	}}
	if err := e.enqueueTask(t); err != nil {
		cancel()
		for _, c := range g {
			c.done <- callResult{err: err}
		}
		return
	}
	go func() {
		r := <-t.done
		cancel()
		if r.err != nil {
			for _, c := range g {
				c.done <- callResult{err: r.err}
			}
			return
		}
		d := r.v.(eval.Detail)
		e.cache.put(key, d, detailBytes(d))
		for _, c := range g {
			c.done <- callResult{detail: d}
		}
	}()
}

// detectResult is one detect waiter's outcome.
type detectResult struct {
	dets []yolo.Detection
	err  error
}

// detectCall is one detect request parked in the coalescer. span is the
// request's span (the batched forward/decode leaves parent to the first
// caller in each group); parked/traceID feed the batch_wait histogram.
type detectCall struct {
	req     DetectRequest
	done    chan detectResult
	parked  time.Time
	span    *obs.Span
	traceID string
}

// flushDetect dispatches one detect batch: frames are grouped by resolution,
// each group is stacked into a single [N,3,H,W] tensor, and one pool task
// runs one batched forward plus per-sample decode for the whole group — the
// batch-first inference path.
func (e *Executor) flushDetect(batch []*detectCall, reason string) {
	e.flushCounter(reason).Inc()
	e.batchOccupancy.Observe(float64(len(batch)))
	now := e.cfg.Clock.Now()
	for _, c := range batch {
		e.observeStage(StageBatchWait, now.Sub(c.parked), c.traceID)
	}
	type dims struct{ h, w int }
	groups := make(map[dims][]*detectCall, 1)
	var order []dims
	for _, c := range batch {
		d := dims{c.req.Height, c.req.Width}
		if _, ok := groups[d]; !ok {
			order = append(order, d)
		}
		groups[d] = append(groups[d], c)
	}
	for _, d := range order {
		e.dispatchDetectGroup(d.h, d.w, groups[d])
	}
}

// dispatchDetectGroup runs one same-resolution group through a single
// batched forward and fans the per-sample detections back out in request
// order.
func (e *Executor) dispatchDetectGroup(h, w int, g []*detectCall) {
	ctx, cancel := context.WithTimeout(context.Background(), e.cfg.JobTimeout)
	frame := 3 * h * w
	pixels := make([]float64, 0, len(g)*frame)
	for _, c := range g {
		pixels = append(pixels, c.req.Image...)
	}
	img := tensor.FromSlice(pixels, len(g), 3, h, w)
	// The batched forward runs once for the whole group; its spans and
	// stage observations attribute to the group's first caller (the request
	// whose arrival opened the batch window).
	lead, hook := g[0].span, e.stageHook(g[0].traceID)
	t := &task{ctx: ctx, done: make(chan taskResult, 1), traceID: g[0].traceID, run: func(det *yolo.Model) (any, error) {
		fsp := lead.Child(StageForward, obs.I("batch", len(g)))
		end := hook(StageForward)
		heads := det.Forward(img)
		end()
		fsp.End()
		dsp := lead.Child(StageDecode, obs.I("batch", len(g)))
		end = hook(StageDecode)
		dets := det.DecodeBatch(heads, yolo.DefaultDecode())
		end()
		dsp.End()
		return dets, nil
	}}
	if err := e.enqueueTask(t); err != nil {
		cancel()
		for _, c := range g {
			c.done <- detectResult{err: err}
		}
		return
	}
	go func() {
		r := <-t.done
		cancel()
		if r.err != nil {
			for _, c := range g {
				c.done <- detectResult{err: r.err}
			}
			return
		}
		lists := r.v.([][]yolo.Detection)
		for i, c := range g {
			c.done <- detectResult{dets: lists[i]}
		}
	}()
}

package serve

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"roadtrojan/internal/eval"
	"roadtrojan/internal/metrics"
)

// stepClock is the injected coalescer clock: After hands out channels that
// fire only when the test calls fire(), so deadline flushes happen on demand
// (mirroring the fabric test clock).
type stepClock struct {
	mu    sync.Mutex
	chans []chan time.Time
}

func (c *stepClock) Now() time.Time { return time.Unix(0, 0) }

func (c *stepClock) After(time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	c.chans = append(c.chans, ch)
	return ch
}

// fire releases every pending After channel.
func (c *stepClock) fire() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, ch := range c.chans {
		select {
		case ch <- time.Unix(0, 1):
		default:
		}
	}
	c.chans = nil
}

// batchExecutor builds an executor around a stub job that counts executions,
// so tests can assert how many evaluations actually ran versus being deduped
// or served from cache.
func batchExecutor(t *testing.T, cfg Config, ran *atomic.Int64) *Executor {
	t.Helper()
	if cfg.Job == nil {
		cfg.Job = func(j eval.Job) (eval.Detail, error) {
			if ran != nil {
				ran.Add(1)
			}
			return eval.Detail{Score: metrics.Score{PWC: float64(j.Cond.Seed)}}, nil
		}
	}
	e := NewExecutor(testDetector(t), cfg, nil)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = e.Close(ctx)
	})
	return e
}

// batchEvalReq builds a valid evaluate request whose cache key is determined
// by seed, so tests control grouping without touching patch payloads.
func batchEvalReq(seed int64) EvalRequest {
	return EvalRequest{Scene: "road", Challenge: "fix", Mode: "digital", Runs: 1, Seed: seed, Target: 2}
}

// evaluateConcurrently fires one goroutine per request and collects responses
// in request order.
func evaluateConcurrently(t *testing.T, e *Executor, reqs []EvalRequest) []EvalResponse {
	t.Helper()
	resps := make([]EvalResponse, len(reqs))
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req EvalRequest) {
			defer wg.Done()
			resps[i], errs[i] = e.Evaluate(context.Background(), req)
		}(i, req)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	return resps
}

// TestBatchSizeFlush: BatchSize concurrent unique requests trigger exactly
// one size flush without the deadline clock ever firing.
func TestBatchSizeFlush(t *testing.T) {
	var ran atomic.Int64
	clk := &stepClock{}
	e := batchExecutor(t, Config{Workers: 1, QueueSize: 16, BatchSize: 4, Clock: clk}, &ran)

	reqs := make([]EvalRequest, 4)
	for i := range reqs {
		reqs[i] = batchEvalReq(int64(100 + i))
	}
	resps := evaluateConcurrently(t, e, reqs)
	for i, r := range resps {
		if r.PWC != float64(reqs[i].Seed) {
			t.Errorf("request %d: PWC %v, want %v (stub echoes seed)", i, r.PWC, reqs[i].Seed)
		}
		if r.Cached {
			t.Errorf("request %d unexpectedly cached", i)
		}
	}
	if got := ran.Load(); got != 4 {
		t.Errorf("stub ran %d times, want 4 (all keys unique)", got)
	}
	if got := e.flushCounter(flushSize).Value(); got != 1 {
		t.Errorf("size flushes = %d, want 1", got)
	}
	if got := e.flushCounter(flushDeadline).Value(); got != 0 {
		t.Errorf("deadline flushes = %d, want 0 (clock never fired)", got)
	}
}

// TestBatchDeadlineFlush: a partial batch sits parked until the injected
// clock fires the deadline, then flushes with reason "deadline".
func TestBatchDeadlineFlush(t *testing.T) {
	var ran atomic.Int64
	clk := &stepClock{}
	e := batchExecutor(t, Config{Workers: 1, QueueSize: 16, BatchSize: 8, Clock: clk}, &ran)

	done := make(chan struct{})
	go func() {
		defer close(done)
		evaluateConcurrently(t, e, []EvalRequest{batchEvalReq(1), batchEvalReq(2)})
	}()
	// The two requests are under the size threshold, so only the injected
	// deadline can flush them. Fire until they answer: the second request can
	// land just after a fire and start its own batch, needing one more.
	deadline := time.After(10 * time.Second)
	for {
		clk.fire()
		select {
		case <-done:
			if got := ran.Load(); got != 2 {
				t.Errorf("stub ran %d times, want 2", got)
			}
			if got := e.flushCounter(flushSize).Value(); got != 0 {
				t.Errorf("size flushes = %d, want 0 (batch never filled)", got)
			}
			if got := e.flushCounter(flushDeadline).Value(); got < 1 {
				t.Errorf("deadline flushes = %d, want >= 1", got)
			}
			return
		case <-time.After(2 * time.Millisecond):
		case <-deadline:
			t.Fatal("deadline flush never released the parked requests")
		}
	}
}

// TestBatchDedupeCollapsesDuplicateDigests: a full batch holding only two
// unique cache keys runs exactly two jobs; the other six requests ride along
// and every waiter still gets its answer.
func TestBatchDedupeCollapsesDuplicateDigests(t *testing.T) {
	var ran atomic.Int64
	clk := &stepClock{}
	e := batchExecutor(t, Config{Workers: 2, QueueSize: 16, BatchSize: 8, Clock: clk}, &ran)

	reqs := make([]EvalRequest, 8)
	for i := range reqs {
		reqs[i] = batchEvalReq(int64(1 + i%2))
	}
	resps := evaluateConcurrently(t, e, reqs)
	for i, r := range resps {
		if r.PWC != float64(reqs[i].Seed) {
			t.Errorf("request %d: PWC %v, want %v", i, r.PWC, reqs[i].Seed)
		}
	}
	if got := ran.Load(); got != 2 {
		t.Errorf("stub ran %d times, want 2 (6 duplicates collapsed)", got)
	}
	if got := e.batchDedup.Value(); got != 6 {
		t.Errorf("serve_batch_dedup_total = %d, want 6", got)
	}
	if got := e.cacheMisses.Value(); got != 2 {
		t.Errorf("cache misses = %d, want 2 (one per unique key)", got)
	}
}

// TestCachedDigestShortCircuitsCoalescer is the hit-ratio test: once a
// digest's result is cached, batched requests for it answer at the front
// door without re-entering the coalescer or occupying a batch slot.
func TestCachedDigestShortCircuitsCoalescer(t *testing.T) {
	var ran atomic.Int64
	clk := &stepClock{}
	e := batchExecutor(t, Config{Workers: 1, QueueSize: 16, BatchSize: 2, Clock: clk}, &ran)

	// Prime: two concurrent requests for the same key fill one batch (size
	// flush), run once, and fill the cache once.
	evaluateConcurrently(t, e, []EvalRequest{batchEvalReq(7), batchEvalReq(7)})
	if got := ran.Load(); got != 1 {
		t.Fatalf("priming ran %d jobs, want 1", got)
	}
	flushesBefore := e.flushCounter(flushSize).Value()

	// Four more requests for the cached key: all short-circuit. Odd count on
	// purpose — if they re-entered the BatchSize=2 coalescer, one would park
	// until the (never-firing) deadline and this test would hang.
	resps := evaluateConcurrently(t, e, []EvalRequest{
		batchEvalReq(7), batchEvalReq(7), batchEvalReq(7), batchEvalReq(7), batchEvalReq(7),
	})
	for i, r := range resps {
		if !r.Cached {
			t.Errorf("request %d: Cached=false, want true", i)
		}
		if r.PWC != 7 {
			t.Errorf("request %d: PWC %v, want 7", i, r.PWC)
		}
	}
	if got := ran.Load(); got != 1 {
		t.Errorf("stub ran %d times, want still 1", got)
	}
	if got := e.flushCounter(flushSize).Value(); got != flushesBefore {
		t.Errorf("size flushes grew %d -> %d; cached requests must not re-enter the coalescer", flushesBefore, got)
	}
	hits, misses := e.cacheHits.Value(), e.cacheMisses.Value()
	if hits != 5 || misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 5/1", hits, misses)
	}

	// The scrape-time gauges agree with the counters.
	rec := httptest.NewRecorder()
	e.Metrics().Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	if !strings.Contains(body, "serve_cache_hit_ratio 0.833") {
		t.Errorf("metrics missing serve_cache_hit_ratio ~5/6:\n%s", grepMetric(body, "serve_cache_hit_ratio"))
	}
	if !strings.Contains(body, "serve_cache_bytes 128") {
		t.Errorf("metrics missing serve_cache_bytes for one zero-run detail:\n%s", grepMetric(body, "serve_cache_bytes"))
	}
}

// grepMetric pulls the lines for one metric out of an exposition body.
func grepMetric(body, name string) string {
	var out []string
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, name) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestDrainFlushRunsParkedRequests: Close while a partial batch is parked
// still answers those waiters — the drain flush dispatches before the job
// queue shuts.
func TestDrainFlushRunsParkedRequests(t *testing.T) {
	var ran atomic.Int64
	clk := &stepClock{}
	e := batchExecutor(t, Config{Workers: 1, QueueSize: 16, BatchSize: 8, Clock: clk}, &ran)

	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = e.Evaluate(context.Background(), batchEvalReq(int64(50+i)))
		}(i)
	}
	// Give the parks time to land in the run loop's pending batch; the batch
	// stays under size 8 and the injected clock never fires, so only the
	// drain flush can release them.
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := e.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("parked request %d failed: %v", i, err)
		}
	}
	if got := ran.Load(); got != 3 {
		t.Errorf("stub ran %d times, want 3 (drain flush ran the parked batch)", got)
	}
	if got := e.flushCounter(flushDrain).Value(); got != 1 {
		t.Errorf("drain flushes = %d, want 1", got)
	}
	if _, err := e.Evaluate(context.Background(), batchEvalReq(99)); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("post-close evaluate error = %v, want ErrShuttingDown", err)
	}
}

// TestCoalescerHammer drives the batched path hard under the race detector:
// caching disabled so every request runs the full park → flush → dispatch →
// fan-out cycle, wall-clock deadline so size and deadline flushes interleave.
func TestCoalescerHammer(t *testing.T) {
	var ran atomic.Int64
	e := batchExecutor(t, Config{
		Workers: 2, QueueSize: 64, CacheSize: -1,
		BatchSize: 3, BatchDeadline: 200 * time.Microsecond,
	}, &ran)

	const clients, rounds = 8, 25
	var wg sync.WaitGroup
	var failed atomic.Int64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < rounds; i++ {
				seed := int64(1 + rng.Intn(5))
				r, err := e.Evaluate(context.Background(), batchEvalReq(seed))
				if err != nil || r.PWC != float64(seed) {
					failed.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d hammer requests failed or answered wrong", n)
	}
	total := clients * rounds
	if got := ran.Load() + e.batchDedup.Value(); got != int64(total) {
		t.Errorf("ran(%d) + deduped(%d) = %d, want %d: every request runs or collapses",
			ran.Load(), e.batchDedup.Value(), got, total)
	}
	flushes := e.flushCounter(flushSize).Value() + e.flushCounter(flushDeadline).Value()
	if flushes == 0 {
		t.Error("no flushes recorded")
	}
}

// TestDetectBatchedMatchesSingle: concurrent detect requests through the
// coalescer's stacked batched forward answer identically to the one-at-a-time
// path.
func TestDetectBatchedMatchesSingle(t *testing.T) {
	det := testDetector(t)
	single := NewExecutor(det, Config{Workers: 1, QueueSize: 8}, nil)
	batched := NewExecutor(det, Config{
		Workers: 1, QueueSize: 16, BatchSize: 4, BatchDeadline: time.Millisecond,
	}, nil)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = single.Close(ctx)
		_ = batched.Close(ctx)
	})

	const h, w = 32, 32
	rng := rand.New(rand.NewSource(21))
	reqs := make([]DetectRequest, 4)
	for i := range reqs {
		img := make([]float64, 3*h*w)
		for j := range img {
			img[j] = rng.Float64()
		}
		reqs[i] = DetectRequest{Image: img, Height: h, Width: w}
	}

	want := make([]DetectResponse, len(reqs))
	for i, req := range reqs {
		r, err := single.Detect(context.Background(), req)
		if err != nil {
			t.Fatalf("single detect %d: %v", i, err)
		}
		want[i] = r
	}

	got := make([]DetectResponse, len(reqs))
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req DetectRequest) {
			defer wg.Done()
			got[i], errs[i] = batched.Detect(context.Background(), req)
		}(i, req)
	}
	wg.Wait()
	for i := range reqs {
		if errs[i] != nil {
			t.Fatalf("batched detect %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("batched detect %d differs from single-request path", i)
		}
	}
}

// TestBatchedServerMatchesSingleRequestBytes: with batching enabled, a lone
// HTTP request gets byte-identical JSON to a pre-batching server — the
// fused + batched serving path changes throughput, never answers.
func TestBatchedServerMatchesSingleRequestBytes(t *testing.T) {
	det := testDetector(t)
	_, plainTS := startServer(t, det, Config{Workers: 1, QueueSize: 8})
	_, batchTS := startServer(t, det, Config{
		Workers: 1, QueueSize: 8, BatchSize: 4, BatchDeadline: time.Millisecond,
	})

	req := EvalRequest{
		Patch: encodePatchB64(t, testPatch(t)),
		Scene: "road", Challenge: "fix", Mode: "digital", Runs: 1, Seed: 303,
	}
	plainResp, plainBody := postJSON(t, plainTS.URL+"/v1/evaluate", req)
	batchResp, batchBody := postJSON(t, batchTS.URL+"/v1/evaluate", req)
	if plainResp.StatusCode != 200 || batchResp.StatusCode != 200 {
		t.Fatalf("status %d / %d, want 200", plainResp.StatusCode, batchResp.StatusCode)
	}
	if string(plainBody) != string(batchBody) {
		t.Errorf("batched server answered different bytes for single-request traffic:\nplain: %s\nbatch: %s",
			plainBody, batchBody)
	}

	scenes := serialScenes()
	want := serialEvaluate(t, det, scenes, req)
	var got EvalResponse
	if err := json.Unmarshal(batchBody, &got); err != nil {
		t.Fatal(err)
	}
	got.Cached = false
	if !reflect.DeepEqual(got, want) {
		t.Errorf("batched response diverges from serial evaluation:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestLRUCacheByteBudget covers the byte-accounted LRU: eviction on the byte
// budget, size refresh on overwrite, and the oversized-entry guard.
func TestLRUCacheByteBudget(t *testing.T) {
	c := newLRUCache(10, 100)
	c.put("a", 1, 40)
	c.put("b", 2, 40)
	if got := c.bytes(); got != 80 {
		t.Fatalf("bytes = %d, want 80", got)
	}
	c.put("c", 3, 40) // 120 > 100: evict "a"
	if _, ok := c.get("a"); ok {
		t.Error("oldest entry survived a byte-budget eviction")
	}
	if got := c.bytes(); got != 80 {
		t.Errorf("bytes after eviction = %d, want 80", got)
	}
	if got := c.len(); got != 2 {
		t.Errorf("len = %d, want 2", got)
	}

	c.put("b", 22, 10) // refresh shrinks accounting
	if got := c.bytes(); got != 50 {
		t.Errorf("bytes after refresh = %d, want 50", got)
	}
	if v, ok := c.get("b"); !ok || v.(int) != 22 {
		t.Errorf("refresh lost the new value: %v %v", v, ok)
	}

	c.put("huge", 4, 200) // bigger than the whole budget: never cached
	if _, ok := c.get("huge"); ok {
		t.Error("oversized entry was cached")
	}
	if got := c.len(); got != 2 {
		t.Errorf("oversized put disturbed the cache: len = %d, want 2", got)
	}

	// Negative byte budget means entries-only accounting (the legacy knob).
	old := newLRUCache(2, -1)
	old.put("x", 1, 1<<40)
	old.put("y", 2, 1<<40)
	if _, ok := old.get("x"); !ok {
		t.Error("entries-only cache evicted within capacity")
	}
	// The get above touched "x", so "y" is now least recently used.
	old.put("z", 3, 1)
	if got := old.len(); got != 2 {
		t.Errorf("entries-only cache holds %d entries, want 2", got)
	}
	if _, ok := old.get("y"); ok {
		t.Error("entries-only cache kept its LRU entry past maxEntries")
	}
}

// TestDetailBytesScalesWithRuns: the size estimator grows with payload so the
// byte budget actually tracks memory.
func TestDetailBytesScalesWithRuns(t *testing.T) {
	small := eval.Detail{Runs: [][]metrics.FrameResult{make([]metrics.FrameResult, 2)}}
	big := eval.Detail{Runs: [][]metrics.FrameResult{
		make([]metrics.FrameResult, 30), make([]metrics.FrameResult, 30), make([]metrics.FrameResult, 30),
	}}
	if detailBytes(small) <= detailBytes(eval.Detail{}) {
		t.Error("detailBytes ignores runs")
	}
	if detailBytes(big) <= detailBytes(small) {
		t.Error("detailBytes does not scale with frames")
	}
}

package serve

import "time"

// Clock abstracts time for the micro-batching coalescer so its deadline
// flush is testable with injected time, mirroring internal/fabric's Clock
// (serve cannot import fabric — fabric fronts serve). Production uses
// WallClock; the coalescer hammer tests inject a fake whose After channel
// fires on demand.
type Clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

type wallClock struct{}

func (wallClock) Now() time.Time                         { return time.Now() }
func (wallClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// WallClock returns the real-time clock.
func WallClock() Clock { return wallClock{} }

package serve

import (
	"time"

	"roadtrojan/internal/eval"
	"roadtrojan/internal/telemetry"
)

// Stage-level latency attribution. Every request is decomposed into the
// stages a fleet operator needs to tell apart — time spent waiting in the
// bounded queue, time parked in the micro-batch coalescer, the forward
// pass, decode/NMS, and the end-to-end total — each a serve_stage_seconds
// series. Observations carry the request's trace ID as an OpenMetrics-style
// exemplar, so a p99 outlier on a dashboard links straight to the journal
// trace that explains it. StageStats snapshots the same histograms for the
// fabric Stats frame, which is how the gateway builds its fleet view.

// Stage names for the serve_stage_seconds histogram family.
const (
	StageQueueWait = "queue_wait"
	StageBatchWait = "batch_wait"
	StageForward   = eval.StageForward
	StageDecode    = eval.StageDecode
	StageTotal     = "total"
)

// StageNames lists every stage this executor records, in exposition order.
func StageNames() []string {
	return []string{StageQueueWait, StageBatchWait, StageForward, StageDecode, StageTotal}
}

const stageHistHelp = "per-stage request latency (queue wait, batch wait, forward, decode, total)"

// initStages registers the per-stage histograms.
func (e *Executor) initStages() {
	e.stageHist = make(map[string]*telemetry.Histogram, 5)
	for _, st := range StageNames() {
		e.stageHist[st] = e.reg.Histogram("serve_stage_seconds", stageHistHelp,
			telemetry.Labels{"stage": st}, nil)
	}
}

// observeStage folds one stage duration into its histogram, attaching the
// request's trace ID as the bucket exemplar (empty = no exemplar).
func (e *Executor) observeStage(stage string, d time.Duration, traceID string) {
	if h := e.stageHist[stage]; h != nil {
		h.ObserveExemplar(d.Seconds(), traceID)
	}
}

// stageHook adapts observeStage to eval's StageHook: the clock read happens
// here, in serve (allowlisted for wall time), so eval stays deterministic.
func (e *Executor) stageHook(traceID string) eval.StageHook {
	return func(stage string) func() {
		start := e.cfg.Clock.Now()
		return func() {
			e.observeStage(stage, e.cfg.Clock.Now().Sub(start), traceID)
		}
	}
}

// StageStats snapshots every stage histogram — the payload of the fabric
// Stats frame.
func (e *Executor) StageStats() map[string]telemetry.HistSnapshot {
	out := make(map[string]telemetry.HistSnapshot, len(e.stageHist))
	for st, h := range e.stageHist {
		out[st] = h.Snapshot()
	}
	return out
}

package serve

import (
	"crypto/sha256"
	"encoding/base64"
	"fmt"
	"math"

	"roadtrojan/internal/attack"
	"roadtrojan/internal/metrics"
	"roadtrojan/internal/scene"
	"roadtrojan/internal/yolo"
)

// DetectRequest is the POST /v1/detect body: one rendered [3,H,W] frame in
// [0,1], flattened channel-major. It is also the fabric detect-job payload.
type DetectRequest struct {
	Image  []float64 `json:"image"`
	Height int       `json:"height"`
	Width  int       `json:"width"`
}

func (r *DetectRequest) validate() error {
	if r.Height <= 0 || r.Width <= 0 {
		return fmt.Errorf("height and width must be positive, got %dx%d", r.Height, r.Width)
	}
	if want := 3 * r.Height * r.Width; len(r.Image) != want {
		return fmt.Errorf("image has %d values, want 3*%d*%d = %d", len(r.Image), r.Height, r.Width, want)
	}
	for i, v := range r.Image {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("image[%d] is not finite", i)
		}
	}
	return nil
}

// wireBox is a center-format pixel box.
type wireBox struct {
	CX float64 `json:"cx"`
	CY float64 `json:"cy"`
	W  float64 `json:"w"`
	H  float64 `json:"h"`
}

// wireDetection is one decoded detection.
type wireDetection struct {
	Class      int     `json:"class"`
	ClassName  string  `json:"className"`
	Confidence float64 `json:"confidence"`
	Box        wireBox `json:"box"`
}

// DetectResponse is the POST /v1/detect reply.
type DetectResponse struct {
	Detections []wireDetection `json:"detections"`
}

func toWireDetections(dets []yolo.Detection) []wireDetection {
	out := make([]wireDetection, len(dets))
	for i, d := range dets {
		out[i] = wireDetection{
			Class:      int(d.Class),
			ClassName:  d.Class.String(),
			Confidence: d.Confidence,
			Box:        wireBox{CX: d.Box.CX, CY: d.Box.CY, W: d.Box.W, H: d.Box.H},
		}
	}
	return out
}

// EvalRequest is the POST /v1/evaluate body and the fabric eval-job
// payload. Patch is the base64 of attack.EncodePatch output (a SavePatch
// file image); empty means the no-attack baseline, which then requires
// Target.
type EvalRequest struct {
	Patch     string `json:"patch,omitempty"`
	Scene     string `json:"scene"`     // road | sim
	Challenge string `json:"challenge"` // one of scene.AllChallengeNames
	Mode      string `json:"mode"`      // physical | digital (default physical)
	Runs      int    `json:"runs"`      // default 3, like the paper
	Seed      int64  `json:"seed"`
	Target    int    `json:"target,omitempty"` // class id 1..5; defaults to the patch's target
}

// maxRuns bounds the per-request work a single client can queue.
const maxRuns = 16

// normalize validates the request and decodes the patch payload. It returns
// the patch (nil for no-attack) and the resolved target class.
func (r *EvalRequest) normalize() (*attack.Patch, scene.Class, error) {
	if r.Scene == "" {
		r.Scene = "road"
	}
	if r.Scene != "road" && r.Scene != "sim" {
		return nil, 0, fmt.Errorf("unknown scene %q (want road or sim)", r.Scene)
	}
	if !validChallenge(r.Challenge) {
		return nil, 0, fmt.Errorf("unknown challenge %q (want one of %v)", r.Challenge, scene.AllChallengeNames)
	}
	if r.Mode == "" {
		r.Mode = "physical"
	}
	if r.Mode != "physical" && r.Mode != "digital" {
		return nil, 0, fmt.Errorf("unknown mode %q (want physical or digital)", r.Mode)
	}
	if r.Runs == 0 {
		r.Runs = 3
	}
	if r.Runs < 0 || r.Runs > maxRuns {
		return nil, 0, fmt.Errorf("runs %d out of range [1,%d]", r.Runs, maxRuns)
	}
	var p *attack.Patch
	if r.Patch != "" {
		raw, err := base64.StdEncoding.DecodeString(r.Patch)
		if err != nil {
			return nil, 0, fmt.Errorf("patch is not valid base64: %v", err)
		}
		p, err = attack.DecodePatch(raw)
		if err != nil {
			return nil, 0, fmt.Errorf("patch payload: %v", err)
		}
	}
	target := scene.Class(r.Target)
	if target == 0 && p != nil {
		target = p.Cfg.TargetClass
	}
	if target < scene.Person || target > scene.Bicycle {
		return nil, 0, fmt.Errorf("target class %d out of range 1..%d (required when no patch is sent)", r.Target, scene.NumClasses)
	}
	return p, target, nil
}

func validChallenge(name string) bool {
	for _, n := range scene.AllChallengeNames {
		if n == name {
			return true
		}
	}
	return false
}

// Validate reports whether the request would pass normalization, without
// decoding side effects the caller wants. The fabric gateway uses it to
// reject malformed jobs at the edge instead of spending a node round-trip.
// Note it mutates the receiver the same way normalization does (defaults
// are filled in), so a validated request hashes and routes consistently.
func (r *EvalRequest) Validate() error {
	_, _, err := r.normalize()
	return err
}

// Digest returns the patch content hash — the consistent-hashing key the
// fabric gateway routes on, so repeated evaluations of one patch land on
// the node whose result cache already holds its neighbors.
func (r *EvalRequest) Digest() string {
	sum := sha256.Sum256([]byte(r.Patch))
	return fmt.Sprintf("%x", sum[:16])
}

// cacheKey identifies an evaluation result: patch content hash plus every
// input that changes the outcome.
func (r *EvalRequest) cacheKey() string {
	sum := sha256.Sum256([]byte(r.Patch))
	return fmt.Sprintf("%x|%s|%s|%s|%d|%d|%d", sum[:8], r.Scene, r.Challenge, r.Mode, r.Runs, r.Seed, r.Target)
}

// wireFrame is one frame's verdict.
type wireFrame struct {
	Detected   bool    `json:"detected"`
	Class      int     `json:"class,omitempty"`
	ClassName  string  `json:"className,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`
}

// EvalResponse is the POST /v1/evaluate reply: the paper's PWC/CWC
// score plus each run's per-frame results.
type EvalResponse struct {
	PWC        float64       `json:"pwc"`
	CWC        bool          `json:"cwc"`
	Frames     int           `json:"frames"`
	WrongRun   int           `json:"wrongRun"`
	DetectRate float64       `json:"detectRate"`
	Runs       [][]wireFrame `json:"runs"`
	Cached     bool          `json:"cached"`
}

func toWireFrames(runs [][]metrics.FrameResult) [][]wireFrame {
	out := make([][]wireFrame, len(runs))
	for i, run := range runs {
		out[i] = make([]wireFrame, len(run))
		for j, f := range run {
			wf := wireFrame{Detected: f.Detected}
			if f.Detected {
				wf.Class = int(f.Class)
				wf.ClassName = f.Class.String()
				wf.Confidence = f.Confidence
			}
			out[i][j] = wf
		}
	}
	return out
}

// Machine-readable error codes carried by ErrorResponse.Code. The strings
// are shared with the fabric wire protocol's job-error codes where the
// concepts coincide, so a client sees one vocabulary whether it talks to a
// single-box servd or a gateway.
const (
	CodeBadRequest       = "bad_request"        // the request failed validation; retrying is pointless
	CodeQueueFull        = "queue_full"         // bounded queue at capacity; retry after Retry-After
	CodeSaturated        = "saturated"          // every routable shard is queue-full (gateway)
	CodeUnavailable      = "unavailable"        // no capacity to route to right now; retry soon
	CodeTimeout          = "timeout"            // the job's deadline expired
	CodeShuttingDown     = "shutting_down"      // the service is draining
	CodeNotFound         = "not_found"          // unknown resource (e.g. async job id)
	CodeMethodNotAllowed = "method_not_allowed" // wrong HTTP verb
	CodeInternal         = "internal"           // the job ran and failed
)

// ErrorResponse is the JSON error envelope for every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

package serve

import (
	"context"
	"errors"
	"fmt"

	"roadtrojan/internal/yolo"
)

// ErrQueueFull is returned by submit when the bounded job queue is at
// capacity; the HTTP layer maps it to 429 Too Many Requests.
var ErrQueueFull = errors.New("serve: job queue full")

// ErrShuttingDown is returned by submit once drain has begun; the HTTP
// layer maps it to 503 Service Unavailable.
var ErrShuttingDown = errors.New("serve: shutting down")

// task is one queued unit of work. run receives the worker's private
// detector replica; done is buffered so a worker never blocks on a caller
// that gave up.
type task struct {
	ctx  context.Context
	run  func(det *yolo.Model) (any, error)
	done chan taskResult
}

type taskResult struct {
	v   any
	err error
}

// submit enqueues work without blocking: a full queue is backpressure, not
// a wait. It then blocks until a worker finishes the task or the request
// context expires.
func (s *Server) submit(ctx context.Context, run func(det *yolo.Model) (any, error)) (any, error) {
	t := &task{ctx: ctx, run: run, done: make(chan taskResult, 1)}

	s.drainMu.RLock()
	if s.draining {
		s.drainMu.RUnlock()
		return nil, ErrShuttingDown
	}
	select {
	case s.jobs <- t:
		s.drainMu.RUnlock()
		s.queueDepth.Add(1)
	default:
		s.drainMu.RUnlock()
		return nil, ErrQueueFull
	}

	select {
	case r := <-t.done:
		return r.v, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// worker drains the job queue with its own detector replica until the queue
// closes at shutdown.
func (s *Server) worker(det *yolo.Model) {
	defer s.wg.Done()
	for t := range s.jobs {
		s.queueDepth.Add(-1)
		s.inflight.Add(1)
		t.done <- s.runTask(t, det)
		s.inflight.Add(-1)
	}
}

// runTask executes one task, converting an expired deadline into an error
// without running the job, and a job panic into an error instead of killing
// the worker.
func (s *Server) runTask(t *task, det *yolo.Model) (res taskResult) {
	defer func() {
		if p := recover(); p != nil {
			s.panics.Inc()
			res = taskResult{err: fmt.Errorf("serve: job panicked: %v", p)}
		}
	}()
	if err := t.ctx.Err(); err != nil {
		return taskResult{err: err}
	}
	v, err := t.run(det)
	return taskResult{v: v, err: err}
}

package serve

import (
	"context"
	"errors"
	"fmt"
	"time"

	"roadtrojan/internal/obs"
	"roadtrojan/internal/yolo"
)

// ErrQueueFull is returned by submit when the bounded job queue is at
// capacity; the HTTP layer maps it to 429 Too Many Requests and the fabric
// node to a queue_full frame.
var ErrQueueFull = errors.New("serve: job queue full")

// ErrShuttingDown is returned by submit once drain has begun; the HTTP
// layer maps it to 503 Service Unavailable.
var ErrShuttingDown = errors.New("serve: shutting down")

// task is one queued unit of work. run receives the worker's private
// detector replica; done is buffered so a worker never blocks on a caller
// that gave up. enqueued stamps when the task entered the bounded queue
// (feeding the queue_wait stage histogram, exemplared with traceID).
type task struct {
	ctx      context.Context
	run      func(det *yolo.Model) (any, error)
	done     chan taskResult
	enqueued time.Time
	traceID  string
}

type taskResult struct {
	v   any
	err error
}

// submit enqueues work without blocking: a full queue is backpressure, not
// a wait. It then blocks until a worker finishes the task or the request
// context expires.
func (e *Executor) submit(ctx context.Context, run func(det *yolo.Model) (any, error)) (any, error) {
	t := &task{ctx: ctx, run: run, done: make(chan taskResult, 1),
		enqueued: e.cfg.Clock.Now(), traceID: obs.SpanFromContext(ctx).TraceID()}

	e.drainMu.RLock()
	if e.draining {
		e.drainMu.RUnlock()
		return nil, ErrShuttingDown
	}
	select {
	case e.jobs <- t:
		e.drainMu.RUnlock()
		e.queueDepth.Add(1)
	default:
		e.drainMu.RUnlock()
		e.rejected.Inc()
		return nil, ErrQueueFull
	}

	select {
	case r := <-t.done:
		return r.v, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// worker drains the job queue with its own detector replica until the queue
// closes at shutdown.
func (e *Executor) worker(det *yolo.Model) {
	defer e.wg.Done()
	for t := range e.jobs {
		e.queueDepth.Add(-1)
		if !t.enqueued.IsZero() {
			e.observeStage(StageQueueWait, e.cfg.Clock.Now().Sub(t.enqueued), t.traceID)
		}
		e.inflight.Add(1)
		start := time.Now()
		t.done <- e.runTask(t, det)
		e.observeJobSeconds(time.Since(start))
		e.inflight.Add(-1)
	}
}

// runTask executes one task, converting an expired deadline into an error
// without running the job, and a job panic into an error instead of killing
// the worker.
func (e *Executor) runTask(t *task, det *yolo.Model) (res taskResult) {
	defer func() {
		if p := recover(); p != nil {
			e.panics.Inc()
			res = taskResult{err: fmt.Errorf("serve: job panicked: %v", p)}
		}
	}()
	if err := t.ctx.Err(); err != nil {
		return taskResult{err: err}
	}
	v, err := t.run(det)
	return taskResult{v: v, err: err}
}

package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"roadtrojan/internal/attack"
	"roadtrojan/internal/eval"
	"roadtrojan/internal/obs"
	"roadtrojan/internal/scene"
	"roadtrojan/internal/telemetry"
	"roadtrojan/internal/tensor"
	"roadtrojan/internal/yolo"
)

// ErrBadRequest wraps request validation failures so transports (HTTP 400,
// fabric bad_request frames) can distinguish caller mistakes from capacity
// and execution errors.
var ErrBadRequest = errors.New("serve: bad request")

// Executor is the transport-free evaluation core: the worker pool of
// detector replicas, the shared scenes, the LRU result cache, and the
// capacity metrics. Both the HTTP Server and the fabric node front it; it
// knows nothing about either wire.
type Executor struct {
	cfg    Config
	reg    *telemetry.Registry
	cam    scene.Camera
	scenes map[string]attack.Scene
	cache  *lruCache
	jobs   chan *task
	wg     sync.WaitGroup

	// Micro-batching coalescers, nil unless Config.BatchSize > 1.
	evalCo   *coalescer[*evalCall]
	detectCo *coalescer[*detectCall]

	drainMu  sync.RWMutex
	draining bool
	// poolClosed guards the jobs channel close: the coalescers' drain
	// flushes may still enqueue after draining is set (external intake is
	// already refused), so the channel closes only once they have exited.
	poolClosed bool

	// jobSeconds is an EWMA of observed job wall time (float64 bits),
	// feeding the Retry-After hint on queue-full rejections.
	jobSeconds atomic.Uint64

	queueDepth     *telemetry.Gauge
	inflight       *telemetry.Gauge
	cacheHits      *telemetry.Counter
	cacheMisses    *telemetry.Counter
	rejected       *telemetry.Counter
	panics         *telemetry.Counter
	batchDedup     *telemetry.Counter
	batchOccupancy *telemetry.Histogram
	flushCounters  map[string]*telemetry.Counter
	stageHist      map[string]*telemetry.Histogram
}

// roadSceneSeed fixes the shared road texture; like eval.Env, "the
// location" stays constant so results are comparable across processes.
const roadSceneSeed = 7

// NewExecutor builds the evaluation core around a trained detector, cloning
// one replica per worker and starting the pool. The caller keeps ownership
// of det; the executor never runs inference on it. A nil registry gets a
// fresh one (see Metrics).
func NewExecutor(det *yolo.Model, cfg Config, reg *telemetry.Registry) *Executor {
	cfg.fillDefaults()
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	e := &Executor{
		cfg:   cfg,
		reg:   reg,
		cam:   scene.DefaultCamera(),
		cache: newLRUCache(cfg.CacheSize, cfg.CacheBytes),
		jobs:  make(chan *task, cfg.QueueSize),

		queueDepth:  reg.Gauge("serve_queue_depth", "jobs waiting in the bounded queue", nil),
		inflight:    reg.Gauge("serve_inflight_jobs", "jobs currently executing on workers", nil),
		cacheHits:   reg.Counter("serve_cache_hits_total", "evaluate requests answered from the result cache", nil),
		cacheMisses: reg.Counter("serve_cache_misses_total", "evaluate requests that had to run", nil),
		rejected:    reg.Counter("serve_rejected_total", "requests rejected with 429 (queue full)", nil),
		panics:      reg.Counter("serve_job_panics_total", "jobs that panicked and were converted to errors", nil),
		batchDedup:  reg.Counter("serve_batch_dedup_total", "batched evaluate requests collapsed onto another request's run (duplicate cache key in one flush)", nil),
		batchOccupancy: reg.Histogram("serve_batch_occupancy", "requests per coalescer flush",
			nil, []float64{1, 2, 4, 8, 16}),
		flushCounters: map[string]*telemetry.Counter{},
	}
	for _, reason := range []string{flushSize, flushDeadline, flushDrain} {
		e.flushCounters[reason] = reg.Counter("serve_batch_flushes_total", "coalescer flushes by trigger",
			telemetry.Labels{"reason": reason})
	}
	e.initStages()
	reg.Gauge("serve_workers", "worker pool size", nil).Set(float64(cfg.Workers))
	reg.Gauge("serve_queue_capacity", "bounded job queue capacity", nil).Set(float64(cfg.QueueSize))
	reg.GaugeFunc("serve_cache_bytes", "estimated payload bytes held by the result cache", nil,
		func() float64 { return float64(e.cache.bytes()) })
	// The hit ratio is derived at scrape time from the live counters, so
	// /metrics exposes cache-affinity quality without a second bookkeeping
	// path that could drift from the counters.
	reg.GaugeFunc("serve_cache_hit_ratio", "fraction of evaluate lookups served from the result cache", nil,
		func() float64 {
			h, m := e.cacheHits.Value(), e.cacheMisses.Value()
			if h+m == 0 {
				return 0
			}
			return float64(h) / float64(h+m)
		})

	// The two locations evaluation requests can name. Built once: painting
	// the target arrow mutates the ground, but after this the scenes are
	// read-only (Deploy composites onto a clone of the texture).
	road := scene.NewRoad(rand.New(rand.NewSource(roadSceneSeed)), 8, 30, 0.05)
	sim := scene.NewSimRoom(8, 30, 0.05)
	e.scenes = map[string]attack.Scene{
		"road": attack.NewArrowScene(road, 0, 15, 1.8),
		"sim":  attack.NewArrowScene(sim, 0, 15, 1.8),
	}

	for i := 0; i < cfg.Workers; i++ {
		replica := det.Clone()
		replica.SetTraining(false)
		// Fused eval kernels with exact parity: one pass per conv block,
		// bit-identical output — replicas answer the same bytes as an
		// unfused detector would.
		replica.SetFused(true)
		e.wg.Add(1)
		go e.worker(replica)
	}
	if cfg.BatchSize > 1 {
		e.evalCo = newCoalescer(cfg.BatchSize, cfg.QueueSize, cfg.BatchDeadline, cfg.Clock, e.flushEvaluate)
		e.detectCo = newCoalescer(cfg.BatchSize, cfg.QueueSize, cfg.BatchDeadline, cfg.Clock, e.flushDetect)
	}
	return e
}

// flushCounter returns the serve_batch_flushes_total counter for a reason.
func (e *Executor) flushCounter(reason string) *telemetry.Counter {
	return e.flushCounters[reason]
}

// enqueueTask places a coalescer-dispatched task on the bounded queue
// without blocking. It gates on poolClosed rather than draining: drain
// flushes run after external intake stops but before the queue closes, so
// already-parked requests still execute during a graceful shutdown.
func (e *Executor) enqueueTask(t *task) error {
	e.drainMu.RLock()
	defer e.drainMu.RUnlock()
	if e.poolClosed {
		return ErrShuttingDown
	}
	t.enqueued = e.cfg.Clock.Now()
	select {
	case e.jobs <- t:
		e.queueDepth.Add(1)
		return nil
	default:
		e.rejected.Inc()
		return ErrQueueFull
	}
}

// Metrics exposes the registry the executor's counters live in.
func (e *Executor) Metrics() *telemetry.Registry { return e.reg }

// Workers reports the pool size.
func (e *Executor) Workers() int { return e.cfg.Workers }

// QueueDepth reports the number of queued (not yet running) jobs.
func (e *Executor) QueueDepth() int { return len(e.jobs) }

// QueueCapacity reports the bounded queue capacity.
func (e *Executor) QueueCapacity() int { return cap(e.jobs) }

// Inflight reports the number of jobs currently executing on workers.
func (e *Executor) Inflight() int { return int(e.inflight.Value()) }

// CachedResults reports the number of entries in the result cache.
func (e *Executor) CachedResults() int { return e.cache.len() }

// Draining reports whether Close has begun; new submissions are refused.
func (e *Executor) Draining() bool {
	e.drainMu.RLock()
	defer e.drainMu.RUnlock()
	return e.draining
}

// RetryAfterSeconds estimates how long a rejected caller should wait before
// the queue has drained: queued work divided by pool parallelism, scaled by
// the observed per-job wall time. Clamped to [1,60] so the hint is always
// usable in a Retry-After header.
func (e *Executor) RetryAfterSeconds() int {
	per := math.Float64frombits(e.jobSeconds.Load())
	if per <= 0 {
		per = 1
	}
	pending := float64(len(e.jobs) + 1)
	sec := int(math.Ceil(per * pending / float64(e.cfg.Workers)))
	if sec < 1 {
		sec = 1
	}
	if sec > 60 {
		sec = 60
	}
	return sec
}

// observeJobSeconds folds one job duration into the EWMA behind
// RetryAfterSeconds.
func (e *Executor) observeJobSeconds(d time.Duration) {
	const alpha = 0.3
	s := d.Seconds()
	for {
		old := e.jobSeconds.Load()
		prev := math.Float64frombits(old)
		next := s
		if prev > 0 {
			next = alpha*s + (1-alpha)*prev
		}
		if e.jobSeconds.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// Evaluate runs one scenario evaluation (or serves it from the cache),
// applying the configured per-job deadline on top of ctx. Validation
// failures are reported wrapped in ErrBadRequest; capacity exhaustion as
// ErrQueueFull; drain as ErrShuttingDown.
func (e *Executor) Evaluate(ctx context.Context, req EvalRequest) (EvalResponse, error) {
	reqSpan := obs.SpanFromContext(ctx)
	start := e.cfg.Clock.Now()
	defer func() {
		e.observeStage(StageTotal, e.cfg.Clock.Now().Sub(start), reqSpan.TraceID())
	}()
	p, target, err := req.normalize()
	if err != nil {
		return EvalResponse{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}

	// Cache short-circuit happens before any batching: a request whose
	// digest is already resolved answers immediately instead of re-entering
	// the coalescer and occupying a batch slot.
	key := req.cacheKey()
	if d, ok := e.cache.get(key); ok {
		e.cacheHits.Inc()
		resp := detailToResponse(d.(eval.Detail))
		resp.Cached = true
		return resp, nil
	}

	cond := eval.DefaultCondition()
	if req.Mode == "digital" {
		cond = eval.Digital()
	}
	cond.Runs = req.Runs
	cond.Seed = req.Seed

	job := eval.Job{
		Cam:    e.cam,
		Scene:  e.scenes[req.Scene],
		Patch:  p,
		Target: target,
		Ch:     scene.Challenges(req.Challenge)[0],
		Cond:   cond,
		// Observability riders — never part of the cache identity. Parent
		// hangs the eval span (and its per-frame forward/decode leaves) off
		// the request's causal tree; Stages feeds the stage histograms.
		Parent: reqSpan,
		Stages: e.stageHook(reqSpan.TraceID()),
	}
	if e.evalCo != nil {
		return e.evaluateBatched(ctx, key, job)
	}
	e.cacheMisses.Inc()
	ctx, cancel := context.WithTimeout(ctx, e.cfg.JobTimeout)
	defer cancel()
	v, err := e.submit(ctx, func(det *yolo.Model) (any, error) {
		j := job
		j.Det = det
		return e.cfg.Job(j)
	})
	if err != nil {
		return EvalResponse{}, err
	}
	detail := v.(eval.Detail)
	e.cache.put(key, detail, detailBytes(detail))
	return detailToResponse(detail), nil
}

// evaluateBatched parks one cache-missed evaluate request in the coalescer
// and waits for its flush group's outcome. The span brackets the full
// park-to-answer window, so traces show what coalescing costs each request.
func (e *Executor) evaluateBatched(ctx context.Context, key string, job eval.Job) (EvalResponse, error) {
	sp := e.spanUnder(obs.SpanFromContext(ctx), "evaluate_batched", obs.S("key", key))
	call := &evalCall{key: key, job: job, done: make(chan callResult, 1),
		parked: e.cfg.Clock.Now(), traceID: obs.SpanFromContext(ctx).TraceID()}
	if err := park(e, e.evalCo.in, call); err != nil {
		sp.End(obs.S("outcome", errOutcome(err)))
		return EvalResponse{}, err
	}
	select {
	case r := <-call.done:
		if r.err != nil {
			sp.End(obs.S("outcome", errOutcome(r.err)))
			return EvalResponse{}, r.err
		}
		resp := detailToResponse(r.detail)
		resp.Cached = r.cached
		sp.End(obs.S("outcome", "ok"))
		return resp, nil
	case <-ctx.Done():
		sp.End(obs.S("outcome", "ctx"))
		return EvalResponse{}, ctx.Err()
	}
}

// spanUnder opens name as a child of parent when the request carries a
// span, falling back to a top-level span on the configured trace — so the
// batching spans join the causal tree when one exists and keep their
// pre-tracing shape when not.
func (e *Executor) spanUnder(parent *obs.Span, name string, attrs ...obs.Attr) *obs.Span {
	if parent.Enabled() {
		return parent.Child(name, attrs...)
	}
	return e.cfg.Trace.Span(name, attrs...)
}

// park places a call in a coalescer buffer without blocking, under the same
// drain discipline as submit: refused once draining starts, queue-full when
// the buffer is at capacity. Holding the read lock across the send keeps the
// channel-close in Close safely ordered behind every in-flight send.
func park[T any](e *Executor, in chan T, call T) error {
	e.drainMu.RLock()
	defer e.drainMu.RUnlock()
	if e.draining {
		return ErrShuttingDown
	}
	select {
	case in <- call:
		return nil
	default:
		e.rejected.Inc()
		return ErrQueueFull
	}
}

// errOutcome maps executor errors to span outcome labels.
func errOutcome(err error) string {
	switch {
	case errors.Is(err, ErrQueueFull):
		return "queue_full"
	case errors.Is(err, ErrShuttingDown):
		return "shutting_down"
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return "ctx"
	default:
		return "error"
	}
}

// Detect runs one rendered frame through a worker's detector replica — or,
// with batching enabled, through the coalescer so concurrent same-resolution
// frames share a single batched forward.
func (e *Executor) Detect(ctx context.Context, req DetectRequest) (DetectResponse, error) {
	reqSpan := obs.SpanFromContext(ctx)
	start := e.cfg.Clock.Now()
	defer func() {
		e.observeStage(StageTotal, e.cfg.Clock.Now().Sub(start), reqSpan.TraceID())
	}()
	if err := req.validate(); err != nil {
		return DetectResponse{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if e.detectCo != nil {
		return e.detectBatched(ctx, req)
	}
	hook := e.stageHook(reqSpan.TraceID())
	ctx, cancel := context.WithTimeout(ctx, e.cfg.JobTimeout)
	defer cancel()
	v, err := e.submit(ctx, func(det *yolo.Model) (any, error) {
		img := tensor.FromSlice(req.Image, 1, 3, req.Height, req.Width)
		fsp := reqSpan.Child(StageForward)
		end := hook(StageForward)
		heads := det.Forward(img)
		end()
		fsp.End()
		dsp := reqSpan.Child(StageDecode)
		end = hook(StageDecode)
		dets := det.DecodeSample(heads, 0, yolo.DefaultDecode())
		end()
		dsp.End()
		return dets, nil
	})
	if err != nil {
		return DetectResponse{}, err
	}
	return DetectResponse{Detections: toWireDetections(v.([]yolo.Detection))}, nil
}

// detectBatched parks one detect request in the coalescer and waits for its
// group's batched forward.
func (e *Executor) detectBatched(ctx context.Context, req DetectRequest) (DetectResponse, error) {
	reqSpan := obs.SpanFromContext(ctx)
	sp := e.spanUnder(reqSpan, "detect_batched", obs.I("pixels", len(req.Image)))
	call := &detectCall{req: req, done: make(chan detectResult, 1),
		parked: e.cfg.Clock.Now(), span: reqSpan, traceID: reqSpan.TraceID()}
	if err := park(e, e.detectCo.in, call); err != nil {
		sp.End(obs.S("outcome", errOutcome(err)))
		return DetectResponse{}, err
	}
	select {
	case r := <-call.done:
		if r.err != nil {
			sp.End(obs.S("outcome", errOutcome(r.err)))
			return DetectResponse{}, r.err
		}
		sp.End(obs.S("outcome", "ok"))
		return DetectResponse{Detections: toWireDetections(r.dets)}, nil
	case <-ctx.Done():
		sp.End(obs.S("outcome", "ctx"))
		return DetectResponse{}, ctx.Err()
	}
}

// Close drains gracefully: refuse new submissions, let the coalescers flush
// whatever is parked (those requests still run), then close the queue and
// wait for the workers to empty it. Idempotent; safe to call from multiple
// owners.
func (e *Executor) Close(context.Context) error {
	e.drainMu.Lock()
	already := e.draining
	e.draining = true
	e.drainMu.Unlock()
	if !already {
		// External intake is now refused; the coalescers' drain flushes may
		// still enqueue through enqueueTask (gated on poolClosed), so the
		// jobs channel closes only after both run loops have exited.
		if e.evalCo != nil {
			e.evalCo.close()
		}
		if e.detectCo != nil {
			e.detectCo.close()
		}
		e.drainMu.Lock()
		e.poolClosed = true
		close(e.jobs)
		e.drainMu.Unlock()
	}
	e.wg.Wait()
	return nil
}

package serve

import (
	"container/list"
	"sync"
)

// lruCache is a fixed-capacity LRU map guarding evaluation results. It is
// safe for concurrent use; a zero capacity disables caching entirely.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val any
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached value and marks it most recently used.
func (c *lruCache) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// put inserts or refreshes key, evicting the least recently used entry when
// over capacity.
func (c *lruCache) put(key string, val any) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// len reports the number of cached entries.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

package serve

import (
	"container/list"
	"sync"

	"roadtrojan/internal/eval"
)

// lruCache is the evaluation result cache, bounded two ways: by entry count
// (the legacy CacheSize knob) and by estimated payload bytes, so a run of
// large batched results cannot blow memory no matter how small their count.
// It is safe for concurrent use; a non-positive entry capacity disables
// caching entirely.
type lruCache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	curBytes   int64
	ll         *list.List
	items      map[string]*list.Element
}

type lruEntry struct {
	key  string
	val  any
	size int64
}

func newLRUCache(maxEntries int, maxBytes int64) *lruCache {
	return &lruCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
	}
}

// get returns the cached value and marks it most recently used.
func (c *lruCache) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// put inserts or refreshes key with the given payload size, evicting least
// recently used entries until both the entry and byte budgets hold. A value
// whose size alone exceeds the byte budget is not cached at all — one
// oversized result must not wipe the whole cache.
func (c *lruCache) put(key string, val any, size int64) {
	if c.maxEntries <= 0 {
		return
	}
	if size < 0 {
		size = 0
	}
	if c.maxBytes > 0 && size > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*lruEntry)
		c.curBytes += size - e.size
		e.val, e.size = val, size
	} else {
		c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val, size: size})
		c.curBytes += size
	}
	for c.ll.Len() > c.maxEntries || (c.maxBytes > 0 && c.curBytes > c.maxBytes) {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		e := oldest.Value.(*lruEntry)
		delete(c.items, e.key)
		c.curBytes -= e.size
	}
}

// len reports the number of cached entries.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// bytes reports the estimated payload bytes currently held (the
// serve_cache_bytes gauge).
func (c *lruCache) bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.curBytes
}

// detailBytes estimates the in-memory payload of one cached evaluation
// result: the Detail struct plus each run's frame slice. The estimate only
// needs to be proportional and stable — the byte budget is a memory guard,
// not an accounting ledger.
func detailBytes(d eval.Detail) int64 {
	const (
		base     = 128 // Detail struct + map/list bookkeeping
		perRun   = 32  // slice header + growth slack
		perFrame = 40  // metrics.FrameResult
	)
	n := int64(base)
	for _, run := range d.Runs {
		n += perRun + perFrame*int64(len(run))
	}
	return n
}

// Package serve is the concurrent patch-evaluation service: the paper's
// render → detect → PWC/CWC loop behind an HTTP API. The execution core
// lives in Executor — a fixed-size worker pool owning one deep-cloned
// detector replica per worker (internal/nn modules cache activations during
// Forward, so a shared model is not reentrant), a bounded job queue that
// applies backpressure with 429s instead of unbounded latency, and an LRU
// cache that short-circuits repeated evaluations of the same (patch, scene,
// challenge, seed) tuple. Server is the HTTP transport over that core;
// internal/fabric's node is the framed-protocol transport over the same
// core. internal/telemetry exposes counters/gauges/latency histograms on
// GET /metrics.
//
// Endpoints:
//
//	POST /v1/detect    one rendered frame → decoded detections
//	POST /v1/evaluate  patch + scene + challenge → per-frame results, PWC, CWC
//	GET  /healthz      liveness + queue occupancy
//	GET  /metrics      Prometheus text exposition
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"roadtrojan/internal/eval"
	"roadtrojan/internal/obs"
	"roadtrojan/internal/telemetry"
	"roadtrojan/internal/yolo"
)

// Config tunes the service.
type Config struct {
	// Workers is the pool size; 0 means GOMAXPROCS.
	Workers int
	// QueueSize bounds the job queue; 0 means 2×Workers. A full queue
	// rejects with 429.
	QueueSize int
	// CacheSize is the evaluation result cache capacity in entries;
	// 0 means 128, negative disables caching.
	CacheSize int
	// CacheBytes bounds the result cache by estimated payload bytes, so a
	// few large batched results can't blow memory even when the entry count
	// is small; 0 means 64 MiB, negative means entries-only accounting.
	CacheBytes int64
	// BatchSize enables micro-batched serving when > 1: concurrent
	// evaluate/detect requests coalesce in front of the executor and flush
	// as one batch when BatchSize requests are parked or BatchDeadline has
	// elapsed since the first. 0 or 1 serves requests one at a time (the
	// pre-batching behavior).
	BatchSize int
	// BatchDeadline is the longest the first parked request waits for its
	// batch to fill; 0 means 2ms.
	BatchDeadline time.Duration
	// Clock injects time for the coalescer deadline (tests); nil means the
	// wall clock.
	Clock Clock
	// JobTimeout is the per-job context deadline; 0 means 2 minutes.
	JobTimeout time.Duration
	// Job evaluates one scenario. Nil means eval.RunJob; tests inject
	// stubs to exercise queueing without rendering.
	Job eval.JobFunc
	// Trace receives one span per HTTP request (nil = no tracing). Serving
	// spans should use a wall clock: obs.New(sink, obs.WallClock()).
	Trace *obs.Trace
	// EnablePprof mounts net/http/pprof under /debug/pprof on the service
	// mux. Off by default: the profiler exposes internals and should only
	// be reachable when explicitly requested (cmd/servd -pprof).
	EnablePprof bool
}

// DefaultConfig returns the production defaults.
func DefaultConfig() Config { return Config{} }

func (c *Config) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 2 * c.Workers
	}
	if c.CacheSize == 0 {
		c.CacheSize = 128
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.BatchDeadline <= 0 {
		c.BatchDeadline = 2 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = WallClock()
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 2 * time.Minute
	}
	if c.Job == nil {
		c.Job = eval.RunJob
	}
}

// Server is the HTTP transport over an Executor.
type Server struct {
	cfg     Config
	exec    *Executor
	reg     *telemetry.Registry
	ownExec bool
	httpSrv *http.Server
}

// New builds the service around a trained detector, cloning one replica per
// worker and starting the pool. The caller keeps ownership of det; the
// server never runs inference on it. The executor is owned: Shutdown drains
// it.
func New(det *yolo.Model, cfg Config) *Server {
	cfg.fillDefaults()
	s := NewWith(NewExecutor(det, cfg, nil), cfg)
	s.ownExec = true
	return s
}

// NewWith wraps an existing executor — the path cmd/servd uses to share one
// pool between the HTTP server and a fabric node. The caller keeps
// ownership of exec: Shutdown stops the listener but does not drain the
// pool.
func NewWith(exec *Executor, cfg Config) *Server {
	cfg.fillDefaults()
	return &Server{cfg: cfg, exec: exec, reg: exec.Metrics()}
}

// Executor exposes the execution core (for embedding a second transport).
func (s *Server) Executor() *Executor { return s.exec }

// Handler returns the service mux (for embedding or tests).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/v1/detect", s.instrument("detect", s.handleDetect))
	mux.Handle("/v1/evaluate", s.instrument("evaluate", s.handleEvaluate))
	mux.Handle("/healthz", s.instrument("healthz", s.handleHealthz))
	mux.Handle("/metrics", s.reg.Handler())
	if s.cfg.EnablePprof {
		obs.RegisterPprof(mux)
	}
	return mux
}

// Metrics exposes the registry (for tests and embedding).
func (s *Server) Metrics() *telemetry.Registry { return s.reg }

// Serve accepts connections on l until Shutdown.
func (s *Server) Serve(l net.Listener) error {
	s.httpSrv = &http.Server{Handler: s.Handler()}
	err := s.httpSrv.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// ListenAndServe binds addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	return s.Serve(l)
}

// Shutdown drains gracefully: stop accepting, let in-flight handlers finish
// (bounded by ctx), then — when the executor is owned — close the queue and
// wait for the workers to empty it. Safe to call once; submissions return
// ErrShuttingDown afterwards.
func (s *Server) Shutdown(ctx context.Context) error {
	var httpErr error
	if s.httpSrv != nil {
		httpErr = s.httpSrv.Shutdown(ctx)
	}
	if s.ownExec {
		_ = s.exec.Close(ctx)
	}
	return httpErr
}

// instrument wraps a handler with request counting, latency observation,
// and trace-context handling: an incoming X-Roadtrojan-Trace header joins
// the request span to the caller's trace (a bad header is ignored — tracing
// must never fail a request), and the span rides the request context so the
// executor can parent its stage spans.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	hist := s.reg.Histogram("serve_request_seconds", "request latency by endpoint",
		telemetry.Labels{"endpoint": endpoint}, nil)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sc, _ := obs.ParseSpanContext(r.Header.Get(obs.TraceHeader))
		sp := s.cfg.Trace.SpanInContext(sc, "request", obs.S("endpoint", endpoint), obs.S("method", r.Method))
		if sp != nil {
			r = r.WithContext(obs.ContextWithSpan(r.Context(), sp))
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		sp.End(obs.I("code", sw.code))
		hist.Observe(time.Since(start).Seconds())
		s.reg.Counter("serve_requests_total", "requests by endpoint and status code",
			telemetry.Labels{"endpoint": endpoint, "code": strconv.Itoa(sw.code)}).Inc()
	})
}

type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeExecError maps executor errors to HTTP statuses. Queue-full
// rejections carry a Retry-After hint sized from the observed job rate, so
// well-behaved clients (and the fabric gateway's backpressure path) know
// when capacity is likely back.
func (s *Server) writeExecError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrBadRequest):
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error(), Code: CodeBadRequest})
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(s.exec.RetryAfterSeconds()))
		writeJSON(w, http.StatusTooManyRequests, ErrorResponse{Error: err.Error(), Code: CodeQueueFull})
	case errors.Is(err, ErrShuttingDown):
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: err.Error(), Code: CodeShuttingDown})
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeJSON(w, http.StatusGatewayTimeout, ErrorResponse{Error: err.Error(), Code: CodeTimeout})
	default:
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error(), Code: CodeInternal})
	}
}

// handleDetect runs one frame through a worker's detector replica.
func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST required", Code: CodeMethodNotAllowed})
		return
	}
	var req DetectRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad JSON: " + err.Error(), Code: CodeBadRequest})
		return
	}
	resp, err := s.exec.Detect(r.Context(), req)
	if err != nil {
		s.writeExecError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleEvaluate runs a full scenario evaluation, serving repeats from the
// LRU cache.
func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST required", Code: CodeMethodNotAllowed})
		return
	}
	var req EvalRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad JSON: " + err.Error(), Code: CodeBadRequest})
		return
	}
	resp, err := s.exec.Evaluate(r.Context(), req)
	if err != nil {
		s.writeExecError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func detailToResponse(d eval.Detail) EvalResponse {
	return EvalResponse{
		PWC:        d.Score.PWC,
		CWC:        d.Score.CWC,
		Frames:     d.Score.Frames,
		WrongRun:   d.Score.WrongRun,
		DetectRate: d.Score.DetectRate,
		Runs:       toWireFrames(d.Runs),
	}
}

// handleHealthz is the readiness probe: liveness plus queue occupancy while
// serving, 503 with status "draining" once shutdown has begun — so load
// balancers stop routing to a node that will refuse its submissions.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status, code := "ok", http.StatusOK
	if s.exec.Draining() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":         status,
		"draining":       s.exec.Draining(),
		"workers":        s.exec.Workers(),
		"queue_depth":    s.exec.QueueDepth(),
		"queue_capacity": s.exec.QueueCapacity(),
		"cached_results": s.exec.CachedResults(),
	})
}

// Package serve is the concurrent patch-evaluation service: the paper's
// render → detect → PWC/CWC loop behind an HTTP API. A fixed-size worker
// pool owns one deep-cloned detector replica per worker (internal/nn
// modules cache activations during Forward, so a shared model is not
// reentrant), a bounded job queue applies backpressure with 429s instead of
// unbounded latency, an LRU cache short-circuits repeated evaluations of
// the same (patch, scene, challenge, seed) tuple, and internal/telemetry
// exposes counters/gauges/latency histograms on GET /metrics.
//
// Endpoints:
//
//	POST /v1/detect    one rendered frame → decoded detections
//	POST /v1/evaluate  patch + scene + challenge → per-frame results, PWC, CWC
//	GET  /healthz      liveness + queue occupancy
//	GET  /metrics      Prometheus text exposition
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"roadtrojan/internal/attack"
	"roadtrojan/internal/eval"
	"roadtrojan/internal/obs"
	"roadtrojan/internal/scene"
	"roadtrojan/internal/telemetry"
	"roadtrojan/internal/tensor"
	"roadtrojan/internal/yolo"
)

// Config tunes the service.
type Config struct {
	// Workers is the pool size; 0 means GOMAXPROCS.
	Workers int
	// QueueSize bounds the job queue; 0 means 2×Workers. A full queue
	// rejects with 429.
	QueueSize int
	// CacheSize is the evaluation result cache capacity in entries;
	// 0 means 128, negative disables caching.
	CacheSize int
	// JobTimeout is the per-job context deadline; 0 means 2 minutes.
	JobTimeout time.Duration
	// Job evaluates one scenario. Nil means eval.RunJob; tests inject
	// stubs to exercise queueing without rendering.
	Job eval.JobFunc
	// Trace receives one span per HTTP request (nil = no tracing). Serving
	// spans should use a wall clock: obs.New(sink, obs.WallClock()).
	Trace *obs.Trace
	// EnablePprof mounts net/http/pprof under /debug/pprof on the service
	// mux. Off by default: the profiler exposes internals and should only
	// be reachable when explicitly requested (cmd/servd -pprof).
	EnablePprof bool
}

// DefaultConfig returns the production defaults.
func DefaultConfig() Config { return Config{} }

func (c *Config) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 2 * c.Workers
	}
	if c.CacheSize == 0 {
		c.CacheSize = 128
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 2 * time.Minute
	}
	if c.Job == nil {
		c.Job = eval.RunJob
	}
}

// roadSceneSeed fixes the shared road texture; like eval.Env, "the
// location" stays constant so results are comparable across processes.
const roadSceneSeed = 7

// Server owns the worker pool, the scenes, the result cache, and the
// telemetry registry.
type Server struct {
	cfg    Config
	reg    *telemetry.Registry
	cam    scene.Camera
	scenes map[string]attack.Scene
	cache  *lruCache
	jobs   chan *task
	wg     sync.WaitGroup

	drainMu  sync.RWMutex
	draining bool

	httpSrv *http.Server

	queueDepth  *telemetry.Gauge
	inflight    *telemetry.Gauge
	cacheHits   *telemetry.Counter
	cacheMisses *telemetry.Counter
	rejected    *telemetry.Counter
	panics      *telemetry.Counter
}

// New builds the service around a trained detector, cloning one replica per
// worker and starting the pool. The caller keeps ownership of det; the
// server never runs inference on it.
func New(det *yolo.Model, cfg Config) *Server {
	cfg.fillDefaults()
	reg := telemetry.NewRegistry()
	s := &Server{
		cfg:   cfg,
		reg:   reg,
		cam:   scene.DefaultCamera(),
		cache: newLRUCache(cfg.CacheSize),
		jobs:  make(chan *task, cfg.QueueSize),

		queueDepth:  reg.Gauge("serve_queue_depth", "jobs waiting in the bounded queue", nil),
		inflight:    reg.Gauge("serve_inflight_jobs", "jobs currently executing on workers", nil),
		cacheHits:   reg.Counter("serve_cache_hits_total", "evaluate requests answered from the result cache", nil),
		cacheMisses: reg.Counter("serve_cache_misses_total", "evaluate requests that had to run", nil),
		rejected:    reg.Counter("serve_rejected_total", "requests rejected with 429 (queue full)", nil),
		panics:      reg.Counter("serve_job_panics_total", "jobs that panicked and were converted to errors", nil),
	}
	reg.Gauge("serve_workers", "worker pool size", nil).Set(float64(cfg.Workers))
	reg.Gauge("serve_queue_capacity", "bounded job queue capacity", nil).Set(float64(cfg.QueueSize))

	// The two locations evaluation requests can name. Built once: painting
	// the target arrow mutates the ground, but after this the scenes are
	// read-only (Deploy composites onto a clone of the texture).
	road := scene.NewRoad(rand.New(rand.NewSource(roadSceneSeed)), 8, 30, 0.05)
	sim := scene.NewSimRoom(8, 30, 0.05)
	s.scenes = map[string]attack.Scene{
		"road": attack.NewArrowScene(road, 0, 15, 1.8),
		"sim":  attack.NewArrowScene(sim, 0, 15, 1.8),
	}

	for i := 0; i < cfg.Workers; i++ {
		replica := det.Clone()
		replica.SetTraining(false)
		s.wg.Add(1)
		go s.worker(replica)
	}
	return s
}

// Handler returns the service mux (for embedding or tests).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/v1/detect", s.instrument("detect", s.handleDetect))
	mux.Handle("/v1/evaluate", s.instrument("evaluate", s.handleEvaluate))
	mux.Handle("/healthz", s.instrument("healthz", s.handleHealthz))
	mux.Handle("/metrics", s.reg.Handler())
	if s.cfg.EnablePprof {
		obs.RegisterPprof(mux)
	}
	return mux
}

// Metrics exposes the registry (for tests and embedding).
func (s *Server) Metrics() *telemetry.Registry { return s.reg }

// Serve accepts connections on l until Shutdown.
func (s *Server) Serve(l net.Listener) error {
	s.httpSrv = &http.Server{Handler: s.Handler()}
	err := s.httpSrv.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// ListenAndServe binds addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	return s.Serve(l)
}

// Shutdown drains gracefully: stop accepting, let in-flight handlers finish
// (bounded by ctx), then close the queue and wait for the workers to empty
// it. Safe to call once; submit returns ErrShuttingDown afterwards.
func (s *Server) Shutdown(ctx context.Context) error {
	var httpErr error
	if s.httpSrv != nil {
		httpErr = s.httpSrv.Shutdown(ctx)
	}
	s.drainMu.Lock()
	already := s.draining
	s.draining = true
	if !already {
		close(s.jobs)
	}
	s.drainMu.Unlock()
	s.wg.Wait()
	return httpErr
}

// instrument wraps a handler with request counting and latency observation.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	hist := s.reg.Histogram("serve_request_seconds", "request latency by endpoint",
		telemetry.Labels{"endpoint": endpoint}, nil)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sp := s.cfg.Trace.Span("request", obs.S("endpoint", endpoint), obs.S("method", r.Method))
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		sp.End(obs.I("code", sw.code))
		hist.Observe(time.Since(start).Seconds())
		s.reg.Counter("serve_requests_total", "requests by endpoint and status code",
			telemetry.Labels{"endpoint": endpoint, "code": strconv.Itoa(sw.code)}).Inc()
	})
}

type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeSubmitError maps pool errors to HTTP statuses.
func (s *Server) writeSubmitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		s.rejected.Inc()
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
	case errors.Is(err, ErrShuttingDown):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
	}
}

// handleDetect runs one frame through a worker's detector replica.
func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return
	}
	var req detectRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad JSON: " + err.Error()})
		return
	}
	if err := req.validate(); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.JobTimeout)
	defer cancel()
	v, err := s.submit(ctx, func(det *yolo.Model) (any, error) {
		img := tensor.FromSlice(req.Image, 1, 3, req.Height, req.Width)
		heads := det.Forward(img)
		return det.DecodeSample(heads, 0, yolo.DefaultDecode()), nil
	})
	if err != nil {
		s.writeSubmitError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, detectResponse{Detections: toWireDetections(v.([]yolo.Detection))})
}

// handleEvaluate runs a full scenario evaluation, serving repeats from the
// LRU cache.
func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return
	}
	var req evaluateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad JSON: " + err.Error()})
		return
	}
	p, target, err := req.normalize()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}

	key := req.cacheKey()
	if d, ok := s.cache.get(key); ok {
		s.cacheHits.Inc()
		resp := detailToResponse(d.(eval.Detail))
		resp.Cached = true
		writeJSON(w, http.StatusOK, resp)
		return
	}
	s.cacheMisses.Inc()

	cond := eval.DefaultCondition()
	if req.Mode == "digital" {
		cond = eval.Digital()
	}
	cond.Runs = req.Runs
	cond.Seed = req.Seed

	job := eval.Job{
		Cam:    s.cam,
		Scene:  s.scenes[req.Scene],
		Patch:  p,
		Target: target,
		Ch:     scene.Challenges(req.Challenge)[0],
		Cond:   cond,
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.JobTimeout)
	defer cancel()
	v, err := s.submit(ctx, func(det *yolo.Model) (any, error) {
		j := job
		j.Det = det
		return s.cfg.Job(j)
	})
	if err != nil {
		s.writeSubmitError(w, err)
		return
	}
	detail := v.(eval.Detail)
	s.cache.put(key, detail)
	writeJSON(w, http.StatusOK, detailToResponse(detail))
}

func detailToResponse(d eval.Detail) evaluateResponse {
	return evaluateResponse{
		PWC:        d.Score.PWC,
		CWC:        d.Score.CWC,
		Frames:     d.Score.Frames,
		WrongRun:   d.Score.WrongRun,
		DetectRate: d.Score.DetectRate,
		Runs:       toWireFrames(d.Runs),
	}
}

// handleHealthz reports liveness plus queue occupancy.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"workers":        s.cfg.Workers,
		"queue_depth":    len(s.jobs),
		"queue_capacity": cap(s.jobs),
		"cached_results": s.cache.len(),
	})
}

package attack

import (
	"math/rand"
	"testing"

	"roadtrojan/internal/shapes"
	"roadtrojan/internal/tensor"
)

// FuzzDecodePatch pins the wire-safety contract for the /v1/evaluate patch
// payload: arbitrary bytes must decode to a valid patch or fail with an
// error — never panic, never return a half-built patch. The serving tier
// feeds this function straight from untrusted request bodies.
func FuzzDecodePatch(f *testing.F) {
	rng := rand.New(rand.NewSource(12))
	gray := tensor.New(1, 32, 32)
	for i := range gray.Data() {
		gray.Data()[i] = rng.Float64()
	}
	cfg := DefaultConfig()
	p := &Patch{Gray: gray, Mask: shapes.Mask(cfg.Shape, 32, cfg.ShapeScale(), 0), Cfg: cfg}
	valid, err := EncodePatch(p)
	if err != nil {
		f.Fatal(err)
	}

	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated mid-tensor
	f.Add(valid[:11])           // truncated header
	corrupt := append([]byte(nil), valid...)
	corrupt[4] ^= 0xFF // version byte
	f.Add(corrupt)
	tail := append([]byte(nil), valid...)
	tail[len(tail)-3] ^= 0x55 // flip payload bits
	f.Add(tail)
	f.Add([]byte{})
	f.Add([]byte("RTWT"))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodePatch(data)
		if err != nil {
			if p != nil {
				t.Fatal("error with non-nil patch")
			}
			return
		}
		if p == nil {
			t.Fatal("nil patch with nil error")
		}
		if p.Gray == nil && p.RGB == nil {
			t.Fatal("decoded patch has no payload")
		}
		if p.Gray != nil && p.Mask == nil {
			t.Fatal("decoded gray patch without mask")
		}
		// Whatever decodes must survive a re-encode round trip.
		if _, err := EncodePatch(p); err != nil {
			t.Fatalf("re-encode of decoded patch failed: %v", err)
		}
	})
}

// Package attack is the paper's primary contribution: crafting monochrome,
// shape-constrained road decals that fool a YOLOv3-tiny-style detector into
// reporting a target class for consecutive frames while the camera moves.
// It wires the GAN generator through differentiable EOT, ground-plane
// compositing and the camera warp into the detector's targeted attack loss
// (Eq. 1/2), and also implements the colored EOT-patch baseline [34]
// (Sava et al.) the paper compares against.
package attack

import (
	"fmt"
	"math"

	"roadtrojan/internal/eot"
	"roadtrojan/internal/scene"
	"roadtrojan/internal/shapes"
)

// PrintScaleM converts the paper's patch size k (print pixels) to decal side
// length in meters: k=60 → 0.90 m square decals (large-format road decals;
// the scale is calibrated so a k=60 decal occupies a usable pixel footprint
// in the 64×64 frames of the scaled-down substrate).
const PrintScaleM = 0.015

// Config describes one attack instance (one row of the paper's tables).
type Config struct {
	// N is the number of decals placed around the target (Table III).
	N int
	// K is the print size k in pixels; the decal side is K·PrintScaleM
	// meters (Table VI).
	K int
	// Shape constrains the decal silhouette (Table V).
	Shape shapes.Shape
	// TargetClass is the class t the detector should report.
	TargetClass scene.Class
	// Alpha is α in Eq. 1, weighting the attack loss against the GAN loss.
	Alpha float64
	// Iters is the number of generator updates (the paper trains 800
	// epochs; scaled here).
	Iters int
	// WindowFrames is the per-batch frame count; the paper uses 3
	// consecutive frames.
	WindowFrames int
	// Consecutive selects consecutive-frame batches (ours) versus i.i.d.
	// frames (the "w/o 3 consecutive frames" ablation).
	Consecutive bool
	// Tricks is the EOT combination (Table IV).
	Tricks eot.Set
	// LRG/LRD are the Adam learning rates of generator and discriminator.
	LRG, LRD float64
	// Seed drives all attack-side randomness.
	Seed int64
	// RingRadiusM is the decal ring's distance from the target center; 0
	// derives it from the target size and decal size.
	RingRadiusM float64
	// Ink is the decal's single paint luminance in [0,1] — the paper's
	// monochrome constraint leaves the attacker one color to choose; road
	// paint is typically near-black (0.05) or near-white (0.92).
	Ink float64
}

// DefaultConfig is the paper's main real-world setting: N=6 (Table I uses 6;
// the ablations use 4), k=60, star shape, α=0.5, Adam 1e-4... scaled for the
// CPU substrate.
func DefaultConfig() Config {
	return Config{
		N:           4,
		K:           60,
		Shape:       shapes.Star,
		TargetClass: scene.Word,
		Alpha:       1.5, // the paper's 0.5 rebalanced for this substrate's loss scales

		Iters:        300,
		WindowFrames: 3,
		Consecutive:  true,
		Tricks:       eot.PaperBest(),
		LRG:          2e-3,
		LRD:          1e-3,
		Seed:         1,
		Ink:          0.92, // white road paint: the attacker's monochrome color
		RingRadiusM:  0.75, // decals brush the target (cf. the paper's Fig. 5)
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.N < 1 || c.N > 16 {
		return fmt.Errorf("attack: N=%d out of range [1,16]", c.N)
	}
	if c.K < 8 || c.K > 160 {
		return fmt.Errorf("attack: k=%d out of range [8,160]", c.K)
	}
	if c.Iters < 1 {
		return fmt.Errorf("attack: Iters=%d must be positive", c.Iters)
	}
	if c.WindowFrames < 1 {
		return fmt.Errorf("attack: WindowFrames=%d must be positive", c.WindowFrames)
	}
	if c.Alpha < 0 {
		return fmt.Errorf("attack: Alpha=%v must be non-negative", c.Alpha)
	}
	if c.Ink < 0 || c.Ink > 1 {
		return fmt.Errorf("attack: Ink=%v out of [0,1]", c.Ink)
	}
	return nil
}

// SizeM is the decal side length in meters.
func (c Config) SizeM() float64 { return float64(c.K) * PrintScaleM }

// ShapeScale returns the silhouette scale inside the decal tile.
func (c Config) ShapeScale() float64 { return 0.92 }

// KForEqualTotalArea returns the patch size k for n decals that keeps the
// total decal area n·k² equal to baseN·baseK² — Table III's protocol of
// "maintaining a constant total area for all APs" while varying N.
func KForEqualTotalArea(baseK, baseN, n int) int {
	return int(float64(baseK)*math.Sqrt(float64(baseN)/float64(n)) + 0.5)
}

// Placement is one decal's pose on the ground plane.
type Placement struct {
	GX, GY float64 // decal center (meters)
	Rot    float64 // rotation on the ground (radians)
	SizeM  float64 // side length (meters)
}

// Placements lays the N decals in a ring around the target (as in Fig. 6),
// each with a deterministic pseudo-random rotation — the paper notes "the N
// APs in each image may have different rotation angles".
func Placements(cfg Config, targetGX, targetGY float64) []Placement {
	r := cfg.RingRadiusM
	if r <= 0 {
		r = 0.95 + cfg.SizeM()/2
	}
	out := make([]Placement, cfg.N)
	for i := 0; i < cfg.N; i++ {
		// Bias the ring toward the camera side (decals ahead of the arrow
		// stay visible longest during the approach).
		a := -math.Pi/2 + (float64(i)+0.5)/float64(cfg.N)*2*math.Pi
		// Golden-angle rotation sequence: deterministic, non-repeating.
		rot := math.Mod(float64(i)*2.39996, 2*math.Pi)
		out[i] = Placement{
			GX:    targetGX + r*math.Cos(a),
			GY:    targetGY + r*0.8*math.Sin(a),
			Rot:   rot,
			SizeM: cfg.SizeM(),
		}
	}
	return out
}

// Scene is the attacked location: a ground texture (without decals), the
// target object painted on it, and the target's ground bounding box.
type Scene struct {
	Ground             *scene.Ground
	TargetGX, TargetGY float64
	GX0, GY0, GX1, GY1 float64 // target ground bbox
}

// NewArrowScene builds the canonical attacked scene: a road (or sim-room)
// ground with a white arrow "mark" at (gx, gy).
func NewArrowScene(g *scene.Ground, gx, gy, lenM float64) Scene {
	x0, y0, x1, y1 := g.PaintArrow(gx, gy, lenM)
	return Scene{Ground: g, TargetGX: gx, TargetGY: gy, GX0: x0, GY0: y0, GX1: x1, GY1: y1}
}

package attack

import (
	"math"
	"math/rand"
	"testing"

	"roadtrojan/internal/eot"
	"roadtrojan/internal/imaging"
	"roadtrojan/internal/nn"
	"roadtrojan/internal/scene"
	"roadtrojan/internal/tensor"
	"roadtrojan/internal/yolo"
)

// TestEndToEndAttackGradient verifies the entire differentiable chain the
// attack backpropagates through — patch → shape mask → ground compositing →
// camera homography → EOT → detector → targeted loss — against central
// finite differences on the raw patch pixels. This is the integration-level
// guarantee that the per-module gradient checks compose correctly.
func TestEndToEndAttackGradient(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end gradient check skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(42))
	det := yolo.New(rng, yolo.DefaultConfig())
	det.SetTraining(false)

	g := scene.NewSimRoom(8, 30, 0.05)
	sc := NewArrowScene(g, 0, 15, 1.8)
	cfg := DefaultConfig()
	cfg.N = 2
	pls := Placements(cfg, sc.TargetGX, sc.TargetGY)
	mask := tensor.Ones(1, 12, 12) // full-square mask keeps every pixel live
	patch := tensor.NewRandU(rng, 0.2, 0.8, 1, 12, 12)

	cam := scene.DefaultCamera()
	cam.Y = 15 - 4.5
	step := scene.TrajectoryStep{Cam: cam, BlurLen: 3}
	sampler := eot.NewSampler(eot.NewSet(3, 4)) // photometric-only: re-runnable graph
	applied := sampler.Sample(rng, cam.ImgH, cam.ImgW)
	box, ok := cam.GroundBoxToImage(sc.GX0, sc.GY0, sc.GX1, sc.GY1)
	if !ok {
		t.Fatal("target not visible")
	}
	target := yolo.AttackTarget{Box: box, Class: scene.Word}
	w := yolo.DefaultAttackLossWeights()

	forward := func() (float64, *tensor.Tensor) {
		masked, maskBwd := imaging.ApplyShapeMask(patch, mask)
		decaled, gcomp, err := applyGrayDecals(sc.Ground, sc.Ground.Tex, masked, pls, cfg.Ink)
		if err != nil {
			t.Fatal(err)
		}
		img, fg, err := renderTrainFrame(sc.Ground, decaled, step, applied)
		if err != nil {
			t.Fatal(err)
		}
		batch := img.Reshape(1, 3, cam.ImgH, cam.ImgW)
		heads := det.Forward(batch)
		loss, dHeads := det.AttackLoss(heads, []yolo.AttackTarget{target}, w)
		dBatch := det.Backward(dHeads)
		nn.ZeroGrads(det.Params())
		dTex := fg.backward(dBatch.Reshape(3, cam.ImgH, cam.ImgW))
		dPatch := maskBwd(gcomp.backward(dTex))
		return loss, dPatch
	}

	_, grad := forward()
	const eps = 1e-5
	checked := 0
	for i := 0; i < patch.Len(); i += 11 {
		orig := patch.Data()[i]
		patch.Data()[i] = orig + eps
		lp, _ := forward()
		patch.Data()[i] = orig - eps
		lm, _ := forward()
		patch.Data()[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-grad.Data()[i]) > 2e-4*math.Max(1, math.Abs(num)) {
			t.Fatalf("end-to-end grad[%d]: analytic %v numeric %v", i, grad.Data()[i], num)
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d pixels checked", checked)
	}
}

// TestEndToEndAttackReducesLoss runs a few direct gradient steps through the
// full pipeline and asserts the targeted loss on the fixed frame decreases —
// the minimal "the attack optimizes what it claims to" property.
func TestEndToEndAttackReducesLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("optimization test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(43))
	det := yolo.New(rng, yolo.DefaultConfig())
	det.SetTraining(false)

	g := scene.NewSimRoom(8, 30, 0.05)
	sc := NewArrowScene(g, 0, 15, 1.8)
	cfg := DefaultConfig()
	cfg.N = 2
	pls := Placements(cfg, sc.TargetGX, sc.TargetGY)
	mask := tensor.Ones(1, 12, 12)
	patch := tensor.NewRandU(rng, 0.3, 0.7, 1, 12, 12)

	cam := scene.DefaultCamera()
	cam.Y = 15 - 4.5
	step := scene.TrajectoryStep{Cam: cam}
	applied := eot.NewSampler(eot.Set{}).Sample(rng, cam.ImgH, cam.ImgW)
	box, _ := cam.GroundBoxToImage(sc.GX0, sc.GY0, sc.GX1, sc.GY1)
	target := yolo.AttackTarget{Box: box, Class: scene.Word}
	w := yolo.DefaultAttackLossWeights()

	lossOf := func() (float64, *tensor.Tensor) {
		masked, maskBwd := imaging.ApplyShapeMask(patch, mask)
		decaled, gcomp, err := applyGrayDecals(sc.Ground, sc.Ground.Tex, masked, pls, cfg.Ink)
		if err != nil {
			t.Fatal(err)
		}
		img, fg, err := renderTrainFrame(sc.Ground, decaled, step, applied)
		if err != nil {
			t.Fatal(err)
		}
		heads := det.Forward(img.Reshape(1, 3, cam.ImgH, cam.ImgW))
		loss, dHeads := det.AttackLoss(heads, []yolo.AttackTarget{target}, w)
		dBatch := det.Backward(dHeads)
		nn.ZeroGrads(det.Params())
		dTex := fg.backward(dBatch.Reshape(3, cam.ImgH, cam.ImgW))
		return loss, maskBwd(gcomp.backward(dTex))
	}

	first, _ := lossOf()
	best := first
	lr := 20.0
	for i := 0; i < 30; i++ {
		loss, grad := lossOf()
		if loss < best {
			best = loss
		}
		patch.Axpy(-lr, grad)
		patch.Clamp(0, 1)
		lr *= 0.93 // diminish to avoid overshooting the plateau
	}
	if last, _ := lossOf(); math.Min(last, best) >= first-0.5 {
		t.Fatalf("gradient descent did not reduce attack loss: %v -> %v (best %v)", first, last, best)
	}
}

package attack

import (
	"fmt"
	"math"
	"math/rand"

	"roadtrojan/internal/eot"
	"roadtrojan/internal/gan"
	"roadtrojan/internal/imaging"
	"roadtrojan/internal/nn"
	"roadtrojan/internal/obs"
	"roadtrojan/internal/optim"
	"roadtrojan/internal/physical"
	"roadtrojan/internal/scene"
	"roadtrojan/internal/shapes"
	"roadtrojan/internal/tensor"
	"roadtrojan/internal/yolo"
)

// Patch is a trained decal artifact. Ours is monochrome (Gray + Mask); the
// baseline's is colored (RGB, full-square sticker).
type Patch struct {
	Gray *tensor.Tensor // [1,R,R] generator output, nil for the baseline
	Mask *tensor.Tensor // [1,R,R] silhouette mask, nil for the baseline
	RGB  *tensor.Tensor // [3,R,R] colored baseline patch, nil for ours
	Cfg  Config
}

// IsColored reports whether this is a baseline-style RGB patch.
func (p *Patch) IsColored() bool { return p.RGB != nil }

// MaskedGray returns the print-ready monochrome layer: generator output
// inside the silhouette, white (transparent) outside.
func (p *Patch) MaskedGray() *tensor.Tensor {
	out, _ := imaging.ApplyShapeMask(p.Gray, p.Mask)
	return out
}

// TrainStats traces the optimization.
type TrainStats struct {
	AttackLoss []float64
	GANLossG   []float64
	GANLossD   []float64
	TargetProb []float64 // detector's target-class probability at the victim
	GradNorm   []float64 // L2 of the attack gradient reaching the patch

	lastD float64 // most recent discriminator loss (for the D-step gate)
}

// trajectoryPools groups training frames: dynamic windows (consecutive
// frames of moving approaches) and static frames (stationary shots — what
// classic single-frame patch attacks train on).
type trajectoryPools struct {
	dynamic [][]scene.TrajectoryStep
	static  []scene.TrajectoryStep
}

// buildPools renders the training trajectories for a scene. Dynamic pools
// cover the speed and angle challenges; static pools stationary cameras at
// several distances.
func buildPools(cam scene.Camera, sc Scene, rng *rand.Rand) trajectoryPools {
	var p trajectoryPools
	for _, name := range []string{"slow", "normal", "fast", "angle-15", "angle0", "angle+15"} {
		ch := scene.Challenges(name)[0]
		steps := filterVisible(scene.BuildTrajectory(cam, ch, sc.TargetGX, sc.TargetGY, rng), sc)
		if len(steps) > 0 {
			p.dynamic = append(p.dynamic, steps)
		}
	}
	for _, name := range []string{"fix", "slight"} {
		ch := scene.Challenges(name)[0]
		ch.Frames = 10
		for _, dist := range []float64{3, 4, 5, 6.5, 8} {
			ch.StartDist = dist
			steps := filterVisible(scene.BuildTrajectory(cam, ch, sc.TargetGX, sc.TargetGY, rng), sc)
			p.static = append(p.static, steps...)
		}
	}
	return p
}

// filterVisible drops steps where the target projects out of frame.
func filterVisible(steps []scene.TrajectoryStep, sc Scene) []scene.TrajectoryStep {
	var out []scene.TrajectoryStep
	for _, st := range steps {
		if _, ok := st.Cam.GroundBoxToImage(sc.GX0, sc.GY0, sc.GX1, sc.GY1); ok {
			out = append(out, st)
		}
	}
	return out
}

// sampleWindow picks the training frames for one iteration. Consecutive
// mode returns a window of WindowFrames successive steps from one moving
// trajectory (Sec. III-B); otherwise it draws i.i.d. stationary frames (the
// static-case setting of prior work and the "w/o 3 consecutive frames"
// ablation).
func (p trajectoryPools) sampleWindow(rng *rand.Rand, consecutive bool, w int) []scene.TrajectoryStep {
	if consecutive && len(p.dynamic) > 0 {
		// A stationary camera's video is also consecutive frames; mixing
		// parked windows in keeps the near-stationary views (where the AV
		// dwells longest) represented alongside the approaches.
		if rng.Float64() < 0.35 {
			st := p.static[rng.Intn(len(p.static))]
			out := make([]scene.TrajectoryStep, w)
			for i := range out {
				out[i] = st
			}
			return out
		}
		traj := p.dynamic[rng.Intn(len(p.dynamic))]
		if len(traj) <= w {
			return traj
		}
		start := rng.Intn(len(traj) - w)
		return traj[start : start+w]
	}
	out := make([]scene.TrajectoryStep, w)
	for i := range out {
		out[i] = p.static[rng.Intn(len(p.static))]
	}
	return out
}

// forwardFrames renders the decaled texture through a window with fresh EOT
// samples and runs the detector's attack loss. It returns the loss, the
// texture gradient, and the mean target probability. Each frame's EOT draw
// is journaled on sp (free when tracing is off).
func forwardFrames(det *yolo.Model, g *scene.Ground, decaled *tensor.Tensor, window []scene.TrajectoryStep,
	sampler *eot.Sampler, rng *rand.Rand, sc Scene, targetClass scene.Class,
	sp *obs.Span, it int) (float64, *tensor.Tensor, float64, error) {

	w := len(window)
	imgH, imgW := window[0].Cam.ImgH, window[0].Cam.ImgW
	batch := tensor.New(w, 3, imgH, imgW)
	graphs := make([]*frameGraph, w)
	targets := make([]yolo.AttackTarget, w)
	sz := 3 * imgH * imgW
	for i, st := range window {
		applied := sampler.Sample(rng, imgH, imgW)
		sp.EOT(obs.EOTDraw{
			It: it, Frame: i,
			Resize: applied.Params.Resize, Rotation: applied.Params.Rotation,
			Bright: applied.Params.Bright, Gamma: applied.Params.Gamma, Persp: applied.Params.Persp,
		})
		img, fg, err := renderTrainFrame(g, decaled, st, applied)
		if err != nil {
			return 0, nil, 0, err
		}
		copy(batch.Data()[i*sz:(i+1)*sz], img.Data())
		graphs[i] = fg
		box, ok := st.Cam.GroundBoxToImage(sc.GX0, sc.GY0, sc.GX1, sc.GY1)
		if ok {
			// The EOT geometry moved the scene inside the frame; the attack
			// loss must hit the cells where the target actually landed.
			cx, cy, w, h, valid := applied.MapBox(box.CX, box.CY, box.W, box.H)
			if valid {
				box = scene.Box{CX: cx, CY: cy, W: w, H: h}
			} else {
				ok = false
			}
		}
		if !ok {
			box = scene.Box{CX: -100, CY: -100, W: 1, H: 1} // contributes nothing
		}
		targets[i] = yolo.AttackTarget{Box: box, Class: targetClass}
	}

	det.SetTraining(false)
	heads := det.Forward(batch)
	loss, dHeads := det.AttackLoss(heads, targets, yolo.DefaultAttackLossWeights())
	prob := 0.0
	for i := range targets {
		prob += det.TargetClassProb(heads, targets[i], i)
	}
	prob /= float64(w)

	dBatch := det.Backward(dHeads)
	nn.ZeroGrads(det.Params()) // the detector is frozen (white-box victim)

	var dTex *tensor.Tensor
	for i := range graphs {
		dImg := tensor.FromSlice(append([]float64(nil), dBatch.Data()[i*sz:(i+1)*sz]...), 3, imgH, imgW)
		dt := graphs[i].backward(dImg)
		if dTex == nil {
			dTex = dt
		} else {
			dTex.AddInPlace(dt)
		}
	}
	tensor.AssertFiniteScalar("attack loss", loss)
	tensor.AssertFinite("texture gradient", dTex)
	return loss, dTex, prob, nil
}

// inkStats summarizes a print-ready layer for observability: mean ink
// coverage and the fraction of pixels more ink than paper. Low values paint
// ink (the composite's transparency convention), so ink = 1 - v. With a
// mask, only silhouette pixels (mask > 0.5) count; a nil mask (the colored
// baseline) averages the whole layer.
func inkStats(layer, mask *tensor.Tensor) (mean, frac float64) {
	ld := layer.Data()
	n := 0
	if mask == nil {
		for _, v := range ld {
			mean += 1 - v
			if v < 0.5 {
				frac++
			}
		}
		n = len(ld)
	} else {
		md := mask.Data()
		for i, m := range md {
			if m > 0.5 {
				mean += 1 - ld[i]
				if ld[i] < 0.5 {
					frac++
				}
				n++
			}
		}
	}
	if n == 0 {
		return 0, 0
	}
	return mean / float64(n), frac / float64(n)
}

// combinedVerify scores a candidate patch the way the paper's protocol
// does: digital verification first, then a printed spot-check; the kept
// artifact must work in both worlds.
func combinedVerify(det *yolo.Model, cam scene.Camera, sc Scene, p *Patch, rng *rand.Rand) float64 {
	dig, err := VerifyDigital(det, cam, sc, p, rng)
	if err != nil {
		return 0
	}
	phy, err := VerifyChannel(det, cam, sc, p, physical.RealWorld(), rng)
	if err != nil {
		return dig / 2
	}
	return (dig + 2*phy) / 3
}

// printExpectation maps patch values to their expected printed appearance
// (the print channel's gamut compression with unit luma gain). Optimizing
// the patch as it will look *after* printing extends EOT's
// expectation-over-transformation philosophy to the print channel; the
// attacker knows their own printer. The returned closure converts dOut to
// dPatch (the map is affine).
func printExpectation(p *tensor.Tensor) (*tensor.Tensor, func(d *tensor.Tensor) *tensor.Tensor) {
	m := physical.DefaultPrintModel()
	span := m.GamutHigh - m.GamutLow
	out := p.Map(func(v float64) float64 { return m.GamutLow + span*v })
	backward := func(d *tensor.Tensor) *tensor.Tensor {
		return d.Map(func(v float64) float64 { return span * v })
	}
	return out, backward
}

// Train runs the paper's attack: the GAN generator is optimized with Eq. 1
// (adversarial realism toward Four Shapes + α-weighted targeted detector
// attack through EOT, ground compositing and the moving camera). It returns
// the final monochrome patch. tr receives the structured run trace (nil
// disables tracing; obs.TextTrace restores the historical log lines).
func Train(det *yolo.Model, cam scene.Camera, sc Scene, cfg Config, tr *obs.Trace) (*Patch, *TrainStats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pools := buildPools(cam, sc, rng)
	if len(pools.static) == 0 {
		return nil, nil, fmt.Errorf("attack: target never visible from training cameras")
	}
	root := tr.Span("train", obs.S("method", "ours"), obs.I("iters", cfg.Iters), obs.I64("seed", cfg.Seed))

	g := gan.NewGenerator(rng)
	d := gan.NewDiscriminator(rng)
	optG := optim.NewAdam(g.Params(), cfg.LRG)
	optD := optim.NewAdam(d.Params(), cfg.LRD)
	sampler := eot.NewSampler(cfg.Tricks)

	r := gan.PatchRes
	mask := shapes.Mask(cfg.Shape, r, cfg.ShapeScale(), 0)
	zStar := gan.SampleZ(rng, 1)              // the z that will be "printed"
	stats := &TrainStats{lastD: 2 * math.Ln2} // start at the chance-level BCE

	// Random restarts: the targeted flip lives on a narrow manifold, so a
	// single Adam trajectory may never touch it. Split the budget into
	// segments with a fresh generator each; the printed artifact is the best
	// digitally-verified snapshot across segments (the paper's protocol
	// confirms digital success before deploying).
	segments := 1
	if cfg.Iters >= 120 {
		segments = 3
	}
	segLen := cfg.Iters / segments
	verifyRng := rand.New(rand.NewSource(cfg.Seed + 777))
	bestPatch := (*Patch)(nil)
	bestScore := -1.0
	snapshot := func(it int) {
		g.SetTraining(false)
		cand := &Patch{Gray: g.Forward(zStar).Reshape(1, r, r).Clone(), Mask: mask.Clone(), Cfg: cfg}
		g.SetTraining(true)
		score := combinedVerify(det, cam, sc, cand, verifyRng)
		kept := score > bestScore
		if kept {
			bestScore, bestPatch = score, cand
		}
		root.Verify(obs.VerifyStats{It: it, Score: score, Best: bestScore, Kept: kept})
	}

	curSeg := 0
	curLR := cfg.LRG
	segSpan := root.Child("segment", obs.I("seg", 0))
	defer func() {
		segSpan.End()
		root.End()
	}()

	const dBatch = 6
	for it := 0; it < cfg.Iters; it++ {
		segIt := it % segLen
		if it > 0 && segIt == 0 && it/segLen < segments {
			// New segment: fresh generator and optimizer; D persists.
			g = gan.NewGenerator(rng)
			optG = optim.NewAdam(g.Params(), cfg.LRG)
			zStar = gan.SampleZ(rng, 1)
			curSeg = it / segLen
			segSpan.End()
			segSpan = root.Child("segment", obs.I("seg", curSeg))
		}
		// Step-decay the generator LR for a stable final patch.
		switch {
		case segLen >= 10 && segIt == segLen*17/20:
			curLR = cfg.LRG * 0.1
			optG.SetLR(curLR)
		case segLen >= 10 && segIt == segLen*3/5:
			curLR = cfg.LRG * 0.3
			optG.SetLR(curLR)
		case segIt == 0:
			curLR = cfg.LRG
			optG.SetLR(curLR)
		}
		// --- discriminator step (real Four Shapes vs generated) ---------
		// Updating D only every other iteration (and not at all once it
		// confidently separates) keeps the realism term from saturating the
		// patch into a solid silhouette, which would zero the attack
		// gradient through the generator's output sigmoid.
		lossD := stats.lastD
		if it%2 == 0 && stats.lastD > 0.1 {
			real := shapes.Samples(rng, cfg.Shape, r, dBatch)
			zD := gan.SampleZ(rng, dBatch)
			fakes := g.Forward(zD) // detached: no G backward from this pass
			nn.ZeroGrads(d.Params())
			lossD = gan.TracedDiscriminatorStep(segSpan, it, d, real, fakes)
			optD.Step()
			nn.ZeroGrads(d.Params())
			stats.lastD = lossD
		}

		// --- generator step: GAN realism + α · attack --------------------
		window := pools.sampleWindow(rng, cfg.Consecutive, cfg.WindowFrames)
		patch4 := g.Forward(zStar) // [1,1,R,R]
		layer := patch4.Reshape(1, r, r)
		printed, printBwd := printExpectation(layer)
		masked, maskBwd := imaging.ApplyShapeMask(printed, mask)
		decaled, gcomp, err := applyGrayDecals(sc.Ground, sc.Ground.Tex, masked, Placements(cfg, sc.TargetGX, sc.TargetGY), cfg.Ink)
		if err != nil {
			return nil, nil, err
		}
		attackLoss, dTex, prob, err := forwardFrames(det, sc.Ground, decaled, window, sampler, rng, sc, cfg.TargetClass, segSpan, it)
		if err != nil {
			return nil, nil, err
		}
		dLayer := gcomp.backward(dTex)
		dRaw := printBwd(maskBwd(dLayer)).Scale(cfg.Alpha)

		lossG, dFake := gan.GeneratorAdversarialGrad(d, patch4)
		nn.ZeroGrads(d.Params()) // adversarial grad must not move D
		dPatch := dFake.Reshape(1, r, r).Clone().AddInPlace(dRaw)
		tensor.AssertFinite("patch gradient", dPatch)

		nn.ZeroGrads(g.Params())
		g.Backward(dPatch.Reshape(1, 1, r, r))
		optim.ClipGradNorm(g.Params(), 5)
		optG.Step()

		stats.AttackLoss = append(stats.AttackLoss, attackLoss)
		stats.GANLossD = append(stats.GANLossD, lossD)
		stats.GANLossG = append(stats.GANLossG, lossG)
		stats.TargetProb = append(stats.TargetProb, prob)
		// Snapshot selection: the attacker prints the best patch seen, per
		// the paper's confirm-digitally-first protocol.
		if cfg.Iters >= 40 && segIt >= segLen/4 && it%10 == 0 {
			snapshot(it)
		}
		if segSpan.Enabled() {
			// The ink and gradient summaries only exist for the journal;
			// compute them under the enabled check so a nil trace stays free.
			inkMean, inkFrac := inkStats(masked, mask)
			segSpan.Iter(obs.IterStats{
				Method: "ours", It: it, Seg: curSeg, Final: it == cfg.Iters-1,
				Attack: attackLoss, Alpha: cfg.Alpha, Weighted: cfg.Alpha * attackLoss,
				GanG: lossG, GanD: lossD, Total: lossG + cfg.Alpha*attackLoss,
				PTarget: prob, GradNorm: dPatch.L2(), LR: curLR,
				InkMean: inkMean, InkFrac: inkFrac, Best: bestScore,
			})
		}
	}
	snapshot(cfg.Iters - 1)
	if bestPatch != nil {
		return bestPatch, stats, nil
	}
	g.SetTraining(false)
	final := g.Forward(zStar).Reshape(1, r, r).Clone()
	return &Patch{Gray: final, Mask: mask.Clone(), Cfg: cfg}, stats, nil
}

// TrainDirect is the GAN-free ablation of our attack: the monochrome,
// shape-masked layer is optimized directly with Adam (no realism term).
// It isolates the attack pipeline from the GAN balance and shows what the
// α-weighted term alone can achieve.
func TrainDirect(det *yolo.Model, cam scene.Camera, sc Scene, cfg Config, tr *obs.Trace) (*Patch, *TrainStats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pools := buildPools(cam, sc, rng)
	if len(pools.static) == 0 {
		return nil, nil, fmt.Errorf("attack: target never visible from training cameras")
	}
	root := tr.Span("train", obs.S("method", "direct"), obs.I("iters", cfg.Iters), obs.I64("seed", cfg.Seed))
	defer root.End()
	r := gan.PatchRes
	mask := shapes.Mask(cfg.Shape, r, cfg.ShapeScale(), 0)
	param := nn.NewParam("direct.patch", tensor.NewRandU(rng, 0.05, 0.45, 1, r, r))
	const directLR = 0.05
	opt := optim.NewAdam([]*nn.Param{param}, directLR)
	sampler := eot.NewSampler(cfg.Tricks)
	stats := &TrainStats{}
	verifyRng := rand.New(rand.NewSource(cfg.Seed + 777))
	bestPatch := (*Patch)(nil)
	bestScore := -1.0
	snapshot := func(it int) {
		cand := &Patch{Gray: param.Value.Clone(), Mask: mask.Clone(), Cfg: cfg}
		score := combinedVerify(det, cam, sc, cand, verifyRng)
		kept := score > bestScore
		if kept {
			bestScore, bestPatch = score, cand
		}
		root.Verify(obs.VerifyStats{It: it, Score: score, Best: bestScore, Kept: kept})
	}

	for it := 0; it < cfg.Iters; it++ {
		window := pools.sampleWindow(rng, cfg.Consecutive, cfg.WindowFrames)
		clamp := imaging.NewClampUnit()
		layer := clamp.Forward(param.Value)
		printed, printBwd := printExpectation(layer)
		masked, maskBwd := imaging.ApplyShapeMask(printed, mask)
		decaled, gcomp, err := applyGrayDecals(sc.Ground, sc.Ground.Tex, masked, Placements(cfg, sc.TargetGX, sc.TargetGY), cfg.Ink)
		if err != nil {
			return nil, nil, err
		}
		attackLoss, dTex, prob, err := forwardFrames(det, sc.Ground, decaled, window, sampler, rng, sc, cfg.TargetClass, root, it)
		if err != nil {
			return nil, nil, err
		}
		dLayer := gcomp.backward(dTex)
		dRaw := clamp.Backward(printBwd(maskBwd(dLayer)))
		tensor.AssertFinite("direct patch gradient", dRaw)
		param.Grad.Zero()
		param.Grad.AddInPlace(dRaw)
		opt.Step()
		param.Value.Clamp(0, 1)

		stats.AttackLoss = append(stats.AttackLoss, attackLoss)
		stats.TargetProb = append(stats.TargetProb, prob)
		stats.GradNorm = append(stats.GradNorm, dRaw.L2())
		if cfg.Iters >= 40 && it >= cfg.Iters/4 && it%20 == 0 {
			snapshot(it)
		}
		if root.Enabled() {
			inkMean, inkFrac := inkStats(masked, mask)
			root.Iter(obs.IterStats{
				Method: "direct", It: it, Seg: 0, Final: it == cfg.Iters-1,
				Attack: attackLoss, Alpha: 1, Weighted: attackLoss, Total: attackLoss,
				PTarget: prob, GradNorm: dRaw.L2(), LR: directLR,
				InkMean: inkMean, InkFrac: inkFrac, Best: bestScore,
			})
		}
	}
	snapshot(cfg.Iters - 1)
	if bestPatch != nil {
		return bestPatch, stats, nil
	}
	return &Patch{Gray: param.Value.Clone(), Mask: mask.Clone(), Cfg: cfg}, stats, nil
}

// stripeInit seeds direct optimization with a horizontal-stripe pattern
// plus noise. Low values paint ink (the composite's transparency
// convention), so alternating bands reproduce the periodic paint/no-paint
// structure of road lettering — a warm start inside the target class's
// feature manifold rather than a random one far from it.
func stripeInit(rng *rand.Rand, r int) *tensor.Tensor {
	t := tensor.New(1, r, r)
	period := r / 5
	if period < 2 {
		period = 2
	}
	for y := 0; y < r; y++ {
		base := 0.85
		if (y/period)%2 == 0 {
			base = 0.12 // inked band
		}
		for x := 0; x < r; x++ {
			t.Set(base+rng.Float64()*0.1, 0, y, x)
		}
	}
	return t
}

// TrainBaseline implements [34] (Sava et al.) as the paper describes it:
// a colored patch optimized directly with Adam under a rich EOT set, on
// static frames (single-frame attack), with no GAN shape constraint.
func TrainBaseline(det *yolo.Model, cam scene.Camera, sc Scene, cfg Config, tr *obs.Trace) (*Patch, *TrainStats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pools := buildPools(cam, sc, rng)
	if len(pools.static) == 0 {
		return nil, nil, fmt.Errorf("attack: target never visible from training cameras")
	}
	root := tr.Span("train", obs.S("method", "baseline"), obs.I("iters", cfg.Iters), obs.I64("seed", cfg.Seed))
	defer root.End()
	r := gan.PatchRes
	param := nn.NewParam("baseline.patch", tensor.NewRandU(rng, 0.25, 0.75, 3, r, r))
	const baselineLR = 0.03
	opt := optim.NewAdam([]*nn.Param{param}, baselineLR)
	sampler := eot.NewSampler(eot.AllTricks()) // "they utilized many EOT techniques"
	stats := &TrainStats{}
	verifyRng := rand.New(rand.NewSource(cfg.Seed + 777))
	bestPatch := (*Patch)(nil)
	bestScore := -1.0
	snapshot := func(it int) {
		cand := &Patch{RGB: param.Value.Clone(), Cfg: cfg}
		score := combinedVerify(det, cam, sc, cand, verifyRng)
		kept := score > bestScore
		if kept {
			bestScore, bestPatch = score, cand
		}
		root.Verify(obs.VerifyStats{It: it, Score: score, Best: bestScore, Kept: kept})
	}

	for it := 0; it < cfg.Iters; it++ {
		window := pools.sampleWindow(rng, false /* static single frames */, cfg.WindowFrames)
		clamp := imaging.NewClampUnit()
		layerRaw := clamp.Forward(param.Value)
		layer, printBwd := printExpectation(layerRaw)
		decaled, rcomp, err := applyRGBDecals(sc.Ground, sc.Ground.Tex, layer, Placements(cfg, sc.TargetGX, sc.TargetGY))
		if err != nil {
			return nil, nil, err
		}
		attackLoss, dTex, prob, err := forwardFrames(det, sc.Ground, decaled, window, sampler, rng, sc, cfg.TargetClass, root, it)
		if err != nil {
			return nil, nil, err
		}
		dLayer := rcomp.backward(dTex)
		param.Grad.Zero()
		param.Grad.AddInPlace(clamp.Backward(printBwd(dLayer)))
		tensor.AssertFinite("baseline patch gradient", param.Grad)
		opt.Step()
		param.Value.Clamp(0, 1)

		stats.AttackLoss = append(stats.AttackLoss, attackLoss)
		stats.TargetProb = append(stats.TargetProb, prob)
		if cfg.Iters >= 40 && it >= cfg.Iters/4 && it%20 == 0 {
			snapshot(it)
		}
		if root.Enabled() {
			inkMean, inkFrac := inkStats(layerRaw, nil)
			root.Iter(obs.IterStats{
				Method: "baseline", It: it, Seg: 0, Final: it == cfg.Iters-1,
				Attack: attackLoss, Alpha: 1, Weighted: attackLoss, Total: attackLoss,
				PTarget: prob, GradNorm: param.Grad.L2(), LR: baselineLR,
				InkMean: inkMean, InkFrac: inkFrac, Best: bestScore,
			})
		}
	}
	snapshot(cfg.Iters - 1)
	if bestPatch != nil {
		return bestPatch, stats, nil
	}
	return &Patch{RGB: param.Value.Clone(), Cfg: cfg}, stats, nil
}

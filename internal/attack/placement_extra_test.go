package attack

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPlacementsSingleDecal(t *testing.T) {
	cfg := DefaultConfig()
	cfg.N = 1
	pls := Placements(cfg, 0, 15)
	if len(pls) != 1 {
		t.Fatalf("placements = %d", len(pls))
	}
	if math.Hypot(pls[0].GX, pls[0].GY-15) > 2.5 {
		t.Fatal("single decal too far from target")
	}
}

func TestPropPlacementsScaleWithK(t *testing.T) {
	// Larger k ⇒ larger decals and a wider default ring.
	f := func(seed int64) bool {
		k1, k2 := 20, 80
		c1, c2 := DefaultConfig(), DefaultConfig()
		c1.K, c2.K = k1, k2
		c1.RingRadiusM, c2.RingRadiusM = 0, 0 // derive from size
		p1 := Placements(c1, 0, 15)
		p2 := Placements(c2, 0, 15)
		r1 := math.Hypot(p1[0].GX, p1[0].GY-15)
		r2 := math.Hypot(p2[0].GX, p2[0].GY-15)
		return p2[0].SizeM > p1[0].SizeM && r2 > r1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3}); err != nil {
		t.Fatal(err)
	}
}

func TestRingRadiusOverride(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RingRadiusM = 2.0
	pls := Placements(cfg, 0, 15)
	for _, p := range pls {
		d := math.Hypot(p.GX, (p.GY-15)/0.8)
		if math.Abs(d-2.0) > 1e-9 {
			t.Fatalf("decal at ring distance %v, want 2.0", d)
		}
	}
}

func TestNewArrowSceneBBoxContainsCenter(t *testing.T) {
	sc := testScene()
	if !(sc.GX0 < sc.TargetGX && sc.TargetGX < sc.GX1 &&
		sc.GY0 < sc.TargetGY && sc.TargetGY < sc.GY1) {
		t.Fatalf("target center outside its bbox: %+v", sc)
	}
}

package attack

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"roadtrojan/internal/obs"
	"roadtrojan/internal/scene"
	"roadtrojan/internal/yolo"
)

// journalRun trains a tiny fixed-seed patch into an in-memory journal and
// returns the raw bytes. Everything — detector init, attack config, and the
// trace's logical clock — is rebuilt from scratch so two calls share no
// state.
func journalRun(t *testing.T, iters int) []byte {
	t.Helper()
	sc := testScene()
	det := yolo.New(rand.New(rand.NewSource(5)), yolo.DefaultConfig())
	cfg := DefaultConfig()
	cfg.Iters = iters
	cfg.N = 2

	var buf bytes.Buffer
	j := obs.NewJournal(&buf)
	tr := obs.New(j, obs.NewLogicalClock())
	if _, _, err := Train(det, scene.DefaultCamera(), sc, cfg, tr); err != nil {
		t.Fatal(err)
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTrainJournalByteStable is the determinism acceptance test: the same
// seed must produce a byte-identical journal, because the trainers draw no
// wall-clock time and the logical clock makes ticks a pure function of the
// event sequence.
func TestTrainJournalByteStable(t *testing.T) {
	if testing.Short() {
		t.Skip("journal determinism test skipped in -short mode")
	}
	a := journalRun(t, 5)
	b := journalRun(t, 5)
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different journals:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

// TestTrainJournalSchemaAndShape validates the journal against the reader:
// correct schema header, only known kinds, and the record families a
// training run must produce.
func TestTrainJournalSchemaAndShape(t *testing.T) {
	if testing.Short() {
		t.Skip("journal shape test skipped in -short mode")
	}
	raw := journalRun(t, 5)

	header, _, _ := strings.Cut(string(raw), "\n")
	wantHeader := fmt.Sprintf(`{"k":"journal","schema":%d}`, obs.SchemaVersion)
	if header != wantHeader {
		t.Fatalf("journal header = %q, want %q", header, wantHeader)
	}

	recs, err := obs.ReadJournal(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, r := range recs {
		counts[r.Kind]++
	}
	// 5 iterations in one restart segment (segments need Iters >= 120):
	// a train span wrapping one segment span, per-iteration iter and gan_d
	// records, EOT draws for every sampled frame, and at least the final
	// verification snapshot.
	if counts["span_start"] != 2 || counts["span_end"] != 2 {
		t.Fatalf("span records = %d start / %d end, want 2/2 (train + segment): %v",
			counts["span_start"], counts["span_end"], counts)
	}
	if counts["iter"] != 5 {
		t.Fatalf("iter records = %d, want 5: %v", counts["iter"], counts)
	}
	if counts["gan_d"] == 0 {
		t.Fatalf("no gan_d records (discriminator steps run on a cadence but must appear): %v", counts)
	}
	if counts["eot"] == 0 {
		t.Fatalf("no eot records: %v", counts)
	}
	if counts["verify"] == 0 {
		t.Fatalf("no verify records: %v", counts)
	}

	// Iter records carry the Eq. 1 composition: total = gan_g + α·attack.
	for _, r := range recs {
		if r.Kind != "iter" {
			continue
		}
		alpha, attack, ganG, total := r.Float("alpha"), r.Float("attack"), r.Float("gan_g"), r.Float("total")
		if diff := total - (ganG + alpha*attack); diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("iter %d: total %v != gan_g %v + %v*attack %v", r.Int("it"), total, ganG, alpha, attack)
		}
	}
}

package attack

import (
	"bytes"
	"fmt"

	"roadtrojan/internal/eot"
	"roadtrojan/internal/nn"
	"roadtrojan/internal/scene"
	"roadtrojan/internal/shapes"
	"roadtrojan/internal/tensor"
)

// patchState flattens a patch into the project weight-state map shared by
// the file format and the serving wire format.
func patchState(p *Patch) nn.State {
	s := nn.State{
		"cfg": configTensor(p.Cfg),
	}
	if p.Gray != nil {
		s["gray"] = p.Gray
		s["mask"] = p.Mask
	}
	if p.RGB != nil {
		s["rgb"] = p.RGB
	}
	return s
}

// SavePatch writes a trained patch (tensors + config) to path using the
// project weight format.
func SavePatch(path string, p *Patch) error {
	return nn.SaveStateFile(path, patchState(p))
}

// EncodePatch serializes a patch to the project weight format in memory —
// the payload /v1/evaluate carries (base64-wrapped) on the wire. The bytes
// are identical to a SavePatch file.
func EncodePatch(p *Patch) ([]byte, error) {
	var buf bytes.Buffer
	if err := nn.SaveState(&buf, patchState(p)); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodePatch parses a patch encoded by EncodePatch (or a SavePatch file
// read into memory).
func DecodePatch(data []byte) (*Patch, error) {
	s, err := nn.LoadState(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	return patchFromState(s)
}

// LoadPatch restores a patch written by SavePatch.
func LoadPatch(path string) (*Patch, error) {
	s, err := nn.LoadStateFile(path)
	if err != nil {
		return nil, err
	}
	return patchFromState(s)
}

// patchFromState rebuilds a patch from its weight-state map.
func patchFromState(s nn.State) (*Patch, error) {
	ct, ok := s["cfg"]
	if !ok {
		return nil, fmt.Errorf("attack: %w: missing config", nn.ErrBadWeights)
	}
	cfg, err := configFromTensor(ct)
	if err != nil {
		return nil, err
	}
	p := &Patch{Cfg: cfg}
	if g, ok := s["gray"]; ok {
		m, ok2 := s["mask"]
		if !ok2 {
			return nil, fmt.Errorf("attack: %w: gray patch without mask", nn.ErrBadWeights)
		}
		p.Gray, p.Mask = g, m
	}
	if rgb, ok := s["rgb"]; ok {
		p.RGB = rgb
	}
	if p.Gray == nil && p.RGB == nil {
		return nil, fmt.Errorf("attack: %w: patch has no payload", nn.ErrBadWeights)
	}
	return p, nil
}

// configTensor flattens the config into a fixed-order numeric vector.
func configTensor(c Config) *tensor.Tensor {
	tricks := 0.0
	for _, t := range c.Tricks {
		tricks += float64(int(1) << (int(t) - 1)) // bitmask
	}
	cons := 0.0
	if c.Consecutive {
		cons = 1
	}
	return tensor.FromSlice([]float64{
		float64(c.N), float64(c.K), float64(c.Shape), float64(c.TargetClass),
		c.Alpha, float64(c.Iters), float64(c.WindowFrames), cons, tricks,
		c.LRG, c.LRD, float64(c.Seed), c.RingRadiusM, c.Ink,
	}, 14)
}

func configFromTensor(t *tensor.Tensor) (Config, error) {
	if t.Len() != 14 {
		return Config{}, fmt.Errorf("attack: %w: config vector length %d", nn.ErrBadWeights, t.Len())
	}
	d := t.Data()
	var tricks eot.Set
	mask := int(d[8])
	for n := 1; n <= 5; n++ {
		if mask&(1<<(n-1)) != 0 {
			tricks = append(tricks, eot.Trick(n))
		}
	}
	cfg := Config{
		N: int(d[0]), K: int(d[1]), Shape: shapes.Shape(int(d[2])),
		TargetClass: scene.Class(int(d[3])), Alpha: d[4], Iters: int(d[5]),
		WindowFrames: int(d[6]), Consecutive: d[7] != 0, Tricks: tricks,
		LRG: d[9], LRD: d[10], Seed: int64(d[11]), RingRadiusM: d[12], Ink: d[13],
	}
	return cfg, cfg.Validate()
}

package attack

import (
	"fmt"

	"roadtrojan/internal/eot"
	"roadtrojan/internal/imaging"
	"roadtrojan/internal/scene"
	"roadtrojan/internal/tensor"
)

// patchCorners returns the pixel-corner quad of an R×R patch raster.
func patchCorners(r int) [4]imaging.Point {
	f := float64(r - 1)
	return [4]imaging.Point{{X: 0, Y: 0}, {X: f, Y: 0}, {X: f, Y: f}, {X: 0, Y: f}}
}

// decalWarp builds the warp that resamples an R×R patch raster onto the
// ground texture at the given placement (output = ground raster pixels,
// input = patch pixels). outside fills texels the decal does not cover.
func decalWarp(g *scene.Ground, pl Placement, r int, outside float64) (*imaging.Warp, error) {
	quad := g.DecalQuad(pl.GX, pl.GY, pl.SizeM, pl.Rot)
	h, err := imaging.QuadToQuad(quad, patchCorners(r))
	if err != nil {
		return nil, fmt.Errorf("attack: decal warp: %w", err)
	}
	return imaging.NewWarp(h, g.Rows(), g.Cols(), outside), nil
}

// grayComposite is the differentiable application of one monochrome patch
// to the ground at N placements. Forward produces the decaled texture;
// Backward converts the texture gradient into the patch gradient.
type grayComposite struct {
	warps []*imaging.Warp
	comps []*imaging.CompositeInk
	r     int
}

// applyGrayDecals composites the [1,R,R] gray layer (1 = transparent) onto a
// clone of base at every placement. Ink is near-black road paint.
func applyGrayDecals(g *scene.Ground, base *tensor.Tensor, layer *tensor.Tensor, pls []Placement, ink float64) (*tensor.Tensor, *grayComposite, error) {
	r := layer.Dim(1)
	gc := &grayComposite{r: r}
	tex := base
	for _, pl := range pls {
		wp, err := decalWarp(g, pl, r, 1) // outside = white = transparent
		if err != nil {
			return nil, nil, err
		}
		warped := wp.Forward(layer)
		comp := imaging.NewCompositeInk([3]float64{ink, ink, ink * 1.02})
		tex = comp.Forward(tex, warped)
		gc.warps = append(gc.warps, wp)
		gc.comps = append(gc.comps, comp)
	}
	return tex, gc, nil
}

// backward maps d(decaled texture) to d(layer), summing over placements.
func (gc *grayComposite) backward(dTex *tensor.Tensor) *tensor.Tensor {
	var dLayer *tensor.Tensor
	for i := len(gc.comps) - 1; i >= 0; i-- {
		dBg, dGray := gc.comps[i].Backward(dTex)
		dp := gc.warps[i].Backward(dGray)
		if dLayer == nil {
			dLayer = dp
		} else {
			dLayer.AddInPlace(dp)
		}
		dTex = dBg
	}
	return dLayer
}

// rgbComposite is the colored-baseline counterpart: a [3,R,R] patch pasted
// as an opaque square sticker.
type rgbComposite struct {
	warps []*imaging.Warp
	comps []*imaging.CompositeRGB
}

// applyRGBDecals composites the colored layer at every placement. The
// coverage mask is the warped footprint of the full square.
func applyRGBDecals(g *scene.Ground, base *tensor.Tensor, layer *tensor.Tensor, pls []Placement) (*tensor.Tensor, *rgbComposite, error) {
	r := layer.Dim(1)
	ones := tensor.Ones(1, r, r)
	rc := &rgbComposite{}
	tex := base
	for _, pl := range pls {
		wpL, err := decalWarp(g, pl, r, 0)
		if err != nil {
			return nil, nil, err
		}
		warped := wpL.Forward(layer)
		wpM, err := decalWarp(g, pl, r, 0)
		if err != nil {
			return nil, nil, err
		}
		mask := wpM.Forward(ones)
		comp := imaging.NewCompositeRGB()
		tex = comp.Forward(tex, warped, mask)
		rc.warps = append(rc.warps, wpL)
		rc.comps = append(rc.comps, comp)
	}
	return tex, rc, nil
}

// backward maps d(decaled texture) to d(layer).
func (rc *rgbComposite) backward(dTex *tensor.Tensor) *tensor.Tensor {
	var dLayer *tensor.Tensor
	for i := len(rc.comps) - 1; i >= 0; i-- {
		dBg, dL := rc.comps[i].Backward(dTex)
		dp := rc.warps[i].Backward(dL)
		if dLayer == nil {
			dLayer = dp
		} else {
			dLayer.AddInPlace(dp)
		}
		dTex = dBg
	}
	return dLayer
}

// frameGraph records one training frame's differentiable chain:
// camera warp → sky overwrite → motion blur → EOT → clamp (inside EOT).
type frameGraph struct {
	camWarp *imaging.Warp
	skyMask []bool
	blurLen int
	applied *eot.Applied
}

// renderTrainFrame renders a decaled ground texture through one trajectory
// step with a fresh EOT sample, returning the frame and its backward graph.
func renderTrainFrame(g *scene.Ground, decaled *tensor.Tensor, step scene.TrajectoryStep, applied *eot.Applied) (*tensor.Tensor, *frameGraph, error) {
	tmp := &scene.Ground{Tex: decaled, WidthM: g.WidthM, LengthM: g.LengthM, MPP: g.MPP}
	wp, err := step.Cam.TexWarp(tmp)
	if err != nil {
		return nil, nil, fmt.Errorf("attack: train frame: %w", err)
	}
	img := wp.Forward(decaled)
	skyMask := step.Cam.ApplySky(img)
	if step.BlurLen > 1 {
		img = imaging.BoxBlurVertical(img, step.BlurLen)
	}
	img = applied.Forward(img)
	return img, &frameGraph{camWarp: wp, skyMask: skyMask, blurLen: step.BlurLen, applied: applied}, nil
}

// backward maps d(frame) to d(decaled ground texture).
func (fg *frameGraph) backward(dImg *tensor.Tensor) *tensor.Tensor {
	d := fg.applied.Backward(dImg)
	if fg.blurLen > 1 {
		d = imaging.BoxBlurVertical(d, fg.blurLen) // self-adjoint
	}
	// Sky pixels were overwritten after the warp: their gradient must not
	// reach the texture.
	c, h, w := d.Dim(0), d.Dim(1), d.Dim(2)
	n := h * w
	for i, sky := range fg.skyMask {
		if sky {
			for ch := 0; ch < c; ch++ {
				d.Data()[ch*n+i] = 0
			}
		}
	}
	return fg.camWarp.Backward(d)
}

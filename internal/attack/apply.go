package attack

import (
	"fmt"
	"math/rand"

	"roadtrojan/internal/imaging"
	"roadtrojan/internal/physical"
	"roadtrojan/internal/scene"
	"roadtrojan/internal/tensor"
	"roadtrojan/internal/yolo"
)

// Deploy "prints and lays down" a trained patch: it resizes the patch to its
// physical print resolution k, pushes it through the print channel when the
// physical channel is enabled (monochrome patches suffer only luminance
// error; colored baseline patches take the full chroma error), and
// composites the decals onto a clone of the scene's ground texture. The
// returned ground is what evaluation videos render.
func Deploy(sc Scene, p *Patch, ch physical.Channel, rng *rand.Rand) (*scene.Ground, error) {
	pls := Placements(p.Cfg, sc.TargetGX, sc.TargetGY)
	decaledTex, err := deployTex(sc, p, ch, rng, pls)
	if err != nil {
		return nil, err
	}
	g := sc.Ground
	return &scene.Ground{Tex: decaledTex, WidthM: g.WidthM, LengthM: g.LengthM, MPP: g.MPP}, nil
}

func deployTex(sc Scene, p *Patch, ch physical.Channel, rng *rand.Rand, pls []Placement) (*tensor.Tensor, error) {
	k := p.Cfg.K
	if p.IsColored() {
		layer := imaging.ResizeBilinear(p.RGB, k, k)
		if ch.Enabled {
			job := ch.Print.NewJob(rng)
			layer = job.PrintRGB(layer)
		}
		tex, _, err := applyRGBDecals(sc.Ground, sc.Ground.Tex.Clone(), layer, pls)
		return tex, err
	}
	// Monochrome decal: print the k×k silhouette, then restore transparency
	// outside the cut shape (stickers are die-cut; nothing prints there).
	maskK := imaging.ResizeBilinear(p.Mask, k, k)
	layer := imaging.ResizeBilinear(p.MaskedGray(), k, k)
	if ch.Enabled {
		job := ch.Print.NewJob(rng)
		printed := job.PrintGray(layer)
		restored := tensor.New(1, k, k)
		for i := range restored.Data() {
			m := maskK.Data()[i]
			restored.Data()[i] = (1-m)*1 + m*printed.Data()[i]
		}
		layer = restored
	}
	tex, _, err := applyGrayDecals(sc.Ground, sc.Ground.Tex.Clone(), layer, pls, p.Cfg.Ink)
	return tex, err
}

// RenderPrint returns the patch as it would be sent to the printer at k×k —
// used for figures.
func (p *Patch) RenderPrint() *tensor.Tensor {
	k := p.Cfg.K
	if p.IsColored() {
		return imaging.ResizeBilinear(p.RGB, k, k)
	}
	return imaging.ResizeBilinear(p.MaskedGray(), k, k)
}

// VerifyDigital mirrors the paper's protocol step "firstly, we ensure that
// APs attached to the images can successfully misclassify in the digital
// world": it deploys the patch without the print channel, renders stationary
// views from several distances, and returns the fraction of views where the
// detector reports the target class.
func VerifyDigital(det *yolo.Model, cam scene.Camera, sc Scene, p *Patch, rng *rand.Rand) (float64, error) {
	return VerifyChannel(det, cam, sc, p, physical.Digital(), rng)
}

// VerifyChannel is VerifyDigital through an arbitrary channel — with the
// print-and-capture channel enabled it reproduces the paper's second
// protocol step, the physical spot-check of a printed candidate.
func VerifyChannel(det *yolo.Model, cam scene.Camera, sc Scene, p *Patch, ch physical.Channel, rng *rand.Rand) (float64, error) {
	ground, err := Deploy(sc, p, ch, rng)
	if err != nil {
		return 0, err
	}
	det.SetTraining(false)
	opts := yolo.DefaultDecode()
	hits, views := 0, 0
	for _, dist := range []float64{3, 3.5, 4, 5, 6, 7} {
		c := cam
		c.Y = sc.TargetGY - dist
		box, ok := c.GroundBoxToImage(sc.GX0, sc.GY0, sc.GX1, sc.GY1)
		if !ok {
			continue
		}
		img, err := c.Render(ground)
		if err != nil {
			return 0, err
		}
		views++
		if ch.Enabled {
			img = ch.Capture.Apply(rng, img)
		}
		heads := det.Forward(img.Reshape(1, 3, img.Dim(1), img.Dim(2)))
		dets := det.DecodeSample(heads, 0, opts)
		if d, ok := yolo.MatchTarget(dets, box, 0.2); ok && d.Class == p.Cfg.TargetClass {
			hits++
		}
	}
	if views == 0 {
		return 0, fmt.Errorf("attack: target not visible from any verification view")
	}
	return float64(hits) / float64(views), nil
}

package attack

import (
	"math"
	"math/rand"
	"testing"

	"roadtrojan/internal/eot"
	"roadtrojan/internal/physical"
	"roadtrojan/internal/scene"
	"roadtrojan/internal/shapes"
	"roadtrojan/internal/tensor"
	"roadtrojan/internal/yolo"
)

func testScene() Scene {
	g := scene.NewSimRoom(8, 30, 0.05)
	return NewArrowScene(g, 0, 15, 1.8)
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{name: "default", mutate: func(c *Config) {}, ok: true},
		{name: "zero N", mutate: func(c *Config) { c.N = 0 }, ok: false},
		{name: "huge N", mutate: func(c *Config) { c.N = 50 }, ok: false},
		{name: "tiny k", mutate: func(c *Config) { c.K = 2 }, ok: false},
		{name: "no iters", mutate: func(c *Config) { c.Iters = 0 }, ok: false},
		{name: "negative alpha", mutate: func(c *Config) { c.Alpha = -1 }, ok: false},
		{name: "zero window", mutate: func(c *Config) { c.WindowFrames = 0 }, ok: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			err := cfg.Validate()
			if (err == nil) != tt.ok {
				t.Fatalf("Validate() err = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestSizeMFollowsK(t *testing.T) {
	cfg := DefaultConfig()
	cfg.K = 60
	if math.Abs(cfg.SizeM()-60*PrintScaleM) > 1e-9 {
		t.Fatalf("k=60 size = %v m", cfg.SizeM())
	}
	cfg.K = 20
	if math.Abs(cfg.SizeM()-20*PrintScaleM) > 1e-9 {
		t.Fatalf("k=20 size = %v m", cfg.SizeM())
	}
	if cfg.SizeM() >= DefaultConfig().SizeM() {
		t.Fatal("smaller k must give smaller decals")
	}
}

func TestPlacementsRingGeometry(t *testing.T) {
	cfg := DefaultConfig()
	cfg.N = 6
	pls := Placements(cfg, 1, 15)
	if len(pls) != 6 {
		t.Fatalf("placements = %d", len(pls))
	}
	// All decals stay within ~2 m of the target and none coincide.
	for i, p := range pls {
		d := math.Hypot(p.GX-1, p.GY-15)
		if d < 0.4 || d > 2.5 {
			t.Fatalf("decal %d at distance %v", i, d)
		}
		for j := i + 1; j < len(pls); j++ {
			if math.Hypot(p.GX-pls[j].GX, p.GY-pls[j].GY) < 0.05 {
				t.Fatalf("decals %d and %d coincide", i, j)
			}
		}
		if p.SizeM != cfg.SizeM() {
			t.Fatalf("decal %d size %v", i, p.SizeM)
		}
	}
	// Rotations differ (the paper rotates each AP differently).
	if pls[0].Rot == pls[1].Rot {
		t.Fatal("rotations must differ")
	}
}

func TestKForEqualTotalArea(t *testing.T) {
	// Table III: n·k² stays (approximately) constant, referenced to N=4, k=60.
	base := 4 * 60 * 60
	for _, n := range []int{2, 4, 6, 8} {
		k := KForEqualTotalArea(60, 4, n)
		total := n * k * k
		if math.Abs(float64(total-base))/float64(base) > 0.05 {
			t.Fatalf("N=%d k=%d: total area %d deviates from %d", n, k, total, base)
		}
	}
	if KForEqualTotalArea(60, 4, 4) != 60 {
		t.Fatal("reference N must keep k")
	}
}

func TestApplyGrayDecalsDarkensGround(t *testing.T) {
	sc := testScene()
	cfg := DefaultConfig()
	layer := tensor.New(1, 32, 32) // all-zero patch = fully opaque ink
	tex, gc, err := applyGrayDecals(sc.Ground, sc.Ground.Tex, layer, Placements(cfg, sc.TargetGX, sc.TargetGY), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if tex.Mean() >= sc.Ground.Tex.Mean() {
		t.Fatal("black decals must darken the ground")
	}
	if gc == nil || len(gc.warps) != cfg.N {
		t.Fatal("composite graph incomplete")
	}
	// A white (transparent) patch changes nothing.
	white := tensor.Ones(1, 32, 32)
	tex2, _, err := applyGrayDecals(sc.Ground, sc.Ground.Tex, white, Placements(cfg, sc.TargetGX, sc.TargetGY), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(tex2, sc.Ground.Tex); d > 1e-9 {
		t.Fatalf("white patch altered ground by %v", d)
	}
}

func TestGrayCompositeGradCheck(t *testing.T) {
	sc := testScene()
	cfg := DefaultConfig()
	cfg.N = 2
	rng := rand.New(rand.NewSource(1))
	layer := tensor.NewRandU(rng, 0.2, 0.8, 1, 16, 16)
	pls := Placements(cfg, sc.TargetGX, sc.TargetGY)

	tex, gc, err := applyGrayDecals(sc.Ground, sc.Ground.Tex, layer, pls, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	probe := tensor.NewRandN(rng, 1, tex.Shape()...)
	dLayer := gc.backward(probe)

	loss := func() float64 {
		tx, _, err := applyGrayDecals(sc.Ground, sc.Ground.Tex, layer, pls, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		return tensor.Dot(tx, probe)
	}
	const eps = 1e-6
	for i := 0; i < layer.Len(); i += 29 {
		orig := layer.Data()[i]
		layer.Data()[i] = orig + eps
		lp := loss()
		layer.Data()[i] = orig - eps
		lm := loss()
		layer.Data()[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-dLayer.Data()[i]) > 1e-4 {
			t.Fatalf("gray composite grad[%d]: analytic %v numeric %v", i, dLayer.Data()[i], num)
		}
	}
}

func TestRGBCompositeGradCheck(t *testing.T) {
	sc := testScene()
	cfg := DefaultConfig()
	cfg.N = 2
	rng := rand.New(rand.NewSource(2))
	layer := tensor.NewRandU(rng, 0.2, 0.8, 3, 12, 12)
	pls := Placements(cfg, sc.TargetGX, sc.TargetGY)

	tex, rc, err := applyRGBDecals(sc.Ground, sc.Ground.Tex, layer, pls)
	if err != nil {
		t.Fatal(err)
	}
	probe := tensor.NewRandN(rng, 1, tex.Shape()...)
	dLayer := rc.backward(probe)
	loss := func() float64 {
		tx, _, err := applyRGBDecals(sc.Ground, sc.Ground.Tex, layer, pls)
		if err != nil {
			t.Fatal(err)
		}
		return tensor.Dot(tx, probe)
	}
	const eps = 1e-6
	for i := 0; i < layer.Len(); i += 43 {
		orig := layer.Data()[i]
		layer.Data()[i] = orig + eps
		lp := loss()
		layer.Data()[i] = orig - eps
		lm := loss()
		layer.Data()[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-dLayer.Data()[i]) > 1e-4 {
			t.Fatalf("rgb composite grad[%d]: analytic %v numeric %v", i, dLayer.Data()[i], num)
		}
	}
}

func TestFrameGraphGradCheck(t *testing.T) {
	sc := testScene()
	rng := rand.New(rand.NewSource(3))
	cam := scene.DefaultCamera()
	cam.Y = 10
	step := scene.TrajectoryStep{Cam: cam, BlurLen: 3}
	sampler := eot.NewSampler(eot.NewSet(3, 4)) // photometric-only: deterministic graph
	applied := sampler.Sample(rng, cam.ImgH, cam.ImgW)

	tex := sc.Ground.Tex.Clone()
	img, fg, err := renderTrainFrame(sc.Ground, tex, step, applied)
	if err != nil {
		t.Fatal(err)
	}
	probe := tensor.NewRandN(rng, 1, img.Shape()...)
	if _, _, err := renderTrainFrame(sc.Ground, tex, step, applied); err != nil {
		t.Fatal(err)
	}
	dTex := fg.backward(probe.Clone())
	if !dTex.SameShape(tex) {
		t.Fatalf("dTex shape %v", dTex.Shape())
	}

	loss := func() float64 {
		im, _, err := renderTrainFrame(sc.Ground, tex, step, applied)
		if err != nil {
			t.Fatal(err)
		}
		return tensor.Dot(im, probe)
	}
	// Probe a few texels near the target (visible region).
	tx, ty := sc.Ground.TexelOf(sc.TargetGX, sc.TargetGY)
	cols := sc.Ground.Cols()
	const eps = 1e-5
	for k := 0; k < 8; k++ {
		i := (int(ty)+k)*cols + int(tx) + k
		orig := tex.Data()[i]
		tex.Data()[i] = orig + eps
		lp := loss()
		tex.Data()[i] = orig - eps
		lm := loss()
		tex.Data()[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-dTex.Data()[i]) > 1e-4*math.Max(1, math.Abs(num)) {
			t.Fatalf("frame grad at texel %d: analytic %v numeric %v", i, dTex.Data()[i], num)
		}
	}
}

func TestBuildPoolsCoverage(t *testing.T) {
	sc := testScene()
	rng := rand.New(rand.NewSource(4))
	pools := buildPools(scene.DefaultCamera(), sc, rng)
	if len(pools.dynamic) < 4 {
		t.Fatalf("dynamic trajectories = %d", len(pools.dynamic))
	}
	if len(pools.static) < 20 {
		t.Fatalf("static frames = %d", len(pools.static))
	}
	// Consecutive windows come from one trajectory in order.
	w := pools.sampleWindow(rng, true, 3)
	if len(w) != 3 {
		t.Fatalf("window = %d", len(w))
	}
	if !(w[1].Cam.Y >= w[0].Cam.Y && w[2].Cam.Y >= w[1].Cam.Y) {
		t.Fatal("consecutive window not ordered along the approach")
	}
	// Static windows are stationary frames.
	ws := pools.sampleWindow(rng, false, 3)
	for _, st := range ws {
		if st.BlurLen > 1 {
			t.Fatal("static pool contains moving frames")
		}
	}
}

func TestTrainSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("attack training smoke test skipped in -short mode")
	}
	sc := testScene()
	rng := rand.New(rand.NewSource(5))
	det := yolo.New(rng, yolo.DefaultConfig())
	cfg := DefaultConfig()
	cfg.Iters = 3
	cfg.N = 2
	p, stats, err := Train(det, scene.DefaultCamera(), sc, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Gray == nil || p.Mask == nil || p.IsColored() {
		t.Fatal("ours must be monochrome")
	}
	if p.Gray.Dim(1) != 32 {
		t.Fatalf("patch shape %v", p.Gray.Shape())
	}
	if len(stats.AttackLoss) != 3 || len(stats.GANLossD) != 3 {
		t.Fatalf("stats lengths %d/%d", len(stats.AttackLoss), len(stats.GANLossD))
	}
	mg := p.MaskedGray()
	if mg.Min() < 0 || mg.Max() > 1 {
		t.Fatal("masked patch escapes [0,1]")
	}
	// Outside the silhouette the layer is white.
	if mg.At(0, 0, 0) != 1 {
		t.Fatalf("corner = %v, want 1 (transparent)", mg.At(0, 0, 0))
	}
}

func TestTrainBaselineSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("baseline training smoke test skipped in -short mode")
	}
	sc := testScene()
	rng := rand.New(rand.NewSource(6))
	det := yolo.New(rng, yolo.DefaultConfig())
	cfg := DefaultConfig()
	cfg.Iters = 3
	cfg.N = 2
	p, stats, err := TrainBaseline(det, scene.DefaultCamera(), sc, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsColored() || p.RGB.Dim(0) != 3 {
		t.Fatal("baseline must be colored")
	}
	if p.RGB.Min() < 0 || p.RGB.Max() > 1 {
		t.Fatal("baseline patch escapes [0,1]")
	}
	if len(stats.AttackLoss) != 3 {
		t.Fatalf("stats length %d", len(stats.AttackLoss))
	}
}

func TestTrainRejectsInvalidConfig(t *testing.T) {
	sc := testScene()
	det := yolo.New(rand.New(rand.NewSource(7)), yolo.DefaultConfig())
	cfg := DefaultConfig()
	cfg.N = 0
	if _, _, err := Train(det, scene.DefaultCamera(), sc, cfg, nil); err == nil {
		t.Fatal("expected validation error")
	}
	if _, _, err := TrainBaseline(det, scene.DefaultCamera(), sc, cfg, nil); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestDeployDigitalVsPhysical(t *testing.T) {
	sc := testScene()
	rng := rand.New(rand.NewSource(8))
	cfg := DefaultConfig()
	cfg.N = 3
	p := &Patch{
		Gray: tensor.NewRandU(rng, 0, 0.5, 1, 32, 32),
		Mask: shapes.Mask(shapes.Star, 32, 0.92, 0),
		Cfg:  cfg,
	}
	gd, err := Deploy(sc, p, physical.Digital(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(gd.Tex, sc.Ground.Tex) == 0 {
		t.Fatal("digital deploy did not change ground")
	}
	// Original ground untouched.
	before := sc.Ground.Tex.Clone()
	gp, err := Deploy(sc, p, physical.RealWorld(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(before, sc.Ground.Tex) != 0 {
		t.Fatal("Deploy mutated the scene ground")
	}
	// Physical deploy differs from digital (print error).
	if tensor.MaxAbsDiff(gd.Tex, gp.Tex) == 0 {
		t.Fatal("physical channel had no effect")
	}
}

func TestDeployColoredPatch(t *testing.T) {
	sc := testScene()
	rng := rand.New(rand.NewSource(9))
	cfg := DefaultConfig()
	cfg.N = 2
	p := &Patch{RGB: tensor.NewRandU(rng, 0, 1, 3, 32, 32), Cfg: cfg}
	g, err := Deploy(sc, p, physical.RealWorld(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(g.Tex, sc.Ground.Tex) == 0 {
		t.Fatal("colored deploy did not change ground")
	}
}

func TestRenderPrintSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, k := range []int{20, 40, 60, 80} {
		cfg := DefaultConfig()
		cfg.K = k
		p := &Patch{
			Gray: tensor.NewRandU(rng, 0, 1, 1, 32, 32),
			Mask: shapes.Mask(shapes.Star, 32, 0.9, 0),
			Cfg:  cfg,
		}
		pr := p.RenderPrint()
		if pr.Dim(1) != k || pr.Dim(2) != k {
			t.Fatalf("print size %v for k=%d", pr.Shape(), k)
		}
	}
}

func TestTrainDeterministicWithSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism test skipped in -short mode")
	}
	sc1 := testScene()
	sc2 := testScene()
	det := yolo.New(rand.New(rand.NewSource(11)), yolo.DefaultConfig())
	cfg := DefaultConfig()
	cfg.Iters = 2
	cfg.N = 2
	p1, _, err := Train(det, scene.DefaultCamera(), sc1, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := Train(det, scene.DefaultCamera(), sc2, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(p1.Gray, p2.Gray) != 0 {
		t.Fatal("same seed must reproduce the same patch")
	}
}

func TestPatchSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(12))
	cfg := DefaultConfig()
	cfg.N = 6
	cfg.K = 40
	cfg.Consecutive = false
	p := &Patch{
		Gray: tensor.NewRandU(rng, 0, 1, 1, 32, 32),
		Mask: shapes.Mask(shapes.Triangle, 32, 0.9, 0),
		Cfg:  cfg,
	}
	path := dir + "/p.rtwt"
	if err := SavePatch(path, p); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPatch(path)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(got.Gray, p.Gray) != 0 || tensor.MaxAbsDiff(got.Mask, p.Mask) != 0 {
		t.Fatal("tensors drifted")
	}
	if got.Cfg.N != 6 || got.Cfg.K != 40 || got.Cfg.Consecutive || got.Cfg.Shape != shapes.Star {
		t.Fatalf("config drifted: %+v", got.Cfg)
	}
	if got.Cfg.Tricks.String() != cfg.Tricks.String() {
		t.Fatalf("tricks drifted: %v vs %v", got.Cfg.Tricks, cfg.Tricks)
	}

	// Colored patch round trip.
	pc := &Patch{RGB: tensor.NewRandU(rng, 0, 1, 3, 32, 32), Cfg: DefaultConfig()}
	if err := SavePatch(path, pc); err != nil {
		t.Fatal(err)
	}
	gc, err := LoadPatch(path)
	if err != nil {
		t.Fatal(err)
	}
	if !gc.IsColored() || tensor.MaxAbsDiff(gc.RGB, pc.RGB) != 0 {
		t.Fatal("colored round trip failed")
	}
}

func TestLoadPatchErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadPatch(dir + "/missing.rtwt"); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestVerifyDigitalBounds(t *testing.T) {
	sc := testScene()
	rng := rand.New(rand.NewSource(13))
	det := yolo.New(rng, yolo.DefaultConfig())
	p := &Patch{
		Gray: tensor.NewRandU(rng, 0, 0.5, 1, 32, 32),
		Mask: shapes.Mask(shapes.Star, 32, 0.9, 0),
		Cfg:  DefaultConfig(),
	}
	frac, err := VerifyDigital(det, scene.DefaultCamera(), sc, p, rng)
	if err != nil {
		t.Fatal(err)
	}
	if frac < 0 || frac > 1 {
		t.Fatalf("fraction = %v", frac)
	}
}

func TestVerifyDigitalInvisibleTarget(t *testing.T) {
	g := scene.NewSimRoom(8, 30, 0.05)
	sc := NewArrowScene(g, 8, 15, 0.5) // far off to the side: out of frame
	rng := rand.New(rand.NewSource(14))
	det := yolo.New(rng, yolo.DefaultConfig())
	p := &Patch{Gray: tensor.New(1, 32, 32), Mask: shapes.Mask(shapes.Star, 32, 0.9, 0), Cfg: DefaultConfig()}
	if _, err := VerifyDigital(det, scene.DefaultCamera(), sc, p, rng); err == nil {
		t.Fatal("expected error for invisible target")
	}
}

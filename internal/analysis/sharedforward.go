package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// sharedForwardCheck flags Forward/Backward calls, inside a `go` closure, on
// a module value captured from the enclosing scope. Modules cache forward
// activations in place (see internal/nn's package comment), so a shared
// module raced from several goroutines silently corrupts results — the
// exact bug class the serve worker pool's per-worker clones exist to
// prevent. A captured variable whose initializer is itself a Clone-style
// call (det := m.Clone(); go func() { det.Forward(x) }()) is exempt: the
// goroutine owns a private replica.
func sharedForwardCheck() Check {
	return Check{
		Name: "sharedforward",
		Doc:  "no Forward/Backward on a module captured by a go closure without an intervening Clone",
		Run:  runSharedForward,
	}
}

func runSharedForward(cfg *Config, p *Pkg) []Finding {
	clonedInit := cloneInitialized(p)
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || (sel.Sel.Name != "Forward" && sel.Sel.Name != "Backward") {
					return true
				}
				base := baseIdent(sel.X)
				if base == nil {
					return true
				}
				obj, ok := p.Info.Uses[base].(*types.Var)
				if !ok || obj.Pos() == 0 {
					return true
				}
				if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
					return true // declared inside the closure: goroutine-private
				}
				tv, ok := p.Info.Types[sel.X]
				if !ok || !hasForwardBackward(tv.Type) {
					return true
				}
				if id, ok := sel.X.(*ast.Ident); ok && id == base && clonedInit[obj] {
					return true // receiver is a clone made for this goroutine
				}
				out = append(out, finding(p, sel.Sel.Pos(), "sharedforward",
					"%s called on %q captured by a go closure; modules are not reentrant — give the goroutine its own replica (nn.Cloner / MustCloneModule) first",
					sel.Sel.Name, base.Name))
				return true
			})
			return true
		})
	}
	return out
}

// baseIdent walks a selector chain (s.det.head -> s) down to its root
// identifier, or nil for non-identifier receivers.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// cloneInitialized maps variables whose initializer is a call with "Clone"
// in the callee name (Clone, CloneModule, MustCloneModule, ...): such a
// variable holds a private replica, so handing it to one goroutine is safe.
func cloneInitialized(p *Pkg) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	mark := func(id *ast.Ident, rhs ast.Expr) {
		v, ok := p.Info.Defs[id].(*types.Var)
		if !ok {
			return
		}
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			return
		}
		var name string
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		if strings.Contains(name, "Clone") {
			out[v] = true
		}
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) == len(st.Rhs) {
					for i, lhs := range st.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							mark(id, st.Rhs[i])
						}
					}
				}
			case *ast.ValueSpec:
				if len(st.Names) == len(st.Values) {
					for i, id := range st.Names {
						mark(id, st.Values[i])
					}
				}
			}
			return true
		})
	}
	return out
}

package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// sharedForwardCheck flags two kinds of cross-goroutine sharing of
// non-reentrant state inside a `go` closure:
//
//   - Forward/Backward on a module value captured from the enclosing scope.
//     Modules cache forward activations in place (see internal/nn's package
//     comment), so a shared module raced from several goroutines silently
//     corrupts results — the exact bug class the serve worker pool's
//     per-worker clones exist to prevent. A captured variable whose
//     initializer is itself a Clone-style call (det := m.Clone();
//     go func() { det.Forward(x) }()) is exempt: the goroutine owns a
//     private replica.
//
//   - Buf/BufZero on a scratch value (structurally: a type with both Buf
//     and BufZero methods) captured from the enclosing scope. Arena scratch
//     is per-worker by contract — each goroutine must index its own slot of
//     an Acquire-style result (ss := ar.Acquire(n); go func(slot) {
//     ss[slot].Buf(...) }). Captured variables rooted in an Acquire-style
//     initializer are therefore exempt; a pre-picked slot captured by every
//     goroutine (sc := ss[0]; go func() { sc.Buf(...) }) is not.
func sharedForwardCheck() Check {
	return Check{
		Name: "sharedforward",
		Doc:  "no Forward/Backward on a captured module, and no Buf/BufZero on a captured scratch, inside a go closure",
		Run:  runSharedForward,
	}
}

func runSharedForward(cfg *Config, p *Pkg) []Finding {
	clonedInit := initializedByCall(p, "Clone")
	acquireInit := initializedByCall(p, "Acquire")
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				isModule := sel.Sel.Name == "Forward" || sel.Sel.Name == "Backward"
				isScratch := sel.Sel.Name == "Buf" || sel.Sel.Name == "BufZero"
				if !isModule && !isScratch {
					return true
				}
				base := baseIdent(sel.X)
				if base == nil {
					return true
				}
				obj, ok := p.Info.Uses[base].(*types.Var)
				if !ok || obj.Pos() == 0 {
					return true
				}
				if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
					return true // declared inside the closure: goroutine-private
				}
				tv, ok := p.Info.Types[sel.X]
				if !ok {
					return true
				}
				if isModule && hasForwardBackward(tv.Type) {
					if id, ok := sel.X.(*ast.Ident); ok && id == base && clonedInit[obj] {
						return true // receiver is a clone made for this goroutine
					}
					out = append(out, finding(p, sel.Sel.Pos(), "sharedforward",
						"%s called on %q captured by a go closure; modules are not reentrant — give the goroutine its own replica (nn.Cloner / MustCloneModule) first",
						sel.Sel.Name, base.Name))
					return true
				}
				if isScratch && hasBufBufZero(tv.Type) {
					if acquireInit[obj] {
						// Rooted in an Acquire-style result: ss[slot].Buf(...)
						// with a per-goroutine slot is the blessed pattern.
						return true
					}
					out = append(out, finding(p, sel.Sel.Pos(), "sharedforward",
						"%s called on scratch %q captured by a go closure; arena scratch is per-worker — acquire one slot per goroutine (Arena.Acquire + ss[slot]) instead of sharing one Scratch",
						sel.Sel.Name, base.Name))
				}
				return true
			})
			return true
		})
	}
	return out
}

// hasBufBufZero reports whether t (or *t) is a concrete named type whose
// method set contains both Buf and BufZero — the structural signature of a
// per-worker arena scratch.
func hasBufBufZero(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || types.IsInterface(named) {
		return false
	}
	ms := types.NewMethodSet(types.NewPointer(named))
	var buf, bufZero bool
	for i := 0; i < ms.Len(); i++ {
		switch ms.At(i).Obj().Name() {
		case "Buf":
			buf = true
		case "BufZero":
			bufZero = true
		}
	}
	return buf && bufZero
}

// baseIdent walks a selector chain (s.det.head -> s) down to its root
// identifier, or nil for non-identifier receivers.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// initializedByCall maps variables whose initializer is a call with substr
// in the callee name. With "Clone" (Clone, CloneModule, MustCloneModule, ...)
// such a variable holds a private module replica; with "Acquire"
// (Arena.Acquire, AcquireScratch, ...) it holds a per-worker scratch set.
func initializedByCall(p *Pkg, substr string) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	mark := func(id *ast.Ident, rhs ast.Expr) {
		v, ok := p.Info.Defs[id].(*types.Var)
		if !ok {
			return
		}
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			return
		}
		var name string
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		if strings.Contains(name, substr) {
			out[v] = true
		}
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) == len(st.Rhs) {
					for i, lhs := range st.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							mark(id, st.Rhs[i])
						}
					}
				}
			case *ast.ValueSpec:
				if len(st.Names) == len(st.Values) {
					for i, id := range st.Names {
						mark(id, st.Values[i])
					}
				}
			}
			return true
		})
	}
	return out
}

// Package analysis is a from-scratch static-analyzer driver (stdlib
// go/parser + go/ast + go/types only, no x/tools) that enforces the
// repository's hand-maintained correctness invariants: deterministic seeded
// randomness, non-reentrant forward caches, epsilon-based float comparison,
// prefixed invariant panics, and gradient-check coverage for every layer.
//
// The driver loads every package in the module (see Loader), runs each
// registered Check, honours per-line //rtlint:ignore suppressions, and can
// subtract a committed baseline of grandfathered findings so that only new
// violations fail the build. cmd/rtlint is the command-line front end.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"time"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Pos   token.Position
	Check string
	Msg   string
}

// String renders the finding in file:line:col: check: message form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Msg)
}

// Pkg is one type-checked package, including its in-package _test.go files
// (checks that only apply to library code skip test files by position).
type Pkg struct {
	Path  string // import path ("roadtrojan/internal/tensor")
	Name  string // package name ("tensor")
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// IsTestFile reports whether pos lies in a _test.go file.
func (p *Pkg) IsTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// Config parameterizes the checks. DefaultConfig returns the repository
// policy; the corpus self-tests swap in widened scopes.
type Config struct {
	// DeterministicPkgs names (by package name) the packages whose results
	// must be bit-reproducible from a seed: all randomness has to flow
	// through an explicit *rand.Rand and wall-clock reads are banned.
	DeterministicPkgs map[string]bool
	// RandAllowlist names packages exempt from globalrand even if listed
	// as deterministic (serve, telemetry, obs, and fabric own wall-clock
	// concerns; obs confines time.Now behind its Clock interface and
	// fabric behind fabric.Clock, so importers stay deterministic).
	RandAllowlist map[string]bool
	// FloatEqApproved names functions whose bodies may compare floats with
	// == / != (the designated epsilon helpers themselves).
	FloatEqApproved map[string]bool
	// PanicScope limits panicpolicy to the packages it returns true for.
	PanicScope func(p *Pkg) bool
	// GradCheckNameRE matches the test/helper function names that count as
	// gradient checks for gradcoverage.
	GradCheckNameRE *regexp.Regexp
	// FlowScope limits the CFG-based checks (goroutinelife, lockheld,
	// ctxflow) to the packages it returns true for — library code under
	// internal/ by default; cmd front ends run until process exit.
	FlowScope func(p *Pkg) bool
	// IOLockRE matches the names of dedicated I/O mutexes (writeMu and
	// friends). Network reads/writes under such a lock — and only such a
	// lock — are exempt from lockheld: serializing writes on a shared conn
	// is the mutex's entire job.
	IOLockRE *regexp.Regexp
}

// DefaultConfig returns the policy enforced on this repository, for the
// module rooted at the given import path.
func DefaultConfig(module string) *Config {
	return &Config{
		DeterministicPkgs: map[string]bool{
			"tensor": true, "nn": true, "yolo": true, "gan": true,
			"eot": true, "attack": true, "eval": true, "scene": true,
			"metrics": true, "shapes": true, "optim": true, "imaging": true,
			"physical": true, "defense": true, "core": true,
		},
		RandAllowlist:   map[string]bool{"serve": true, "telemetry": true, "obs": true, "fabric": true, "chaos": true},
		FloatEqApproved: map[string]bool{},
		PanicScope: func(p *Pkg) bool {
			return strings.HasPrefix(p.Path, module+"/internal/")
		},
		GradCheckNameRE: regexp.MustCompile(`(?i)grad(ient)?_?check`),
		FlowScope: func(p *Pkg) bool {
			return strings.HasPrefix(p.Path, module+"/internal/")
		},
		IOLockRE: regexp.MustCompile(`(?i)^(write|send|read|recv|out|in|io|conn)(mu|mutex|lock)$`),
	}
}

// Check is one named rule.
type Check struct {
	Name string
	Doc  string
	Run  func(cfg *Config, p *Pkg) []Finding
}

// AllChecks returns every registered check in stable order.
func AllChecks() []Check {
	return []Check{
		sharedForwardCheck(),
		globalRandCheck(),
		floatEqCheck(),
		panicPolicyCheck(),
		gradCoverageCheck(),
		goroutineLifeCheck(),
		lockHeldCheck(),
		ctxFlowCheck(),
	}
}

// CheckTiming is the wall-clock cost of one check summed over every
// package it ran on, as reported by RunTimed.
type CheckTiming struct {
	Name     string
	Elapsed  time.Duration
	Findings int // pre-suppression finding count
}

// Run executes the checks over the packages, applies //rtlint:ignore
// suppressions, and returns the surviving findings sorted by position.
func Run(cfg *Config, pkgs []*Pkg, checks []Check) []Finding {
	findings, _ := RunTimed(cfg, pkgs, checks)
	return findings
}

// RunTimed is Run plus a per-check timing breakdown (in the order the
// checks were given), for `rtlint -timing` and the make lint report.
func RunTimed(cfg *Config, pkgs []*Pkg, checks []Check) ([]Finding, []CheckTiming) {
	timings := make([]CheckTiming, len(checks))
	for i, c := range checks {
		timings[i].Name = c.Name
	}
	var out []Finding
	for _, p := range pkgs {
		sup, bad := suppressions(p)
		out = append(out, bad...)
		for i, c := range checks {
			start := time.Now()
			fs := c.Run(cfg, p)
			timings[i].Elapsed += time.Since(start)
			timings[i].Findings += len(fs)
			for _, f := range fs {
				if !sup.covers(f) {
					out = append(out, f)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return out, timings
}

// suppression directives: a comment of the form
//
//	//rtlint:ignore <check> <reason>
//
// suppresses findings of <check> on the same line and on the following
// line (so the directive can trail the offending statement or sit on its
// own line above it). A directive missing the check name or the reason is
// itself reported.
type suppressionSet map[string]map[int]map[string]bool // file -> line -> check

func (s suppressionSet) covers(f Finding) bool {
	lines := s[f.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, ln := range [2]int{f.Pos.Line, f.Pos.Line - 1} {
		if lines[ln][f.Check] || lines[ln]["*"] {
			return true
		}
	}
	return false
}

const ignorePrefix = "//rtlint:ignore"

func suppressions(p *Pkg) (suppressionSet, []Finding) {
	set := suppressionSet{}
	var bad []Finding
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(c.Text, ignorePrefix))
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Pos:   pos,
						Check: "ignore",
						Msg:   `malformed suppression: want "//rtlint:ignore <check> <reason>"`,
					})
					continue
				}
				lines := set[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					set[pos.Filename] = lines
				}
				if lines[pos.Line] == nil {
					lines[pos.Line] = map[string]bool{}
				}
				lines[pos.Line][fields[0]] = true
			}
		}
	}
	return set, bad
}

// Baseline is a multiset of grandfathered findings, keyed without line
// numbers so unrelated edits don't invalidate it.
type Baseline map[string]int

// BaselineKey renders the position-independent identity of a finding:
// "relpath: check: message".
func BaselineKey(f Finding, root string) string {
	rel, err := filepath.Rel(root, f.Pos.Filename)
	if err != nil {
		rel = f.Pos.Filename
	}
	return fmt.Sprintf("%s: %s: %s", filepath.ToSlash(rel), f.Check, f.Msg)
}

// LoadBaseline reads a baseline file; a missing file is an empty baseline.
func LoadBaseline(path string) (Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return Baseline{}, nil
	}
	if err != nil {
		return nil, err
	}
	b := Baseline{}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		b[normalizeBaselineKey(line)]++
	}
	return b, nil
}

// normalizeBaselineKey canonicalizes the path component of a baseline line
// so baselines written on Windows (backslash separators) match keys built
// with forward slashes.
func normalizeBaselineKey(line string) string {
	i := strings.Index(line, ": ")
	if i < 0 {
		return line
	}
	return strings.ReplaceAll(line[:i], `\`, "/") + line[i:]
}

// Stale returns the baseline entries (with multiplicities) that no current
// finding matches — fixed violations whose grandfather lines should be
// deleted. Keys are returned sorted.
func (b Baseline) Stale(findings []Finding, root string) []string {
	remaining := Baseline{}
	for k, n := range b {
		remaining[k] = n
	}
	for _, f := range findings {
		k := BaselineKey(f, root)
		if remaining[k] > 0 {
			remaining[k]--
		}
	}
	var out []string
	for k, n := range remaining {
		for i := 0; i < n; i++ {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Filter removes findings present in the baseline (consuming multiset
// entries) and returns the rest.
func (b Baseline) Filter(findings []Finding, root string) []Finding {
	budget := Baseline{}
	for k, n := range b {
		budget[k] = n
	}
	var out []Finding
	for _, f := range findings {
		k := BaselineKey(f, root)
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		out = append(out, f)
	}
	return out
}

// WriteBaseline persists the findings as a sorted baseline file.
func WriteBaseline(path string, findings []Finding, root string) error {
	keys := make([]string, 0, len(findings))
	for _, f := range findings {
		keys = append(keys, BaselineKey(f, root))
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("# rtlint baseline: grandfathered findings. Entries here do not fail\n")
	b.WriteString("# the build; remove lines as the violations are fixed.\n")
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// hasForwardBackward reports whether t (or *t) is a concrete named type
// whose method set contains both Forward and Backward — the repo's
// structural signature for "stateful differentiable module with a
// non-reentrant forward cache".
func hasForwardBackward(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || types.IsInterface(named) {
		return false
	}
	ms := types.NewMethodSet(types.NewPointer(named))
	var fwd, bwd bool
	for i := 0; i < ms.Len(); i++ {
		switch ms.At(i).Obj().Name() {
		case "Forward":
			fwd = true
		case "Backward":
			bwd = true
		}
	}
	return fwd && bwd
}

func finding(p *Pkg, pos token.Pos, check, format string, args ...any) Finding {
	return Finding{Pos: p.Fset.Position(pos), Check: check, Msg: fmt.Sprintf(format, args...)}
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Loader type-checks every package of a module using only the standard
// library: module-internal imports resolve by directory layout, everything
// else goes through the source importer. Two passes are made per package —
// a plain pass (no test files) that populates the import graph, and an
// analysis pass that re-checks the package together with its in-package
// _test.go files.
//
// LoadAll fans the work across a worker pool in three phases: parallel
// parsing (the FileSet is safe for concurrent use), a serial import warm-up
// that populates the plain-package cache bottom-up (the stdlib source
// importer is not safe for concurrent use, and first-loads are where cycle
// detection must be exact), then parallel with-tests type-checking, whose
// import lookups are all warm cache hits. Results land in
// directory-sorted slots, so finding order stays deterministic.
type Loader struct {
	Fset   *token.FileSet
	root   string // absolute module root (directory containing go.mod)
	module string // module path from go.mod

	stdMu sync.Mutex // srcimporter guard: it mutates internal caches
	std   types.Importer

	cacheMu sync.Mutex
	cache   map[string]*loadResult // plain packages by import path

	parseMu sync.Mutex
	parsed  map[string]*parsedDir // parse results by directory
}

type loadResult struct {
	pkg  *types.Package
	err  error
	done bool // false while the first load is still in flight (cycle marker)
}

// NewLoader builds a loader for the module rooted at root.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: reading go.mod: %w", err)
	}
	module := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			module = strings.TrimSpace(rest)
			break
		}
	}
	if module == "" {
		return nil, fmt.Errorf("analysis: no module line in %s/go.mod", abs)
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:   fset,
		root:   abs,
		module: module,
		std:    importer.ForCompiler(fset, "source", nil),
		cache:  map[string]*loadResult{},
		parsed: map[string]*parsedDir{},
	}, nil
}

// Root returns the absolute module root directory.
func (l *Loader) Root() string { return l.root }

// Module returns the module import path.
func (l *Loader) Module() string { return l.module }

// Import resolves an import path for the type checker: module-internal
// paths load (and cache) the package from its source directory without test
// files; all other paths defer to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir, ok := l.dirFor(path); ok {
		l.cacheMu.Lock()
		r, cached := l.cache[path]
		if !cached {
			r = &loadResult{}
			l.cache[path] = r // pre-register: an import cycle fails below instead of recursing
			l.cacheMu.Unlock()
			pkg, err := l.typeCheck(dir, path, false, nil)
			l.cacheMu.Lock()
			r.pkg, r.err, r.done = pkg, err, true
		}
		l.cacheMu.Unlock()
		if r.err != nil {
			return nil, r.err
		}
		if !r.done || r.pkg == nil {
			return nil, fmt.Errorf("analysis: import cycle through %q", path)
		}
		return r.pkg, nil
	}
	l.stdMu.Lock()
	defer l.stdMu.Unlock()
	return l.std.Import(path)
}

func (l *Loader) dirFor(path string) (string, bool) {
	if path == l.module {
		return l.root, true
	}
	if rest, ok := strings.CutPrefix(path, l.module+"/"); ok {
		return filepath.Join(l.root, filepath.FromSlash(rest)), true
	}
	return "", false
}

// LoadAll walks the module tree and returns an analysis Pkg (test files
// included) for every Go package found.
func (l *Loader) LoadAll() ([]*Pkg, error) {
	var dirs []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor" || name == "out") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	paths := make([]string, len(dirs))
	for i, dir := range dirs {
		rel, err := filepath.Rel(l.root, dir)
		if err != nil {
			return nil, err
		}
		paths[i] = l.module
		if rel != "." {
			paths[i] = l.module + "/" + filepath.ToSlash(rel)
		}
	}
	workers := loadWorkers()
	// Phase 1: parse every directory concurrently. parseDir caches by
	// directory, so the type-checking phases below are pure cache hits.
	runPool(workers, len(dirs), func(i int) {
		_, _, _ = l.parseDir(dirs[i])
	})
	// Phase 2: serial import warm-up. Loading each package's plain pass in
	// sorted order pulls every module-internal and stdlib dependency into
	// the caches exactly once, on one goroutine. Errors are not collected
	// here — the per-package pass below reports them with full context.
	for _, path := range paths {
		_, _ = l.Import(path)
	}
	// Phase 3: with-tests analysis passes in parallel. Slot results by
	// index so package (and finding) order is independent of scheduling.
	pkgSlots := make([]*Pkg, len(dirs))
	errSlots := make([]string, len(dirs))
	runPool(workers, len(dirs), func(i int) {
		p, err := l.LoadDir(dirs[i], paths[i])
		if err != nil {
			errSlots[i] = err.Error()
			return
		}
		pkgSlots[i] = p
	})
	var pkgs []*Pkg
	var errs []string
	for i := range dirs {
		if errSlots[i] != "" {
			errs = append(errs, errSlots[i])
			continue
		}
		if pkgSlots[i] != nil {
			pkgs = append(pkgs, pkgSlots[i])
		}
	}
	if len(errs) > 0 {
		return pkgs, fmt.Errorf("analysis: %d package(s) failed to load:\n%s", len(errs), strings.Join(errs, "\n"))
	}
	return pkgs, nil
}

// loadWorkers sizes the pool: enough to keep cores busy, capped so the
// srcimporter mutex does not just become a convoy.
func loadWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

// runPool runs fn(0..n-1) across the given number of workers.
func runPool(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// LoadDir type-checks the package in dir together with its in-package test
// files and returns it ready for analysis. External test packages
// (package foo_test) are skipped — the repo has none, and they cannot share
// a type-checking pass with the package under test.
func (l *Loader) LoadDir(dir, path string) (*Pkg, error) {
	plain, test, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(plain) == 0 && len(test) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	base := ""
	if len(plain) > 0 {
		base = plain[0].Name.Name
	} else {
		base = strings.TrimSuffix(test[0].Name.Name, "_test")
	}
	files := append([]*ast.File{}, plain...)
	for _, f := range test {
		if f.Name.Name == base {
			files = append(files, f)
		}
	}
	info := newInfo()
	tpkg, err := l.typeCheck(dir, path, true, info)
	if err != nil {
		return nil, err
	}
	return &Pkg{
		Path:  path,
		Name:  tpkg.Name(),
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// typeCheck parses and checks the package in dir. withTests selects whether
// in-package _test.go files participate; info, when non-nil, receives the
// type-checking facts. Parsed files are cached per (dir, test-ness) via the
// shared FileSet, so the plain and analysis passes re-parse at most once.
func (l *Loader) typeCheck(dir, path string, withTests bool, info *types.Info) (*types.Package, error) {
	plain, test, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	files := append([]*ast.File{}, plain...)
	if withTests {
		base := ""
		if len(plain) > 0 {
			base = plain[0].Name.Name
		}
		for _, f := range test {
			if base == "" || f.Name.Name == base {
				files = append(files, f)
			}
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files for %q in %s", path, dir)
	}
	var errs []string
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if len(errs) < 20 {
				errs = append(errs, err.Error())
			}
		},
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if len(errs) > 0 {
		return nil, fmt.Errorf("analysis: type errors in %s:\n  %s", path, strings.Join(errs, "\n  "))
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: checking %s: %w", path, err)
	}
	return tpkg, nil
}

// parsedDir caches parse results so the plain and with-tests passes share
// ASTs (identity matters: Pkg.Files positions must match Info facts).
type parsedDir struct {
	plain, test []*ast.File
}

func (l *Loader) parseDir(dir string) (plain, test []*ast.File, err error) {
	l.parseMu.Lock()
	if pd, ok := l.parsed[dir]; ok {
		l.parseMu.Unlock()
		return pd.plain, pd.test, nil
	}
	l.parseMu.Unlock()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	pd := &parsedDir{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		if strings.HasSuffix(name, "_test.go") {
			pd.test = append(pd.test, f)
		} else {
			pd.plain = append(pd.plain, f)
		}
	}
	// Double-checked insert: if another worker parsed this directory while
	// we did, its ASTs win — file identity must be stable across the plain
	// and with-tests passes (Info facts are keyed by node pointer).
	l.parseMu.Lock()
	defer l.parseMu.Unlock()
	if prior, ok := l.parsed[dir]; ok {
		return prior.plain, prior.test, nil
	}
	l.parsed[dir] = pd
	return pd.plain, pd.test, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") &&
			!strings.HasPrefix(e.Name(), ".") && !strings.HasPrefix(e.Name(), "_") {
			return true
		}
	}
	return false
}

package analysis

import (
	"go/ast"
)

// This file builds intraprocedural control-flow graphs over function
// bodies. The graph is deliberately simple — basic blocks of ast.Nodes
// with successor edges — but models the constructs the flow checks care
// about: branches, loops (with labeled break/continue), switch/select
// fan-out, goto, defer, and terminating calls (panic/os.Exit). Statements
// with nested bodies are never stored whole: a loop contributes its header
// expression, a select contributes itself as a marker node (its comm
// clauses become branch blocks), so walking Block.Nodes never re-visits a
// nested body that lives in another block.

// Block is one straight-line run of statements/expressions.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// CFG is the control-flow graph of one function body. Entry starts the
// body; Exit is the single synthetic return target (returns, panics, and
// falling off the end all edge into it).
type CFG struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block
	// Defers lists deferred calls in lexical order. They run at every
	// function exit; flow passes that care (lockheld's defer-unlock
	// accounting) consult this list instead of modeling the run-at-exit
	// semantics edge by edge.
	Defers []*ast.CallExpr
	// SelectComms marks the comm statements of select clauses. A receive
	// or send that appears here blocks only as part of its select (whose
	// own SelectStmt marker node carries the blocking classification), so
	// effect walkers must not classify it a second time.
	SelectComms map[ast.Node]bool
}

// Loop is one natural loop: the back-edge head plus every block on a path
// back to it.
type Loop struct {
	Head   *Block
	Blocks map[*Block]bool
}

// IsTerminatingCall reports whether a call never returns, ending the
// current path (panic, os.Exit, runtime.Goexit, log.Fatal*). The builder
// takes it as a parameter so checks with richer type facts can extend it.
type IsTerminatingCall func(*ast.CallExpr) bool

type cfgBuilder struct {
	cfg        *CFG
	cur        *Block
	terminates IsTerminatingCall
	// frames is the enclosing breakable/continuable construct stack.
	frames []cfgFrame
	labels map[string]*Block   // label -> first block of the labeled stmt
	gotos  map[string][]*Block // unresolved goto sources by label
}

type cfgFrame struct {
	label     string
	breakTo   *Block
	contTo    *Block // nil for switch/select frames
	canBreak  bool
	canCont   bool
	isLoopish bool // for/range: unlabeled continue targets the innermost of these
}

// BuildCFG constructs the CFG of body. terminates may be nil (only the
// panic builtin by name then ends a path).
func BuildCFG(body *ast.BlockStmt, terminates IsTerminatingCall) *CFG {
	if terminates == nil {
		terminates = func(c *ast.CallExpr) bool {
			id, ok := c.Fun.(*ast.Ident)
			return ok && id.Name == "panic"
		}
	}
	b := &cfgBuilder{
		cfg:        &CFG{SelectComms: map[ast.Node]bool{}},
		terminates: terminates,
		labels:     map[string]*Block{},
		gotos:      map[string][]*Block{},
	}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	b.edge(b.cur, b.cfg.Exit) // fall off the end
	// Unresolved gotos (label declared in a scope we never reached, or a
	// malformed program) conservatively end their path.
	for _, srcs := range b.gotos {
		for _, src := range srcs {
			b.edge(src, b.cfg.Exit)
		}
	}
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// seal ends the current path: subsequent statements go to a fresh,
// unreachable block (dead code after return/break/...).
func (b *cfgBuilder) seal() {
	b.cur = b.newBlock()
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt appends one statement to the graph. label is the pending label when
// the statement was wrapped in a LabeledStmt.
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch st := s.(type) {
	case *ast.LabeledStmt:
		// Register the label target as a fresh block so gotos can land on it.
		target := b.newBlock()
		b.edge(b.cur, target)
		b.cur = target
		b.labels[st.Label.Name] = target
		for _, src := range b.gotos[st.Label.Name] {
			b.edge(src, target)
		}
		delete(b.gotos, st.Label.Name)
		b.stmt(st.Stmt, st.Label.Name)

	case *ast.BlockStmt:
		b.stmtList(st.List)

	case *ast.IfStmt:
		if st.Init != nil {
			b.stmt(st.Init, "")
		}
		b.cur.Nodes = append(b.cur.Nodes, st.Cond)
		cond := b.cur
		join := b.newBlock()
		thenB := b.newBlock()
		b.edge(cond, thenB)
		b.cur = thenB
		b.stmtList(st.Body.List)
		b.edge(b.cur, join)
		if st.Else != nil {
			elseB := b.newBlock()
			b.edge(cond, elseB)
			b.cur = elseB
			b.stmt(st.Else, "")
			b.edge(b.cur, join)
		} else {
			b.edge(cond, join)
		}
		b.cur = join

	case *ast.ForStmt:
		if st.Init != nil {
			b.stmt(st.Init, "")
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		body := b.newBlock()
		after := b.newBlock()
		post := head
		if st.Post != nil {
			post = b.newBlock()
		}
		if st.Cond != nil {
			head.Nodes = append(head.Nodes, st.Cond)
			b.edge(head, after) // condition false
		}
		b.edge(head, body)
		b.frames = append(b.frames, cfgFrame{label: label, breakTo: after, contTo: post, canBreak: true, canCont: true, isLoopish: true})
		b.cur = body
		b.stmtList(st.Body.List)
		b.frames = b.frames[:len(b.frames)-1]
		if st.Post != nil {
			b.edge(b.cur, post)
			post.Nodes = append(post.Nodes, st.Post)
			b.edge(post, head)
		} else {
			b.edge(b.cur, head)
		}
		b.cur = after

	case *ast.RangeStmt:
		head := b.newBlock()
		// The RangeStmt itself is the header marker: classification reads
		// st.X's type (channel vs. collection) and the key/value defs.
		head.Nodes = append(head.Nodes, st)
		b.edge(b.cur, head)
		body := b.newBlock()
		after := b.newBlock()
		b.edge(head, body)
		b.edge(head, after) // exhausted / channel closed
		b.frames = append(b.frames, cfgFrame{label: label, breakTo: after, contTo: head, canBreak: true, canCont: true, isLoopish: true})
		b.cur = body
		b.stmtList(st.Body.List)
		b.frames = b.frames[:len(b.frames)-1]
		b.edge(b.cur, head)
		b.cur = after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var bodyList []ast.Stmt
		switch sw := st.(type) {
		case *ast.SwitchStmt:
			if sw.Init != nil {
				b.stmt(sw.Init, "")
			}
			if sw.Tag != nil {
				b.cur.Nodes = append(b.cur.Nodes, sw.Tag)
			}
			bodyList = sw.Body.List
		case *ast.TypeSwitchStmt:
			if sw.Init != nil {
				b.stmt(sw.Init, "")
			}
			b.cur.Nodes = append(b.cur.Nodes, sw.Assign)
			bodyList = sw.Body.List
		}
		head := b.cur
		join := b.newBlock()
		b.frames = append(b.frames, cfgFrame{label: label, breakTo: join, canBreak: true})
		var prevBody *Block // for fallthrough
		hasDefault := false
		for _, cs := range bodyList {
			cc, ok := cs.(*ast.CaseClause)
			if !ok {
				continue
			}
			caseB := b.newBlock()
			b.edge(head, caseB)
			if cc.List == nil {
				hasDefault = true
			}
			for _, e := range cc.List {
				caseB.Nodes = append(caseB.Nodes, e)
			}
			if prevBody != nil {
				b.edge(prevBody, caseB) // fallthrough from the previous case
			}
			prevBody = nil
			b.cur = caseB
			ft := false
			for i, inner := range cc.Body {
				if br, ok := inner.(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" && i == len(cc.Body)-1 {
					ft = true
					continue
				}
				b.stmt(inner, "")
			}
			if ft {
				prevBody = b.cur
			} else {
				b.edge(b.cur, join)
			}
		}
		if prevBody != nil {
			b.edge(prevBody, join) // trailing fallthrough in the last case
		}
		if !hasDefault {
			b.edge(head, join) // no case matched
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = join

	case *ast.SelectStmt:
		// The SelectStmt node is the blocking marker; comm statements are
		// recorded in SelectComms so walkers don't double-classify them.
		b.cur.Nodes = append(b.cur.Nodes, st)
		head := b.cur
		join := b.newBlock()
		b.frames = append(b.frames, cfgFrame{label: label, breakTo: join, canBreak: true})
		for _, cs := range st.Body.List {
			cc, ok := cs.(*ast.CommClause)
			if !ok {
				continue
			}
			caseB := b.newBlock()
			b.edge(head, caseB)
			b.cur = caseB
			if cc.Comm != nil {
				b.cfg.SelectComms[cc.Comm] = true
				b.stmt(cc.Comm, "")
			}
			b.stmtList(cc.Body)
			b.edge(b.cur, join)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = join

	case *ast.BranchStmt:
		switch st.Tok.String() {
		case "break":
			if t := b.frameTarget(st.Label, true); t != nil {
				b.edge(b.cur, t)
			}
			b.seal()
		case "continue":
			if t := b.frameTarget(st.Label, false); t != nil {
				b.edge(b.cur, t)
			}
			b.seal()
		case "goto":
			if st.Label != nil {
				if t, ok := b.labels[st.Label.Name]; ok {
					b.edge(b.cur, t)
				} else {
					b.gotos[st.Label.Name] = append(b.gotos[st.Label.Name], b.cur)
				}
			}
			b.seal()
		}

	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, st)
		b.edge(b.cur, b.cfg.Exit)
		b.seal()

	case *ast.DeferStmt:
		b.cur.Nodes = append(b.cur.Nodes, st)
		b.cfg.Defers = append(b.cfg.Defers, st.Call)

	case *ast.ExprStmt:
		b.cur.Nodes = append(b.cur.Nodes, st.X)
		if call, ok := st.X.(*ast.CallExpr); ok && b.terminates(call) {
			b.edge(b.cur, b.cfg.Exit)
			b.seal()
		}

	case nil:
		// e.g. an absent init clause

	default:
		// Assignments, declarations, sends, inc/dec, go statements, empty
		// statements: straight-line nodes.
		b.cur.Nodes = append(b.cur.Nodes, st)
	}
}

// frameTarget resolves break/continue to its target block.
func (b *cfgBuilder) frameTarget(label *ast.Ident, isBreak bool) *Block {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if label != nil && f.label != label.Name {
			continue
		}
		if isBreak && f.canBreak {
			return f.breakTo
		}
		if !isBreak && f.canCont && (label != nil || f.isLoopish) {
			return f.contTo
		}
	}
	return nil
}

// Loops returns one natural loop per back edge, found by depth-first
// search from the entry (an edge u->h is a back edge when h is still on
// the DFS stack at u).
func (c *CFG) Loops() []Loop {
	state := map[*Block]int{} // 0 unvisited, 1 on stack, 2 finished
	var loops []Loop
	var dfs func(b *Block)
	dfs = func(b *Block) {
		state[b] = 1
		for _, s := range b.Succs {
			switch state[s] {
			case 0:
				dfs(s)
			case 1:
				loops = append(loops, c.naturalLoop(b, s))
			}
		}
		state[b] = 2
	}
	dfs(c.Entry)
	return loops
}

// naturalLoop collects the loop of back edge u->h: h plus all blocks that
// reach u against the flow without crossing h.
func (c *CFG) naturalLoop(u, h *Block) Loop {
	body := map[*Block]bool{h: true, u: true}
	stack := []*Block{u}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == h {
			continue
		}
		for _, p := range n.Preds {
			if !body[p] {
				body[p] = true
				stack = append(stack, p)
			}
		}
	}
	return Loop{Head: h, Blocks: body}
}

// Exits reports the loop blocks that have a successor outside the loop —
// i.e. the loop is escapable without a shutdown signal when non-empty.
func (l Loop) Exits() []*Block {
	var out []*Block
	for b := range l.Blocks {
		for _, s := range b.Succs {
			if !l.Blocks[s] {
				out = append(out, b)
				break
			}
		}
	}
	return out
}

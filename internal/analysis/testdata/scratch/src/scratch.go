// Package scratch seeds one representative bug per flow check. The
// TestSeededScratch self-test (run by `make lint`) asserts that each of
// goroutinelife, lockheld and ctxflow catches its bug here — a canary that
// the CFG engine itself still fires, independent of the repo being clean.
package scratch

import (
	"context"
	"sync"
	"time"
)

type daemon struct {
	mu sync.Mutex
	ch chan int
	n  int
}

// start leaks a poll loop: no shutdown mechanism, no loop exit.
func (d *daemon) start() {
	go func() {
		for {
			time.Sleep(time.Millisecond)
			d.tick()
		}
	}()
}

func (d *daemon) tick() {}

// pump parks on the channel while holding the mutex.
func (d *daemon) pump() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.n = <-d.ch
}

// flush accepts a deadline and immediately re-roots it away.
func (d *daemon) flush(ctx context.Context) {
	sub, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	d.wait(sub)
}

func (d *daemon) wait(ctx context.Context) { _ = ctx.Err() }

// Package ctxflow is the corpus for the deadline-propagation check: a
// function that accepts a context must thread it — no re-rooting via
// context.Background, no bare sleeps, no timer-only selects, and no
// dropping the parameter on the floor while blocking.
package ctxflow

import (
	"context"
	"net"
	"time"
)

func work(ctx context.Context) { _ = ctx.Err() }

func run(ctx context.Context, c net.Conn) error {
	_ = ctx.Err()
	_, err := c.Write(nil)
	return err
}

func audit(ctx context.Context) { _ = ctx.Err() }

// reroot replaces the caller's deadline with a fresh root.
func reroot(ctx context.Context) {
	sub, cancel := context.WithTimeout(context.Background(), time.Second) // want "re-rooted via context.Background"
	defer cancel()
	work(sub)
}

// sleepy polls with a bare sleep instead of a ctx-aware timer.
func sleepy(ctx context.Context) error {
	time.Sleep(10 * time.Millisecond) // want "time.Sleep cannot observe ctx cancellation"
	return ctx.Err()
}

// timerOnly waits on a stored timer and never on cancellation; the timer
// is recognized through its reaching definition.
func timerOnly(ctx context.Context, ch chan int) int {
	if ctx == nil {
		return -1
	}
	t := time.After(time.Second)
	select {
	case v := <-ch:
		return v
	case <-t: // want "select waits on time.After but never on ctx.Done"
		return 0
	}
}

// drain blocks on the channel but never consults its deadline.
func drain(ctx context.Context, ch chan int) int { // want "accepts ctx but never threads it"
	return <-ch
}

// derive is the compliant twin of reroot: the child deadline nests inside
// the caller's.
func derive(ctx context.Context, c net.Conn) error {
	sub, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return run(sub, c)
}

// both races the timer against cancellation — the sanctioned shape.
func both(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-time.After(time.Second):
		return 0
	case <-ctx.Done():
		return -1
	}
}

// detach hands fire-and-forget work a fresh root inside `go` — legal,
// the goroutine outlives the request.
func detach(ctx context.Context, done chan struct{}) {
	go func() {
		audit(context.Background())
	}()
	<-done
	_ = ctx.Err()
}

// deferred cleanup also legitimately outlives the request deadline.
func deferred(ctx context.Context, ch chan int) {
	defer audit(context.Background())
	<-ch
	_ = ctx.Err()
}

// ignore opts out explicitly: an unnamed ctx documents "unused by design".
func ignore(_ context.Context, ch chan int) int {
	return <-ch
}

// Package floateq exercises the float-equality check.
package floateq

// sentinel is a documented placeholder value stored (not computed) by the
// caller.
const sentinel = -100.0

// Equal compares computed floats exactly: flagged.
func Equal(a, b float64) bool {
	return a == b // want "floateq"
}

// NotEqual is the != twin: flagged.
func NotEqual(a, b float64) bool {
	return a != b // want "floateq"
}

// Narrow also applies to float32 operands: flagged.
func Narrow(a, b float32) bool {
	return a == b // want "floateq"
}

// ZeroGuard compares against a constant: legal sentinel guard.
func ZeroGuard(a float64) bool { return a == 0 }

// ConstGuard compares against a named constant: legal.
func ConstGuard(a float64) bool { return a != sentinel }

// Ints never trigger the check.
func Ints(a, b int) bool { return a == b }

// almostEqual is the approved epsilon helper (Config.FloatEqApproved); its
// own exact comparison is the fast path and stays legal.
func almostEqual(a, b float64) bool {
	if a == b {
		return true
	}
	return diff(a, b) < 1e-9
}

func diff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

// Suppressed documents a deliberate exact comparison via the suppression
// syntax.
func Suppressed(a, b float64) bool {
	return a == b //rtlint:ignore floateq corpus exercises the suppression syntax
}

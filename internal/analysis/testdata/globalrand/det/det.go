// Package eval exercises globalrand inside a deterministic package (the
// package name is on the deterministic list).
package eval

import (
	"math/rand"
	"time"
)

// Draw uses the banned package-global generator.
func Draw() float64 {
	return rand.Float64() // want "globalrand"
}

// Stamp reads the wall clock.
func Stamp() int64 {
	return time.Now().UnixNano() // want "globalrand"
}

// Age measures from the wall clock.
func Age(start time.Time) time.Duration {
	return time.Since(start) // want "globalrand"
}

// Seeded threads an explicit generator: the sanctioned pattern.
func Seeded(rng *rand.Rand) float64 {
	return rng.Float64()
}

// Build constructs a seeded generator; rand.New / rand.NewSource stay legal.
func Build(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Hold references the rand.Rand type itself, which is legal.
type Hold struct{ rng *rand.Rand }

// Package eval exercises cross-process trace plumbing inside a
// deterministic package. The sanctioned pattern is to derive every span
// context from the trace's injected clock — Span.Context() stamps the tick
// internally, so code that only captures, encodes, and parses contexts
// never reads the wall clock. Stamping a context (or a stage duration) with
// time.Now directly defeats byte-identical journals and is flagged.
package eval

import (
	"time"

	"roadtrojan/internal/obs"
)

// Propagate captures the span's context for a remote callee. The tick comes
// from the trace's injected clock inside Context(); nothing here touches
// wall time, so a deterministic package may do this freely.
func Propagate(sp *obs.Span) string {
	return sp.Context().Encode()
}

// Join opens a span under a received wire context — again purely
// clock-injected, no finding.
func Join(tr *obs.Trace, wire string) *obs.Span {
	sc, ok := obs.ParseSpanContext(wire)
	if !ok {
		sc = obs.SpanContext{}
	}
	return tr.SpanInContext(sc, "fabric_job")
}

// HandStamped builds a context by reading the wall clock for the tick —
// exactly the bug the injected clock exists to prevent: two runs of the
// same workload would journal different ticks and the merged trace would
// no longer be byte-stable.
func HandStamped(sp *obs.Span) obs.SpanContext {
	sc := sp.Context()
	sc.Tick = time.Now().UnixNano() // want "globalrand"
	return sc
}

// StageTimer measures a stage with the wall clock inside deterministic
// code; stage timing belongs in the serve layer (allowlisted), not here.
func StageTimer() func() time.Duration {
	start := time.Now() // want "globalrand"
	return func() time.Duration {
		return time.Since(start) // want "globalrand"
	}
}

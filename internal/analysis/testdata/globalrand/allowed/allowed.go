// Package serve exercises the globalrand allowlist: operational packages
// (serve, telemetry) own wall-clock and jitter concerns and are exempt.
package serve

import (
	"math/rand"
	"time"
)

// Jitter draws from the global generator; fine here.
func Jitter() time.Duration {
	return time.Duration(rand.Intn(10)) * time.Millisecond
}

// Uptime reads the wall clock; also fine here.
func Uptime(start time.Time) time.Duration {
	return time.Since(start)
}

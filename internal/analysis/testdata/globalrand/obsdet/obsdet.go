// Package attack exercises a deterministic package that imports
// roadtrojan/internal/obs. Instrumenting with spans and typed events must
// produce zero globalrand findings: obs confines wall-clock reads behind
// its Clock interface, so the importer never touches time.Now itself.
// This file intentionally carries no `// want` comments.
package attack

import (
	"math/rand"

	"roadtrojan/internal/obs"
)

// Optimize runs a seeded loop under a span; all of this is legal in a
// deterministic package.
func Optimize(tr *obs.Trace, rng *rand.Rand, iters int) float64 {
	sp := tr.Span("train", obs.I("iters", iters))
	defer sp.End()
	loss := 1.0
	for it := 0; it < iters; it++ {
		loss *= 0.9 + rng.Float64()*0.01
		sp.Iter(obs.IterStats{Method: "ours", It: it, Attack: loss})
	}
	return loss
}

// Snapshot emits a verify event — typed event methods are plain calls, no
// clock access in this package.
func Snapshot(sp *obs.Span, it int, score float64) {
	sp.Verify(obs.VerifyStats{It: it, Score: score, Best: score, Kept: true})
}

// Package chaos exercises the globalrand allowlist for the fault-injection
// layer: fault schedules draw from per-connection seeded PRNGs (so runs
// are byte-reproducible from one seed), while latency and slow-loris
// faults necessarily sleep on the wall clock. Both are fine here — the
// deterministic evaluation math never lives in this package.
package chaos

import (
	"math/rand"
	"time"
)

// FaultParam resolves a PRNG-chosen fault parameter from a seeded
// per-connection generator; seeded constructors are fine everywhere.
func FaultParam(seed int64) byte {
	rng := rand.New(rand.NewSource(seed))
	return byte(1 + rng.Intn(255))
}

// HoldFrame injects real latency into a transfer; wall time is the point.
func HoldFrame(d time.Duration) {
	time.Sleep(d)
}

// Deadline stamps a slow-loris cutoff on the real clock; also fine here.
func Deadline(budget time.Duration) time.Time {
	return time.Now().Add(budget)
}

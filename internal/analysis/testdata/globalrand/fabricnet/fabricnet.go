// Package fabric exercises the globalrand allowlist for the distributed
// eval tier: heartbeat staleness, dial backoff, and request latency are
// inherently wall-clock concerns, confined behind fabric.Clock so the
// evaluation math underneath stays deterministic.
package fabric

import "time"

// LastSeenStale reads the wall clock to judge a heartbeat; fine here.
func LastSeenStale(lastSeen time.Time, timeout time.Duration) bool {
	return time.Since(lastSeen) > timeout
}

// DialBackoff waits out a reconnect delay on the real clock; also fine.
func DialBackoff(d time.Duration) time.Time {
	return <-time.After(d)
}

// Package ignore exercises the suppression-directive syntax itself: a
// directive without both a check name and a reason is reported.
package ignore

//rtlint:ignore floateq
func noop() {}

var _ = noop

// Package tensor exercises the panic-message policy: library panics must
// carry a constant message prefixed with the package name.
package tensor

import "fmt"

// BadBare panics without the package prefix.
func BadBare(n int) {
	if n < 0 {
		panic("negative dimension") // want "panicpolicy"
	}
}

// BadDynamic panics with a non-constant value.
func BadDynamic(err error) {
	panic(err) // want "panicpolicy"
}

// BadSprintf formats a message that lacks the prefix.
func BadSprintf(n int) {
	panic(fmt.Sprintf("bad shape %d", n)) // want "panicpolicy"
}

// BadConcat concatenates onto an unprefixed literal.
func BadConcat(msg string) {
	panic("got: " + msg) // want "panicpolicy"
}

// GoodConst carries the canonical prefix.
func GoodConst(n int) {
	if n < 0 {
		panic("tensor: negative dimension")
	}
}

// GoodSprintf formats a prefixed message.
func GoodSprintf(n int) {
	panic(fmt.Sprintf("tensor: negative dimension %d", n))
}

// GoodConcat builds on a prefixed literal.
func GoodConcat(msg string) {
	panic("tensor: " + msg)
}

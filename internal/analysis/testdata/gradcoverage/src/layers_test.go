package gradcov

import "testing"

// TestCoveredGradCheck references Covered (through its constructor), so
// only Uncovered should be flagged.
func TestCoveredGradCheck(t *testing.T) {
	c := NewCovered()
	out := c.Forward(3)
	if g := c.Backward(1); g < 5.9 || g > 6.1 || out < 8.9 || out > 9.1 {
		t.Fatalf("grad %v out %v", g, out)
	}
}

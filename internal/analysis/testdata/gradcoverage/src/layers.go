// Package gradcov exercises gradient-check coverage: every type with
// Forward and Backward must be referenced from a gradient-check test.
package gradcov

// Covered has a gradient-check test referencing it (via NewCovered).
type Covered struct{ cache float64 }

// NewCovered builds a Covered layer.
func NewCovered() *Covered { return &Covered{} }

// Forward caches the input.
func (c *Covered) Forward(x float64) float64 { c.cache = x; return x * x }

// Backward uses the cache.
func (c *Covered) Backward(d float64) float64 { return 2 * c.cache * d }

// Uncovered has Forward/Backward but no gradient-check test references it.
type Uncovered struct{ cache float64 } // want "gradcoverage"

// Forward caches the input.
func (u *Uncovered) Forward(x float64) float64 { u.cache = x; return x + 1 }

// Backward passes the gradient through.
func (u *Uncovered) Backward(d float64) float64 { return d }

// Plain has no Backward, so it is not a layer and needs no check.
type Plain struct{}

// Forward alone does not make a layer.
func (p *Plain) Forward(x float64) float64 { return x }

package sharedforward

// Scratch is a minimal stand-in for a tensor.Scratch: grow-only buffers
// owned by exactly one goroutine at a time.
type Scratch struct{ buf []float64 }

// Buf returns the buffer resized to n elements.
func (s *Scratch) Buf(id, n int) []float64 {
	if cap(s.buf) < n {
		s.buf = make([]float64, n)
	}
	return s.buf[:n]
}

// BufZero returns the buffer resized and cleared.
func (s *Scratch) BufZero(id, n int) []float64 {
	b := s.Buf(id, n)
	for i := range b {
		b[i] = 0
	}
	return b
}

// Arena is a stand-in for tensor.Arena.
type Arena struct{}

// Acquire returns one scratch per worker slot.
func (a *Arena) Acquire(n int) []*Scratch {
	out := make([]*Scratch, n)
	for i := range out {
		out[i] = &Scratch{}
	}
	return out
}

// SharedScratch captures one pre-picked scratch in every goroutine: every
// worker hammers the same buffers.
func SharedScratch(ar *Arena, done chan []float64) {
	ss := ar.Acquire(4)
	sc := ss[0]
	for i := 0; i < 4; i++ {
		go func() {
			done <- sc.Buf(0, 16) // want "sharedforward"
		}()
	}
}

// PerSlotScratch indexes the Acquire result by a per-goroutine slot: the
// blessed pattern, compliant.
func PerSlotScratch(ar *Arena, done chan []float64) {
	ss := ar.Acquire(4)
	for i := 0; i < 4; i++ {
		go func(slot int) {
			done <- ss[slot].BufZero(0, 16)
		}(i)
	}
}

// LocalScratch declares the scratch inside the closure: goroutine-private,
// compliant.
func LocalScratch(done chan []float64) {
	go func() {
		var sc Scratch
		done <- sc.Buf(0, 16)
	}()
}

// SequentialScratch uses a scratch outside any goroutine: compliant.
func SequentialScratch(ar *Arena) []float64 {
	ss := ar.Acquire(1)
	return ss[0].BufZero(0, 16)
}

// Package sharedforward exercises the sharedforward check: Forward and
// Backward must not run on a module captured by a go closure, because
// modules cache forward activations in place.
package sharedforward

// Model is a minimal stand-in for an nn.Module: it caches forward state.
type Model struct{ last []float64 }

// Forward caches its input, like every real module.
func (m *Model) Forward(x []float64) []float64 { m.last = x; return x }

// Backward consumes the cached state.
func (m *Model) Backward(d []float64) []float64 { return append(d, m.last...) }

// Clone returns a private replica.
func (m *Model) Clone() *Model { return &Model{} }

// Server shares a module through a struct field.
type Server struct{ det *Model }

// Shared races the captured model across goroutines.
func Shared(m *Model, in []float64, done chan []float64) {
	go func() {
		out := m.Forward(in)    // want "sharedforward"
		done <- m.Backward(out) // want "sharedforward"
	}()
}

// SharedField reaches the module through a captured struct.
func SharedField(s *Server, in []float64, done chan []float64) {
	go func() {
		done <- s.det.Forward(in) // want "sharedforward"
	}()
}

// CloneInside gives the goroutine its own replica: compliant.
func CloneInside(m *Model, in []float64, done chan []float64) {
	go func() {
		c := m.Clone()
		done <- c.Forward(in)
	}()
}

// CloneOutside hands a pre-cloned replica to a single goroutine: compliant.
func CloneOutside(m *Model, in []float64, done chan []float64) {
	replica := m.Clone()
	go func() {
		done <- replica.Forward(in)
	}()
}

// Sequential use outside any goroutine is compliant.
func Sequential(m *Model, in []float64) []float64 {
	return m.Backward(m.Forward(in))
}

package sharedforward

// The fused-kernel shape: an eval-time conv+BN+activation kernel acquires
// arena scratch once, then fans sample work out across goroutines. The im2col
// buffer belongs to exactly one worker slot — capturing a pre-picked scratch
// in every closure is the same race as sharing a module, just through the
// arena instead of the activation cache.

// FusedConv mimics tensor's fused conv skeleton: fold once, then one scratch
// buffer per worker slot for the im2col lowering.
type FusedConv struct {
	folded bool
	ar     Arena
}

// FusedSharedScratch picks the scratch before spawning the per-sample
// goroutines: every sample's im2col lowering hammers one buffer.
func (f *FusedConv) FusedSharedScratch(samples int, done chan []float64) {
	ss := f.ar.Acquire(4)
	im2col := ss[0]
	for n := 0; n < samples; n++ {
		go func() {
			done <- im2col.BufZero(0, 256) // want "sharedforward"
		}()
	}
}

// FusedPerSlot indexes the acquired scratch by the goroutine's own slot —
// the parallel-for-slot discipline the real fused kernels use, compliant.
func (f *FusedConv) FusedPerSlot(samples int, done chan []float64) {
	ss := f.ar.Acquire(samples)
	for n := 0; n < samples; n++ {
		go func(slot int) {
			done <- ss[slot].BufZero(0, 256)
		}(n)
	}
}

// FusedEpilogue applies the folded-BN epilogue on a scratch captured from an
// enclosing pick: still shared, still a finding — the epilogue writing in
// place does not make the buffer private.
func (f *FusedConv) FusedEpilogue(samples int, done chan []float64) {
	ss := f.ar.Acquire(4)
	sc := ss[1]
	for n := 0; n < samples; n++ {
		go func() {
			seg := sc.Buf(1, 64) // want "sharedforward"
			for i := range seg {
				if seg[i] < 0 {
					seg[i] *= 0.1
				}
			}
			done <- seg
		}()
	}
}

// FusedSequential folds and lowers without goroutines: compliant.
func (f *FusedConv) FusedSequential() []float64 {
	f.folded = true
	ss := f.ar.Acquire(1)
	return ss[0].Buf(0, 256)
}

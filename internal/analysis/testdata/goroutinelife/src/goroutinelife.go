// Package goroutinelife is the corpus for the goroutine-lifecycle check:
// every `go` statement must launch a goroutine that can observe shutdown
// on all paths, and no goroutine loop may be both unexitable and blind.
package goroutinelife

import (
	"fmt"
	"sync"
	"time"
)

type server struct {
	done chan struct{}
	jobs chan int
	out  chan int
}

func poll()        {}
func redial()      {}
func handle(int)   {}
func compute() int { return 0 }
func sleeper() {
	for {
		time.Sleep(time.Millisecond) // want "goroutine loop can neither exit nor observe shutdown"
		redial()
	}
}

// leakAnon spins forever with no way to stop it.
func leakAnon() {
	go func() { // want "goroutine has no shutdown mechanism"
		for {
			poll() // want "goroutine loop can neither exit nor observe shutdown"
		}
	}()
}

// leakNamed launches a same-package blind-redial loop (expanded one level).
func leakNamed() {
	go sleeper() // want "goroutine has no shutdown mechanism"
}

// leakSend only ever sends; a send cannot observe shutdown.
func leakSend(s *server) {
	go func() { // want "goroutine has no shutdown mechanism"
		s.out <- compute()
	}()
}

// leakOpaque hands the goroutine nothing it could wait on.
func leakOpaque() {
	go fmt.Println("tick") // want "opaque callee"
}

// okSelect drains jobs until the done channel closes.
func okSelect(s *server) {
	go func() {
		for {
			select {
			case <-s.done:
				return
			case j := <-s.jobs:
				handle(j)
			}
		}
	}()
}

// okWaitGroup is the tracked-worker idiom: Done on exit, range until the
// jobs channel closes.
func okWaitGroup(wg *sync.WaitGroup, jobs chan int) {
	go worker(wg, jobs)
}

func worker(wg *sync.WaitGroup, jobs chan int) {
	defer wg.Done()
	for j := range jobs {
		handle(j)
	}
}

// okObserver loops forever but parks on a receive each turn — closing kick
// unparks it.
func okObserver(kick chan struct{}) {
	go func() {
		for {
			<-kick
			poll()
		}
	}()
}

// okFuncValue launches an opaque func value, but hands it the done channel.
func okFuncValue(run func(chan struct{}), done chan struct{}) {
	go run(done)
}

// batcher is the generic-coalescer shape: the run loop parks on a receive,
// so closing `in` is the shutdown signal. The launch call resolves to an
// *instantiated* method object — the check must map it back to the generic
// declaration (Origin) rather than treating the callee as opaque.
type batcher[T any] struct {
	in chan T
}

// okGenericMethod launches a generic-receiver method that observes shutdown.
func okGenericMethod() {
	b := &batcher[int]{in: make(chan int)}
	go b.run()
}

func (b *batcher[T]) run() {
	for {
		v, ok := <-b.in
		if !ok {
			return
		}
		_ = v
	}
}

// leakGenericMethod proves the generic body is actually scanned, not just
// resolved: a blind spin inside an instantiated method still leaks.
func leakGenericMethod() {
	b := &batcher[int]{}
	go b.spin() // want "goroutine has no shutdown mechanism"
}

func (b *batcher[T]) spin() {
	for {
		poll() // want "goroutine loop can neither exit nor observe shutdown"
	}
}

// Package lockheld is the corpus for the lock-discipline check: no
// blocking operation and no same-lock re-acquisition while a sync mutex
// may be held, with defer-unlock accounting and the dedicated-I/O-mutex
// exemption.
package lockheld

import (
	"net"
	"sync"
	"time"
)

type store struct {
	mu      sync.Mutex
	rw      sync.RWMutex
	writeMu sync.Mutex
	cmu     sync.Mutex
	cond    *sync.Cond
	wg      sync.WaitGroup
	ready   bool
	ch      chan int
	m       map[string]int
	conn    net.Conn
}

// recvHeld parks on a channel while holding the mutex.
func (s *store) recvHeld() int {
	s.mu.Lock()
	v := <-s.ch // want "channel receive while s.mu is held"
	s.mu.Unlock()
	return v
}

// relock acquires the lock it already holds: self-deadlock.
func (s *store) relock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mu.Lock() // want "s.mu acquired again while already held"
}

// sleepHeld sleeps under a deferred unlock (held until exit).
func (s *store) sleepHeld(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(d) // want "sleep while s.mu is held"
}

// waitPath releases on one branch only; the fall-through path still holds.
func (s *store) waitPath(flush bool) {
	s.mu.Lock()
	if flush {
		s.mu.Unlock()
		return
	}
	s.wg.Wait() // want "Wait while s.mu is held"
	s.mu.Unlock()
}

// writeHeld writes the shared conn under the general state mutex — the
// exemption is only for dedicated I/O mutexes.
func (s *store) writeHeld(b []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.conn.Write(b) // want "network write while s.mu is held"
}

// lookupThenSend is the compliant twin of recvHeld: release, then block.
func (s *store) lookupThenSend(k string) {
	s.mu.Lock()
	v := s.m[k]
	s.mu.Unlock()
	s.ch <- v
}

// writeSerialized is the sanctioned dedicated write-mutex idiom.
func (s *store) writeSerialized(b []byte) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.conn.Write(b)
}

// tryEnqueue holds a read lock across a select with default — never parks.
func (s *store) tryEnqueue(v int) bool {
	s.rw.RLock()
	defer s.rw.RUnlock()
	select {
	case s.ch <- v:
		return true
	default:
		return false
	}
}

// condWait is the sanctioned Cond pattern: Wait releases the lock itself.
func (s *store) condWait() {
	s.cmu.Lock()
	for !s.ready {
		s.cond.Wait()
	}
	s.cmu.Unlock()
}

package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// This file classifies the effects of CFG nodes for the flow checks: which
// operations block (and on what), which can observe shutdown, and which
// structural types count as closable network I/O handles. Classification
// is structural (method sets, package paths) so chaos/test wrappers around
// net.Conn are treated like the real thing.

// Effect is one blocking/observability class of a CFG node.
type Effect int

const (
	EffectNone     Effect = iota
	EffectChanRecv        // <-ch outside a select comm, or range over a channel
	EffectChanSend        // ch <- v outside a select comm
	EffectSelect          // select with no default clause
	EffectNetRead         // Read/Accept/Serve/ReadAll... on a closable conn/listener
	EffectNetWrite        // Write/WriteTo... on a closable conn
	EffectDial            // Dial-style connection setup
	EffectSleep           // time.Sleep
	EffectWait            // sync.WaitGroup.Wait / sync.Cond.Wait
)

// String names the effect for finding messages.
func (e Effect) String() string {
	switch e {
	case EffectChanRecv:
		return "channel receive"
	case EffectChanSend:
		return "channel send"
	case EffectSelect:
		return "blocking select"
	case EffectNetRead:
		return "network read"
	case EffectNetWrite:
		return "network write"
	case EffectDial:
		return "dial"
	case EffectSleep:
		return "sleep"
	case EffectWait:
		return "Wait"
	}
	return "none"
}

// Blocking reports whether the effect parks the goroutine.
func (e Effect) Blocking() bool { return e != EffectNone }

// effectSite is one classified operation inside a CFG node.
type effectSite struct {
	Effect Effect
	Node   ast.Node // the operation (for position reporting)
}

// classifyNode returns the blocking operations a CFG node performs. comm
// marks select comm statements (already accounted for by their SelectStmt
// marker) which are skipped. The walk stays inside the node — CFG nodes
// never embed another block's body, except FuncLit values (goroutine and
// callback bodies), which are skipped: their effects belong to the
// function that eventually runs them.
func classifyNode(p *Pkg, c *CFG, n ast.Node) []effectSite {
	var out []effectSite
	if c.SelectComms[n] {
		return nil
	}
	switch st := n.(type) {
	case *ast.SelectStmt:
		if !selectHasDefault(st) {
			out = append(out, effectSite{EffectSelect, st})
		}
		return out
	case *ast.RangeStmt:
		if isChanType(p.typeOf(st.X)) {
			out = append(out, effectSite{EffectChanRecv, st})
		}
		return out
	case *ast.SendStmt:
		out = append(out, effectSite{EffectChanSend, st})
		// fall through to scan the value expression below
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch e := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt, *ast.RangeStmt:
			// Nested bodies live in their own blocks; nothing to do here.
			return false
		case *ast.UnaryExpr:
			if e.Op.String() == "<-" {
				out = append(out, effectSite{EffectChanRecv, e})
			}
		case *ast.SendStmt:
			if m != n {
				out = append(out, effectSite{EffectChanSend, e})
			}
		case *ast.CallExpr:
			if eff := classifyCall(p, e); eff != EffectNone {
				out = append(out, effectSite{eff, e})
			}
		}
		return true
	})
	return out
}

// classifyCall classifies one call expression's blocking effect.
func classifyCall(p *Pkg, call *ast.CallExpr) Effect {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		// Package-level functions: time.Sleep, net.Dial*.
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
				switch pn.Imported().Path() {
				case "time":
					if name == "Sleep" {
						return EffectSleep
					}
				case "net":
					if strings.HasPrefix(name, "Dial") || name == "Listen" || name == "ListenPacket" {
						return EffectDial
					}
				case "io":
					if name == "ReadAll" || name == "Copy" || name == "CopyN" || name == "ReadFull" {
						if callHasNetArg(p, call) {
							return EffectNetRead
						}
					}
				}
			}
		}
		// Methods: classify by receiver type.
		recv := p.typeOf(fun.X)
		if recv == nil {
			break
		}
		switch {
		case isSyncWaitable(recv) && name == "Wait":
			return EffectWait
		case isConnLike(recv):
			switch {
			case strings.HasPrefix(name, "Read"):
				return EffectNetRead
			case strings.HasPrefix(name, "Write"):
				return EffectNetWrite
			}
		case isListenerLike(recv) && name == "Accept":
			return EffectNetRead
		case isHTTPClient(recv) && (name == "Do" || name == "Get" || name == "Post" || name == "PostForm" || name == "Head"):
			return EffectNetRead
		}
		// Serve(listener) / Dial-named funcs and function-typed fields.
		if strings.HasPrefix(name, "Dial") {
			return EffectDial
		}
		if name == "Serve" && callHasNetArg(p, call) {
			return EffectNetRead
		}
		if (strings.HasPrefix(name, "Read") || strings.HasPrefix(name, "Write")) && callHasNetArg(p, call) {
			if strings.HasPrefix(name, "Read") {
				return EffectNetRead
			}
			return EffectNetWrite
		}
	case *ast.Ident:
		name := fun.Name
		// Plain function calls taking a conn/listener: ReadFrame(conn),
		// WriteFrame(conn, f), Serve(ln) — the framed-protocol idiom.
		if strings.HasPrefix(name, "Dial") {
			return EffectDial
		}
		if callHasNetArg(p, call) {
			switch {
			case strings.HasPrefix(name, "Read") || name == "Serve" || name == "Accept":
				return EffectNetRead
			case strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "Send"):
				return EffectNetWrite
			}
		}
	}
	return EffectNone
}

// callHasNetArg reports whether any argument is conn-like or listener-like.
func callHasNetArg(p *Pkg, call *ast.CallExpr) bool {
	for _, a := range call.Args {
		t := p.typeOf(a)
		if t != nil && (isConnLike(t) || isListenerLike(t)) {
			return true
		}
	}
	return false
}

// shutdownObserver reports whether the effect can observe shutdown and
// unblock: channel receives end when the channel closes, selects with a
// receive case wake on close, network reads/accepts fail when the conn or
// listener closes. Sends, sleeps and dials observe nothing.
func (e Effect) shutdownObserver() bool {
	switch e {
	case EffectChanRecv, EffectSelect, EffectNetRead, EffectWait:
		return true
	}
	return false
}

func selectHasDefault(st *ast.SelectStmt) bool {
	for _, cs := range st.Body.List {
		if cc, ok := cs.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func selectHasRecv(p *Pkg, st *ast.SelectStmt) bool {
	for _, cs := range st.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		switch comm := cc.Comm.(type) {
		case *ast.ExprStmt:
			if u, ok := comm.X.(*ast.UnaryExpr); ok && u.Op.String() == "<-" {
				return true
			}
		case *ast.AssignStmt:
			for _, r := range comm.Rhs {
				if u, ok := r.(*ast.UnaryExpr); ok && u.Op.String() == "<-" {
					return true
				}
			}
		}
	}
	return false
}

// typeOf looks up the static type of an expression (nil when unknown).
func (p *Pkg) typeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isConnLike reports whether t looks like a closable network connection:
// its method set carries Read, Write, Close and SetReadDeadline (net.Conn
// and every wrapper around it — including the chaos fault injector).
// *os.File matches that method set but is bounded disk I/O, not a peer
// that can park us indefinitely, so it is excluded.
func isConnLike(t types.Type) bool {
	if named, ok := deref(t).(*types.Named); ok {
		if obj := named.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "os" && obj.Name() == "File" {
			return false
		}
	}
	return hasMethods(t, "Read", "Write", "Close", "SetReadDeadline")
}

// isListenerLike reports whether t looks like a closable accept loop
// source: Accept + Close + Addr (net.Listener and wrappers).
func isListenerLike(t types.Type) bool {
	return hasMethods(t, "Accept", "Close", "Addr")
}

// isSyncWaitable reports whether t is a sync.WaitGroup or sync.Cond (the
// types whose Wait parks until other goroutines act).
func isSyncWaitable(t types.Type) bool {
	t = deref(t)
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != "sync" {
		return false
	}
	return named.Obj().Name() == "WaitGroup" || named.Obj().Name() == "Cond"
}

func isHTTPClient(t types.Type) bool {
	t = deref(t)
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "net/http" && named.Obj().Name() == "Client"
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

func deref(t types.Type) types.Type {
	if ptr, ok := t.(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}

// hasMethods reports whether the method set of t (or *t) contains every
// named method.
func hasMethods(t types.Type, names ...string) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Interface); !ok {
		if _, ok := t.(*types.Named); !ok {
			if _, ok := t.(*types.Pointer); !ok {
				return false
			}
		}
	}
	ms := types.NewMethodSet(t)
	if ptr, ok := t.(*types.Pointer); !ok && ptr == nil {
		if _, isIface := t.Underlying().(*types.Interface); !isIface {
			ms = types.NewMethodSet(types.NewPointer(t))
		}
	}
	have := map[string]bool{}
	for i := 0; i < ms.Len(); i++ {
		have[ms.At(i).Obj().Name()] = true
	}
	for _, n := range names {
		if !have[n] {
			return false
		}
	}
	return true
}

// isTerminating builds the IsTerminatingCall hook with type facts: the
// panic builtin, os.Exit, runtime.Goexit, and log.Fatal* end a path.
func (p *Pkg) isTerminating(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "panic" {
			_, isBuiltin := p.Info.Uses[fun].(*types.Builtin)
			return isBuiltin
		}
	case *ast.SelectorExpr:
		id, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		pn, ok := p.Info.Uses[id].(*types.PkgName)
		if !ok {
			return false
		}
		switch pn.Imported().Path() {
		case "os":
			return fun.Sel.Name == "Exit"
		case "runtime":
			return fun.Sel.Name == "Goexit"
		case "log":
			return strings.HasPrefix(fun.Sel.Name, "Fatal") || strings.HasPrefix(fun.Sel.Name, "Panic")
		}
	}
	return false
}

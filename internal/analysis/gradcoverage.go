package analysis

import (
	"go/ast"
	"go/types"
)

// gradCoverageCheck requires every concrete type with Forward and Backward
// methods (the repo's structural notion of a differentiable layer) to be
// referenced from a gradient-check test in its own package — a test or
// helper whose name matches Config.GradCheckNameRE. A hand-written backward
// pass that no finite-difference test exercises is exactly where silent
// gradient bugs live; this check makes "add a layer" imply "add its grad
// check". Coverage counts any use inside a matching function: the type
// name itself, a variable of the type, or a call to a constructor/method
// returning or receiving it.
func gradCoverageCheck() Check {
	return Check{
		Name: "gradcoverage",
		Doc:  "every Forward/Backward type must be referenced from a gradient-check test in its package",
		Run:  runGradCoverage,
	}
}

func runGradCoverage(cfg *Config, p *Pkg) []Finding {
	// Candidate layer types declared in library (non-test) files.
	var cands []*types.TypeName
	scope := p.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || types.IsInterface(named) {
			continue
		}
		if p.IsTestFile(tn.Pos()) {
			continue
		}
		if !hasForwardBackward(named) {
			continue
		}
		cands = append(cands, tn)
	}
	if len(cands) == 0 {
		return nil
	}
	inSet := map[*types.TypeName]bool{}
	for _, tn := range cands {
		inSet[tn] = true
	}

	covered := map[*types.TypeName]bool{}
	markType := func(t types.Type) {
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			if tn := named.Obj(); inSet[tn] {
				covered[tn] = true
			}
		}
	}
	for _, file := range p.Files {
		if !p.IsTestFile(file.Pos()) {
			continue
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !cfg.GradCheckNameRE.MatchString(fd.Name.Name) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				switch obj := p.Info.Uses[id].(type) {
				case *types.TypeName:
					if inSet[obj] {
						covered[obj] = true
					}
				case *types.Func:
					sig, ok := obj.Type().(*types.Signature)
					if !ok {
						return true
					}
					if recv := sig.Recv(); recv != nil {
						markType(recv.Type())
					}
					for i := 0; i < sig.Results().Len(); i++ {
						markType(sig.Results().At(i).Type())
					}
				case *types.Var:
					markType(obj.Type())
				}
				return true
			})
		}
	}

	var out []Finding
	for _, tn := range cands {
		if !covered[tn] {
			out = append(out, finding(p, tn.Pos(), "gradcoverage",
				"type %s has Forward/Backward but no gradient-check test (function matching %q) in package %q references it",
				tn.Name(), cfg.GradCheckNameRE.String(), p.Name))
		}
	}
	return out
}

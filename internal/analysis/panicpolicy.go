package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// panicPolicyCheck enforces the repository's panic discipline in library
// packages: panics are reserved for shape/invariant violations and must
// carry a constant message prefixed with the package name ("tensor: ..."),
// so a production stack trace names the failing subsystem without symbol
// archaeology. A panic argument qualifies when it is
//
//   - a constant string with the "<pkg>: " prefix,
//   - fmt.Sprintf/fmt.Errorf whose format literal carries the prefix, or
//   - a "+" concatenation whose leftmost operand is a prefixed literal.
//
// Test files are exempt; so are bare re-panics (panic(r) inside a recover
// handler is a different idiom and is left to code review).
func panicPolicyCheck() Check {
	return Check{
		Name: "panicpolicy",
		Doc:  `library panics must carry a constant "<pkg>: "-prefixed message`,
		Run:  runPanicPolicy,
	}
}

func runPanicPolicy(cfg *Config, p *Pkg) []Finding {
	if cfg.PanicScope != nil && !cfg.PanicScope(p) {
		return nil
	}
	prefix := p.Name + ": "
	var out []Finding
	for _, file := range p.Files {
		if p.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			if len(call.Args) != 1 {
				return true
			}
			if f, bad := checkPanicArg(p, call.Args[0], prefix); bad {
				out = append(out, f)
			}
			return true
		})
	}
	return out
}

func checkPanicArg(p *Pkg, arg ast.Expr, prefix string) (Finding, bool) {
	if msg, ok := constString(p, arg); ok {
		return panicPrefixFinding(p, arg, msg, prefix)
	}
	switch a := arg.(type) {
	case *ast.CallExpr:
		if sel, ok := a.Fun.(*ast.SelectorExpr); ok {
			fn, _ := p.Info.Uses[sel.Sel].(*types.Func)
			if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
				(fn.Name() == "Sprintf" || fn.Name() == "Errorf") && len(a.Args) > 0 {
				if format, ok := constString(p, a.Args[0]); ok {
					return panicPrefixFinding(p, a.Args[0], format, prefix)
				}
			}
		}
	case *ast.BinaryExpr:
		// Leftmost operand of a "+" chain decides the prefix.
		left := ast.Expr(a)
		for {
			be, ok := left.(*ast.BinaryExpr)
			if !ok {
				break
			}
			left = be.X
		}
		if msg, ok := constString(p, left); ok {
			return panicPrefixFinding(p, left, msg, prefix)
		}
	}
	return finding(p, arg.Pos(), "panicpolicy",
		"panic argument is not a constant message; invariant panics must carry a %q-prefixed constant string (optionally via fmt.Sprintf or +)",
		prefix), true
}

func panicPrefixFinding(p *Pkg, at ast.Expr, msg, prefix string) (Finding, bool) {
	if strings.HasPrefix(msg, prefix) {
		return Finding{}, false
	}
	return finding(p, at.Pos(), "panicpolicy",
		"panic message %q lacks the %q package prefix", msg, prefix), true
}

func constString(p *Pkg, e ast.Expr) (string, bool) {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

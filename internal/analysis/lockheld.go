package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockheld: no blocking operation and no re-acquisition of the same lock
// while a sync.Mutex/RWMutex is held, on any CFG path. A held-lock set is
// propagated forward through the CFG (union at merges: "may be held"), with
// defer-unlock accounting — `defer mu.Unlock()` keeps the lock held until
// function exit rather than releasing at the defer site.
//
// The one sanctioned exception is the dedicated I/O mutex idiom: a mutex
// whose name matches Config.IOLockRE (writeMu and friends) exists precisely
// to serialize writes on a shared conn, so network I/O under it alone is not
// a finding. Every other blocking class (channel ops, blocking selects,
// sleeps, Waits, dials) under any lock is.
func lockHeldCheck() Check {
	return Check{
		Name: "lockheld",
		Doc:  "no blocking call or same-lock re-acquisition while a sync mutex is held on any path",
		Run:  runLockHeld,
	}
}

// heldLock is one may-held lock in the dataflow fact.
type heldLock struct {
	key   string // rendered lock expression, e.g. "c.writeMu"
	rlock bool
}

type lockFact map[string]heldLock

// lockOp is one lock-relevant operation inside a CFG node, replayed in
// source order by the transfer function.
type lockOp struct {
	pos     token.Pos
	site    ast.Node
	key     string // for acquire/release
	rlock   bool
	acquire bool
	release bool
	effect  Effect // blocking effect when not a lock call
	conds   bool   // effect site is sync.Cond.Wait (releases its lock; exempt)
}

func runLockHeld(cfg *Config, p *Pkg) []Finding {
	if cfg.FlowScope != nil && !cfg.FlowScope(p) {
		return nil
	}
	var out []Finding
	for _, body := range p.funcBodies() {
		if p.IsTestFile(body.Pos()) {
			continue
		}
		out = append(out, lockHeldBody(cfg, p, body)...)
	}
	return out
}

// funcBodies enumerates every function body in the package — declarations
// and function literals — each analyzed as its own intraprocedural unit.
func (p *Pkg) funcBodies() []*ast.BlockStmt {
	var out []*ast.BlockStmt
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					out = append(out, d.Body)
				}
			case *ast.FuncLit:
				out = append(out, d.Body)
			}
			return true
		})
	}
	return out
}

func lockHeldBody(cfg *Config, p *Pkg, body *ast.BlockStmt) []Finding {
	c := BuildCFG(body, p.isTerminating)
	// Fast path: no lock calls anywhere in this body.
	ops := map[*Block][][]lockOp{}
	any := false
	for _, b := range c.Blocks {
		perNode := make([][]lockOp, len(b.Nodes))
		for i, n := range b.Nodes {
			perNode[i] = nodeLockOps(p, c, n)
			for _, op := range perNode[i] {
				if op.acquire {
					any = true
				}
			}
		}
		ops[b] = perNode
	}
	if !any {
		return nil
	}
	transfer := func(b *Block, in lockFact) lockFact {
		out := make(lockFact, len(in))
		for k, v := range in {
			out[k] = v
		}
		for _, perNode := range ops[b] {
			for _, op := range perNode {
				switch {
				case op.acquire:
					out[op.key] = heldLock{key: op.key, rlock: op.rlock}
				case op.release:
					delete(out, op.key)
				}
			}
		}
		return out
	}
	join := func(a, b lockFact) lockFact {
		out := make(lockFact, len(a)+len(b))
		for k, v := range a {
			out[k] = v
		}
		for k, v := range b {
			if _, ok := out[k]; !ok {
				out[k] = v
			}
		}
		return out
	}
	equal := func(a, b lockFact) bool {
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if _, ok := b[k]; !ok {
				return false
			}
		}
		return true
	}
	in := ForwardSolve(c, lockFact{}, transfer, join, equal)
	// Reporting pass: replay each block once from its solved IN fact.
	var out []Finding
	for _, b := range c.Blocks {
		held, ok := in[b]
		if !ok {
			continue // unreachable
		}
		cur := make(lockFact, len(held))
		for k, v := range held {
			cur[k] = v
		}
		for _, perNode := range ops[b] {
			for _, op := range perNode {
				switch {
				case op.acquire:
					if _, dup := cur[op.key]; dup {
						out = append(out, finding(p, op.pos, "lockheld",
							"%s acquired again while already held (self-deadlock on any writer)", op.key))
					}
					cur[op.key] = heldLock{key: op.key, rlock: op.rlock}
				case op.release:
					delete(cur, op.key)
				case op.effect.Blocking():
					if len(cur) == 0 || op.conds {
						continue
					}
					if netEffect(op.effect) && allIOExempt(cur, cfg) {
						continue
					}
					out = append(out, finding(p, op.pos, "lockheld",
						"%s while %s is held", op.effect, heldKeys(cur)))
				}
			}
		}
	}
	return out
}

func netEffect(e Effect) bool { return e == EffectNetRead || e == EffectNetWrite }

// allIOExempt reports whether every held lock is a dedicated I/O mutex by
// name (last path segment matched against Config.IOLockRE).
func allIOExempt(held lockFact, cfg *Config) bool {
	if cfg.IOLockRE == nil {
		return false
	}
	for k := range held {
		name := k
		if i := strings.LastIndexByte(k, '.'); i >= 0 {
			name = k[i+1:]
		}
		if !cfg.IOLockRE.MatchString(name) {
			return false
		}
	}
	return true
}

func heldKeys(held lockFact) string {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

// nodeLockOps extracts the lock acquisitions/releases and blocking effects
// of one CFG node, in source order. Function literals are their own
// analysis units and deferred unlocks hold until exit, so both are skipped.
func nodeLockOps(p *Pkg, c *CFG, n ast.Node) []lockOp {
	var out []lockOp
	if _, isDefer := n.(*ast.DeferStmt); isDefer {
		// Deferred calls run at exit: a deferred Unlock keeps the lock held
		// through the body, and a deferred blocking call does not block here.
		return nil
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch e := m.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if op, ok := mutexCallOp(p, e); ok {
				out = append(out, op)
			}
		}
		return true
	})
	for _, site := range classifyNode(p, c, n) {
		op := lockOp{pos: site.Node.Pos(), site: site.Node, effect: site.Effect}
		if site.Effect == EffectWait {
			if call, ok := site.Node.(*ast.CallExpr); ok {
				if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && isSyncCond(p.typeOf(sel.X)) {
					op.conds = true
				}
			}
		}
		out = append(out, op)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}

// mutexCallOp classifies a call as Lock/RLock/Unlock/RUnlock on a
// sync.Mutex or sync.RWMutex (TryLock variants are ignored: the caller
// branches on the result, so "held" is path-dependent in a way the name
// alone cannot express).
func mutexCallOp(p *Pkg, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	var acquire, release, rlock bool
	switch sel.Sel.Name {
	case "Lock":
		acquire = true
	case "RLock":
		acquire, rlock = true, true
	case "Unlock":
		release = true
	case "RUnlock":
		release, rlock = true, true
	default:
		return lockOp{}, false
	}
	if !isSyncMutex(p.typeOf(sel.X)) {
		return lockOp{}, false
	}
	return lockOp{
		pos:     call.Pos(),
		site:    call,
		key:     exprKey(sel.X),
		rlock:   rlock,
		acquire: acquire,
		release: release,
	}, true
}

func isSyncMutex(t types.Type) bool {
	t = deref(t)
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false
	}
	return named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex"
}

func isSyncCond(t types.Type) bool {
	t = deref(t)
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "Cond"
}

// exprKey renders a lock expression as a stable identity string. Distinct
// syntax renders distinctly; unrenderable expressions get a position-tagged
// key so they never alias another lock.
func exprKey(e ast.Expr) string {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprKey(x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return exprKey(x.X)
	case *ast.IndexExpr:
		return exprKey(x.X) + "[" + exprKey(x.Index) + "]"
	case *ast.BasicLit:
		return x.Value
	case *ast.CallExpr:
		return exprKey(x.Fun) + "()"
	default:
		return fmt.Sprintf("expr@%d", e.Pos())
	}
}

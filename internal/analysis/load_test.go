package analysis

import (
	"sort"
	"testing"
)

// TestLoadAllDeterministicOrder: the parallel loader must return packages
// in sorted directory order regardless of worker scheduling, with every
// package slot filled — the ordering contract rtlint's output (and the
// baseline machinery) depends on.
func TestLoadAllDeterministicOrder(t *testing.T) {
	root := repoRoot(t)
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	dirs := make([]string, len(pkgs))
	for i, p := range pkgs {
		dirs[i] = p.Dir
		if p.Types == nil || p.Info == nil || len(p.Files) == 0 {
			t.Errorf("package %s loaded incompletely", p.Path)
		}
	}
	if !sort.StringsAreSorted(dirs) {
		t.Fatalf("packages not in sorted directory order: %v", dirs)
	}
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// goroutinelife: every `go` statement in flow-scoped packages must launch a
// goroutine that is shutdown-aware. Two rules over the goroutine body's CFG:
//
//	R1 — the body (expanded one level into same-package callees) must contain
//	     at least one shutdown mechanism: a channel receive / range-over-
//	     channel / select with a receive case, a WaitGroup Done/Wait,
//	     ctx.Done/Err, close(ch), or a read/accept on a closable conn or
//	     listener (closing the handle unparks the goroutine).
//
//	R2 — every natural loop in the body must either have an exit edge
//	     (break/return/cond) or contain a blocking node that can observe
//	     shutdown. A `for { dial; retry }` loop with neither is the
//	     blind-redial class the chaos suite only catches at runtime.
func goroutineLifeCheck() Check {
	return Check{
		Name: "goroutinelife",
		Doc:  "goroutines must be shutdown-aware (ctx/done channel/WaitGroup/closable I/O) on all paths",
		Run:  runGoroutineLife,
	}
}

func runGoroutineLife(cfg *Config, p *Pkg) []Finding {
	if cfg.FlowScope != nil && !cfg.FlowScope(p) {
		return nil
	}
	idx := p.funcDeclIndex()
	seenLoop := map[token.Pos]bool{} // dedupe loops when one body has several launch sites
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if p.IsTestFile(gs.Pos()) {
				return true
			}
			bodies := p.goroutineBodies(gs.Call, idx)
			if len(bodies) == 0 {
				// Callee outside the package (or dynamic). If the launch
				// call itself reads a closable handle (go srv.Serve(ln)) or
				// hands the goroutine a channel/ctx/WaitGroup it can wait
				// on, trust it; otherwise we cannot see a mechanism.
				if classifyCall(p, gs.Call).shutdownObserver() || callHasShutdownArg(p, gs.Call) {
					return true
				}
				out = append(out, finding(p, gs.Pos(), "goroutinelife",
					"goroutine launches opaque callee with no shutdown channel, ctx, or closable handle in its arguments"))
				return true
			}
			sc := &shutdownScan{p: p, idx: idx, visited: map[ast.Node]bool{}}
			mech := false
			for _, b := range bodies {
				if sc.scan(b, 2) {
					mech = true
					break
				}
			}
			if !mech {
				out = append(out, finding(p, gs.Pos(), "goroutinelife",
					"goroutine has no shutdown mechanism (ctx/done channel/WaitGroup/closable I/O) on any path"))
			}
			for _, b := range bodies {
				c := BuildCFG(b, p.isTerminating)
				for _, loop := range c.Loops() {
					if len(loop.Exits()) > 0 || loopObservesShutdown(p, c, loop) {
						continue
					}
					pos := loopPos(loop, gs.Pos())
					if seenLoop[pos] {
						continue
					}
					seenLoop[pos] = true
					out = append(out, finding(p, pos, "goroutinelife",
						"goroutine loop can neither exit nor observe shutdown"))
				}
			}
			return true
		})
	}
	return out
}

// goroutineBodies resolves the body (or bodies) the go statement runs: the
// literal's body for `go func(){...}()`, the declaration body for a
// same-package function or method. Unresolvable callees return nil.
func (p *Pkg) goroutineBodies(call *ast.CallExpr, idx map[*types.Func]*ast.FuncDecl) []*ast.BlockStmt {
	switch fun := unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return []*ast.BlockStmt{fun.Body}
	case *ast.Ident:
		if fn, ok := p.Info.Uses[fun].(*types.Func); ok {
			if d := idx[fn.Origin()]; d != nil && d.Body != nil {
				return []*ast.BlockStmt{d.Body}
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			if d := idx[fn.Origin()]; d != nil && d.Body != nil {
				return []*ast.BlockStmt{d.Body}
			}
		}
	}
	return nil
}

// callHasShutdownArg reports whether any argument gives the callee a way to
// observe shutdown: a channel, a context, a conn/listener, or a WaitGroup.
func callHasShutdownArg(p *Pkg, call *ast.CallExpr) bool {
	for _, a := range call.Args {
		t := p.typeOf(a)
		if t == nil {
			continue
		}
		if isChanType(t) || isContextType(t) || isConnLike(t) || isListenerLike(t) || isSyncWaitable(t) {
			return true
		}
	}
	return false
}

// shutdownScan is the R1 mechanism walker. It descends into nested function
// literals (a closure the goroutine defines and runs carries its mechanisms)
// and expands same-package callees up to the given depth.
type shutdownScan struct {
	p       *Pkg
	idx     map[*types.Func]*ast.FuncDecl
	visited map[ast.Node]bool
}

func (s *shutdownScan) scan(body *ast.BlockStmt, depth int) bool {
	if body == nil || s.visited[body] {
		return false
	}
	s.visited[body] = true
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch e := n.(type) {
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if isChanType(s.p.typeOf(e.X)) {
				found = true
			}
		case *ast.SelectStmt:
			if selectHasRecv(s.p, e) {
				found = true
			}
		case *ast.CallExpr:
			if s.mechanismCall(e) {
				found = true
				return false
			}
			if depth > 0 {
				if d := s.calleeDecl(e); d != nil {
					if s.scan(d.Body, depth-1) {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// mechanismCall classifies a single call as a shutdown mechanism.
func (s *shutdownScan) mechanismCall(call *ast.CallExpr) bool {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name == "close" {
			_, isBuiltin := s.p.Info.Uses[fun].(*types.Builtin)
			return isBuiltin
		}
	case *ast.SelectorExpr:
		recv := s.p.typeOf(fun.X)
		switch fun.Sel.Name {
		case "Done", "Wait":
			if isSyncWaitable(recv) {
				return true
			}
			if fun.Sel.Name == "Done" && isContextType(recv) {
				return true
			}
		case "Err", "Deadline":
			if isContextType(recv) {
				return true
			}
		}
	}
	return classifyCall(s.p, call).shutdownObserver()
}

// calleeDecl resolves a call to a same-package function/method declaration.
func (s *shutdownScan) calleeDecl(call *ast.CallExpr) *ast.FuncDecl {
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := s.p.Info.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	// A call through a generic receiver or instantiated function resolves to
	// the instantiation's object; the declaration index is keyed by origin.
	return s.idx[fn.Origin()]
}

// loopObservesShutdown reports whether any node inside the loop blocks on
// something that unblocks at shutdown (receive, select, closable read) or
// consults ctx.Done/Err.
func loopObservesShutdown(p *Pkg, c *CFG, loop Loop) bool {
	sc := &shutdownScan{p: p, visited: map[ast.Node]bool{}}
	for b := range loop.Blocks {
		for _, n := range b.Nodes {
			for _, site := range classifyNode(p, c, n) {
				if site.Effect.shutdownObserver() {
					return true
				}
			}
			obs := false
			ast.Inspect(n, func(m ast.Node) bool {
				if obs {
					return false
				}
				if _, ok := m.(*ast.FuncLit); ok {
					return false
				}
				if call, ok := m.(*ast.CallExpr); ok && sc.mechanismCall(call) {
					obs = true
					return false
				}
				return true
			})
			if obs {
				return true
			}
		}
	}
	return false
}

// loopPos picks a stable position for a loop finding: the smallest node
// position inside the loop, falling back to the launch site.
func loopPos(loop Loop, fallback token.Pos) token.Pos {
	pos := token.NoPos
	for b := range loop.Blocks {
		for _, n := range b.Nodes {
			if p := n.Pos(); p.IsValid() && (pos == token.NoPos || p < pos) {
				pos = p
			}
		}
	}
	if pos == token.NoPos {
		return fallback
	}
	return pos
}

// funcDeclIndex maps each function object to its declaration, for callee
// expansion inside the package.
func (p *Pkg) funcDeclIndex() map[*types.Func]*ast.FuncDecl {
	idx := map[*types.Func]*ast.FuncDecl{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				idx[fn] = fd
			}
		}
	}
	return idx
}

func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}

package analysis

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// The corpus self-test: every check must fire on its seeded violations
// (lines carrying a `// want "regex"` comment) and stay silent on the
// compliant twins in the same corpus package.

var wantRE = regexp.MustCompile(`// want "([^"]*)"`)

func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

func corpusConfig(module string) *Config {
	cfg := DefaultConfig(module)
	cfg.PanicScope = func(*Pkg) bool { return true } // corpus dirs are outside internal/
	cfg.FlowScope = func(*Pkg) bool { return true }
	cfg.FloatEqApproved["almostEqual"] = true
	return cfg
}

func checkByName(t *testing.T, name string) Check {
	t.Helper()
	for _, c := range AllChecks() {
		if c.Name == name {
			return c
		}
	}
	t.Fatalf("no check named %q", name)
	return Check{}
}

func TestCorpus(t *testing.T) {
	root := repoRoot(t)
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	cfg := corpusConfig(loader.Module())
	cases := []struct {
		check string
		dirs  []string
	}{
		{"sharedforward", []string{"sharedforward/src"}},
		{"globalrand", []string{"globalrand/det", "globalrand/allowed", "globalrand/obsdet", "globalrand/fabricnet", "globalrand/chaosprng", "globalrand/tracectx"}},
		{"floateq", []string{"floateq/src"}},
		{"panicpolicy", []string{"panicpolicy/src"}},
		{"gradcoverage", []string{"gradcoverage/src"}},
		{"goroutinelife", []string{"goroutinelife/src"}},
		{"lockheld", []string{"lockheld/src"}},
		{"ctxflow", []string{"ctxflow/src"}},
	}
	for _, tc := range cases {
		t.Run(tc.check, func(t *testing.T) {
			check := checkByName(t, tc.check)
			for _, dir := range tc.dirs {
				abs := filepath.Join(root, "internal", "analysis", "testdata", filepath.FromSlash(dir))
				importPath := "corpus/" + strings.ReplaceAll(dir, "/", "_")
				p, err := loader.LoadDir(abs, importPath)
				if err != nil {
					t.Fatalf("loading corpus %s: %v", dir, err)
				}
				findings := Run(cfg, []*Pkg{p}, []Check{check})
				matchWants(t, abs, findings)
			}
		})
	}
}

// matchWants pairs findings against the `// want` comments in dir: every
// finding must be expected on its line, and every expectation must fire.
func matchWants(t *testing.T, dir string, findings []Finding) {
	t.Helper()
	type want struct {
		key     string // base filename:line
		re      *regexp.Regexp
		matched bool
	}
	var wants []*want
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			if m := wantRE.FindStringSubmatch(line); m != nil {
				wants = append(wants, &want{
					key: fmt.Sprintf("%s:%d", e.Name(), i+1),
					re:  regexp.MustCompile(m[1]),
				})
			}
		}
	}
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", filepath.Base(f.Pos.Filename), f.Pos.Line)
		text := f.Check + ": " + f.Msg
		found := false
		for _, w := range wants {
			if w.key == key && w.re.MatchString(text) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected finding at %s: %s", key, text)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("expected finding at %s matching %q did not fire", w.key, w.re)
		}
	}
}

// TestSeededScratch is the engine canary: the scratch corpus deliberately
// seeds one goroutine leak, one blocking-under-lock, and one ctx re-root.
// If any of the three checks goes silent on it, the analyzer — not the
// repo — regressed.
func TestSeededScratch(t *testing.T) {
	root := repoRoot(t)
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "analysis", "testdata", "scratch", "src")
	p, err := loader.LoadDir(dir, "corpus/scratch_src")
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(corpusConfig(loader.Module()), []*Pkg{p}, AllChecks())
	caught := map[string]bool{}
	for _, f := range findings {
		caught[f.Check] = true
	}
	for _, want := range []string{"goroutinelife", "lockheld", "ctxflow"} {
		if !caught[want] {
			t.Errorf("seeded %s bug in scratch corpus was not caught; findings: %v", want, findings)
		}
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	root := t.TempDir()
	findings := []Finding{
		{Pos: pos(filepath.Join(root, "a.go"), 3), Check: "floateq", Msg: "m1"},
		{Pos: pos(filepath.Join(root, "a.go"), 9), Check: "floateq", Msg: "m1"}, // duplicate key, different line
		{Pos: pos(filepath.Join(root, "b.go"), 1), Check: "panicpolicy", Msg: "m2"},
	}
	path := filepath.Join(root, "rtlint.baseline")
	if err := WriteBaseline(path, findings, root); err != nil {
		t.Fatal(err)
	}
	bl, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if left := bl.Filter(findings, root); len(left) != 0 {
		t.Fatalf("full baseline should swallow every finding, got %d left", len(left))
	}
	extra := append(findings, Finding{Pos: pos(filepath.Join(root, "c.go"), 2), Check: "globalrand", Msg: "m3"})
	left := bl.Filter(extra, root)
	if len(left) != 1 || left[0].Check != "globalrand" {
		t.Fatalf("baseline filter kept %v, want only the new globalrand finding", left)
	}
	// Duplicate keys are a multiset: a baseline with one entry covers one.
	one := Baseline{BaselineKey(findings[0], root): 1}
	if left := one.Filter(findings[:2], root); len(left) != 1 {
		t.Fatalf("multiset baseline should leave exactly one duplicate, got %d", len(left))
	}
	// A missing baseline file is empty, not an error.
	empty, err := LoadBaseline(filepath.Join(root, "nonexistent"))
	if err != nil || len(empty) != 0 {
		t.Fatalf("missing baseline: %v %v", empty, err)
	}
}

// TestBaselineSeparatorNormalization: a baseline written with Windows path
// separators must still match keys built with forward slashes.
func TestBaselineSeparatorNormalization(t *testing.T) {
	root := t.TempDir()
	path := filepath.Join(root, "rtlint.baseline")
	content := "# comment\n" +
		`internal\serve\pool.go: floateq: m1` + "\n" +
		"internal/fabric/node.go: lockheld: m2\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	bl, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	findings := []Finding{
		{Pos: pos(filepath.Join(root, "internal", "serve", "pool.go"), 3), Check: "floateq", Msg: "m1"},
		{Pos: pos(filepath.Join(root, "internal", "fabric", "node.go"), 8), Check: "lockheld", Msg: "m2"},
	}
	if left := bl.Filter(findings, root); len(left) != 0 {
		t.Fatalf("normalized baseline should cover both findings, kept %v", left)
	}
	// The message part must not be rewritten: a backslash after "check: "
	// stays intact.
	if _, ok := bl[`internal/serve/pool.go: floateq: m1`]; !ok {
		t.Fatalf("backslash path was not normalized: %v", bl)
	}
}

// TestBaselineStale: entries no finding matches are reported (with
// multiplicity) so fixed violations get pruned from the committed file.
func TestBaselineStale(t *testing.T) {
	root := t.TempDir()
	f1 := Finding{Pos: pos(filepath.Join(root, "a.go"), 3), Check: "floateq", Msg: "m1"}
	bl := Baseline{
		BaselineKey(f1, root):               2, // two grandfathered, only one still present
		"gone.go: lockheld: fixed long ago": 1,
	}
	stale := bl.Stale([]Finding{f1}, root)
	want := []string{
		BaselineKey(f1, root), // the surplus duplicate
		"gone.go: lockheld: fixed long ago",
	}
	sort.Strings(want)
	if !reflect.DeepEqual(stale, want) {
		t.Fatalf("stale = %v, want %v", stale, want)
	}
	if got := bl.Stale([]Finding{f1, f1}, root); len(got) != 1 || got[0] != "gone.go: lockheld: fixed long ago" {
		t.Fatalf("fully-used baseline should only report the dead entry, got %v", got)
	}
}

func TestMalformedSuppression(t *testing.T) {
	root := repoRoot(t)
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "analysis", "testdata", "ignore", "src")
	p, err := loader.LoadDir(dir, "corpus/ignore_src")
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(corpusConfig(loader.Module()), []*Pkg{p}, nil)
	if len(findings) != 1 || findings[0].Check != "ignore" {
		t.Fatalf("want exactly the malformed-ignore finding, got %v", findings)
	}
}

func pos(file string, line int) (p token.Position) {
	p.Filename = file
	p.Line = line
	p.Column = 1
	return p
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floatEqCheck flags == and != between two non-constant float operands.
// Accumulated rounding error makes exact float equality a latent bug in
// numeric code; comparisons must go through an epsilon helper
// (math.Abs(a-b) <= eps). Comparing against a compile-time constant stays
// legal — guards like `v == 0` or `cx == sentinel` test for exact
// documented sentinel values that were stored, not computed. Functions
// named in Config.FloatEqApproved (the epsilon helpers themselves) are
// exempt wholesale. Test files are exempt: exact equality in a test is
// usually the point (bit-identical clone/determinism assertions).
func floatEqCheck() Check {
	return Check{
		Name: "floateq",
		Doc:  "no ==/!= on computed float operands outside approved epsilon helpers and constant sentinel guards",
		Run:  runFloatEq,
	}
}

func runFloatEq(cfg *Config, p *Pkg) []Finding {
	var out []Finding
	for _, file := range p.Files {
		if p.IsTestFile(file.Pos()) {
			continue
		}
		approved := approvedRanges(cfg, file)
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xf, xconst := floatOperand(p, be.X)
			yf, yconst := floatOperand(p, be.Y)
			if !xf || !yf || xconst || yconst {
				return true
			}
			for _, r := range approved {
				if be.Pos() >= r[0] && be.Pos() < r[1] {
					return true
				}
			}
			out = append(out, finding(p, be.OpPos, "floateq",
				"float %s comparison on computed values; use an epsilon helper (math.Abs(a-b) <= eps) or compare against a documented constant sentinel",
				be.Op))
			return true
		})
	}
	return out
}

// floatOperand reports whether e has float type and whether it is a
// compile-time constant.
func floatOperand(p *Pkg, e ast.Expr) (isFloat, isConst bool) {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false, false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0, tv.Value != nil
}

// approvedRanges returns the source ranges of functions the config approves
// for raw float equality.
func approvedRanges(cfg *Config, file *ast.File) [][2]token.Pos {
	if len(cfg.FloatEqApproved) == 0 {
		return nil
	}
	var out [][2]token.Pos
	for _, d := range file.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if ok && fd.Body != nil && cfg.FloatEqApproved[fd.Name.Name] {
			out = append(out, [2]token.Pos{fd.Body.Pos(), fd.Body.End()})
		}
	}
	return out
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the dataflow layer over the CFG: a generic forward worklist
// solver plus the reaching-definitions pass the checks share. Facts are
// per-block (block granularity is enough for the checks: within a block
// the transfer function walks nodes in order and can act at each one).

// ForwardSolve runs a forward dataflow analysis to a fixed point.
//
//   - entry is the fact at the function entry.
//   - transfer folds one block's nodes over an incoming fact and returns
//     the outgoing fact. It must not mutate in.
//   - join merges two facts at a control-flow merge point.
//   - equal decides convergence.
//
// The returned map holds the IN fact of every reachable block.
func ForwardSolve[T any](
	c *CFG,
	entry T,
	transfer func(b *Block, in T) T,
	join func(a, b T) T,
	equal func(a, b T) bool,
) map[*Block]T {
	in := map[*Block]T{c.Entry: entry}
	out := map[*Block]T{}
	work := []*Block{c.Entry}
	queued := map[*Block]bool{c.Entry: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false
		o := transfer(b, in[b])
		prev, seen := out[b]
		if seen && equal(prev, o) {
			continue
		}
		out[b] = o
		for _, s := range b.Succs {
			cur, ok := in[s]
			ni := o
			if ok {
				ni = join(cur, o)
			}
			if !ok || !equal(cur, ni) {
				in[s] = ni
				if !queued[s] {
					queued[s] = true
					work = append(work, s)
				}
			}
		}
	}
	return in
}

// Def is one definition of a variable: the node that assigns it and the
// right-hand side it was assigned from (nil for definitions with no usable
// expression — e.g. range clauses or multi-value unpacking).
type Def struct {
	Var *types.Var
	Pos token.Pos
	Rhs ast.Expr
}

// ReachingDefs maps, per block, each variable to the definitions that
// reach the block entry. Parameters and other free variables get a
// synthetic entry definition with Rhs nil and Pos = the variable's
// declaration, so "defined outside the body" is distinguishable from
// "never defined".
type ReachingDefs map[*Block]map[*types.Var][]Def

// defsOf returns the definitions of v reaching block b (nil when none).
func (r ReachingDefs) defsOf(b *Block, v *types.Var) []Def {
	if m := r[b]; m != nil {
		return m[v]
	}
	return nil
}

// SolveReachingDefs computes reaching definitions for a function body's
// CFG. params seeds the entry fact (typically the function's parameters
// and captured variables relevant to the client).
func SolveReachingDefs(p *Pkg, c *CFG, params []*types.Var) ReachingDefs {
	entry := map[*types.Var][]Def{}
	for _, v := range params {
		entry[v] = []Def{{Var: v, Pos: v.Pos()}}
	}
	type fact = map[*types.Var][]Def
	clone := func(f fact) fact {
		n := make(fact, len(f))
		for k, v := range f {
			n[k] = v
		}
		return n
	}
	transfer := func(b *Block, in fact) fact {
		out := clone(in)
		for _, n := range b.Nodes {
			for _, d := range nodeDefs(p, n) {
				out[d.Var] = []Def{d} // strong update: this def kills prior ones
			}
		}
		return out
	}
	join := func(a, b fact) fact {
		out := clone(a)
		for v, defs := range b {
			out[v] = mergeDefs(out[v], defs)
		}
		return out
	}
	equal := func(a, b fact) bool {
		if len(a) != len(b) {
			return false
		}
		for v, da := range a {
			db, ok := b[v]
			if !ok || len(da) != len(db) {
				return false
			}
			for i := range da {
				if da[i].Pos != db[i].Pos {
					return false
				}
			}
		}
		return true
	}
	return ReachingDefs(ForwardSolve(c, entry, transfer, join, equal))
}

func mergeDefs(a, b []Def) []Def {
	seen := map[token.Pos]bool{}
	out := make([]Def, 0, len(a)+len(b))
	for _, d := range append(append([]Def{}, a...), b...) {
		if !seen[d.Pos] {
			seen[d.Pos] = true
			out = append(out, d)
		}
	}
	return out
}

// nodeDefs extracts the variable definitions a single CFG node performs.
// It looks only at the node itself (CFG nodes never contain nested
// bodies), covering assignments, short declarations, var specs, and range
// clause variables.
func nodeDefs(p *Pkg, n ast.Node) []Def {
	var out []Def
	add := func(id *ast.Ident, rhs ast.Expr, pos token.Pos) {
		if id == nil || id.Name == "_" {
			return
		}
		var v *types.Var
		if dv, ok := p.Info.Defs[id].(*types.Var); ok {
			v = dv
		} else if uv, ok := p.Info.Uses[id].(*types.Var); ok {
			v = uv
		}
		if v != nil {
			out = append(out, Def{Var: v, Pos: pos, Rhs: rhs})
		}
	}
	switch st := n.(type) {
	case *ast.AssignStmt:
		if len(st.Lhs) == len(st.Rhs) {
			for i, lhs := range st.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					add(id, st.Rhs[i], st.TokPos)
				}
			}
		} else {
			// Multi-value: every LHS ident is defined by the same call; the
			// RHS is recorded so clients can still inspect the source call.
			var rhs ast.Expr
			if len(st.Rhs) == 1 {
				rhs = st.Rhs[0]
			}
			for _, lhs := range st.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					add(id, rhs, st.TokPos)
				}
			}
		}
	case *ast.DeclStmt:
		gd, ok := st.Decl.(*ast.GenDecl)
		if !ok {
			return nil
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, id := range vs.Names {
				var rhs ast.Expr
				if i < len(vs.Values) {
					rhs = vs.Values[i]
				}
				add(id, rhs, id.Pos())
			}
		}
	case *ast.RangeStmt:
		if id, ok := st.Key.(*ast.Ident); ok {
			add(id, nil, st.For)
		}
		if id, ok := st.Value.(*ast.Ident); ok {
			add(id, nil, st.For)
		}
	case *ast.IncDecStmt:
		if id, ok := st.X.(*ast.Ident); ok {
			add(id, nil, st.TokPos)
		}
	}
	return out
}

package analysis

import (
	"go/ast"
	"go/types"
)

// globalRandCheck bans the package-global math/rand functions and
// wall-clock reads in deterministic packages: PWC/CWC numbers must be
// bit-reproducible from a seed, so every random draw has to flow through an
// explicitly threaded *rand.Rand. The rand.New / rand.NewSource
// constructors remain legal (they are how seeded generators are built), as
// does the rand.Rand type itself. time.Now/Since/Until are banned in
// library files but tolerated in tests, where they only feed timeouts.
func globalRandCheck() Check {
	return Check{
		Name: "globalrand",
		Doc:  "no package-global rand.* or time.Now in deterministic packages; thread a seeded *rand.Rand",
		Run:  runGlobalRand,
	}
}

// randConstructors are the math/rand functions that build seeded
// generators rather than draw from the global one.
var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true}

func runGlobalRand(cfg *Config, p *Pkg) []Finding {
	if !cfg.DeterministicPkgs[p.Name] || cfg.RandAllowlist[p.Name] {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		isTest := p.IsTestFile(file.Pos())
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := p.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			switch pkgName.Imported().Path() {
			case "math/rand", "math/rand/v2":
				if _, isType := p.Info.Uses[sel.Sel].(*types.TypeName); isType {
					return true
				}
				if randConstructors[sel.Sel.Name] {
					return true
				}
				out = append(out, finding(p, sel.Pos(), "globalrand",
					"package-global rand.%s in deterministic package %q; draw from a seeded *rand.Rand threaded through the call instead",
					sel.Sel.Name, p.Name))
			case "time":
				if isTest {
					return true
				}
				switch sel.Sel.Name {
				case "Now", "Since", "Until":
					out = append(out, finding(p, sel.Pos(), "globalrand",
						"time.%s in deterministic package %q; wall-clock reads break seed-reproducibility",
						sel.Sel.Name, p.Name))
				}
			}
			return true
		})
	}
	return out
}

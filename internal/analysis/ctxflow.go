package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ctxflow: a function that accepts a context must thread it. Four rules,
// applied to every flow-scoped function with a named context.Context
// parameter (unnamed/_ parameters opt out — they document "ctx unused by
// design", e.g. interface compliance):
//
//  1. No re-rooting: context.Background()/context.TODO() anywhere in the
//     body is a finding. `go`/`defer` subtrees are exempt — work that
//     outlives the request legitimately detaches from its deadline.
//  2. No time.Sleep: a sleep cannot observe cancellation; use a timer in a
//     select with ctx.Done.
//  3. A select with a time.After case must also have a ctx.Done case
//     (receive operands are traced through reaching definitions, so a
//     timer stored in a variable first is still recognized).
//  4. The parameter must actually flow somewhere: if the body performs
//     blocking operations but never mentions ctx, the deadline is dropped
//     on the floor.
func ctxFlowCheck() Check {
	return Check{
		Name: "ctxflow",
		Doc:  "ctx-accepting functions must thread the context to blocking work, not re-root or ignore it",
		Run:  runCtxFlow,
	}
}

func runCtxFlow(cfg *Config, p *Pkg) []Finding {
	if cfg.FlowScope != nil && !cfg.FlowScope(p) {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || p.IsTestFile(fd.Pos()) {
				continue
			}
			params := ctxParams(p, fd)
			if len(params) == 0 {
				continue
			}
			out = append(out, ctxFlowFunc(p, fd, params)...)
		}
	}
	return out
}

// ctxParams returns the named context.Context parameters of the function.
func ctxParams(p *Pkg, fd *ast.FuncDecl) map[*types.Var]bool {
	params := map[*types.Var]bool{}
	if fd.Type.Params == nil {
		return params
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			if v, ok := p.Info.Defs[name].(*types.Var); ok && isContextType(v.Type()) {
				params[v] = true
			}
		}
	}
	return params
}

func ctxFlowFunc(p *Pkg, fd *ast.FuncDecl, params map[*types.Var]bool) []Finding {
	c := BuildCFG(fd.Body, p.isTerminating)
	var all []*types.Var
	for v := range params {
		all = append(all, v)
	}
	defs := SolveReachingDefs(p, c, all)
	var out []Finding
	// Any mention of the parameter counts as threading — including handing
	// it to a goroutine or defer, which rules 1-3 otherwise skip.
	usesCtx := false
	ast.Inspect(fd.Body, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if v, ok := p.Info.Uses[id].(*types.Var); ok && params[v] {
				usesCtx = true
			}
		}
		return !usesCtx
	})
	blocks := false
	for _, b := range c.Blocks {
		if _, reachable := defs[b]; !reachable && b != c.Entry {
			continue
		}
		// Block-local running definitions: the IN fact plus strong updates
		// from nodes already walked, so a timer/ctx assigned earlier in this
		// very block resolves too.
		local := map[*types.Var][]Def{}
		for v, ds := range defs[b] {
			local[v] = ds
		}
		lookup := func(v *types.Var) []Def { return local[v] }
		for _, n := range b.Nodes {
			// Detached subtrees: go/defer bodies may re-root.
			switch n.(type) {
			case *ast.GoStmt, *ast.DeferStmt:
				for _, d := range nodeDefs(p, n) {
					local[d.Var] = []Def{d}
				}
				continue
			}
			for _, site := range classifyNode(p, c, n) {
				if site.Effect.Blocking() {
					blocks = true
				}
			}
			ast.Inspect(n, func(m ast.Node) bool {
				switch e := m.(type) {
				case *ast.GoStmt, *ast.DeferStmt:
					return false
				case *ast.CallExpr:
					if name, ok := contextPkgCall(p, e); ok && (name == "Background" || name == "TODO") {
						out = append(out, finding(p, e.Pos(), "ctxflow",
							"context re-rooted via context.%s despite ctx parameter; derive from it instead", name))
					}
					if isTimePkgCall(p, e, "Sleep") {
						out = append(out, finding(p, e.Pos(), "ctxflow",
							"time.Sleep cannot observe ctx cancellation; select on a timer and ctx.Done"))
					}
				case *ast.SelectStmt:
					if timer, pos := selectTimerCase(p, lookup, e); timer && !selectDoneCase(p, lookup, e, params) {
						out = append(out, finding(p, pos, "ctxflow",
							"select waits on time.After but never on ctx.Done"))
					}
					// Clause bodies are separate CFG blocks; comm exprs were
					// just inspected — don't descend twice.
					return false
				}
				return true
			})
			for _, d := range nodeDefs(p, n) {
				local[d.Var] = []Def{d}
			}
		}
	}
	if blocks && !usesCtx {
		out = append(out, finding(p, fd.Name.Pos(), "ctxflow",
			"%s accepts ctx but never threads it while performing blocking operations", fd.Name.Name))
	}
	return out
}

// contextPkgCall reports a call to the context package, returning the
// function name.
func contextPkgCall(p *Pkg, call *ast.CallExpr) (string, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "context" {
		return "", false
	}
	return sel.Sel.Name, true
}

func isTimePkgCall(p *Pkg, call *ast.CallExpr, name string) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "time"
}

// defLookup resolves a variable to the definitions reaching the current
// program point (block IN plus in-block strong updates).
type defLookup func(v *types.Var) []Def

// selectTimerCase reports whether any comm clause receives from time.After
// (directly or through a variable, traced via reaching definitions) and the
// position of the first such clause.
func selectTimerCase(p *Pkg, defs defLookup, st *ast.SelectStmt) (bool, token.Pos) {
	for _, cs := range st.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		for _, op := range commRecvOperands(cc) {
			if isTimerExpr(p, defs, op, map[*types.Var]bool{}) {
				return true, cc.Pos()
			}
		}
	}
	return false, token.NoPos
}

// selectDoneCase reports whether any comm clause receives from ctx.Done()
// where ctx is (or derives from) a context parameter.
func selectDoneCase(p *Pkg, defs defLookup, st *ast.SelectStmt, params map[*types.Var]bool) bool {
	for _, cs := range st.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		for _, op := range commRecvOperands(cc) {
			call, ok := unparen(op).(*ast.CallExpr)
			if !ok {
				continue
			}
			sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Done" || !isContextType(p.typeOf(sel.X)) {
				continue
			}
			if ctxDerived(p, defs, sel.X, params, map[*types.Var]bool{}) {
				return true
			}
		}
	}
	return false
}

// commRecvOperands returns the channel operands received from in one comm
// clause ("<-ch", "v := <-ch", "v, ok = <-ch").
func commRecvOperands(cc *ast.CommClause) []ast.Expr {
	var out []ast.Expr
	collect := func(e ast.Expr) {
		if u, ok := unparen(e).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			out = append(out, u.X)
		}
	}
	switch comm := cc.Comm.(type) {
	case *ast.ExprStmt:
		collect(comm.X)
	case *ast.AssignStmt:
		for _, r := range comm.Rhs {
			collect(r)
		}
	}
	return out
}

// isTimerExpr reports whether e is a time.After(...) result, directly or
// through reaching definitions of a local variable.
func isTimerExpr(p *Pkg, defs defLookup, e ast.Expr, seen map[*types.Var]bool) bool {
	switch x := unparen(e).(type) {
	case *ast.CallExpr:
		return isTimePkgCall(p, x, "After")
	case *ast.Ident:
		v, ok := p.Info.Uses[x].(*types.Var)
		if !ok || seen[v] {
			return false
		}
		seen[v] = true
		for _, d := range defs(v) {
			if d.Rhs != nil && isTimerExpr(p, defs, d.Rhs, seen) {
				return true
			}
		}
	}
	return false
}

// ctxDerived reports whether e denotes a context rooted in one of the
// function's ctx parameters. Unknown producers (helper calls, stored
// fields) are trusted; only explicit Background/TODO roots are rejected.
func ctxDerived(p *Pkg, defs defLookup, e ast.Expr, params map[*types.Var]bool, seen map[*types.Var]bool) bool {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		v, ok := p.Info.Uses[x].(*types.Var)
		if !ok {
			return true
		}
		if params[v] {
			return true
		}
		if seen[v] {
			return false
		}
		seen[v] = true
		ds := defs(v)
		if len(ds) == 0 {
			// Free variable (closure capture) or untracked: trust it.
			return true
		}
		for _, d := range ds {
			if d.Rhs == nil {
				if params[d.Var] {
					return true
				}
				continue
			}
			if ctxDerived(p, defs, d.Rhs, params, seen) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		if name, ok := contextPkgCall(p, x); ok {
			if name == "Background" || name == "TODO" {
				return false
			}
			if len(x.Args) > 0 {
				return ctxDerived(p, defs, x.Args[0], params, seen)
			}
			return true
		}
		// Helper producing a context (req.Context(), clock wrappers): trust.
		return true
	default:
		// Field selectors and anything else structured: trust.
		return true
	}
}

package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"roadtrojan/internal/scene"
)

func fr(detected bool, c scene.Class) FrameResult {
	return FrameResult{Detected: detected, Class: c, Confidence: 0.8}
}

func TestPWCBasic(t *testing.T) {
	results := []FrameResult{
		fr(true, scene.Car), fr(true, scene.Mark), fr(false, 0), fr(true, scene.Car),
	}
	if got := PWC(results, scene.Car); math.Abs(got-50) > 1e-12 {
		t.Fatalf("PWC = %v, want 50", got)
	}
	if got := PWC(results, scene.Person); got != 0 {
		t.Fatalf("PWC = %v, want 0", got)
	}
	if got := PWC(nil, scene.Car); got != 0 {
		t.Fatalf("PWC(empty) = %v", got)
	}
}

func TestUndetectedFramesNeverWrong(t *testing.T) {
	// A frame with Detected=false cannot count as wrong-class even if the
	// Class field is set.
	results := []FrameResult{{Detected: false, Class: scene.Car}}
	if PWC(results, scene.Car) != 0 {
		t.Fatal("undetected frame counted as wrong-class")
	}
}

func TestCWCRequiresThreeConsecutive(t *testing.T) {
	w := fr(true, scene.Car)
	r := fr(true, scene.Mark)
	tests := []struct {
		name    string
		results []FrameResult
		want    bool
	}{
		{name: "empty", results: nil, want: false},
		{name: "two in a row", results: []FrameResult{w, w, r, w, w}, want: false},
		{name: "exactly three", results: []FrameResult{r, w, w, w, r}, want: true},
		{name: "interrupted", results: []FrameResult{w, w, r, w, w, r, w}, want: false},
		{name: "all wrong", results: []FrameResult{w, w, w, w}, want: true},
		{name: "gap by missed detection", results: []FrameResult{w, w, fr(false, scene.Car), w}, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := CWC(tt.results, scene.Car); got != tt.want {
				t.Fatalf("CWC = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestLongestWrongRun(t *testing.T) {
	w := fr(true, scene.Car)
	r := fr(true, scene.Mark)
	results := []FrameResult{w, r, w, w, w, w, r, w, w}
	if got := LongestWrongRun(results, scene.Car); got != 4 {
		t.Fatalf("run = %d, want 4", got)
	}
}

func TestEvaluateAndString(t *testing.T) {
	w := fr(true, scene.Car)
	r := fr(true, scene.Mark)
	s := Evaluate([]FrameResult{w, w, w, r}, scene.Car)
	if math.Abs(s.PWC-75) > 1e-12 || !s.CWC || s.Frames != 4 || s.WrongRun != 3 {
		t.Fatalf("score = %+v", s)
	}
	if s.DetectRate != 1 {
		t.Fatalf("detect rate = %v", s.DetectRate)
	}
	if s.String() != "75% / ✓" {
		t.Fatalf("String = %q", s.String())
	}
	s2 := Evaluate([]FrameResult{r, r}, scene.Car)
	if s2.String() != "0% / ✗" {
		t.Fatalf("String = %q", s2.String())
	}
}

func TestAverageThreeRuns(t *testing.T) {
	scores := []Score{
		{PWC: 90, CWC: true, Frames: 10, WrongRun: 9, DetectRate: 1},
		{PWC: 60, CWC: true, Frames: 10, WrongRun: 6, DetectRate: 0.8},
		{PWC: 30, CWC: false, Frames: 10, WrongRun: 2, DetectRate: 0.6},
	}
	avg := Average(scores)
	if math.Abs(avg.PWC-60) > 1e-12 {
		t.Fatalf("avg PWC = %v", avg.PWC)
	}
	if !avg.CWC {
		t.Fatal("majority CWC should be true")
	}
	if avg.WrongRun != 9 {
		t.Fatalf("max run = %d", avg.WrongRun)
	}
	if Average(nil).Frames != 0 {
		t.Fatal("empty average must be zero")
	}
}

func TestPropPWCBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(40)
		results := make([]FrameResult, n)
		for i := range results {
			results[i] = FrameResult{
				Detected: r.Float64() < 0.7,
				Class:    scene.ClassFromIndex(r.Intn(scene.NumClasses)),
			}
		}
		p := PWC(results, scene.Car)
		if p < 0 || p > 100 {
			return false
		}
		// CWC implies at least 3 wrong frames, implying PWC ≥ 300/n.
		if CWC(results, scene.Car) && n > 0 && p < 300/float64(n)-1e-9 {
			return false
		}
		// Run length never exceeds the frame count.
		return LongestWrongRun(results, scene.Car) <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPropMonotoneUnderMoreWrongFrames(t *testing.T) {
	// Flipping any frame to wrong-class never lowers PWC.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		results := make([]FrameResult, n)
		for i := range results {
			results[i] = FrameResult{Detected: r.Float64() < 0.5, Class: scene.Mark}
		}
		before := PWC(results, scene.Car)
		i := r.Intn(n)
		results[i] = fr(true, scene.Car)
		return PWC(results, scene.Car) >= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAverageSingleRun(t *testing.T) {
	s := Score{PWC: 42, CWC: true, Frames: 7, WrongRun: 3, DetectRate: 0.5}
	avg := Average([]Score{s})
	if avg.PWC != 42 || !avg.CWC || avg.Frames != 7 {
		t.Fatalf("single-run average changed the score: %+v", avg)
	}
}

func TestAverageCWCMajorityTies(t *testing.T) {
	// 1-of-2 CWC is not a majority.
	avg := Average([]Score{{CWC: true}, {CWC: false}})
	if avg.CWC {
		t.Fatal("tie must not report CWC")
	}
	avg = Average([]Score{{CWC: true}, {CWC: true}, {CWC: false}})
	if !avg.CWC {
		t.Fatal("2-of-3 must report CWC")
	}
}

func TestScoreStringRounding(t *testing.T) {
	s := Score{PWC: 77.6, CWC: false}
	if s.String() != "78% / ✗" {
		t.Fatalf("String = %q", s.String())
	}
}

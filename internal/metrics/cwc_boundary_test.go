package metrics

import (
	"testing"

	"roadtrojan/internal/scene"
)

// wrong returns a frame classified as the attacker's target class.
func wrong(t scene.Class) FrameResult {
	return FrameResult{Detected: true, Class: t, Confidence: 0.9}
}

// correct returns a frame detected as a benign class distinct from t.
func correct(t scene.Class) FrameResult {
	other := scene.Mark
	if t == scene.Mark {
		other = scene.Car
	}
	return FrameResult{Detected: true, Class: other, Confidence: 0.9}
}

// missed returns a frame with no matched detection at all.
func missed() FrameResult { return FrameResult{} }

// TestCWCExactWindow pins the boundary: exactly ConsecutiveFrames wrong
// frames trip CWC; one fewer does not.
func TestCWCExactWindow(t *testing.T) {
	target := scene.Car
	atWindow := []FrameResult{correct(target)}
	for i := 0; i < ConsecutiveFrames; i++ {
		atWindow = append(atWindow, wrong(target))
	}
	atWindow = append(atWindow, correct(target))
	if !CWC(atWindow, target) {
		t.Errorf("exactly %d consecutive wrong frames should satisfy CWC", ConsecutiveFrames)
	}
	if got := LongestWrongRun(atWindow, target); got != ConsecutiveFrames {
		t.Errorf("LongestWrongRun = %d, want %d", got, ConsecutiveFrames)
	}

	below := []FrameResult{}
	for i := 0; i < ConsecutiveFrames-1; i++ {
		below = append(below, wrong(target))
	}
	if CWC(below, target) {
		t.Errorf("%d consecutive wrong frames must not satisfy CWC", ConsecutiveFrames-1)
	}
}

// TestCWCRunBrokenBySingleMiss checks one missed detection resets the run:
// wrong,wrong,miss,wrong,wrong has PWC 80% but no confirmation window.
func TestCWCRunBrokenBySingleMiss(t *testing.T) {
	target := scene.Car
	results := []FrameResult{wrong(target), wrong(target), missed(), wrong(target), wrong(target)}
	if CWC(results, target) {
		t.Error("a run broken by a missed detection must not satisfy CWC")
	}
	if got := LongestWrongRun(results, target); got != 2 {
		t.Errorf("LongestWrongRun = %d, want 2", got)
	}
	if got := PWC(results, target); got != 80 {
		t.Errorf("PWC = %g, want 80", got)
	}
	s := Evaluate(results, target)
	if s.CWC || s.WrongRun != 2 || s.PWC != 80 {
		t.Errorf("Evaluate = %+v, want PWC 80, WrongRun 2, CWC false", s)
	}
}

// TestCWCRunBrokenByCorrectClass checks a correctly classified frame also
// resets the window, even though the object stayed detected throughout.
func TestCWCRunBrokenByCorrectClass(t *testing.T) {
	target := scene.Car
	results := []FrameResult{wrong(target), wrong(target), correct(target), wrong(target), wrong(target)}
	if CWC(results, target) {
		t.Error("a run broken by a correct-class frame must not satisfy CWC")
	}
	s := Evaluate(results, target)
	if s.DetectRate != 1 {
		t.Errorf("DetectRate = %g, want 1 (every frame detected something)", s.DetectRate)
	}
}

// TestCWCTrajectoryShorterThanWindow checks a video with fewer frames than
// the confirmation window can never trip CWC, even at 100% PWC.
func TestCWCTrajectoryShorterThanWindow(t *testing.T) {
	target := scene.Car
	short := make([]FrameResult, 0, ConsecutiveFrames-1)
	for i := 0; i < ConsecutiveFrames-1; i++ {
		short = append(short, wrong(target))
	}
	if CWC(short, target) {
		t.Errorf("a %d-frame trajectory must not satisfy the %d-frame window", len(short), ConsecutiveFrames)
	}
	if got := PWC(short, target); got != 100 {
		t.Errorf("PWC = %g, want 100", got)
	}
	if CWC(nil, target) {
		t.Error("an empty trajectory must not satisfy CWC")
	}
	if got := PWC(nil, target); got != 0 {
		t.Errorf("PWC of empty video = %g, want 0", got)
	}
}

// Package metrics implements the paper's two attack-success indicators:
// PWC (Percentage of Wrong-Class frames, Eq. 3) and CWC (Continuous
// Detection with Wrong-Class — the detector reports the attacker's target
// class for at least three consecutive frames, the threshold at which the
// paper's investigation found AVs confirm an object and react).
package metrics

import (
	"fmt"

	"roadtrojan/internal/scene"
)

// ConsecutiveFrames is the AV confirmation window the paper uses for CWC.
const ConsecutiveFrames = 3

// FrameResult is the detector's verdict on the target object in one frame.
type FrameResult struct {
	// Detected reports whether any detection matched the target box.
	Detected bool
	// Class is the matched detection's class (valid only when Detected).
	Class scene.Class
	// Confidence of the matched detection.
	Confidence float64
}

// WrongClass reports whether the frame counts toward PWC for target class t:
// the object was detected *and* classified as t.
func (f FrameResult) WrongClass(t scene.Class) bool {
	return f.Detected && f.Class == t
}

// PWC returns Eq. 3: the percentage of frames classified as the target
// class, in [0,100]. An empty video scores 0.
func PWC(results []FrameResult, target scene.Class) float64 {
	if len(results) == 0 {
		return 0
	}
	wrong := 0
	for _, r := range results {
		if r.WrongClass(target) {
			wrong++
		}
	}
	return 100 * float64(wrong) / float64(len(results))
}

// LongestWrongRun returns the longest streak of consecutive wrong-class
// frames.
func LongestWrongRun(results []FrameResult, target scene.Class) int {
	best, run := 0, 0
	for _, r := range results {
		if r.WrongClass(target) {
			run++
			if run > best {
				best = run
			}
		} else {
			run = 0
		}
	}
	return best
}

// CWC reports whether the detector held the wrong class for at least
// ConsecutiveFrames consecutive frames.
func CWC(results []FrameResult, target scene.Class) bool {
	return LongestWrongRun(results, target) >= ConsecutiveFrames
}

// Score bundles both indicators for one video.
type Score struct {
	PWC        float64
	CWC        bool
	Frames     int
	WrongRun   int
	DetectRate float64 // fraction of frames with any target detection
}

// Evaluate computes the full score of one video's frame results.
func Evaluate(results []FrameResult, target scene.Class) Score {
	det := 0
	for _, r := range results {
		if r.Detected {
			det++
		}
	}
	rate := 0.0
	if len(results) > 0 {
		rate = float64(det) / float64(len(results))
	}
	return Score{
		PWC:        PWC(results, target),
		CWC:        CWC(results, target),
		Frames:     len(results),
		WrongRun:   LongestWrongRun(results, target),
		DetectRate: rate,
	}
}

// String formats a score like the paper's table cells: "78% / ✓".
func (s Score) String() string {
	mark := "✗"
	if s.CWC {
		mark = "✓"
	}
	return fmt.Sprintf("%.0f%% / %s", s.PWC, mark)
}

// Average returns the mean of several runs' scores (the paper averages
// three runs); CWC is majority-voted.
func Average(scores []Score) Score {
	if len(scores) == 0 {
		return Score{}
	}
	var out Score
	cwc := 0
	for _, s := range scores {
		out.PWC += s.PWC
		out.DetectRate += s.DetectRate
		out.Frames += s.Frames
		if s.WrongRun > out.WrongRun {
			out.WrongRun = s.WrongRun
		}
		if s.CWC {
			cwc++
		}
	}
	n := float64(len(scores))
	out.PWC /= n
	out.DetectRate /= n
	out.Frames /= len(scores)
	out.CWC = cwc*2 > len(scores)
	return out
}

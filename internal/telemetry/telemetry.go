// Package telemetry is a dependency-free metrics registry for the serving
// layer: monotonically increasing counters, gauges, and latency histograms,
// exposed in the Prometheus text format so any standard scraper can consume
// GET /metrics. Metric handles are cheap to update from hot paths (atomics
// for counters/gauges, one short mutex for histograms); families support an
// optional fixed label set resolved once at registration time.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels is a fixed label set attached to one metric series.
type Labels map[string]string

// render formats labels in Prometheus `{k="v",...}` form, sorted by key so
// equal sets always produce the same series identity.
func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + `="` + escapeLabelValue(l[k]) + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// escapeLabelValue applies the Prometheus text exposition escaping for
// label values: backslash, double quote, and newline — and nothing else.
// Go's %q is close but wrong: it escapes tabs, non-ASCII, and other control
// bytes into sequences scrapers read literally.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 2)
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative to keep the counter monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefLatencyBuckets are the default histogram bucket bounds in seconds.
var DefLatencyBuckets = []float64{0.005, 0.02, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Histogram tracks a value distribution over fixed cumulative buckets.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64
	counts  []uint64 // one per bound, non-cumulative
	sum     float64
	samples uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sum += v
	h.samples++
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
}

// snapshot returns cumulative bucket counts, the sum, and the sample count.
func (h *Histogram) snapshot() ([]uint64, float64, uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := make([]uint64, len(h.counts))
	var acc uint64
	for i, c := range h.counts {
		acc += c
		cum[i] = acc
	}
	return cum, h.sum, h.samples
}

// series is one (labels, metric) pair within a family.
type series struct {
	labels  string
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// family groups the series sharing one metric name.
type family struct {
	name, help, typ string
	series          []*series
	byLabels        map[string]*series
}

// Registry holds metric families and renders them as Prometheus text.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// lookup returns (creating if needed) the series for name+labels. A
// registration that conflicts with the family's established identity —
// different metric type or different help text — is a descriptive error
// rather than a silent first-writer-wins.
func (r *Registry) lookup(name, help, typ string, labels Labels) (*series, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, byLabels: map[string]*series{}}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	if f.typ != typ {
		return nil, fmt.Errorf("telemetry: metric %q already registered as %s, re-registered as %s", name, f.typ, typ)
	}
	if f.help != help {
		return nil, fmt.Errorf("telemetry: metric %q help redefined: %q vs %q", name, f.help, help)
	}
	key := labels.render()
	s, ok := f.byLabels[key]
	if !ok {
		s = &series{labels: key}
		f.byLabels[key] = s
		f.series = append(f.series, s)
	}
	return s, nil
}

// RegisterCounter returns the counter for name+labels, creating it on first
// use. Re-registration with an identical spec is idempotent and returns the
// same handle; a conflicting spec is an error.
func (r *Registry) RegisterCounter(name, help string, labels Labels) (*Counter, error) {
	s, err := r.lookup(name, help, "counter", labels)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter, nil
}

// RegisterGauge returns the gauge for name+labels, creating it on first
// use. Registering a value gauge over a derived (GaugeFunc) series is an
// error: the function would silently shadow the value at scrape time.
func (r *Registry) RegisterGauge(name, help string, labels Labels) (*Gauge, error) {
	s, err := r.lookup(name, help, "gauge", labels)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.gaugeFn != nil {
		return nil, fmt.Errorf("telemetry: gauge %q%s already registered as a derived gauge (GaugeFunc)", name, s.labels)
	}
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge, nil
}

// RegisterGaugeFunc registers a derived gauge: fn is evaluated at scrape
// time, so the series always reflects the current value of whatever it is
// computed from (e.g. a ratio of two live counters). fn must be safe for
// concurrent use. Registering over an existing function or value gauge is
// an error — two closures cannot be compared for idempotence, and silently
// keeping either one hides a stale-closure bug. Use SetGaugeFunc when
// replacement is the intent (e.g. a re-created component re-binding its
// scrape closure).
func (r *Registry) RegisterGaugeFunc(name, help string, labels Labels, fn func() float64) error {
	if fn == nil {
		return fmt.Errorf("telemetry: nil GaugeFunc for %q", name)
	}
	s, err := r.lookup(name, help, "gauge", labels)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.gaugeFn != nil {
		return fmt.Errorf("telemetry: derived gauge %q%s already registered; use SetGaugeFunc to replace it", name, s.labels)
	}
	if s.gauge != nil {
		return fmt.Errorf("telemetry: gauge %q%s already registered as a value gauge", name, s.labels)
	}
	s.gaugeFn = fn
	return nil
}

// SetGaugeFunc registers or explicitly replaces the derived gauge for
// name+labels. This is the re-bind path for components that are torn down
// and re-created (a fabric backend re-joining re-points the series at the
// new breaker); family type/help conflicts still error.
func (r *Registry) SetGaugeFunc(name, help string, labels Labels, fn func() float64) error {
	if fn == nil {
		return fmt.Errorf("telemetry: nil GaugeFunc for %q", name)
	}
	s, err := r.lookup(name, help, "gauge", labels)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.gauge != nil {
		return fmt.Errorf("telemetry: gauge %q%s already registered as a value gauge", name, s.labels)
	}
	s.gaugeFn = fn
	return nil
}

// RegisterHistogram returns the histogram for name+labels, creating it on
// first use with the given bucket bounds (nil = DefLatencyBuckets).
// Re-registration with different bounds is an error — the original buckets
// would silently keep counting otherwise.
func (r *Registry) RegisterHistogram(name, help string, labels Labels, bounds []float64) (*Histogram, error) {
	s, err := r.lookup(name, help, "histogram", labels)
	if err != nil {
		return nil, err
	}
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	// The exposition format mandates a final +Inf bucket carrying the
	// total sample count; writeSeries appends it. Callers that include
	// +Inf themselves would otherwise produce a duplicate le="+Inf"
	// series, so trailing infinite bounds are dropped here.
	for len(bounds) > 0 && math.IsInf(bounds[len(bounds)-1], 1) {
		bounds = bounds[:len(bounds)-1]
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.hist == nil {
		s.hist = &Histogram{bounds: bounds, counts: make([]uint64, len(bounds))}
		return s.hist, nil
	}
	if !equalBounds(s.hist.bounds, bounds) {
		return nil, fmt.Errorf("telemetry: histogram %q%s bounds redefined: %v vs %v", name, s.labels, s.hist.bounds, bounds)
	}
	return s.hist, nil
}

// equalBounds compares bucket specs bit-for-bit: bounds are configured
// constants, not computed values, so identity — not epsilon closeness —
// is the right notion of "same histogram".
func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// mustRegister turns a registration conflict into a panic for the
// convenience constructors, where a collision is a programming error.
func mustRegister(err error) {
	if err != nil {
		panic("telemetry: " + strings.TrimPrefix(err.Error(), "telemetry: "))
	}
}

// Counter is the panic-on-conflict convenience form of RegisterCounter.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	c, err := r.RegisterCounter(name, help, labels)
	mustRegister(err)
	return c
}

// Gauge is the panic-on-conflict convenience form of RegisterGauge.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	g, err := r.RegisterGauge(name, help, labels)
	mustRegister(err)
	return g
}

// GaugeFunc is the panic-on-conflict convenience form of RegisterGaugeFunc.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	mustRegister(r.RegisterGaugeFunc(name, help, labels, fn))
}

// Histogram is the panic-on-conflict convenience form of RegisterHistogram.
func (r *Registry) Histogram(name, help string, labels Labels, bounds []float64) *Histogram {
	h, err := r.RegisterHistogram(name, help, labels, bounds)
	mustRegister(err)
	return h
}

// WriteText renders every registered family in the Prometheus text
// exposition format.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.series {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch {
	case s.counter != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.counter.Value())
		return err
	case s.gaugeFn != nil:
		_, err := fmt.Fprintf(w, "%s%s %g\n", f.name, s.labels, s.gaugeFn())
		return err
	case s.gauge != nil:
		_, err := fmt.Fprintf(w, "%s%s %g\n", f.name, s.labels, s.gauge.Value())
		return err
	case s.hist != nil:
		cum, sum, n := s.hist.snapshot()
		for i, b := range s.hist.bounds {
			if err := writeBucket(w, f.name, s.labels, fmt.Sprintf("%g", b), cum[i]); err != nil {
				return err
			}
		}
		if err := writeBucket(w, f.name, s.labels, "+Inf", n); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %g\n%s_count%s %d\n", f.name, s.labels, sum, f.name, s.labels, n); err != nil {
			return err
		}
	}
	return nil
}

// writeBucket emits one cumulative histogram bucket, splicing le into any
// existing label set.
func writeBucket(w io.Writer, name, labels, le string, v uint64) error {
	leLabel := `le="` + escapeLabelValue(le) + `"`
	if labels == "" {
		_, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, leLabel, v)
		return err
	}
	inner := strings.TrimSuffix(labels, "}") + "," + leLabel + "}"
	_, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, inner, v)
	return err
}

// Handler serves the registry as a Prometheus scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}

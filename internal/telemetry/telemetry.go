// Package telemetry is a dependency-free metrics registry for the serving
// layer: monotonically increasing counters, gauges, and latency histograms,
// exposed in the Prometheus text format so any standard scraper can consume
// GET /metrics. Metric handles are cheap to update from hot paths (atomics
// for counters/gauges, one short mutex for histograms); families support an
// optional fixed label set resolved once at registration time.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels is a fixed label set attached to one metric series.
type Labels map[string]string

// render formats labels in Prometheus `{k="v",...}` form, sorted by key so
// equal sets always produce the same series identity.
func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + `="` + escapeLabelValue(l[k]) + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// escapeLabelValue applies the Prometheus text exposition escaping for
// label values: backslash, double quote, and newline — and nothing else.
// Go's %q is close but wrong: it escapes tabs, non-ASCII, and other control
// bytes into sequences scrapers read literally.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 2)
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative to keep the counter monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefLatencyBuckets are the default histogram bucket bounds in seconds.
var DefLatencyBuckets = []float64{0.005, 0.02, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Histogram tracks a value distribution over fixed cumulative buckets.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64
	counts  []uint64 // one per bound, non-cumulative
	sum     float64
	samples uint64
	// exemplars has one slot per bound plus a final +Inf slot; nil until
	// the first ObserveExemplar, so plain histograms pay nothing.
	exemplars []Exemplar
}

// Exemplar links one observed sample to the trace that produced it, in the
// OpenMetrics sense: scrape output annotates the bucket the sample landed
// in with `# {trace_id="..."} value`, so a p99 outlier on a dashboard
// resolves directly to a journal trace ID.
type Exemplar struct {
	TraceID string  `json:"trace_id"`
	Value   float64 `json:"value"`
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.observeLocked(v)
}

func (h *Histogram) observeLocked(v float64) int {
	h.sum += v
	h.samples++
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return i
		}
	}
	return len(h.bounds) // the implicit +Inf bucket
}

// ObserveExemplar records one sample and attaches traceID as the bucket's
// exemplar (latest wins: the most recent outlier is the one worth chasing).
// An empty traceID degrades to a plain Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := h.observeLocked(v)
	if traceID == "" {
		return
	}
	if h.exemplars == nil {
		h.exemplars = make([]Exemplar, len(h.bounds)+1)
	}
	h.exemplars[i] = Exemplar{TraceID: traceID, Value: v}
}

// HistSnapshot is a point-in-time copy of a histogram in wire-friendly
// form: cumulative bucket counts (one per bound; the +Inf count is Count),
// the sum, and any bucket exemplars. It is what the fabric Stats frame
// carries from node to gateway, and what the fleet aggregator merges.
type HistSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"` // cumulative, len == len(Bounds)
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
	// Exemplars is indexed by bucket: 0..len(Bounds)-1 for finite buckets,
	// len(Bounds) for +Inf. Empty TraceID means no exemplar. Nil when the
	// histogram has never seen an exemplar.
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// Snapshot returns a copy of the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	snap := HistSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.sum,
		Count:  h.samples,
	}
	var acc uint64
	for i, c := range h.counts {
		acc += c
		snap.Counts[i] = acc
	}
	if h.exemplars != nil {
		snap.Exemplars = append([]Exemplar(nil), h.exemplars...)
	}
	return snap
}

// MergeSnapshots sums histogram snapshots with identical bounds into one
// fleet-wide view. Exemplars merge bucket-wise; when several snapshots
// carry one for the same bucket, the later snapshot in the slice wins, so
// callers should pass snapshots in a deterministic order. Mismatched
// bounds are an error: silently summing differently bucketed histograms
// would fabricate a distribution.
func MergeSnapshots(snaps []HistSnapshot) (HistSnapshot, error) {
	if len(snaps) == 0 {
		return HistSnapshot{}, fmt.Errorf("telemetry: no snapshots to merge")
	}
	var out HistSnapshot
	for i, s := range snaps {
		if i == 0 {
			out.Bounds = append([]float64(nil), s.Bounds...)
			out.Counts = make([]uint64, len(s.Counts))
		} else if !equalBounds(out.Bounds, s.Bounds) {
			return HistSnapshot{}, fmt.Errorf("telemetry: merging histograms with different bounds: %v vs %v", out.Bounds, s.Bounds)
		}
		if len(s.Counts) != len(s.Bounds) {
			return HistSnapshot{}, fmt.Errorf("telemetry: snapshot has %d counts for %d bounds", len(s.Counts), len(s.Bounds))
		}
		for j, c := range s.Counts {
			out.Counts[j] += c
		}
		out.Sum += s.Sum
		out.Count += s.Count
		for j, e := range s.Exemplars {
			if e.TraceID == "" || j > len(out.Bounds) {
				continue
			}
			if out.Exemplars == nil {
				out.Exemplars = make([]Exemplar, len(out.Bounds)+1)
			}
			out.Exemplars[j] = e
		}
	}
	return out, nil
}

// series is one (labels, metric) pair within a family.
type series struct {
	labels  string
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// family groups the series sharing one metric name.
type family struct {
	name, help, typ string
	series          []*series
	byLabels        map[string]*series
}

// Registry holds metric families and renders them as Prometheus text.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// lookup returns (creating if needed) the series for name+labels. A
// registration that conflicts with the family's established identity —
// different metric type or different help text — is a descriptive error
// rather than a silent first-writer-wins.
func (r *Registry) lookup(name, help, typ string, labels Labels) (*series, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, byLabels: map[string]*series{}}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	if f.typ != typ {
		return nil, fmt.Errorf("telemetry: metric %q already registered as %s, re-registered as %s", name, f.typ, typ)
	}
	if f.help != help {
		return nil, fmt.Errorf("telemetry: metric %q help redefined: %q vs %q", name, f.help, help)
	}
	key := labels.render()
	s, ok := f.byLabels[key]
	if !ok {
		s = &series{labels: key}
		f.byLabels[key] = s
		f.series = append(f.series, s)
	}
	return s, nil
}

// RegisterCounter returns the counter for name+labels, creating it on first
// use. Re-registration with an identical spec is idempotent and returns the
// same handle; a conflicting spec is an error.
func (r *Registry) RegisterCounter(name, help string, labels Labels) (*Counter, error) {
	s, err := r.lookup(name, help, "counter", labels)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter, nil
}

// RegisterGauge returns the gauge for name+labels, creating it on first
// use. Registering a value gauge over a derived (GaugeFunc) series is an
// error: the function would silently shadow the value at scrape time.
func (r *Registry) RegisterGauge(name, help string, labels Labels) (*Gauge, error) {
	s, err := r.lookup(name, help, "gauge", labels)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.gaugeFn != nil {
		return nil, fmt.Errorf("telemetry: gauge %q%s already registered as a derived gauge (GaugeFunc)", name, s.labels)
	}
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge, nil
}

// RegisterGaugeFunc registers a derived gauge: fn is evaluated at scrape
// time, so the series always reflects the current value of whatever it is
// computed from (e.g. a ratio of two live counters). fn must be safe for
// concurrent use. Registering over an existing function or value gauge is
// an error — two closures cannot be compared for idempotence, and silently
// keeping either one hides a stale-closure bug. Use SetGaugeFunc when
// replacement is the intent (e.g. a re-created component re-binding its
// scrape closure).
func (r *Registry) RegisterGaugeFunc(name, help string, labels Labels, fn func() float64) error {
	if fn == nil {
		return fmt.Errorf("telemetry: nil GaugeFunc for %q", name)
	}
	s, err := r.lookup(name, help, "gauge", labels)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.gaugeFn != nil {
		return fmt.Errorf("telemetry: derived gauge %q%s already registered; use SetGaugeFunc to replace it", name, s.labels)
	}
	if s.gauge != nil {
		return fmt.Errorf("telemetry: gauge %q%s already registered as a value gauge", name, s.labels)
	}
	s.gaugeFn = fn
	return nil
}

// SetGaugeFunc registers or explicitly replaces the derived gauge for
// name+labels. This is the re-bind path for components that are torn down
// and re-created (a fabric backend re-joining re-points the series at the
// new breaker); family type/help conflicts still error.
func (r *Registry) SetGaugeFunc(name, help string, labels Labels, fn func() float64) error {
	if fn == nil {
		return fmt.Errorf("telemetry: nil GaugeFunc for %q", name)
	}
	s, err := r.lookup(name, help, "gauge", labels)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.gauge != nil {
		return fmt.Errorf("telemetry: gauge %q%s already registered as a value gauge", name, s.labels)
	}
	s.gaugeFn = fn
	return nil
}

// RegisterHistogram returns the histogram for name+labels, creating it on
// first use with the given bucket bounds (nil = DefLatencyBuckets).
// Re-registration with different bounds is an error — the original buckets
// would silently keep counting otherwise.
func (r *Registry) RegisterHistogram(name, help string, labels Labels, bounds []float64) (*Histogram, error) {
	s, err := r.lookup(name, help, "histogram", labels)
	if err != nil {
		return nil, err
	}
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	// The exposition format mandates a final +Inf bucket carrying the
	// total sample count; writeSeries appends it. Callers that include
	// +Inf themselves would otherwise produce a duplicate le="+Inf"
	// series, so trailing infinite bounds are dropped here.
	for len(bounds) > 0 && math.IsInf(bounds[len(bounds)-1], 1) {
		bounds = bounds[:len(bounds)-1]
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.hist == nil {
		s.hist = &Histogram{bounds: bounds, counts: make([]uint64, len(bounds))}
		return s.hist, nil
	}
	if !equalBounds(s.hist.bounds, bounds) {
		return nil, fmt.Errorf("telemetry: histogram %q%s bounds redefined: %v vs %v", name, s.labels, s.hist.bounds, bounds)
	}
	return s.hist, nil
}

// equalBounds compares bucket specs bit-for-bit: bounds are configured
// constants, not computed values, so identity — not epsilon closeness —
// is the right notion of "same histogram".
func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// mustRegister turns a registration conflict into a panic for the
// convenience constructors, where a collision is a programming error.
func mustRegister(err error) {
	if err != nil {
		panic("telemetry: " + strings.TrimPrefix(err.Error(), "telemetry: "))
	}
}

// Counter is the panic-on-conflict convenience form of RegisterCounter.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	c, err := r.RegisterCounter(name, help, labels)
	mustRegister(err)
	return c
}

// Gauge is the panic-on-conflict convenience form of RegisterGauge.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	g, err := r.RegisterGauge(name, help, labels)
	mustRegister(err)
	return g
}

// GaugeFunc is the panic-on-conflict convenience form of RegisterGaugeFunc.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	mustRegister(r.RegisterGaugeFunc(name, help, labels, fn))
}

// Histogram is the panic-on-conflict convenience form of RegisterHistogram.
func (r *Registry) Histogram(name, help string, labels Labels, bounds []float64) *Histogram {
	h, err := r.RegisterHistogram(name, help, labels, bounds)
	mustRegister(err)
	return h
}

// WriteText renders every registered family in the Prometheus text
// exposition format.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.series {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch {
	case s.counter != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.counter.Value())
		return err
	case s.gaugeFn != nil:
		_, err := fmt.Fprintf(w, "%s%s %g\n", f.name, s.labels, s.gaugeFn())
		return err
	case s.gauge != nil:
		_, err := fmt.Fprintf(w, "%s%s %g\n", f.name, s.labels, s.gauge.Value())
		return err
	case s.hist != nil:
		return writeHistSnapshot(w, f.name, s.labels, s.hist.Snapshot())
	}
	return nil
}

// WriteSnapshot renders a standalone histogram snapshot as one full text
// family (HELP/TYPE, buckets, sum, count). The gateway's fleet aggregator
// uses it to expose merged per-backend histograms that no local *Histogram
// backs.
func WriteSnapshot(w io.Writer, name, help string, labels Labels, snap HistSnapshot) error {
	if err := WriteFamilyHeader(w, name, help); err != nil {
		return err
	}
	return WriteSnapshotSeries(w, name, labels, snap)
}

// WriteFamilyHeader emits the HELP/TYPE preamble for a standalone histogram
// family. Callers rendering several label sets under one name (one series
// per stage, say) write the header once and then WriteSnapshotSeries per
// label set — the exposition format allows each family name only one
// HELP/TYPE pair.
func WriteFamilyHeader(w io.Writer, name, help string) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	return err
}

// WriteSnapshotSeries renders one histogram series (buckets, sum, count)
// without the family header.
func WriteSnapshotSeries(w io.Writer, name string, labels Labels, snap HistSnapshot) error {
	return writeHistSnapshot(w, name, labels.render(), snap)
}

func writeHistSnapshot(w io.Writer, name, labels string, snap HistSnapshot) error {
	exemplar := func(i int) *Exemplar {
		if i < len(snap.Exemplars) && snap.Exemplars[i].TraceID != "" {
			return &snap.Exemplars[i]
		}
		return nil
	}
	for i, b := range snap.Bounds {
		if err := writeBucket(w, name, labels, fmt.Sprintf("%g", b), snap.Counts[i], exemplar(i)); err != nil {
			return err
		}
	}
	if err := writeBucket(w, name, labels, "+Inf", snap.Count, exemplar(len(snap.Bounds))); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum%s %g\n%s_count%s %d\n", name, labels, snap.Sum, name, labels, snap.Count)
	return err
}

// writeBucket emits one cumulative histogram bucket, splicing le into any
// existing label set. A non-nil exemplar appends the OpenMetrics-style
// annotation `# {trace_id="..."} value`; buckets without exemplars render
// exactly as before, so plain scrapes are byte-unchanged.
func writeBucket(w io.Writer, name, labels, le string, v uint64, ex *Exemplar) error {
	leLabel := `le="` + escapeLabelValue(le) + `"`
	var line string
	if labels == "" {
		line = fmt.Sprintf("%s_bucket{%s} %d", name, leLabel, v)
	} else {
		inner := strings.TrimSuffix(labels, "}") + "," + leLabel + "}"
		line = fmt.Sprintf("%s_bucket%s %d", name, inner, v)
	}
	if ex != nil {
		line += fmt.Sprintf(" # {trace_id=\"%s\"} %g", escapeLabelValue(ex.TraceID), ex.Value)
	}
	_, err := fmt.Fprintln(w, line)
	return err
}

// Handler serves the registry as a Prometheus scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}

package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total", "total requests", Labels{"endpoint": "detect", "code": "200"}).Add(3)
	r.Counter("requests_total", "total requests", Labels{"code": "429", "endpoint": "evaluate"}).Inc()
	r.Gauge("queue_depth", "jobs queued", nil).Set(2)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE requests_total counter",
		`requests_total{code="200",endpoint="detect"} 3`,
		`requests_total{code="429",endpoint="evaluate"} 1`,
		"# TYPE queue_depth gauge",
		"queue_depth 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestCounterHandleIsStable(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits", "h", nil)
	b := r.Counter("hits", "h", nil)
	if a != b {
		t.Fatal("same name+labels should return the same counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatalf("value = %d, want 1", b.Value())
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "latency", nil, []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.6)
	h.Observe(5) // above every bound: only +Inf

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="+Inf"} 4`,
		"latency_seconds_sum 6.15",
		"latency_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramLabelsGetLeSpliced(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "l", Labels{"endpoint": "detect"}, []float64{1})
	h.Observe(0.5)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `lat_bucket{endpoint="detect",le="1"} 1`) {
		t.Fatalf("bad labeled bucket:\n%s", sb.String())
	}
}

func TestLabelValueEscaping(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"plain", "detect", "detect"},
		{"backslash", `C:\path`, `C:\\path`},
		{"quote", `say "hi"`, `say \"hi\"`},
		{"newline", "line1\nline2", `line1\nline2`},
		{"all three", "a\\b\"c\nd", `a\\b\"c\nd`},
		// Only \ " \n are escaped in the exposition format: tabs and
		// non-ASCII pass through verbatim (Go's %q would mangle both).
		{"tab untouched", "a\tb", "a\tb"},
		{"utf8 untouched", "héllo", "héllo"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := escapeLabelValue(tc.in); got != tc.want {
				t.Fatalf("escapeLabelValue(%q) = %q, want %q", tc.in, got, tc.want)
			}
			r := NewRegistry()
			r.Counter("m", "m", Labels{"v": tc.in}).Inc()
			var sb strings.Builder
			if err := r.WriteText(&sb); err != nil {
				t.Fatal(err)
			}
			line := `m{v="` + tc.want + `"} 1`
			if !strings.Contains(sb.String(), line) {
				t.Fatalf("exposition missing %q:\n%s", line, sb.String())
			}
		})
	}
}

func TestHistogramTrailingInfBoundDeduped(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "l", nil, []float64{0.5, math.Inf(1)})
	h.Observe(0.1)
	h.Observe(2)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if got := strings.Count(out, `le="+Inf"`); got != 1 {
		t.Fatalf("want exactly one +Inf bucket, got %d:\n%s", got, out)
	}
	for _, want := range []string{
		`lat_bucket{le="0.5"} 1`,
		`lat_bucket{le="+Inf"} 2`,
		"lat_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramInfBucketCountsEverything(t *testing.T) {
	// The +Inf bucket must equal the total sample count even when samples
	// exceed every finite bound.
	r := NewRegistry()
	h := r.Histogram("lat2", "l", nil, []float64{0.1})
	for i := 0; i < 5; i++ {
		h.Observe(100)
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`lat2_bucket{le="0.1"} 0`,
		`lat2_bucket{le="+Inf"} 5`,
		"lat2_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c", "c", nil).Inc()
				r.Gauge("g", "g", nil).Add(1)
				r.Histogram("h", "h", nil, nil).Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if v := r.Counter("c", "c", nil).Value(); v != 8000 {
		t.Fatalf("counter = %d, want 8000", v)
	}
	if v := r.Gauge("g", "g", nil).Value(); v != 8000 {
		t.Fatalf("gauge = %g, want 8000", v)
	}
	if n := r.Histogram("h", "h", nil, nil).Snapshot().Count; n != 8000 {
		t.Fatalf("histogram count = %d, want 8000", n)
	}
}

func TestGaugeFuncDerivedAtScrape(t *testing.T) {
	r := NewRegistry()
	hits := r.Counter("cache_hits_total", "h", nil)
	misses := r.Counter("cache_misses_total", "m", nil)
	r.GaugeFunc("cache_hit_ratio", "derived hit ratio", nil, func() float64 {
		h, m := hits.Value(), misses.Value()
		if h+m == 0 {
			return 0
		}
		return float64(h) / float64(h+m)
	})

	scrape := func() string {
		var sb strings.Builder
		if err := r.WriteText(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if out := scrape(); !strings.Contains(out, "cache_hit_ratio 0\n") {
		t.Fatalf("empty counters should scrape as 0:\n%s", out)
	}
	hits.Add(3)
	misses.Inc()
	// The function is evaluated at scrape time, not registration time.
	out := scrape()
	for _, want := range []string{"# TYPE cache_hit_ratio gauge", "cache_hit_ratio 0.75"} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestGaugeFuncNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil GaugeFunc should panic at registration")
		}
	}()
	NewRegistry().GaugeFunc("broken", "b", nil, nil)
}

// TestRegistrationCollisions: conflicting re-registrations must fail with a
// descriptive error, never silently shadow the established series. The
// matching spec is always idempotent.
func TestRegistrationCollisions(t *testing.T) {
	r := NewRegistry()
	if _, err := r.RegisterCounter("m", "help", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RegisterCounter("m", "help", nil); err != nil {
		t.Fatalf("idempotent re-registration errored: %v", err)
	}
	if _, err := r.RegisterGauge("m", "help", nil); err == nil || !strings.Contains(err.Error(), "already registered as counter") {
		t.Fatalf("type collision not reported: %v", err)
	}
	if _, err := r.RegisterCounter("m", "different help", nil); err == nil || !strings.Contains(err.Error(), "help redefined") {
		t.Fatalf("help collision not reported: %v", err)
	}

	if _, err := r.RegisterHistogram("lat", "h", nil, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RegisterHistogram("lat", "h", nil, []float64{1, 2}); err != nil {
		t.Fatalf("same-bounds histogram re-registration errored: %v", err)
	}
	if _, err := r.RegisterHistogram("lat", "h", nil, []float64{1, 2, 5}); err == nil || !strings.Contains(err.Error(), "bounds redefined") {
		t.Fatalf("bounds collision not reported: %v", err)
	}

	fn := func() float64 { return 1 }
	if err := r.RegisterGaugeFunc("derived", "d", nil, fn); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterGaugeFunc("derived", "d", nil, fn); err == nil || !strings.Contains(err.Error(), "use SetGaugeFunc") {
		t.Fatalf("duplicate GaugeFunc not reported: %v", err)
	}
	if _, err := r.RegisterGauge("derived", "d", nil); err == nil || !strings.Contains(err.Error(), "derived gauge") {
		t.Fatalf("value-gauge-over-func collision not reported: %v", err)
	}
	if err := r.SetGaugeFunc("derived", "d", nil, func() float64 { return 2 }); err != nil {
		t.Fatalf("explicit SetGaugeFunc replacement errored: %v", err)
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "derived 2") {
		t.Fatalf("SetGaugeFunc did not replace the closure:\n%s", sb.String())
	}

	if _, err := r.RegisterGauge("plain", "p", nil); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterGaugeFunc("plain", "p", nil, fn); err == nil || !strings.Contains(err.Error(), "value gauge") {
		t.Fatalf("func-over-value-gauge collision not reported: %v", err)
	}

	// The panic-on-conflict convenience form carries the same message.
	defer func() {
		rec := recover()
		if rec == nil || !strings.Contains(rec.(string), "already registered as counter") {
			t.Fatalf("convenience wrapper should panic with the descriptive error, got %v", rec)
		}
	}()
	r.Gauge("m", "help", nil)
}

func TestHistogramExemplarExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("stage_seconds", "stage latency", Labels{"stage": "forward"}, []float64{0.1, 1})
	h.ObserveExemplar(0.05, "gw:gateway_request#0")
	h.ObserveExemplar(0.5, "gw:gateway_request#1")
	h.Observe(0.6) // plain observation must not disturb the bucket exemplar

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`stage_seconds_bucket{stage="forward",le="0.1"} 1 # {trace_id="gw:gateway_request#0"} 0.05`,
		`stage_seconds_bucket{stage="forward",le="1"} 3 # {trace_id="gw:gateway_request#1"} 0.5`,
		`stage_seconds_bucket{stage="forward",le="+Inf"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramWithoutExemplarsByteUnchanged(t *testing.T) {
	render := func(observe func(h *Histogram)) string {
		r := NewRegistry()
		h := r.Histogram("h", "h", nil, []float64{1})
		observe(h)
		var sb strings.Builder
		if err := r.WriteText(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	plain := render(func(h *Histogram) { h.Observe(0.5) })
	empty := render(func(h *Histogram) { h.ObserveExemplar(0.5, "") })
	if plain != empty {
		t.Fatalf("empty-trace exemplar changed exposition:\n%s\n---\n%s", plain, empty)
	}
	if strings.Contains(plain, "#") && strings.Contains(plain, "trace_id") {
		t.Fatalf("plain exposition leaked exemplar syntax:\n%s", plain)
	}
}

func TestHistogramExemplarLatestWins(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "h", nil, []float64{1})
	h.ObserveExemplar(0.2, "trace-a")
	h.ObserveExemplar(0.3, "trace-b")
	s := h.Snapshot()
	if s.Exemplars[0].TraceID != "trace-b" || s.Exemplars[0].Value != 0.3 {
		t.Fatalf("bucket exemplar = %+v, want latest (trace-b)", s.Exemplars[0])
	}
}

func TestMergeSnapshots(t *testing.T) {
	mk := func(traceID string, vals ...float64) HistSnapshot {
		r := NewRegistry()
		h := r.Histogram("h", "h", nil, []float64{0.1, 1})
		for _, v := range vals {
			h.ObserveExemplar(v, traceID)
		}
		return h.Snapshot()
	}
	a := mk("node-a", 0.05, 0.5)
	b := mk("node-b", 0.06, 5)

	m, err := MergeSnapshots([]HistSnapshot{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if m.Count != 4 {
		t.Fatalf("merged count = %d, want 4", m.Count)
	}
	if got, want := m.Sum, 0.05+0.5+0.06+5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("merged sum = %v, want %v", got, want)
	}
	// Cumulative buckets: le=0.1 holds 2 (0.05, 0.06), le=1 holds 3.
	if m.Counts[0] != 2 || m.Counts[1] != 3 {
		t.Fatalf("merged cumulative counts = %v", m.Counts)
	}
	// Later snapshot's exemplar wins per bucket where both have one.
	if m.Exemplars[0].TraceID != "node-b" {
		t.Fatalf("bucket-0 exemplar = %+v, want node-b's", m.Exemplars[0])
	}
	// Bucket 1 only a touched: a's exemplar survives.
	if m.Exemplars[1].TraceID != "node-a" {
		t.Fatalf("bucket-1 exemplar = %+v, want node-a's", m.Exemplars[1])
	}

	if _, err := MergeSnapshots(nil); err == nil {
		t.Fatal("MergeSnapshots(nil) should error")
	}
	c := HistSnapshot{Bounds: []float64{0.5}, Counts: []uint64{0}}
	if _, err := MergeSnapshots([]HistSnapshot{a, c}); err == nil {
		t.Fatal("mismatched bounds should error")
	}
}

package fabric

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"roadtrojan/internal/serve"
)

// errBackendDown marks a transport-level failure (dial refused, connection
// died mid-job). Evaluation jobs are idempotent — pure functions of
// (patch, scene, seed) — so the gateway is free to re-dispatch.
var errBackendDown = errors.New("fabric: backend down")

// jobFailedError is a node-reported job failure (an Error frame).
type jobFailedError struct {
	code       string
	msg        string
	retryAfter int
}

func (e *jobFailedError) Error() string { return "fabric: node error " + e.code + ": " + e.msg }

// backend manages the gateway's relationship with one node: a persistent
// framed connection with automatic redial, the pending-job table, and the
// node's last health report.
type backend struct {
	g    *Gateway
	addr string

	mu       sync.Mutex
	conn     net.Conn
	writeMu  sync.Mutex
	pending  map[uint64]*pendingJob
	up       bool
	draining bool // node announced Drain
	removed  bool // RemoveNode called: stop redialing
	health   Health
	lastSeen time.Time

	removedCh chan struct{} // closed on remove, wakes the redial wait
	done      chan struct{} // closed when runLoop exits
}

type pendingJob struct {
	acked bool
	done  chan jobReply // buffered 1
}

type jobReply struct {
	payload []byte
	jerr    *JobError
	err     error
}

func newBackend(g *Gateway, addr string) *backend {
	return &backend{
		g:         g,
		addr:      addr,
		pending:   map[uint64]*pendingJob{},
		removedCh: make(chan struct{}),
		done:      make(chan struct{}),
	}
}

// runLoop dials the node, pumps frames until the connection dies, and
// redials with bounded backoff until the backend is removed or the gateway
// closes.
func (b *backend) runLoop() {
	defer close(b.done)
	backoff := b.g.cfg.RedialBackoff
	for {
		if b.isGone() {
			return
		}
		conn, err := b.g.cfg.Dial(b.addr)
		if err != nil {
			select {
			case <-b.g.clock.After(backoff):
			case <-b.removedCh:
				return
			case <-b.g.closed:
				return
			}
			if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
			continue
		}
		backoff = b.g.cfg.RedialBackoff
		b.attach(conn)
		b.readLoop(conn)
		b.detach(conn)
	}
}

func (b *backend) isGone() bool {
	select {
	case <-b.removedCh:
		return true
	case <-b.g.closed:
		return true
	default:
		return false
	}
}

func (b *backend) attach(conn net.Conn) {
	b.mu.Lock()
	b.conn = conn
	b.up = true
	b.draining = false
	b.lastSeen = b.g.clock.Now()
	b.mu.Unlock()
	b.g.backendUp(b.addr, true)
}

// detach fails every pending job with errBackendDown so dispatch can retry
// them on the next ring owner immediately.
func (b *backend) detach(conn net.Conn) {
	conn.Close()
	b.mu.Lock()
	if b.conn == conn {
		b.conn = nil
		b.up = false
	}
	orphans := make([]*pendingJob, 0, len(b.pending))
	for id, pj := range b.pending {
		orphans = append(orphans, pj)
		delete(b.pending, id)
	}
	b.mu.Unlock()
	b.g.backendUp(b.addr, false)
	for _, pj := range orphans {
		pj.done <- jobReply{err: errBackendDown}
	}
}

// readLoop decodes node frames until the connection fails.
func (b *backend) readLoop(conn net.Conn) {
	for {
		f, err := ReadFrame(conn)
		if err != nil {
			if errors.Is(err, ErrBadFrame) {
				b.g.decodeErrors.Inc()
			}
			return
		}
		b.mu.Lock()
		b.lastSeen = b.g.clock.Now()
		b.mu.Unlock()
		switch f.Type {
		case FrameHello, FrameHealth:
			var h Health
			if err := json.Unmarshal(f.Payload, &h); err != nil {
				b.g.decodeErrors.Inc()
				continue
			}
			b.mu.Lock()
			b.health = h
			b.mu.Unlock()
			if h.Draining {
				b.markDraining()
			}
		case FrameAck:
			b.mu.Lock()
			if pj := b.pending[f.JobID]; pj != nil {
				pj.acked = true
			}
			b.mu.Unlock()
		case FrameResult:
			b.deliver(f.JobID, jobReply{payload: f.Payload})
		case FrameError:
			var je JobError
			if err := json.Unmarshal(f.Payload, &je); err != nil {
				b.g.decodeErrors.Inc()
				je = JobError{Code: CodeInternal, Error: "undecodable error frame"}
			}
			b.deliver(f.JobID, jobReply{jerr: &je})
		case FrameDrain:
			b.markDraining()
		}
	}
}

// markDraining takes the node out of routing; the gateway keeps the
// connection until its pending jobs drain (graceful leave).
func (b *backend) markDraining() {
	b.mu.Lock()
	already := b.draining
	b.draining = true
	b.mu.Unlock()
	if !already {
		b.g.nodeDraining(b.addr)
	}
}

func (b *backend) deliver(id uint64, r jobReply) {
	b.mu.Lock()
	pj := b.pending[id]
	delete(b.pending, id)
	closeIdle := b.removed && len(b.pending) == 0
	conn := b.conn
	b.mu.Unlock()
	if pj != nil {
		pj.done <- r
	}
	// A removed backend lingers only for its in-flight jobs; the last
	// result closes the connection (graceful leave with in-flight drain).
	if closeIdle && conn != nil {
		conn.Close()
	}
}

// available reports whether dispatch may route new jobs here.
func (b *backend) available(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.up || b.draining || b.removed {
		return false
	}
	return now.Sub(b.lastSeen) <= b.g.cfg.HeartbeatTimeout
}

// snapshot returns the last health report and liveness for /healthz.
func (b *backend) snapshot() (Health, bool, time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.health, b.up && !b.draining && !b.removed, b.lastSeen
}

// remove initiates a graceful leave: no new jobs, redial stops, and the
// connection closes as soon as the pending table is empty.
func (b *backend) remove() {
	b.mu.Lock()
	if b.removed {
		b.mu.Unlock()
		return
	}
	b.removed = true
	idle := len(b.pending) == 0
	conn := b.conn
	b.mu.Unlock()
	close(b.removedCh)
	if idle && conn != nil {
		conn.Close()
	}
}

// roundTrip sends one job and blocks for its reply.
func (b *backend) roundTrip(ctx context.Context, req serve.EvalRequest) ([]byte, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("%w: encode job: %v", serve.ErrBadRequest, err)
	}
	id := b.g.jobSeq.Add(1)
	pj := &pendingJob{done: make(chan jobReply, 1)}

	b.mu.Lock()
	if !b.up || b.conn == nil {
		b.mu.Unlock()
		return nil, errBackendDown
	}
	conn := b.conn
	b.pending[id] = pj
	b.mu.Unlock()

	b.writeMu.Lock()
	err = WriteFrame(conn, Frame{Type: FrameJob, JobID: id, Payload: payload})
	b.writeMu.Unlock()
	if err != nil {
		b.forget(id)
		conn.Close() // wake the read loop; detach fails the rest
		return nil, errBackendDown
	}

	select {
	case r := <-pj.done:
		switch {
		case r.err != nil:
			return nil, r.err
		case r.jerr != nil:
			return nil, &jobFailedError{code: r.jerr.Code, msg: r.jerr.Error, retryAfter: r.jerr.RetryAfter}
		default:
			return r.payload, nil
		}
	case <-ctx.Done():
		b.forget(id)
		return nil, ctx.Err()
	}
}

func (b *backend) forget(id uint64) {
	b.mu.Lock()
	delete(b.pending, id)
	b.mu.Unlock()
}

package fabric

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"roadtrojan/internal/serve"
	"roadtrojan/internal/telemetry"
)

// errBackendDown marks a transport-level failure (dial refused, connection
// died mid-job). Evaluation jobs are idempotent — pure functions of
// (patch, scene, seed) — so the gateway is free to re-dispatch.
var errBackendDown = errors.New("fabric: backend down")

// jobFailedError is a node-reported job failure (an Error frame).
type jobFailedError struct {
	code       string
	msg        string
	retryAfter int
}

func (e *jobFailedError) Error() string { return "fabric: node error " + e.code + ": " + e.msg }

// backend manages the gateway's relationship with one node: a persistent
// framed connection with automatic redial, the pending-job table, and the
// node's last health report.
type backend struct {
	g       *Gateway
	addr    string
	breaker *breaker

	mu       sync.Mutex
	conn     net.Conn
	writeMu  sync.Mutex
	pending  map[uint64]*pendingJob
	up       bool
	draining bool // node announced Drain
	removed  bool // RemoveNode called: stop redialing
	health   Health
	stats    map[string]telemetry.HistSnapshot // latest FrameStats payload
	lastSeen time.Time

	removedCh chan struct{} // closed on remove, wakes the redial wait
	done      chan struct{} // closed when runLoop exits
}

type pendingJob struct {
	acked bool
	done  chan jobReply // buffered 1
}

type jobReply struct {
	payload []byte
	jerr    *JobError
	err     error
}

func newBackend(g *Gateway, addr string) *backend {
	b := &backend{
		g:    g,
		addr: addr,
		breaker: newBreaker(g.cfg.BreakerThreshold, g.cfg.BreakerCooldown, g.clock,
			g.reg.Counter("fabric_gateway_breaker_opens_total", "breaker closed→open transitions per backend",
				telemetry.Labels{"node": addr})),
		pending:   map[uint64]*pendingJob{},
		removedCh: make(chan struct{}),
		done:      make(chan struct{}),
	}
	// A node that leaves and re-joins gets a fresh backend (and breaker);
	// SetGaugeFunc explicitly re-points the series at the new breaker's
	// state instead of silently shadowing or erroring on the duplicate.
	if err := g.reg.SetGaugeFunc("fabric_gateway_breaker_state", "per-backend circuit breaker state (0 closed, 1 open, 2 half-open)",
		telemetry.Labels{"node": addr}, b.breaker.stateValue); err != nil {
		panic("fabric: breaker gauge registration: " + err.Error())
	}
	return b
}

// runLoop dials the node, completes the Hello handshake, pumps frames
// until the connection dies, and redials with bounded backoff — gated by
// the circuit breaker, so a persistently failing peer costs one probe per
// cooldown instead of a dial every backoff tick.
func (b *backend) runLoop() {
	defer close(b.done)
	backoff := b.g.cfg.RedialBackoff
	wait := func(d time.Duration) bool {
		select {
		case <-b.g.clock.After(d):
			return true
		case <-b.removedCh:
			return false
		case <-b.g.closed:
			return false
		}
	}
	for {
		if b.isGone() {
			return
		}
		if ok, cooldown := b.breaker.ready(); !ok {
			if !wait(cooldown) {
				return
			}
			continue
		}
		conn, err := b.g.cfg.Dial(b.addr)
		if err == nil {
			var h Health
			h, err = b.awaitHello(conn)
			if err != nil {
				conn.Close()
			} else {
				b.breaker.success()
				backoff = b.g.cfg.RedialBackoff
				b.attach(conn, h)
				b.readLoop(conn)
				b.detach(conn)
				if b.isGone() {
					return
				}
				// The connection died underneath us: one breaker strike.
				b.breaker.failure()
				continue
			}
		}
		b.breaker.failure()
		if !wait(backoff) {
			return
		}
		if backoff *= 2; backoff > time.Second {
			backoff = time.Second
		}
	}
}

// awaitHello reads the node's mandatory Hello frame, bounded by
// HelloTimeout so a peer that accepts the dial but never speaks (or
// trickles bytes slow-loris style) cannot hold the slot indefinitely. The
// bound is a real read deadline on the socket — wall time by necessity —
// which also keeps it effective under the virtual test clock.
func (b *backend) awaitHello(conn net.Conn) (Health, error) {
	if d := b.g.cfg.HelloTimeout; d > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(d))
		defer func() { _ = conn.SetReadDeadline(time.Time{}) }()
	}
	f, err := ReadFrame(conn)
	if err != nil {
		if errors.Is(err, ErrBadFrame) {
			b.g.decodeErrors.Inc()
		}
		return Health{}, fmt.Errorf("fabric: hello from %s: %w", b.addr, err)
	}
	if f.Type != FrameHello {
		return Health{}, fmt.Errorf("fabric: hello from %s: unexpected frame type %d", b.addr, f.Type)
	}
	var h Health
	if err := json.Unmarshal(f.Payload, &h); err != nil {
		b.g.decodeErrors.Inc()
		return Health{}, fmt.Errorf("fabric: hello from %s: bad payload: %v", b.addr, err)
	}
	return h, nil
}

func (b *backend) isGone() bool {
	select {
	case <-b.removedCh:
		return true
	case <-b.g.closed:
		return true
	default:
		return false
	}
}

// attach marks the backend routable. The Hello health report h was already
// consumed by the handshake, so it is recorded here.
func (b *backend) attach(conn net.Conn, h Health) {
	b.mu.Lock()
	b.conn = conn
	b.up = true
	b.draining = false
	b.health = h
	b.lastSeen = b.g.clock.Now()
	b.mu.Unlock()
	b.g.backendUp(b.addr, true)
	if h.Draining {
		b.markDraining()
	}
}

// detach fails every pending job with errBackendDown so dispatch can retry
// them on the next ring owner immediately.
func (b *backend) detach(conn net.Conn) {
	conn.Close()
	b.mu.Lock()
	if b.conn == conn {
		b.conn = nil
		b.up = false
	}
	orphans := make([]*pendingJob, 0, len(b.pending))
	for id, pj := range b.pending {
		orphans = append(orphans, pj)
		delete(b.pending, id)
	}
	b.mu.Unlock()
	b.g.backendUp(b.addr, false)
	for _, pj := range orphans {
		pj.done <- jobReply{err: errBackendDown}
	}
}

// readLoop decodes node frames until the connection fails.
func (b *backend) readLoop(conn net.Conn) {
	for {
		f, err := ReadFrame(conn)
		if err != nil {
			if errors.Is(err, ErrBadFrame) {
				b.g.decodeErrors.Inc()
			}
			return
		}
		b.mu.Lock()
		b.lastSeen = b.g.clock.Now()
		b.mu.Unlock()
		switch f.Type {
		case FrameHello, FrameHealth:
			var h Health
			if err := json.Unmarshal(f.Payload, &h); err != nil {
				b.g.decodeErrors.Inc()
				continue
			}
			b.mu.Lock()
			b.health = h
			b.mu.Unlock()
			if h.Draining {
				b.markDraining()
			}
		case FrameAck:
			b.mu.Lock()
			if pj := b.pending[f.JobID]; pj != nil {
				pj.acked = true
			}
			b.mu.Unlock()
		case FrameResult:
			b.deliver(f.JobID, jobReply{payload: f.Payload})
		case FrameError:
			var je JobError
			if err := json.Unmarshal(f.Payload, &je); err != nil {
				b.g.decodeErrors.Inc()
				je = JobError{Code: CodeInternal, Error: "undecodable error frame"}
			}
			b.deliver(f.JobID, jobReply{jerr: &je})
		case FrameDrain:
			b.markDraining()
		case FrameStats:
			var sp StatsPayload
			if err := json.Unmarshal(f.Payload, &sp); err != nil {
				b.g.decodeErrors.Inc()
				continue
			}
			b.mu.Lock()
			b.stats = sp.Stages
			b.mu.Unlock()
		}
	}
}

// stageStats returns the node's last pushed stage snapshots (nil before the
// first Stats frame).
func (b *backend) stageStats() map[string]telemetry.HistSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// markDraining takes the node out of routing; the gateway keeps the
// connection until its pending jobs drain (graceful leave).
func (b *backend) markDraining() {
	b.mu.Lock()
	already := b.draining
	b.draining = true
	b.mu.Unlock()
	if !already {
		b.g.nodeDraining(b.addr)
	}
}

func (b *backend) deliver(id uint64, r jobReply) {
	b.mu.Lock()
	pj := b.pending[id]
	delete(b.pending, id)
	closeIdle := b.removed && len(b.pending) == 0
	conn := b.conn
	b.mu.Unlock()
	if pj != nil {
		pj.done <- r
	}
	// A removed backend lingers only for its in-flight jobs; the last
	// result closes the connection (graceful leave with in-flight drain).
	if closeIdle && conn != nil {
		conn.Close()
	}
}

// available reports whether dispatch may route new jobs here.
func (b *backend) available(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.up || b.draining || b.removed {
		return false
	}
	return now.Sub(b.lastSeen) <= b.g.cfg.HeartbeatTimeout
}

// snapshot returns the last health report and liveness for /healthz.
func (b *backend) snapshot() (Health, bool, time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.health, b.up && !b.draining && !b.removed, b.lastSeen
}

// remove initiates a graceful leave: no new jobs, redial stops, and the
// connection closes as soon as the pending table is empty.
func (b *backend) remove() {
	b.mu.Lock()
	if b.removed {
		b.mu.Unlock()
		return
	}
	b.removed = true
	idle := len(b.pending) == 0
	conn := b.conn
	b.mu.Unlock()
	close(b.removedCh)
	if idle && conn != nil {
		conn.Close()
	}
}

// roundTrip sends one job and blocks for its reply. When ctx carries a
// deadline, or trace carries an encoded obs.SpanContext, they ride along in
// a JobPayload envelope — the remaining budget lets the node cancel work the
// gateway has abandoned, and the trace context parents the node's fabric_job
// span under the gateway's attempt span. Bare requests still go out when
// neither is present, exercising the compatibility path.
func (b *backend) roundTrip(ctx context.Context, req serve.EvalRequest, trace string) ([]byte, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("%w: encode job: %v", serve.ErrBadRequest, err)
	}
	var ms int64
	if dl, ok := ctx.Deadline(); ok {
		ms = time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1 // expired budgets still travel: the node rejects instantly
		}
	}
	if ms > 0 || trace != "" {
		payload, err = json.Marshal(JobPayload{TimeoutMs: ms, Trace: trace, Req: payload})
		if err != nil {
			return nil, fmt.Errorf("%w: encode job envelope: %v", serve.ErrBadRequest, err)
		}
	}
	id := b.g.jobSeq.Add(1)
	pj := &pendingJob{done: make(chan jobReply, 1)}

	b.mu.Lock()
	if !b.up || b.conn == nil {
		b.mu.Unlock()
		return nil, errBackendDown
	}
	conn := b.conn
	b.pending[id] = pj
	b.mu.Unlock()

	b.writeMu.Lock()
	err = WriteFrame(conn, Frame{Type: FrameJob, JobID: id, Payload: payload})
	b.writeMu.Unlock()
	if err != nil {
		b.forget(id)
		conn.Close() // wake the read loop; detach fails the rest
		return nil, errBackendDown
	}

	select {
	case r := <-pj.done:
		switch {
		case r.err != nil:
			return nil, r.err
		case r.jerr != nil:
			return nil, &jobFailedError{code: r.jerr.Code, msg: r.jerr.Error, retryAfter: r.jerr.RetryAfter}
		default:
			return r.payload, nil
		}
	case <-ctx.Done():
		b.forget(id)
		return nil, ctx.Err()
	}
}

func (b *backend) forget(id uint64) {
	b.mu.Lock()
	delete(b.pending, id)
	b.mu.Unlock()
}

package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"roadtrojan/internal/chaos"
	"roadtrojan/internal/obs"
	"roadtrojan/internal/serve"
)

// tracedFabric is a gateway plus N fabric nodes, each process journaling
// spans to its own in-memory JSONL journal under a stable logical name
// ("gw", "n1", ...). Nodes are addressed on the ring by those logical names
// — the gateway's Dial maps them to the real loopback listeners — so
// routing, and therefore the merged trace, is a pure function of the
// request, not of which ephemeral ports the OS handed out.
type tracedFabric struct {
	gw       *Gateway
	gwSrv    *httptest.Server
	journals map[string]*bytes.Buffer
	sinks    map[string]*obs.Journal
}

func startTracedFabric(t *testing.T, nodeCount int, mutate func(*GatewayConfig)) *tracedFabric {
	t.Helper()
	det := fabricDetector()
	tf := &tracedFabric{
		journals: map[string]*bytes.Buffer{},
		sinks:    map[string]*obs.Journal{},
	}
	trace := func(proc string) *obs.Trace {
		buf := &bytes.Buffer{}
		j := obs.NewJournal(buf)
		tf.journals[proc] = buf
		tf.sinks[proc] = j
		tr := obs.New(j, obs.NewLogicalClock())
		tr.SetProcess(proc)
		return tr
	}

	addrOf := map[string]string{}
	logical := make([]string, 0, nodeCount)
	for i := 0; i < nodeCount; i++ {
		proc := fmt.Sprintf("n%d", i+1)
		logical = append(logical, proc)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrOf[proc] = l.Addr().String()
		tr := trace(proc)
		exec := serve.NewExecutor(det, serve.Config{Workers: 1, QueueSize: 4, Trace: tr}, nil)
		node := NewNode(exec, NodeConfig{ID: proc, Heartbeat: 50 * time.Millisecond, Trace: tr})
		go func() { _ = node.Serve(l) }()
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = node.Close(ctx)
			_ = exec.Close(ctx)
		})
	}

	mapDial := func(addr string) (net.Conn, error) {
		real, ok := addrOf[addr]
		if !ok {
			return nil, fmt.Errorf("unknown logical node %q", addr)
		}
		return net.DialTimeout("tcp", real, 5*time.Second)
	}
	cfg := GatewayConfig{
		Nodes:            logical,
		Clock:            newFakeClock(),
		RetryBackoff:     time.Millisecond,
		RedialBackoff:    time.Millisecond,
		HeartbeatTimeout: time.Hour,
		JobTimeout:       20 * time.Second,
		Dial:             mapDial,
		Trace:            trace("gw"),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	tf.gw = NewGateway(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = tf.gw.Close(ctx)
	})
	waitRoutable(t, tf.gw, logical...)
	tf.gwSrv = httptest.NewServer(tf.gw.Handler())
	t.Cleanup(tf.gwSrv.Close)
	return tf
}

// merged flushes every journal and merges them once each process's spans
// have all closed (span ends race the HTTP response by design — the client
// can see the reply before the server goroutine journals span_end).
func (tf *tracedFabric) merged(t *testing.T) *obs.MergedTrace {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		journals := make([]obs.ProcessJournal, 0, len(tf.journals))
		for proc, buf := range tf.journals {
			if err := tf.sinks[proc].Flush(); err != nil {
				t.Fatal(err)
			}
			recs, err := obs.ReadJournal(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("%s journal: %v", proc, err)
			}
			journals = append(journals, obs.ProcessJournal{Proc: proc, Records: recs})
		}
		m, err := obs.MergeTrace(journals)
		if err != nil {
			t.Fatal(err)
		}
		if unfinished(m) == 0 {
			return m
		}
		if time.Now().After(deadline) {
			t.Fatalf("spans never finished; merged state:\n%s", renderString(t, m))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func unfinished(m *obs.MergedTrace) int {
	n := 0
	var walk func(s *obs.MergedSpan)
	walk = func(s *obs.MergedSpan) {
		if s.Dur < 0 {
			n++
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	for _, r := range m.Roots {
		walk(r)
	}
	return n
}

func renderString(t *testing.T, m *obs.MergedTrace) string {
	t.Helper()
	var out bytes.Buffer
	if err := obs.RenderMerged(&out, m); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

// findSpans collects every span in the merged tree matching pred, in render
// order.
func findSpans(m *obs.MergedTrace, pred func(*obs.MergedSpan) bool) []*obs.MergedSpan {
	var out []*obs.MergedSpan
	var walk func(s *obs.MergedSpan)
	walk = func(s *obs.MergedSpan) {
		if pred(s) {
			out = append(out, s)
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	for _, r := range m.Roots {
		walk(r)
	}
	return out
}

func postEvaluate(t *testing.T, url string, req serve.EvalRequest) []byte {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/evaluate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate: status %d body %s", resp.StatusCode, payload)
	}
	return payload
}

// TestTraceGoldenCrossProcess is the tentpole acceptance test: one job
// through the gateway against a 3-node fabric yields journals on all four
// processes that merge into a single causal tree rooted at the gateway
// request span, with per-replica forward/decode leaf spans — and because
// every process runs an injected logical clock, the merged rendering is
// byte-identical across two full fresh runs of the whole fabric.
func TestTraceGoldenCrossProcess(t *testing.T) {
	run := func() (string, *obs.MergedTrace) {
		tf := startTracedFabric(t, 3, nil)
		postEvaluate(t, tf.gwSrv.URL, evalReq(t, 77))
		m := tf.merged(t)
		return renderString(t, m), m
	}

	outA, m := run()

	// One causal tree, rooted at the gateway's request span.
	if len(m.Roots) != 1 {
		t.Fatalf("got %d roots, want 1:\n%s", len(m.Roots), outA)
	}
	root := m.Roots[0]
	if root.Proc != "gw" || root.Name != "gateway_request" {
		t.Fatalf("root = %s/%s, want gw/gateway_request:\n%s", root.Proc, root.Name, outA)
	}
	if m.Orphans != 0 {
		t.Fatalf("%d orphan spans:\n%s", m.Orphans, outA)
	}
	if m.Offsets["gw"] != 0 {
		t.Fatalf("gateway offset = %d, want 0 (gateway is the global frame)", m.Offsets["gw"])
	}

	// Exactly one winning node span, parented under a gateway attempt span.
	jobs := findSpans(m, func(s *obs.MergedSpan) bool { return s.Name == "fabric_job" })
	if len(jobs) != 1 {
		t.Fatalf("got %d fabric_job spans, want 1:\n%s", len(jobs), outA)
	}
	if jobs[0].Proc == "gw" {
		t.Fatalf("fabric_job span on the gateway process:\n%s", outA)
	}
	if jobs[0].PProc != "gw" || !strings.Contains(jobs[0].Parent, "attempt") {
		t.Fatalf("fabric_job parent = %s/%s, want a gw attempt span:\n%s", jobs[0].PProc, jobs[0].Parent, outA)
	}

	// Per-replica forward/decode leaves live under the node's job subtree.
	for _, stage := range []string{"forward", "decode"} {
		leaves := findSpans(m, func(s *obs.MergedSpan) bool {
			return s.Name == stage && len(s.Children) == 0 && s.Proc == jobs[0].Proc
		})
		if len(leaves) == 0 {
			t.Fatalf("no %s leaf spans on %s:\n%s", stage, jobs[0].Proc, outA)
		}
	}

	// Causality: every cross-process child starts after its parent's send
	// tick in the global frame.
	for _, s := range findSpans(m, func(s *obs.MergedSpan) bool { return s.PProc != "" && s.PProc != s.Proc }) {
		if s.GStart <= s.PTick+m.Offsets[s.PProc] {
			t.Errorf("span %s/%s starts at global %d, not after parent tick %d", s.Proc, s.ID, s.GStart, s.PTick)
		}
	}

	// Determinism: a second fresh fabric produces byte-identical output.
	outB, _ := run()
	if outA != outB {
		t.Fatalf("merged trace not byte-identical across runs:\n--- run A\n%s\n--- run B\n%s", outA, outB)
	}
}

// TestTraceFleetMetricsExemplars: after a traced job, the gateway /metrics
// exposes both its own dispatch-stage histogram and the fleet-aggregated
// per-stage histograms pushed by nodes over Stats frames, with at least one
// exemplar carrying the request's trace id.
func TestTraceFleetMetricsExemplars(t *testing.T) {
	tf := startTracedFabric(t, 3, nil)
	postEvaluate(t, tf.gwSrv.URL, evalReq(t, 78))

	deadline := time.Now().Add(10 * time.Second)
	var body string
	for {
		resp, err := http.Get(tf.gwSrv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		body = string(raw)
		if strings.Contains(body, "fabric_fleet_stage_seconds_bucket") &&
			strings.Contains(body, `trace_id="gw:gateway_request#0"`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet stage metrics with exemplars never appeared:\n%s", body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, want := range []string{
		`fabric_gateway_stage_seconds_bucket{stage="dispatch"`,
		`fabric_fleet_stage_seconds_bucket{stage="forward"`,
		`fabric_fleet_stage_seconds_bucket{stage="decode"`,
		`fabric_fleet_stage_seconds_bucket{stage="queue_wait"`,
		`fabric_fleet_stage_seconds_bucket{stage="total"`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestTraceChaosPartitionSiblingAttempts: a partitioned primary forces a
// failover, and the merged trace shows the whole story — one dispatch span
// with the timed-out attempt and the winning attempt as siblings, and
// exactly one node-side fabric_job span (under the winning attempt only).
func TestTraceChaosPartitionSiblingAttempts(t *testing.T) {
	in := chaos.New(chaosSeed, chaos.Plan{}, nil)
	tf := startTracedFabric(t, 2, func(cfg *GatewayConfig) {
		inner := cfg.Dial
		cfg.Dial = in.Dial(inner)
		// The partitioned primary black-holes, so the attempt timeout is
		// what forces the failover — but it bounds the healthy node's
		// round trip too, and under a full -race run that can take
		// seconds. Generous values keep the test about span structure,
		// not machine speed.
		cfg.AttemptTimeout = 5 * time.Second
		cfg.JobTimeout = 45 * time.Second
	})

	req := evalReq(t, 301)
	primary := tf.gw.Ring().Lookup(req.Digest())
	in.Partition(primary)
	postEvaluate(t, tf.gwSrv.URL, req)

	m := tf.merged(t)
	out := renderString(t, m)

	dispatches := findSpans(m, func(s *obs.MergedSpan) bool { return s.Name == "dispatch" })
	if len(dispatches) != 1 {
		t.Fatalf("got %d dispatch spans, want 1:\n%s", len(dispatches), out)
	}
	var attempts []*obs.MergedSpan
	for _, c := range dispatches[0].Children {
		if c.Name == "attempt" {
			attempts = append(attempts, c)
		}
	}
	if len(attempts) < 2 {
		t.Fatalf("got %d sibling attempt spans, want >= 2 (failed + winner):\n%s", len(attempts), out)
	}
	winners := 0
	for _, a := range attempts {
		for _, c := range a.Children {
			if c.Name == "fabric_job" {
				winners++
			}
		}
	}
	if winners != 1 {
		t.Fatalf("%d attempts carry a fabric_job subtree, want exactly 1:\n%s", winners, out)
	}
	if jobs := findSpans(m, func(s *obs.MergedSpan) bool { return s.Name == "fabric_job" }); len(jobs) != 1 {
		t.Fatalf("%d fabric_job spans total, want exactly 1 (exactly-once execution):\n%s", len(jobs), out)
	}
}

package fabric

import (
	"sync"
	"time"

	"roadtrojan/internal/telemetry"
)

// Breaker states, exported through the fabric_gateway_breaker_state gauge.
const (
	breakerClosed   = 0 // normal operation
	breakerOpen     = 1 // too many consecutive failures; dialing suppressed
	breakerHalfOpen = 2 // cooldown elapsed; one probe connection in flight
)

// breaker is a per-backend circuit breaker guarding the gateway's dial and
// handshake path. It replaces blind redial: after Threshold consecutive
// transport failures (dial refused, Hello never completed, connection
// death) the breaker opens and the backend stops burning dial attempts on
// a peer that is clearly down. Once Cooldown elapses — measured on the
// injected fabric.Clock so chaos tests can fast-forward it — a single
// half-open probe is allowed; a completed Hello handshake closes the
// breaker again, any failure snaps it back open for a fresh cooldown.
type breaker struct {
	threshold int
	cooldown  time.Duration
	clock     Clock
	opens     *telemetry.Counter

	mu       sync.Mutex
	state    int
	failures int
	openedAt time.Time
}

func newBreaker(threshold int, cooldown time.Duration, clock Clock, opens *telemetry.Counter) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, clock: clock, opens: opens}
}

// ready reports whether a connection attempt is allowed now, transitioning
// an open breaker to half-open once the cooldown has elapsed. When the
// breaker is still open it returns how long to wait before asking again.
func (br *breaker) ready() (bool, time.Duration) {
	br.mu.Lock()
	defer br.mu.Unlock()
	if br.state != breakerOpen {
		return true, 0
	}
	remaining := br.cooldown - br.clock.Now().Sub(br.openedAt)
	if remaining <= 0 {
		br.state = breakerHalfOpen
		return true, 0
	}
	return false, remaining
}

// success records a completed Hello handshake: the probe (or a regular
// attempt) proved the peer healthy, so the breaker closes fully.
func (br *breaker) success() {
	br.mu.Lock()
	br.state = breakerClosed
	br.failures = 0
	br.mu.Unlock()
}

// failure records one transport failure. A half-open probe failing, or the
// consecutive-failure count reaching the threshold, opens the breaker and
// restarts the cooldown.
func (br *breaker) failure() {
	br.mu.Lock()
	br.failures++
	if br.state == breakerHalfOpen || br.failures >= br.threshold {
		if br.state != breakerOpen {
			br.opens.Inc()
		}
		br.state = breakerOpen
		br.failures = 0
		br.openedAt = br.clock.Now()
	}
	br.mu.Unlock()
}

// stateValue returns the current state for the telemetry gauge.
func (br *breaker) stateValue() float64 {
	br.mu.Lock()
	defer br.mu.Unlock()
	return float64(br.state)
}

package fabric

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync"
)

// WALRecord is one line of the gateway's durable async-job log. Three
// record types share the struct:
//
//	submit   — a job entered the table: id, seq (for id-counter recovery),
//	           patch digest, and the normalized request JSON
//	dispatch — the job left the table for the fleet (informational; replay
//	           treats a dispatch without a result as still in flight)
//	result   — terminal state: status done|failed plus the node's response
//	           bytes or the failure message
type WALRecord struct {
	T      string          `json:"t"` // submit | dispatch | result
	ID     string          `json:"id"`
	Seq    uint64          `json:"seq,omitempty"`
	Digest string          `json:"digest,omitempty"`
	Req    json.RawMessage `json:"req,omitempty"`
	Status string          `json:"status,omitempty"` // done | failed
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// WAL record types.
const (
	walSubmit   = "submit"
	walDispatch = "dispatch"
	walResult   = "result"
)

// WAL is an append-only JSONL journal of the gateway's async jobs. On
// restart the gateway replays it: finished jobs answer polls again
// (byte-identically — results are stored as raw JSON), and jobs that never
// reached a terminal record are re-dispatched. Re-dispatch is idempotent
// because routing keys on the patch digest: the job lands on the node
// whose result cache already holds (or is computing) that evaluation.
type WAL struct {
	mu      sync.Mutex
	f       *os.File
	records []WALRecord
}

// OpenWAL opens (creating if absent) the journal at path and reads every
// intact record. A torn final line — the expected artifact of a crash
// mid-append — is tolerated: decoding stops there and the file is appended
// to as usual, so the torn bytes are simply dead.
func OpenWAL(path string) (*WAL, error) {
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("fabric: read wal %s: %w", path, err)
	}
	var records []WALRecord
	for _, line := range bytes.Split(data, []byte{'\n'}) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var rec WALRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			break
		}
		records = append(records, rec)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fabric: open wal %s: %w", path, err)
	}
	return &WAL{f: f, records: records}, nil
}

// Records returns the records read at open time, in log order.
func (w *WAL) Records() []WALRecord {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records
}

// Append writes one record as a single line.
func (w *WAL) Append(rec WALRecord) error {
	buf, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("fabric: encode wal record: %w", err)
	}
	buf = append(buf, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	_, err = w.f.Write(buf)
	return err
}

// Close closes the journal file.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

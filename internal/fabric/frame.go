// Package fabric is the distributed evaluation tier: a stateless HTTP
// gateway that shards patch-evaluation jobs across a fleet of serve
// executors ("nodes") over a small length-prefixed framed protocol.
//
// The wire format is deliberately tiny — stdlib encoding/binary over a
// net.Conn, one frame per message:
//
//	offset  size  field
//	0       4     magic "RTFB"
//	4       1     protocol version (1)
//	5       1     frame type
//	6       2     flags (reserved, must be zero)
//	8       8     job id (little-endian uint64; 0 for non-job frames)
//	16      4     payload length (little-endian uint32, ≤ MaxPayload)
//	20      n     payload
//
// Payloads are JSON: jobs carry serve.EvalRequest, results carry the
// node-encoded serve.EvalResponse bytes verbatim (the gateway forwards
// them untouched, which is what makes gateway results byte-identical to
// single-box serve), health frames carry Health, and error frames carry
// JobError. Decoding is strict — wrong magic, unknown version or type,
// nonzero flags, or an oversized payload fail with ErrBadFrame and never
// panic; FuzzReadFrame pins that.
package fabric

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"roadtrojan/internal/telemetry"
)

// ProtocolVersion is the fabric wire-format version. Both ends refuse
// frames from any other version rather than guessing.
const ProtocolVersion = 1

// frameMagic is "RTFB" — RoadTrojan FaBric.
var frameMagic = [4]byte{'R', 'T', 'F', 'B'}

// MaxPayload bounds a frame payload: large enough for any evaluation
// response, small enough that a corrupt length prefix cannot OOM the
// reader.
const MaxPayload = 32 << 20

// headerSize is the fixed frame header length in bytes.
const headerSize = 20

// Frame types.
const (
	// FrameHello is the node's first frame on a new connection: a Health
	// payload introducing the node (id, capacity).
	FrameHello = uint8(iota + 1)
	// FrameJob is a gateway→node evaluation job: a serve.EvalRequest.
	FrameJob
	// FrameAck acknowledges a job was accepted into the node's queue.
	FrameAck
	// FrameResult carries a completed job's serve.EvalResponse JSON.
	FrameResult
	// FrameError carries a JobError for a failed or refused job.
	FrameError
	// FrameHealth is the node's periodic heartbeat: a Health payload.
	FrameHealth
	// FrameDrain announces the node is leaving: no new jobs will be
	// accepted, in-flight jobs will still complete.
	FrameDrain
	// FrameStats is the node's periodic telemetry push: a StatsPayload of
	// stage-histogram snapshots, from which the gateway aggregates its
	// fleet-wide /metrics view. Additive frame types like this one stay
	// within ProtocolVersion 1: receivers ignore valid-but-unhandled types
	// (see handleConn/readLoop), so a new frame only requires upgrading the
	// end that wants to consume it. Older binaries' strict decoders reject
	// type 8 outright, so a mixed fleet must upgrade receivers first.
	FrameStats
)

// frameTypeValid reports whether t is a known frame type.
func frameTypeValid(t uint8) bool { return t >= FrameHello && t <= FrameStats }

// ErrBadFrame is the strict-decode failure: anything on the wire that is
// not a well-formed current-version frame.
var ErrBadFrame = errors.New("fabric: malformed frame")

// Frame is one decoded protocol message.
type Frame struct {
	Type    uint8
	JobID   uint64
	Payload []byte
}

// AppendFrame encodes f onto buf and returns the extended slice.
func AppendFrame(buf []byte, f Frame) []byte {
	buf = append(buf, frameMagic[:]...)
	buf = append(buf, ProtocolVersion, f.Type, 0, 0)
	buf = binary.LittleEndian.AppendUint64(buf, f.JobID)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(f.Payload)))
	return append(buf, f.Payload...)
}

// WriteFrame encodes f to w as a single Write (one syscall per frame on a
// net.Conn, so concurrent writers only need to serialize the call itself).
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Payload) > MaxPayload {
		return fmt.Errorf("%w: payload %d exceeds %d", ErrBadFrame, len(f.Payload), MaxPayload)
	}
	if !frameTypeValid(f.Type) {
		return fmt.Errorf("%w: unknown frame type %d", ErrBadFrame, f.Type)
	}
	_, err := w.Write(AppendFrame(make([]byte, 0, headerSize+len(f.Payload)), f))
	return err
}

// ReadFrame decodes one frame from r. Truncated or corrupt input returns an
// error wrapping ErrBadFrame (or io.EOF exactly at a frame boundary); it
// never panics, whatever the bytes.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return Frame{}, io.EOF
		}
		return Frame{}, fmt.Errorf("%w: short header: %v", ErrBadFrame, err)
	}
	if [4]byte(hdr[0:4]) != frameMagic {
		return Frame{}, fmt.Errorf("%w: bad magic %q", ErrBadFrame, hdr[0:4])
	}
	if hdr[4] != ProtocolVersion {
		return Frame{}, fmt.Errorf("%w: unsupported version %d", ErrBadFrame, hdr[4])
	}
	f := Frame{Type: hdr[5]}
	if !frameTypeValid(f.Type) {
		return Frame{}, fmt.Errorf("%w: unknown frame type %d", ErrBadFrame, f.Type)
	}
	if hdr[6] != 0 || hdr[7] != 0 {
		return Frame{}, fmt.Errorf("%w: nonzero reserved flags %#x%02x", ErrBadFrame, hdr[6], hdr[7])
	}
	f.JobID = binary.LittleEndian.Uint64(hdr[8:16])
	n := binary.LittleEndian.Uint32(hdr[16:20])
	if n > MaxPayload {
		return Frame{}, fmt.Errorf("%w: payload length %d exceeds %d", ErrBadFrame, n, MaxPayload)
	}
	if n > 0 {
		f.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return Frame{}, fmt.Errorf("%w: truncated payload: %v", ErrBadFrame, err)
		}
	}
	return f, nil
}

// JobPayload is the FrameJob payload envelope: the evaluation request plus
// the gateway's remaining budget for it, so a node can cancel (or skip
// dequeuing) work the gateway has already abandoned instead of burning a
// worker slot on an answer nobody is waiting for. The budget is relative
// (milliseconds), not an absolute time — gateway and node clocks are not
// assumed synchronized. Nodes also accept a bare serve.EvalRequest payload
// for compatibility with pre-envelope gateways.
type JobPayload struct {
	// TimeoutMs is the remaining job budget in milliseconds; 0 means no
	// deadline.
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
	// Trace is an encoded obs.SpanContext: the gateway's attempt span, so
	// the node's fabric_job span joins the request's causal tree. Optional
	// and ignored by pre-tracing nodes (unknown JSON keys are skipped);
	// bare-request payloads simply carry no context.
	Trace string `json:"trace,omitempty"`
	// Req is the serve.EvalRequest JSON.
	Req json.RawMessage `json:"req"`
}

// StatsPayload is the FrameStats payload: one node's stage-histogram
// snapshots (serve.StageNames keys), which the gateway merges into its
// fleet-wide stage view.
type StatsPayload struct {
	ID     string                            `json:"id"`
	Stages map[string]telemetry.HistSnapshot `json:"stages"`
}

// Health is the Hello/Health frame payload: one node's identity and
// capacity snapshot. The gateway routes and sheds load on it.
type Health struct {
	ID            string `json:"id"`
	Workers       int    `json:"workers"`
	QueueDepth    int    `json:"queueDepth"`
	QueueCapacity int    `json:"queueCapacity"`
	Inflight      int    `json:"inflight"`
	CachedResults int    `json:"cachedResults"`
	Draining      bool   `json:"draining"`
	// RetryAfter is the node's backoff hint in seconds, set only while its
	// queue is full. The gateway's saturation replies surface the largest
	// hint across the fleet.
	RetryAfter int `json:"retryAfter,omitempty"`
}

// Job-error codes carried by FrameError payloads.
const (
	// CodeBadRequest: the job payload failed validation; retrying is
	// pointless.
	CodeBadRequest = "bad_request"
	// CodeQueueFull: the node's bounded queue is at capacity; the job is
	// safe to retry elsewhere or later (RetryAfter hints when).
	CodeQueueFull = "queue_full"
	// CodeDraining: the node is leaving the fleet; route elsewhere.
	CodeDraining = "draining"
	// CodeInternal: the job ran and failed.
	CodeInternal = "internal"
	// CodeExpired: the job's propagated deadline passed before or during
	// execution; the gateway may retry if its own budget remains.
	CodeExpired = "expired"
)

// JobError is the FrameError payload.
type JobError struct {
	Code       string `json:"code"`
	Error      string `json:"error"`
	RetryAfter int    `json:"retryAfter,omitempty"` // seconds; only with CodeQueueFull
}

package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"roadtrojan/internal/serve"
)

// TestFabricSmoke is the check.sh fabric gate: a gateway fronting two real
// (untrained-detector) nodes completes one evaluate round-trip over real
// TCP and the whole fabric drains cleanly — every Serve loop exits nil,
// every Close returns nil, nothing is left in flight.
func TestFabricSmoke(t *testing.T) {
	det := fabricDetector()
	cfg := serve.Config{Workers: 2, QueueSize: 4, JobTimeout: 30 * time.Second}
	nodes := startNodes(t, det, 2, cfg, nil)
	g := NewGateway(GatewayConfig{Nodes: nodeAddrs(nodes)})
	waitRoutable(t, g, nodeAddrs(nodes)...)
	gwSrv := httptest.NewServer(g.Handler())
	defer gwSrv.Close()

	body, err := json.Marshal(evalReq(t, 21))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(gwSrv.URL+"/v1/evaluate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate round-trip: status %d body %s", resp.StatusCode, out.Bytes())
	}
	var eresp serve.EvalResponse
	if err := json.Unmarshal(out.Bytes(), &eresp); err != nil {
		t.Fatalf("decode evaluate response: %v", err)
	}
	if eresp.Frames <= 0 {
		t.Errorf("evaluate returned %d frames, want > 0", eresp.Frames)
	}

	// Clean drain: nodes first (they announce Drain to the gateway), then
	// the gateway, then the executors.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, fn := range nodes {
		if err := fn.node.Close(ctx); err != nil {
			t.Fatalf("node %s close: %v", fn.addr, err)
		}
		select {
		case err := <-fn.served:
			if err != nil {
				t.Fatalf("node %s serve loop: %v", fn.addr, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("node %s serve loop never exited", fn.addr)
		}
	}
	if err := g.Close(ctx); err != nil {
		t.Fatalf("gateway close: %v", err)
	}
	for _, fn := range nodes {
		if err := fn.exec.Close(ctx); err != nil {
			t.Fatalf("executor close: %v", err)
		}
		if fn.exec.Inflight() != 0 || fn.exec.QueueDepth() != 0 {
			t.Fatalf("node %s drained dirty: inflight=%d queued=%d",
				fn.addr, fn.exec.Inflight(), fn.exec.QueueDepth())
		}
	}
}

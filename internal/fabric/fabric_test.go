package fabric

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"roadtrojan/internal/attack"
	"roadtrojan/internal/eval"
	"roadtrojan/internal/metrics"
	"roadtrojan/internal/serve"
	"roadtrojan/internal/shapes"
	"roadtrojan/internal/tensor"
	"roadtrojan/internal/yolo"
)

// --- deterministic test scaffolding ---

// fakeClock is the injected gateway clock: Now is virtual (advanced by
// hand, never by the wall), and After fires after a nominal real
// millisecond regardless of the requested delay, so backoff paths execute
// deterministically without the test sleeping through them.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) After(time.Duration) <-chan time.Time { return time.After(time.Millisecond) }

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// killableListener records accepted connections so a test can simulate a
// node crash: listener and every live connection torn down at once.
type killableListener struct {
	net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func (l *killableListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.mu.Lock()
		l.conns = append(l.conns, c)
		l.mu.Unlock()
	}
	return c, err
}

func (l *killableListener) kill() {
	l.Listener.Close()
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, c := range l.conns {
		c.Close()
	}
}

func fabricDetector() *yolo.Model {
	m := yolo.New(rand.New(rand.NewSource(11)), yolo.DefaultConfig())
	m.SetTraining(false)
	return m
}

type fabricNode struct {
	node   *Node
	exec   *serve.Executor
	lis    *killableListener
	addr   string
	served chan error
}

// startNodes brings up count fabric nodes on loopback listeners. jobFor
// (optional) builds each node's eval stub keyed by its address; nil keeps
// the real evaluation path.
func startNodes(t *testing.T, det *yolo.Model, count int, cfg serve.Config,
	jobFor func(addr string) eval.JobFunc) []*fabricNode {
	t.Helper()
	nodes := make([]*fabricNode, count)
	for i := range nodes {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = &fabricNode{
			lis:    &killableListener{Listener: l},
			addr:   l.Addr().String(),
			served: make(chan error, 1),
		}
	}
	for _, fn := range nodes {
		c := cfg
		if jobFor != nil {
			c.Job = jobFor(fn.addr)
		}
		fn.exec = serve.NewExecutor(det, c, nil)
		fn.node = NewNode(fn.exec, NodeConfig{ID: fn.addr, Heartbeat: 50 * time.Millisecond})
		go func(fn *fabricNode) { fn.served <- fn.node.Serve(fn.lis) }(fn)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for _, fn := range nodes {
			_ = fn.node.Close(ctx)
			_ = fn.exec.Close(ctx)
		}
	})
	return nodes
}

func nodeAddrs(nodes []*fabricNode) []string {
	out := make([]string, len(nodes))
	for i, fn := range nodes {
		out[i] = fn.addr
	}
	return out
}

func nodeByAddr(t *testing.T, nodes []*fabricNode, addr string) *fabricNode {
	t.Helper()
	for _, fn := range nodes {
		if fn.addr == addr {
			return fn
		}
	}
	t.Fatalf("no test node at %s", addr)
	return nil
}

func newTestGateway(t *testing.T, clock Clock, addrs []string, mutate func(*GatewayConfig)) *Gateway {
	t.Helper()
	cfg := GatewayConfig{
		Nodes:            addrs,
		Clock:            clock,
		RetryBackoff:     time.Millisecond,
		RedialBackoff:    time.Millisecond,
		HeartbeatTimeout: time.Hour, // staleness is driven by the injected clock
		JobTimeout:       20 * time.Second,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	g := NewGateway(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = g.Close(ctx)
	})
	return g
}

// waitRoutable blocks until every listed backend is dial-connected and
// routable from the gateway's point of view.
func waitRoutable(t *testing.T, g *Gateway, addrs ...string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		now := g.clock.Now()
		ok := true
		for _, a := range addrs {
			b := g.backend(a)
			if b == nil || !b.available(now) {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("backends never became routable")
}

// fabricPatchB64 builds a distinct valid patch payload per seed; distinct
// payloads hash to distinct ring keys, which is how tests steer routing.
func fabricPatchB64(t *testing.T, seed int64) string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	gray := tensor.New(1, 32, 32)
	for i := range gray.Data() {
		gray.Data()[i] = rng.Float64()
	}
	cfg := attack.DefaultConfig()
	p := &attack.Patch{Gray: gray, Mask: shapes.Mask(cfg.Shape, 32, cfg.ShapeScale(), 0), Cfg: cfg}
	raw, err := attack.EncodePatch(p)
	if err != nil {
		t.Fatal(err)
	}
	return base64.StdEncoding.EncodeToString(raw)
}

func evalReq(t *testing.T, patchSeed int64) serve.EvalRequest {
	t.Helper()
	req := serve.EvalRequest{
		Patch: fabricPatchB64(t, patchSeed),
		Scene: "road", Challenge: "fix", Mode: "digital", Runs: 1, Seed: 5,
	}
	if err := req.Validate(); err != nil {
		t.Fatal(err)
	}
	return req
}

func stubDetail(pwc float64) eval.Detail {
	return eval.Detail{Score: metrics.Score{PWC: pwc, CWC: pwc >= 0.5, Frames: 4, DetectRate: 1}}
}

func decodeEvalResponse(t *testing.T, payload []byte) serve.EvalResponse {
	t.Helper()
	var resp serve.EvalResponse
	if err := json.Unmarshal(payload, &resp); err != nil {
		t.Fatalf("decode eval response: %v (payload %q)", err, payload)
	}
	return resp
}

// --- behavior tests ---

// TestGatewayByteIdenticalWithSingleBox is the compatibility acceptance
// check: the same request through gateway → fabric node must produce a
// response body bit-identical to single-box serve.
func TestGatewayByteIdenticalWithSingleBox(t *testing.T) {
	det := fabricDetector()
	cfg := serve.Config{Workers: 2, QueueSize: 4, JobTimeout: 20 * time.Second}

	single := serve.New(det, cfg)
	singleSrv := httptest.NewServer(single.Handler())
	defer singleSrv.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = single.Shutdown(ctx)
	}()

	nodes := startNodes(t, det, 2, cfg, nil)
	g := newTestGateway(t, newFakeClock(), nodeAddrs(nodes), nil)
	waitRoutable(t, g, nodeAddrs(nodes)...)
	gwSrv := httptest.NewServer(g.Handler())
	defer gwSrv.Close()

	for name, req := range map[string]serve.EvalRequest{
		"patch":    evalReq(t, 31),
		"baseline": {Scene: "road", Challenge: "fix", Mode: "digital", Runs: 1, Seed: 9, Target: 2},
	} {
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		post := func(url string) (int, []byte, string) {
			resp, err := http.Post(url+"/v1/evaluate", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			if _, err := buf.ReadFrom(resp.Body); err != nil {
				t.Fatal(err)
			}
			return resp.StatusCode, buf.Bytes(), resp.Header.Get("Content-Type")
		}
		codeS, bodyS, ctS := post(singleSrv.URL)
		codeG, bodyG, ctG := post(gwSrv.URL)
		if codeS != http.StatusOK || codeG != http.StatusOK {
			t.Fatalf("%s: status single=%d gateway=%d (gateway body %s)", name, codeS, codeG, bodyG)
		}
		if ctS != ctG {
			t.Errorf("%s: content type %q vs %q", name, ctS, ctG)
		}
		if !bytes.Equal(bodyS, bodyG) {
			t.Errorf("%s: gateway response not byte-identical to single-box:\n single: %s\ngateway: %s",
				name, bodyS, bodyG)
		}
	}
}

// TestGatewayAffinityAndCaching: repeated evaluations of one patch land on
// the ring owner and the second hit is served from that node's cache.
func TestGatewayAffinityAndCaching(t *testing.T) {
	det := fabricDetector()
	var counts sync.Map // addr -> *atomic.Int64
	jobFor := func(addr string) eval.JobFunc {
		n := &atomic.Int64{}
		counts.Store(addr, n)
		return func(eval.Job) (eval.Detail, error) {
			n.Add(1)
			return stubDetail(0.25), nil
		}
	}
	nodes := startNodes(t, det, 3, serve.Config{Workers: 2, QueueSize: 4}, jobFor)
	g := newTestGateway(t, newFakeClock(), nodeAddrs(nodes), nil)
	waitRoutable(t, g, nodeAddrs(nodes)...)

	ctx := context.Background()
	for _, seed := range []int64{41, 42} {
		req := evalReq(t, seed)
		owner := g.Ring().Lookup(req.Digest())
		for round := 0; round < 2; round++ {
			payload, err := g.dispatch(ctx, req)
			if err != nil {
				t.Fatalf("seed %d round %d: %v", seed, round, err)
			}
			resp := decodeEvalResponse(t, payload)
			if wantCached := round == 1; resp.Cached != wantCached {
				t.Errorf("seed %d round %d: cached=%v want %v", seed, round, resp.Cached, wantCached)
			}
		}
		ownerCalls, _ := counts.Load(owner)
		if n := ownerCalls.(*atomic.Int64).Load(); n == 0 {
			t.Errorf("seed %d: ring owner %s never ran the job", seed, owner)
		}
	}
	// Only ring owners ran anything: total executions = distinct patches.
	total := int64(0)
	counts.Range(func(_, v any) bool { total += v.(*atomic.Int64).Load(); return true })
	if total != 2 {
		t.Errorf("stub executions = %d, want 2 (one per patch, second round cached)", total)
	}
}

// TestNodeDeathMidJobRetries kills the primary owner while it holds an
// acked in-flight job. The gateway must fail over along the ring sequence
// and return exactly one result — nothing lost, nothing duplicated.
func TestNodeDeathMidJobRetries(t *testing.T) {
	det := fabricDetector()
	var victim atomic.Value
	victim.Store("")
	started := make(chan string, 1)
	release := make(chan struct{})
	var victimHits, completions atomic.Int64
	jobFor := func(addr string) eval.JobFunc {
		return func(eval.Job) (eval.Detail, error) {
			if victim.Load().(string) == addr {
				if victimHits.Add(1) == 1 {
					started <- addr
				}
				<-release
				return eval.Detail{}, errors.New("node crashed mid-job")
			}
			completions.Add(1)
			return stubDetail(0.75), nil
		}
	}
	nodes := startNodes(t, det, 3, serve.Config{Workers: 2, QueueSize: 4}, jobFor)
	defer close(release)
	g := newTestGateway(t, newFakeClock(), nodeAddrs(nodes), nil)
	waitRoutable(t, g, nodeAddrs(nodes)...)

	req := evalReq(t, 51)
	primary := g.Ring().Lookup(req.Digest())
	victim.Store(primary)

	type result struct {
		payload []byte
		err     error
	}
	resCh := make(chan result, 1)
	go func() {
		payload, err := g.dispatch(context.Background(), req)
		resCh <- result{payload, err}
	}()

	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("primary never started the job")
	}
	nodeByAddr(t, nodes, primary).lis.kill()

	var res result
	select {
	case res = <-resCh:
	case <-time.After(10 * time.Second):
		t.Fatal("dispatch did not fail over after node death")
	}
	if res.err != nil {
		t.Fatalf("dispatch after node death: %v", res.err)
	}
	resp := decodeEvalResponse(t, res.payload)
	if resp.PWC != 0.75 {
		t.Errorf("failover result PWC = %v, want 0.75", resp.PWC)
	}
	if n := completions.Load(); n != 1 {
		t.Errorf("job completed %d times across surviving nodes, want exactly 1", n)
	}
}

// TestGatewayRebalanceOnJoinLeave checks fleet-change semantics end to
// end: keys keep their owner (and that owner's warm cache) across an
// unrelated join, and a removed node's keys redistribute to survivors.
func TestGatewayRebalanceOnJoinLeave(t *testing.T) {
	det := fabricDetector()
	jobFor := func(string) eval.JobFunc {
		return func(eval.Job) (eval.Detail, error) { return stubDetail(0.25), nil }
	}
	nodes := startNodes(t, det, 3, serve.Config{Workers: 2, QueueSize: 8}, jobFor)
	initial := nodes[:2]
	joiner := nodes[2]

	g := newTestGateway(t, newFakeClock(), nodeAddrs(initial), nil)
	waitRoutable(t, g, nodeAddrs(initial)...)

	ctx := context.Background()
	reqs := make([]serve.EvalRequest, 8)
	before := map[string]string{}
	for i := range reqs {
		reqs[i] = evalReq(t, 100+int64(i))
		before[reqs[i].Digest()] = g.Ring().Lookup(reqs[i].Digest())
		if _, err := g.dispatch(ctx, reqs[i]); err != nil {
			t.Fatalf("warm dispatch %d: %v", i, err)
		}
	}

	g.AddNode(joiner.addr)
	waitRoutable(t, g, nodeAddrs(nodes)...)
	movedToJoiner := 0
	for _, req := range reqs {
		key := req.Digest()
		owner := g.Ring().Lookup(key)
		if owner != before[key] && owner != joiner.addr {
			t.Fatalf("key %s moved between pre-existing nodes on join: %s -> %s", key, before[key], owner)
		}
		payload, err := g.dispatch(ctx, req)
		if err != nil {
			t.Fatalf("dispatch after join: %v", err)
		}
		if owner == joiner.addr {
			movedToJoiner++
		} else if !decodeEvalResponse(t, payload).Cached {
			// Unmoved key, unmoved owner: the warm cache must still answer.
			t.Errorf("key %s lost cache affinity across an unrelated join", key)
		}
	}
	t.Logf("join moved %d/%d keys to the new node", movedToJoiner, len(reqs))

	// Graceful leave: the departed node's keys spread over survivors and
	// every request still completes.
	g.RemoveNode(initial[0].addr)
	for _, req := range reqs {
		owner := g.Ring().Lookup(req.Digest())
		if owner == initial[0].addr {
			t.Fatalf("key %s still routed to removed node", req.Digest())
		}
		if _, err := g.dispatch(ctx, req); err != nil {
			t.Fatalf("dispatch after leave: %v", err)
		}
	}
}

// TestSaturationBackpressure fills every shard's bounded queue and expects
// the HTTP edge to answer 429 with a usable Retry-After rather than
// queueing unboundedly or retrying forever.
func TestSaturationBackpressure(t *testing.T) {
	det := fabricDetector()
	release := make(chan struct{})
	jobFor := func(string) eval.JobFunc {
		return func(eval.Job) (eval.Detail, error) {
			<-release
			return stubDetail(0.25), nil
		}
	}
	nodes := startNodes(t, det, 2, serve.Config{Workers: 1, QueueSize: 1}, jobFor)
	var releaseOnce sync.Once
	releaseAll := func() { releaseOnce.Do(func() { close(release) }) }
	defer releaseAll()
	g := newTestGateway(t, newFakeClock(), nodeAddrs(nodes), nil)
	waitRoutable(t, g, nodeAddrs(nodes)...)
	gwSrv := httptest.NewServer(g.Handler())
	defer gwSrv.Close()

	// Two jobs per node (1 running + 1 queued) saturate the fleet. Each
	// filler targets one node's key so routing is fully determined.
	fillers := map[string]int{}
	var fillerReqs []serve.EvalRequest
	for seed := int64(200); len(fillerReqs) < 4 && seed < 300; seed++ {
		req := evalReq(t, seed)
		owner := g.Ring().Lookup(req.Digest())
		if fillers[owner] < 2 {
			fillers[owner]++
			fillerReqs = append(fillerReqs, req)
		}
	}
	if len(fillerReqs) != 4 {
		t.Fatalf("could not find keys for both nodes: %v", fillers)
	}
	errs := make(chan error, len(fillerReqs))
	for _, req := range fillerReqs {
		go func(req serve.EvalRequest) {
			_, err := g.dispatch(context.Background(), req)
			errs <- err
		}(req)
	}
	saturated := func(fn *fabricNode) bool {
		return fn.exec.Inflight() == 1 && fn.exec.QueueDepth() == 1
	}
	deadline := time.Now().Add(10 * time.Second)
	for !(saturated(nodes[0]) && saturated(nodes[1])) {
		if time.Now().After(deadline) {
			t.Fatalf("fleet never saturated: node0 inflight=%d depth=%d node1 inflight=%d depth=%d",
				nodes[0].exec.Inflight(), nodes[0].exec.QueueDepth(),
				nodes[1].exec.Inflight(), nodes[1].exec.QueueDepth())
		}
		time.Sleep(2 * time.Millisecond)
	}

	body, _ := json.Marshal(evalReq(t, 400))
	resp, err := http.Post(gwSrv.URL+"/v1/evaluate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated fleet answered %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want integer >= 1", resp.Header.Get("Retry-After"))
	}
	if g.saturated.Value() == 0 {
		t.Error("fabric_gateway_saturated_total not incremented")
	}

	releaseAll()
	for range fillerReqs {
		if err := <-errs; err != nil {
			t.Errorf("filler job failed: %v", err)
		}
	}
}

// TestNodeGracefulLeaveDrainsInflight: a node announcing Drain leaves the
// ring (new jobs route around it) while its in-flight job still completes
// and reaches the waiting client.
func TestNodeGracefulLeaveDrainsInflight(t *testing.T) {
	det := fabricDetector()
	var victim atomic.Value
	victim.Store("")
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	jobFor := func(addr string) eval.JobFunc {
		return func(eval.Job) (eval.Detail, error) {
			if victim.Load().(string) == addr {
				select {
				case started <- struct{}{}:
				default:
				}
				<-release
				return stubDetail(0.9), nil
			}
			return stubDetail(0.1), nil
		}
	}
	nodes := startNodes(t, det, 2, serve.Config{Workers: 2, QueueSize: 4}, jobFor)
	var releaseOnce sync.Once
	releaseAll := func() { releaseOnce.Do(func() { close(release) }) }
	defer releaseAll()
	g := newTestGateway(t, newFakeClock(), nodeAddrs(nodes), nil)
	waitRoutable(t, g, nodeAddrs(nodes)...)

	req := evalReq(t, 61)
	leaver := g.Ring().Lookup(req.Digest())
	victim.Store(leaver)
	leaverNode := nodeByAddr(t, nodes, leaver)

	type result struct {
		payload []byte
		err     error
	}
	resCh := make(chan result, 1)
	go func() {
		payload, err := g.dispatch(context.Background(), req)
		resCh <- result{payload, err}
	}()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("leaver never started the job")
	}

	closeErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		closeErr <- leaverNode.node.Close(ctx)
	}()

	// The Drain frame must take the leaver off the ring...
	deadline := time.Now().Add(10 * time.Second)
	for g.Ring().Len() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("ring still has %d nodes after Drain", g.Ring().Len())
		}
		time.Sleep(2 * time.Millisecond)
	}
	// ...so the same key now routes to the survivor and completes there.
	payload, err := g.dispatch(context.Background(), req)
	if err != nil {
		t.Fatalf("dispatch during drain: %v", err)
	}
	if resp := decodeEvalResponse(t, payload); resp.PWC != 0.1 {
		t.Errorf("post-drain job PWC = %v, want survivor's 0.1", resp.PWC)
	}

	// The in-flight job on the leaver still completes and is delivered.
	releaseAll()
	res := <-resCh
	if res.err != nil {
		t.Fatalf("in-flight job lost during graceful leave: %v", res.err)
	}
	if resp := decodeEvalResponse(t, res.payload); resp.PWC != 0.9 {
		t.Errorf("drained job PWC = %v, want leaver's 0.9", resp.PWC)
	}
	if err := <-closeErr; err != nil {
		t.Fatalf("node.Close during drain: %v", err)
	}
}

// TestAsyncSubmitPoll drives the job-handle path: submit returns 202 and
// an ID, polling converges on done with the same result bytes the sync
// path returns, and unknown IDs are 404.
func TestAsyncSubmitPoll(t *testing.T) {
	det := fabricDetector()
	jobFor := func(string) eval.JobFunc {
		return func(eval.Job) (eval.Detail, error) { return stubDetail(0.25), nil }
	}
	nodes := startNodes(t, det, 2, serve.Config{Workers: 2, QueueSize: 4}, jobFor)
	g := newTestGateway(t, newFakeClock(), nodeAddrs(nodes), nil)
	waitRoutable(t, g, nodeAddrs(nodes)...)
	gwSrv := httptest.NewServer(g.Handler())
	defer gwSrv.Close()

	body, _ := json.Marshal(evalReq(t, 71))
	resp, err := http.Post(gwSrv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || sub.ID == "" {
		t.Fatalf("submit: status %d id %q", resp.StatusCode, sub.ID)
	}

	var status jobStatusResponse
	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := http.Get(gwSrv.URL + "/v1/jobs/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d", r.StatusCode)
		}
		if err := json.NewDecoder(r.Body).Decode(&status); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if status.Status == "done" || status.Status == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", status.Status)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if status.Status != "done" || status.Error != "" {
		t.Fatalf("job finished %q (err %q)", status.Status, status.Error)
	}
	if got := decodeEvalResponse(t, status.Result); got.PWC != 0.25 {
		t.Errorf("async result PWC = %v, want 0.25", got.PWC)
	}

	r, err := http.Get(gwSrv.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job id: status %d, want 404", r.StatusCode)
	}
}

// TestBackendStalenessWithInjectedClock drives the heartbeat-timeout logic
// entirely through the fake clock: a silent backend goes unroutable when
// virtual time jumps past the timeout, and the next real heartbeat
// restores it.
func TestBackendStalenessWithInjectedClock(t *testing.T) {
	det := fabricDetector()
	jobFor := func(string) eval.JobFunc {
		return func(eval.Job) (eval.Detail, error) { return stubDetail(0.25), nil }
	}
	nodes := startNodes(t, det, 1, serve.Config{Workers: 1, QueueSize: 1}, jobFor)
	clock := newFakeClock()
	g := newTestGateway(t, clock, nodeAddrs(nodes), func(cfg *GatewayConfig) {
		cfg.HeartbeatTimeout = time.Minute
	})
	waitRoutable(t, g, nodes[0].addr)

	// A real heartbeat can land between the advance and the check and
	// restamp lastSeen; re-advancing on each try makes the race harmless.
	b := g.backend(nodes[0].addr)
	stale := false
	for i := 0; i < 100 && !stale; i++ {
		clock.advance(2 * time.Minute)
		stale = !b.available(clock.Now())
	}
	if !stale {
		t.Fatal("backend still routable after virtual heartbeat timeout")
	}
	// The node heartbeats every 50ms of real time; the next one stamps
	// lastSeen with the advanced virtual now and revives the backend.
	waitRoutable(t, g, nodes[0].addr)
}

// TestGatewayValidatesAtEdge: malformed requests are rejected with 400
// before any node round-trip is spent on them.
func TestGatewayValidatesAtEdge(t *testing.T) {
	det := fabricDetector()
	var calls atomic.Int64
	jobFor := func(string) eval.JobFunc {
		return func(eval.Job) (eval.Detail, error) {
			calls.Add(1)
			return stubDetail(0.25), nil
		}
	}
	nodes := startNodes(t, det, 1, serve.Config{Workers: 1, QueueSize: 2}, jobFor)
	g := newTestGateway(t, newFakeClock(), nodeAddrs(nodes), nil)
	waitRoutable(t, g, nodes[0].addr)
	gwSrv := httptest.NewServer(g.Handler())
	defer gwSrv.Close()

	for name, body := range map[string]string{
		"not json":      "{",
		"bad scene":     `{"scene":"moon","challenge":"fix","target":2}`,
		"bad challenge": `{"scene":"road","challenge":"warp9","target":2}`,
		"bad patch":     `{"scene":"road","challenge":"fix","patch":"!!!"}`,
	} {
		for _, path := range []string{"/v1/evaluate", "/v1/jobs"} {
			resp, err := http.Post(gwSrv.URL+path, "application/json", bytes.NewReader([]byte(body)))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("%s %s: status %d, want 400", path, name, resp.StatusCode)
			}
		}
	}
	if n := calls.Load(); n != 0 {
		t.Errorf("%d node executions for edge-rejected requests, want 0", n)
	}
}

// TestGatewayMetricsExposition spot-checks the gateway registry surface:
// the derived ring/backend gauges and the per-endpoint counters.
func TestGatewayMetricsExposition(t *testing.T) {
	det := fabricDetector()
	jobFor := func(string) eval.JobFunc {
		return func(eval.Job) (eval.Detail, error) { return stubDetail(0.25), nil }
	}
	nodes := startNodes(t, det, 2, serve.Config{Workers: 1, QueueSize: 2}, jobFor)
	g := newTestGateway(t, newFakeClock(), nodeAddrs(nodes), nil)
	waitRoutable(t, g, nodeAddrs(nodes)...)
	gwSrv := httptest.NewServer(g.Handler())
	defer gwSrv.Close()

	body, _ := json.Marshal(evalReq(t, 81))
	resp, err := http.Post(gwSrv.URL+"/v1/evaluate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	m, err := http.Get(gwSrv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(m.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"fabric_gateway_ring_nodes 2",
		"fabric_gateway_backends_available 2",
		`fabric_gateway_requests_total{code="200",endpoint="evaluate"} 1`,
		"fabric_gateway_request_seconds_count",
		"fabric_gateway_node_jobs_total",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
}

package fabric

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
	"sync"
)

// Ring is a consistent-hash ring with virtual nodes. Keys (patch digests)
// map to node IDs; adding or removing one node moves only the keys in the
// arcs it owns, which is what preserves cache affinity across fleet
// changes. Safe for concurrent use.
type Ring struct {
	mu       sync.RWMutex
	replicas int
	hashes   []uint64          // sorted virtual-node positions
	owner    map[uint64]string // position -> node id
	nodes    map[string]bool
}

// DefaultReplicas is the virtual-node count per physical node; 64 keeps
// the key distribution within a few percent of uniform for small fleets.
const DefaultReplicas = 64

// NewRing returns an empty ring; replicas ≤ 0 means DefaultReplicas.
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	return &Ring{replicas: replicas, owner: map[uint64]string{}, nodes: map[string]bool{}}
}

// ringHash positions a string on the ring: the first 8 bytes of its
// SHA-256, so placement is stable across processes and runs.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.LittleEndian.Uint64(sum[:8])
}

// Add inserts a node (idempotent).
func (r *Ring) Add(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nodes[id] {
		return
	}
	r.nodes[id] = true
	for i := 0; i < r.replicas; i++ {
		h := ringHash(id + "#" + strconv.Itoa(i))
		// A full 64-bit collision across vnode labels is ~impossible; skip
		// rather than silently stealing another node's position.
		if _, taken := r.owner[h]; taken {
			continue
		}
		r.owner[h] = id
		r.hashes = append(r.hashes, h)
	}
	sort.Slice(r.hashes, func(i, j int) bool { return r.hashes[i] < r.hashes[j] })
}

// Remove deletes a node and its virtual nodes (idempotent).
func (r *Ring) Remove(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.nodes[id] {
		return
	}
	delete(r.nodes, id)
	kept := r.hashes[:0]
	for _, h := range r.hashes {
		if r.owner[h] == id {
			delete(r.owner, h)
			continue
		}
		kept = append(kept, h)
	}
	r.hashes = kept
}

// Len reports the number of physical nodes.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Nodes returns the node IDs in sorted order.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for id := range r.nodes {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the node owning key, or "" on an empty ring.
func (r *Ring) Lookup(key string) string {
	seq := r.Sequence(key, 1)
	if len(seq) == 0 {
		return ""
	}
	return seq[0]
}

// Sequence returns up to n distinct nodes in ring order starting at key's
// position — the primary owner first, then the failover preference order.
// Every caller with the same key and fleet sees the same sequence, so
// retries land deterministically.
func (r *Ring) Sequence(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.hashes) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := ringHash(key)
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.hashes) && len(out) < n; i++ {
		id := r.owner[r.hashes[(start+i)%len(r.hashes)]]
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

package fabric

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"roadtrojan/internal/obs"
	"roadtrojan/internal/serve"
	"roadtrojan/internal/telemetry"
)

// GatewayConfig tunes the stateless front-end.
type GatewayConfig struct {
	// Nodes are the initial backend addresses; more can join via AddNode.
	Nodes []string
	// Replicas is the ring virtual-node count; 0 means DefaultReplicas.
	Replicas int
	// MaxAttempts bounds full ring passes per job (the node-failure retry
	// budget); 0 means 3.
	MaxAttempts int
	// RetryBackoff is the base delay between dispatch passes, doubling per
	// attempt; 0 means 50ms.
	RetryBackoff time.Duration
	// RedialBackoff is the base backend reconnect delay; 0 means 100ms.
	RedialBackoff time.Duration
	// HeartbeatTimeout marks a silent backend unavailable; 0 means 5s.
	HeartbeatTimeout time.Duration
	// JobTimeout bounds one job end to end (including retries); 0 means
	// 2 minutes.
	JobTimeout time.Duration
	// AttemptTimeout bounds a single node round-trip; when it expires the
	// job fails over to the next ring owner instead of waiting out the
	// whole JobTimeout on one hung backend. 0 disables the per-attempt
	// bound (cmd/gatewayd defaults it to 30s).
	AttemptTimeout time.Duration
	// HelloTimeout bounds the Hello handshake after a dial: a peer that
	// accepts the connection but never introduces itself is cut off.
	// 0 means 3s.
	HelloTimeout time.Duration
	// BreakerThreshold is the consecutive transport failures that open a
	// backend's circuit breaker; 0 means 3.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before allowing a
	// half-open probe; 0 means 5s.
	BreakerCooldown time.Duration
	// JobTableSize bounds the async job table; 0 means 1024. A table full
	// of incomplete jobs rejects new submissions with 429.
	JobTableSize int
	// WAL, when non-nil, journals every async job (submit/dispatch/result)
	// and is replayed by NewGateway: finished jobs answer polls again and
	// unfinished ones are re-dispatched. Open it with OpenWAL; the gateway
	// takes ownership and closes it on Close.
	WAL *WAL
	// Dial opens a connection to a node address; nil means TCP with a 5s
	// timeout. Tests inject loopback or in-memory dialers.
	Dial func(addr string) (net.Conn, error)
	// Clock drives staleness checks and backoff; nil means WallClock.
	Clock Clock
	// Trace receives one span per HTTP request (nil = no tracing).
	Trace *obs.Trace
}

func (c *GatewayConfig) fillDefaults() {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.RedialBackoff <= 0 {
		c.RedialBackoff = 100 * time.Millisecond
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 5 * time.Second
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 2 * time.Minute
	}
	if c.HelloTimeout <= 0 {
		c.HelloTimeout = 3 * time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.JobTableSize <= 0 {
		c.JobTableSize = 1024
	}
	if c.Dial == nil {
		c.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 5*time.Second)
		}
	}
	if c.Clock == nil {
		c.Clock = WallClock()
	}
}

// errSaturated reports that every routable shard rejected the job with a
// full queue: the client should back off (429 + Retry-After), not the
// gateway.
type errSaturated struct{ retryAfter int }

func (e *errSaturated) Error() string { return "fabric: all shards saturated" }

// ErrNoBackends means no node is currently routable.
var ErrNoBackends = errors.New("fabric: no live backends")

// ErrGatewayClosed is returned for work submitted after Close.
var ErrGatewayClosed = errors.New("fabric: gateway shut down")

// Gateway is the stateless eval front-end: it owns no detector and no
// result cache, only the hash ring, the backend connections, and a bounded
// table of in-flight async jobs. Any number of gateways can front the same
// fleet; routing is a pure function of (patch digest, fleet membership).
type Gateway struct {
	cfg    GatewayConfig
	reg    *telemetry.Registry
	clock  Clock
	ring   *Ring
	closed chan struct{}

	mu       sync.Mutex
	backends map[string]*backend

	jobSeq   atomic.Uint64 // wire job ids
	asyncSeq atomic.Uint64 // async job names

	jobsMu   sync.Mutex
	jobTable map[string]*asyncJob
	jobOrder []string
	asyncWG  sync.WaitGroup

	wal *WAL

	retries      *telemetry.Counter
	saturated    *telemetry.Counter
	decodeErrors *telemetry.Counter
	walErrors    *telemetry.Counter
	dispatchHist *telemetry.Histogram
}

// NewGateway builds the front-end and starts dialing the configured nodes.
func NewGateway(cfg GatewayConfig) *Gateway {
	cfg.fillDefaults()
	reg := telemetry.NewRegistry()
	g := &Gateway{
		cfg:      cfg,
		reg:      reg,
		clock:    cfg.Clock,
		ring:     NewRing(cfg.Replicas),
		closed:   make(chan struct{}),
		backends: map[string]*backend{},
		jobTable: map[string]*asyncJob{},

		wal: cfg.WAL,

		retries:      reg.Counter("fabric_gateway_retries_total", "jobs re-dispatched after a node failure", nil),
		saturated:    reg.Counter("fabric_gateway_saturated_total", "jobs rejected because every shard's queue was full", nil),
		decodeErrors: reg.Counter("fabric_gateway_frame_decode_errors_total", "malformed frames received from nodes", nil),
		walErrors:    reg.Counter("fabric_gateway_wal_errors_total", "failed WAL appends (jobs proceed, durability degraded)", nil),
	}
	g.dispatchHist = reg.Histogram("fabric_gateway_stage_seconds", "gateway-side stage latency (exemplars carry trace ids)",
		telemetry.Labels{"stage": "dispatch"}, nil)
	reg.GaugeFunc("fabric_gateway_ring_nodes", "physical nodes on the hash ring", nil,
		func() float64 { return float64(g.ring.Len()) })
	reg.GaugeFunc("fabric_gateway_backends_available", "backends currently routable", nil,
		func() float64 {
			now := g.clock.Now()
			n := 0
			for _, b := range g.allBackends() {
				if b.available(now) {
					n++
				}
			}
			return float64(n)
		})
	for _, addr := range cfg.Nodes {
		g.AddNode(addr)
	}
	if g.wal != nil {
		g.replayWAL(g.wal.Records())
	}
	return g
}

// Metrics exposes the gateway registry.
func (g *Gateway) Metrics() *telemetry.Registry { return g.reg }

// Ring exposes the hash ring (read-only use: tests and /healthz).
func (g *Gateway) Ring() *Ring { return g.ring }

func (g *Gateway) allBackends() []*backend {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*backend, 0, len(g.backends))
	for _, b := range g.backends {
		out = append(out, b)
	}
	return out
}

func (g *Gateway) backend(addr string) *backend {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.backends[addr]
}

// AddNode joins a node: it enters the hash ring immediately (so routing
// converges fleet-wide) and the gateway starts dialing it.
func (g *Gateway) AddNode(addr string) {
	g.mu.Lock()
	if _, ok := g.backends[addr]; ok {
		g.mu.Unlock()
		return
	}
	b := newBackend(g, addr)
	g.backends[addr] = b
	g.mu.Unlock()
	g.ring.Add(addr)
	go b.runLoop()
}

// RemoveNode leaves a node gracefully: it leaves the ring (no new jobs),
// in-flight jobs drain, then the connection closes.
func (g *Gateway) RemoveNode(addr string) {
	g.ring.Remove(addr)
	g.mu.Lock()
	b := g.backends[addr]
	delete(g.backends, addr)
	g.mu.Unlock()
	if b != nil {
		b.remove()
	}
}

// nodeDraining handles a node-initiated leave (Drain frame or a draining
// health report): take it off the ring so new jobs route around it while
// its in-flight jobs finish.
func (g *Gateway) nodeDraining(addr string) {
	g.ring.Remove(addr)
}

// backendUp records a connectivity transition for the per-node gauge.
func (g *Gateway) backendUp(addr string, up bool) {
	v := 0.0
	if up {
		v = 1
	}
	g.reg.Gauge("fabric_gateway_backend_up", "1 when the backend connection is established",
		telemetry.Labels{"node": addr}).Set(v)
}

// dispatch routes one job: consistent-hash sequence for the patch digest,
// immediate failover across the ring on node failure, bounded backoff
// between full passes, and a saturation verdict when every routable shard
// is queue-full.
//
// Tracing: a "dispatch" span (child of the request span riding ctx, or a
// fresh root) covers the whole routing decision, with one "attempt" child
// per node tried. The attempt span's context travels to the node in the job
// envelope, so in the merged tree exactly the winning attempt carries the
// node's fabric_job subtree while failed attempts sit beside it as siblings
// recording their outcome.
func (g *Gateway) dispatch(ctx context.Context, req serve.EvalRequest) (payload []byte, err error) {
	key := req.Digest()
	dsp := g.spanUnder(ctx, "dispatch", obs.S("key", key))
	outcome := "error"
	start := g.clock.Now()
	defer func() {
		if err == nil {
			outcome = "ok"
		}
		dsp.End(obs.S("outcome", outcome))
		g.dispatchHist.ObserveExemplar(g.clock.Now().Sub(start).Seconds(), dsp.TraceID())
	}()
	backoff := g.cfg.RetryBackoff
	var lastErr error
	for attempt := 0; attempt < g.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			g.retries.Inc()
			select {
			case <-g.clock.After(backoff):
			case <-ctx.Done():
				outcome = "canceled"
				return nil, ctx.Err()
			case <-g.closed:
				outcome = "gateway_closed"
				return nil, ErrGatewayClosed
			}
			backoff *= 2
		}
		seq := g.ring.Sequence(key, g.ring.Len())
		sawSaturated, sawDown := false, false
		retryAfter := 1
		now := g.clock.Now()
		for _, addr := range seq {
			b := g.backend(addr)
			if b == nil || !b.available(now) {
				sawDown = true
				continue
			}
			attemptCtx, cancel := ctx, context.CancelFunc(nil)
			if g.cfg.AttemptTimeout > 0 {
				attemptCtx, cancel = context.WithTimeout(ctx, g.cfg.AttemptTimeout)
			}
			asp := dsp.Child("attempt", obs.S("node", addr), obs.I("pass", attempt))
			payload, err := b.roundTrip(attemptCtx, req, asp.Context().Encode())
			if cancel != nil {
				cancel()
			}
			if err == nil {
				asp.End(obs.S("outcome", "ok"))
				g.reg.Counter("fabric_gateway_node_jobs_total", "jobs completed per backend",
					telemetry.Labels{"node": addr}).Inc()
				return payload, nil
			}
			var jf *jobFailedError
			switch {
			case errors.Is(err, errBackendDown):
				asp.End(obs.S("outcome", "backend_down"))
				sawDown, lastErr = true, err
			case errors.As(err, &jf):
				asp.End(obs.S("outcome", jf.code))
				switch jf.code {
				case CodeQueueFull:
					sawSaturated, lastErr = true, err
					if jf.retryAfter > retryAfter {
						retryAfter = jf.retryAfter
					}
				case CodeDraining, CodeExpired:
					// Expired means the node gave up on the propagated
					// deadline; with job budget left the gateway fails over.
					sawDown, lastErr = true, err
				case CodeBadRequest:
					outcome = CodeBadRequest
					return nil, fmt.Errorf("%w: %s", serve.ErrBadRequest, jf.msg)
				default:
					// The job ran and failed; it is deterministic, so
					// another node would fail identically.
					outcome = "job_failed"
					return nil, jf
				}
			case errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil:
				// This attempt's budget expired, not the job's: the backend
				// is hung, so treat it as down and fail over.
				asp.End(obs.S("outcome", "attempt_timeout"))
				sawDown, lastErr = true, err
			default:
				asp.End(obs.S("outcome", "canceled"))
				outcome = "canceled"
				return nil, err // job-level cancellation/deadline
			}
		}
		if sawSaturated && !sawDown {
			g.saturated.Inc()
			outcome = "saturated"
			return nil, &errSaturated{retryAfter: retryAfter}
		}
		if len(seq) == 0 {
			lastErr = ErrNoBackends
		}
	}
	if lastErr == nil {
		lastErr = ErrNoBackends
	}
	outcome = "exhausted"
	return nil, fmt.Errorf("fabric: job failed after %d attempts: %w", g.cfg.MaxAttempts, lastErr)
}

// spanUnder opens a span as a child of the span riding ctx, or as a root on
// the gateway trace when the request was not traced.
func (g *Gateway) spanUnder(ctx context.Context, name string, attrs ...obs.Attr) *obs.Span {
	if parent := obs.SpanFromContext(ctx); parent.Enabled() {
		return parent.Child(name, attrs...)
	}
	return g.cfg.Trace.Span(name, attrs...)
}

// Close shuts the gateway down: backends close, async jobs get until ctx
// to finish, late submissions fail.
func (g *Gateway) Close(ctx context.Context) error {
	g.mu.Lock()
	select {
	case <-g.closed:
		g.mu.Unlock()
		return nil
	default:
	}
	close(g.closed)
	backends := make([]*backend, 0, len(g.backends))
	for _, b := range g.backends {
		backends = append(backends, b)
	}
	g.mu.Unlock()
	for _, b := range backends {
		b.remove()
	}
	done := make(chan struct{})
	go func() { g.asyncWG.Wait(); close(done) }()
	select {
	case <-done:
		if g.wal != nil {
			return g.wal.Close()
		}
		return nil
	case <-ctx.Done():
		return fmt.Errorf("fabric: gateway drain: %w", ctx.Err())
	}
}

// --- async job table ---

type asyncJob struct {
	id string

	mu     sync.Mutex
	status string // pending | running | done | failed
	result json.RawMessage
	errMsg string
}

func (j *asyncJob) set(status string, result []byte, errMsg string) {
	j.mu.Lock()
	j.status, j.result, j.errMsg = status, result, errMsg
	j.mu.Unlock()
}

func (j *asyncJob) view() (string, json.RawMessage, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status, j.result, j.errMsg
}

func (j *asyncJob) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status == "done" || j.status == "failed"
}

// addJob registers a new async job, evicting the oldest completed entry
// when the table is full. Returns false when every slot holds an
// incomplete job — backpressure for the submit path.
func (g *Gateway) addJob(j *asyncJob) bool {
	g.jobsMu.Lock()
	defer g.jobsMu.Unlock()
	if len(g.jobOrder) >= g.cfg.JobTableSize {
		evicted := false
		for i, id := range g.jobOrder {
			if g.jobTable[id].terminal() {
				delete(g.jobTable, id)
				g.jobOrder = append(g.jobOrder[:i], g.jobOrder[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return false
		}
	}
	g.jobTable[j.id] = j
	g.jobOrder = append(g.jobOrder, j.id)
	return true
}

func (g *Gateway) getJob(id string) *asyncJob {
	g.jobsMu.Lock()
	defer g.jobsMu.Unlock()
	return g.jobTable[id]
}

// --- HTTP front-end ---

// Handler returns the gateway mux.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/v1/evaluate", g.instrument("evaluate", g.handleEvaluate))
	mux.Handle("POST /v1/jobs", g.instrument("jobs_submit", g.handleSubmit))
	mux.Handle("GET /v1/jobs/{id}", g.instrument("jobs_poll", g.handlePoll))
	mux.Handle("/healthz", g.instrument("healthz", g.handleHealthz))
	mux.Handle("/metrics", http.HandlerFunc(g.handleMetrics))
	return mux
}

func (g *Gateway) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	hist := g.reg.Histogram("fabric_gateway_request_seconds", "request latency by endpoint",
		telemetry.Labels{"endpoint": endpoint}, nil)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		// An inbound trace context (an upstream caller's span) makes this
		// request span a child in its tree; otherwise a fresh trace is
		// minted here and the gateway is the root.
		sc, _ := obs.ParseSpanContext(r.Header.Get(obs.TraceHeader))
		sp := g.cfg.Trace.SpanInContext(sc, "gateway_request", obs.S("endpoint", endpoint), obs.S("method", r.Method))
		if sp != nil {
			r = r.WithContext(obs.ContextWithSpan(r.Context(), sp))
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		sp.End(obs.I("code", sw.code))
		hist.Observe(time.Since(start).Seconds())
		g.reg.Counter("fabric_gateway_requests_total", "requests by endpoint and status code",
			telemetry.Labels{"endpoint": endpoint, "code": strconv.Itoa(sw.code)}).Inc()
	})
}

type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeDispatchError maps dispatch failures onto the serve error surface.
// Every body carries a machine-readable code alongside the message.
func writeDispatchError(w http.ResponseWriter, err error) {
	var sat *errSaturated
	switch {
	case errors.As(err, &sat):
		w.Header().Set("Retry-After", strconv.Itoa(sat.retryAfter))
		writeJSON(w, http.StatusTooManyRequests, serve.ErrorResponse{Error: err.Error(), Code: serve.CodeSaturated})
	case errors.Is(err, serve.ErrBadRequest):
		writeJSON(w, http.StatusBadRequest, serve.ErrorResponse{Error: err.Error(), Code: serve.CodeBadRequest})
	case errors.Is(err, ErrNoBackends), errors.Is(err, ErrGatewayClosed), errors.Is(err, errBackendDown):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, serve.ErrorResponse{Error: err.Error(), Code: serve.CodeUnavailable})
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeJSON(w, http.StatusGatewayTimeout, serve.ErrorResponse{Error: err.Error(), Code: serve.CodeTimeout})
	default:
		writeJSON(w, http.StatusBadGateway, serve.ErrorResponse{Error: err.Error(), Code: serve.CodeInternal})
	}
}

// handleEvaluate is the synchronous compatibility path: same request and
// response shape as single-box serve, with the node's response bytes
// forwarded verbatim.
func (g *Gateway) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, serve.ErrorResponse{Error: "POST required", Code: serve.CodeMethodNotAllowed})
		return
	}
	var req serve.EvalRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, serve.ErrorResponse{Error: "bad JSON: " + err.Error(), Code: serve.CodeBadRequest})
		return
	}
	if err := req.Validate(); err != nil {
		writeJSON(w, http.StatusBadRequest, serve.ErrorResponse{Error: err.Error(), Code: serve.CodeBadRequest})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.JobTimeout)
	defer cancel()
	payload, err := g.dispatch(ctx, req)
	if err != nil {
		writeDispatchError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(payload)
}

// submitResponse is the POST /v1/jobs reply.
type submitResponse struct {
	ID     string `json:"id"`
	Status string `json:"status"`
}

// jobStatusResponse is the GET /v1/jobs/{id} reply.
type jobStatusResponse struct {
	ID     string          `json:"id"`
	Status string          `json:"status"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// handleSubmit accepts a job asynchronously: validate at the edge, shed
// load when the whole fleet is saturated (same 429 + Retry-After contract
// as the sync path), journal it, park it in the bounded table, dispatch in
// the background, return the poll handle.
func (g *Gateway) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req serve.EvalRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, serve.ErrorResponse{Error: "bad JSON: " + err.Error(), Code: serve.CodeBadRequest})
		return
	}
	if err := req.Validate(); err != nil {
		writeJSON(w, http.StatusBadRequest, serve.ErrorResponse{Error: err.Error(), Code: serve.CodeBadRequest})
		return
	}
	select {
	case <-g.closed:
		writeJSON(w, http.StatusServiceUnavailable, serve.ErrorResponse{Error: ErrGatewayClosed.Error(), Code: serve.CodeShuttingDown})
		return
	default:
	}
	if retryAfter, sat := g.fleetSaturated(); sat {
		g.saturated.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
		writeJSON(w, http.StatusTooManyRequests, serve.ErrorResponse{Error: "fabric: all shards saturated", Code: serve.CodeSaturated})
		return
	}
	seq := g.asyncSeq.Add(1)
	id := fmt.Sprintf("j%06d-%.8s", seq, req.Digest())
	job := &asyncJob{id: id, status: "pending"}
	if !g.addJob(job) {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, serve.ErrorResponse{Error: "fabric: job table full", Code: serve.CodeSaturated})
		return
	}
	if g.wal != nil {
		// Validate normalized the request in place, so the journaled JSON
		// re-validates and routes identically on replay.
		reqJSON, err := json.Marshal(req)
		if err == nil {
			err = g.wal.Append(WALRecord{T: walSubmit, ID: id, Seq: seq, Digest: req.Digest(), Req: reqJSON})
		}
		if err != nil {
			g.walErrors.Inc()
		}
	}
	g.runAsync(job, req)
	writeJSON(w, http.StatusAccepted, submitResponse{ID: id, Status: "pending"})
}

// fleetSaturated reports whether every routable backend's last health
// report shows a full queue — the async-path analogue of dispatch's
// errSaturated verdict, decided from heartbeats instead of a round-trip.
// The hint returned is the largest RetryAfter any node advertised.
func (g *Gateway) fleetSaturated() (retryAfter int, saturated bool) {
	now := g.clock.Now()
	routable, full := 0, 0
	retryAfter = 1
	for _, b := range g.allBackends() {
		if !b.available(now) {
			continue
		}
		routable++
		h, _, _ := b.snapshot()
		if h.QueueCapacity > 0 && h.QueueDepth >= h.QueueCapacity {
			full++
			if h.RetryAfter > retryAfter {
				retryAfter = h.RetryAfter
			}
		}
	}
	return retryAfter, routable > 0 && full == routable
}

// runAsync drives one async job to a terminal state in the background,
// journaling the dispatch and outcome. Shared by handleSubmit and WAL
// replay.
func (g *Gateway) runAsync(job *asyncJob, req serve.EvalRequest) {
	g.asyncWG.Add(1)
	go func() {
		defer g.asyncWG.Done()
		job.set("running", nil, "")
		g.walAppend(WALRecord{T: walDispatch, ID: job.id})
		ctx, cancel := context.WithTimeout(context.Background(), g.cfg.JobTimeout)
		defer cancel()
		payload, err := g.dispatch(ctx, req)
		if err != nil {
			g.reg.Counter("fabric_gateway_jobs_total", "async jobs by final status",
				telemetry.Labels{"status": "failed"}).Inc()
			job.set("failed", nil, err.Error())
			g.walAppend(WALRecord{T: walResult, ID: job.id, Status: "failed", Error: err.Error()})
			return
		}
		g.reg.Counter("fabric_gateway_jobs_total", "async jobs by final status",
			telemetry.Labels{"status": "done"}).Inc()
		job.set("done", payload, "")
		g.walAppend(WALRecord{T: walResult, ID: job.id, Status: "done", Result: payload})
	}()
}

// walAppend journals one record when a WAL is configured; append failures
// degrade durability, not availability.
func (g *Gateway) walAppend(rec WALRecord) {
	if g.wal == nil {
		return
	}
	if err := g.wal.Append(rec); err != nil {
		g.walErrors.Inc()
	}
}

// replayWAL rebuilds the async-job table from a journal: terminal jobs
// answer polls again with their recorded bytes, and jobs that never
// reached a result record are re-dispatched. Re-dispatch cannot double
// execute on the fleet — routing keys on the patch digest, so the job
// lands on the node whose cache already holds the evaluation.
func (g *Gateway) replayWAL(records []WALRecord) {
	type walEntry struct {
		req    json.RawMessage
		status string
		result json.RawMessage
		errMsg string
	}
	byID := map[string]*walEntry{}
	var order []string
	var maxSeq uint64
	for _, rec := range records {
		switch rec.T {
		case walSubmit:
			if byID[rec.ID] != nil {
				continue
			}
			byID[rec.ID] = &walEntry{req: rec.Req}
			order = append(order, rec.ID)
			if rec.Seq > maxSeq {
				maxSeq = rec.Seq
			}
		case walResult:
			if e := byID[rec.ID]; e != nil {
				e.status, e.result, e.errMsg = rec.Status, rec.Result, rec.Error
			}
		}
	}
	g.asyncSeq.Store(maxSeq) // fresh ids continue past every replayed one
	replayed := g.reg.Counter("fabric_gateway_wal_replayed_jobs_total", "unfinished jobs re-dispatched from the WAL on startup", nil)
	for _, id := range order {
		e := byID[id]
		job := &asyncJob{id: id}
		switch e.status {
		case "done":
			job.status, job.result = "done", e.result
		case "failed":
			job.status, job.errMsg = "failed", e.errMsg
		default:
			job.status = "pending"
		}
		if !g.addJob(job) {
			g.walErrors.Inc()
			continue
		}
		if e.status == "" {
			var req serve.EvalRequest
			if err := json.Unmarshal(e.req, &req); err != nil {
				msg := "fabric: wal: undecodable request: " + err.Error()
				job.set("failed", nil, msg)
				g.walAppend(WALRecord{T: walResult, ID: id, Status: "failed", Error: msg})
				continue
			}
			replayed.Inc()
			g.runAsync(job, req)
		}
	}
}

// handlePoll reports an async job's state, embedding the finished result.
func (g *Gateway) handlePoll(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job := g.getJob(id)
	if job == nil {
		writeJSON(w, http.StatusNotFound, serve.ErrorResponse{Error: "unknown job " + id, Code: serve.CodeNotFound})
		return
	}
	status, result, errMsg := job.view()
	writeJSON(w, http.StatusOK, jobStatusResponse{ID: id, Status: status, Result: result, Error: errMsg})
}

// handleHealthz reports the fleet as the gateway sees it. A shut-down
// gateway (or one with an empty ring — nothing routable) answers 503 so
// load balancers stop sending it traffic; the body still carries the full
// per-node picture for operators.
func (g *Gateway) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	now := g.clock.Now()
	nodes := map[string]any{}
	for _, b := range g.allBackends() {
		h, up, lastSeen := b.snapshot()
		nodes[b.addr] = map[string]any{
			"up":         up,
			"available":  b.available(now),
			"id":         h.ID,
			"queueDepth": h.QueueDepth,
			"queueCap":   h.QueueCapacity,
			"inflight":   h.Inflight,
			"lastSeenMs": now.Sub(lastSeen).Milliseconds(),
		}
	}
	status, code, draining := "ok", http.StatusOK, false
	select {
	case <-g.closed:
		status, code, draining = "draining", http.StatusServiceUnavailable, true
	default:
		if g.ring.Len() == 0 {
			status, code = "no_backends", http.StatusServiceUnavailable
		}
	}
	writeJSON(w, code, map[string]any{
		"status":     status,
		"draining":   draining,
		"ring_nodes": g.ring.Len(),
		"nodes":      nodes,
	})
}

// handleMetrics serves the gateway registry plus the fleet-aggregated stage
// histograms: each node pushes its stage snapshots over Stats frames, and
// the gateway merges them (bucket-wise sums, latest exemplar wins) into one
// fabric_fleet_stage_seconds family labelled by stage. Exemplar trace ids
// survive the merge, so a high fleet bucket links straight to a traceable
// request.
func (g *Gateway) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = g.reg.WriteText(w)
	fleet := g.fleetStageStats()
	if len(fleet) == 0 {
		return
	}
	stages := make([]string, 0, len(fleet))
	for st := range fleet {
		stages = append(stages, st)
	}
	sort.Strings(stages)
	_ = telemetry.WriteFamilyHeader(w, "fabric_fleet_stage_seconds", "stage latency aggregated across all fleet nodes")
	for _, st := range stages {
		_ = telemetry.WriteSnapshotSeries(w, "fabric_fleet_stage_seconds", telemetry.Labels{"stage": st}, fleet[st])
	}
}

// fleetStageStats merges every backend's last pushed stage snapshots into
// one per-stage view. Backends are visited in address order so exemplar
// tie-breaking is deterministic; stages whose snapshots disagree on bucket
// bounds (mid-upgrade fleets) are dropped rather than summed wrongly.
func (g *Gateway) fleetStageStats() map[string]telemetry.HistSnapshot {
	backends := g.allBackends()
	sort.Slice(backends, func(i, j int) bool { return backends[i].addr < backends[j].addr })
	perStage := map[string][]telemetry.HistSnapshot{}
	for _, b := range backends {
		for st, snap := range b.stageStats() {
			perStage[st] = append(perStage[st], snap)
		}
	}
	out := make(map[string]telemetry.HistSnapshot, len(perStage))
	for st, snaps := range perStage {
		merged, err := telemetry.MergeSnapshots(snaps)
		if err != nil {
			continue
		}
		out[st] = merged
	}
	return out
}

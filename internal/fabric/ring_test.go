package fabric

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("digest-%04d", i)
	}
	return keys
}

func TestRingLookupOrderIndependent(t *testing.T) {
	a := NewRing(0)
	for _, id := range []string{"n1", "n2", "n3"} {
		a.Add(id)
	}
	b := NewRing(0)
	for _, id := range []string{"n3", "n1", "n2"} {
		b.Add(id)
	}
	for _, k := range ringKeys(500) {
		if got, want := a.Lookup(k), b.Lookup(k); got != want {
			t.Fatalf("lookup(%q) depends on insertion order: %q vs %q", k, got, want)
		}
	}
}

func TestRingSequenceDistinctAndStable(t *testing.T) {
	r := NewRing(0)
	nodes := []string{"n1", "n2", "n3", "n4"}
	for _, id := range nodes {
		r.Add(id)
	}
	for _, k := range ringKeys(100) {
		seq := r.Sequence(k, len(nodes))
		if len(seq) != len(nodes) {
			t.Fatalf("sequence(%q) has %d entries, want %d", k, len(seq), len(nodes))
		}
		seen := map[string]bool{}
		for _, id := range seq {
			if seen[id] {
				t.Fatalf("sequence(%q) repeats %q: %v", k, id, seq)
			}
			seen[id] = true
		}
		if seq[0] != r.Lookup(k) {
			t.Fatalf("sequence(%q) head %q != lookup %q", k, seq[0], r.Lookup(k))
		}
		again := r.Sequence(k, len(nodes))
		for i := range seq {
			if seq[i] != again[i] {
				t.Fatalf("sequence(%q) not deterministic: %v vs %v", k, seq, again)
			}
		}
	}
}

// TestRingRebalanceBounded is the consistent-hashing contract: removing a
// node moves only the keys that node owned, and re-adding it restores the
// original assignment exactly (cache affinity survives a node bounce).
func TestRingRebalanceBounded(t *testing.T) {
	r := NewRing(0)
	for _, id := range []string{"n1", "n2", "n3"} {
		r.Add(id)
	}
	keys := ringKeys(2000)
	before := map[string]string{}
	perNode := map[string]int{}
	for _, k := range keys {
		before[k] = r.Lookup(k)
		perNode[before[k]]++
	}
	for _, id := range []string{"n1", "n2", "n3"} {
		if perNode[id] == 0 {
			t.Fatalf("node %s owns no keys out of %d; distribution broken: %v", id, len(keys), perNode)
		}
	}

	r.Remove("n2")
	moved := 0
	for _, k := range keys {
		after := r.Lookup(k)
		if after == "n2" {
			t.Fatalf("key %q still maps to removed node", k)
		}
		if before[k] != "n2" && after != before[k] {
			t.Fatalf("key %q moved from surviving node %q to %q on unrelated removal", k, before[k], after)
		}
		if before[k] == "n2" {
			moved++
		}
	}
	if moved != perNode["n2"] {
		t.Fatalf("moved %d keys, want exactly n2's %d", moved, perNode["n2"])
	}

	r.Add("n2")
	for _, k := range keys {
		if got := r.Lookup(k); got != before[k] {
			t.Fatalf("key %q maps to %q after rejoin, originally %q", k, got, before[k])
		}
	}
}

func TestRingEdgeCases(t *testing.T) {
	r := NewRing(4)
	if got := r.Lookup("anything"); got != "" {
		t.Fatalf("empty ring lookup = %q, want empty", got)
	}
	if seq := r.Sequence("anything", 3); seq != nil {
		t.Fatalf("empty ring sequence = %v, want nil", seq)
	}
	r.Add("solo")
	r.Add("solo") // idempotent
	if r.Len() != 1 {
		t.Fatalf("len after duplicate add = %d", r.Len())
	}
	if seq := r.Sequence("k", 10); len(seq) != 1 || seq[0] != "solo" {
		t.Fatalf("sequence on 1-node ring = %v", seq)
	}
	r.Remove("ghost") // idempotent no-op
	r.Remove("solo")
	r.Remove("solo")
	if r.Len() != 0 {
		t.Fatalf("len after removal = %d", r.Len())
	}
	if got := r.Nodes(); len(got) != 0 {
		t.Fatalf("nodes after removal = %v", got)
	}
}

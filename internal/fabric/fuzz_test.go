package fabric

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// FuzzReadFrame pins the strict-decode contract: whatever bytes arrive,
// ReadFrame returns io.EOF (clean boundary) or an ErrBadFrame-wrapped
// error — it never panics, and every frame it does accept re-encodes to a
// byte-identical wire image.
func FuzzReadFrame(f *testing.F) {
	f.Add(AppendFrame(nil, Frame{Type: FrameHello, Payload: []byte(`{"id":"n1","workers":4}`)}))
	f.Add(AppendFrame(nil, Frame{Type: FrameJob, JobID: 7, Payload: []byte(`{"scene":"road","seed":3}`)}))
	f.Add(AppendFrame(nil, Frame{Type: FrameDrain}))
	two := AppendFrame(nil, Frame{Type: FrameAck, JobID: 1})
	f.Add(AppendFrame(two, Frame{Type: FrameResult, JobID: 1, Payload: []byte(`{"pwc":0.5}`)}))
	valid := AppendFrame(nil, Frame{Type: FrameHealth, Payload: []byte(`{}`)})
	f.Add(valid[:len(valid)-1]) // truncated payload
	f.Add(valid[:headerSize-3]) // truncated header
	badMagic := append([]byte(nil), valid...)
	badMagic[0] = 'X'
	f.Add(badMagic)
	hugeLen := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(hugeLen[16:20], MaxPayload+1)
	f.Add(hugeLen)
	f.Add([]byte{})
	f.Add([]byte("RTFB"))
	// Chaos-shaped corpora: every truncation point of a two-frame stream
	// (mid-header, mid-payload, and at frame boundaries), and a single-bit
	// flip at every position of a small valid frame — the wire images the
	// fault injector's truncate and corrupt faults actually produce.
	stream := AppendFrame(AppendFrame(nil, Frame{Type: FrameAck, JobID: 9}),
		Frame{Type: FrameResult, JobID: 9, Payload: []byte(`{"pwc":0.5,"cached":false}`)})
	for i := range stream {
		f.Add(append([]byte(nil), stream[:i]...))
	}
	small := AppendFrame(nil, Frame{Type: FrameError, JobID: 2, Payload: []byte(`{"code":"x"}`)})
	for i := range small {
		for bit := 0; bit < 8; bit++ {
			flipped := append([]byte(nil), small...)
			flipped[i] ^= 1 << bit
			f.Add(flipped)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			fr, err := ReadFrame(r)
			if err != nil {
				if err != io.EOF && !errors.Is(err, ErrBadFrame) {
					t.Fatalf("unexpected error class: %v", err)
				}
				return
			}
			if !frameTypeValid(fr.Type) {
				t.Fatalf("decoder accepted invalid type %d", fr.Type)
			}
			if len(fr.Payload) > MaxPayload {
				t.Fatalf("decoder accepted oversize payload %d", len(fr.Payload))
			}
			enc := AppendFrame(nil, fr)
			back, err := ReadFrame(bytes.NewReader(enc))
			if err != nil {
				t.Fatalf("re-decode of accepted frame failed: %v", err)
			}
			if back.Type != fr.Type || back.JobID != fr.JobID || !bytes.Equal(back.Payload, fr.Payload) {
				t.Fatalf("round trip mismatch: %+v vs %+v", fr, back)
			}
		}
	})
}

package fabric

import "time"

// Clock abstracts the wall clock so the gateway's heartbeat staleness and
// retry backoff are testable with injected time. Production uses
// WallClock; the deterministic fabric tests inject a fake whose After
// fires immediately and whose Now is advanced by hand.
type Clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

type wallClock struct{}

func (wallClock) Now() time.Time                         { return time.Now() }
func (wallClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// WallClock returns the real-time clock.
func WallClock() Clock { return wallClock{} }

package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"roadtrojan/internal/obs"
	"roadtrojan/internal/serve"
	"roadtrojan/internal/telemetry"
)

// NodeConfig tunes the fabric listener side.
type NodeConfig struct {
	// ID names this node in Hello/Health frames; "" means the listener
	// address at Serve time.
	ID string
	// Heartbeat is the Health frame interval; 0 means 1 second.
	Heartbeat time.Duration
	// Trace receives one span per fabric job (nil = no tracing).
	Trace *obs.Trace
}

func (c *NodeConfig) fillDefaults() {
	if c.Heartbeat <= 0 {
		c.Heartbeat = time.Second
	}
}

// Node serves the fabric protocol over a serve.Executor: the gateway dials
// it, streams Job frames, and receives Ack/Result/Error frames back plus
// periodic Health heartbeats. One Node handles any number of gateway
// connections; the executor's bounded queue is the shared capacity limit.
type Node struct {
	exec *serve.Executor
	cfg  NodeConfig

	mu       sync.Mutex
	listener net.Listener
	conns    map[*nodeConn]bool
	draining bool

	jobs sync.WaitGroup // in-flight job handlers, for drain

	jobsTotal    *telemetry.Counter
	jobErrors    *telemetry.Counter
	decodeErrors *telemetry.Counter
	connsGauge   *telemetry.Gauge
}

// NewNode wraps an executor with the fabric transport. The node does not
// own the executor: Close drains the node's own in-flight jobs but leaves
// the pool running (cmd/servd shares it with the HTTP server).
func NewNode(exec *serve.Executor, cfg NodeConfig) *Node {
	cfg.fillDefaults()
	reg := exec.Metrics()
	return &Node{
		exec:  exec,
		cfg:   cfg,
		conns: map[*nodeConn]bool{},

		jobsTotal:    reg.Counter("fabric_node_jobs_total", "fabric jobs accepted by this node", nil),
		jobErrors:    reg.Counter("fabric_node_job_errors_total", "fabric jobs answered with an error frame", nil),
		decodeErrors: reg.Counter("fabric_node_frame_decode_errors_total", "malformed frames received", nil),
		connsGauge:   reg.Gauge("fabric_node_connections", "open gateway connections", nil),
	}
}

// nodeConn is one gateway connection: a read loop plus a write mutex so
// job goroutines and the heartbeat can interleave frames safely.
type nodeConn struct {
	conn    net.Conn
	writeMu sync.Mutex
}

func (c *nodeConn) write(f Frame) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return WriteFrame(c.conn, f)
}

// health snapshots the executor state for Hello/Health payloads.
func (n *Node) health() Health {
	n.mu.Lock()
	draining := n.draining
	n.mu.Unlock()
	h := Health{
		ID:            n.cfg.ID,
		Workers:       n.exec.Workers(),
		QueueDepth:    n.exec.QueueDepth(),
		QueueCapacity: n.exec.QueueCapacity(),
		Inflight:      n.exec.Inflight(),
		CachedResults: n.exec.CachedResults(),
		Draining:      draining || n.exec.Draining(),
	}
	if h.QueueCapacity > 0 && h.QueueDepth >= h.QueueCapacity {
		h.RetryAfter = n.exec.RetryAfterSeconds()
	}
	return h
}

// Listen binds addr and serves the fabric protocol until Close.
func (n *Node) Listen(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("fabric: listen %s: %w", addr, err)
	}
	return n.Serve(l)
}

// Serve accepts gateway connections on l until Close. A nil error means a
// clean shutdown.
func (n *Node) Serve(l net.Listener) error {
	n.mu.Lock()
	if n.cfg.ID == "" {
		n.cfg.ID = l.Addr().String()
	}
	n.listener = l
	closed := n.draining
	n.mu.Unlock()
	if closed {
		l.Close()
		return nil
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			n.mu.Lock()
			draining := n.draining
			n.mu.Unlock()
			if draining {
				return nil
			}
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("fabric: accept: %w", err)
		}
		c := &nodeConn{conn: conn}
		n.mu.Lock()
		n.conns[c] = true
		n.mu.Unlock()
		n.connsGauge.Add(1)
		go n.handleConn(c)
	}
}

// Close drains gracefully: stop accepting, announce Drain on every open
// connection, let in-flight jobs finish (bounded by ctx), then close the
// connections. The executor stays up — it belongs to the caller.
func (n *Node) Close(ctx context.Context) error {
	n.mu.Lock()
	if n.draining {
		n.mu.Unlock()
		return nil
	}
	n.draining = true
	l := n.listener
	conns := make([]*nodeConn, 0, len(n.conns))
	for c := range n.conns {
		conns = append(conns, c)
	}
	n.mu.Unlock()

	if l != nil {
		l.Close()
	}
	for _, c := range conns {
		_ = c.write(Frame{Type: FrameDrain})
	}

	done := make(chan struct{})
	go func() { n.jobs.Wait(); close(done) }()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = fmt.Errorf("fabric: drain: %w", ctx.Err())
	}
	for _, c := range conns {
		c.conn.Close()
	}
	return err
}

// handleConn speaks the protocol on one gateway connection: Hello first,
// then heartbeats and job dispatch until the peer hangs up.
func (n *Node) handleConn(c *nodeConn) {
	defer func() {
		n.mu.Lock()
		delete(n.conns, c)
		n.mu.Unlock()
		n.connsGauge.Add(-1)
		c.conn.Close()
	}()

	if err := n.writeHealth(c, FrameHello); err != nil {
		return
	}

	stop := make(chan struct{})
	defer close(stop)
	go n.heartbeat(c, stop)

	for {
		f, err := ReadFrame(c.conn)
		if err != nil {
			if errors.Is(err, ErrBadFrame) {
				n.decodeErrors.Inc()
			}
			return
		}
		switch f.Type {
		case FrameJob:
			n.startJob(c, f)
		case FrameDrain:
			// Gateway-side goodbye: it will stop sending jobs; nothing to do.
		default:
			// Tolerate unexpected-but-valid frame types for forward
			// compatibility within a version.
		}
	}
}

// heartbeat pushes Health frames until the connection closes.
func (n *Node) heartbeat(c *nodeConn, stop <-chan struct{}) {
	t := time.NewTicker(n.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if n.writeHealth(c, FrameHealth) != nil {
				return
			}
			if n.writeStats(c) != nil {
				return
			}
		}
	}
}

func (n *Node) writeHealth(c *nodeConn, typ uint8) error {
	payload, err := json.Marshal(n.health())
	if err != nil {
		return err
	}
	return c.write(Frame{Type: typ, Payload: payload})
}

// writeStats pushes the node's stage-histogram snapshots. Sent after every
// job and with every heartbeat; the gateway keeps only the latest snapshot
// per node, so resends are idempotent.
func (n *Node) writeStats(c *nodeConn) error {
	payload, err := json.Marshal(StatsPayload{ID: n.cfg.ID, Stages: n.exec.StageStats()})
	if err != nil {
		return err
	}
	return c.write(Frame{Type: FrameStats, Payload: payload})
}

// startJob validates and dispatches one Job frame. The executor's bounded
// queue applies backpressure: a full queue answers immediately with a
// queue_full error frame instead of parking the connection. Payloads may
// be a JobPayload envelope (request + remaining deadline budget) or a bare
// serve.EvalRequest from a pre-envelope gateway.
func (n *Node) startJob(c *nodeConn, f Frame) {
	var req serve.EvalRequest
	var timeout time.Duration
	var trace string
	var env JobPayload
	if err := json.Unmarshal(f.Payload, &env); err == nil && len(env.Req) > 0 {
		if err := json.Unmarshal(env.Req, &req); err != nil {
			n.writeJobError(c, f.JobID, JobError{Code: CodeBadRequest, Error: "bad job payload: " + err.Error()})
			return
		}
		if env.TimeoutMs > 0 {
			timeout = time.Duration(env.TimeoutMs) * time.Millisecond
		}
		trace = env.Trace
	} else if err := json.Unmarshal(f.Payload, &req); err != nil {
		n.writeJobError(c, f.JobID, JobError{Code: CodeBadRequest, Error: "bad job payload: " + err.Error()})
		return
	}
	n.mu.Lock()
	draining := n.draining
	n.mu.Unlock()
	if draining {
		n.writeJobError(c, f.JobID, JobError{Code: CodeDraining, Error: "node is draining"})
		return
	}
	_ = c.write(Frame{Type: FrameAck, JobID: f.JobID})
	n.jobsTotal.Inc()
	n.jobs.Add(1)
	go func() {
		defer n.jobs.Done()
		n.runJob(c, f.JobID, req, timeout, trace)
	}()
}

// runJob executes one evaluation and writes the Result or Error frame. The
// response is encoded exactly like the HTTP server encodes it (json.Encoder,
// trailing newline) so the gateway can forward the payload bytes verbatim
// and stay bit-identical with single-box serve. A trace context from the
// envelope parents this node's fabric_job span under the gateway's attempt
// span; the span rides the context so the executor's stage spans (queue,
// batch, per-replica forward/decode) nest beneath it. After each job the
// node pushes a Stats frame so the gateway's fleet view reflects the work
// promptly rather than on the next heartbeat.
func (n *Node) runJob(c *nodeConn, id uint64, req serve.EvalRequest, timeout time.Duration, trace string) {
	sc, ok := obs.ParseSpanContext(trace)
	if !ok {
		// A malformed context must not fail the job: trace locally instead.
		sc = obs.SpanContext{}
	}
	sp := n.cfg.Trace.SpanInContext(sc, "fabric_job", obs.S("node", n.cfg.ID), obs.I64("job", int64(id)))
	ctx := obs.ContextWithSpan(context.Background(), sp)
	if timeout > 0 {
		// The gateway's remaining budget: the pool checks the context before
		// dequeuing, so work the gateway already abandoned is skipped
		// instead of burning a worker slot.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	defer func() { _ = n.writeStats(c) }()
	resp, err := n.exec.Evaluate(ctx, req)
	if err != nil {
		n.jobErrors.Inc()
		je := JobError{Code: CodeInternal, Error: err.Error()}
		switch {
		case errors.Is(err, serve.ErrBadRequest):
			je.Code = CodeBadRequest
		case errors.Is(err, serve.ErrQueueFull):
			je.Code = CodeQueueFull
			je.RetryAfter = n.exec.RetryAfterSeconds()
		case errors.Is(err, serve.ErrShuttingDown):
			je.Code = CodeDraining
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			je.Code = CodeExpired
		}
		n.writeJobError(c, id, je)
		sp.End(obs.S("code", je.Code))
		return
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(resp); err != nil {
		n.jobErrors.Inc()
		n.writeJobError(c, id, JobError{Code: CodeInternal, Error: "encode result: " + err.Error()})
		sp.End(obs.S("code", CodeInternal))
		return
	}
	_ = c.write(Frame{Type: FrameResult, JobID: id, Payload: buf.Bytes()})
	sp.End(obs.S("code", "ok"), obs.I("bytes", buf.Len()))
}

func (n *Node) writeJobError(c *nodeConn, id uint64, je JobError) {
	payload, err := json.Marshal(je)
	if err != nil {
		payload = []byte(`{"code":"internal","error":"encode error"}`)
	}
	_ = c.write(Frame{Type: FrameError, JobID: id, Payload: payload})
}

// Addr returns the bound listener address ("" before Serve).
func (n *Node) Addr() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.listener == nil {
		return ""
	}
	return n.listener.Addr().String()
}

// ID returns the node's fabric identity.
func (n *Node) ID() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cfg.ID
}

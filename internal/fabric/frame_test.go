package fabric

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	cases := []Frame{
		{Type: FrameHello, Payload: []byte(`{"id":"n1"}`)},
		{Type: FrameJob, JobID: 42, Payload: []byte(`{"scene":"road"}`)},
		{Type: FrameAck, JobID: 42},
		{Type: FrameResult, JobID: 42, Payload: bytes.Repeat([]byte{0xAB}, 4096)},
		{Type: FrameError, JobID: 7, Payload: []byte(`{"code":"queue_full","error":"x","retryAfter":2}`)},
		{Type: FrameHealth, Payload: []byte(`{}`)},
		{Type: FrameDrain},
	}
	var buf bytes.Buffer
	for _, f := range cases {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatalf("write %+v: %v", f, err)
		}
	}
	for i, want := range cases {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("read frame %d: %v", i, err)
		}
		if got.Type != want.Type || got.JobID != want.JobID || !bytes.Equal(got.Payload, want.Payload) {
			t.Errorf("frame %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Errorf("drained stream: err = %v, want io.EOF", err)
	}
}

func TestReadFrameStrict(t *testing.T) {
	valid := AppendFrame(nil, Frame{Type: FrameJob, JobID: 1, Payload: []byte("hi")})
	corrupt := func(mutate func(b []byte)) []byte {
		b := append([]byte(nil), valid...)
		mutate(b)
		return b
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty mid-header", valid[:10]},
		{"bad magic", corrupt(func(b []byte) { b[0] = 'X' })},
		{"bad version", corrupt(func(b []byte) { b[4] = 99 })},
		{"zero type", corrupt(func(b []byte) { b[5] = 0 })},
		{"unknown type", corrupt(func(b []byte) { b[5] = 200 })},
		{"nonzero flags", corrupt(func(b []byte) { b[6] = 1 })},
		{"oversize length", corrupt(func(b []byte) {
			binary.LittleEndian.PutUint32(b[16:20], MaxPayload+1)
		})},
		{"truncated payload", valid[:len(valid)-1]},
	}
	for _, tc := range cases {
		_, err := ReadFrame(bytes.NewReader(tc.data))
		if !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: err = %v, want ErrBadFrame", tc.name, err)
		}
	}
}

func TestWriteFrameRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Type: 0}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("zero type: err = %v, want ErrBadFrame", err)
	}
	if err := WriteFrame(&buf, Frame{Type: FrameJob, Payload: make([]byte, MaxPayload+1)}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("oversize payload: err = %v, want ErrBadFrame", err)
	}
}

package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"roadtrojan/internal/chaos"
	"roadtrojan/internal/eval"
	"roadtrojan/internal/serve"
)

// chaosSeed pins every fabric chaos scenario: `make chaos` runs this file
// twice (via -count in CI it is once, but the determinism test below runs
// its scenario twice in-process) and the fault schedules must be identical.
const chaosSeed = 0xD15EA5E

// tcpDial is the plain dialer the chaos injector wraps in these tests.
func tcpDial(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, 5*time.Second)
}

// TestChaosPartitionDuringDispatchExactlyOnce partitions the ring owner
// mid-dispatch: the Job frame vanishes into the partition, the per-attempt
// timeout fires, and the gateway fails over to the next ring owner —
// executing the job exactly once. After Heal the partitioned backend
// recovers and serves again.
func TestChaosPartitionDuringDispatchExactlyOnce(t *testing.T) {
	det := fabricDetector()
	var counts sync.Map // addr -> *atomic.Int64
	jobFor := func(addr string) eval.JobFunc {
		n := &atomic.Int64{}
		counts.Store(addr, n)
		return func(eval.Job) (eval.Detail, error) {
			n.Add(1)
			return stubDetail(0.25), nil
		}
	}
	nodes := startNodes(t, det, 2, serve.Config{Workers: 2, QueueSize: 4}, jobFor)

	in := chaos.New(chaosSeed, chaos.Plan{}, nil)
	g := newTestGateway(t, newFakeClock(), nodeAddrs(nodes), func(cfg *GatewayConfig) {
		cfg.Dial = in.Dial(tcpDial)
		cfg.AttemptTimeout = 500 * time.Millisecond
	})
	waitRoutable(t, g, nodeAddrs(nodes)...)

	req := evalReq(t, 301)
	primary := g.Ring().Lookup(req.Digest())
	seq := g.Ring().Sequence(req.Digest(), 2)
	secondary := seq[1]
	execs := func(addr string) int64 {
		v, _ := counts.Load(addr)
		return v.(*atomic.Int64).Load()
	}

	in.Partition(primary)
	payload, err := g.dispatch(context.Background(), req)
	if err != nil {
		t.Fatalf("dispatch across partition: %v", err)
	}
	if resp := decodeEvalResponse(t, payload); resp.PWC != 0.25 {
		t.Errorf("failover result PWC = %v, want 0.25", resp.PWC)
	}
	if n := execs(primary); n != 0 {
		t.Errorf("partitioned primary executed %d jobs, want 0 (frame should be lost)", n)
	}
	if n := execs(secondary); n != 1 {
		t.Errorf("secondary executed %d jobs, want exactly 1", n)
	}

	// Heal: the parked connection dies, the backend redials clean, and the
	// primary serves its own key again (cache-missing, so it executes).
	in.Heal(primary)
	waitRoutable(t, g, primary)
	if _, err := g.dispatch(context.Background(), req); err != nil {
		t.Fatalf("dispatch after heal: %v", err)
	}
	if n := execs(primary); n != 1 {
		t.Errorf("healed primary executed %d jobs, want 1", n)
	}
	if n := execs(secondary); n != 1 {
		t.Errorf("secondary executed %d jobs after heal, want still 1 (no duplicate)", n)
	}
}

// TestChaosCorruptFrameTripsBadFrameAndBreaker corrupts the Hello frame's
// version byte on the first three connections: each trips ErrBadFrame,
// three consecutive failures open the circuit breaker, and only after the
// cooldown elapses (on the virtual clock) does a clean half-open probe
// close it again. The whole scenario runs twice with the same seed and the
// two chaos schedules must be byte-identical.
func TestChaosCorruptFrameTripsBadFrameAndBreaker(t *testing.T) {
	det := fabricDetector()
	jobFor := func(string) eval.JobFunc {
		return func(eval.Job) (eval.Detail, error) { return stubDetail(0.25), nil }
	}
	nodes := startNodes(t, det, 1, serve.Config{Workers: 1, QueueSize: 2}, jobFor)
	addr := nodes[0].addr

	run := func() []string {
		// XOR 0 lets the injector pick the mask from the seeded PRNG — any
		// nonzero mask on the version byte (header offset 4) is ErrBadFrame.
		in := chaos.New(chaosSeed, chaos.Plan{Rules: []chaos.Rule{
			chaos.On(addr, 0, chaos.Fault{Kind: chaos.KindCorrupt, Dir: chaos.Inbound, After: 4}),
			chaos.On(addr, 1, chaos.Fault{Kind: chaos.KindCorrupt, Dir: chaos.Inbound, After: 4}),
			chaos.On(addr, 2, chaos.Fault{Kind: chaos.KindCorrupt, Dir: chaos.Inbound, After: 4}),
		}}, nil)
		clock := newFakeClock()
		g := newTestGateway(t, clock, []string{addr}, func(cfg *GatewayConfig) {
			cfg.Dial = in.Dial(tcpDial)
			cfg.BreakerThreshold = 3
			cfg.BreakerCooldown = time.Hour
		})

		b := g.backend(addr)
		deadline := time.Now().Add(10 * time.Second)
		for b.breaker.stateValue() != breakerOpen {
			if time.Now().After(deadline) {
				t.Fatal("breaker never opened on corrupt Hello frames")
			}
			time.Sleep(2 * time.Millisecond)
		}
		if g.decodeErrors.Value() == 0 {
			t.Error("corrupt frames did not count as decode errors")
		}
		// While open, the breaker suppresses dialing entirely: the probe
		// (connection #3) must not exist until the cooldown elapses.
		time.Sleep(20 * time.Millisecond)
		if b.available(clock.Now()) {
			t.Error("backend routable while breaker open")
		}

		clock.advance(2 * time.Hour)
		waitRoutable(t, g, addr) // half-open probe succeeds, breaker closes
		if st := b.breaker.stateValue(); st != breakerClosed {
			t.Errorf("breaker state after clean probe = %v, want closed", st)
		}
		if _, err := g.dispatch(context.Background(), evalReq(t, 311)); err != nil {
			t.Fatalf("dispatch after breaker recovery: %v", err)
		}

		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = g.Close(ctx)
		return in.Schedule()
	}

	first, second := run(), run()
	if len(first) == 0 {
		t.Fatal("chaos schedule empty; faults never armed")
	}
	if strings.Join(first, "\n") != strings.Join(second, "\n") {
		t.Errorf("same-seed chaos schedules differ:\n--- run 1\n%s\n--- run 2\n%s",
			strings.Join(first, "\n"), strings.Join(second, "\n"))
	}
}

// TestChaosSlowLorisHelloTimeout trickles the Hello frame one byte every
// 30ms on the first connection: the handshake deadline (150ms) cuts it off
// instead of letting the peer hold the slot for the full 20-byte header
// (600ms). The retry connection is clean and the backend comes up.
func TestChaosSlowLorisHelloTimeout(t *testing.T) {
	det := fabricDetector()
	jobFor := func(string) eval.JobFunc {
		return func(eval.Job) (eval.Detail, error) { return stubDetail(0.25), nil }
	}
	nodes := startNodes(t, det, 1, serve.Config{Workers: 1, QueueSize: 2}, jobFor)
	addr := nodes[0].addr

	in := chaos.New(chaosSeed, chaos.Plan{Rules: []chaos.Rule{
		chaos.On(addr, 0, chaos.Fault{Kind: chaos.KindSlowLoris, Dir: chaos.Inbound, Chunk: 1, Delay: 30 * time.Millisecond}),
	}}, nil)
	start := time.Now()
	g := newTestGateway(t, WallClock(), []string{addr}, func(cfg *GatewayConfig) {
		cfg.Dial = in.Dial(tcpDial)
		cfg.HelloTimeout = 150 * time.Millisecond
	})
	waitRoutable(t, g, addr)
	if elapsed := time.Since(start); elapsed >= 600*time.Millisecond {
		t.Errorf("backend took %v to come up; the slow-loris Hello was not cut off by the handshake timeout", elapsed)
	}
	if g.decodeErrors.Value() == 0 {
		t.Error("timed-out Hello did not surface as a decode error")
	}
	if _, err := g.dispatch(context.Background(), evalReq(t, 321)); err != nil {
		t.Fatalf("dispatch after slow-loris recovery: %v", err)
	}
}

// TestChaosDeadlinePropagation: a job the gateway has already abandoned
// must not burn a worker slot on the node. The node's only worker is
// pinned; a second job queues behind it carrying the gateway's ~300ms
// budget in its Job frame. By the time the worker frees up the budget is
// long gone, and the propagated deadline makes the pool skip the job.
func TestChaosDeadlinePropagation(t *testing.T) {
	det := fabricDetector()
	var calls atomic.Int64
	release := make(chan struct{})
	jobFor := func(string) eval.JobFunc {
		return func(eval.Job) (eval.Detail, error) {
			if calls.Add(1) == 1 {
				<-release
			}
			return stubDetail(0.25), nil
		}
	}
	nodes := startNodes(t, det, 1, serve.Config{Workers: 1, QueueSize: 2}, jobFor)
	var releaseOnce sync.Once
	releaseAll := func() { releaseOnce.Do(func() { close(release) }) }
	defer releaseAll()
	g := newTestGateway(t, newFakeClock(), nodeAddrs(nodes), func(cfg *GatewayConfig) {
		cfg.MaxAttempts = 1
	})
	waitRoutable(t, g, nodes[0].addr)

	// Pin the worker with job A (no deadline: background context).
	resA := make(chan error, 1)
	go func() {
		_, err := g.dispatch(context.Background(), evalReq(t, 331))
		resA <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for nodes[0].exec.Inflight() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("pinned job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Job B queues behind A with a 300ms budget and times out client-side.
	ctxB, cancelB := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancelB()
	if _, err := g.dispatch(ctxB, evalReq(t, 332)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("abandoned dispatch returned %v, want context.DeadlineExceeded", err)
	}

	// Let the node-side budget expire too, then free the worker. The pool
	// checks the job context before running, so B is skipped, not executed.
	time.Sleep(50 * time.Millisecond)
	releaseAll()
	if err := <-resA; err != nil {
		t.Fatalf("pinned job failed: %v", err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for nodes[0].exec.QueueDepth() > 0 || nodes[0].exec.Inflight() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("node queue never drained")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("stub executed %d times, want 1: the abandoned job burned a worker slot", n)
	}
}

// TestChaosWALReplayAfterKill: a gateway dies with two finished jobs and
// one journaled-but-unfinished job in its WAL (plus a torn final line, the
// classic crash artifact). The restarted gateway must answer polls for the
// finished jobs byte-identically, and re-dispatch the unfinished one
// without a duplicate backend execution — the digest routes it to the node
// whose cache already holds the result.
func TestChaosWALReplayAfterKill(t *testing.T) {
	det := fabricDetector()
	var calls atomic.Int64
	jobFor := func(string) eval.JobFunc {
		return func(eval.Job) (eval.Detail, error) {
			calls.Add(1)
			return stubDetail(0.25), nil
		}
	}
	nodes := startNodes(t, det, 1, serve.Config{Workers: 2, QueueSize: 4}, jobFor)
	walPath := t.TempDir() + "/gateway.wal"

	poll := func(srv *httptest.Server, id string) (string, []byte) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			r, err := http.Get(srv.URL + "/v1/jobs/" + id)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if _, err := buf.ReadFrom(r.Body); err != nil {
				t.Fatal(err)
			}
			r.Body.Close()
			var status jobStatusResponse
			if err := json.Unmarshal(buf.Bytes(), &status); err != nil {
				t.Fatalf("poll %s: %v (%s)", id, err, buf.Bytes())
			}
			if status.Status == "done" || status.Status == "failed" {
				return status.Status, buf.Bytes()
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %q", id, status.Status)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	submit := func(srv *httptest.Server, req serve.EvalRequest) string {
		t.Helper()
		body, _ := json.Marshal(req)
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var sub submitResponse
		if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: status %d", resp.StatusCode)
		}
		return sub.ID
	}

	// --- first life: two jobs submitted and finished ---
	wal1, err := OpenWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	g1 := NewGateway(GatewayConfig{
		Nodes: nodeAddrs(nodes), Clock: newFakeClock(), WAL: wal1,
		RetryBackoff: time.Millisecond, RedialBackoff: time.Millisecond,
		HeartbeatTimeout: time.Hour, JobTimeout: 20 * time.Second,
	})
	waitRoutable(t, g1, nodeAddrs(nodes)...)
	srv1 := httptest.NewServer(g1.Handler())

	reqA, reqB := evalReq(t, 341), evalReq(t, 342)
	idA, idB := submit(srv1, reqA), submit(srv1, reqB)
	statusA, bodyA := poll(srv1, idA)
	statusB, bodyB := poll(srv1, idB)
	if statusA != "done" || statusB != "done" {
		t.Fatalf("first-life jobs finished %q/%q, want done/done", statusA, statusB)
	}
	if calls.Load() != 2 {
		t.Fatalf("first life executed %d jobs, want 2", calls.Load())
	}
	srv1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = g1.Close(ctx) // closes wal1; the journal stays on disk

	// --- the crash: a submit-only record (journaled, never finished) for
	// the same request as job A, plus a torn final line mid-append ---
	reqJSON, _ := json.Marshal(reqA)
	pending := WALRecord{T: walSubmit, ID: "j000099-replayed", Seq: 99, Digest: reqA.Digest(), Req: reqJSON}
	line, _ := json.Marshal(pending)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(append(line, "\n{\"t\":\"resu"...)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// --- second life: replay ---
	wal2, err := OpenWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	g2 := newTestGateway(t, WallClock(), nodeAddrs(nodes), func(cfg *GatewayConfig) {
		cfg.WAL = wal2
		cfg.RetryBackoff = 20 * time.Millisecond
		cfg.MaxAttempts = 10 // replay races the first backend dial; be patient
		cfg.JobTimeout = 20 * time.Second
	})
	srv2 := httptest.NewServer(g2.Handler())
	defer srv2.Close()

	status, body := poll(srv2, idA)
	if status != "done" || !bytes.Equal(body, bodyA) {
		t.Errorf("job A after replay: status %q, body\n got: %s\nwant: %s", status, body, bodyA)
	}
	status, body = poll(srv2, idB)
	if status != "done" || !bytes.Equal(body, bodyB) {
		t.Errorf("job B after replay: status %q, body\n got: %s\nwant: %s", status, body, bodyB)
	}
	status, body = poll(srv2, "j000099-replayed")
	if status != "done" {
		t.Fatalf("replayed pending job finished %q (%s), want done", status, body)
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("fleet executed %d jobs after replay, want still 2 (idempotent re-dispatch)", n)
	}
	// Fresh submissions continue past the replayed sequence numbers.
	if id := submit(srv2, evalReq(t, 343)); !strings.HasPrefix(id, "j000100-") {
		t.Errorf("post-replay job id %q, want sequence to continue at j000100", id)
	}
}

// TestChaosMembershipChurn hammers AddNode/RemoveNode from two goroutines
// while a third keeps jobs in flight — the ring-rebalance race test. Run
// under -race this pins the locking story; functionally, dispatches must
// keep succeeding on the stable core nodes and the fleet must converge.
func TestChaosMembershipChurn(t *testing.T) {
	det := fabricDetector()
	jobFor := func(string) eval.JobFunc {
		return func(eval.Job) (eval.Detail, error) { return stubDetail(0.25), nil }
	}
	nodes := startNodes(t, det, 4, serve.Config{Workers: 2, QueueSize: 8}, jobFor)
	core := nodes[:2]
	g := newTestGateway(t, newFakeClock(), nodeAddrs(core), func(cfg *GatewayConfig) {
		cfg.MaxAttempts = 5
	})
	waitRoutable(t, g, nodeAddrs(core)...)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, churnNode := range nodes[2:] {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if i%2 == 0 {
					g.AddNode(addr)
				} else {
					g.RemoveNode(addr)
				}
				time.Sleep(time.Millisecond) // pace the churn: each Add dials
			}
		}(churnNode.addr)
	}

	var ok, failed atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := g.dispatch(context.Background(), evalReq(t, 400+i%8)); err != nil {
				failed.Add(1)
			} else {
				ok.Add(1)
			}
		}
	}()

	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()

	if ok.Load() == 0 {
		t.Fatalf("no dispatch succeeded during churn (%d failures)", failed.Load())
	}
	// Converge: both churn nodes out, core still routable, dispatch clean.
	g.RemoveNode(nodes[2].addr)
	g.RemoveNode(nodes[3].addr)
	if n := g.Ring().Len(); n != 2 {
		t.Fatalf("ring has %d nodes after churn settled, want 2", n)
	}
	waitRoutable(t, g, nodeAddrs(core)...)
	if _, err := g.dispatch(context.Background(), evalReq(t, 451)); err != nil {
		t.Fatalf("dispatch after churn settled: %v", err)
	}
	t.Logf("churn: %d dispatches succeeded, %d transiently failed", ok.Load(), failed.Load())
}

// TestAsyncSubmitSaturationRetryAfter: POST /v1/jobs sheds load with the
// same 429 + Retry-After contract as the sync path once every routable
// node's heartbeat reports a full queue.
func TestAsyncSubmitSaturationRetryAfter(t *testing.T) {
	det := fabricDetector()
	release := make(chan struct{})
	jobFor := func(string) eval.JobFunc {
		return func(eval.Job) (eval.Detail, error) {
			<-release
			return stubDetail(0.25), nil
		}
	}
	nodes := startNodes(t, det, 1, serve.Config{Workers: 1, QueueSize: 1}, jobFor)
	var releaseOnce sync.Once
	releaseAll := func() { releaseOnce.Do(func() { close(release) }) }
	defer releaseAll()
	g := newTestGateway(t, newFakeClock(), nodeAddrs(nodes), nil)
	waitRoutable(t, g, nodeAddrs(nodes)...)
	gwSrv := httptest.NewServer(g.Handler())
	defer gwSrv.Close()

	// One running + one queued job saturate the single node.
	errs := make(chan error, 2)
	for i := int64(0); i < 2; i++ {
		req := evalReq(t, 500+i)
		go func(req serve.EvalRequest) {
			_, err := g.dispatch(context.Background(), req)
			errs <- err
		}(req)
	}
	// Wait for a heartbeat that reports the full queue to reach the gateway.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, sat := g.fleetSaturated(); sat {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gateway never saw the fleet saturated (node depth=%d cap=%d)",
				nodes[0].exec.QueueDepth(), nodes[0].exec.QueueCapacity())
		}
		time.Sleep(2 * time.Millisecond)
	}

	body, _ := json.Marshal(evalReq(t, 510))
	resp, err := http.Post(gwSrv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated async submit answered %d, want 429", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want integer >= 1", resp.Header.Get("Retry-After"))
	}
	var eresp serve.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&eresp); err != nil {
		t.Fatal(err)
	}
	if eresp.Code != serve.CodeSaturated {
		t.Errorf("error code %q, want %q", eresp.Code, serve.CodeSaturated)
	}

	releaseAll()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Errorf("filler job failed: %v", err)
		}
	}
}

// TestGatewayErrorBodiesCarryCodes sweeps the gateway's HTTP error paths
// and requires every body to carry a machine-readable code.
func TestGatewayErrorBodiesCarryCodes(t *testing.T) {
	det := fabricDetector()
	jobFor := func(string) eval.JobFunc {
		return func(eval.Job) (eval.Detail, error) { return stubDetail(0.25), nil }
	}
	nodes := startNodes(t, det, 1, serve.Config{Workers: 1, QueueSize: 2}, jobFor)
	g := newTestGateway(t, newFakeClock(), nodeAddrs(nodes), nil)
	waitRoutable(t, g, nodeAddrs(nodes)...)
	gwSrv := httptest.NewServer(g.Handler())
	defer gwSrv.Close()

	check := func(name, method, path, body, wantCode string, wantStatus int) {
		t.Helper()
		req, err := http.NewRequest(method, gwSrv.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Errorf("%s: status %d, want %d", name, resp.StatusCode, wantStatus)
		}
		var eresp serve.ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&eresp); err != nil {
			t.Fatalf("%s: undecodable error body: %v", name, err)
		}
		if eresp.Code != wantCode {
			t.Errorf("%s: code %q, want %q", name, eresp.Code, wantCode)
		}
		if eresp.Error == "" {
			t.Errorf("%s: empty error message", name)
		}
	}

	check("bad verb", http.MethodGet, "/v1/evaluate", "", serve.CodeMethodNotAllowed, http.StatusMethodNotAllowed)
	check("bad json sync", http.MethodPost, "/v1/evaluate", "{", serve.CodeBadRequest, http.StatusBadRequest)
	check("invalid request sync", http.MethodPost, "/v1/evaluate", "{}", serve.CodeBadRequest, http.StatusBadRequest)
	check("bad json async", http.MethodPost, "/v1/jobs", "{", serve.CodeBadRequest, http.StatusBadRequest)
	check("unknown job", http.MethodGet, "/v1/jobs/nope", "", serve.CodeNotFound, http.StatusNotFound)
}

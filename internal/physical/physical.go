// Package physical models the digital→physical gap the paper's evaluation
// crosses: printing a patch (printer gamut compression, per-channel color
// error, dot gain) and recapturing the scene with a camera (blur, sensor
// noise, illumination drift). The central asymmetry — chrominance error is
// much larger than luminance error — is exactly why the paper restricts its
// decals to a single color: colored perturbations (the baseline [34]) are
// corrupted far more by printing than monochrome ones.
package physical

import (
	"math/rand"

	"roadtrojan/internal/imaging"
	"roadtrojan/internal/tensor"
)

// PrintModel describes one printer/material realization. Draw one PrintJob
// per physical decal: a printed artifact has a *fixed* color error baked in,
// which is what breaks attacks optimized for exact digital colors.
type PrintModel struct {
	// ChromaGainStd is the per-channel multiplicative gain error applied to
	// colored content (printer calibration mismatch).
	ChromaGainStd float64
	// LumaGainStd is the overall lightness gain error; monochrome content
	// only suffers this (plus gamut compression).
	LumaGainStd float64
	// GamutLow/GamutHigh compress the tonal range: printers reproduce
	// neither pure black nor pure white.
	GamutLow, GamutHigh float64
	// DotGain is the print-blur length in patch pixels.
	DotGain int
}

// DefaultPrintModel matches a consumer printer on adhesive vinyl.
func DefaultPrintModel() PrintModel {
	return PrintModel{
		ChromaGainStd: 0.33,
		LumaGainStd:   0.025,
		GamutLow:      0.05,
		GamutHigh:     0.95,
		DotGain:       3,
	}
}

// PrintJob is a sampled realization of a print run.
type PrintJob struct {
	model PrintModel
	luma  float64    // shared lightness gain error
	gains [3]float64 // per-channel gain (luma · chroma error)
	offs  [3]float64 // per-channel additive shift
}

// NewJob samples a print realization.
func (m PrintModel) NewJob(rng *rand.Rand) *PrintJob {
	j := &PrintJob{model: m, luma: 1 + rng.NormFloat64()*m.LumaGainStd}
	for c := 0; c < 3; c++ {
		j.gains[c] = j.luma * (1 + rng.NormFloat64()*m.ChromaGainStd)
		j.offs[c] = rng.NormFloat64() * m.ChromaGainStd * 0.25
	}
	return j
}

// PrintRGB pushes a [3,k,k] colored patch through the print channel. The
// full chroma error applies: each channel gets its own gain and offset.
func (j *PrintJob) PrintRGB(patch *tensor.Tensor) *tensor.Tensor {
	out := patch.Clone()
	k1, k2 := out.Dim(1), out.Dim(2)
	n := k1 * k2
	for c := 0; c < 3; c++ {
		seg := out.Data()[c*n : (c+1)*n]
		for i := range seg {
			seg[i] = seg[i]*j.gains[c] + j.offs[c]
		}
	}
	j.finish(out)
	return out
}

// PrintGray pushes a [1,k,k] monochrome patch through the print channel.
// Only the shared luminance error applies — per-channel chroma error cannot
// corrupt a single-ink print, the paper's core robustness argument.
func (j *PrintJob) PrintGray(patch *tensor.Tensor) *tensor.Tensor {
	out := patch.Clone()
	for i, v := range out.Data() {
		out.Data()[i] = v * j.luma
	}
	j.finish(out)
	return out
}

// finish applies gamut compression and dot gain in place.
func (j *PrintJob) finish(t *tensor.Tensor) {
	lo, hi := j.model.GamutLow, j.model.GamutHigh
	for i, v := range t.Data() {
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		t.Data()[i] = lo + v*(hi-lo)
	}
	if j.model.DotGain > 1 {
		blurred := imaging.BoxBlurHorizontal(imaging.BoxBlurVertical(t, j.model.DotGain), j.model.DotGain)
		t.CopyFrom(blurred)
	}
}

// CaptureModel is the camera-side half of the channel, applied per frame.
type CaptureModel struct {
	BlurSigma float64
	NoiseStd  float64
	GainStd   float64 // per-frame exposure drift
}

// DefaultCaptureModel matches a dashcam-grade sensor. The blur is mild: at
// the substrate's 64×64 resolution every frame pixel already integrates a
// large scene area, so heavy optics blur would be double-counting.
func DefaultCaptureModel() CaptureModel {
	return CaptureModel{BlurSigma: 0.35, NoiseStd: 0.008, GainStd: 0.02}
}

// Apply returns the frame as re-captured: optics blur, exposure drift and
// sensor noise, clamped to [0,1]. Sub-pixel blur sigmas (< 0.5) are treated
// as already absorbed by the sensor's pixel integration and skipped.
func (c CaptureModel) Apply(rng *rand.Rand, frame *tensor.Tensor) *tensor.Tensor {
	out := frame
	if c.BlurSigma >= 0.5 {
		out = imaging.GaussianApprox(out, c.BlurSigma)
	} else {
		out = out.Clone()
	}
	gain := 1 + rng.NormFloat64()*c.GainStd
	for i := range out.Data() {
		out.Data()[i] = out.Data()[i]*gain + rng.NormFloat64()*c.NoiseStd
	}
	return out.Clamp(0, 1)
}

// Channel bundles the print and capture halves plus a switch, so callers
// can run the same code path in digital and physical mode.
type Channel struct {
	Enabled bool
	Print   PrintModel
	Capture CaptureModel
}

// Digital returns a disabled channel (the paper's digital-world setting).
func Digital() Channel { return Channel{} }

// RealWorld returns the full print-and-capture channel.
func RealWorld() Channel {
	return Channel{Enabled: true, Print: DefaultPrintModel(), Capture: DefaultCaptureModel()}
}

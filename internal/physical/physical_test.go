package physical

import (
	"math"
	"math/rand"
	"testing"

	"roadtrojan/internal/imaging"
	"roadtrojan/internal/tensor"
)

func TestPrintGrayAppliesOnlyLumaError(t *testing.T) {
	m := DefaultPrintModel()
	m.DotGain = 0 // isolate the color model
	rng := rand.New(rand.NewSource(1))

	// Over many print jobs, the error of a gray patch must be much smaller
	// than the error of an equally-bright colored patch.
	gray := tensor.Full(0.5, 1, 8, 8)
	colored := tensor.New(3, 8, 8)
	colored.Fill(0.5)

	var grayErr, colorErr float64
	const trials = 200
	for i := 0; i < trials; i++ {
		job := m.NewJob(rng)
		pg := job.PrintGray(gray)
		grayErr += math.Abs(pg.Mean() - gamutOf(m, 0.5))
		pc := job.PrintRGB(colored)
		// Chroma error: per-channel deviation from the mean channel value.
		n := 64
		var chMeans [3]float64
		for c := 0; c < 3; c++ {
			for j := 0; j < n; j++ {
				chMeans[c] += pc.Data()[c*n+j]
			}
			chMeans[c] /= float64(n)
		}
		avg := (chMeans[0] + chMeans[1] + chMeans[2]) / 3
		for c := 0; c < 3; c++ {
			colorErr += math.Abs(chMeans[c] - avg)
		}
	}
	grayErr /= trials
	colorErr /= trials * 3
	if colorErr < 2*grayErr {
		t.Fatalf("chroma error (%v) should dominate luma error (%v)", colorErr, grayErr)
	}
}

func gamutOf(m PrintModel, v float64) float64 {
	return m.GamutLow + v*(m.GamutHigh-m.GamutLow)
}

func TestPrintGamutCompression(t *testing.T) {
	m := DefaultPrintModel()
	m.LumaGainStd, m.ChromaGainStd, m.DotGain = 0, 0, 0
	job := m.NewJob(rand.New(rand.NewSource(2)))
	black := tensor.New(1, 4, 4)
	white := tensor.Ones(1, 4, 4)
	pb := job.PrintGray(black)
	pw := job.PrintGray(white)
	if math.Abs(pb.Mean()-m.GamutLow) > 1e-9 {
		t.Fatalf("printed black = %v, want %v", pb.Mean(), m.GamutLow)
	}
	if math.Abs(pw.Mean()-m.GamutHigh) > 1e-9 {
		t.Fatalf("printed white = %v, want %v", pw.Mean(), m.GamutHigh)
	}
}

func TestPrintDotGainBlurs(t *testing.T) {
	m := DefaultPrintModel()
	m.LumaGainStd, m.ChromaGainStd = 0, 0
	job := m.NewJob(rand.New(rand.NewSource(3)))
	spike := tensor.New(1, 9, 9)
	spike.Set(1, 0, 4, 4)
	out := job.PrintGray(spike)
	center := out.At(0, 4, 4)
	neighbor := out.At(0, 3, 4)
	if center >= gamutOf(m, 1) {
		t.Fatal("dot gain did not spread the spike")
	}
	if neighbor <= gamutOf(m, 0) {
		t.Fatal("dot gain did not reach the neighbor")
	}
}

func TestPrintJobDeterministicPerJob(t *testing.T) {
	m := DefaultPrintModel()
	job := m.NewJob(rand.New(rand.NewSource(4)))
	patch := tensor.NewRandU(rand.New(rand.NewSource(5)), 0, 1, 3, 6, 6)
	a := job.PrintRGB(patch)
	b := job.PrintRGB(patch)
	if tensor.MaxAbsDiff(a, b) != 0 {
		t.Fatal("the same print job must be deterministic")
	}
	// Different jobs differ.
	job2 := m.NewJob(rand.New(rand.NewSource(6)))
	c := job2.PrintRGB(patch)
	if tensor.MaxAbsDiff(a, c) == 0 {
		t.Fatal("distinct print jobs should differ")
	}
}

func TestCaptureKeepsRangeAndAddsNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	frame := tensor.Full(0.5, 3, 16, 16)
	cm := DefaultCaptureModel()
	out := cm.Apply(rng, frame)
	if out.Min() < 0 || out.Max() > 1 {
		t.Fatal("capture escaped [0,1]")
	}
	if tensor.MaxAbsDiff(frame, out) == 0 {
		t.Fatal("capture added no noise")
	}
	// Original frame untouched.
	if frame.At(0, 0, 0) != 0.5 {
		t.Fatal("capture mutated its input")
	}
}

func TestCaptureNoBlurPath(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cm := CaptureModel{BlurSigma: 0, NoiseStd: 0, GainStd: 0}
	frame := tensor.NewRandU(rng, 0, 1, 3, 8, 8)
	out := cm.Apply(rng, frame)
	if tensor.MaxAbsDiff(frame, out) != 0 {
		t.Fatal("zeroed capture model must be identity")
	}
}

func TestChannelSwitches(t *testing.T) {
	if Digital().Enabled {
		t.Fatal("digital channel must be disabled")
	}
	rw := RealWorld()
	if !rw.Enabled || rw.Print.ChromaGainStd <= 0 {
		t.Fatal("real-world channel misconfigured")
	}
}

func TestPrintPreservesStructureForGray(t *testing.T) {
	// A monochrome star silhouette survives printing recognizably: the
	// correlation between pre- and post-print images stays high.
	m := DefaultPrintModel()
	rng := rand.New(rand.NewSource(9))
	patch := tensor.New(1, 16, 16)
	for y := 4; y < 12; y++ {
		for x := 4; x < 12; x++ {
			patch.Set(1, 0, y, x)
		}
	}
	job := m.NewJob(rng)
	printed := job.PrintGray(patch)
	if corr := correlation(patch, printed); corr < 0.9 {
		t.Fatalf("monochrome print correlation %v too low", corr)
	}
}

func correlation(a, b *tensor.Tensor) float64 {
	ma, mb := a.Mean(), b.Mean()
	var num, da, db float64
	for i := range a.Data() {
		x := a.Data()[i] - ma
		y := b.Data()[i] - mb
		num += x * y
		da += x * x
		db += y * y
	}
	if da == 0 || db == 0 {
		return 0
	}
	return num / math.Sqrt(da*db)
}

func TestGrayToRGBPrintEquivalence(t *testing.T) {
	// Printing gray directly must equal printing the replicated-RGB version
	// in luminance terms when chroma error is zero.
	m := DefaultPrintModel()
	m.ChromaGainStd = 0
	m.DotGain = 0
	job := m.NewJob(rand.New(rand.NewSource(10)))
	gray := tensor.NewRandU(rand.New(rand.NewSource(11)), 0, 1, 1, 5, 5)
	pg := job.PrintGray(gray)
	prgb := job.PrintRGB(imaging.GrayToRGB(gray))
	lum := imaging.Grayscale(prgb)
	if d := tensor.MaxAbsDiff(pg, lum); d > 1e-9 {
		t.Fatalf("gray and replicated-RGB prints differ by %v with zero chroma error", d)
	}
}

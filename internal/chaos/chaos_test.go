package chaos

import (
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// chaosTestSeed is the fixed seed every chaos test runs under; `make chaos`
// and the check.sh gate rely on the suite being seed-pinned so two runs
// produce identical fault schedules.
const chaosTestSeed = 0xC0FFEE

// pipePair builds a dialable loopback endpoint (TCP, so both directions
// are buffered and an echo cannot deadlock): the returned dial function
// opens a fresh connection and the channel carries the accepted halves.
func pipePair(t *testing.T) (DialFunc, chan net.Conn) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	serverCh := make(chan net.Conn, 16)
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			serverCh <- c
		}
	}()
	target := l.Addr().String()
	dial := func(addr string) (net.Conn, error) {
		return net.DialTimeout("tcp", target, 5*time.Second)
	}
	return dial, serverCh
}

// echoServer copies every received byte straight back until EOF.
func echoServer(t *testing.T, conns chan net.Conn) {
	t.Helper()
	go func() {
		for c := range conns {
			go func(c net.Conn) {
				defer c.Close()
				_, _ = io.Copy(c, c)
			}(c)
		}
	}()
}

func TestChaosLatencyDelaysReads(t *testing.T) {
	dial, conns := pipePair(t)
	echoServer(t, conns)
	in := New(chaosTestSeed, Plan{Rules: []Rule{
		On("echo", -1, Fault{Kind: KindLatency, Dir: Inbound, Delay: 30 * time.Millisecond}),
	}}, nil)
	c, err := in.Dial(dial)("echo")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("latency fault added only %v, want >= ~30ms", d)
	}
}

func TestChaosTruncateEndsStreamWithEOF(t *testing.T) {
	dial, conns := pipePair(t)
	echoServer(t, conns)
	in := New(chaosTestSeed, Plan{Rules: []Rule{
		On("echo", 0, Fault{Kind: KindTruncate, Dir: Inbound, After: 5}),
	}}, nil)
	c, err := in.Dial(dial)("echo")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(c)
	if err != nil {
		t.Fatalf("ReadAll after truncation: %v (want clean EOF)", err)
	}
	if !bytes.Equal(got, []byte("01234")) {
		t.Errorf("read %q through a truncate-at-5 fault, want %q", got, "01234")
	}
}

func TestChaosCorruptFlipsExactlyOneByte(t *testing.T) {
	dial, conns := pipePair(t)
	echoServer(t, conns)
	in := New(chaosTestSeed, Plan{Rules: []Rule{
		On("echo", 0, Fault{Kind: KindCorrupt, Dir: Inbound, After: 3, XOR: 0x80}),
	}}, nil)
	c, err := in.Dial(dial)("echo")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sent := []byte("abcdefgh")
	if _, err := c.Write(sent); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(sent))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), sent...)
	want[3] ^= 0x80
	if !bytes.Equal(got, want) {
		t.Errorf("corrupt fault produced %q, want %q", got, want)
	}
}

func TestChaosResetClosesMidStream(t *testing.T) {
	dial, conns := pipePair(t)
	echoServer(t, conns)
	in := New(chaosTestSeed, Plan{Rules: []Rule{
		On("echo", 0, Fault{Kind: KindReset, Dir: Inbound, After: 4}),
	}}, nil)
	c, err := in.Dial(dial)("echo")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	n, err := io.ReadFull(c, buf)
	if n != 4 {
		t.Errorf("read %d bytes before reset, want 4", n)
	}
	if err == nil {
		t.Error("reset fault produced no read error")
	}
}

func TestChaosDuplicateRepeatsWrites(t *testing.T) {
	dial, conns := pipePair(t)
	echoServer(t, conns)
	in := New(chaosTestSeed, Plan{Rules: []Rule{
		On("echo", 0, Fault{Kind: KindDuplicate, Dir: Outbound, Every: 1}),
	}}, nil)
	c, err := in.Dial(dial)("echo")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("frame")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 10)
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "frameframe" {
		t.Errorf("duplicate fault delivered %q, want %q", got, "frameframe")
	}
}

func TestChaosPartitionBlocksThenBreaks(t *testing.T) {
	dial, conns := pipePair(t)
	echoServer(t, conns)
	in := New(chaosTestSeed, Plan{}, nil)
	chaosDial := in.Dial(dial)
	c, err := chaosDial("echo")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	in.Partition("echo")
	// Dials into the partition fail outright.
	if _, err := chaosDial("echo"); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("dial into partition: err=%v, want ErrPartitioned", err)
	}
	// Writes are silently dropped; reads park until heal, then fail.
	if _, err := c.Write([]byte("lost")); err != nil {
		t.Fatalf("write during partition should drop silently, got %v", err)
	}
	readErr := make(chan error, 1)
	go func() {
		_, err := c.Read(make([]byte, 1))
		readErr <- err
	}()
	select {
	case err := <-readErr:
		t.Fatalf("read returned %v during partition, want it parked", err)
	case <-time.After(50 * time.Millisecond):
	}
	in.Heal("echo")
	select {
	case err := <-readErr:
		if !errors.Is(err, ErrPartitioned) {
			t.Errorf("parked read returned %v after heal, want ErrPartitioned", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked read never returned after heal")
	}
	// Post-heal dials get a clean connection again.
	c2, err := chaosDial("echo")
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	c2.Close()
}

func TestChaosSlowLorisTricklesBytes(t *testing.T) {
	dial, conns := pipePair(t)
	echoServer(t, conns)
	in := New(chaosTestSeed, Plan{Rules: []Rule{
		On("echo", 0, Fault{Kind: KindSlowLoris, Dir: Inbound, Chunk: 1, Delay: 5 * time.Millisecond}),
	}}, nil)
	c, err := in.Dial(dial)("echo")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("abcd")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	buf := make([]byte, 4)
	reads := 0
	for got := 0; got < 4; reads++ {
		n, err := c.Read(buf[got:])
		if err != nil {
			t.Fatal(err)
		}
		if n > 1 {
			t.Fatalf("slow-loris read moved %d bytes in one call, want <= 1", n)
		}
		got += n
	}
	if reads < 4 {
		t.Errorf("4 bytes arrived in %d reads, want 4 single-byte reads", reads)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Errorf("slow-loris trickle took %v, want >= ~20ms", d)
	}
}

// TestChaosScheduleDeterministic is the acceptance pin: the same seed, the
// same plan, and the same operation sequence produce a byte-identical fault
// schedule, and a different seed moves the PRNG-derived parameters.
func TestChaosScheduleDeterministic(t *testing.T) {
	run := func(seed int64) []string {
		dial, conns := pipePair(t)
		echoServer(t, conns)
		in := New(seed, Plan{Rules: []Rule{
			On("echo", 0, Fault{Kind: KindCorrupt, Dir: Inbound, After: 2}), // PRNG-chosen mask
			On("echo", 1, Fault{Kind: KindTruncate, Dir: Outbound, After: 3}),
			On("echo", -1, Fault{Kind: KindDuplicate, Dir: Outbound, Every: 2}),
		}}, nil)
		chaosDial := in.Dial(dial)
		for i := 0; i < 2; i++ {
			c, err := chaosDial("echo")
			if err != nil {
				t.Fatal(err)
			}
			_, _ = c.Write([]byte("xxxx"))
			_, _ = c.Write([]byte("yyyy"))
			// The truncate rule on conn#1 swallows echoed bytes, so bound
			// the read instead of demanding a full reply.
			_ = c.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
			buf := make([]byte, 4)
			_, _ = io.ReadFull(c, buf)
			c.Close()
		}
		return in.Schedule()
	}
	a, b := run(chaosTestSeed), run(chaosTestSeed)
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Errorf("same-seed schedules differ:\n--- run 1\n%s\n--- run 2\n%s",
			strings.Join(a, "\n"), strings.Join(b, "\n"))
	}
	if len(a) == 0 {
		t.Fatal("schedule is empty; faults never armed")
	}
	other := run(chaosTestSeed + 1)
	if strings.Join(a, "\n") == strings.Join(other, "\n") {
		t.Error("different seeds produced identical schedules; PRNG not keyed to seed")
	}
}

// TestChaosConcurrentConnsScheduleStable: fault decisions are keyed to the
// connection, so racing dials cannot perturb each other's schedules (the
// per-connection event groups are identical run to run even though the
// dial interleaving is not).
func TestChaosConcurrentConnsScheduleStable(t *testing.T) {
	run := func() map[string]bool {
		dial, conns := pipePair(t)
		echoServer(t, conns)
		in := New(chaosTestSeed, Plan{Rules: []Rule{
			On("", -1, Fault{Kind: KindCorrupt, Dir: Outbound, After: 1}),
		}}, nil)
		var wg sync.WaitGroup
		for _, addr := range []string{"n1", "n2", "n3", "n4"} {
			wg.Add(1)
			go func(addr string) {
				defer wg.Done()
				c, err := in.Dial(dial)(addr)
				if err != nil {
					t.Error(err)
					return
				}
				_, _ = c.Write([]byte("abc"))
				c.Close()
			}(addr)
		}
		wg.Wait()
		out := map[string]bool{}
		for _, line := range in.Schedule() {
			out[line] = true
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("schedule sizes differ: %d vs %d", len(a), len(b))
	}
	for line := range a {
		if !b[line] {
			t.Errorf("schedule line %q present in run 1 only", line)
		}
	}
}

// Package chaos is a seed-deterministic network fault-injection layer for
// the eval fabric. It wraps the two seams fabric already exposes — the
// gateway's injectable Dial hook and the node's net.Listener — with
// connections that misbehave on a script: added latency, connection resets
// mid-frame, truncated or bit-flipped byte streams, slow-loris trickle
// reads, duplicated frame delivery, and full partitions that silently drop
// traffic instead of closing.
//
// Determinism is the point. Every fault decision is a pure function of
// (seed, connection key, byte offset): each connection gets its own PRNG
// seeded from the injector seed and the connection's stable key
// ("addr#ordinal/side"), so concurrent connections cannot perturb each
// other's schedules, and two runs with the same seed and the same dial
// order produce byte-identical fault schedules (Schedule pins this in
// tests). Timers run on an injected Clock so chaos tests compose with the
// fabric's fake clock.
//
// The injector never fabricates traffic; it only delays, drops, flips, or
// repeats bytes the wrapped endpoints actually move. Duplicate delivery
// works at Write granularity because fabric.WriteFrame issues exactly one
// Write per frame — duplicating a Write duplicates a frame on the wire.
package chaos

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"
)

// Clock is the subset of fabric.Clock chaos needs; fabric's clocks satisfy
// it without an import in either direction.
type Clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

type wallClock struct{}

func (wallClock) Now() time.Time                         { return time.Now() }
func (wallClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// WallClock returns the real-time clock (the default when New gets nil).
func WallClock() Clock { return wallClock{} }

// Direction selects which half of a connection a fault applies to, from the
// wrapped endpoint's point of view: Inbound faults afflict Reads, Outbound
// faults afflict Writes, Both afflicts both.
type Direction int

const (
	Both Direction = iota
	Inbound
	Outbound
)

func (d Direction) String() string {
	switch d {
	case Inbound:
		return "in"
	case Outbound:
		return "out"
	default:
		return "both"
	}
}

// Kind enumerates the fault taxonomy (DESIGN.md §11).
type Kind int

const (
	// KindLatency delays every Read/Write by Delay before moving bytes.
	KindLatency Kind = iota + 1
	// KindReset closes the underlying connection once After bytes have
	// crossed in the fault's direction — a mid-frame connection reset.
	KindReset
	// KindTruncate delivers only the first After bytes in the fault's
	// direction; reads then hit EOF, writes silently vanish (a peer that
	// stops reading / a stream cut mid-frame).
	KindTruncate
	// KindCorrupt XORs the byte at offset After with XOR (a PRNG-chosen
	// nonzero byte when XOR is 0) — a single bit-flip class corruption.
	KindCorrupt
	// KindSlowLoris clamps each transfer to Chunk bytes and inserts Delay
	// between them — a peer that keeps the connection alive while feeding
	// it one byte at a time.
	KindSlowLoris
	// KindDuplicate repeats every Every'th Write verbatim — duplicate
	// frame delivery, since the fabric writes one frame per Write.
	KindDuplicate
	// KindPartition is address-scoped, not offset-scoped: while an address
	// is partitioned, new dials fail, reads block (no FIN, no RST — just
	// silence), and writes are silently dropped. Heal breaks parked reads
	// with an error so the endpoint redials a clean connection.
	KindPartition
)

func (k Kind) String() string {
	switch k {
	case KindLatency:
		return "latency"
	case KindReset:
		return "reset"
	case KindTruncate:
		return "truncate"
	case KindCorrupt:
		return "corrupt"
	case KindSlowLoris:
		return "slowloris"
	case KindDuplicate:
		return "duplicate"
	case KindPartition:
		return "partition"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Fault is one scripted misbehavior. Zero parameters take per-kind
// defaults resolved deterministically at connection setup.
type Fault struct {
	Kind  Kind
	Dir   Direction
	After int64         // byte offset for Reset/Truncate/Corrupt
	Delay time.Duration // Latency/SlowLoris pause
	Chunk int           // SlowLoris max bytes per transfer (default 1)
	XOR   byte          // Corrupt mask; 0 = PRNG-chosen nonzero byte
	Every int           // Duplicate period in Writes (default 1 = every write)
}

// Rule scopes a fault to connections: Addr matches the dial target or
// listener label ("" = every address), Conn matches the per-address
// connection ordinal (-1 = every connection).
type Rule struct {
	Addr  string
	Conn  int
	Fault Fault
}

// Plan is the fault script an Injector executes.
type Plan struct {
	Rules []Rule
}

// On is a convenience constructor for a single-rule plan fragment.
func On(addr string, conn int, f Fault) Rule { return Rule{Addr: addr, Conn: conn, Fault: f} }

// ErrPartitioned is returned by dials into (and reads that outlive) a
// partition.
var ErrPartitioned = errors.New("chaos: partitioned")

// DialFunc matches fabric.GatewayConfig.Dial.
type DialFunc func(addr string) (net.Conn, error)

// Injector owns one chaos run: the seed, the plan, the per-address
// connection ordinals, the partition set, and the event journal.
type Injector struct {
	seed  int64
	plan  Plan
	clock Clock

	mu       sync.Mutex
	ordinals map[string]int
	parts    map[string]bool
	partAll  bool
	partGen  chan struct{} // closed and replaced on every Heal
	events   map[string][]string
	keys     []string // connection keys in creation order (per-key logs stay ordered)
}

// New builds an injector. A nil clock means WallClock.
func New(seed int64, plan Plan, clock Clock) *Injector {
	if clock == nil {
		clock = WallClock()
	}
	return &Injector{
		seed:     seed,
		plan:     plan,
		clock:    clock,
		ordinals: map[string]int{},
		parts:    map[string]bool{},
		partGen:  make(chan struct{}),
		events:   map[string][]string{},
	}
}

// connSeed derives a connection's private PRNG seed from the injector seed
// and the connection key, so fault parameters depend only on (seed, key).
func (in *Injector) connSeed(key string) int64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return in.seed ^ int64(h.Sum64())
}

// record appends one event to a connection's journal.
func (in *Injector) record(key, format string, args ...any) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if _, ok := in.events[key]; !ok {
		in.keys = append(in.keys, key)
	}
	in.events[key] = append(in.events[key], fmt.Sprintf(format, args...))
}

// Schedule renders the fault journal: one "key: event" line per recorded
// event, grouped by connection key in sorted order, events in occurrence
// order within a connection. Because every decision is keyed to the
// connection, two same-seed runs over the same dial sequence produce
// identical schedules regardless of goroutine interleaving.
func (in *Injector) Schedule() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	keys := append([]string(nil), in.keys...)
	sort.Strings(keys)
	var out []string
	for _, k := range keys {
		for _, e := range in.events[k] {
			out = append(out, k+": "+e)
		}
	}
	return out
}

// Partition drops an address off the network: dials to it fail, its live
// connections black-hole (reads park, writes vanish). addr "" partitions
// everything.
func (in *Injector) Partition(addr string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if addr == "" {
		in.partAll = true
	} else {
		in.parts[addr] = true
	}
}

// Heal lifts a partition. Reads parked inside it return ErrPartitioned —
// the stream lost bytes while dark, so the connection is handed back
// broken and the endpoint redials clean.
func (in *Injector) Heal(addr string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if addr == "" {
		in.partAll = false
		in.parts = map[string]bool{}
	} else {
		delete(in.parts, addr)
	}
	close(in.partGen)
	in.partGen = make(chan struct{})
}

// partitioned reports the address's partition state plus the channel that
// signals the next Heal.
func (in *Injector) partitioned(addr string) (bool, <-chan struct{}) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.partAll || in.parts[addr], in.partGen
}

// nextKey assigns the stable key for the n'th connection touching addr on
// the given side ("dial" or "accept").
func (in *Injector) nextKey(addr, side string) string {
	in.mu.Lock()
	n := in.ordinals[side+"|"+addr]
	in.ordinals[side+"|"+addr] = n + 1
	in.mu.Unlock()
	return fmt.Sprintf("%s#%d/%s", addr, n, side)
}

// Dial wraps a dialer: connections it opens take faults scoped to the dial
// target address, and dials into a partition fail outright.
func (in *Injector) Dial(inner DialFunc) DialFunc {
	return func(addr string) (net.Conn, error) {
		key := in.nextKey(addr, "dial")
		if down, _ := in.partitioned(addr); down {
			in.record(key, "dial refused (partitioned)")
			return nil, fmt.Errorf("%w: dial %s", ErrPartitioned, addr)
		}
		c, err := inner(addr)
		if err != nil {
			in.record(key, "dial error: %v", err)
			return nil, err
		}
		return in.wrap(c, addr, key), nil
	}
}

// Listener wraps l so accepted connections take faults scoped to label
// (typically the node's advertised address).
func (in *Injector) Listener(l net.Listener, label string) net.Listener {
	return &listener{Listener: l, in: in, label: label}
}

type listener struct {
	net.Listener
	in    *Injector
	label string
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	key := l.in.nextKey(l.label, "accept")
	return l.in.wrap(c, l.label, key), nil
}

// wrap builds the fault-injecting connection: rules are matched and their
// free parameters resolved NOW, from the connection's private PRNG, so the
// whole schedule for this connection is fixed before any byte moves.
func (in *Injector) wrap(c net.Conn, addr, key string) net.Conn {
	rng := rand.New(rand.NewSource(in.connSeed(key)))
	_, ordinal := splitKey(key)
	fc := &Conn{Conn: c, in: in, addr: addr, key: key, closed: make(chan struct{})}
	for _, r := range in.plan.Rules {
		if r.Addr != "" && r.Addr != addr {
			continue
		}
		if r.Conn >= 0 && r.Conn != ordinal {
			continue
		}
		f := r.Fault
		if f.Kind == KindCorrupt && f.XOR == 0 {
			// A deterministic nonzero mask: 1..255 from the conn PRNG.
			f.XOR = byte(1 + rng.Intn(255))
		}
		if f.Kind == KindSlowLoris && f.Chunk <= 0 {
			f.Chunk = 1
		}
		if f.Kind == KindDuplicate && f.Every <= 0 {
			f.Every = 1
		}
		switch f.Dir {
		case Inbound:
			fc.rd.faults = append(fc.rd.faults, f)
		case Outbound:
			fc.wr.faults = append(fc.wr.faults, f)
		default:
			fc.rd.faults = append(fc.rd.faults, f)
			fc.wr.faults = append(fc.wr.faults, f)
		}
		in.record(key, "arm %s %s after=%d delay=%s chunk=%d xor=%#02x every=%d",
			f.Kind, f.Dir, f.After, f.Delay, f.Chunk, f.XOR, f.Every)
	}
	return fc
}

// splitKey recovers (addr, ordinal) from an "addr#n/side" key.
func splitKey(key string) (string, int) {
	addr, n := key, 0
	for i := len(key) - 1; i >= 0; i-- {
		if key[i] == '#' {
			addr = key[:i]
			fmt.Sscanf(key[i+1:], "%d", &n)
			break
		}
	}
	return addr, n
}

// dirState tracks one direction of a connection: the running byte offset
// and the faults armed on it. Each direction has its own mutex because
// reads and writes legitimately run concurrently.
type dirState struct {
	mu     sync.Mutex
	off    int64
	writes int
	faults []Fault
}

// Conn is a net.Conn that executes its armed faults. It forwards
// deadlines, addresses, and Close to the wrapped connection.
type Conn struct {
	net.Conn
	in   *Injector
	addr string
	key  string
	rd   dirState
	wr   dirState

	closeOnce sync.Once
	closed    chan struct{}
}

// Close is idempotent and unblocks partition-parked reads.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

// sleep waits d on the injector clock, returning early if the connection
// closes underneath.
func (c *Conn) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	select {
	case <-c.in.clock.After(d):
	case <-c.closed:
	}
}

// awaitPartition parks while the address is dark. It reports whether a
// partition was observed: after one, the stream has lost bytes, so the
// caller must fail the connection rather than resume mid-stream.
func (c *Conn) awaitPartition() bool {
	saw := false
	for {
		down, gen := c.in.partitioned(c.addr)
		if !down {
			return saw
		}
		saw = true
		select {
		case <-gen:
		case <-c.closed:
			return true
		}
	}
}

func (c *Conn) Read(p []byte) (int, error) {
	d := &c.rd
	d.mu.Lock()
	faults := d.faults
	off := d.off
	d.mu.Unlock()

	if down, _ := c.in.partitioned(c.addr); down {
		c.in.record(c.key, "read parked @%d (partition)", off)
		c.awaitPartition()
		c.in.record(c.key, "read failed @%d (partition)", off)
		return 0, ErrPartitioned
	}

	limit := len(p)
	for _, f := range faults {
		switch f.Kind {
		case KindLatency:
			c.sleep(f.Delay)
		case KindSlowLoris:
			if limit > f.Chunk {
				limit = f.Chunk
			}
			c.sleep(f.Delay)
		case KindTruncate:
			if off >= f.After {
				// A truncated inbound stream looks like the peer closing:
				// plain EOF, possibly mid-frame.
				c.in.record(c.key, "read eof @%d (truncate)", off)
				return 0, io.EOF
			}
			if rem := f.After - off; int64(limit) > rem {
				limit = int(rem)
			}
		case KindReset:
			if off >= f.After {
				c.in.record(c.key, "read reset @%d", off)
				c.Close()
				return 0, errReset
			}
			if rem := f.After - off; int64(limit) > rem {
				limit = int(rem)
			}
		}
	}
	n, err := c.Conn.Read(p[:limit])
	if n > 0 {
		for _, f := range faults {
			if f.Kind == KindCorrupt && f.After >= off && f.After < off+int64(n) {
				p[f.After-off] ^= f.XOR
				c.in.record(c.key, "corrupt read @%d xor=%#02x", f.After, f.XOR)
			}
		}
		d.mu.Lock()
		d.off += int64(n)
		d.mu.Unlock()
	}
	return n, err
}

func (c *Conn) Write(p []byte) (int, error) {
	d := &c.wr
	d.mu.Lock()
	faults := d.faults
	off := d.off
	d.writes++
	writeNo := d.writes
	d.off += int64(len(p)) // the caller's view: all bytes accepted
	d.mu.Unlock()

	if down, _ := c.in.partitioned(c.addr); down {
		c.in.record(c.key, "write dropped %dB @%d (partition)", len(p), off)
		return len(p), nil
	}

	buf := p
	duplicate := false
	for _, f := range faults {
		switch f.Kind {
		case KindLatency, KindSlowLoris:
			c.sleep(f.Delay)
		case KindCorrupt:
			if f.After >= off && f.After < off+int64(len(p)) {
				if &buf[0] == &p[0] {
					buf = append([]byte(nil), p...)
				}
				buf[f.After-off] ^= f.XOR
				c.in.record(c.key, "corrupt write @%d xor=%#02x", f.After, f.XOR)
			}
		case KindTruncate:
			if off >= f.After {
				c.in.record(c.key, "write dropped %dB @%d (truncate)", len(p), off)
				return len(p), nil
			}
			if rem := f.After - off; int64(len(buf)) > rem {
				buf = buf[:rem]
				c.in.record(c.key, "write truncated to %dB @%d", len(buf), off)
			}
		case KindReset:
			if off >= f.After {
				c.in.record(c.key, "write reset @%d", off)
				c.Close()
				return 0, errReset
			}
			if rem := f.After - off; int64(len(buf)) > rem {
				buf = buf[:rem]
				if _, err := c.Conn.Write(buf); err != nil {
					return 0, err
				}
				c.in.record(c.key, "write reset mid-frame @%d", f.After)
				c.Close()
				return len(buf), errReset
			}
		case KindDuplicate:
			if writeNo%f.Every == 0 {
				duplicate = true
			}
		}
	}
	if _, err := c.Conn.Write(buf); err != nil {
		return 0, err
	}
	if duplicate {
		c.in.record(c.key, "duplicate write #%d (%dB)", writeNo, len(buf))
		if _, err := c.Conn.Write(buf); err != nil {
			return len(buf), err
		}
	}
	return len(p), nil
}

var errReset = errors.New("chaos: connection reset")

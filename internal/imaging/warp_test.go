package imaging

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"roadtrojan/internal/tensor"
)

func TestWarpIdentityPreservesImage(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := tensor.NewRandU(rng, 0, 1, 3, 6, 7)
	out := WarpImage(src, Identity(), 6, 7, 0)
	if d := tensor.MaxAbsDiff(src, out); d > 1e-12 {
		t.Fatalf("identity warp changed image by %v", d)
	}
}

func TestWarpTranslationShifts(t *testing.T) {
	src := tensor.New(1, 4, 4)
	src.Set(1, 0, 1, 1)
	// Output→input map: out(x,y) samples in(x+1, y). So the bright input
	// pixel (1,1) appears at output x=0.
	out := WarpImage(src, Translate(1, 0), 4, 4, 0)
	if out.At(0, 1, 0) != 1 || out.At(0, 1, 1) != 0 {
		t.Fatalf("translation wrong: %v", out.Data())
	}
}

func TestWarpOutsideFill(t *testing.T) {
	src := tensor.New(1, 2, 2)
	out := WarpImage(src, Translate(100, 100), 2, 2, 0.77)
	for _, v := range out.Data() {
		if v != 0.77 {
			t.Fatalf("outside fill = %v, want 0.77", v)
		}
	}
}

func TestWarpGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := tensor.NewRandU(rng, 0, 1, 1, 5, 5)
	h := RotateAbout(0.3, 2, 2).Mul(ScaleXY(0.9, 1.1))
	wp := NewWarp(h, 5, 5, 0)
	out := wp.Forward(src)
	probe := tensor.NewRandN(rng, 1, out.Shape()...)
	wp.Forward(src)
	dSrc := wp.Backward(probe)

	loss := func() float64 { return tensor.Dot(NewWarp(h, 5, 5, 0).Forward(src), probe) }
	const eps = 1e-6
	for i := 0; i < src.Len(); i += 3 {
		orig := src.Data()[i]
		src.Data()[i] = orig + eps
		lp := loss()
		src.Data()[i] = orig - eps
		lm := loss()
		src.Data()[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-dSrc.Data()[i]) > 1e-6 {
			t.Fatalf("warp grad[%d]: analytic %v numeric %v", i, dSrc.Data()[i], num)
		}
	}
}

func TestWarpBackwardBeforeForwardPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWarp(Identity(), 2, 2, 0).Backward(tensor.New(1, 2, 2))
}

func TestResizeBilinearConstant(t *testing.T) {
	src := tensor.Full(0.5, 1, 4, 4)
	out := ResizeBilinear(src, 8, 8)
	if out.Dim(1) != 8 || out.Dim(2) != 8 {
		t.Fatalf("shape = %v", out.Shape())
	}
	for _, v := range out.Data() {
		if math.Abs(v-0.5) > 1e-9 {
			t.Fatalf("constant image not preserved: %v", v)
		}
	}
}

func TestResizeBilinearPreservesMeanApprox(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := tensor.NewRandU(rng, 0, 1, 1, 16, 16)
	out := ResizeBilinear(src, 8, 8)
	if math.Abs(out.Mean()-src.Mean()) > 0.05 {
		t.Fatalf("resize mean drifted: %v vs %v", out.Mean(), src.Mean())
	}
}

func TestPropWarpLinearInInput(t *testing.T) {
	// Warping is a linear operator: warp(a+b) = warp(a)+warp(b).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := tensor.NewRandU(r, 0, 1, 1, 6, 6)
		b := tensor.NewRandU(r, 0, 1, 1, 6, 6)
		h := RotateAbout(r.Float64(), 3, 3)
		wa := WarpImage(a, h, 6, 6, 0)
		wb := WarpImage(b, h, 6, 6, 0)
		wab := WarpImage(tensor.Add(a, b), h, 6, 6, 0)
		return tensor.MaxAbsDiff(tensor.Add(wa, wb), wab) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGammaGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := tensor.NewRandU(rng, 0.1, 0.9, 1, 4, 4)
	g := NewGamma(1.7)
	out := g.Forward(x)
	probe := tensor.NewRandN(rng, 1, out.Shape()...)
	g.Forward(x)
	dX := g.Backward(probe)
	const eps = 1e-6
	for i := 0; i < x.Len(); i += 2 {
		orig := x.Data()[i]
		x.Data()[i] = orig + eps
		lp := tensor.Dot(NewGamma(1.7).Forward(x), probe)
		x.Data()[i] = orig - eps
		lm := tensor.Dot(NewGamma(1.7).Forward(x), probe)
		x.Data()[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-dX.Data()[i]) > 1e-5 {
			t.Fatalf("gamma grad[%d]: analytic %v numeric %v", i, dX.Data()[i], num)
		}
	}
}

func TestGammaIdentityAtOne(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := tensor.NewRandU(rng, 0.1, 1, 1, 3, 3)
	out := NewGamma(1).Forward(x)
	if d := tensor.MaxAbsDiff(x, out); d > 1e-12 {
		t.Fatalf("gamma=1 changed image by %v", d)
	}
}

func TestBrightnessScalesAndBackprops(t *testing.T) {
	x := tensor.Full(0.4, 1, 2, 2)
	br := NewBrightness(1.5)
	out := br.Forward(x)
	if math.Abs(out.At(0, 0, 0)-0.6) > 1e-12 {
		t.Fatalf("brightness = %v", out.At(0, 0, 0))
	}
	d := br.Backward(tensor.Ones(1, 2, 2))
	if d.At(0, 1, 1) != 1.5 {
		t.Fatalf("brightness grad = %v", d.At(0, 1, 1))
	}
}

func TestClampUnitGradGating(t *testing.T) {
	x := tensor.FromSlice([]float64{-0.5, 0.5, 1.5}, 1, 1, 3)
	cl := NewClampUnit()
	out := cl.Forward(x)
	if out.At(0, 0, 0) != 0 || out.At(0, 0, 1) != 0.5 || out.At(0, 0, 2) != 1 {
		t.Fatalf("clamp = %v", out.Data())
	}
	d := cl.Backward(tensor.Ones(1, 1, 3))
	if d.At(0, 0, 0) != 0 || d.At(0, 0, 1) != 1 || d.At(0, 0, 2) != 0 {
		t.Fatalf("clamp grad = %v", d.Data())
	}
}

func TestGrayscaleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	gray := tensor.NewRandU(rng, 0, 1, 1, 4, 4)
	rgb := GrayToRGB(gray)
	back := Grayscale(rgb)
	if d := tensor.MaxAbsDiff(gray, back); d > 1e-9 {
		t.Fatalf("gray→rgb→gray drifted by %v", d)
	}
}

func TestCompositeInkGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bg := tensor.NewRandU(rng, 0, 1, 3, 4, 4)
	gray := tensor.NewRandU(rng, 0, 1, 1, 4, 4)
	cp := NewCompositeInk([3]float64{0.1, 0.1, 0.1})
	out := cp.Forward(bg, gray)
	probe := tensor.NewRandN(rng, 1, out.Shape()...)
	cp.Forward(bg, gray)
	dBg, dGray := cp.Backward(probe)
	loss := func() float64 {
		return tensor.Dot(NewCompositeInk([3]float64{0.1, 0.1, 0.1}).Forward(bg, gray), probe)
	}
	const eps = 1e-6
	check := func(name string, x, grad *tensor.Tensor) {
		for i := 0; i < x.Len(); i += 3 {
			orig := x.Data()[i]
			x.Data()[i] = orig + eps
			lp := loss()
			x.Data()[i] = orig - eps
			lm := loss()
			x.Data()[i] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-grad.Data()[i]) > 1e-5 {
				t.Fatalf("%s grad[%d]: analytic %v numeric %v", name, i, grad.Data()[i], num)
			}
		}
	}
	check("bg", bg, dBg)
	check("gray", gray, dGray)
}

func TestCompositeInkWhiteIsTransparent(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	bg := tensor.NewRandU(rng, 0, 1, 3, 3, 3)
	white := tensor.Ones(1, 3, 3)
	out := NewCompositeInk([3]float64{0, 0, 0}).Forward(bg, white)
	if d := tensor.MaxAbsDiff(bg, out); d > 1e-12 {
		t.Fatalf("white layer must be invisible, diff %v", d)
	}
	black := tensor.New(1, 3, 3)
	out2 := NewCompositeInk([3]float64{0, 0, 0}).Forward(bg, black)
	if out2.Max() > 1e-12 {
		t.Fatalf("black layer must paint pure ink, max %v", out2.Max())
	}
}

func TestCompositeRGBMask(t *testing.T) {
	bg := tensor.Full(0.2, 3, 2, 2)
	layer := tensor.Full(0.8, 3, 2, 2)
	mask := tensor.New(1, 2, 2)
	mask.Set(1, 0, 0, 0)
	cp := NewCompositeRGB()
	out := cp.Forward(bg, layer, mask)
	if out.At(0, 0, 0) != 0.8 || out.At(0, 1, 1) != 0.2 {
		t.Fatalf("masked composite wrong: %v", out.Data())
	}
	dBg, dLayer := cp.Backward(tensor.Ones(3, 2, 2))
	if dBg.At(0, 0, 0) != 0 || dLayer.At(0, 0, 0) != 1 || dBg.At(0, 1, 1) != 1 {
		t.Fatal("composite gradients wrong")
	}
}

func TestApplyShapeMask(t *testing.T) {
	patch := tensor.FromSlice([]float64{0.25, 0.5, 0.75, 0.875}, 1, 2, 2)
	mask := tensor.FromSlice([]float64{1, 1, 0, 0}, 1, 2, 2)
	out, backward := ApplyShapeMask(patch, mask)
	if out.At(0, 0, 0) != 0.25 || out.At(0, 1, 0) != 1 {
		t.Fatalf("mask application wrong: %v", out.Data())
	}
	d := backward(tensor.Ones(1, 2, 2))
	if d.At(0, 0, 1) != 1 || d.At(0, 1, 1) != 0 {
		t.Fatalf("mask backward wrong: %v", d.Data())
	}
}

func TestBoxBlurPreservesConstant(t *testing.T) {
	img := tensor.Full(0.5, 1, 8, 8)
	for _, l := range []int{3, 5} {
		out := BoxBlurVertical(img, l)
		// Interior rows must stay exactly 0.5; borders darken (zero pad).
		if math.Abs(out.At(0, 4, 4)-0.5) > 1e-12 {
			t.Fatalf("interior changed for l=%d: %v", l, out.At(0, 4, 4))
		}
	}
}

func TestBoxBlurSymmetricOperator(t *testing.T) {
	// <Blur(a), b> == <a, Blur(b)> — needed so eval code can treat blur as
	// self-adjoint.
	rng := rand.New(rand.NewSource(9))
	a := tensor.NewRandN(rng, 1, 1, 7, 7)
	b := tensor.NewRandN(rng, 1, 1, 7, 7)
	for _, l := range []int{2, 3, 4, 5} {
		lhs := tensor.Dot(BoxBlurVertical(a, l), b)
		rhs := tensor.Dot(a, BoxBlurVertical(b, l))
		if math.Abs(lhs-rhs) > 1e-9 {
			t.Fatalf("l=%d: blur not symmetric: %v vs %v", l, lhs, rhs)
		}
		lhs = tensor.Dot(BoxBlurHorizontal(a, l), b)
		rhs = tensor.Dot(a, BoxBlurHorizontal(b, l))
		if math.Abs(lhs-rhs) > 1e-9 {
			t.Fatalf("l=%d: hblur not symmetric: %v vs %v", l, lhs, rhs)
		}
	}
}

func TestBoxBlurEvenLengthPromoted(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	img := tensor.NewRandU(rng, 0, 1, 1, 6, 6)
	if d := tensor.MaxAbsDiff(BoxBlurVertical(img, 2), BoxBlurVertical(img, 3)); d != 0 {
		t.Fatalf("even length must equal next odd length, diff %v", d)
	}
}

func TestBlurNoOpForL1(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	img := tensor.NewRandU(rng, 0, 1, 1, 4, 4)
	if d := tensor.MaxAbsDiff(img, BoxBlurVertical(img, 1)); d != 0 {
		t.Fatalf("l=1 blur changed image by %v", d)
	}
	if d := tensor.MaxAbsDiff(img, GaussianApprox(img, 0)); d != 0 {
		t.Fatalf("sigma=0 gaussian changed image by %v", d)
	}
}

func TestGaussianApproxSmooths(t *testing.T) {
	img := tensor.New(1, 9, 9)
	img.Set(1, 0, 4, 4)
	out := GaussianApprox(img, 1.5)
	if out.At(0, 4, 4) >= 1 || out.At(0, 4, 4) <= 0 {
		t.Fatalf("center value %v", out.At(0, 4, 4))
	}
	if out.At(0, 3, 4) <= 0 {
		t.Fatal("blur did not spread energy")
	}
}

func TestPNGSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "img.png")
	rng := rand.New(rand.NewSource(11))
	img := tensor.NewRandU(rng, 0, 1, 3, 5, 6)
	if err := SavePNG(path, img); err != nil {
		t.Fatal(err)
	}
	back, err := LoadPNG(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Dim(1) != 5 || back.Dim(2) != 6 {
		t.Fatalf("shape = %v", back.Shape())
	}
	if d := tensor.MaxAbsDiff(img, back); d > 1.0/255+1e-9 {
		t.Fatalf("png round trip error %v exceeds quantization", d)
	}
}

func TestLoadPNGMissingFile(t *testing.T) {
	if _, err := LoadPNG(filepath.Join(t.TempDir(), "nope.png")); err == nil {
		t.Fatal("expected error")
	}
}

func TestLoadPNGCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.png")
	if err := os.WriteFile(path, []byte("not a png"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPNG(path); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestDrawRectClampsAndDraws(t *testing.T) {
	img := tensor.New(3, 8, 8)
	DrawRect(img, -5, 2, 100, 6, [3]float64{1, 0, 0})
	if img.At(0, 2, 0) != 1 || img.At(0, 6, 7) != 1 {
		t.Fatal("rect edges not drawn")
	}
	if img.At(1, 2, 0) != 0 {
		t.Fatal("wrong channel painted")
	}
}

func TestTileHorizontal(t *testing.T) {
	a := tensor.Full(0.2, 3, 4, 3)
	b := tensor.Full(0.8, 1, 4, 2)
	tiled := TileHorizontal([]*tensor.Tensor{a, b}, 1)
	if tiled.Dim(2) != 3+1+2 {
		t.Fatalf("width = %d", tiled.Dim(2))
	}
	if tiled.At(0, 0, 0) != 0.2 || tiled.At(2, 0, 4) != 0.8 {
		t.Fatalf("tiling misplaced: %v %v", tiled.At(0, 0, 0), tiled.At(2, 0, 4))
	}
	if tiled.At(0, 0, 3) != 1 {
		t.Fatal("gutter not white")
	}
}

func TestWarpClampEdgesSamplesBorder(t *testing.T) {
	src := tensor.New(1, 3, 3)
	src.Set(0.7, 0, 0, 0)
	wp := NewWarp(Translate(-2, -2), 3, 3, 0.123)
	wp.ClampEdges = true
	out := wp.Forward(src)
	// Every output pixel samples inside the (clamped) source: no fill value.
	for _, v := range out.Data() {
		if v == 0.123 {
			t.Fatal("ClampEdges warp used the outside fill")
		}
	}
	// Without clamping the same warp fills with Outside.
	wp2 := NewWarp(Translate(-2, -2), 3, 3, 0.123)
	out2 := wp2.Forward(src)
	if out2.At(0, 0, 0) != 0.123 {
		t.Fatalf("expected outside fill, got %v", out2.At(0, 0, 0))
	}
}

func TestWarpDegenerateHomography(t *testing.T) {
	var h Homography // all zeros: Apply reports !ok everywhere
	out := NewWarp(h, 2, 2, 0.5).Forward(tensor.Ones(1, 2, 2))
	for _, v := range out.Data() {
		if v != 0.5 {
			t.Fatalf("degenerate homography must fill Outside, got %v", v)
		}
	}
}

func TestSaveGIFRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(13))
	frames := []*tensor.Tensor{
		tensor.NewRandU(rng, 0, 1, 3, 8, 8),
		tensor.NewRandU(rng, 0, 1, 3, 8, 8),
	}
	path := filepath.Join(dir, "anim.gif")
	if err := SaveGIF(path, frames, 10); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil || info.Size() == 0 {
		t.Fatalf("gif missing: %v", err)
	}
}

func TestSaveGIFEmpty(t *testing.T) {
	if err := SaveGIF(filepath.Join(t.TempDir(), "x.gif"), nil, 10); err == nil {
		t.Fatal("expected error for empty frame list")
	}
}

package imaging

import (
	"fmt"

	"roadtrojan/internal/tensor"
)

// CompositeInk alpha-composites a *monochrome* decal over an RGB canvas.
// The decal input is a full-canvas grayscale layer (the patch already warped
// into place, with 1.0 = white = fully transparent background, matching the
// paper's "remove the backgrounds from the APs"): opacity = 1 − gray, and
// covered pixels blend toward the ink color.
//
//	out_c = bg_c·gray + ink_c·(1 − gray)
//
// Both the canvas and the decal layer receive gradients, so stacking N
// decals (each composite's output is the next one's canvas) backpropagates
// correctly.
type CompositeInk struct {
	Ink [3]float64 // ink color; road paint is near-black by default

	lastBg   *tensor.Tensor
	lastGray *tensor.Tensor
}

// NewCompositeInk returns a compositor with the given ink color.
func NewCompositeInk(ink [3]float64) *CompositeInk { return &CompositeInk{Ink: ink} }

// Forward blends gray [1,H,W] over bg [3,H,W].
func (cp *CompositeInk) Forward(bg, gray *tensor.Tensor) *tensor.Tensor {
	h, w := bg.Dim(1), bg.Dim(2)
	if gray.Dim(1) != h || gray.Dim(2) != w {
		panic(fmt.Sprintf("imaging: CompositeInk size mismatch bg %v gray %v", bg.Shape(), gray.Shape()))
	}
	cp.lastBg, cp.lastGray = bg, gray
	out := tensor.New(3, h, w)
	n := h * w
	for c := 0; c < 3; c++ {
		ink := cp.Ink[c]
		bgp := bg.Data()[c*n : (c+1)*n]
		op := out.Data()[c*n : (c+1)*n]
		for i := 0; i < n; i++ {
			g := gray.Data()[i]
			op[i] = bgp[i]*g + ink*(1-g)
		}
	}
	return out
}

// Backward returns (dBg, dGray).
func (cp *CompositeInk) Backward(dOut *tensor.Tensor) (*tensor.Tensor, *tensor.Tensor) {
	if cp.lastBg == nil {
		panic("imaging: CompositeInk.Backward called before Forward")
	}
	h, w := cp.lastBg.Dim(1), cp.lastBg.Dim(2)
	n := h * w
	dBg := tensor.New(3, h, w)
	dGray := tensor.New(1, h, w)
	for c := 0; c < 3; c++ {
		ink := cp.Ink[c]
		bgp := cp.lastBg.Data()[c*n : (c+1)*n]
		dp := dOut.Data()[c*n : (c+1)*n]
		dbgp := dBg.Data()[c*n : (c+1)*n]
		for i := 0; i < n; i++ {
			g := cp.lastGray.Data()[i]
			dbgp[i] = dp[i] * g
			dGray.Data()[i] += dp[i] * (bgp[i] - ink)
		}
	}
	return dBg, dGray
}

// CompositeRGB pastes a full-canvas RGB layer over the canvas using an
// explicit coverage mask (used by the colored baseline attack [34], whose
// patch has no transparent background: the whole square covers the road).
//
//	out_c = bg_c·(1 − m) + layer_c·m
//
// The mask is treated as a constant; gradients flow to bg and layer.
type CompositeRGB struct {
	lastMask *tensor.Tensor
}

// NewCompositeRGB returns an RGB-over-RGB compositor.
func NewCompositeRGB() *CompositeRGB { return &CompositeRGB{} }

// Forward blends layer [3,H,W] over bg [3,H,W] with mask [1,H,W].
func (cp *CompositeRGB) Forward(bg, layer, mask *tensor.Tensor) *tensor.Tensor {
	h, w := bg.Dim(1), bg.Dim(2)
	cp.lastMask = mask
	out := tensor.New(3, h, w)
	n := h * w
	for c := 0; c < 3; c++ {
		bgp := bg.Data()[c*n : (c+1)*n]
		lp := layer.Data()[c*n : (c+1)*n]
		op := out.Data()[c*n : (c+1)*n]
		for i := 0; i < n; i++ {
			m := mask.Data()[i]
			op[i] = bgp[i]*(1-m) + lp[i]*m
		}
	}
	return out
}

// Backward returns (dBg, dLayer).
func (cp *CompositeRGB) Backward(dOut *tensor.Tensor) (*tensor.Tensor, *tensor.Tensor) {
	if cp.lastMask == nil {
		panic("imaging: CompositeRGB.Backward called before Forward")
	}
	h, w := dOut.Dim(1), dOut.Dim(2)
	n := h * w
	dBg := tensor.New(3, h, w)
	dLayer := tensor.New(3, h, w)
	for c := 0; c < 3; c++ {
		dp := dOut.Data()[c*n : (c+1)*n]
		dbgp := dBg.Data()[c*n : (c+1)*n]
		dlp := dLayer.Data()[c*n : (c+1)*n]
		for i := 0; i < n; i++ {
			m := cp.lastMask.Data()[i]
			dbgp[i] = dp[i] * (1 - m)
			dlp[i] = dp[i] * m
		}
	}
	return dBg, dLayer
}

// ApplyShapeMask whitens a grayscale patch outside the shape mask:
// out = 1 − mask·(1 − p). Inside the mask the patch value passes through;
// outside it becomes 1 (transparent for CompositeInk). The mask is constant;
// the returned closure converts dOut into dPatch.
func ApplyShapeMask(patch, mask *tensor.Tensor) (*tensor.Tensor, func(dOut *tensor.Tensor) *tensor.Tensor) {
	if patch.Len() != mask.Len() {
		panic(fmt.Sprintf("imaging: ApplyShapeMask size mismatch %v vs %v", patch.Shape(), mask.Shape()))
	}
	out := tensor.New(patch.Shape()...)
	for i, p := range patch.Data() {
		out.Data()[i] = 1 - mask.Data()[i]*(1-p)
	}
	backward := func(dOut *tensor.Tensor) *tensor.Tensor {
		dP := tensor.New(patch.Shape()...)
		for i := range dP.Data() {
			dP.Data()[i] = dOut.Data()[i] * mask.Data()[i]
		}
		return dP
	}
	return out, backward
}

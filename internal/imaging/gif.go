package imaging

import (
	"fmt"
	"image"
	"image/color/palette"
	"image/draw"
	"image/gif"
	"os"
	"path/filepath"

	"roadtrojan/internal/tensor"
)

// SaveGIF writes a sequence of CHW frames as an animated GIF (delay in
// hundredths of a second per frame). Frames are quantized to the Plan9
// palette — good enough for road-scene previews.
func SaveGIF(path string, frames []*tensor.Tensor, delay int) error {
	if len(frames) == 0 {
		return fmt.Errorf("save gif: no frames")
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("save gif: %w", err)
	}
	anim := &gif.GIF{}
	for _, f := range frames {
		src := ToImage(f)
		pal := image.NewPaletted(src.Bounds(), palette.Plan9)
		draw.FloydSteinberg.Draw(pal, src.Bounds(), src, image.Point{})
		anim.Image = append(anim.Image, pal)
		anim.Delay = append(anim.Delay, delay)
	}
	out, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("save gif: %w", err)
	}
	if err := gif.EncodeAll(out, anim); err != nil {
		out.Close()
		return fmt.Errorf("save gif %q: %w", path, err)
	}
	return out.Close()
}

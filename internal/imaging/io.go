package imaging

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"os"
	"path/filepath"

	"roadtrojan/internal/tensor"
)

// ToImage converts a CHW tensor (1 or 3 channels, values in [0,1], clamped)
// to an NRGBA image.
func ToImage(t *tensor.Tensor) *image.NRGBA {
	c, h, w := t.Dim(0), t.Dim(1), t.Dim(2)
	img := image.NewNRGBA(image.Rect(0, 0, w, h))
	n := h * w
	px := func(v float64) uint8 {
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		return uint8(v*255 + 0.5)
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			var r, g, b uint8
			if c >= 3 {
				r = px(t.Data()[i])
				g = px(t.Data()[n+i])
				b = px(t.Data()[2*n+i])
			} else {
				r = px(t.Data()[i])
				g, b = r, r
			}
			img.SetNRGBA(x, y, color.NRGBA{R: r, G: g, B: b, A: 255})
		}
	}
	return img
}

// FromImage converts any image to a [3,H,W] tensor with values in [0,1].
func FromImage(img image.Image) *tensor.Tensor {
	b := img.Bounds()
	h, w := b.Dy(), b.Dx()
	t := tensor.New(3, h, w)
	n := h * w
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r, g, bl, _ := img.At(b.Min.X+x, b.Min.Y+y).RGBA()
			i := y*w + x
			t.Data()[i] = float64(r) / 65535
			t.Data()[n+i] = float64(g) / 65535
			t.Data()[2*n+i] = float64(bl) / 65535
		}
	}
	return t
}

// SavePNG writes a CHW tensor to a PNG file, creating parent directories.
func SavePNG(path string, t *tensor.Tensor) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("save png: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("save png: %w", err)
	}
	if err := png.Encode(f, ToImage(t)); err != nil {
		f.Close()
		return fmt.Errorf("save png %q: %w", path, err)
	}
	return f.Close()
}

// LoadPNG reads a PNG file into a [3,H,W] tensor.
func LoadPNG(path string) (*tensor.Tensor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("load png: %w", err)
	}
	defer f.Close()
	img, err := png.Decode(f)
	if err != nil {
		return nil, fmt.Errorf("load png %q: %w", path, err)
	}
	return FromImage(img), nil
}

// DrawRect draws an axis-aligned rectangle outline on a CHW tensor in the
// given color (for visualizing detections in figure outputs).
func DrawRect(t *tensor.Tensor, x0, y0, x1, y1 int, col [3]float64) {
	c, h, w := t.Dim(0), t.Dim(1), t.Dim(2)
	n := h * w
	clampI := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	x0, x1 = clampI(x0, 0, w-1), clampI(x1, 0, w-1)
	y0, y1 = clampI(y0, 0, h-1), clampI(y1, 0, h-1)
	set := func(x, y int) {
		for ch := 0; ch < c && ch < 3; ch++ {
			t.Data()[ch*n+y*w+x] = col[ch]
		}
	}
	for x := x0; x <= x1; x++ {
		set(x, y0)
		set(x, y1)
	}
	for y := y0; y <= y1; y++ {
		set(x0, y)
		set(x1, y)
	}
}

// TileHorizontal lays out same-height CHW images side by side with a small
// white gutter — used for figure strips (Figs. 6–8).
func TileHorizontal(images []*tensor.Tensor, gutter int) *tensor.Tensor {
	if len(images) == 0 {
		return tensor.Ones(3, 1, 1)
	}
	h := images[0].Dim(1)
	total := 0
	for _, im := range images {
		if im.Dim(1) != h {
			panic("imaging: TileHorizontal requires equal heights")
		}
		total += im.Dim(2)
	}
	total += gutter * (len(images) - 1)
	out := tensor.Ones(3, h, total)
	n := h * total
	xoff := 0
	for _, im := range images {
		c, iw := im.Dim(0), im.Dim(2)
		in := h * iw
		for y := 0; y < h; y++ {
			for x := 0; x < iw; x++ {
				for ch := 0; ch < 3; ch++ {
					src := ch
					if c == 1 {
						src = 0
					}
					out.Data()[ch*n+y*total+xoff+x] = im.Data()[src*in+y*iw+x]
				}
			}
		}
		xoff += iw + gutter
	}
	return out
}

package imaging

import (
	"math"

	"roadtrojan/internal/tensor"
)

// gammaFloor keeps x^γ differentiable near zero.
const gammaFloor = 1e-4

// Gamma applies out = clamp(x)^g elementwise — the non-linear brightness
// adjustment the paper's EOT trick (4) uses.
type Gamma struct {
	G float64

	lastInput *tensor.Tensor
}

// NewGamma returns a gamma-correction stage.
func NewGamma(g float64) *Gamma { return &Gamma{G: g} }

// Forward applies the power law.
func (gm *Gamma) Forward(x *tensor.Tensor) *tensor.Tensor {
	gm.lastInput = x
	return x.Map(func(v float64) float64 {
		if v < gammaFloor {
			v = gammaFloor
		}
		return math.Pow(v, gm.G)
	})
}

// Backward multiplies by g·x^(g−1) (zero where the input was clamped).
func (gm *Gamma) Backward(dOut *tensor.Tensor) *tensor.Tensor {
	if gm.lastInput == nil {
		panic("imaging: Gamma.Backward called before Forward")
	}
	dIn := tensor.New(dOut.Shape()...)
	for i, v := range gm.lastInput.Data() {
		if v < gammaFloor {
			continue // clamped region: derivative 0
		}
		dIn.Data()[i] = dOut.Data()[i] * gm.G * math.Pow(v, gm.G-1)
	}
	return dIn
}

// Brightness applies out = b·x elementwise — the linear brightness EOT
// trick (3).
type Brightness struct {
	B float64

	forwarded bool
}

// NewBrightness returns a multiplicative brightness stage.
func NewBrightness(b float64) *Brightness { return &Brightness{B: b} }

// Forward scales the image.
func (br *Brightness) Forward(x *tensor.Tensor) *tensor.Tensor {
	br.forwarded = true
	return x.Map(func(v float64) float64 { return br.B * v })
}

// Backward scales the gradient.
func (br *Brightness) Backward(dOut *tensor.Tensor) *tensor.Tensor {
	if !br.forwarded {
		panic("imaging: Brightness.Backward called before Forward")
	}
	return dOut.Map(func(v float64) float64 { return br.B * v })
}

// ClampUnit limits an image to [0,1]; its backward pass passes gradients
// only where the input was strictly inside the interval.
type ClampUnit struct {
	lastInput *tensor.Tensor
}

// NewClampUnit returns a [0,1] clamp stage.
func NewClampUnit() *ClampUnit { return &ClampUnit{} }

// Forward clamps.
func (cl *ClampUnit) Forward(x *tensor.Tensor) *tensor.Tensor {
	cl.lastInput = x
	return x.Map(func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	})
}

// Backward gates the gradient to the un-clamped region.
func (cl *ClampUnit) Backward(dOut *tensor.Tensor) *tensor.Tensor {
	if cl.lastInput == nil {
		panic("imaging: ClampUnit.Backward called before Forward")
	}
	dIn := tensor.New(dOut.Shape()...)
	for i, v := range cl.lastInput.Data() {
		if v > 0 && v < 1 {
			dIn.Data()[i] = dOut.Data()[i]
		}
	}
	return dIn
}

// Grayscale converts an RGB CHW image to a single-channel luminance image
// with Rec.601 weights.
func Grayscale(rgb *tensor.Tensor) *tensor.Tensor {
	h, w := rgb.Dim(1), rgb.Dim(2)
	out := tensor.New(1, h, w)
	n := h * w
	r := rgb.Data()[:n]
	g := rgb.Data()[n : 2*n]
	b := rgb.Data()[2*n : 3*n]
	for i := 0; i < n; i++ {
		out.Data()[i] = 0.299*r[i] + 0.587*g[i] + 0.114*b[i]
	}
	return out
}

// GrayToRGB replicates a single-channel image across three channels.
func GrayToRGB(gray *tensor.Tensor) *tensor.Tensor {
	h, w := gray.Dim(1), gray.Dim(2)
	out := tensor.New(3, h, w)
	n := h * w
	for c := 0; c < 3; c++ {
		copy(out.Data()[c*n:(c+1)*n], gray.Data()[:n])
	}
	return out
}

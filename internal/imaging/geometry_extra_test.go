package imaging

import (
	"math"
	"testing"
)

func TestHomographyMulAssociative(t *testing.T) {
	a := Translate(1, 2)
	b := RotateAbout(0.4, 3, 3)
	c := ScaleXY(2, 0.5)
	lhs := a.Mul(b).Mul(c)
	rhs := a.Mul(b.Mul(c))
	for _, p := range []Point{{0, 0}, {5, -2}, {1.5, 7}} {
		x1, y1, _ := lhs.Apply(p.X, p.Y)
		x2, y2, _ := rhs.Apply(p.X, p.Y)
		if math.Abs(x1-x2) > 1e-9 || math.Abs(y1-y2) > 1e-9 {
			t.Fatalf("Mul not associative at %v: (%v,%v) vs (%v,%v)", p, x1, y1, x2, y2)
		}
	}
}

func TestRotationPreservesDistances(t *testing.T) {
	h := RotateAbout(1.1, 4, 4)
	a, b := Point{1, 2}, Point{6, 3}
	ax, ay, _ := h.Apply(a.X, a.Y)
	bx, by, _ := h.Apply(b.X, b.Y)
	before := math.Hypot(a.X-b.X, a.Y-b.Y)
	after := math.Hypot(ax-bx, ay-by)
	if math.Abs(before-after) > 1e-9 {
		t.Fatalf("rotation changed distance: %v -> %v", before, after)
	}
}

func TestQuadToQuadIdentityForSameQuads(t *testing.T) {
	q := [4]Point{{1, 1}, {9, 2}, {8, 9}, {0, 8}}
	h, err := QuadToQuad(q, q)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Point{{3, 3}, {5, 6}} {
		x, y, _ := h.Apply(p.X, p.Y)
		if math.Abs(x-p.X) > 1e-8 || math.Abs(y-p.Y) > 1e-8 {
			t.Fatalf("identity quad map moved %v to (%v,%v)", p, x, y)
		}
	}
}

func TestApplyAtInfinityReportsNotOK(t *testing.T) {
	// A projective map with a vanishing line: w = 0 along x = 1.
	h := Homography{1, 0, 0, 0, 1, 0, -1, 0, 1}
	if _, _, ok := h.Apply(1, 5); ok {
		t.Fatal("point on the vanishing line must report !ok")
	}
	if _, _, ok := h.Apply(0.5, 5); !ok {
		t.Fatal("regular point must report ok")
	}
}

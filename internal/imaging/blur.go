package imaging

import "roadtrojan/internal/tensor"

// BoxBlurVertical applies a length-L vertical box blur with fixed 1/L
// weights and zero padding. Even lengths are promoted to the next odd length
// so the window is centered, which makes the operator symmetric — it is its
// own adjoint, so the backward pass is the same blur. It models motion blur
// from a camera closing in on a road decal (radial flow is predominantly
// vertical in the lower image half where decals live).
func BoxBlurVertical(img *tensor.Tensor, l int) *tensor.Tensor {
	if l <= 1 {
		return img.Clone()
	}
	l |= 1
	c, h, w := img.Dim(0), img.Dim(1), img.Dim(2)
	out := tensor.New(c, h, w)
	r := l / 2
	inv := 1 / float64(l)
	for ch := 0; ch < c; ch++ {
		plane := img.Data()[ch*h*w : (ch+1)*h*w]
		oplane := out.Data()[ch*h*w : (ch+1)*h*w]
		for x := 0; x < w; x++ {
			// Sliding window sum down the column.
			sum := 0.0
			for y := -r; y <= r-1+(l%2); y++ {
				if y >= 0 && y < h {
					sum += plane[y*w+x]
				}
			}
			for y := 0; y < h; y++ {
				oplane[y*w+x] = sum * inv
				lo := y - r
				hi := y + r + (l % 2) // next window's top edge
				if lo >= 0 && lo < h {
					sum -= plane[lo*w+x]
				}
				if hi >= 0 && hi < h {
					sum += plane[hi*w+x]
				}
			}
		}
	}
	return out
}

// BoxBlurHorizontal is BoxBlurVertical's horizontal counterpart (also
// odd-length, symmetric).
func BoxBlurHorizontal(img *tensor.Tensor, l int) *tensor.Tensor {
	if l <= 1 {
		return img.Clone()
	}
	l |= 1
	c, h, w := img.Dim(0), img.Dim(1), img.Dim(2)
	out := tensor.New(c, h, w)
	r := l / 2
	inv := 1 / float64(l)
	for ch := 0; ch < c; ch++ {
		plane := img.Data()[ch*h*w : (ch+1)*h*w]
		oplane := out.Data()[ch*h*w : (ch+1)*h*w]
		for y := 0; y < h; y++ {
			row := plane[y*w : (y+1)*w]
			orow := oplane[y*w : (y+1)*w]
			sum := 0.0
			for x := -r; x <= r-1+(l%2); x++ {
				if x >= 0 && x < w {
					sum += row[x]
				}
			}
			for x := 0; x < w; x++ {
				orow[x] = sum * inv
				lo := x - r
				hi := x + r + (l % 2)
				if lo >= 0 && lo < w {
					sum -= row[lo]
				}
				if hi >= 0 && hi < w {
					sum += row[hi]
				}
			}
		}
	}
	return out
}

// GaussianApprox approximates a Gaussian blur by three successive box blurs
// in each direction (a standard trick); sigma is mapped to an odd box length.
func GaussianApprox(img *tensor.Tensor, sigma float64) *tensor.Tensor {
	if sigma <= 0 {
		return img.Clone()
	}
	l := int(sigma*2) | 1 // odd length ≈ 2σ
	if l < 3 {
		l = 3
	}
	out := img
	for i := 0; i < 3; i++ {
		out = BoxBlurHorizontal(BoxBlurVertical(out, l), l)
	}
	return out
}

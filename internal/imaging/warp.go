package imaging

import (
	"roadtrojan/internal/tensor"
)

// Warp resamples a CHW image through a homography. The transform maps
// *output* pixel coordinates to *input* coordinates (inverse warping), and
// samples bilinearly. Output pixels that map outside the source are filled
// with Outside.
type Warp struct {
	H          Homography
	OutH, OutW int
	Outside    float64
	// ClampEdges samples the nearest border pixel instead of filling with
	// Outside when a coordinate falls outside the source (used by resizing,
	// where half-pixel overshoot at the borders is expected).
	ClampEdges   bool
	lastSrcShape []int
	// Cached sampling positions for the backward pass: for each output
	// pixel, the 4 source corners and weights (or -1 when outside).
	idx []int32
	wgt []float64
}

// NewWarp builds a warp stage. h maps output (x, y) → input (u, v).
func NewWarp(h Homography, outH, outW int, outside float64) *Warp {
	return &Warp{H: h, OutH: outH, OutW: outW, Outside: outside}
}

// Forward warps src [C,H,W] into [C,OutH,OutW].
func (wp *Warp) Forward(src *tensor.Tensor) *tensor.Tensor {
	c, h, w := src.Dim(0), src.Dim(1), src.Dim(2)
	wp.lastSrcShape = src.Shape()
	out := tensor.New(c, wp.OutH, wp.OutW)
	n := wp.OutH * wp.OutW
	wp.idx = make([]int32, 4*n)
	wp.wgt = make([]float64, 4*n)

	for oy := 0; oy < wp.OutH; oy++ {
		for ox := 0; ox < wp.OutW; ox++ {
			p := oy*wp.OutW + ox
			u, v, ok := wp.H.Apply(float64(ox), float64(oy))
			if wp.ClampEdges && ok {
				if u < 0 {
					u = 0
				} else if u > float64(w-1) {
					u = float64(w - 1)
				}
				if v < 0 {
					v = 0
				} else if v > float64(h-1) {
					v = float64(h - 1)
				}
			}
			if !ok || u < 0 || v < 0 || u > float64(w-1) || v > float64(h-1) {
				wp.idx[4*p] = -1
				for ch := 0; ch < c; ch++ {
					out.Data()[ch*n+p] = wp.Outside
				}
				continue
			}
			x0 := int(u)
			y0 := int(v)
			x1, y1 := x0+1, y0+1
			if x1 > w-1 {
				x1 = w - 1
			}
			if y1 > h-1 {
				y1 = h - 1
			}
			fx := u - float64(x0)
			fy := v - float64(y0)
			w00 := (1 - fx) * (1 - fy)
			w01 := fx * (1 - fy)
			w10 := (1 - fx) * fy
			w11 := fx * fy
			wp.idx[4*p] = int32(y0*w + x0)
			wp.idx[4*p+1] = int32(y0*w + x1)
			wp.idx[4*p+2] = int32(y1*w + x0)
			wp.idx[4*p+3] = int32(y1*w + x1)
			wp.wgt[4*p] = w00
			wp.wgt[4*p+1] = w01
			wp.wgt[4*p+2] = w10
			wp.wgt[4*p+3] = w11
			for ch := 0; ch < c; ch++ {
				plane := src.Data()[ch*h*w : (ch+1)*h*w]
				out.Data()[ch*n+p] = w00*plane[y0*w+x0] + w01*plane[y0*w+x1] +
					w10*plane[y1*w+x0] + w11*plane[y1*w+x1]
			}
		}
	}
	return out
}

// Backward scatters dOut back to source-pixel gradients using the cached
// bilinear weights.
func (wp *Warp) Backward(dOut *tensor.Tensor) *tensor.Tensor {
	if wp.lastSrcShape == nil {
		panic("imaging: Warp.Backward called before Forward")
	}
	c, h, w := wp.lastSrcShape[0], wp.lastSrcShape[1], wp.lastSrcShape[2]
	dSrc := tensor.New(c, h, w)
	n := wp.OutH * wp.OutW
	for p := 0; p < n; p++ {
		if wp.idx[4*p] < 0 {
			continue
		}
		for ch := 0; ch < c; ch++ {
			g := dOut.Data()[ch*n+p]
			if g == 0 {
				continue
			}
			plane := dSrc.Data()[ch*h*w : (ch+1)*h*w]
			for k := 0; k < 4; k++ {
				plane[wp.idx[4*p+k]] += g * wp.wgt[4*p+k]
			}
		}
	}
	return dSrc
}

// WarpImage is a one-shot convenience wrapper around Warp.Forward.
func WarpImage(src *tensor.Tensor, h Homography, outH, outW int, outside float64) *tensor.Tensor {
	return NewWarp(h, outH, outW, outside).Forward(src)
}

// ResizeBilinear resizes a CHW image to [C,outH,outW] with bilinear
// interpolation (a special case of Warp with a scaling homography).
func ResizeBilinear(src *tensor.Tensor, outH, outW int) *tensor.Tensor {
	h, w := src.Dim(1), src.Dim(2)
	sx := float64(w) / float64(outW)
	sy := float64(h) / float64(outH)
	// Map output pixel centers to input pixel centers.
	hm := Translate(-0.5, -0.5).Mul(ScaleXY(sx, sy)).Mul(Translate(0.5, 0.5))
	wp := NewWarp(hm, outH, outW, 0)
	wp.ClampEdges = true
	return wp.Forward(src)
}

package imaging

import (
	"math"
	"math/rand"
	"testing"

	"roadtrojan/internal/tensor"
)

func TestBrightnessGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	x := tensor.NewRandU(rng, 0.1, 0.9, 1, 4, 4)
	br := NewBrightness(1.3)
	out := br.Forward(x)
	probe := tensor.NewRandN(rng, 1, out.Shape()...)
	br.Forward(x)
	dX := br.Backward(probe)
	const eps = 1e-6
	for i := 0; i < x.Len(); i += 2 {
		orig := x.Data()[i]
		x.Data()[i] = orig + eps
		lp := tensor.Dot(NewBrightness(1.3).Forward(x), probe)
		x.Data()[i] = orig - eps
		lm := tensor.Dot(NewBrightness(1.3).Forward(x), probe)
		x.Data()[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-dX.Data()[i]) > 1e-5 {
			t.Fatalf("brightness grad[%d]: analytic %v numeric %v", i, dX.Data()[i], num)
		}
	}
}

func TestClampUnitGradCheck(t *testing.T) {
	// Interior points only: the clamp is non-differentiable at 0 and 1, and
	// TestClampUnitGradGating covers the saturated regions.
	rng := rand.New(rand.NewSource(32))
	x := tensor.NewRandU(rng, 0.05, 0.95, 1, 4, 4)
	cl := NewClampUnit()
	out := cl.Forward(x)
	probe := tensor.NewRandN(rng, 1, out.Shape()...)
	cl.Forward(x)
	dX := cl.Backward(probe)
	const eps = 1e-6
	for i := 0; i < x.Len(); i += 2 {
		orig := x.Data()[i]
		x.Data()[i] = orig + eps
		lp := tensor.Dot(NewClampUnit().Forward(x), probe)
		x.Data()[i] = orig - eps
		lm := tensor.Dot(NewClampUnit().Forward(x), probe)
		x.Data()[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-dX.Data()[i]) > 1e-5 {
			t.Fatalf("clamp grad[%d]: analytic %v numeric %v", i, dX.Data()[i], num)
		}
	}
}

func TestCompositeRGBGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	bg := tensor.NewRandU(rng, 0, 1, 3, 4, 4)
	layer := tensor.NewRandU(rng, 0, 1, 3, 4, 4)
	mask := tensor.NewRandU(rng, 0, 1, 1, 4, 4)
	cp := NewCompositeRGB()
	out := cp.Forward(bg, layer, mask)
	probe := tensor.NewRandN(rng, 1, out.Shape()...)
	cp.Forward(bg, layer, mask)
	dBg, dLayer := cp.Backward(probe)
	loss := func() float64 {
		return tensor.Dot(NewCompositeRGB().Forward(bg, layer, mask), probe)
	}
	const eps = 1e-6
	check := func(name string, x, grad *tensor.Tensor) {
		for i := 0; i < x.Len(); i += 3 {
			orig := x.Data()[i]
			x.Data()[i] = orig + eps
			lp := loss()
			x.Data()[i] = orig - eps
			lm := loss()
			x.Data()[i] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-grad.Data()[i]) > 1e-5 {
				t.Fatalf("%s grad[%d]: analytic %v numeric %v", name, i, grad.Data()[i], num)
			}
		}
	}
	check("bg", bg, dBg)
	check("layer", layer, dLayer)
}

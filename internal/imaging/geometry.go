// Package imaging provides image⇄tensor conversion, PNG I/O, homography
// geometry, and the differentiable image operations (bilinear warping,
// gamma/brightness adjustment, alpha compositing, blur) the attack pipeline
// backpropagates through. Images are CHW tensors with values in [0,1];
// color images have 3 channels (RGB), masks and patches have 1.
package imaging

import (
	"errors"
	"fmt"
	"math"
)

// Point is a 2-D point in pixel coordinates.
type Point struct {
	X, Y float64
}

// Homography is a 3×3 projective transform in row-major order. Applying it
// to (x, y) maps through homogeneous coordinates.
type Homography [9]float64

// ErrSingular is returned when a homography (or the 4-point system defining
// one) is not invertible.
var ErrSingular = errors.New("imaging: singular homography")

// Identity returns the identity transform.
func Identity() Homography {
	return Homography{1, 0, 0, 0, 1, 0, 0, 0, 1}
}

// Translate returns a transform moving points by (tx, ty).
func Translate(tx, ty float64) Homography {
	return Homography{1, 0, tx, 0, 1, ty, 0, 0, 1}
}

// ScaleXY returns a transform scaling x by sx and y by sy about the origin.
func ScaleXY(sx, sy float64) Homography {
	return Homography{sx, 0, 0, 0, sy, 0, 0, 0, 1}
}

// RotateAbout returns a rotation by theta radians about center (cx, cy).
func RotateAbout(theta, cx, cy float64) Homography {
	c, s := math.Cos(theta), math.Sin(theta)
	// T(c) · R · T(−c)
	return Homography{
		c, -s, cx - c*cx + s*cy,
		s, c, cy - s*cx - c*cy,
		0, 0, 1,
	}
}

// Mul returns h∘g, the transform applying g first and then h.
func (h Homography) Mul(g Homography) Homography {
	var out Homography
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			s := 0.0
			for k := 0; k < 3; k++ {
				s += h[r*3+k] * g[k*3+c]
			}
			out[r*3+c] = s
		}
	}
	return out
}

// Apply maps (x, y) through the homography. ok is false when the point maps
// to infinity (w ≈ 0).
func (h Homography) Apply(x, y float64) (u, v float64, ok bool) {
	w := h[6]*x + h[7]*y + h[8]
	if math.Abs(w) < 1e-12 {
		return 0, 0, false
	}
	inv := 1 / w
	return (h[0]*x + h[1]*y + h[2]) * inv, (h[3]*x + h[4]*y + h[5]) * inv, true
}

// Invert returns h⁻¹ via the adjugate, or ErrSingular.
func (h Homography) Invert() (Homography, error) {
	a, b, c := h[0], h[1], h[2]
	d, e, f := h[3], h[4], h[5]
	g, hh, i := h[6], h[7], h[8]
	det := a*(e*i-f*hh) - b*(d*i-f*g) + c*(d*hh-e*g)
	if math.Abs(det) < 1e-14 {
		return Homography{}, ErrSingular
	}
	inv := 1 / det
	return Homography{
		(e*i - f*hh) * inv, (c*hh - b*i) * inv, (b*f - c*e) * inv,
		(f*g - d*i) * inv, (a*i - c*g) * inv, (c*d - a*f) * inv,
		(d*hh - e*g) * inv, (b*g - a*hh) * inv, (a*e - b*d) * inv,
	}, nil
}

// QuadToQuad solves for the homography mapping the four src points onto the
// four dst points (in order). It solves the standard 8×8 linear system with
// partial-pivot Gaussian elimination.
func QuadToQuad(src, dst [4]Point) (Homography, error) {
	// Unknowns: h0..h7 with h8 = 1.
	var a [8][9]float64
	for i := 0; i < 4; i++ {
		sx, sy := src[i].X, src[i].Y
		dx, dy := dst[i].X, dst[i].Y
		a[2*i] = [9]float64{sx, sy, 1, 0, 0, 0, -dx * sx, -dx * sy, dx}
		a[2*i+1] = [9]float64{0, 0, 0, sx, sy, 1, -dy * sx, -dy * sy, dy}
	}
	for col := 0; col < 8; col++ {
		// Partial pivot.
		piv := col
		for r := col + 1; r < 8; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-12 {
			return Homography{}, fmt.Errorf("%w: degenerate quad", ErrSingular)
		}
		a[col], a[piv] = a[piv], a[col]
		inv := 1 / a[col][col]
		for c := col; c < 9; c++ {
			a[col][c] *= inv
		}
		for r := 0; r < 8; r++ {
			if r == col || a[r][col] == 0 {
				continue
			}
			f := a[r][col]
			for c := col; c < 9; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	return Homography{
		a[0][8], a[1][8], a[2][8],
		a[3][8], a[4][8], a[5][8],
		a[6][8], a[7][8], 1,
	}, nil
}

// UnitSquareTo returns the homography mapping the unit square
// (0,0)-(1,0)-(1,1)-(0,1) onto the given quad.
func UnitSquareTo(quad [4]Point) (Homography, error) {
	return QuadToQuad([4]Point{{0, 0}, {1, 0}, {1, 1}, {0, 1}}, quad)
}

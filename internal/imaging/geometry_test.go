package imaging

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestIdentityApply(t *testing.T) {
	h := Identity()
	u, v, ok := h.Apply(3.5, -2)
	if !ok || u != 3.5 || v != -2 {
		t.Fatalf("identity moved the point: %v %v %v", u, v, ok)
	}
}

func TestTranslateScaleRotate(t *testing.T) {
	u, v, _ := Translate(2, 3).Apply(1, 1)
	if u != 3 || v != 4 {
		t.Fatalf("translate = (%v,%v)", u, v)
	}
	u, v, _ = ScaleXY(2, 0.5).Apply(4, 4)
	if u != 8 || v != 2 {
		t.Fatalf("scale = (%v,%v)", u, v)
	}
	// 90° rotation about (1,1): (2,1) → (1,2).
	u, v, _ = RotateAbout(math.Pi/2, 1, 1).Apply(2, 1)
	if !almostEq(u, 1, 1e-12) || !almostEq(v, 2, 1e-12) {
		t.Fatalf("rotate = (%v,%v)", u, v)
	}
}

func TestMulComposesRightToLeft(t *testing.T) {
	// h = Translate(1,0) ∘ Scale(2,2): scale first, then translate.
	h := Translate(1, 0).Mul(ScaleXY(2, 2))
	u, v, _ := h.Apply(3, 3)
	if u != 7 || v != 6 {
		t.Fatalf("compose = (%v,%v), want (7,6)", u, v)
	}
}

func TestInvertRoundTrip(t *testing.T) {
	h := Translate(5, -2).Mul(RotateAbout(0.3, 2, 2)).Mul(ScaleXY(1.5, 0.75))
	inv, err := h.Invert()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Point{{0, 0}, {3, 7}, {-2, 4}} {
		u, v, _ := h.Apply(p.X, p.Y)
		x, y, _ := inv.Apply(u, v)
		if !almostEq(x, p.X, 1e-9) || !almostEq(y, p.Y, 1e-9) {
			t.Fatalf("invert round trip failed for %v: got (%v,%v)", p, x, y)
		}
	}
}

func TestInvertSingular(t *testing.T) {
	var h Homography // all zeros
	if _, err := h.Invert(); !errors.Is(err, ErrSingular) {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestQuadToQuadMapsCorners(t *testing.T) {
	src := [4]Point{{0, 0}, {10, 0}, {10, 10}, {0, 10}}
	dst := [4]Point{{2, 1}, {9, 2}, {11, 12}, {1, 8}}
	h, err := QuadToQuad(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		u, v, ok := h.Apply(src[i].X, src[i].Y)
		if !ok || !almostEq(u, dst[i].X, 1e-8) || !almostEq(v, dst[i].Y, 1e-8) {
			t.Fatalf("corner %d maps to (%v,%v), want %v", i, u, v, dst[i])
		}
	}
}

func TestQuadToQuadDegenerate(t *testing.T) {
	src := [4]Point{{0, 0}, {1, 1}, {2, 2}, {3, 3}} // collinear
	dst := [4]Point{{0, 0}, {1, 0}, {1, 1}, {0, 1}}
	if _, err := QuadToQuad(src, dst); !errors.Is(err, ErrSingular) {
		t.Fatalf("want ErrSingular for collinear quad, got %v", err)
	}
}

func TestUnitSquareTo(t *testing.T) {
	quad := [4]Point{{5, 5}, {15, 6}, {14, 18}, {4, 16}}
	h, err := UnitSquareTo(quad)
	if err != nil {
		t.Fatal(err)
	}
	u, v, _ := h.Apply(0.5, 0.5)
	// Center of the unit square must land strictly inside the quad's bbox.
	if u < 4 || u > 15 || v < 5 || v > 18 {
		t.Fatalf("center maps outside: (%v,%v)", u, v)
	}
}

func TestPropQuadToQuadRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Random convex-ish quad via jittered square corners.
		jitter := func(x, y float64) Point {
			return Point{X: x + r.Float64()*2 - 1, Y: y + r.Float64()*2 - 1}
		}
		dst := [4]Point{jitter(0, 0), jitter(10, 0), jitter(10, 10), jitter(0, 10)}
		src := [4]Point{{0, 0}, {10, 0}, {10, 10}, {0, 10}}
		h, err := QuadToQuad(src, dst)
		if err != nil {
			return true // skip rare degenerate draws
		}
		inv, err := h.Invert()
		if err != nil {
			return true
		}
		// Interior points must round trip.
		for k := 0; k < 5; k++ {
			x, y := r.Float64()*10, r.Float64()*10
			u, v, ok1 := h.Apply(x, y)
			if !ok1 {
				return true
			}
			bx, by, ok2 := inv.Apply(u, v)
			if !ok2 || !almostEq(bx, x, 1e-6) || !almostEq(by, y, 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

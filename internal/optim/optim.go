// Package optim provides gradient-descent optimizers over nn parameters.
package optim

import (
	"math"

	"roadtrojan/internal/nn"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and leaves gradients untouched (call
	// nn.ZeroGrads afterwards).
	Step()
	// SetLR changes the learning rate.
	SetLR(lr float64)
	// LR reports the current learning rate.
	LR() float64
}

// SGD is stochastic gradient descent with optional momentum and weight decay.
type SGD struct {
	params   []*nn.Param
	lr       float64
	momentum float64
	decay    float64
	velocity [][]float64
}

var _ Optimizer = (*SGD)(nil)

// NewSGD creates an SGD optimizer.
func NewSGD(params []*nn.Param, lr, momentum, weightDecay float64) *SGD {
	v := make([][]float64, len(params))
	for i, p := range params {
		v[i] = make([]float64, p.Value.Len())
	}
	return &SGD{params: params, lr: lr, momentum: momentum, decay: weightDecay, velocity: v}
}

// Step applies v = m·v − lr·(g + wd·w); w += v.
func (s *SGD) Step() {
	for i, p := range s.params {
		w := p.Value.Data()
		g := p.Grad.Data()
		v := s.velocity[i]
		for j := range w {
			grad := g[j] + s.decay*w[j]
			v[j] = s.momentum*v[j] - s.lr*grad
			w[j] += v[j]
		}
	}
}

// SetLR changes the learning rate.
func (s *SGD) SetLR(lr float64) { s.lr = lr }

// LR reports the learning rate.
func (s *SGD) LR() float64 { return s.lr }

// Adam implements the Adam optimizer (Kingma & Ba); the paper trains both
// its GAN and the baseline attack with Adam.
type Adam struct {
	params []*nn.Param
	lr     float64
	beta1  float64
	beta2  float64
	eps    float64
	t      int
	m, v   [][]float64
}

var _ Optimizer = (*Adam)(nil)

// NewAdam creates an Adam optimizer with the canonical β₁=0.9, β₂=0.999.
func NewAdam(params []*nn.Param, lr float64) *Adam {
	m := make([][]float64, len(params))
	v := make([][]float64, len(params))
	for i, p := range params {
		m[i] = make([]float64, p.Value.Len())
		v[i] = make([]float64, p.Value.Len())
	}
	return &Adam{params: params, lr: lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, m: m, v: v}
}

// Step applies one bias-corrected Adam update.
func (a *Adam) Step() {
	a.t++
	c1 := 1 - math.Pow(a.beta1, float64(a.t))
	c2 := 1 - math.Pow(a.beta2, float64(a.t))
	for i, p := range a.params {
		w := p.Value.Data()
		g := p.Grad.Data()
		m := a.m[i]
		v := a.v[i]
		for j := range w {
			m[j] = a.beta1*m[j] + (1-a.beta1)*g[j]
			v[j] = a.beta2*v[j] + (1-a.beta2)*g[j]*g[j]
			mh := m[j] / c1
			vh := v[j] / c2
			w[j] -= a.lr * mh / (math.Sqrt(vh) + a.eps)
		}
	}
}

// SetLR changes the learning rate.
func (a *Adam) SetLR(lr float64) { a.lr = lr }

// LR reports the learning rate.
func (a *Adam) LR() float64 { return a.lr }

// ClipGradNorm scales gradients so their global L2 norm is at most maxNorm.
// It returns the pre-clip norm.
func ClipGradNorm(params []*nn.Param, maxNorm float64) float64 {
	total := 0.0
	for _, p := range params {
		for _, g := range p.Grad.Data() {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			p.Grad.Scale(scale)
		}
	}
	return norm
}

// StepDecay returns base·gamma^(epoch/every) — a simple step LR schedule.
func StepDecay(base float64, epoch, every int, gamma float64) float64 {
	if every <= 0 {
		return base
	}
	return base * math.Pow(gamma, float64(epoch/every))
}

package optim

import (
	"math"
	"math/rand"
	"testing"

	"roadtrojan/internal/nn"
	"roadtrojan/internal/tensor"
)

// quadratic builds a parameter holding x and a function computing the
// gradient of f(x) = Σ (x_i − target)² into its Grad.
func quadratic(x0 []float64, target float64) (*nn.Param, func()) {
	p := nn.NewParam("x", tensor.FromSlice(append([]float64(nil), x0...), len(x0)))
	fill := func() {
		for i, v := range p.Value.Data() {
			p.Grad.Data()[i] = 2 * (v - target)
		}
	}
	return p, fill
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	p, grad := quadratic([]float64{5, -3, 10}, 1)
	opt := NewSGD([]*nn.Param{p}, 0.1, 0, 0)
	for i := 0; i < 200; i++ {
		grad()
		opt.Step()
	}
	for _, v := range p.Value.Data() {
		if math.Abs(v-1) > 1e-6 {
			t.Fatalf("SGD did not converge: %v", p.Value.Data())
		}
	}
}

func TestSGDMomentumFasterThanPlain(t *testing.T) {
	run := func(momentum float64) float64 {
		p, grad := quadratic([]float64{10}, 0)
		opt := NewSGD([]*nn.Param{p}, 0.01, momentum, 0)
		for i := 0; i < 50; i++ {
			grad()
			opt.Step()
		}
		return math.Abs(p.Value.At(0))
	}
	if run(0.9) >= run(0) {
		t.Fatal("momentum should accelerate convergence on a quadratic")
	}
}

func TestSGDWeightDecayShrinks(t *testing.T) {
	p := nn.NewParam("x", tensor.FromSlice([]float64{4}, 1))
	opt := NewSGD([]*nn.Param{p}, 0.1, 0, 0.5)
	opt.Step() // zero gradient; only decay acts
	if got := p.Value.At(0); math.Abs(got-4*(1-0.1*0.5)) > 1e-12 {
		t.Fatalf("decay step = %v", got)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	p, grad := quadratic([]float64{5, -3}, 2)
	opt := NewAdam([]*nn.Param{p}, 0.1)
	for i := 0; i < 500; i++ {
		grad()
		opt.Step()
	}
	for _, v := range p.Value.Data() {
		if math.Abs(v-2) > 1e-3 {
			t.Fatalf("Adam did not converge: %v", p.Value.Data())
		}
	}
}

func TestAdamFirstStepIsLRSized(t *testing.T) {
	// With bias correction, the very first Adam step is ≈ lr·sign(g).
	p := nn.NewParam("x", tensor.FromSlice([]float64{0}, 1))
	p.Grad.Data()[0] = 123.456
	opt := NewAdam([]*nn.Param{p}, 0.05)
	opt.Step()
	if got := p.Value.At(0); math.Abs(got+0.05) > 1e-6 {
		t.Fatalf("first Adam step = %v, want ≈ -0.05", got)
	}
}

func TestSetLR(t *testing.T) {
	p, _ := quadratic([]float64{1}, 0)
	for _, opt := range []Optimizer{NewSGD([]*nn.Param{p}, 0.1, 0, 0), NewAdam([]*nn.Param{p}, 0.1)} {
		opt.SetLR(0.123)
		if opt.LR() != 0.123 {
			t.Fatalf("SetLR/LR mismatch: %v", opt.LR())
		}
	}
}

func TestClipGradNorm(t *testing.T) {
	p := nn.NewParam("x", tensor.New(2))
	p.Grad.Data()[0] = 3
	p.Grad.Data()[1] = 4
	norm := ClipGradNorm([]*nn.Param{p}, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Fatalf("pre-clip norm = %v", norm)
	}
	after := math.Hypot(p.Grad.At(0), p.Grad.At(1))
	if math.Abs(after-1) > 1e-12 {
		t.Fatalf("post-clip norm = %v", after)
	}
	// Below the threshold nothing changes.
	norm2 := ClipGradNorm([]*nn.Param{p}, 10)
	if math.Abs(norm2-1) > 1e-12 || math.Abs(math.Hypot(p.Grad.At(0), p.Grad.At(1))-1) > 1e-12 {
		t.Fatal("clip below threshold must be a no-op")
	}
}

func TestStepDecay(t *testing.T) {
	tests := []struct {
		epoch int
		want  float64
	}{
		{0, 0.1}, {9, 0.1}, {10, 0.01}, {25, 0.001},
	}
	for _, tt := range tests {
		if got := StepDecay(0.1, tt.epoch, 10, 0.1); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("StepDecay(epoch=%d) = %v, want %v", tt.epoch, got, tt.want)
		}
	}
	if got := StepDecay(0.1, 5, 0, 0.1); got != 0.1 {
		t.Errorf("StepDecay with every=0 = %v", got)
	}
}

func TestOptimizersTrainTinyNetwork(t *testing.T) {
	// Fit y = relu-net(x) to a linear target; loss must drop a lot.
	rng := rand.New(rand.NewSource(42))
	net := nn.NewSequential(
		nn.NewLinear(rng, "l1", 2, 8),
		nn.NewTanh(),
		nn.NewLinear(rng, "l2", 8, 1),
	)
	xs := tensor.NewRandN(rng, 1, 32, 2)
	ys := tensor.New(32, 1)
	for i := 0; i < 32; i++ {
		ys.Set(2*xs.At(i, 0)-xs.At(i, 1), i, 0)
	}
	loss := func() float64 {
		out := net.Forward(xs)
		return tensor.Sub(out, ys).Map(func(v float64) float64 { return v * v }).Mean()
	}
	first := loss()
	opt := NewAdam(net.Params(), 0.02)
	for it := 0; it < 300; it++ {
		nn.ZeroGrads(net.Params())
		out := net.Forward(xs)
		dOut := tensor.Sub(out, ys).Scale(2.0 / 32)
		net.Backward(dOut)
		opt.Step()
	}
	last := loss()
	if last > first/20 {
		t.Fatalf("training barely improved: %v -> %v", first, last)
	}
}

func TestAdamHandlesSparseGradients(t *testing.T) {
	// Zero gradients must not move weights much after bias correction decay.
	p := nn.NewParam("x", tensor.FromSlice([]float64{1}, 1))
	opt := NewAdam([]*nn.Param{p}, 0.1)
	// One real step, then many zero-grad steps.
	p.Grad.Data()[0] = 1
	opt.Step()
	p.Grad.Zero()
	for i := 0; i < 200; i++ {
		opt.Step()
	}
	if math.IsNaN(p.Value.At(0)) {
		t.Fatal("Adam produced NaN on zero gradients")
	}
}

func TestClipGradNormZeroGrads(t *testing.T) {
	p := nn.NewParam("x", tensor.New(3))
	if norm := ClipGradNorm([]*nn.Param{p}, 1); norm != 0 {
		t.Fatalf("norm of zero grads = %v", norm)
	}
}

// Package core anchors the paper's primary contribution in the canonical
// location. The implementation lives in internal/attack (placement,
// differentiable decal pipeline, GAN trainer, baseline [34]); this package
// re-exports its API so the repository layout matches the design document's
// internal/core convention.
package core

import (
	"io"

	"roadtrojan/internal/attack"
	"roadtrojan/internal/obs"
	"roadtrojan/internal/scene"
	"roadtrojan/internal/yolo"
)

// Re-exported contribution types.
type (
	// Config parameterizes one attack instance.
	Config = attack.Config
	// Patch is a trained decal artifact.
	Patch = attack.Patch
	// Scene is an attacked road location.
	Scene = attack.Scene
	// Placement is one decal pose on the ground.
	Placement = attack.Placement
	// TrainStats traces an optimization run.
	TrainStats = attack.TrainStats
)

// DefaultConfig returns the paper's main attack setting.
func DefaultConfig() Config { return attack.DefaultConfig() }

// Train runs the GAN-based monochrome decal attack (Sec. III).
func Train(det *yolo.Model, cam scene.Camera, sc Scene, cfg Config, log io.Writer) (*Patch, *TrainStats, error) {
	return attack.Train(det, cam, sc, cfg, obs.TextTrace(log))
}

// TrainBaseline runs the colored EOT baseline [34].
func TrainBaseline(det *yolo.Model, cam scene.Camera, sc Scene, cfg Config, log io.Writer) (*Patch, *TrainStats, error) {
	return attack.TrainBaseline(det, cam, sc, cfg, obs.TextTrace(log))
}

// Placements lays N decals around the target (Fig. 6).
func Placements(cfg Config, targetGX, targetGY float64) []Placement {
	return attack.Placements(cfg, targetGX, targetGY)
}

package core

import (
	"math/rand"
	"testing"

	"roadtrojan/internal/attack"
	"roadtrojan/internal/scene"
	"roadtrojan/internal/yolo"
)

func TestCoreReexports(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	pls := Placements(cfg, 0, 15)
	if len(pls) != cfg.N {
		t.Fatalf("placements = %d, want %d", len(pls), cfg.N)
	}
}

func TestCoreTrainDelegates(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke test skipped in -short mode")
	}
	g := scene.NewSimRoom(8, 30, 0.05)
	sc := attack.NewArrowScene(g, 0, 15, 1.8)
	det := yolo.New(rand.New(rand.NewSource(1)), yolo.DefaultConfig())
	cfg := DefaultConfig()
	cfg.Iters = 2
	cfg.N = 2
	p, stats, err := Train(det, scene.DefaultCamera(), sc, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p == nil || len(stats.AttackLoss) != 2 {
		t.Fatal("core.Train did not delegate correctly")
	}
}

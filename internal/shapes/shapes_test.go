package shapes

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStringAndParseRoundTrip(t *testing.T) {
	for _, s := range []Shape{Star, Circle, Square, Triangle} {
		got, err := ParseShape(s.String())
		if err != nil || got != s {
			t.Fatalf("round trip %v: got %v err %v", s, got, err)
		}
	}
	if _, err := ParseShape("hexagon"); err == nil {
		t.Fatal("expected error for unknown shape")
	}
}

func TestCornerCounts(t *testing.T) {
	tests := []struct {
		s    Shape
		want int
	}{
		{Star, 10}, {Square, 4}, {Triangle, 3}, {Circle, 0},
	}
	for _, tt := range tests {
		if got := tt.s.CornerCount(); got != tt.want {
			t.Errorf("%v corners = %d, want %d", tt.s, got, tt.want)
		}
	}
}

func TestMaskBounds(t *testing.T) {
	for _, s := range []Shape{Star, Circle, Square, Triangle} {
		m := Mask(s, 24, 1, 0)
		if m.Min() < 0 || m.Max() > 1 {
			t.Fatalf("%v mask out of [0,1]: [%v,%v]", s, m.Min(), m.Max())
		}
		if m.Max() == 0 {
			t.Fatalf("%v mask empty", s)
		}
		// Corners of the tile are outside every shape.
		if m.At(0, 0, 0) != 0 || m.At(0, 23, 23) != 0 {
			t.Fatalf("%v covers tile corners", s)
		}
		// Center is inside every shape.
		if m.At(0, 12, 12) != 1 {
			t.Fatalf("%v does not cover the tile center: %v", s, m.At(0, 12, 12))
		}
	}
}

func TestRenderIsInvertedMask(t *testing.T) {
	m := Mask(Star, 16, 1, 0)
	r := Render(Star, 16, 1, 0)
	for i := range m.Data() {
		if math.Abs(m.Data()[i]+r.Data()[i]-1) > 1e-12 {
			t.Fatal("Render must be 1 − Mask")
		}
	}
}

func TestAreasComparable(t *testing.T) {
	// At scale 1 all four shapes should cover a nontrivial, same-order
	// fraction of their tile.
	areas := map[Shape]float64{}
	for _, s := range []Shape{Star, Circle, Square, Triangle} {
		areas[s] = Area(s, 48, 1)
		if areas[s] < 0.2 || areas[s] > 0.9 {
			t.Fatalf("%v area = %v, outside sane range", s, areas[s])
		}
	}
	if areas[Square] <= areas[Star] {
		t.Fatalf("square (%v) should cover more than star (%v)", areas[Square], areas[Star])
	}
	if areas[Square] <= areas[Triangle] {
		t.Fatalf("square (%v) should cover more than triangle (%v)", areas[Square], areas[Triangle])
	}
}

func TestRotationInvariantAreaCircle(t *testing.T) {
	a0 := Area(Circle, 32, 0.9)
	m := Mask(Circle, 32, 0.9, 1.1)
	if math.Abs(a0-m.Mean()) > 0.01 {
		t.Fatalf("circle area changed under rotation: %v vs %v", a0, m.Mean())
	}
}

func TestScaleForAreaBisection(t *testing.T) {
	for _, s := range []Shape{Star, Circle, Square, Triangle} {
		target := 0.3
		scale := ScaleForArea(s, 40, target)
		got := Area(s, 40, scale)
		// Raster + 2×2 supersampling quantizes coverage in visible steps,
		// so the solved area can only match to within roughly one edge row.
		if math.Abs(got-target) > 0.035 {
			t.Fatalf("%v: area at solved scale = %v, want ≈ %v", s, got, target)
		}
	}
}

func TestSamplesShapeAndRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := Samples(rng, Triangle, 20, 5)
	if b.Dim(0) != 5 || b.Dim(1) != 1 || b.Dim(2) != 20 {
		t.Fatalf("batch shape = %v", b.Shape())
	}
	if b.Min() < 0 || b.Max() > 1 {
		t.Fatal("sample values out of range")
	}
	// Jitter means two samples should differ.
	a := b.Data()[:400]
	c := b.Data()[400:800]
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("samples are not jittered")
	}
}

func TestPropMaskScalingMonotone(t *testing.T) {
	// Larger scale ⇒ area must not shrink.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := []Shape{Star, Circle, Square, Triangle}[r.Intn(4)]
		s1 := 0.3 + r.Float64()*0.3
		s2 := s1 + 0.2
		return Area(s, 32, s2) >= Area(s, 32, s1)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 24}); err != nil {
		t.Fatal(err)
	}
}

func TestPropMaskValuesQuantized(t *testing.T) {
	// 2×2 supersampling only yields multiples of 0.25.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := []Shape{Star, Circle, Square, Triangle}[r.Intn(4)]
		m := Mask(s, 8+r.Intn(16), 0.5+r.Float64()*0.5, r.Float64())
		for _, v := range m.Data() {
			q := v * 4
			if math.Abs(q-math.Round(q)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 16}); err != nil {
		t.Fatal(err)
	}
}

func TestStarHasLongerEdgePerimeterThanCircle(t *testing.T) {
	// The paper attributes star superiority to its many corners; as a crude
	// raster proxy, the star's mask boundary (pixels with fractional
	// coverage) should be longer than the circle's at equal area.
	starScale := ScaleForArea(Star, 48, 0.35)
	circleScale := ScaleForArea(Circle, 48, 0.35)
	boundary := func(s Shape, scale float64) int {
		m := Mask(s, 48, scale, 0)
		n := 0
		for _, v := range m.Data() {
			if v > 0 && v < 1 {
				n++
			}
		}
		return n
	}
	if boundary(Star, starScale) <= boundary(Circle, circleScale) {
		t.Fatal("star boundary should exceed circle boundary at equal area")
	}
}

func TestMaskDeterministic(t *testing.T) {
	a := Mask(Star, 24, 0.9, 0.3)
	b := Mask(Star, 24, 0.9, 0.3)
	for i := range a.Data() {
		if a.Data()[i] != b.Data()[i] {
			t.Fatal("Mask must be deterministic")
		}
	}
}

func TestAllListsFourShapes(t *testing.T) {
	if len(All) != 4 {
		t.Fatalf("All has %d shapes", len(All))
	}
	seen := map[Shape]bool{}
	for _, s := range All {
		seen[s] = true
	}
	for _, s := range []Shape{Star, Circle, Square, Triangle} {
		if !seen[s] {
			t.Fatalf("All missing %v", s)
		}
	}
}

func TestMaskRotationMovesCorners(t *testing.T) {
	a := Mask(Triangle, 32, 0.9, 0)
	b := Mask(Triangle, 32, 0.9, 1.0)
	diff := 0
	for i := range a.Data() {
		if a.Data()[i] != b.Data()[i] {
			diff++
		}
	}
	if diff < 20 {
		t.Fatalf("rotation changed only %d texels", diff)
	}
}

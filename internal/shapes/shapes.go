// Package shapes procedurally renders the Four Shapes dataset the paper
// draws adversarial-patch silhouettes from: star, circle, square and
// triangle, each a black shape on a white background. The renderers provide
// both display images (black-on-white, antialiased) and binary masks
// (1 inside the shape), plus jittered sample batches used as the GAN
// discriminator's "real" distribution.
package shapes

import (
	"fmt"
	"math"
	"math/rand"

	"roadtrojan/internal/tensor"
)

// Shape enumerates the Four Shapes classes.
type Shape int

// The four patch silhouettes studied in Table V.
const (
	Star Shape = iota + 1
	Circle
	Square
	Triangle
)

// All lists every shape in Table V's order of interest.
var All = []Shape{Triangle, Circle, Star, Square}

// String returns the lowercase shape name.
func (s Shape) String() string {
	switch s {
	case Star:
		return "star"
	case Circle:
		return "circle"
	case Square:
		return "square"
	case Triangle:
		return "triangle"
	default:
		return fmt.Sprintf("Shape(%d)", int(s))
	}
}

// ParseShape converts a name to a Shape.
func ParseShape(name string) (Shape, error) {
	for _, s := range []Shape{Star, Circle, Square, Triangle} {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("shapes: unknown shape %q", name)
}

// CornerCount returns the number of corners of the silhouette (the paper
// observes that shapes with more angles attack better; a circle has none).
func (s Shape) CornerCount() int {
	switch s {
	case Star:
		return 10
	case Square:
		return 4
	case Triangle:
		return 3
	default:
		return 0
	}
}

// polygon returns the shape's outline as unit-disk vertices (radius ≤ 1,
// centered at the origin, y up), or nil for Circle.
func (s Shape) polygon() []point {
	switch s {
	case Star:
		pts := make([]point, 10)
		for i := 0; i < 10; i++ {
			r := 1.0
			if i%2 == 1 {
				r = 0.42 // classic five-point star inner radius ratio
			}
			a := math.Pi/2 + float64(i)*math.Pi/5
			pts[i] = point{x: r * math.Cos(a), y: r * math.Sin(a)}
		}
		return pts
	case Square:
		const r = 0.78 // matches the other shapes' visual mass
		return []point{{-r, -r}, {r, -r}, {r, r}, {-r, r}}
	case Triangle:
		pts := make([]point, 3)
		for i := 0; i < 3; i++ {
			a := math.Pi/2 + float64(i)*2*math.Pi/3
			pts[i] = point{x: math.Cos(a), y: math.Sin(a)}
		}
		return pts
	default:
		return nil
	}
}

type point struct{ x, y float64 }

// inside reports whether the normalized point (unit-disk coordinates) lies
// inside the shape, with scale and rotation applied.
func (s Shape) inside(x, y, scale, rot float64) bool {
	// Undo rotation.
	c, sn := math.Cos(-rot), math.Sin(-rot)
	rx := (x*c - y*sn) / scale
	ry := (x*sn + y*c) / scale
	if s == Circle {
		return rx*rx+ry*ry <= 0.81 // radius 0.9 keeps area comparable
	}
	poly := s.polygon()
	return pointInPolygon(rx, ry, poly)
}

// pointInPolygon uses the even-odd ray-casting rule.
func pointInPolygon(x, y float64, poly []point) bool {
	inside := false
	n := len(poly)
	j := n - 1
	for i := 0; i < n; i++ {
		pi, pj := poly[i], poly[j]
		if (pi.y > y) != (pj.y > y) &&
			x < (pj.x-pi.x)*(y-pi.y)/(pj.y-pi.y)+pi.x {
			inside = !inside
		}
		j = i
	}
	return inside
}

// Mask renders a [1,k,k] coverage mask for the shape: 1 inside, 0 outside,
// antialiased by 2×2 supersampling. scale ∈ (0,1] shrinks the silhouette
// inside the tile; rot rotates it (radians).
func Mask(s Shape, k int, scale, rot float64) *tensor.Tensor {
	out := tensor.New(1, k, k)
	half := float64(k) / 2
	for y := 0; y < k; y++ {
		for x := 0; x < k; x++ {
			hits := 0
			for sy := 0; sy < 2; sy++ {
				for sx := 0; sx < 2; sx++ {
					px := (float64(x) + 0.25 + 0.5*float64(sx) - half) / half
					py := (float64(y) + 0.25 + 0.5*float64(sy) - half) / half
					if s.inside(px, py, scale, rot) {
						hits++
					}
				}
			}
			out.Set(float64(hits)/4, 0, y, x)
		}
	}
	return out
}

// Render returns the shape as a black-on-white [1,k,k] image, the form the
// Four Shapes dataset stores.
func Render(s Shape, k int, scale, rot float64) *tensor.Tensor {
	m := Mask(s, k, scale, rot)
	return m.Map(func(v float64) float64 { return 1 - v })
}

// Samples draws n jittered black-on-white shape images of size k — random
// small rotations and scale wobble — forming the GAN's "real" batch.
func Samples(rng *rand.Rand, s Shape, k, n int) *tensor.Tensor {
	out := tensor.New(n, 1, k, k)
	for i := 0; i < n; i++ {
		scale := 0.85 + rng.Float64()*0.15
		rot := (rng.Float64() - 0.5) * math.Pi / 4
		img := Render(s, k, scale, rot)
		copy(out.Data()[i*k*k:(i+1)*k*k], img.Data())
	}
	return out
}

// Area returns the fraction of the k×k tile covered by the shape at the
// given scale (rotation-invariant up to raster error).
func Area(s Shape, k int, scale float64) float64 {
	return Mask(s, k, scale, 0).Mean()
}

// ScaleForArea returns the scale at which the shape covers approximately the
// target area fraction of its tile, found by bisection. Used by Table III to
// keep total decal area constant across different patch counts.
func ScaleForArea(s Shape, k int, target float64) float64 {
	lo, hi := 0.05, 1.0
	for i := 0; i < 24; i++ {
		mid := (lo + hi) / 2
		if Area(s, k, mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

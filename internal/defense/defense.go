// Package defense implements the countermeasure implied by the paper's
// threat model: because an AV only reacts after the same class is reported
// for ConsecutiveFrames frames, a temporal majority-vote filter with random
// input jitter raises the bar for exactly the consecutive-frame property the
// attack is engineered to achieve. This extends the paper's evaluation (the
// paper lists defenses as future work).
package defense

import (
	"math/rand"

	"roadtrojan/internal/eot"
	"roadtrojan/internal/metrics"
	"roadtrojan/internal/physical"
	"roadtrojan/internal/scene"
	"roadtrojan/internal/yolo"
)

// Config tunes the temporal defense.
type Config struct {
	// Window is the sliding vote window (frames).
	Window int
	// Agreement is the minimum number of same-class votes inside the window
	// before a class is reported.
	Agreement int
	// Jitter applies a random photometric transform before each detection
	// (randomized smoothing at test time).
	Jitter bool
	// MatchIoU associates detections with the tracked target.
	MatchIoU float64
}

// DefaultConfig votes 4-of-5 with jitter.
func DefaultConfig() Config {
	return Config{Window: 5, Agreement: 4, Jitter: true, MatchIoU: 0.2}
}

// Filter runs the detector over a video twice conceptually: raw per-frame
// verdicts, then the defended (voted) verdicts. It returns both so callers
// can compare PWC/CWC with and without the defense.
type Filter struct {
	cfg     Config
	det     *yolo.Model
	sampler *eot.Sampler
}

// NewFilter builds the defense around a detector.
func NewFilter(det *yolo.Model, cfg Config) *Filter {
	if cfg.Window < 1 {
		cfg.Window = 1
	}
	if cfg.Agreement < 1 {
		cfg.Agreement = 1
	}
	return &Filter{cfg: cfg, det: det, sampler: eot.NewSampler(eot.NewSet(3, 4))}
}

// Classify scores every frame of a rendered video (optionally through the
// capture channel) and returns raw and defended frame results.
func (f *Filter) Classify(frames []scene.VideoFrame, ch physical.Channel, rng *rand.Rand) (raw, defended []metrics.FrameResult) {
	f.det.SetTraining(false)
	opts := yolo.DefaultDecode()
	raw = make([]metrics.FrameResult, len(frames))
	for i, fr := range frames {
		img := fr.Image
		if ch.Enabled {
			img = ch.Capture.Apply(rng, img)
		}
		if f.cfg.Jitter {
			img = f.sampler.Sample(rng, img.Dim(1), img.Dim(2)).Forward(img)
		}
		if !fr.TargetOK {
			continue
		}
		heads := f.det.Forward(img.Reshape(1, 3, img.Dim(1), img.Dim(2)))
		dets := f.det.DecodeSample(heads, 0, opts)
		if d, ok := yolo.MatchTarget(dets, fr.TargetBox, f.cfg.MatchIoU); ok {
			raw[i] = metrics.FrameResult{Detected: true, Class: d.Class, Confidence: d.Confidence}
		}
	}
	return raw, Vote(raw, f.cfg.Window, f.cfg.Agreement)
}

// Vote applies the sliding majority filter to per-frame verdicts: at frame
// i, the class reported is the most frequent detected class of the last
// `window` frames, and only when it has at least `agreement` votes.
func Vote(raw []metrics.FrameResult, window, agreement int) []metrics.FrameResult {
	out := make([]metrics.FrameResult, len(raw))
	for i := range raw {
		lo := i - window + 1
		if lo < 0 {
			lo = 0
		}
		counts := make(map[scene.Class]int)
		conf := make(map[scene.Class]float64)
		for j := lo; j <= i; j++ {
			if raw[j].Detected {
				counts[raw[j].Class]++
				conf[raw[j].Class] += raw[j].Confidence
			}
		}
		bestClass, bestN := scene.Class(0), 0
		for c, n := range counts {
			if n > bestN || (n == bestN && conf[c] > conf[bestClass]) {
				bestClass, bestN = c, n
			}
		}
		if bestN >= agreement {
			out[i] = metrics.FrameResult{
				Detected:   true,
				Class:      bestClass,
				Confidence: conf[bestClass] / float64(bestN),
			}
		}
	}
	return out
}

package defense

import (
	"math/rand"
	"testing"

	"roadtrojan/internal/metrics"
	"roadtrojan/internal/physical"
	"roadtrojan/internal/scene"
	"roadtrojan/internal/yolo"
)

func fr(c scene.Class, conf float64) metrics.FrameResult {
	return metrics.FrameResult{Detected: true, Class: c, Confidence: conf}
}

func TestVoteSuppressesShortBursts(t *testing.T) {
	// A 3-frame wrong-class burst inside a mark stream must not survive a
	// 5-window/4-agreement vote.
	raw := []metrics.FrameResult{
		fr(scene.Mark, 0.9), fr(scene.Mark, 0.9),
		fr(scene.Word, 0.8), fr(scene.Word, 0.8), fr(scene.Word, 0.8),
		fr(scene.Mark, 0.9), fr(scene.Mark, 0.9),
	}
	out := Vote(raw, 5, 4)
	if metrics.CWC(out, scene.Word) {
		t.Fatal("vote failed to suppress a 3-frame burst")
	}
	// The raw stream does achieve CWC — the defense is what broke it.
	if !metrics.CWC(raw, scene.Word) {
		t.Fatal("test setup wrong: raw stream should CWC")
	}
}

func TestVotePassesSustainedDetections(t *testing.T) {
	raw := make([]metrics.FrameResult, 10)
	for i := range raw {
		raw[i] = fr(scene.Mark, 0.9)
	}
	out := Vote(raw, 5, 4)
	// After warm-up, the voted stream reports mark.
	for i := 4; i < 10; i++ {
		if !out[i].Detected || out[i].Class != scene.Mark {
			t.Fatalf("frame %d: voted %+v", i, out[i])
		}
	}
	// Warm-up frames (fewer than `agreement` votes available) stay silent.
	if out[0].Detected || out[2].Detected {
		t.Fatal("vote reported before enough agreement")
	}
}

func TestVoteHandlesGaps(t *testing.T) {
	raw := []metrics.FrameResult{
		fr(scene.Mark, 0.9), {}, fr(scene.Mark, 0.9), {}, fr(scene.Mark, 0.9),
	}
	out := Vote(raw, 5, 3)
	if !out[4].Detected || out[4].Class != scene.Mark {
		t.Fatalf("3 votes in 5 frames should pass: %+v", out[4])
	}
	out = Vote(raw, 5, 4)
	if out[4].Detected {
		t.Fatal("3 votes must fail a 4-agreement threshold")
	}
}

func TestVoteWindowOne(t *testing.T) {
	raw := []metrics.FrameResult{fr(scene.Car, 0.5), {}}
	out := Vote(raw, 1, 1)
	if !out[0].Detected || out[1].Detected {
		t.Fatalf("window-1 vote must be identity: %+v", out)
	}
}

func TestVoteEmpty(t *testing.T) {
	if out := Vote(nil, 5, 4); len(out) != 0 {
		t.Fatalf("empty input produced %d results", len(out))
	}
}

func TestNewFilterClampsConfig(t *testing.T) {
	det := yolo.New(rand.New(rand.NewSource(1)), yolo.DefaultConfig())
	f := NewFilter(det, Config{Window: 0, Agreement: 0})
	if f.cfg.Window != 1 || f.cfg.Agreement != 1 {
		t.Fatalf("config not clamped: %+v", f.cfg)
	}
}

func TestClassifyRunsEndToEnd(t *testing.T) {
	det := yolo.New(rand.New(rand.NewSource(2)), yolo.DefaultConfig())
	g := scene.NewSimRoom(8, 30, 0.05)
	x0, y0, x1, y1 := g.PaintArrow(0, 15, 1.8)
	rng := rand.New(rand.NewSource(3))
	steps := scene.BuildTrajectory(scene.DefaultCamera(), scene.Challenges("fix")[0], 0, 15, rng)
	frames, err := scene.RenderVideo(g, steps[:5], x0, y0, x1, y1)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFilter(det, DefaultConfig())
	raw, defended := f.Classify(frames, physical.RealWorld(), rng)
	if len(raw) != 5 || len(defended) != 5 {
		t.Fatalf("lengths %d/%d", len(raw), len(defended))
	}
	// The defense can only reduce (or keep) the number of reported frames.
	rawCount, defCount := 0, 0
	for i := range raw {
		if raw[i].Detected {
			rawCount++
		}
		if defended[i].Detected {
			defCount++
		}
	}
	if defCount > rawCount {
		t.Fatalf("defense invented detections: %d > %d", defCount, rawCount)
	}
}

func TestVoteConfidenceTieBreak(t *testing.T) {
	// Equal counts: the class with higher summed confidence wins.
	raw := []metrics.FrameResult{
		fr(scene.Mark, 0.9), fr(scene.Word, 0.5),
		fr(scene.Mark, 0.9), fr(scene.Word, 0.5),
	}
	out := Vote(raw, 4, 2)
	if !out[3].Detected || out[3].Class != scene.Mark {
		t.Fatalf("tie break wrong: %+v", out[3])
	}
}

func TestVoteReportedConfidenceIsMean(t *testing.T) {
	raw := []metrics.FrameResult{
		fr(scene.Mark, 0.4), fr(scene.Mark, 0.8),
	}
	out := Vote(raw, 2, 2)
	if out[1].Confidence < 0.59 || out[1].Confidence > 0.61 {
		t.Fatalf("confidence = %v, want mean 0.6", out[1].Confidence)
	}
}

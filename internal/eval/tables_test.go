package eval

import (
	"strings"
	"testing"

	"roadtrojan/internal/metrics"
)

func sampleTable() Table {
	return Table{
		Title:      "Sample",
		Challenges: []string{"fix", "slow"},
		Rows: []Row{
			{Name: "a", Scores: map[string]metrics.Score{
				"fix":  {PWC: 80, CWC: true, Frames: 10},
				"slow": {PWC: 20, CWC: false, Frames: 10},
			}},
			{Name: "b, with comma", Scores: map[string]metrics.Score{
				"fix": {PWC: 5, CWC: false, Frames: 10},
			}},
		},
	}
}

func TestCSVEscapesCommasAndEncodesCWC(t *testing.T) {
	csv := sampleTable().CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "method,fix_pwc,fix_cwc,slow_pwc,slow_cwc") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "80.0,1,20.0,0") {
		t.Fatalf("row a = %q", lines[1])
	}
	if strings.Count(lines[2], ",") != 4 {
		t.Fatalf("comma in name not escaped: %q", lines[2])
	}
}

func TestTableStringAlignment(t *testing.T) {
	out := sampleTable().String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header + separator + 2 rows + title.
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "method") {
		t.Fatalf("no header: %q", lines[1])
	}
}

func TestSpeedAngleChallengesOrder(t *testing.T) {
	want := []string{"slow", "normal", "fast", "angle-15", "angle0", "angle+15"}
	if len(SpeedAngleChallenges) != len(want) {
		t.Fatalf("len = %d", len(SpeedAngleChallenges))
	}
	for i, w := range want {
		if SpeedAngleChallenges[i] != w {
			t.Fatalf("order[%d] = %q, want %q", i, SpeedAngleChallenges[i], w)
		}
	}
}

package eval

import (
	"fmt"
	"strings"

	"roadtrojan/internal/metrics"
)

// Table is a paper-style results table: one row per method/setting, one
// column per challenge, with "PWC% / CWC" cells.
type Table struct {
	Title      string
	Challenges []string // column keys, in order
	Rows       []Row
}

// headerLabel maps challenge keys to the paper's column headers.
func headerLabel(key string) string {
	switch key {
	case "fix":
		return "fix"
	case "slight":
		return "slight rot."
	case "slow", "normal", "fast":
		return key
	case "angle-15":
		return "-15°"
	case "angle0":
		return "0°"
	case "angle+15":
		return "+15°"
	default:
		return key
	}
}

// String renders the table as aligned text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	nameW := len("method")
	for _, r := range t.Rows {
		if len(r.Name) > nameW {
			nameW = len(r.Name)
		}
	}
	const cellW = 12
	fmt.Fprintf(&b, "%-*s", nameW+2, "method")
	for _, c := range t.Challenges {
		fmt.Fprintf(&b, "%*s", cellW, headerLabel(c))
	}
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("-", nameW+2+cellW*len(t.Challenges)))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", nameW+2, r.Name)
		for _, c := range t.Challenges {
			s, ok := r.Scores[c]
			cell := "--"
			if ok {
				cell = s.String()
			}
			fmt.Fprintf(&b, "%*s", cellW, cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as comma-separated values (PWC and CWC columns),
// the machine-readable companion written next to each figure/table.
func (t Table) CSV() string {
	var b strings.Builder
	b.WriteString("method")
	for _, c := range t.Challenges {
		fmt.Fprintf(&b, ",%s_pwc,%s_cwc", c, c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(strings.ReplaceAll(r.Name, ",", ";"))
		for _, c := range t.Challenges {
			s := r.Scores[c]
			cwc := 0
			if s.CWC {
				cwc = 1
			}
			fmt.Fprintf(&b, ",%.1f,%d", s.PWC, cwc)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Cell fetches one score (zero value when absent).
func (t Table) Cell(rowName, challenge string) metrics.Score {
	for _, r := range t.Rows {
		if r.Name == rowName {
			return r.Scores[challenge]
		}
	}
	return metrics.Score{}
}

// SpeedAngleChallenges are the six columns of Tables III–VI.
var SpeedAngleChallenges = []string{"slow", "normal", "fast", "angle-15", "angle0", "angle+15"}

package eval

import (
	"fmt"
	"io"
	"path/filepath"

	"math/rand"

	"roadtrojan/internal/attack"
	"roadtrojan/internal/defense"
	"roadtrojan/internal/eot"
	"roadtrojan/internal/imaging"
	"roadtrojan/internal/metrics"
	"roadtrojan/internal/obs"
	"roadtrojan/internal/physical"
	"roadtrojan/internal/scene"
	"roadtrojan/internal/shapes"
	"roadtrojan/internal/tensor"
	"roadtrojan/internal/yolo"
)

// Env runs the paper's experiments end to end. Patches are cached by
// configuration so rows shared between tables (e.g. the N=4/k=60/star base
// setting) train only once.
type Env struct {
	Det *yolo.Model
	Cam scene.Camera
	// Iters scales attack-training length; Runs the evaluation repetitions.
	Iters int
	Runs  int
	Seed  int64
	Log   io.Writer
	// Trace receives structured run events; when nil, training falls back
	// to rendering the legacy Log lines through a text trace.
	Trace *obs.Trace

	roadScene attack.Scene
	simScene  attack.Scene
	cache     map[string]*attack.Patch
}

// trace returns the structured trace training should use: the explicit one
// when set, otherwise a text adapter over Log (nil Log ⇒ disabled trace).
func (e *Env) trace() *obs.Trace {
	if e.Trace != nil {
		return e.Trace
	}
	return obs.TextTrace(e.Log)
}

// NewEnv prepares an experiment environment around a trained detector.
func NewEnv(det *yolo.Model, iters, runs int, seed int64, log io.Writer) *Env {
	return &Env{
		Det:   det,
		Cam:   scene.DefaultCamera(),
		Iters: iters,
		Runs:  runs,
		Seed:  seed,
		Log:   log,
		cache: make(map[string]*attack.Patch),
	}
}

// Road returns the shared real-world-environment scene.
func (e *Env) Road() attack.Scene {
	if e.roadScene.Ground == nil {
		e.roadScene = newRoadScene(e.Seed)
	}
	return e.roadScene
}

// Sim returns the shared simulated-environment scene.
func (e *Env) Sim() attack.Scene {
	if e.simScene.Ground == nil {
		g := scene.NewSimRoom(8, 30, 0.05)
		e.simScene = attack.NewArrowScene(g, 0, 15, 1.8)
	}
	return e.simScene
}

func newRoadScene(seed int64) attack.Scene {
	// The road texture is "the location" and stays fixed across experiment
	// seeds so results are comparable between runs and with the examples.
	g := scene.NewRoad(newRng(7), 8, 30, 0.05)
	return attack.NewArrowScene(g, 0, 15, 1.8)
}

// baseConfig is the ablation setting shared by Tables III–VI: N=4, k=60,
// star, EOT (1)+(2)+(4)+(5), consecutive frames.
func (e *Env) baseConfig() attack.Config {
	cfg := attack.DefaultConfig()
	cfg.Iters = e.Iters
	cfg.Seed = e.Seed + 11
	return cfg
}

type method int

const (
	ours method = iota + 1
	oursStatic
	baseline
)

func (e *Env) patchFor(m method, env string, cfg attack.Config) (*attack.Patch, error) {
	key := fmt.Sprintf("%d|%s|N%d|K%d|%s|a%.2f|i%d|w%d|c%v|%s|s%d|ink%.2f|r%.2f",
		m, env, cfg.N, cfg.K, cfg.Shape, cfg.Alpha, cfg.Iters, cfg.WindowFrames,
		cfg.Consecutive, cfg.Tricks, cfg.Seed, cfg.Ink, cfg.RingRadiusM)
	if p, ok := e.cache[key]; ok {
		return p, nil
	}
	sc := e.Road()
	if env == "sim" {
		sc = e.Sim()
	}
	if e.Log != nil {
		fmt.Fprintf(e.Log, "== training patch %s\n", key)
	}
	// The attacker searches until the patch verifies digitally (the paper's
	// confirm-digital-first protocol): up to two seeded attempts, keeping
	// the better artifact.
	var best *attack.Patch
	bestScore := -1.0
	for attempt := 0; attempt < 2; attempt++ {
		c := cfg
		c.Seed = cfg.Seed + int64(attempt)*1009
		var (
			p   *attack.Patch
			err error
		)
		switch m {
		case baseline:
			p, _, err = attack.TrainBaseline(e.Det, e.Cam, sc, c, e.trace())
		default:
			p, _, err = attack.Train(e.Det, e.Cam, sc, c, e.trace())
		}
		if err != nil {
			return nil, err
		}
		score, err := attack.VerifyChannel(e.Det, e.Cam, sc, p, realChannel(), newRng(e.Seed+4000))
		if err != nil {
			score = 0
		}
		if score > bestScore {
			best, bestScore = p, score
		}
		if bestScore >= 0.15 {
			break
		}
	}
	e.cache[key] = best
	return best, nil
}

func (e *Env) cond(physicalMode bool) Condition {
	c := DefaultCondition()
	if !physicalMode {
		c = Digital()
	}
	c.Runs = e.Runs
	c.Seed = e.Seed + 1000
	return c
}

// cfgTarget is the attack target class of the base configuration (used by
// rows that have no patch, e.g. the no-attack baseline).
func cfgTarget(e *Env) scene.Class { return e.baseConfig().TargetClass }

// TableI reproduces Table I: no-attack, ours (±consecutive frames) and [34]
// in the real-world environment (N=6, k=60, physical channel), across all
// eight challenges.
func (e *Env) TableI() (Table, error) {
	sc := e.Road()
	cond := e.cond(true)
	cols := scene.AllChallengeNames
	t := Table{Title: "Table I — real-world environment (N=4, k=60, star)", Challenges: cols}

	noatk, err := RunRow(e.Det, e.Cam, sc, nil, cfgTarget(e), "w/o Attack", cols, cond)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, noatk)

	// The paper's Table I uses N=6; this substrate's calibrated operating
	// point is the ablation base N=4 (Table III sweeps N, including 6).
	cfg := e.baseConfig()
	pOurs, err := e.patchFor(ours, "road", cfg)
	if err != nil {
		return t, err
	}
	r, err := RunRow(e.Det, e.Cam, sc, pOurs, cfg.TargetClass, "Ours (w/ 3 consecutive frames)", cols, cond)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, r)

	cfgS := cfg
	cfgS.Consecutive = false
	pStatic, err := e.patchFor(oursStatic, "road", cfgS)
	if err != nil {
		return t, err
	}
	r, err = RunRow(e.Det, e.Cam, sc, pStatic, cfg.TargetClass, "Ours (w/o 3 consecutive frames)", cols, cond)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, r)

	pBase, err := e.patchFor(baseline, "road", cfg)
	if err != nil {
		return t, err
	}
	r, err = RunRow(e.Det, e.Cam, sc, pBase, cfg.TargetClass, "[34]", cols, cond)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, r)
	return t, nil
}

// TableII reproduces Table II: our attack in the simulated environment
// (gray-paper ground, N=4, k=60), physical prints, all eight challenges.
func (e *Env) TableII() (Table, error) {
	cond := e.cond(true)
	cols := scene.AllChallengeNames
	t := Table{Title: "Table II — simulated environment (N=4, k=60, star)", Challenges: cols}
	cfg := e.baseConfig()
	cfg.Seed = e.Seed + 21
	p, err := e.patchFor(ours, "sim", cfg)
	if err != nil {
		return t, err
	}
	r, err := RunRow(e.Det, e.Cam, e.Sim(), p, cfg.TargetClass, "Ours", cols, cond)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, r)
	return t, nil
}

// TableIII reproduces Table III: N ∈ {2,4,6,8} at constant total decal area
// (k rescaled per N), speed + angle challenges, real-world environment.
func (e *Env) TableIII() (Table, error) {
	sc := e.Road()
	cond := e.cond(true)
	t := Table{Title: "Table III — number of decals N (constant total area)", Challenges: SpeedAngleChallenges}
	for _, n := range []int{2, 4, 6, 8} {
		cfg := e.baseConfig()
		cfg.N = n
		cfg.K = attack.KForEqualTotalArea(60, 4, n)
		p, err := e.patchFor(ours, "road", cfg)
		if err != nil {
			return t, err
		}
		r, err := RunRow(e.Det, e.Cam, sc, p, cfg.TargetClass, fmt.Sprintf("N=%d", n), SpeedAngleChallenges, cond)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, r)
	}
	return t, nil
}

// TableIV reproduces Table IV: EOT trick combinations.
func (e *Env) TableIV() (Table, error) {
	sc := e.Road()
	cond := e.cond(true)
	t := Table{Title: "Table IV — EOT trick combinations", Challenges: SpeedAngleChallenges}
	for _, set := range eot.TableIVSets() {
		cfg := e.baseConfig()
		cfg.Tricks = set
		p, err := e.patchFor(ours, "road", cfg)
		if err != nil {
			return t, err
		}
		r, err := RunRow(e.Det, e.Cam, sc, p, cfg.TargetClass, set.String(), SpeedAngleChallenges, cond)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, r)
	}
	return t, nil
}

// TableV reproduces Table V: decal shapes.
func (e *Env) TableV() (Table, error) {
	sc := e.Road()
	cond := e.cond(true)
	t := Table{Title: "Table V — decal shapes", Challenges: SpeedAngleChallenges}
	for _, sh := range shapes.All {
		cfg := e.baseConfig()
		cfg.Shape = sh
		p, err := e.patchFor(ours, "road", cfg)
		if err != nil {
			return t, err
		}
		r, err := RunRow(e.Det, e.Cam, sc, p, cfg.TargetClass, sh.String(), SpeedAngleChallenges, cond)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, r)
	}
	return t, nil
}

// TableVI reproduces Table VI: patch sizes k.
func (e *Env) TableVI() (Table, error) {
	sc := e.Road()
	cond := e.cond(true)
	t := Table{Title: "Table VI — patch size k", Challenges: SpeedAngleChallenges}
	for _, k := range []int{20, 40, 60, 80} {
		cfg := e.baseConfig()
		cfg.K = k
		p, err := e.patchFor(ours, "road", cfg)
		if err != nil {
			return t, err
		}
		r, err := RunRow(e.Det, e.Cam, sc, p, cfg.TargetClass, fmt.Sprintf("k=%d", k), SpeedAngleChallenges, cond)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, r)
	}
	return t, nil
}

// groundCrop renders a top-down crop of the decaled ground around the
// target — the view Figs. 6 and 8 show.
func groundCrop(g *scene.Ground, gx, gy, spanM float64, res int) *tensor.Tensor {
	quad := g.DecalQuad(gx, gy, spanM, 0)
	h, err := imaging.QuadToQuad(
		[4]imaging.Point{{X: 0, Y: 0}, {X: float64(res - 1), Y: 0}, {X: float64(res - 1), Y: float64(res - 1)}, {X: 0, Y: float64(res - 1)}},
		quad)
	if err != nil {
		return tensor.Ones(3, res, res)
	}
	return imaging.WarpImage(g.Tex, h, res, res, 0.42)
}

// detectionOverlay renders a frame with the matched target detection drawn:
// green when the detector reports the true class, red for the target class.
func (e *Env) detectionOverlay(f scene.VideoFrame, target scene.Class) *tensor.Tensor {
	img := f.Image.Clone()
	if !f.TargetOK {
		return img
	}
	batch := f.Image.Reshape(1, 3, f.Image.Dim(1), f.Image.Dim(2))
	heads := e.Det.Forward(batch)
	dets := e.Det.DecodeSample(heads, 0, yolo.DefaultDecode())
	if d, ok := yolo.MatchTarget(dets, f.TargetBox, 0.2); ok {
		col := [3]float64{0, 1, 0}
		if d.Class == target {
			col = [3]float64{1, 0, 0}
		}
		x0, y0, x1, y1 := d.Box.X0Y0X1Y1()
		imaging.DrawRect(img, int(x0), int(y0), int(x1), int(y1), col)
	}
	return img
}

// Figures regenerates Figures 2–8 as PNGs (plus CSV series where a figure
// encodes data) under dir. It needs the base patch (training it if absent).
func (e *Env) Figures(dir string) error {
	cfgBase := e.baseConfig()
	pBase, err := e.patchFor(ours, "road", cfgBase)
	if err != nil {
		return err
	}
	sc := e.Road()
	rng := newRng(e.Seed + 5)

	// Fig. 2 — three consecutive training frames with decals applied.
	ground, err := attack.Deploy(sc, pBase, digitalChannel(), rng)
	if err != nil {
		return err
	}
	steps := scene.BuildTrajectory(e.Cam, scene.Challenges("slow")[0], sc.TargetGX, sc.TargetGY, rng)
	mid := len(steps) / 2
	frames, err := scene.RenderVideo(ground, steps[mid:mid+3], sc.GX0, sc.GY0, sc.GX1, sc.GY1)
	if err != nil {
		return err
	}
	var tiles []*tensor.Tensor
	for _, f := range frames {
		tiles = append(tiles, f.Image)
	}
	if err := imaging.SavePNG(filepath.Join(dir, "fig2_batch.png"), imaging.TileHorizontal(tiles, 2)); err != nil {
		return err
	}

	// Fig. 3 — the angle settings.
	tiles = tiles[:0]
	for _, name := range []string{"angle-15", "angle0", "angle+15"} {
		st := scene.BuildTrajectory(e.Cam, scene.Challenges(name)[0], sc.TargetGX, sc.TargetGY, rng)
		fr, err := scene.RenderVideo(sc.Ground, st[:1], sc.GX0, sc.GY0, sc.GX1, sc.GY1)
		if err != nil {
			return err
		}
		tiles = append(tiles, fr[0].Image)
	}
	if err := imaging.SavePNG(filepath.Join(dir, "fig3_angles.png"), imaging.TileHorizontal(tiles, 2)); err != nil {
		return err
	}

	// Figs. 4 & 5 — digital vs physical attack outcomes (sim and road).
	for _, fig := range []struct {
		name string
		sc   attack.Scene
	}{{"fig4_sim", e.Sim()}, {"fig5_road", sc}} {
		tiles = tiles[:0]
		for _, physicalMode := range []bool{false, true} {
			ch := digitalChannel()
			if physicalMode {
				ch = realChannel()
			}
			ground, err := attack.Deploy(fig.sc, pBase, ch, rng)
			if err != nil {
				return err
			}
			st := scene.BuildTrajectory(e.Cam, scene.Challenges("fix")[0], fig.sc.TargetGX, fig.sc.TargetGY, rng)
			fr, err := scene.RenderVideo(ground, st[:1], fig.sc.GX0, fig.sc.GY0, fig.sc.GX1, fig.sc.GY1)
			if err != nil {
				return err
			}
			tiles = append(tiles, e.detectionOverlay(fr[0], cfgBase.TargetClass))
		}
		if err := imaging.SavePNG(filepath.Join(dir, fig.name+".png"), imaging.TileHorizontal(tiles, 2)); err != nil {
			return err
		}
	}

	// Fig. 6 — decal layouts for N ∈ {2,4,6,8} (top-down ground crops).
	tiles = tiles[:0]
	for _, n := range []int{2, 4, 6, 8} {
		cfg := cfgBase
		cfg.N = n
		cfg.K = attack.KForEqualTotalArea(60, 4, n)
		p := &attack.Patch{Gray: pBase.Gray, Mask: pBase.Mask, Cfg: cfg}
		ground, err := attack.Deploy(sc, p, digitalChannel(), rng)
		if err != nil {
			return err
		}
		tiles = append(tiles, groundCrop(ground, sc.TargetGX, sc.TargetGY, 4.5, 96))
	}
	if err := imaging.SavePNG(filepath.Join(dir, "fig6_counts.png"), imaging.TileHorizontal(tiles, 2)); err != nil {
		return err
	}

	// Fig. 7 — the four patch shapes (print previews).
	tiles = tiles[:0]
	for _, sh := range []shapes.Shape{shapes.Triangle, shapes.Circle, shapes.Star, shapes.Square} {
		cfg := cfgBase
		cfg.Shape = sh
		p := &attack.Patch{Gray: pBase.Gray, Mask: shapes.Mask(sh, 32, cfg.ShapeScale(), 0), Cfg: cfg}
		tiles = append(tiles, p.RenderPrint())
	}
	if err := imaging.SavePNG(filepath.Join(dir, "fig7_shapes.png"), imaging.TileHorizontal(tiles, 4)); err != nil {
		return err
	}

	// Fig. 8 — patch sizes k ∈ {20,40,60,80} in the scene.
	tiles = tiles[:0]
	for _, k := range []int{20, 40, 60, 80} {
		cfg := cfgBase
		cfg.K = k
		p := &attack.Patch{Gray: pBase.Gray, Mask: pBase.Mask, Cfg: cfg}
		ground, err := attack.Deploy(sc, p, digitalChannel(), rng)
		if err != nil {
			return err
		}
		tiles = append(tiles, groundCrop(ground, sc.TargetGX, sc.TargetGY, 4.5, 96))
	}
	return imaging.SavePNG(filepath.Join(dir, "fig8_sizes.png"), imaging.TileHorizontal(tiles, 2))
}

// CheckNoAttackBaseline verifies the detector behaves on the clean scene:
// the target is detected as "mark" in most frames and never as the attack
// class (the paper's 0% w/o-attack row).
func (e *Env) CheckNoAttackBaseline() (metrics.Score, error) {
	cond := e.cond(true)
	return RunScenario(e.Det, e.Cam, e.Road(), nil, cfgTarget(e), scene.Challenges("fix")[0], cond)
}

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func digitalChannel() physical.Channel { return physical.Digital() }

func realChannel() physical.Channel { return physical.RealWorld() }

// AblationAlpha is an extension experiment beyond the paper: sweeping the
// attack weight α of Eq. 1 shows the GAN-realism/attack-strength trade-off
// the paper fixes at α=0.5.
func (e *Env) AblationAlpha() (Table, error) {
	sc := e.Road()
	cond := e.cond(true)
	t := Table{Title: "Ablation — attack weight α (extension)", Challenges: []string{"fix", "slow", "normal"}}
	for _, alpha := range []float64{0.1, 0.5, 2, 5} {
		cfg := e.baseConfig()
		cfg.Alpha = alpha
		p, err := e.patchFor(ours, "road", cfg)
		if err != nil {
			return t, err
		}
		r, err := RunRow(e.Det, e.Cam, sc, p, cfg.TargetClass, fmt.Sprintf("α=%.1f", alpha), t.Challenges, cond)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, r)
	}
	return t, nil
}

// AblationInk is an extension experiment: the paper constrains decals to a
// single color but does not say which; this sweeps dark vs light paint.
func (e *Env) AblationInk() (Table, error) {
	sc := e.Road()
	cond := e.cond(true)
	t := Table{Title: "Ablation — decal paint color (extension)", Challenges: []string{"fix", "slow", "normal"}}
	for _, row := range []struct {
		name string
		ink  float64
	}{{"black paint", 0.05}, {"gray paint", 0.45}, {"white paint", 0.92}} {
		cfg := e.baseConfig()
		cfg.Ink = row.ink
		p, err := e.patchFor(ours, "road", cfg)
		if err != nil {
			return t, err
		}
		r, err := RunRow(e.Det, e.Cam, sc, p, cfg.TargetClass, row.name, t.Challenges, cond)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, r)
	}
	return t, nil
}

// AblationGANFree is an extension experiment: dropping the GAN realism term
// (direct patch optimization) isolates the cost of the paper's
// shape-constrained stealth requirement.
func (e *Env) AblationGANFree() (Table, error) {
	sc := e.Road()
	cond := e.cond(true)
	t := Table{Title: "Ablation — GAN constraint (extension)", Challenges: []string{"fix", "slow", "normal"}}

	cfg := e.baseConfig()
	pGAN, err := e.patchFor(ours, "road", cfg)
	if err != nil {
		return t, err
	}
	r, err := RunRow(e.Det, e.Cam, sc, pGAN, cfg.TargetClass, "GAN (Eq. 1)", t.Challenges, cond)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, r)

	key := fmt.Sprintf("direct|road|%+v", cfg)
	pDirect, ok := e.cache[key]
	if !ok {
		if e.Log != nil {
			fmt.Fprintf(e.Log, "== training patch %s\n", key)
		}
		pDirect, _, err = attack.TrainDirect(e.Det, e.Cam, sc, cfg, e.trace())
		if err != nil {
			return t, err
		}
		e.cache[key] = pDirect
	}
	r, err = RunRow(e.Det, e.Cam, sc, pDirect, cfg.TargetClass, "direct (no GAN)", t.Challenges, cond)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, r)
	return t, nil
}

// DefenseTable is an extension experiment: the temporal majority-vote
// defense (internal/defense) applied against the base attack. Rows compare
// raw and defended PWC/CWC.
func (e *Env) DefenseTable() (Table, error) {
	sc := e.Road()
	cfg := e.baseConfig()
	p, err := e.patchFor(ours, "road", cfg)
	if err != nil {
		return Table{}, err
	}
	cols := []string{"fix", "slow", "normal"}
	t := Table{Title: "Defense — temporal majority vote (extension)", Challenges: cols}
	raw := Row{Name: "undefended", Scores: make(map[string]metrics.Score, len(cols))}
	def := Row{Name: "vote 4-of-5 + jitter", Scores: make(map[string]metrics.Score, len(cols))}
	filter := defense.NewFilter(e.Det, defense.DefaultConfig())
	ch := realChannel()
	for _, cn := range cols {
		rng := newRng(e.Seed + 2000)
		ground, err := attack.Deploy(sc, p, ch, rng)
		if err != nil {
			return t, err
		}
		steps := scene.BuildTrajectory(e.Cam, scene.Challenges(cn)[0], sc.TargetGX, sc.TargetGY, rng)
		frames, err := scene.RenderVideo(ground, steps, sc.GX0, sc.GY0, sc.GX1, sc.GY1)
		if err != nil {
			return t, err
		}
		rawR, defR := filter.Classify(frames, ch, rng)
		raw.Scores[cn] = metrics.Evaluate(rawR, cfg.TargetClass)
		def.Scores[cn] = metrics.Evaluate(defR, cfg.TargetClass)
	}
	t.Rows = []Row{raw, def}
	return t, nil
}

// ShadowTable is an extension experiment for the abstract's "shadow"
// challenge: a tree-shadow band cast over the decal region at evaluation
// time (the attack never trained on it; EOT's gamma/brightness tricks are
// what should carry it).
func (e *Env) ShadowTable() (Table, error) {
	sc := e.Road()
	cfg := e.baseConfig()
	p, err := e.patchFor(ours, "road", cfg)
	if err != nil {
		return Table{}, err
	}
	cols := []string{"fix", "slow"}
	t := Table{Title: "Shadow — decal region shaded at eval time (extension)", Challenges: cols}
	for _, row := range []struct {
		name string
		dim  float64
	}{{"no shadow", 1}, {"light shadow (0.75)", 0.75}, {"deep shadow (0.45)", 0.45}} {
		r := Row{Name: row.name, Scores: make(map[string]metrics.Score, len(cols))}
		for _, cn := range cols {
			rng := newRng(e.Seed + 3000)
			ground, err := attack.Deploy(sc, p, realChannel(), rng)
			if err != nil {
				return t, err
			}
			ground.CastShadow(sc.TargetGX-2.5, sc.TargetGY-2.5, sc.TargetGX+2.5, sc.TargetGY+2.5, row.dim)
			steps := scene.BuildTrajectory(e.Cam, scene.Challenges(cn)[0], sc.TargetGX, sc.TargetGY, rng)
			frames, err := scene.RenderVideo(ground, steps, sc.GX0, sc.GY0, sc.GX1, sc.GY1)
			if err != nil {
				return t, err
			}
			r.Scores[cn] = ScoreVideo(e.Det, frames, cfg.TargetClass, realChannel(), rng, 0.2)
		}
		t.Rows = append(t.Rows, r)
	}
	return t, nil
}

// SanityBaseRow trains the base patch and scores the fix and slow
// challenges — a pre-flight check used before full table runs.
func (e *Env) SanityBaseRow() (string, error) {
	p, err := e.patchFor(ours, "road", e.baseConfig())
	if err != nil {
		return "", err
	}
	v, _ := attack.VerifyDigital(e.Det, e.Cam, e.Road(), p, newRng(1))
	cond := e.cond(true)
	out := fmt.Sprintf("verify=%.2f", v)
	for _, cn := range []string{"fix", "slow", "normal"} {
		s, err := RunScenario(e.Det, e.Cam, e.Road(), p, scene.Word, scene.Challenges(cn)[0], cond)
		if err != nil {
			return "", err
		}
		out += fmt.Sprintf("  %s=%s", cn, s.String())
	}
	return out, nil
}

// TransferTable is an extension experiment: the paper's attack is white-box;
// this measures gray-box transfer by evaluating the patch crafted against
// the primary victim on an independently trained detector (same
// architecture and dataset distribution, different initialization seed).
func (e *Env) TransferTable(other *yolo.Model) (Table, error) {
	sc := e.Road()
	cfg := e.baseConfig()
	p, err := e.patchFor(ours, "road", cfg)
	if err != nil {
		return Table{}, err
	}
	cols := []string{"fix", "slow", "normal"}
	t := Table{Title: "Transfer — white-box victim vs independently trained detector (extension)", Challenges: cols}
	cond := e.cond(true)
	for _, row := range []struct {
		name string
		det  *yolo.Model
	}{{"white-box victim", e.Det}, {"transfer victim", other}} {
		r, err := RunRow(row.det, e.Cam, sc, p, cfg.TargetClass, row.name, cols, cond)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, r)
	}
	return t, nil
}

package eval

import (
	"math/rand"
	"strings"
	"testing"

	"roadtrojan/internal/attack"
	"roadtrojan/internal/metrics"
	"roadtrojan/internal/physical"
	"roadtrojan/internal/scene"
	"roadtrojan/internal/shapes"
	"roadtrojan/internal/tensor"
	"roadtrojan/internal/yolo"
)

func testScene() attack.Scene {
	g := scene.NewSimRoom(8, 30, 0.05)
	return attack.NewArrowScene(g, 0, 15, 1.8)
}

func fakePatch(n int) *attack.Patch {
	cfg := attack.DefaultConfig()
	cfg.N = n
	rng := rand.New(rand.NewSource(7))
	return &attack.Patch{
		Gray: tensor.NewRandU(rng, 0, 0.4, 1, 32, 32),
		Mask: shapes.Mask(shapes.Star, 32, 0.9, 0),
		Cfg:  cfg,
	}
}

func TestRunScenarioNoAttackIsClean(t *testing.T) {
	sc := testScene()
	det := yolo.New(rand.New(rand.NewSource(1)), yolo.DefaultConfig())
	cond := Digital()
	cond.Runs = 1
	s, err := RunScenario(det, scene.DefaultCamera(), sc, nil, scene.Car, scene.Challenges("fix")[0], cond)
	if err != nil {
		t.Fatal(err)
	}
	if s.Frames == 0 {
		t.Fatal("no frames scored")
	}
	// An untrained detector rarely reports the target class consistently,
	// but the score must at least be well-formed.
	if s.PWC < 0 || s.PWC > 100 {
		t.Fatalf("PWC = %v", s.PWC)
	}
}

func TestRunScenarioWithPatchAndChannels(t *testing.T) {
	sc := testScene()
	det := yolo.New(rand.New(rand.NewSource(2)), yolo.DefaultConfig())
	p := fakePatch(2)
	for _, cond := range []Condition{Digital(), DefaultCondition()} {
		cond.Runs = 1
		s, err := RunScenario(det, scene.DefaultCamera(), sc, p, scene.Car, scene.Challenges("slow")[0], cond)
		if err != nil {
			t.Fatal(err)
		}
		if s.Frames == 0 {
			t.Fatal("no frames")
		}
	}
}

func TestRunScenarioAveragesRuns(t *testing.T) {
	sc := testScene()
	det := yolo.New(rand.New(rand.NewSource(3)), yolo.DefaultConfig())
	cond := DefaultCondition()
	cond.Runs = 3
	s, err := RunScenario(det, scene.DefaultCamera(), sc, fakePatch(2), scene.Car, scene.Challenges("fix")[0], cond)
	if err != nil {
		t.Fatal(err)
	}
	if s.Frames == 0 {
		t.Fatal("no frames")
	}
}

func TestScoreVideoHandlesInvisibleTarget(t *testing.T) {
	det := yolo.New(rand.New(rand.NewSource(4)), yolo.DefaultConfig())
	rng := rand.New(rand.NewSource(5))
	img := tensor.NewRandU(rng, 0, 1, 3, 64, 64)
	frames := []scene.VideoFrame{
		{Image: img, TargetOK: false},
		{Image: img, TargetOK: true, TargetBox: scene.Box{CX: 32, CY: 40, W: 10, H: 6}},
	}
	s := ScoreVideo(det, frames, scene.Car, physical.Digital(), rng, 0.2)
	if s.Frames != 2 {
		t.Fatalf("frames = %d", s.Frames)
	}
}

func TestRunRowAndTableFormat(t *testing.T) {
	sc := testScene()
	det := yolo.New(rand.New(rand.NewSource(6)), yolo.DefaultConfig())
	cond := Digital()
	cond.Runs = 1
	row, err := RunRow(det, scene.DefaultCamera(), sc, nil, scene.Car, "w/o Attack", []string{"fix", "slow"}, cond)
	if err != nil {
		t.Fatal(err)
	}
	tb := Table{Title: "Test Table", Challenges: []string{"fix", "slow"}, Rows: []Row{row}}
	out := tb.String()
	for _, want := range []string{"Test Table", "w/o Attack", "fix", "slow", "%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	csv := tb.CSV()
	if !strings.Contains(csv, "fix_pwc") || !strings.Contains(csv, "w/o Attack") {
		t.Fatalf("csv malformed:\n%s", csv)
	}
	if got := tb.Cell("w/o Attack", "fix"); got.Frames == 0 {
		t.Fatal("Cell lookup failed")
	}
	if got := tb.Cell("nope", "fix"); got.Frames != 0 {
		t.Fatal("missing row must return zero score")
	}
}

func TestTableHeaderLabels(t *testing.T) {
	tests := map[string]string{
		"fix": "fix", "slight": "slight rot.", "angle-15": "-15°", "angle0": "0°", "angle+15": "+15°", "x": "x",
	}
	for key, want := range tests {
		if got := headerLabel(key); got != want {
			t.Errorf("headerLabel(%q) = %q, want %q", key, got, want)
		}
	}
}

func TestTableMissingCellRendersDash(t *testing.T) {
	tb := Table{
		Title:      "T",
		Challenges: []string{"fix"},
		Rows:       []Row{{Name: "empty", Scores: map[string]metrics.Score{}}},
	}
	if !strings.Contains(tb.String(), "--") {
		t.Fatalf("missing cell not rendered:\n%s", tb.String())
	}
}

func TestEnvCachesPatches(t *testing.T) {
	if testing.Short() {
		t.Skip("env training test skipped in -short mode")
	}
	det := yolo.New(rand.New(rand.NewSource(7)), yolo.DefaultConfig())
	env := NewEnv(det, 2, 1, 5, nil)
	cfg := env.baseConfig()
	p1, err := env.patchFor(ours, "road", cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := env.patchFor(ours, "road", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("identical configs must hit the patch cache")
	}
	// A different config misses the cache.
	cfg2 := cfg
	cfg2.N = 2
	p3, err := env.patchFor(ours, "road", cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Fatal("different config returned the cached patch")
	}
}

func TestEnvScenesAreStable(t *testing.T) {
	det := yolo.New(rand.New(rand.NewSource(8)), yolo.DefaultConfig())
	env := NewEnv(det, 1, 1, 5, nil)
	a := env.Road()
	b := env.Road()
	if a.Ground != b.Ground {
		t.Fatal("Road() must return the same scene")
	}
	if env.Sim().Ground == nil {
		t.Fatal("Sim() scene missing")
	}
}

func TestDigitalConditionDisablesChannel(t *testing.T) {
	if Digital().Channel.Enabled {
		t.Fatal("digital condition must disable the channel")
	}
	if !DefaultCondition().Channel.Enabled {
		t.Fatal("default condition must enable the channel")
	}
	if DefaultCondition().Runs != 3 {
		t.Fatalf("default runs = %d, want 3 (paper averages three runs)", DefaultCondition().Runs)
	}
}

func TestScoreVideoEmpty(t *testing.T) {
	det := yolo.New(rand.New(rand.NewSource(9)), yolo.DefaultConfig())
	rng := rand.New(rand.NewSource(10))
	s := ScoreVideo(det, nil, scene.Word, physical.Digital(), rng, 0.2)
	if s.Frames != 0 || s.PWC != 0 {
		t.Fatalf("empty video score %+v", s)
	}
}

func TestTransferTableStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("transfer test trains a patch; skipped in -short mode")
	}
	detA := yolo.New(rand.New(rand.NewSource(30)), yolo.DefaultConfig())
	detB := yolo.New(rand.New(rand.NewSource(31)), yolo.DefaultConfig())
	env := NewEnv(detA, 2, 1, 5, nil)
	tb, err := env.TransferTable(detB)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if tb.Rows[0].Name != "white-box victim" || tb.Rows[1].Name != "transfer victim" {
		t.Fatalf("row names: %q %q", tb.Rows[0].Name, tb.Rows[1].Name)
	}
}

// Package eval runs the paper's experimental protocol: deploy a patch
// (digitally or through the print-and-capture channel), drive the camera
// through a challenge (rotation / speed / angles), score every frame with
// the victim detector, and compute PWC/CWC. It also formats results in the
// paper's table layout.
package eval

import (
	"fmt"
	"math/rand"

	"roadtrojan/internal/attack"
	"roadtrojan/internal/metrics"
	"roadtrojan/internal/obs"
	"roadtrojan/internal/physical"
	"roadtrojan/internal/scene"
	"roadtrojan/internal/yolo"
)

// Condition fixes the evaluation environment.
type Condition struct {
	Channel physical.Channel
	// Runs averages this many repetitions (the paper uses 3).
	Runs int
	Seed int64
	// MatchIoU is the detection↔target association threshold.
	MatchIoU float64
}

// DefaultCondition is three physical runs.
func DefaultCondition() Condition {
	return Condition{Channel: physical.RealWorld(), Runs: 3, Seed: 100, MatchIoU: 0.2}
}

// Digital returns the digital-world condition (no print/capture loss).
func Digital() Condition {
	c := DefaultCondition()
	c.Channel = physical.Digital()
	return c
}

// StageHook observes stage timing from outside this package: calling it
// marks the start of one stage, calling the returned func marks the end.
// The serving layer binds it to wall-clock histograms — the clock read
// stays in serve (on rtlint's allowlist) so eval itself never touches
// time.Now and stays bit-deterministic. A nil StageHook costs nothing.
type StageHook func(stage string) func()

// stageDone is the shared no-op end for a nil hook.
var stageDone = func() {}

// start is the nil-safe entry point.
func (h StageHook) start(stage string) func() {
	if h == nil {
		return stageDone
	}
	return h(stage)
}

// Stage names passed to StageHook.
const (
	StageForward = "forward"
	StageDecode  = "decode"
)

// FrameResults classifies the target in every frame, returning the per-frame
// verdicts ScoreVideo aggregates. The detector must not be shared with other
// goroutines while this runs (see the internal/nn package comment).
func FrameResults(det *yolo.Model, frames []scene.VideoFrame, ch physical.Channel,
	rng *rand.Rand, matchIoU float64) []metrics.FrameResult {
	return FrameResultsTraced(nil, nil, det, frames, ch, rng, matchIoU)
}

// FrameResultsTraced is FrameResults with per-replica stage observability:
// each frame's forward pass and decode open child spans of sp (the causal
// tree's leaf spans) and tick the hook (the stage histograms). Both sp and
// hook may be nil; with both nil this is exactly FrameResults, emitting
// nothing.
func FrameResultsTraced(sp *obs.Span, hook StageHook, det *yolo.Model, frames []scene.VideoFrame,
	ch physical.Channel, rng *rand.Rand, matchIoU float64) []metrics.FrameResult {

	results := make([]metrics.FrameResult, 0, len(frames))
	opts := yolo.DefaultDecode()
	for i, f := range frames {
		img := f.Image
		if ch.Enabled {
			img = ch.Capture.Apply(rng, img)
		}
		if !f.TargetOK {
			results = append(results, metrics.FrameResult{})
			continue
		}
		batch := img.Reshape(1, 3, img.Dim(1), img.Dim(2))
		fsp := sp.Child(StageForward, obs.I("frame", i))
		end := hook.start(StageForward)
		heads := det.Forward(batch)
		end()
		fsp.End()
		dsp := sp.Child(StageDecode, obs.I("frame", i))
		end = hook.start(StageDecode)
		dets := det.DecodeSample(heads, 0, opts)
		end()
		dsp.End()
		d, ok := yolo.MatchTarget(dets, f.TargetBox, matchIoU)
		if !ok {
			results = append(results, metrics.FrameResult{})
			continue
		}
		results = append(results, metrics.FrameResult{Detected: true, Class: d.Class, Confidence: d.Confidence})
	}
	return results
}

// ScoreVideo classifies the target in every frame and scores the video.
func ScoreVideo(det *yolo.Model, frames []scene.VideoFrame, target scene.Class,
	ch physical.Channel, rng *rand.Rand, matchIoU float64) metrics.Score {
	return metrics.Evaluate(FrameResults(det, frames, ch, rng, matchIoU), target)
}

// Job bundles everything one scenario evaluation needs. It is the unit of
// work the serving layer queues: a worker binds its own detector replica to
// Det and calls a JobFunc on the rest.
type Job struct {
	Det    *yolo.Model
	Cam    scene.Camera
	Scene  attack.Scene
	Patch  *attack.Patch // nil = no attack
	Target scene.Class
	Ch     scene.Challenge
	Cond   Condition
	// Trace receives per-run eval records (nil = no tracing). It is not
	// part of the job's cache identity: tracing never changes results.
	Trace *obs.Trace
	// Parent, when non-nil, parents this job's eval span so node-side eval
	// work joins the request's cross-process causal tree; it also switches
	// RunJob into traced mode, emitting per-run spans with per-frame
	// forward/decode leaves. Like Trace, never part of cache identity.
	Parent *obs.Span
	// Stages observes stage durations (forward/decode). The serving layer
	// binds it to wall-clock histograms; nil costs nothing. Not part of
	// cache identity.
	Stages StageHook
}

// Detail is a scenario's aggregate score plus each run's per-frame results
// (what /v1/evaluate returns beyond the table-cell numbers).
type Detail struct {
	Score metrics.Score
	Runs  [][]metrics.FrameResult
}

// JobFunc evaluates one scenario job. RunJob is the canonical
// implementation; tests and the serving layer may inject their own.
type JobFunc func(Job) (Detail, error)

// RunJob evaluates one patch (nil = no attack) under one challenge,
// averaging j.Cond.Runs repetitions with per-run print jobs and
// trajectories. The run loop is deterministic in j.Cond.Seed, so equal jobs
// produce bit-identical details regardless of which detector replica runs
// them.
func RunJob(j Job) (Detail, error) {
	j.Det.SetTraining(false)
	evalAttrs := []obs.Attr{
		obs.S("challenge", j.Ch.Name), obs.I("runs", j.Cond.Runs), obs.I64("seed", j.Cond.Seed)}
	var sp *obs.Span
	if j.Parent.Enabled() {
		sp = j.Parent.Child("eval", evalAttrs...)
	} else {
		sp = j.Trace.Span("eval", evalAttrs...)
	}
	defer sp.End()
	// Per-frame stage spans only appear on the traced serving path (Parent
	// set) or when a hook wants timings: the legacy Trace-only path keeps
	// its exact historical journal bytes (the golden journals pin them).
	traced := j.Parent.Enabled() || j.Stages != nil
	d := Detail{Runs: make([][]metrics.FrameResult, 0, j.Cond.Runs)}
	var scores []metrics.Score
	for run := 0; run < j.Cond.Runs; run++ {
		rng := rand.New(rand.NewSource(j.Cond.Seed + int64(run)*7919))
		ground := j.Scene.Ground
		if j.Patch != nil {
			var err error
			ground, err = attack.Deploy(j.Scene, j.Patch, j.Cond.Channel, rng)
			if err != nil {
				return Detail{}, fmt.Errorf("eval: deploy: %w", err)
			}
		}
		steps := scene.BuildTrajectory(j.Cam, j.Ch, j.Scene.TargetGX, j.Scene.TargetGY, rng)
		frames, err := scene.RenderVideo(ground, steps, j.Scene.GX0, j.Scene.GY0, j.Scene.GX1, j.Scene.GY1)
		if err != nil {
			return Detail{}, fmt.Errorf("eval: render: %w", err)
		}
		var results []metrics.FrameResult
		if traced {
			rsp := sp.Child("run", obs.I("run", run), obs.I("frames", len(frames)))
			results = FrameResultsTraced(rsp, j.Stages, j.Det, frames, j.Cond.Channel, rng, j.Cond.MatchIoU)
			rsp.End()
		} else {
			results = FrameResults(j.Det, frames, j.Cond.Channel, rng, j.Cond.MatchIoU)
		}
		d.Runs = append(d.Runs, results)
		s := metrics.Evaluate(results, j.Target)
		scores = append(scores, s)
		sp.EvalRun(obs.EvalRunStats{
			Run: run, PWC: s.PWC, CWC: s.CWC,
			Frames: s.Frames, WrongRun: s.WrongRun, DetectRate: s.DetectRate,
		})
	}
	d.Score = metrics.Average(scores)
	sp.EvalScore(obs.EvalScoreStats{
		PWC: d.Score.PWC, CWC: d.Score.CWC, Frames: d.Score.Frames,
		WrongRun: d.Score.WrongRun, DetectRate: d.Score.DetectRate, Runs: j.Cond.Runs,
	})
	return d, nil
}

// RunScenario evaluates one patch (nil = no attack) under one challenge,
// averaging cond.Runs repetitions with per-run print jobs and trajectories.
// target is the attacker's class t (needed even without a patch: the
// no-attack row checks that the clean detector never reports t).
func RunScenario(det *yolo.Model, cam scene.Camera, sc attack.Scene, p *attack.Patch,
	target scene.Class, ch scene.Challenge, cond Condition) (metrics.Score, error) {

	d, err := RunJob(Job{Det: det, Cam: cam, Scene: sc, Patch: p, Target: target, Ch: ch, Cond: cond})
	if err != nil {
		return metrics.Score{}, err
	}
	return d.Score, nil
}

// Row is one table row: a method name and its score per challenge.
type Row struct {
	Name   string
	Scores map[string]metrics.Score
}

// RunRow evaluates a patch across the named challenges.
func RunRow(det *yolo.Model, cam scene.Camera, sc attack.Scene, p *attack.Patch,
	target scene.Class, name string, challengeNames []string, cond Condition) (Row, error) {

	row := Row{Name: name, Scores: make(map[string]metrics.Score, len(challengeNames))}
	for _, cn := range challengeNames {
		ch := scene.Challenges(cn)[0]
		s, err := RunScenario(det, cam, sc, p, target, ch, cond)
		if err != nil {
			return Row{}, fmt.Errorf("challenge %s: %w", cn, err)
		}
		row.Scores[cn] = s
	}
	return row, nil
}

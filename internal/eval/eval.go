// Package eval runs the paper's experimental protocol: deploy a patch
// (digitally or through the print-and-capture channel), drive the camera
// through a challenge (rotation / speed / angles), score every frame with
// the victim detector, and compute PWC/CWC. It also formats results in the
// paper's table layout.
package eval

import (
	"fmt"
	"math/rand"

	"roadtrojan/internal/attack"
	"roadtrojan/internal/metrics"
	"roadtrojan/internal/physical"
	"roadtrojan/internal/scene"
	"roadtrojan/internal/yolo"
)

// Condition fixes the evaluation environment.
type Condition struct {
	Channel physical.Channel
	// Runs averages this many repetitions (the paper uses 3).
	Runs int
	Seed int64
	// MatchIoU is the detection↔target association threshold.
	MatchIoU float64
}

// DefaultCondition is three physical runs.
func DefaultCondition() Condition {
	return Condition{Channel: physical.RealWorld(), Runs: 3, Seed: 100, MatchIoU: 0.2}
}

// Digital returns the digital-world condition (no print/capture loss).
func Digital() Condition {
	c := DefaultCondition()
	c.Channel = physical.Digital()
	return c
}

// ScoreVideo classifies the target in every frame and scores the video.
func ScoreVideo(det *yolo.Model, frames []scene.VideoFrame, target scene.Class,
	ch physical.Channel, rng *rand.Rand, matchIoU float64) metrics.Score {

	results := make([]metrics.FrameResult, 0, len(frames))
	opts := yolo.DefaultDecode()
	for _, f := range frames {
		img := f.Image
		if ch.Enabled {
			img = ch.Capture.Apply(rng, img)
		}
		if !f.TargetOK {
			results = append(results, metrics.FrameResult{})
			continue
		}
		batch := img.Reshape(1, 3, img.Dim(1), img.Dim(2))
		heads := det.Forward(batch)
		dets := det.DecodeSample(heads, 0, opts)
		d, ok := yolo.MatchTarget(dets, f.TargetBox, matchIoU)
		if !ok {
			results = append(results, metrics.FrameResult{})
			continue
		}
		results = append(results, metrics.FrameResult{Detected: true, Class: d.Class, Confidence: d.Confidence})
	}
	return metrics.Evaluate(results, target)
}

// RunScenario evaluates one patch (nil = no attack) under one challenge,
// averaging cond.Runs repetitions with per-run print jobs and trajectories.
// target is the attacker's class t (needed even without a patch: the
// no-attack row checks that the clean detector never reports t).
func RunScenario(det *yolo.Model, cam scene.Camera, sc attack.Scene, p *attack.Patch,
	target scene.Class, ch scene.Challenge, cond Condition) (metrics.Score, error) {

	det.SetTraining(false)
	var scores []metrics.Score
	for run := 0; run < cond.Runs; run++ {
		rng := rand.New(rand.NewSource(cond.Seed + int64(run)*7919))
		ground := sc.Ground
		if p != nil {
			var err error
			ground, err = attack.Deploy(sc, p, cond.Channel, rng)
			if err != nil {
				return metrics.Score{}, fmt.Errorf("eval: deploy: %w", err)
			}
		}
		steps := scene.BuildTrajectory(cam, ch, sc.TargetGX, sc.TargetGY, rng)
		frames, err := scene.RenderVideo(ground, steps, sc.GX0, sc.GY0, sc.GX1, sc.GY1)
		if err != nil {
			return metrics.Score{}, fmt.Errorf("eval: render: %w", err)
		}
		scores = append(scores, ScoreVideo(det, frames, target, cond.Channel, rng, cond.MatchIoU))
	}
	return metrics.Average(scores), nil
}

// Row is one table row: a method name and its score per challenge.
type Row struct {
	Name   string
	Scores map[string]metrics.Score
}

// RunRow evaluates a patch across the named challenges.
func RunRow(det *yolo.Model, cam scene.Camera, sc attack.Scene, p *attack.Patch,
	target scene.Class, name string, challengeNames []string, cond Condition) (Row, error) {

	row := Row{Name: name, Scores: make(map[string]metrics.Score, len(challengeNames))}
	for _, cn := range challengeNames {
		ch := scene.Challenges(cn)[0]
		s, err := RunScenario(det, cam, sc, p, target, ch, cond)
		if err != nil {
			return Row{}, fmt.Errorf("challenge %s: %w", cn, err)
		}
		row.Scores[cn] = s
	}
	return row, nil
}

package tensor

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// naiveConv2D is an unoptimized reference implementation used to validate
// the im2col-based Conv2D.
func naiveConv2D(input, weight, bias *Tensor, stride, pad int) *Tensor {
	n, c, h, w := input.Dim(0), input.Dim(1), input.Dim(2), input.Dim(3)
	oc, _, kh, kw := weight.Dim(0), weight.Dim(1), weight.Dim(2), weight.Dim(3)
	oh := ConvOut(h, kh, stride, pad)
	ow := ConvOut(w, kw, stride, pad)
	out := New(n, oc, oh, ow)
	for s := 0; s < n; s++ {
		for o := 0; o < oc; o++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					sum := 0.0
					if bias != nil {
						sum = bias.At(o)
					}
					for ch := 0; ch < c; ch++ {
						for ky := 0; ky < kh; ky++ {
							for kx := 0; kx < kw; kx++ {
								sy := oy*stride - pad + ky
								sx := ox*stride - pad + kx
								if sy < 0 || sy >= h || sx < 0 || sx >= w {
									continue
								}
								sum += input.At(s, ch, sy, sx) * weight.At(o, ch, ky, kx)
							}
						}
					}
					out.Set(sum, s, o, oy, ox)
				}
			}
		}
	}
	return out
}

func TestConvOut(t *testing.T) {
	tests := []struct {
		in, k, s, p, want int
	}{
		{8, 3, 1, 1, 8},
		{8, 3, 2, 1, 4},
		{8, 2, 2, 0, 4},
		{7, 3, 1, 0, 5},
		{64, 3, 2, 1, 32},
	}
	for _, tt := range tests {
		if got := ConvOut(tt.in, tt.k, tt.s, tt.p); got != tt.want {
			t.Errorf("ConvOut(%d,%d,%d,%d) = %d, want %d", tt.in, tt.k, tt.s, tt.p, got, tt.want)
		}
	}
}

func TestConv2DMatchesNaive(t *testing.T) {
	tests := []struct {
		name              string
		n, c, h, w        int
		oc, k, stride, pd int
		bias              bool
	}{
		{name: "3x3 same", n: 2, c: 3, h: 8, w: 8, oc: 4, k: 3, stride: 1, pd: 1, bias: true},
		{name: "3x3 stride2", n: 1, c: 2, h: 9, w: 9, oc: 3, k: 3, stride: 2, pd: 1, bias: false},
		{name: "1x1", n: 2, c: 4, h: 5, w: 5, oc: 2, k: 1, stride: 1, pd: 0, bias: true},
		{name: "5x5 nopad", n: 1, c: 1, h: 7, w: 7, oc: 1, k: 5, stride: 1, pd: 0, bias: false},
		{name: "nonsquare input", n: 1, c: 2, h: 6, w: 10, oc: 3, k: 3, stride: 1, pd: 1, bias: true},
	}
	rng := rand.New(rand.NewSource(7))
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			in := NewRandN(rng, 1, tt.n, tt.c, tt.h, tt.w)
			wt := NewRandN(rng, 1, tt.oc, tt.c, tt.k, tt.k)
			var b *Tensor
			if tt.bias {
				b = NewRandN(rng, 1, tt.oc)
			}
			got := Conv2D(in, wt, b, tt.stride, tt.pd)
			want := naiveConv2D(in, wt, b, tt.stride, tt.pd)
			if d := MaxAbsDiff(got, want); d > 1e-10 {
				t.Fatalf("Conv2D deviates from naive by %v", d)
			}
		})
	}
}

func TestConv2DBackwardNumericGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	in := NewRandN(rng, 1, 1, 2, 5, 5)
	wt := NewRandN(rng, 0.5, 3, 2, 3, 3)
	bias := NewRandN(rng, 0.5, 3)
	stride, pad := 1, 1

	// Loss = sum(conv * probe): dOut = probe.
	out := Conv2D(in, wt, bias, stride, pad)
	probe := NewRandN(rng, 1, out.Shape()...)
	loss := func() float64 { return Dot(Conv2D(in, wt, bias, stride, pad), probe) }

	dW := New(wt.Shape()...)
	dB := New(3)
	dIn := Conv2DBackward(in, wt, probe, stride, pad, dW, dB)

	const eps = 1e-6
	check := func(name string, params *Tensor, grad *Tensor) {
		for i := 0; i < params.Len(); i += 1 + params.Len()/17 {
			orig := params.Data()[i]
			params.Data()[i] = orig + eps
			lp := loss()
			params.Data()[i] = orig - eps
			lm := loss()
			params.Data()[i] = orig
			num := (lp - lm) / (2 * eps)
			if diff := num - grad.Data()[i]; diff > 1e-5 || diff < -1e-5 {
				t.Fatalf("%s grad[%d]: analytic %v numeric %v", name, i, grad.Data()[i], num)
			}
		}
	}
	check("weight", wt, dW)
	check("bias", bias, dB)
	check("input", in, dIn)
}

func TestIm2ColCol2ImAdjoint(t *testing.T) {
	// <Im2Col(x), y> must equal <x, Col2Im(y)> (adjoint property).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c, h, w := 1+r.Intn(3), 3+r.Intn(5), 3+r.Intn(5)
		k := 1 + r.Intn(3)
		stride := 1 + r.Intn(2)
		pad := r.Intn(2)
		if h+2*pad < k || w+2*pad < k {
			return true
		}
		oh := ConvOut(h, k, stride, pad)
		ow := ConvOut(w, k, stride, pad)
		x := NewRandN(r, 1, c*h*w)
		y := NewRandN(r, 1, c*k*k*oh*ow)
		cols := make([]float64, c*k*k*oh*ow)
		Im2Col(x.Data(), c, h, w, k, k, stride, pad, cols)
		lhs := Dot(FromSlice(cols, len(cols)), y)
		img := make([]float64, c*h*w)
		Col2Im(y.Data(), c, h, w, k, k, stride, pad, img)
		rhs := Dot(x, FromSlice(img, len(img)))
		d := lhs - rhs
		return d < 1e-9 && d > -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxPool2DStride2(t *testing.T) {
	in := FromSlice([]float64{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 10, 13, 14,
		11, 12, 15, 16,
	}, 1, 1, 4, 4)
	out, arg := MaxPool2D(in, 2, 2)
	want := []float64{4, 8, 12, 16}
	for i, v := range want {
		if out.Data()[i] != v {
			t.Fatalf("pool = %v, want %v", out.Data(), want)
		}
	}
	dOut := Ones(1, 1, 2, 2)
	dIn := MaxPool2DBackward([]int{1, 1, 4, 4}, dOut, arg)
	if dIn.At(0, 0, 1, 1) != 1 || dIn.At(0, 0, 0, 0) != 0 {
		t.Fatalf("pool backward routed wrong: %v", dIn.Data())
	}
}

func TestMaxPool2DStride1KeepsSize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := NewRandN(rng, 1, 1, 2, 6, 6)
	out, _ := MaxPool2D(in, 2, 1)
	if out.Dim(2) != 6 || out.Dim(3) != 6 {
		t.Fatalf("stride-1 pool shape = %v, want same HxW", out.Shape())
	}
	// Every output must be >= the input at the same position (max over a
	// window that includes it).
	for i := range in.Data() {
		if out.Data()[i] < in.Data()[i] {
			t.Fatal("stride-1 max pool produced value below input")
		}
	}
}

func TestUpsample2DAndBackward(t *testing.T) {
	in := FromSlice([]float64{1, 2, 3, 4}, 1, 1, 2, 2)
	up := Upsample2D(in, 2)
	if up.Dim(2) != 4 || up.At(0, 0, 0, 1) != 1 || up.At(0, 0, 2, 2) != 4 {
		t.Fatalf("upsample wrong: %v", up.Data())
	}
	dOut := Ones(1, 1, 4, 4)
	dIn := Upsample2DBackward(dOut, 2)
	for _, v := range dIn.Data() {
		if v != 4 {
			t.Fatalf("upsample backward should sum 4 grads, got %v", dIn.Data())
		}
	}
}

func TestPropPoolUpsampleShapes(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := 2 * (1 + r.Intn(6))
		in := NewRandN(r, 1, 1, 1, h, h)
		out, _ := MaxPool2D(in, 2, 2)
		up := Upsample2D(out, 2)
		return up.Dim(2) == h && up.Dim(3) == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := NewRandN(rng, 1, 128, 128)
	y := NewRandN(rng, 1, 128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkConv2D64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	in := NewRandN(rng, 1, 1, 16, 64, 64)
	wt := NewRandN(rng, 0.1, 32, 16, 3, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2D(in, wt, nil, 1, 1)
	}
}

func TestConv2DBiasNilVsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	in := NewRandN(rng, 1, 1, 2, 5, 5)
	wt := NewRandN(rng, 1, 3, 2, 3, 3)
	zero := New(3)
	a := Conv2D(in, wt, nil, 1, 1)
	b := Conv2D(in, wt, zero, 1, 1)
	if MaxAbsDiff(a, b) != 0 {
		t.Fatal("nil bias must equal zero bias")
	}
}

func TestParallelForCoversAll(t *testing.T) {
	hits := make([]int32, 100)
	ParallelFor(100, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
	// n=0 must be a no-op.
	ParallelFor(0, func(i int) { t.Fatal("called for n=0") })
}

package tensor

import (
	"fmt"
	"math"
)

// Apply replaces every element x with f(x) in place and returns t.
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
	return t
}

// Map returns a new tensor whose elements are f applied to t's elements.
func (t *Tensor) Map(f func(float64) float64) *Tensor {
	out := New(t.shape...)
	for i, v := range t.data {
		out.data[i] = f(v)
	}
	return out
}

// Scale multiplies every element by a in place and returns t.
func (t *Tensor) Scale(a float64) *Tensor {
	for i := range t.data {
		t.data[i] *= a
	}
	return t
}

// AddScalar adds a to every element in place and returns t.
func (t *Tensor) AddScalar(a float64) *Tensor {
	for i := range t.data {
		t.data[i] += a
	}
	return t
}

// Clamp limits every element to [lo, hi] in place and returns t.
func (t *Tensor) Clamp(lo, hi float64) *Tensor {
	for i, v := range t.data {
		if v < lo {
			t.data[i] = lo
		} else if v > hi {
			t.data[i] = hi
		}
	}
	return t
}

func sameLen(a, b *Tensor, op string) {
	if len(a.data) != len(b.data) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.shape, b.shape))
	}
}

// AddInPlace adds u elementwise into t and returns t.
func (t *Tensor) AddInPlace(u *Tensor) *Tensor {
	sameLen(t, u, "AddInPlace")
	for i, v := range u.data {
		t.data[i] += v
	}
	return t
}

// SubInPlace subtracts u elementwise from t and returns t.
func (t *Tensor) SubInPlace(u *Tensor) *Tensor {
	sameLen(t, u, "SubInPlace")
	for i, v := range u.data {
		t.data[i] -= v
	}
	return t
}

// MulInPlace multiplies t elementwise by u and returns t.
func (t *Tensor) MulInPlace(u *Tensor) *Tensor {
	sameLen(t, u, "MulInPlace")
	for i, v := range u.data {
		t.data[i] *= v
	}
	return t
}

// Axpy computes t += a*u elementwise and returns t.
func (t *Tensor) Axpy(a float64, u *Tensor) *Tensor {
	sameLen(t, u, "Axpy")
	for i, v := range u.data {
		t.data[i] += a * v
	}
	return t
}

// Add returns t + u elementwise.
func Add(t, u *Tensor) *Tensor {
	sameLen(t, u, "Add")
	out := New(t.shape...)
	for i := range t.data {
		out.data[i] = t.data[i] + u.data[i]
	}
	return out
}

// Sub returns t - u elementwise.
func Sub(t, u *Tensor) *Tensor {
	sameLen(t, u, "Sub")
	out := New(t.shape...)
	for i := range t.data {
		out.data[i] = t.data[i] - u.data[i]
	}
	return out
}

// Mul returns t * u elementwise (Hadamard product).
func Mul(t, u *Tensor) *Tensor {
	sameLen(t, u, "Mul")
	out := New(t.shape...)
	for i := range t.data {
		out.data[i] = t.data[i] * u.data[i]
	}
	return out
}

// Div returns t / u elementwise.
func Div(t, u *Tensor) *Tensor {
	sameLen(t, u, "Div")
	out := New(t.shape...)
	for i := range t.data {
		out.data[i] = t.data[i] / u.data[i]
	}
	return out
}

// Dot returns the inner product of t and u viewed as flat vectors.
func Dot(t, u *Tensor) float64 {
	sameLen(t, u, "Dot")
	s := 0.0
	for i := range t.data {
		s += t.data[i] * u.data[i]
	}
	return s
}

// MaxAbsDiff returns max_i |t_i - u_i|; a convenience for tests.
func MaxAbsDiff(t, u *Tensor) float64 {
	sameLen(t, u, "MaxAbsDiff")
	m := 0.0
	for i := range t.data {
		d := math.Abs(t.data[i] - u.data[i])
		if d > m {
			m = d
		}
	}
	return m
}

// Softmax returns row-wise softmax of a [rows, cols] tensor, computed
// stably by subtracting each row's maximum.
func Softmax(t *Tensor) *Tensor {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Softmax requires rank-2 input, got %v", t.shape))
	}
	rows, cols := t.shape[0], t.shape[1]
	out := New(rows, cols)
	for r := 0; r < rows; r++ {
		row := t.data[r*cols : (r+1)*cols]
		orow := out.data[r*cols : (r+1)*cols]
		m := math.Inf(-1)
		for _, v := range row {
			if v > m {
				m = v
			}
		}
		s := 0.0
		for i, v := range row {
			e := math.Exp(v - m)
			orow[i] = e
			s += e
		}
		inv := 1 / s
		for i := range orow {
			orow[i] *= inv
		}
	}
	return out
}

// SumAxis0 sums a [rows, cols] tensor over its rows, returning [cols].
func SumAxis0(t *Tensor) *Tensor {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: SumAxis0 requires rank-2 input, got %v", t.shape))
	}
	rows, cols := t.shape[0], t.shape[1]
	out := New(cols)
	for r := 0; r < rows; r++ {
		row := t.data[r*cols : (r+1)*cols]
		for c, v := range row {
			out.data[c] += v
		}
	}
	return out
}

// Transpose2D returns the transpose of a [rows, cols] tensor.
func Transpose2D(t *Tensor) *Tensor {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose2D requires rank-2 input, got %v", t.shape))
	}
	rows, cols := t.shape[0], t.shape[1]
	out := New(cols, rows)
	transposeInto(out.data, t.data, rows, cols)
	return out
}

// Transpose2DInto writes the transpose of the [rows, cols] tensor t into
// dst (length rows*cols, e.g. arena scratch) and returns a [cols, rows]
// tensor wrapping dst. The allocation-free sibling of Transpose2D.
func Transpose2DInto(dst []float64, t *Tensor) *Tensor {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose2DInto requires rank-2 input, got %v", t.shape))
	}
	rows, cols := t.shape[0], t.shape[1]
	transposeInto(dst, t.data, rows, cols)
	return FromSlice(dst, cols, rows)
}

// Concat concatenates tensors along axis 0-based dim. All inputs must agree
// on every other dimension.
func Concat(dim int, ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: Concat of no tensors")
	}
	rank := ts[0].Rank()
	if dim < 0 || dim >= rank {
		panic(fmt.Sprintf("tensor: Concat dim %d out of range for rank %d", dim, rank))
	}
	outShape := ts[0].Shape()
	for _, t := range ts[1:] {
		if t.Rank() != rank {
			panic("tensor: Concat rank mismatch")
		}
		for i := 0; i < rank; i++ {
			if i == dim {
				continue
			}
			if t.shape[i] != outShape[i] {
				panic(fmt.Sprintf("tensor: Concat shape mismatch %v vs %v on dim %d", t.shape, outShape, i))
			}
		}
		outShape[dim] += t.shape[dim]
	}
	out := New(outShape...)
	// outer = product of dims before `dim`; inner = product after.
	outer, inner := 1, 1
	for i := 0; i < dim; i++ {
		outer *= outShape[i]
	}
	for i := dim + 1; i < rank; i++ {
		inner *= outShape[i]
	}
	outRow := outShape[dim] * inner
	off := 0
	for _, t := range ts {
		tRow := t.shape[dim] * inner
		for o := 0; o < outer; o++ {
			copy(out.data[o*outRow+off:o*outRow+off+tRow], t.data[o*tRow:(o+1)*tRow])
		}
		off += tRow
	}
	return out
}

// SplitDim splits t along dim into pieces of the given sizes, the inverse of
// Concat. The returned tensors are copies.
func SplitDim(t *Tensor, dim int, sizes ...int) []*Tensor {
	rank := t.Rank()
	if dim < 0 || dim >= rank {
		panic(fmt.Sprintf("tensor: SplitDim dim %d out of range for rank %d", dim, rank))
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != t.shape[dim] {
		panic(fmt.Sprintf("tensor: SplitDim sizes %v do not sum to dim %d of %v", sizes, dim, t.shape))
	}
	outer, inner := 1, 1
	for i := 0; i < dim; i++ {
		outer *= t.shape[i]
	}
	for i := dim + 1; i < rank; i++ {
		inner *= t.shape[i]
	}
	tRow := t.shape[dim] * inner
	outs := make([]*Tensor, len(sizes))
	off := 0
	for k, s := range sizes {
		shape := t.Shape()
		shape[dim] = s
		piece := New(shape...)
		pRow := s * inner
		for o := 0; o < outer; o++ {
			copy(piece.data[o*pRow:(o+1)*pRow], t.data[o*tRow+off:o*tRow+off+pRow])
		}
		outs[k] = piece
		off += pRow
	}
	return outs
}

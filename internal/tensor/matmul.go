package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the minimum amount of scalar work before MatMul fans
// out across goroutines; below it the scheduling overhead dominates.
const parallelThreshold = 1 << 15

// MatMul returns a @ b for a [m,k] tensor and a [k,n] tensor, computing the
// [m,n] product with row-parallel ikj loops (cache-friendly for row-major
// data).
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires rank-2 inputs, got %v and %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimensions differ: %v @ %v", a.shape, b.shape))
	}
	out := New(m, n)
	matMulInto(out.data, a.data, b.data, m, k, n, false)
	return out
}

// MatMulAccum computes dst += a @ b where dst is an existing [m,n] tensor.
func MatMulAccum(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if b.shape[0] != k || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulAccum shape mismatch %v += %v @ %v", dst.shape, a.shape, b.shape))
	}
	matMulInto(dst.data, a.data, b.data, m, k, n, true)
}

func matMulInto(dst, a, b []float64, m, k, n int, accum bool) {
	work := m * k * n
	workers := runtime.GOMAXPROCS(0)
	if work < parallelThreshold || workers == 1 || m == 1 {
		matMulRows(dst, a, b, 0, m, k, n, accum)
		return
	}
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulRows(dst, a, b, lo, hi, k, n, accum)
		}(lo, hi)
	}
	wg.Wait()
}

// matMulRows computes rows [lo,hi) of dst = a@b with an ikj ordering so the
// inner loop streams through contiguous memory in both b and dst.
func matMulRows(dst, a, b []float64, lo, hi, k, n int, accum bool) {
	for i := lo; i < hi; i++ {
		drow := dst[i*n : (i+1)*n]
		if !accum {
			for j := range drow {
				drow[j] = 0
			}
		}
		arow := a[i*k : (i+1)*k]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatVec returns a @ x for a [m,k] matrix and a length-k vector, as [m].
func MatVec(a, x *Tensor) *Tensor {
	if a.Rank() != 2 || x.Rank() != 1 {
		panic(fmt.Sprintf("tensor: MatVec requires [m,k] and [k], got %v and %v", a.shape, x.shape))
	}
	m, k := a.shape[0], a.shape[1]
	if x.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatVec dimension mismatch %v @ %v", a.shape, x.shape))
	}
	out := New(m)
	for i := 0; i < m; i++ {
		row := a.data[i*k : (i+1)*k]
		s := 0.0
		for j, v := range row {
			s += v * x.data[j]
		}
		out.data[i] = s
	}
	return out
}

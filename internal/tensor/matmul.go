package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the minimum amount of scalar work before MatMul fans
// out across goroutines; below it the scheduling overhead dominates.
const parallelThreshold = 1 << 15

// Cache-blocking parameters of the production kernel. One [mmKC, mmNC]
// panel of b (64 KiB) stays resident while every dst row in the current
// row range consumes it, so b is streamed from cache rather than memory
// when the row range is taller than one.
const (
	mmKC = 128 // k-tile: rows of b per panel
	mmNC = 64  // n-tile: columns of b per panel, multiple of the 8-wide unroll
)

// MatMul returns a @ b for a [m,k] tensor and a [k,n] tensor, computing the
// [m,n] product with the cache-blocked kernel (row-parallel above the work
// threshold).
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires rank-2 inputs, got %v and %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimensions differ: %v @ %v", a.shape, b.shape))
	}
	out := New(m, n)
	matMulInto(out.data, a.data, b.data, m, k, n, false)
	return out
}

// MatMulAccum computes dst += a @ b where dst is an existing [m,n] tensor.
func MatMulAccum(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if b.shape[0] != k || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulAccum shape mismatch %v += %v @ %v", dst.shape, a.shape, b.shape))
	}
	matMulInto(dst.data, a.data, b.data, m, k, n, true)
}

func matMulInto(dst, a, b []float64, m, k, n int, accum bool) {
	work := m * k * n
	workers := runtime.GOMAXPROCS(0)
	if work < parallelThreshold || workers == 1 || m == 1 {
		matMulRows(dst, a, b, 0, m, k, n, accum)
		return
	}
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulRows(dst, a, b, lo, hi, k, n, accum)
		}(lo, hi)
	}
	wg.Wait()
}

// matMulRows computes rows [lo,hi) of dst = a@b (or dst += a@b when accum),
// dispatching to the reference kernel when SetRefKernels selected it.
func matMulRows(dst, a, b []float64, lo, hi, k, n int, accum bool) {
	if refKernels {
		matMulRowsRef(dst, a, b, lo, hi, k, n, accum)
		return
	}
	matMulRowsBlocked(dst, a, b, lo, hi, k, n, accum)
}

// packThreshold is the minimum m*k*n work before matMulRowsBlocked packs b
// tiles into micro-panels; below it the packing pass costs more than the
// strided loads it removes.
const packThreshold = 1 << 14

// packMinRows is the minimum row count before packing pays: the packed
// panel is amortized across the row range, and below this many rows the
// relayout costs more than the strided loads it eliminates.
const packMinRows = 12

// Shape gates for the streaming kernel: when the row range is too short for
// packing to amortize its relayout AND k is small with wide rows (the first
// conv layer: k = inCh*KH*KW tens, n = OH*OW thousands, a handful of output
// channels), sequentially streaming whole b rows beats both the strided
// 4-wide tile walk and packing. With many rows the packed kernel holds dst
// in registers and wins, so streaming is strictly a small-row escape hatch.
const (
	streamMaxK = 96
	streamMinN = 256
)

// narrowMaxN: at and below this output width the whole dst row fits a
// handful of registers, and the binding traffic is re-streaming a (the
// weight matrix, megabytes for the deep layers) once per column block. The
// narrow kernel uses 8-column blocks (vs the general kernel's 4) to halve
// the number of passes over a. Deep conv layers on small feature maps
// (n = OH*OW = 16) lower to exactly this shape.
const narrowMaxN = 32

// matMulRowsBlocked is the production kernel: tiled over k (mmKC) and n
// (mmNC) with a 4-wide j unroll that keeps four accumulators in registers
// across each k-panel, quartering the dst load/store traffic of the
// reference ikj loop. Large products additionally repack each b tile into
// column micro-panels so the inner loop streams b sequentially instead of
// striding by n. For every output element the contributions arrive in
// strictly ascending k order with the same zero-skip rule as the reference
// kernel, so the result is bit-identical to matMulRowsRef (the parity tests
// enforce this across random shapes).
func matMulRowsBlocked(dst, a, b []float64, lo, hi, k, n int, accum bool) {
	if !accum {
		for i := lo; i < hi; i++ {
			drow := dst[i*n : (i+1)*n]
			for j := range drow {
				drow[j] = 0
			}
		}
	}
	if hi-lo < packMinRows && k <= streamMaxK && n >= streamMinN {
		matMulRowsStream(dst, a, b, lo, hi, k, n)
		return
	}
	if (hi-lo)*k*n >= packThreshold {
		if n >= 8 && n <= narrowMaxN {
			matMulRowsNarrow(dst, a, b, lo, hi, k, n)
			return
		}
		if n >= 4 && hi-lo >= packMinRows {
			matMulRowsPacked(dst, a, b, lo, hi, k, n)
			return
		}
	}
	for p0 := 0; p0 < k; p0 += mmKC {
		p1 := p0 + mmKC
		if p1 > k {
			p1 = k
		}
		for j0 := 0; j0 < n; j0 += mmNC {
			j1 := j0 + mmNC
			if j1 > n {
				j1 = n
			}
			for i := lo; i < hi; i++ {
				arow := a[i*k : (i+1)*k]
				drow := dst[i*n : (i+1)*n]
				jj := j0
				for ; jj+4 <= j1; jj += 4 {
					acc0, acc1, acc2, acc3 := drow[jj], drow[jj+1], drow[jj+2], drow[jj+3]
					off := p0*n + jj
					for p := p0; p < p1; p++ {
						av := arow[p]
						if av != 0 {
							bp := b[off : off+4]
							acc0 += av * bp[0]
							acc1 += av * bp[1]
							acc2 += av * bp[2]
							acc3 += av * bp[3]
						}
						off += n
					}
					drow[jj], drow[jj+1], drow[jj+2], drow[jj+3] = acc0, acc1, acc2, acc3
				}
				for ; jj < j1; jj++ {
					acc := drow[jj]
					off := p0*n + jj
					for p := p0; p < p1; p++ {
						av := arow[p]
						if av != 0 {
							acc += av * b[off]
						}
						off += n
					}
					drow[jj] = acc
				}
			}
		}
	}
}

// matMulRowsPacked is the large-product path of matMulRowsBlocked. Each
// [kc, width] tile of b is repacked once into 4-column micro-panels laid
// out sequentially in p — the inner register loop then reads pack linearly
// instead of striding n doubles through b, which is what starves the
// prefetcher on conv-sized products (n = OH*OW in the thousands). The
// micro-kernel computes a 2×4 block of dst per pass: two rows share every
// packed b load, halving the panel traffic per multiply-add (the panel is
// what streams from L2 on every row pass), while the eight accumulators and
// the two a values still fit the register file without spills. The packing
// is a pure relayout: per output element the accumulation order over p and
// the av==0 skip are exactly those of the reference kernel, so bit-parity
// is preserved. dst rows must already hold their initial values (zeroed or
// accumulating).
func matMulRowsPacked(dst, a, b []float64, lo, hi, k, n int) {
	// One tile of packed micro-panels. Stack-allocated: goroutine-private by
	// construction, no arena traffic, and the one-time zeroing is below the
	// packThreshold noise floor.
	var pack [mmKC * mmNC]float64
	for p0 := 0; p0 < k; p0 += mmKC {
		p1 := p0 + mmKC
		if p1 > k {
			p1 = k
		}
		kc := p1 - p0
		for j0 := 0; j0 < n; j0 += mmNC {
			j1 := j0 + mmNC
			if j1 > n {
				j1 = n
			}
			width := j1 - j0
			width4 := width &^ 3
			// Pack: micro-panel jg holds columns [j0+jg, j0+jg+4) for all p
			// in the tile, contiguous in p. Columns past width4 stay
			// unpacked and are handled by the scalar tail below.
			for p := 0; p < kc; p++ {
				brow := b[(p0+p)*n+j0 : (p0+p)*n+j0+width4]
				o := p * 4
				for jg := 0; jg+4 <= width4; jg += 4 {
					copy(pack[o:o+4], brow[jg:jg+4])
					o += kc * 4
				}
			}
			i := lo
			for ; i+2 <= hi; i += 2 {
				arow0 := a[i*k+p0 : i*k+p1]
				arow1 := a[(i+1)*k+p0 : (i+1)*k+p1]
				drow0 := dst[i*n : (i+1)*n]
				drow1 := dst[(i+1)*n : (i+2)*n]
				jj := j0
				for ; jj+4 <= j0+width4; jj += 4 {
					acc00, acc01, acc02, acc03 := drow0[jj], drow0[jj+1], drow0[jj+2], drow0[jj+3]
					acc10, acc11, acc12, acc13 := drow1[jj], drow1[jj+1], drow1[jj+2], drow1[jj+3]
					panel := pack[(jj-j0)*kc : (jj-j0)*kc+kc*4]
					for p, av0 := range arow0 {
						bp := panel[:4]
						b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
						panel = panel[4:]
						if av0 != 0 {
							acc00 += av0 * b0
							acc01 += av0 * b1
							acc02 += av0 * b2
							acc03 += av0 * b3
						}
						if av1 := arow1[p]; av1 != 0 {
							acc10 += av1 * b0
							acc11 += av1 * b1
							acc12 += av1 * b2
							acc13 += av1 * b3
						}
					}
					drow0[jj], drow0[jj+1], drow0[jj+2], drow0[jj+3] = acc00, acc01, acc02, acc03
					drow1[jj], drow1[jj+1], drow1[jj+2], drow1[jj+3] = acc10, acc11, acc12, acc13
				}
				for ; jj < j1; jj++ {
					acc0, acc1 := drow0[jj], drow1[jj]
					off := p0*n + jj
					for p, av0 := range arow0 {
						bv := b[off]
						if av0 != 0 {
							acc0 += av0 * bv
						}
						if av1 := arow1[p]; av1 != 0 {
							acc1 += av1 * bv
						}
						off += n
					}
					drow0[jj], drow1[jj] = acc0, acc1
				}
			}
			if i < hi {
				arow := a[i*k+p0 : i*k+p1]
				drow := dst[i*n : (i+1)*n]
				jj := j0
				for ; jj+4 <= j0+width4; jj += 4 {
					acc0, acc1, acc2, acc3 := drow[jj], drow[jj+1], drow[jj+2], drow[jj+3]
					panel := pack[(jj-j0)*kc : (jj-j0)*kc+kc*4]
					for _, av := range arow {
						if av != 0 {
							bp := panel[:4]
							acc0 += av * bp[0]
							acc1 += av * bp[1]
							acc2 += av * bp[2]
							acc3 += av * bp[3]
						}
						panel = panel[4:]
					}
					drow[jj], drow[jj+1], drow[jj+2], drow[jj+3] = acc0, acc1, acc2, acc3
				}
				for ; jj < j1; jj++ {
					acc := drow[jj]
					off := p0*n + jj
					for _, av := range arow {
						if av != 0 {
							acc += av * b[off]
						}
						off += n
					}
					drow[jj] = acc
				}
			}
		}
	}
}

// matMulRowsNarrow is the narrow-output path (n <= narrowMaxN, the deep
// conv layers where OH*OW has shrunk to a few dozen): b is tiny and packs
// whole k-tiles into L1, so the binding traffic is streaming a — megabytes
// of weights — once per column block. Eight-column register blocks mean a is
// walked only ceil(n/8) times, half as often as the general 4-column
// kernel, and each walk is sequential. Accumulation order and the av==0
// skip per output element match the reference kernel exactly. dst rows must
// already hold their initial values.
func matMulRowsNarrow(dst, a, b []float64, lo, hi, k, n int) {
	var pack [mmKC * narrowMaxN]float64
	n8 := n &^ 7
	for p0 := 0; p0 < k; p0 += mmKC {
		p1 := p0 + mmKC
		if p1 > k {
			p1 = k
		}
		kc := p1 - p0
		// Pack: column block jg holds columns [jg, jg+8) for every p in the
		// tile, contiguous in p. Columns past n8 are handled unpacked.
		for p := 0; p < kc; p++ {
			brow := b[(p0+p)*n : (p0+p)*n+n8]
			o := p * 8
			for jg := 0; jg+8 <= n8; jg += 8 {
				copy(pack[o:o+8], brow[jg:jg+8])
				o += kc * 8
			}
		}
		for i := lo; i < hi; i++ {
			arow := a[i*k+p0 : i*k+p1]
			drow := dst[i*n : i*n+n]
			jj := 0
			for ; jj+8 <= n8; jj += 8 {
				acc0, acc1, acc2, acc3 := drow[jj], drow[jj+1], drow[jj+2], drow[jj+3]
				acc4, acc5, acc6, acc7 := drow[jj+4], drow[jj+5], drow[jj+6], drow[jj+7]
				panel := pack[jj*kc : jj*kc+kc*8]
				for _, av := range arow {
					if av != 0 {
						bp := panel[:8]
						acc0 += av * bp[0]
						acc1 += av * bp[1]
						acc2 += av * bp[2]
						acc3 += av * bp[3]
						acc4 += av * bp[4]
						acc5 += av * bp[5]
						acc6 += av * bp[6]
						acc7 += av * bp[7]
					}
					panel = panel[8:]
				}
				drow[jj], drow[jj+1], drow[jj+2], drow[jj+3] = acc0, acc1, acc2, acc3
				drow[jj+4], drow[jj+5], drow[jj+6], drow[jj+7] = acc4, acc5, acc6, acc7
			}
			for ; jj < n; jj++ {
				acc := drow[jj]
				off := p0*n + jj
				for _, av := range arow {
					if av != 0 {
						acc += av * b[off]
					}
					off += n
				}
				drow[jj] = acc
			}
		}
	}
}

// matMulRowsStream is the small-k, large-n path: b rows are streamed
// sequentially (prefetch-friendly, no strided access) while four dst rows
// consume each b row in one pass, quartering the dst load/store traffic of
// a one-row ikj loop. Per output element the p order and the av==0 skip
// match the reference kernel exactly (the per-row skip just routes through
// the sparse fallback), so bit-parity is preserved. dst rows must already
// hold their initial values.
func matMulRowsStream(dst, a, b []float64, lo, hi, k, n int) {
	i := lo
	for ; i+4 <= hi; i += 4 {
		arow0 := a[i*k : (i+1)*k]
		arow1 := a[(i+1)*k : (i+2)*k]
		arow2 := a[(i+2)*k : (i+3)*k]
		arow3 := a[(i+3)*k : (i+4)*k]
		d0 := dst[i*n : i*n+n]
		d1 := dst[(i+1)*n : (i+1)*n+n]
		d2 := dst[(i+2)*n : (i+2)*n+n]
		d3 := dst[(i+3)*n : (i+3)*n+n]
		for p := 0; p < k; p++ {
			brow := b[p*n : p*n+n]
			av0, av1, av2, av3 := arow0[p], arow1[p], arow2[p], arow3[p]
			if av0 != 0 && av1 != 0 && av2 != 0 && av3 != 0 {
				d0, d1, d2, d3 := d0[:n], d1[:n], d2[:n], d3[:n]
				for j, bv := range brow {
					d0[j] += av0 * bv
					d1[j] += av1 * bv
					d2[j] += av2 * bv
					d3[j] += av3 * bv
				}
				continue
			}
			// Sparse fallback: rows with a zero coefficient skip this b row,
			// exactly as the reference kernel does.
			if av0 != 0 {
				streamAxpy(d0, brow, av0)
			}
			if av1 != 0 {
				streamAxpy(d1, brow, av1)
			}
			if av2 != 0 {
				streamAxpy(d2, brow, av2)
			}
			if av3 != 0 {
				streamAxpy(d3, brow, av3)
			}
		}
	}
	for ; i < hi; i++ {
		arow := a[i*k : (i+1)*k]
		drow := dst[i*n : i*n+n]
		for p, av := range arow {
			if av != 0 {
				streamAxpy(drow, b[p*n:p*n+n], av)
			}
		}
	}
}

// dotRowsNT computes dst[ma,nb] = a[ma,p] @ b[nb,p]^T without materializing
// the transpose: element (i,j) is the dot product of row i of a and row j of
// b, so both operands stream sequentially. This is the weight-gradient shape
// (dW = dOut @ cols^T) where the second operand is only available row-major;
// a transpose-then-matmul detour would cost an extra full pass over cols.
// Per output element the q order is ascending and a zero a coefficient skips
// its contribution, exactly as the reference kernel computes the same
// product from the materialized transpose — bit-parity is preserved.
func dotRowsNT(dst, a, b []float64, ma, nb, p int) {
	i := 0
	for ; i+2 <= ma; i += 2 {
		a0 := a[i*p : (i+1)*p]
		a1 := a[(i+1)*p : (i+2)*p]
		d0 := dst[i*nb : (i+1)*nb]
		d1 := dst[(i+1)*nb : (i+2)*nb]
		j := 0
		for ; j+4 <= nb; j += 4 {
			b0 := b[j*p : j*p+p]
			b1 := b[(j+1)*p : (j+1)*p+p]
			b2 := b[(j+2)*p : (j+2)*p+p]
			b3 := b[(j+3)*p : (j+3)*p+p]
			var acc00, acc01, acc02, acc03 float64
			var acc10, acc11, acc12, acc13 float64
			for q, av0 := range a0 {
				bv0, bv1, bv2, bv3 := b0[q], b1[q], b2[q], b3[q]
				if av0 != 0 {
					acc00 += av0 * bv0
					acc01 += av0 * bv1
					acc02 += av0 * bv2
					acc03 += av0 * bv3
				}
				if av1 := a1[q]; av1 != 0 {
					acc10 += av1 * bv0
					acc11 += av1 * bv1
					acc12 += av1 * bv2
					acc13 += av1 * bv3
				}
			}
			d0[j], d0[j+1], d0[j+2], d0[j+3] = acc00, acc01, acc02, acc03
			d1[j], d1[j+1], d1[j+2], d1[j+3] = acc10, acc11, acc12, acc13
		}
		for ; j < nb; j++ {
			brow := b[j*p : j*p+p]
			var s0, s1 float64
			for q, av0 := range a0 {
				bv := brow[q]
				if av0 != 0 {
					s0 += av0 * bv
				}
				if av1 := a1[q]; av1 != 0 {
					s1 += av1 * bv
				}
			}
			d0[j], d1[j] = s0, s1
		}
	}
	if i < ma {
		arow := a[i*p : (i+1)*p]
		drow := dst[i*nb : (i+1)*nb]
		for j := 0; j < nb; j++ {
			brow := b[j*p : j*p+p]
			var s float64
			for q, av := range arow {
				if av != 0 {
					s += av * brow[q]
				}
			}
			drow[j] = s
		}
	}
}

// streamAxpy computes d += av * brow over one row.
func streamAxpy(d, brow []float64, av float64) {
	d = d[:len(brow)]
	for j, bv := range brow {
		d[j] += av * bv
	}
}

// MatVec returns a @ x for a [m,k] matrix and a length-k vector, as [m].
func MatVec(a, x *Tensor) *Tensor {
	if a.Rank() != 2 || x.Rank() != 1 {
		panic(fmt.Sprintf("tensor: MatVec requires [m,k] and [k], got %v and %v", a.shape, x.shape))
	}
	m, k := a.shape[0], a.shape[1]
	if x.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatVec dimension mismatch %v @ %v", a.shape, x.shape))
	}
	out := New(m)
	for i := 0; i < m; i++ {
		row := a.data[i*k : (i+1)*k]
		s := 0.0
		for j, v := range row {
			s += v * x.data[j]
		}
		out.data[i] = s
	}
	return out
}

package tensor

import (
	"runtime"
	"sync"
)

// This file preserves the pre-optimization kernels verbatim. They are the
// reference oracles: the parity tests assert the blocked/arena kernels
// reproduce them bit for bit, and cmd/benchperf measures them in the same
// process to derive machine-independent speedup ratios for
// BENCH_tensor.json. They allocate per call and serialize gradient
// reduction behind a mutex — never use them on a hot path.

// refKernels routes Conv2D/Conv2DBackward/MatMul through the reference
// implementations when true. Benchmark- and test-harness use only.
var refKernels bool

// SetRefKernels switches the conv/matmul entry points between the
// production kernels (false, the default) and the pre-optimization
// reference kernels (true). It is meant for parity tests and
// cmd/benchperf's before/after measurement ONLY: the flag is process-wide
// and unsynchronized, so it must not be flipped while any tensor kernel is
// running on another goroutine.
func SetRefKernels(on bool) { refKernels = on }

// RefKernelsEnabled reports whether the reference kernels are routing. The
// fused eval modules consult it so a ref-kernel window measures (and a parity
// test compares against) the genuinely unfused pipeline: when it is true,
// nn.ConvBNLeaky falls back to its conv→BN→leaky submodule chain.
func RefKernelsEnabled() bool { return refKernels }

// matMulRowsRef computes rows [lo,hi) of dst = a@b with the original
// unblocked ikj ordering: the inner loop streams through contiguous memory
// in both b and dst, re-loading and re-storing dst once per multiply.
func matMulRowsRef(dst, a, b []float64, lo, hi, k, n int, accum bool) {
	for i := lo; i < hi; i++ {
		drow := dst[i*n : (i+1)*n]
		if !accum {
			for j := range drow {
				drow[j] = 0
			}
		}
		arow := a[i*k : (i+1)*k]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// conv2DRef is the original Conv2D: fresh im2col scratch per sample per
// call, feeder-channel work distribution.
func conv2DRef(input, weight, bias *Tensor, stride, pad int) *Tensor {
	n, c, h, w := input.shape[0], input.shape[1], input.shape[2], input.shape[3]
	oc, _, kh, kw := weight.shape[0], weight.shape[1], weight.shape[2], weight.shape[3]
	oh := ConvOut(h, kh, stride, pad)
	ow := ConvOut(w, kw, stride, pad)
	out := New(n, oc, oh, ow)
	wmat := weight.Reshape(oc, c*kh*kw)
	colLen := c * kh * kw * oh * ow

	parallelForRef(n, func(s int) {
		cols := make([]float64, colLen)
		Im2Col(input.data[s*c*h*w:(s+1)*c*h*w], c, h, w, kh, kw, stride, pad, cols)
		res := out.data[s*oc*oh*ow : (s+1)*oc*oh*ow]
		matMulRowsRef(res, wmat.data, cols, 0, oc, c*kh*kw, oh*ow, false)
		if bias != nil {
			for o := 0; o < oc; o++ {
				b := bias.data[o]
				seg := res[o*oh*ow : (o+1)*oh*ow]
				for i := range seg {
					seg[i] += b
				}
			}
		}
	})
	return out
}

// conv2DBackwardRef is the original Conv2DBackward: per-sample scratch
// allocations, dWeight/dBias accumulation serialized behind one mutex (and
// therefore summed in completion order — deterministic only when a single
// worker runs).
func conv2DBackwardRef(input, weight, dOut *Tensor, stride, pad int, dWeight, dBias *Tensor) *Tensor {
	n, c, h, w := input.shape[0], input.shape[1], input.shape[2], input.shape[3]
	oc, _, kh, kw := weight.shape[0], weight.shape[1], weight.shape[2], weight.shape[3]
	oh := ConvOut(h, kh, stride, pad)
	ow := ConvOut(w, kw, stride, pad)
	dIn := New(n, c, h, w)
	k := c * kh * kw
	m := oh * ow
	wmatT := Transpose2D(weight.Reshape(oc, k)) // [k, oc]

	var mu sync.Mutex
	parallelForRef(n, func(s int) {
		cols := make([]float64, k*m)
		Im2Col(input.data[s*c*h*w:(s+1)*c*h*w], c, h, w, kh, kw, stride, pad, cols)
		dOutS := dOut.data[s*oc*m : (s+1)*oc*m]

		if dWeight != nil || dBias != nil {
			// dW_s = dOut_s [oc,m] @ cols^T [m,k]
			dws := make([]float64, oc*k)
			colsT := make([]float64, m*k)
			for r := 0; r < k; r++ {
				for cc := 0; cc < m; cc++ {
					colsT[cc*k+r] = cols[r*m+cc]
				}
			}
			matMulRowsRef(dws, dOutS, colsT, 0, oc, m, k, false)
			mu.Lock()
			if dWeight != nil {
				for i, v := range dws {
					dWeight.data[i] += v
				}
			}
			if dBias != nil {
				for o := 0; o < oc; o++ {
					sum := 0.0
					for i := 0; i < m; i++ {
						sum += dOutS[o*m+i]
					}
					dBias.data[o] += sum
				}
			}
			mu.Unlock()
		}

		// dCols = W^T [k,oc] @ dOut_s [oc,m]
		dCols := make([]float64, k*m)
		matMulRowsRef(dCols, wmatT.data, dOutS, 0, k, oc, m, false)
		Col2Im(dCols, c, h, w, kh, kw, stride, pad, dIn.data[s*c*h*w:(s+1)*c*h*w])
	})
	return dIn
}

// parallelForRef is the original feeder-goroutine-plus-channel work queue,
// kept only so the reference kernels reproduce the pre-optimization
// dispatch cost in benchmarks.
func parallelForRef(n int, f func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int, 1)
	go func() {
		for i := 0; i < n; i++ {
			next <- i
		}
		close(next)
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				f(i)
			}
		}()
	}
	wg.Wait()
}

package tensor

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

func TestScratchBufGrowOnly(t *testing.T) {
	var sc Scratch
	b1 := sc.Buf(ScratchCols, 64)
	if len(b1) != 64 {
		t.Fatalf("Buf length %d, want 64", len(b1))
	}
	b1[0], b1[63] = 1, 2
	// A smaller request must reuse the same backing array.
	b2 := sc.Buf(ScratchCols, 16)
	if len(b2) != 16 || &b2[0] != &b1[0] {
		t.Fatal("smaller Buf request must return a prefix of the existing buffer")
	}
	// A larger request grows; previous handle stays valid but detached.
	b3 := sc.Buf(ScratchCols, 128)
	if len(b3) != 128 {
		t.Fatalf("Buf length %d, want 128", len(b3))
	}
	// Distinct IDs never alias.
	b4 := sc.Buf(ScratchColsT, 128)
	b4[0] = 42
	b3[0] = 7
	if b4[0] != 42 {
		t.Fatal("buffers for distinct scratch IDs must not alias")
	}
}

func TestScratchBufZero(t *testing.T) {
	var sc Scratch
	b := sc.Buf(ScratchDW, 32)
	for i := range b {
		b[i] = float64(i + 1)
	}
	z := sc.BufZero(ScratchDW, 32)
	for i, v := range z {
		if v != 0 {
			t.Fatalf("BufZero left element %d = %v", i, v)
		}
	}
}

func TestArenaAcquireReleaseRecycles(t *testing.T) {
	var ar Arena
	ss := ar.Acquire(3)
	if len(ss) != 3 {
		t.Fatalf("Acquire(3) returned %d scratches", len(ss))
	}
	// Warm one buffer so recycling is observable through pointer identity.
	p := &ss[0].Buf(ScratchCols, 100)[0]
	ar.Release(ss)
	ss2 := ar.Acquire(3)
	found := false
	for _, sc := range ss2 {
		if len(sc.bufs[ScratchCols]) >= 100 && &sc.bufs[ScratchCols][0] == p {
			found = true
		}
	}
	if !found {
		t.Fatal("released scratch (and its warmed buffer) was not recycled by the next Acquire")
	}
	ar.Release(ss2)
}

// TestArenaConcurrentHammer drives Acquire/Buf/Release from many goroutines
// at once; under -race this proves two holders never share a Scratch.
func TestArenaConcurrentHammer(t *testing.T) {
	var ar Arena
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for iter := 0; iter < 200; iter++ {
				ss := ar.Acquire(1 + rng.Intn(4))
				for _, sc := range ss {
					b := sc.Buf(rng.Intn(numScratchBufs), 16+rng.Intn(256))
					mark := float64(g*1000 + iter)
					for i := range b {
						b[i] = mark
					}
					for i := range b {
						if b[i] != mark {
							t.Errorf("goroutine %d iter %d: scratch shared with another holder", g, iter)
							return
						}
					}
				}
				ar.Release(ss)
			}
		}(g)
	}
	wg.Wait()
}

// TestConcurrentConvReplicas mimics the serve worker pool: several replicas
// run full forward+backward passes through the shared default arena at the
// same time. Every replica gets identical inputs, so every replica must get
// bit-identical outputs — any cross-replica scratch aliasing corrupts them
// (and -race flags it directly).
func TestConcurrentConvReplicas(t *testing.T) {
	prevProcs := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prevProcs)
	rng := rand.New(rand.NewSource(77))
	in := NewRandN(rng, 1, 6, 3, 12, 12)
	wt := NewRandN(rng, 0.1, 8, 3, 3, 3)
	bias := NewRandN(rng, 0.1, 8)
	oh := ConvOut(12, 3, 1, 1)
	dOut := NewRandN(rng, 1, 6, 8, oh, oh)

	wantOut := Conv2D(in, wt, bias, 1, 1)
	wantDW := New(wt.Shape()...)
	wantDB := New(8)
	wantDIn := Conv2DBackward(in, wt, dOut, 1, 1, wantDW, wantDB)

	const replicas = 8
	var wg sync.WaitGroup
	errs := make(chan string, replicas)
	for r := 0; r < replicas; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for iter := 0; iter < 25; iter++ {
				out := Conv2D(in, wt, bias, 1, 1)
				dW := New(wt.Shape()...)
				dB := New(8)
				dIn := Conv2DBackward(in, wt, dOut, 1, 1, dW, dB)
				if MaxAbsDiff(out, wantOut) != 0 || MaxAbsDiff(dIn, wantDIn) != 0 ||
					MaxAbsDiff(dW, wantDW) != 0 || MaxAbsDiff(dB, wantDB) != 0 {
					errs <- "replica result differs — scratch aliasing across concurrent Conv2D calls"
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

func TestParallelForSlotCoversAllOnce(t *testing.T) {
	prevProcs := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prevProcs)
	const n = 1000
	var mu sync.Mutex
	seen := make([]int, n)
	slotBusy := make([]int32, Workers(n))
	ParallelForSlot(n, func(slot, i int) {
		mu.Lock()
		seen[i]++
		slotBusy[slot]++
		mu.Unlock()
	})
	total := 0
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
		total++
	}
	if total != n {
		t.Fatalf("visited %d of %d", total, n)
	}
}

func TestParallelForZeroAndOne(t *testing.T) {
	calls := 0
	ParallelFor(0, func(int) { calls++ })
	if calls != 0 {
		t.Fatal("ParallelFor(0) must not invoke f")
	}
	ParallelFor(1, func(i int) {
		if i != 0 {
			t.Fatalf("got index %d", i)
		}
		calls++
	})
	if calls != 1 {
		t.Fatal("ParallelFor(1) must invoke f exactly once")
	}
}

func TestChunkRangePartition(t *testing.T) {
	for n := 0; n <= 40; n++ {
		for workers := 1; workers <= 9; workers++ {
			covered := 0
			prevHi := 0
			for slot := 0; slot < workers; slot++ {
				lo, hi := chunkRange(n, workers, slot)
				if lo > hi {
					t.Fatalf("n=%d w=%d slot=%d: lo %d > hi %d", n, workers, slot, lo, hi)
				}
				if lo != prevHi && lo < n {
					t.Fatalf("n=%d w=%d slot=%d: gap before lo=%d", n, workers, slot, lo)
				}
				covered += hi - lo
				prevHi = hi
			}
			if covered != n {
				t.Fatalf("n=%d w=%d: chunks cover %d items", n, workers, covered)
			}
		}
	}
}

package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapeAndLen(t *testing.T) {
	tests := []struct {
		name  string
		shape []int
		want  int
	}{
		{name: "scalar", shape: nil, want: 1},
		{name: "vector", shape: []int{5}, want: 5},
		{name: "matrix", shape: []int{3, 4}, want: 12},
		{name: "nchw", shape: []int{2, 3, 4, 5}, want: 120},
		{name: "zero dim", shape: []int{0, 7}, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			x := New(tt.shape...)
			if x.Len() != tt.want {
				t.Fatalf("Len() = %d, want %d", x.Len(), tt.want)
			}
			if x.Rank() != len(tt.shape) {
				t.Fatalf("Rank() = %d, want %d", x.Rank(), len(tt.shape))
			}
		})
	}
}

func TestFromSlicePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched data length")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3, 4)
	x.Set(7.5, 1, 2, 3)
	if got := x.At(1, 2, 3); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	if got := x.At(0, 0, 0); got != 0 {
		t.Fatalf("untouched element = %v, want 0", got)
	}
	// Row-major: index (1,2,3) in [2,3,4] is 1*12+2*4+3 = 23.
	if x.Data()[23] != 7.5 {
		t.Fatalf("flat layout wrong: %v", x.Data())
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Set(99, 0, 0)
	if x.At(0, 0) != 99 {
		t.Fatal("Reshape must share backing data")
	}
	z := x.Reshape(-1, 2)
	if z.Dim(0) != 3 {
		t.Fatalf("inferred dim = %d, want 3", z.Dim(0))
	}
}

func TestReshapePanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 3).Reshape(4, 2)
}

func TestCloneIndependence(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	y := x.Clone()
	y.Set(5, 0)
	if x.At(0) != 1 {
		t.Fatal("Clone must copy data")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{10, 20, 30, 40}, 2, 2)
	if got := Add(a, b).Data(); got[3] != 44 {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a).Data(); got[0] != 9 {
		t.Fatalf("Sub = %v", got)
	}
	if got := Mul(a, b).Data(); got[1] != 40 {
		t.Fatalf("Mul = %v", got)
	}
	if got := Div(b, a).Data(); got[2] != 10 {
		t.Fatalf("Div = %v", got)
	}
	if got := Dot(a, b); got != 10+40+90+160 {
		t.Fatalf("Dot = %v", got)
	}
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float64{-1, 4, 2, -7}, 4)
	if x.Sum() != -2 {
		t.Fatalf("Sum = %v", x.Sum())
	}
	if x.Mean() != -0.5 {
		t.Fatalf("Mean = %v", x.Mean())
	}
	if x.Min() != -7 || x.Max() != 4 {
		t.Fatalf("Min/Max = %v/%v", x.Min(), x.Max())
	}
	if x.ArgMax() != 1 {
		t.Fatalf("ArgMax = %d", x.ArgMax())
	}
	if math.Abs(x.L2()-math.Sqrt(1+16+4+49)) > 1e-12 {
		t.Fatalf("L2 = %v", x.L2())
	}
}

func TestClampAndApply(t *testing.T) {
	x := FromSlice([]float64{-2, 0.5, 3}, 3)
	x.Clamp(0, 1)
	if x.At(0) != 0 || x.At(1) != 0.5 || x.At(2) != 1 {
		t.Fatalf("Clamp = %v", x.Data())
	}
	y := x.Map(func(v float64) float64 { return v * 2 })
	if y.At(2) != 2 || x.At(2) != 1 {
		t.Fatal("Map must not mutate the receiver")
	}
}

func TestSoftmaxRows(t *testing.T) {
	x := FromSlice([]float64{1, 1, 1, 0, math.Log(3), 0}, 2, 3)
	s := Softmax(x)
	for r := 0; r < 2; r++ {
		sum := 0.0
		for c := 0; c < 3; c++ {
			sum += s.At(r, c)
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", r, sum)
		}
	}
	if math.Abs(s.At(0, 0)-1.0/3) > 1e-12 {
		t.Fatalf("uniform row wrong: %v", s.At(0, 0))
	}
	if math.Abs(s.At(1, 1)-0.6) > 1e-12 {
		t.Fatalf("softmax(0,ln3,0)[1] = %v, want 0.6", s.At(1, 1))
	}
}

func TestSoftmaxStableForLargeLogits(t *testing.T) {
	x := FromSlice([]float64{1000, 1001, 999}, 1, 3)
	s := Softmax(x)
	if s.HasNaN() {
		t.Fatal("softmax overflowed")
	}
}

func TestTranspose2D(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := Transpose2D(x)
	if y.Dim(0) != 3 || y.Dim(1) != 2 {
		t.Fatalf("shape = %v", y.Shape())
	}
	if y.At(2, 1) != 6 || y.At(0, 1) != 4 {
		t.Fatalf("values wrong: %v", y.Data())
	}
}

func TestSumAxis0(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	s := SumAxis0(x)
	want := []float64{5, 7, 9}
	for i, v := range want {
		if s.At(i) != v {
			t.Fatalf("SumAxis0 = %v, want %v", s.Data(), want)
		}
	}
}

func TestConcatAndSplitInverse(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{5, 6}, 1, 2)
	cat := Concat(0, a, b)
	if cat.Dim(0) != 3 || cat.At(2, 1) != 6 {
		t.Fatalf("Concat dim0 wrong: %v %v", cat.Shape(), cat.Data())
	}
	parts := SplitDim(cat, 0, 2, 1)
	if MaxAbsDiff(parts[0], a) != 0 || MaxAbsDiff(parts[1], b) != 0 {
		t.Fatal("SplitDim is not the inverse of Concat on dim 0")
	}

	c := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	d := FromSlice([]float64{9, 8, 7, 6}, 2, 2)
	cat1 := Concat(1, c, d)
	if cat1.Dim(1) != 4 || cat1.At(0, 2) != 9 || cat1.At(1, 0) != 3 {
		t.Fatalf("Concat dim1 wrong: %v %v", cat1.Shape(), cat1.Data())
	}
	parts1 := SplitDim(cat1, 1, 2, 2)
	if MaxAbsDiff(parts1[0], c) != 0 || MaxAbsDiff(parts1[1], d) != 0 {
		t.Fatal("SplitDim is not the inverse of Concat on dim 1")
	}
}

func TestConcatChannelsNCHW(t *testing.T) {
	a := New(2, 3, 2, 2)
	b := New(2, 1, 2, 2)
	a.Fill(1)
	b.Fill(2)
	cat := Concat(1, a, b)
	if cat.Dim(1) != 4 {
		t.Fatalf("channels = %d", cat.Dim(1))
	}
	if cat.At(1, 3, 0, 0) != 2 || cat.At(1, 2, 1, 1) != 1 {
		t.Fatal("channel concat misplaced data")
	}
}

func TestMatMulAgainstHandComputed(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if c.Data()[i] != v {
			t.Fatalf("MatMul = %v, want %v", c.Data(), want)
		}
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewRandN(rng, 1, 37, 53)
	b := NewRandN(rng, 1, 53, 41)
	got := MatMul(a, b)
	want := New(37, 41)
	for i := 0; i < 37; i++ {
		for j := 0; j < 41; j++ {
			s := 0.0
			for k := 0; k < 53; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			want.Set(s, i, j)
		}
	}
	if d := MaxAbsDiff(got, want); d > 1e-10 {
		t.Fatalf("parallel matmul deviates by %v", d)
	}
}

func TestMatMulAccum(t *testing.T) {
	a := FromSlice([]float64{1, 0, 0, 1}, 2, 2)
	b := FromSlice([]float64{5, 6, 7, 8}, 2, 2)
	dst := Ones(2, 2)
	MatMulAccum(dst, a, b)
	if dst.At(0, 0) != 6 || dst.At(1, 1) != 9 {
		t.Fatalf("MatMulAccum = %v", dst.Data())
	}
}

func TestMatVec(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	x := FromSlice([]float64{1, -1}, 2)
	y := MatVec(a, x)
	if y.At(0) != -1 || y.At(1) != -1 {
		t.Fatalf("MatVec = %v", y.Data())
	}
}

// --- property-based tests -------------------------------------------------

func randomTensorPair(r *rand.Rand) (*Tensor, *Tensor) {
	n := 1 + r.Intn(32)
	a := NewRandU(r, -10, 10, n)
	b := NewRandU(r, -10, 10, n)
	return a, b
}

func TestPropAddCommutes(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomTensorPair(r)
		return MaxAbsDiff(Add(a, b), Add(b, a)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropMulDistributesOverAdd(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomTensorPair(r)
		c := NewRandU(r, -10, 10, a.Dim(0))
		lhs := Mul(c, Add(a, b))
		rhs := Add(Mul(c, a), Mul(c, b))
		return MaxAbsDiff(lhs, rhs) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := NewRandU(r, -5, 5, 1+r.Intn(8), 1+r.Intn(8))
		return MaxAbsDiff(Transpose2D(Transpose2D(m)), m) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropMatMulIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		m := NewRandU(r, -5, 5, n, n)
		id := New(n, n)
		for i := 0; i < n; i++ {
			id.Set(1, i, i)
		}
		return MaxAbsDiff(MatMul(m, id), m) < 1e-12 && MaxAbsDiff(MatMul(id, m), m) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropConcatSplitRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows1, rows2, cols := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		a := NewRandU(r, -1, 1, rows1, cols)
		b := NewRandU(r, -1, 1, rows2, cols)
		parts := SplitDim(Concat(0, a, b), 0, rows1, rows2)
		return MaxAbsDiff(parts[0], a) == 0 && MaxAbsDiff(parts[1], b) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropSoftmaxRowsSumToOne(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(6), 1+r.Intn(9)
		x := NewRandU(r, -50, 50, rows, cols)
		s := Softmax(x)
		for row := 0; row < rows; row++ {
			sum := 0.0
			for c := 0; c < cols; c++ {
				v := s.At(row, c)
				if v < 0 || v > 1 {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFullAndScalar(t *testing.T) {
	f := Full(3.5, 2, 2)
	for _, v := range f.Data() {
		if v != 3.5 {
			t.Fatalf("Full = %v", v)
		}
	}
	s := Scalar(-2)
	if s.Len() != 1 || s.At(0) != -2 {
		t.Fatalf("Scalar = %v", s)
	}
}

func TestCopyFromMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).CopyFrom(New(5))
}

func TestAxpy(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{10, 20}, 2)
	a.Axpy(0.5, b)
	if a.At(0) != 6 || a.At(1) != 12 {
		t.Fatalf("Axpy = %v", a.Data())
	}
}

func TestStringForms(t *testing.T) {
	small := FromSlice([]float64{1, 2}, 2)
	if s := small.String(); len(s) == 0 || s[0] != 'T' {
		t.Fatalf("String = %q", s)
	}
	big := New(10, 10)
	if s := big.String(); len(s) == 0 {
		t.Fatal("large-tensor String empty")
	}
}

func TestHasNaN(t *testing.T) {
	x := New(3)
	if x.HasNaN() {
		t.Fatal("zeros flagged as NaN")
	}
	x.Set(math.Inf(1), 1)
	if !x.HasNaN() {
		t.Fatal("Inf not flagged")
	}
	x.Set(0, 1)
	x.Set(math.NaN(), 2)
	if !x.HasNaN() {
		t.Fatal("NaN not flagged")
	}
}

func TestSplitDimValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad sizes")
		}
	}()
	SplitDim(New(2, 4), 1, 3, 3)
}

func TestConcatMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched shapes")
		}
	}()
	Concat(0, New(2, 3), New(2, 4))
}

package tensor

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

// Parity tests: the blocked matmul kernel and the arena-backed conv paths
// must reproduce the pre-optimization reference kernels BIT FOR BIT — not
// within an epsilon. Floating-point addition is non-associative, so this
// only holds because the optimized kernels accumulate every output element
// in exactly the reference order; these tests pin that invariant across
// randomized shapes including the stride/pad/tail edge cases.

// randData fills a slice with standard normals plus ~10% exact zeros so the
// kernels' zero-skip path is exercised.
func randData(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		if rng.Intn(10) == 0 {
			continue
		}
		out[i] = rng.NormFloat64()
	}
	return out
}

func bitEqual(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: element %d differs at bit level: %v vs %v", name, i, got[i], want[i])
		}
	}
}

func TestMatMulBlockedMatchesRefBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	type shape struct{ m, k, n int }
	shapes := []shape{
		// Tile-boundary and degenerate edges: single rows/cols, exact tile
		// multiples, one-past and one-short of the 4-wide unroll and the
		// mmKC/mmNC tiles.
		{1, 1, 1}, {1, 1, 5}, {3, 1, 4}, {1, 7, 1},
		{2, mmKC, mmNC}, {2, mmKC + 1, mmNC + 1}, {2, mmKC - 1, mmNC - 1},
		{5, 2 * mmKC, 3}, {4, 3, 2 * mmNC}, {3, mmKC + 7, mmNC + 5},
	}
	for len(shapes) < 60 {
		shapes = append(shapes, shape{1 + rng.Intn(40), 1 + rng.Intn(170), 1 + rng.Intn(90)})
	}
	for _, s := range shapes {
		for _, accum := range []bool{false, true} {
			a := randData(rng, s.m*s.k)
			b := randData(rng, s.m*s.k*s.n)[:s.k*s.n]
			init := randData(rng, s.m*s.n)
			got := append([]float64(nil), init...)
			want := append([]float64(nil), init...)
			matMulRowsBlocked(got, a, b, 0, s.m, s.k, s.n, accum)
			matMulRowsRef(want, a, b, 0, s.m, s.k, s.n, accum)
			bitEqual(t, fmt.Sprintf("matmul %dx%dx%d accum=%v", s.m, s.k, s.n, accum), got, want)
		}
	}
}

func TestMatMulBlockedPartialRows(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, k, n := 13, 37, 29
	a, b := randData(rng, m*k), randData(rng, k*n)
	got, want := make([]float64, m*n), make([]float64, m*n)
	matMulRowsBlocked(got, a, b, 4, 11, k, n, false)
	matMulRowsRef(want, a, b, 4, 11, k, n, false)
	bitEqual(t, "partial rows", got, want)
	for i := 0; i < 4*n; i++ {
		if got[i] != 0 {
			t.Fatal("rows below lo must stay untouched")
		}
	}
}

// convCase is one randomized convolution configuration.
type convCase struct {
	n, c, h, w, oc, kh, kw, stride, pad int
	bias                                bool
}

func (cc convCase) String() string {
	return fmt.Sprintf("n%d c%d %dx%d oc%d k%dx%d s%d p%d bias=%v",
		cc.n, cc.c, cc.h, cc.w, cc.oc, cc.kh, cc.kw, cc.stride, cc.pad, cc.bias)
}

// convCases generates count valid random configurations plus fixed
// stride/pad edge cases (stride > kernel, pad ≥ kernel-1, 1×1, non-square).
func convCases(rng *rand.Rand, count int) []convCase {
	cases := []convCase{
		{2, 3, 8, 8, 4, 3, 3, 1, 1, true},
		{1, 2, 9, 9, 3, 3, 3, 2, 1, false},
		{2, 4, 5, 5, 2, 1, 1, 1, 0, true},
		{1, 1, 7, 7, 1, 5, 5, 1, 0, false},
		{1, 2, 6, 10, 3, 3, 3, 1, 1, true},
		{3, 2, 7, 5, 2, 3, 2, 3, 2, true}, // stride > kw, asymmetric kernel
		{2, 1, 4, 4, 2, 4, 4, 4, 0, false},
		{1, 3, 5, 5, 4, 3, 3, 1, 2, true}, // pad ≥ kernel-1
	}
	for len(cases) < count {
		cc := convCase{
			n: 1 + rng.Intn(5), c: 1 + rng.Intn(4),
			h: 3 + rng.Intn(10), w: 3 + rng.Intn(10),
			oc: 1 + rng.Intn(6), kh: 1 + rng.Intn(4), kw: 1 + rng.Intn(4),
			stride: 1 + rng.Intn(3), pad: rng.Intn(3), bias: rng.Intn(2) == 0,
		}
		if cc.h+2*cc.pad < cc.kh || cc.w+2*cc.pad < cc.kw {
			continue
		}
		cases = append(cases, cc)
	}
	return cases
}

func convInputs(rng *rand.Rand, cc convCase) (in, wt, bias *Tensor) {
	in = FromSlice(randData(rng, cc.n*cc.c*cc.h*cc.w), cc.n, cc.c, cc.h, cc.w)
	wt = FromSlice(randData(rng, cc.oc*cc.c*cc.kh*cc.kw), cc.oc, cc.c, cc.kh, cc.kw)
	if cc.bias {
		bias = FromSlice(randData(rng, cc.oc), cc.oc)
	}
	return in, wt, bias
}

func TestConv2DForwardParityBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, cc := range convCases(rng, 55) {
		in, wt, bias := convInputs(rng, cc)
		got := Conv2D(in, wt, bias, cc.stride, cc.pad)
		want := conv2DRef(in, wt, bias, cc.stride, cc.pad)
		bitEqual(t, "conv forward "+cc.String(), got.Data(), want.Data())
	}
}

// TestConv2DBackwardSequentialParityBitExact pins the backward pass to the
// pre-optimization kernel in its only deterministic configuration: one
// worker. The new chunked reduction must then follow the identical
// ascending-sample summation order, including nonzero initial gradients.
func TestConv2DBackwardSequentialParityBitExact(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	rng := rand.New(rand.NewSource(5))
	for _, cc := range convCases(rng, 55) {
		in, wt, _ := convInputs(rng, cc)
		oh := ConvOut(cc.h, cc.kh, cc.stride, cc.pad)
		ow := ConvOut(cc.w, cc.kw, cc.stride, cc.pad)
		dOut := FromSlice(randData(rng, cc.n*cc.oc*oh*ow), cc.n, cc.oc, oh, ow)

		// Nonzero initial gradients: backward accumulates, it does not
		// overwrite.
		initW := randData(rng, wt.Len())
		initB := randData(rng, cc.oc)
		dW := FromSlice(append([]float64(nil), initW...), wt.Shape()...)
		dB := FromSlice(append([]float64(nil), initB...), cc.oc)
		dWRef := FromSlice(append([]float64(nil), initW...), wt.Shape()...)
		dBRef := FromSlice(append([]float64(nil), initB...), cc.oc)

		dIn := Conv2DBackward(in, wt, dOut, cc.stride, cc.pad, dW, dB)
		dInRef := conv2DBackwardRef(in, wt, dOut, cc.stride, cc.pad, dWRef, dBRef)

		name := "conv backward " + cc.String()
		bitEqual(t, name+" dIn", dIn.Data(), dInRef.Data())
		bitEqual(t, name+" dW", dW.Data(), dWRef.Data())
		bitEqual(t, name+" dB", dB.Data(), dBRef.Data())
	}
}

// TestConv2DBackwardNilGradCombos checks every dWeight/dBias nil
// combination against the reference (the old kernel transposed cols even
// when only dBias was wanted; the new one must still produce identical
// numbers while skipping that work).
func TestConv2DBackwardNilGradCombos(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	rng := rand.New(rand.NewSource(17))
	cc := convCase{3, 2, 6, 6, 4, 3, 3, 1, 1, true}
	in, wt, _ := convInputs(rng, cc)
	oh := ConvOut(cc.h, cc.kh, cc.stride, cc.pad)
	dOut := FromSlice(randData(rng, cc.n*cc.oc*oh*oh), cc.n, cc.oc, oh, oh)
	for _, withW := range []bool{true, false} {
		for _, withB := range []bool{true, false} {
			var dW, dB, dWRef, dBRef *Tensor
			if withW {
				dW, dWRef = New(wt.Shape()...), New(wt.Shape()...)
			}
			if withB {
				dB, dBRef = New(cc.oc), New(cc.oc)
			}
			dIn := Conv2DBackward(in, wt, dOut, cc.stride, cc.pad, dW, dB)
			dInRef := conv2DBackwardRef(in, wt, dOut, cc.stride, cc.pad, dWRef, dBRef)
			name := fmt.Sprintf("combo dW=%v dB=%v", withW, withB)
			bitEqual(t, name+" dIn", dIn.Data(), dInRef.Data())
			if withW {
				bitEqual(t, name+" dW", dW.Data(), dWRef.Data())
			}
			if withB {
				bitEqual(t, name+" dB", dB.Data(), dBRef.Data())
			}
		}
	}
}

// TestConv2DBackwardDeterministicParallel proves the lock-free reduction is
// run-to-run deterministic with several workers: fixed chunk boundaries +
// fixed merge order leave no scheduling dependence. The old mutex reduction
// summed in completion order and failed this under load.
func TestConv2DBackwardDeterministicParallel(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	rng := rand.New(rand.NewSource(23))
	cc := convCase{n: 11, c: 3, h: 9, w: 9, oc: 5, kh: 3, kw: 3, stride: 1, pad: 1, bias: true}
	in, wt, _ := convInputs(rng, cc)
	oh := ConvOut(cc.h, cc.kh, cc.stride, cc.pad)
	dOut := FromSlice(randData(rng, cc.n*cc.oc*oh*oh), cc.n, cc.oc, oh, oh)

	var firstW, firstB, firstIn []float64
	for run := 0; run < 6; run++ {
		dW, dB := New(wt.Shape()...), New(cc.oc)
		dIn := Conv2DBackward(in, wt, dOut, cc.stride, cc.pad, dW, dB)
		if run == 0 {
			firstW = append([]float64(nil), dW.Data()...)
			firstB = append([]float64(nil), dB.Data()...)
			firstIn = append([]float64(nil), dIn.Data()...)
			continue
		}
		bitEqual(t, fmt.Sprintf("run %d dW", run), dW.Data(), firstW)
		bitEqual(t, fmt.Sprintf("run %d dB", run), dB.Data(), firstB)
		bitEqual(t, fmt.Sprintf("run %d dIn", run), dIn.Data(), firstIn)
	}
}

// TestConv2DBackwardChunkOracle pins the documented multi-worker summation
// semantics: per-slot partial sums over fixed contiguous chunks, merged in
// slot order, each starting from zero.
func TestConv2DBackwardChunkOracle(t *testing.T) {
	prev := runtime.GOMAXPROCS(3)
	defer runtime.GOMAXPROCS(prev)
	rng := rand.New(rand.NewSource(31))
	cc := convCase{n: 7, c: 2, h: 6, w: 6, oc: 3, kh: 3, kw: 3, stride: 1, pad: 1, bias: true}
	in, wt, _ := convInputs(rng, cc)
	oh := ConvOut(cc.h, cc.kh, cc.stride, cc.pad)
	dOut := FromSlice(randData(rng, cc.n*cc.oc*oh*oh), cc.n, cc.oc, oh, oh)

	dW, dB := New(wt.Shape()...), New(cc.oc)
	Conv2DBackward(in, wt, dOut, cc.stride, cc.pad, dW, dB)

	workers := Workers(cc.n)
	wantW := make([]float64, wt.Len())
	wantB := make([]float64, cc.oc)
	for slot := 0; slot < workers; slot++ {
		lo, hi := chunkRange(cc.n, workers, slot)
		partW := make([]float64, wt.Len())
		partB := make([]float64, cc.oc)
		for s := lo; s < hi; s++ {
			sampleIn := FromSlice(in.Data()[s*cc.c*cc.h*cc.w:(s+1)*cc.c*cc.h*cc.w], 1, cc.c, cc.h, cc.w)
			sampleD := FromSlice(dOut.Data()[s*cc.oc*oh*oh:(s+1)*cc.oc*oh*oh], 1, cc.oc, oh, oh)
			conv2DBackwardRef(sampleIn, wt, sampleD, cc.stride, cc.pad,
				FromSlice(partW, wt.Shape()...), FromSlice(partB, cc.oc))
		}
		for i, v := range partW {
			wantW[i] += v
		}
		for i, v := range partB {
			wantB[i] += v
		}
	}
	bitEqual(t, "chunk oracle dW", dW.Data(), wantW)
	bitEqual(t, "chunk oracle dB", dB.Data(), wantB)
}

// TestConv2DBackwardNumericGradientBatchedParallel extends the numeric
// gradient check through the chunked multi-worker reduction: batch > 1 with
// GOMAXPROCS forced above 1 so the per-slot partial sums and the post-join
// merge are what produce dW/dB.
func TestConv2DBackwardNumericGradientBatchedParallel(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	rng := rand.New(rand.NewSource(13))
	in := NewRandN(rng, 1, 5, 2, 6, 6)
	wt := NewRandN(rng, 0.5, 3, 2, 3, 3)
	bias := NewRandN(rng, 0.5, 3)
	stride, pad := 2, 1

	out := Conv2D(in, wt, bias, stride, pad)
	probe := NewRandN(rng, 1, out.Shape()...)
	loss := func() float64 { return Dot(Conv2D(in, wt, bias, stride, pad), probe) }

	dW := New(wt.Shape()...)
	dB := New(3)
	dIn := Conv2DBackward(in, wt, probe, stride, pad, dW, dB)

	const eps = 1e-6
	check := func(name string, params, grad *Tensor) {
		for i := 0; i < params.Len(); i += 1 + params.Len()/23 {
			orig := params.Data()[i]
			params.Data()[i] = orig + eps
			lp := loss()
			params.Data()[i] = orig - eps
			lm := loss()
			params.Data()[i] = orig
			num := (lp - lm) / (2 * eps)
			if diff := num - grad.Data()[i]; diff > 1e-4 || diff < -1e-4 {
				t.Fatalf("%s grad[%d]: analytic %v numeric %v", name, i, grad.Data()[i], num)
			}
		}
	}
	check("weight", wt, dW)
	check("bias", bias, dB)
	check("input", in, dIn)
}

// TestSetRefKernelsRoutesEntryPoints exercises the benchmark toggle: under
// SetRefKernels(true) the public entry points must produce the reference
// results (trivially bit-identical by construction), and flipping back
// restores the production kernels.
func TestSetRefKernelsRoutesEntryPoints(t *testing.T) {
	defer SetRefKernels(false)
	rng := rand.New(rand.NewSource(3))
	a := FromSlice(randData(rng, 9*17), 9, 17)
	b := FromSlice(randData(rng, 17*13), 17, 13)
	SetRefKernels(false)
	fast := MatMul(a, b)
	SetRefKernels(true)
	ref := MatMul(a, b)
	bitEqual(t, "MatMul toggle", fast.Data(), ref.Data())
}

// TestConv2DForwardAllocsSteadyState proves the arena removed the per-call
// im2col allocations: after warm-up, a sequential forward allocates only
// the output tensor and a fixed handful of headers — independent of batch
// size (the old path allocated one fresh cols buffer per sample per call).
func TestConv2DForwardAllocsSteadyState(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	rng := rand.New(rand.NewSource(8))
	cc := convCase{n: 8, c: 4, h: 16, w: 16, oc: 8, kh: 3, kw: 3, stride: 1, pad: 1, bias: true}
	in, wt, bias := convInputs(rng, cc)
	Conv2D(in, wt, bias, cc.stride, cc.pad) // warm the arena
	allocs := testing.AllocsPerRun(20, func() {
		Conv2D(in, wt, bias, cc.stride, cc.pad)
	})
	if allocs > 8 {
		t.Fatalf("Conv2D forward allocates %.0f objects/op after warm-up; want O(1) (≤8), not O(batch)", allocs)
	}
}

func TestLinearBackwardAllocsSteadyState(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	// Exercised via the tensor-level pieces nn.Linear.Backward now uses.
	rng := rand.New(rand.NewSource(9))
	x := FromSlice(randData(rng, 12*30), 12, 30)
	scratch := AcquireScratch(1)
	defer ReleaseScratch(scratch)
	sc := scratch[0]
	sc.Buf(ScratchA, x.Len())
	allocs := testing.AllocsPerRun(20, func() {
		Transpose2DInto(sc.Buf(ScratchA, x.Len()), x)
	})
	if allocs > 3 {
		t.Fatalf("Transpose2DInto allocates %.0f objects/op; want ≤3 (tensor header only, no data buffer)", allocs)
	}
}

func BenchmarkMatMul128Blocked(b *testing.B) {
	benchMatMul(b, 128, false)
}

func BenchmarkMatMul128Ref(b *testing.B) {
	benchMatMul(b, 128, true)
}

func benchMatMul(b *testing.B, n int, ref bool) {
	rng := rand.New(rand.NewSource(1))
	x := NewRandN(rng, 1, n, n)
	y := NewRandN(rng, 1, n, n)
	SetRefKernels(ref)
	defer SetRefKernels(false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkConv2D64Arena(b *testing.B) {
	benchConvForward(b, false)
}

func BenchmarkConv2D64Ref(b *testing.B) {
	benchConvForward(b, true)
}

func benchConvForward(b *testing.B, ref bool) {
	rng := rand.New(rand.NewSource(1))
	in := NewRandN(rng, 1, 1, 16, 64, 64)
	wt := NewRandN(rng, 0.1, 32, 16, 3, 3)
	SetRefKernels(ref)
	defer SetRefKernels(false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2D(in, wt, nil, 1, 1)
	}
}

func BenchmarkConv2DBackwardArena(b *testing.B) {
	benchConvBackward(b, false)
}

func BenchmarkConv2DBackwardRef(b *testing.B) {
	benchConvBackward(b, true)
}

func benchConvBackward(b *testing.B, ref bool) {
	rng := rand.New(rand.NewSource(1))
	in := NewRandN(rng, 1, 2, 16, 32, 32)
	wt := NewRandN(rng, 0.1, 32, 16, 3, 3)
	dOut := NewRandN(rng, 1, 2, 32, 32, 32)
	dW := New(32, 16, 3, 3)
	dB := New(32)
	SetRefKernels(ref)
	defer SetRefKernels(false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2DBackward(in, wt, dOut, 1, 1, dW, dB)
	}
}

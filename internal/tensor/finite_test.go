package tensor

import (
	"math"
	"strings"
	"testing"
)

func mustPanic(t *testing.T, substr string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q", substr)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, substr) {
			t.Fatalf("panic %v does not contain %q", r, substr)
		}
	}()
	fn()
}

func TestAssertFiniteDisabledByDefault(t *testing.T) {
	prev := SetCheckFinite(false)
	defer SetCheckFinite(prev)
	x := FromSlice([]float64{1, math.NaN(), 3}, 3)
	AssertFinite("x", x) // must not panic while the gate is off
	AssertFiniteScalar("s", math.Inf(1))
}

func TestAssertFiniteEnabled(t *testing.T) {
	prev := SetCheckFinite(true)
	defer SetCheckFinite(prev)

	AssertFinite("ok", FromSlice([]float64{1, 2, 3}, 3))
	AssertFinite("nil", nil)
	AssertFiniteScalar("ok", 1.5)

	mustPanic(t, "loss[1]", func() {
		AssertFinite("loss", FromSlice([]float64{1, math.NaN(), 3}, 3))
	})
	mustPanic(t, "grad[0]", func() {
		AssertFinite("grad", FromSlice([]float64{math.Inf(-1)}, 1))
	})
	mustPanic(t, "scalar loss", func() {
		AssertFiniteScalar("scalar loss", math.NaN())
	})
}

func TestSetCheckFiniteReturnsPrevious(t *testing.T) {
	orig := CheckFiniteEnabled()
	defer SetCheckFinite(orig)
	if prev := SetCheckFinite(true); prev != orig {
		t.Fatalf("SetCheckFinite returned %v, want %v", prev, orig)
	}
	if !CheckFiniteEnabled() {
		t.Fatal("gate should be on after SetCheckFinite(true)")
	}
}

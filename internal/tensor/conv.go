package tensor

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// ConvOut returns the spatial output size of a convolution or pooling with
// the given input size, kernel, stride and symmetric zero padding.
func ConvOut(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}

// Im2Col lowers one [C,H,W] image (given as a flat slice) into a column
// matrix of shape [C*KH*KW, OH*OW] so convolution becomes a MatMul. Out must
// have exactly that many elements.
func Im2Col(img []float64, c, h, w, kh, kw, stride, pad int, out []float64) {
	oh := ConvOut(h, kh, stride, pad)
	ow := ConvOut(w, kw, stride, pad)
	cols := oh * ow
	if len(out) != c*kh*kw*cols {
		panic(fmt.Sprintf("tensor: Im2Col out length %d, want %d", len(out), c*kh*kw*cols))
	}
	row := 0
	for ch := 0; ch < c; ch++ {
		chImg := img[ch*h*w : (ch+1)*h*w]
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				dst := out[row*cols : (row+1)*cols]
				// Valid ox range for this kx: 0 <= ox*stride+off < w. Hoisting
				// it out of the inner loop turns the body into a straight copy
				// (stride 1) or an unconditional strided gather — no
				// per-element boundary test.
				off := kx - pad
				lo, hi := 0, ow
				if off < 0 {
					lo = (-off + stride - 1) / stride
					if lo > ow {
						lo = ow
					}
				}
				if e := (w - off + stride - 1) / stride; e < hi {
					hi = e
				}
				if hi < lo {
					hi = lo
				}
				i := 0
				for oy := 0; oy < oh; oy++ {
					sy := oy*stride - pad + ky
					if sy < 0 || sy >= h {
						zeroFill(dst[i : i+ow])
						i += ow
						continue
					}
					srow := chImg[sy*w : (sy+1)*w]
					zeroFill(dst[i : i+lo])
					if stride == 1 {
						copy(dst[i+lo:i+hi], srow[lo+off:hi+off])
					} else {
						for ox := lo; ox < hi; ox++ {
							dst[i+ox] = srow[ox*stride+off]
						}
					}
					zeroFill(dst[i+hi : i+ow])
					i += ow
				}
				row++
			}
		}
	}
}

// zeroFill clears s; the compiler lowers this loop to memclr.
func zeroFill(s []float64) {
	for i := range s {
		s[i] = 0
	}
}

// Col2Im scatters a column matrix (the gradient of Im2Col's output) back
// into a [C,H,W] image gradient, accumulating where patches overlapped.
func Col2Im(cols []float64, c, h, w, kh, kw, stride, pad int, img []float64) {
	oh := ConvOut(h, kh, stride, pad)
	ow := ConvOut(w, kw, stride, pad)
	n := oh * ow
	if len(img) != c*h*w {
		panic(fmt.Sprintf("tensor: Col2Im img length %d, want %d", len(img), c*h*w))
	}
	row := 0
	for ch := 0; ch < c; ch++ {
		chImg := img[ch*h*w : (ch+1)*h*w]
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				src := cols[row*n : (row+1)*n]
				i := 0
				for oy := 0; oy < oh; oy++ {
					sy := oy*stride - pad + ky
					if sy < 0 || sy >= h {
						i += ow
						continue
					}
					srow := chImg[sy*w : (sy+1)*w]
					for ox := 0; ox < ow; ox++ {
						sx := ox*stride - pad + kx
						if sx >= 0 && sx < w {
							srow[sx] += src[i]
						}
						i++
					}
				}
				row++
			}
		}
	}
}

// Conv2D computes a batched 2-D cross-correlation. Input is [N,C,H,W],
// weight is [OC,C,KH,KW], bias (optional, may be nil) is [OC]. The result is
// [N,OC,OH,OW]. Samples are processed in parallel; im2col scratch comes
// from the per-worker arena, so steady-state calls allocate only the output
// tensor.
func Conv2D(input, weight, bias *Tensor, stride, pad int) *Tensor {
	if refKernels {
		return conv2DRef(input, weight, bias, stride, pad)
	}
	n, c, h, w := input.shape[0], input.shape[1], input.shape[2], input.shape[3]
	oc, kc, kh, kw := weight.shape[0], weight.shape[1], weight.shape[2], weight.shape[3]
	if kc != c {
		panic(fmt.Sprintf("tensor: Conv2D channel mismatch input %v weight %v", input.shape, weight.shape))
	}
	oh := ConvOut(h, kh, stride, pad)
	ow := ConvOut(w, kw, stride, pad)
	out := New(n, oc, oh, ow)
	if n == 0 {
		return out
	}
	k := c * kh * kw
	m := oh * ow
	wdata := weight.data // already [oc, k] row-major

	workers := Workers(n)
	ss := AcquireScratch(workers)
	parallelForSlot(n, workers, func(slot, s int) {
		sc := ss[slot]
		cols := sc.Buf(ScratchCols, k*m)
		Im2Col(input.data[s*c*h*w:(s+1)*c*h*w], c, h, w, kh, kw, stride, pad, cols)
		res := out.data[s*oc*m : (s+1)*oc*m]
		matMulRowsBlocked(res, wdata, cols, 0, oc, k, m, false)
		if bias != nil {
			for o := 0; o < oc; o++ {
				b := bias.data[o]
				seg := res[o*m : (o+1)*m]
				for i := range seg {
					seg[i] += b
				}
			}
		}
	})
	ReleaseScratch(ss)
	return out
}

// Conv2DBackward computes the gradients of Conv2D. Given dOut [N,OC,OH,OW]
// it returns dInput [N,C,H,W] and accumulates into dWeight [OC,C,KH,KW] and
// dBias [OC] (either may be nil to skip).
//
// The reduction is lock-free and deterministic: samples are assigned to
// workers in fixed contiguous chunks, each worker sums its samples' dW/dB
// terms into private arena accumulators in ascending sample order, and the
// per-worker partials are merged into dWeight/dBias in ascending slot order
// after the join. For a fixed GOMAXPROCS the floating-point summation tree
// is therefore identical on every run (and with one worker it matches the
// sequential pre-optimization kernel bit for bit).
func Conv2DBackward(input, weight, dOut *Tensor, stride, pad int, dWeight, dBias *Tensor) *Tensor {
	if refKernels {
		return conv2DBackwardRef(input, weight, dOut, stride, pad, dWeight, dBias)
	}
	n, c, h, w := input.shape[0], input.shape[1], input.shape[2], input.shape[3]
	oc, _, kh, kw := weight.shape[0], weight.shape[1], weight.shape[2], weight.shape[3]
	oh := ConvOut(h, kh, stride, pad)
	ow := ConvOut(w, kw, stride, pad)
	dIn := New(n, c, h, w)
	if n == 0 {
		return dIn
	}
	k := c * kh * kw
	m := oh * ow
	needW := dWeight != nil
	needB := dBias != nil

	workers := Workers(n)
	ss := AcquireScratch(workers)

	// W^T [k, oc], written once here and read by every worker.
	wT := ss[0].Buf(ScratchWT, k*oc)
	transposeInto(wT, weight.data, oc, k)

	// With a single worker the partial-sum indirection is pointless:
	// accumulate straight into the caller's gradients, which reproduces the
	// sequential pre-optimization summation order exactly.
	single := workers == 1
	parallelForChunks(n, workers, func(slot, lo, hi int) {
		sc := ss[slot]
		var dwAcc, dbAcc []float64
		if needW {
			if single {
				dwAcc = dWeight.data
			} else {
				dwAcc = sc.BufZero(ScratchDW, oc*k)
			}
		}
		if needB {
			if single {
				dbAcc = dBias.data
			} else {
				dbAcc = sc.BufZero(ScratchDB, oc)
			}
		}
		for s := lo; s < hi; s++ {
			dOutS := dOut.data[s*oc*m : (s+1)*oc*m]
			if needW {
				// dW_s = dOut_s [oc,m] @ cols^T [m,k]; im2col is only
				// needed for the weight gradient. The NT dot kernel reads
				// cols row-major directly — no materialized transpose.
				cols := sc.Buf(ScratchCols, k*m)
				Im2Col(input.data[s*c*h*w:(s+1)*c*h*w], c, h, w, kh, kw, stride, pad, cols)
				dws := sc.Buf(ScratchDWS, oc*k)
				dotRowsNT(dws, dOutS, cols, oc, k, m)
				for i, v := range dws {
					dwAcc[i] += v
				}
			}
			if needB {
				for o := 0; o < oc; o++ {
					sum := 0.0
					row := dOutS[o*m : (o+1)*m]
					for _, v := range row {
						sum += v
					}
					dbAcc[o] += sum
				}
			}
			// dCols = W^T [k,oc] @ dOut_s [oc,m]
			dCols := sc.Buf(ScratchDCols, k*m)
			matMulRowsBlocked(dCols, wT, dOutS, 0, k, oc, m, false)
			Col2Im(dCols, c, h, w, kh, kw, stride, pad, dIn.data[s*c*h*w:(s+1)*c*h*w])
		}
	})

	// Fixed-order merge: ascending slot, each slot's partial covering an
	// ascending contiguous sample range.
	if !single {
		for slot := 0; slot < workers; slot++ {
			if lo, hi := chunkRange(n, workers, slot); lo >= hi {
				continue
			}
			sc := ss[slot]
			if needW {
				for i, v := range sc.Buf(ScratchDW, oc*k) {
					dWeight.data[i] += v
				}
			}
			if needB {
				for o, v := range sc.Buf(ScratchDB, oc) {
					dBias.data[o] += v
				}
			}
		}
	}
	ReleaseScratch(ss)
	return dIn
}

// transposeInto writes the [cols, rows] transpose of the row-major
// [rows, cols] matrix src into dst. The walk is tiled so that both the
// sequential reads and the strided writes of a tile stay within cache —
// a straight row scan writes rows*8 bytes apart and misses on every store
// once rows exceeds a few hundred.
func transposeInto(dst, src []float64, rows, cols int) {
	if len(dst) != rows*cols {
		panic(fmt.Sprintf("tensor: transposeInto dst length %d, want %d", len(dst), rows*cols))
	}
	const tile = 32
	for r0 := 0; r0 < rows; r0 += tile {
		r1 := r0 + tile
		if r1 > rows {
			r1 = rows
		}
		for c0 := 0; c0 < cols; c0 += tile {
			c1 := c0 + tile
			if c1 > cols {
				c1 = cols
			}
			for r := r0; r < r1; r++ {
				srow := src[r*cols+c0 : r*cols+c1]
				for i, v := range srow {
					dst[(c0+i)*rows+r] = v
				}
			}
		}
	}
}

// Workers returns the worker count the parallel loops in this package use
// for n items: GOMAXPROCS capped at n, at least 1. Callers acquiring
// per-worker arena scratch size it with this.
func Workers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// chunkRange returns the half-open sample range of the given worker slot
// under the fixed contiguous partition parallelForChunks uses. Depends only
// on (n, workers, slot), never on scheduling.
func chunkRange(n, workers, slot int) (lo, hi int) {
	chunk := (n + workers - 1) / workers
	lo = slot * chunk
	hi = lo + chunk
	if hi > n {
		hi = n
	}
	if lo > n {
		lo = n
	}
	return lo, hi
}

// parallelFor runs f(i) for i in [0,n) across GOMAXPROCS goroutines. Work
// is handed out through a single atomic counter: one fetch-add per item
// instead of the channel send/recv pair the old feeder-goroutine queue paid
// (which dominated dispatch for small batches).
func parallelFor(n int, f func(i int)) {
	parallelForSlot(n, Workers(n), func(_, i int) { f(i) })
}

func parallelForSlot(n, workers int, f func(slot, i int)) {
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(slot int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(slot, i)
			}
		}(w)
	}
	wg.Wait()
}

// parallelForChunks partitions [0,n) into one fixed contiguous chunk per
// worker slot (chunkRange) and runs f(slot, lo, hi) concurrently. Unlike
// the counter-based loop, the item→slot assignment is static, which makes
// per-slot reductions merged in slot order deterministic for a fixed
// worker count.
func parallelForChunks(n, workers int, f func(slot, lo, hi int)) {
	if workers <= 1 {
		f(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := chunkRange(n, workers, w)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(slot, lo, hi int) {
			defer wg.Done()
			f(slot, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// ParallelFor exposes the worker-pool loop for other packages that iterate
// over batch samples.
func ParallelFor(n int, f func(i int)) { parallelFor(n, f) }

// ParallelForSlot runs f(slot, i) for i in [0,n) with slot identifying the
// executing worker in [0, Workers(n)). Exactly one goroutine uses a given
// slot at a time, so slot may index per-worker state such as arena
// scratches acquired with AcquireScratch(Workers(n)).
func ParallelForSlot(n int, f func(slot, i int)) { parallelForSlot(n, Workers(n), f) }

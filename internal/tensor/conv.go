package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// ConvOut returns the spatial output size of a convolution or pooling with
// the given input size, kernel, stride and symmetric zero padding.
func ConvOut(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}

// Im2Col lowers one [C,H,W] image (given as a flat slice) into a column
// matrix of shape [C*KH*KW, OH*OW] so convolution becomes a MatMul. Out must
// have exactly that many elements.
func Im2Col(img []float64, c, h, w, kh, kw, stride, pad int, out []float64) {
	oh := ConvOut(h, kh, stride, pad)
	ow := ConvOut(w, kw, stride, pad)
	cols := oh * ow
	if len(out) != c*kh*kw*cols {
		panic(fmt.Sprintf("tensor: Im2Col out length %d, want %d", len(out), c*kh*kw*cols))
	}
	row := 0
	for ch := 0; ch < c; ch++ {
		chImg := img[ch*h*w : (ch+1)*h*w]
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				dst := out[row*cols : (row+1)*cols]
				i := 0
				for oy := 0; oy < oh; oy++ {
					sy := oy*stride - pad + ky
					if sy < 0 || sy >= h {
						for ox := 0; ox < ow; ox++ {
							dst[i] = 0
							i++
						}
						continue
					}
					srow := chImg[sy*w : (sy+1)*w]
					for ox := 0; ox < ow; ox++ {
						sx := ox*stride - pad + kx
						if sx < 0 || sx >= w {
							dst[i] = 0
						} else {
							dst[i] = srow[sx]
						}
						i++
					}
				}
				row++
			}
		}
	}
}

// Col2Im scatters a column matrix (the gradient of Im2Col's output) back
// into a [C,H,W] image gradient, accumulating where patches overlapped.
func Col2Im(cols []float64, c, h, w, kh, kw, stride, pad int, img []float64) {
	oh := ConvOut(h, kh, stride, pad)
	ow := ConvOut(w, kw, stride, pad)
	n := oh * ow
	if len(img) != c*h*w {
		panic(fmt.Sprintf("tensor: Col2Im img length %d, want %d", len(img), c*h*w))
	}
	row := 0
	for ch := 0; ch < c; ch++ {
		chImg := img[ch*h*w : (ch+1)*h*w]
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				src := cols[row*n : (row+1)*n]
				i := 0
				for oy := 0; oy < oh; oy++ {
					sy := oy*stride - pad + ky
					if sy < 0 || sy >= h {
						i += ow
						continue
					}
					srow := chImg[sy*w : (sy+1)*w]
					for ox := 0; ox < ow; ox++ {
						sx := ox*stride - pad + kx
						if sx >= 0 && sx < w {
							srow[sx] += src[i]
						}
						i++
					}
				}
				row++
			}
		}
	}
}

// Conv2D computes a batched 2-D cross-correlation. Input is [N,C,H,W],
// weight is [OC,C,KH,KW], bias (optional, may be nil) is [OC]. The result is
// [N,OC,OH,OW]. Samples are processed in parallel.
func Conv2D(input, weight, bias *Tensor, stride, pad int) *Tensor {
	n, c, h, w := input.shape[0], input.shape[1], input.shape[2], input.shape[3]
	oc, kc, kh, kw := weight.shape[0], weight.shape[1], weight.shape[2], weight.shape[3]
	if kc != c {
		panic(fmt.Sprintf("tensor: Conv2D channel mismatch input %v weight %v", input.shape, weight.shape))
	}
	oh := ConvOut(h, kh, stride, pad)
	ow := ConvOut(w, kw, stride, pad)
	out := New(n, oc, oh, ow)
	wmat := weight.Reshape(oc, c*kh*kw)
	colLen := c * kh * kw * oh * ow

	parallelFor(n, func(s int) {
		cols := make([]float64, colLen)
		Im2Col(input.data[s*c*h*w:(s+1)*c*h*w], c, h, w, kh, kw, stride, pad, cols)
		colT := FromSlice(cols, c*kh*kw, oh*ow)
		res := out.data[s*oc*oh*ow : (s+1)*oc*oh*ow]
		prod := FromSlice(res, oc, oh*ow)
		matMulRows(prod.data, wmat.data, colT.data, 0, oc, c*kh*kw, oh*ow, false)
		if bias != nil {
			for o := 0; o < oc; o++ {
				b := bias.data[o]
				seg := res[o*oh*ow : (o+1)*oh*ow]
				for i := range seg {
					seg[i] += b
				}
			}
		}
	})
	return out
}

// Conv2DBackward computes the gradients of Conv2D. Given dOut [N,OC,OH,OW]
// it returns dInput [N,C,H,W] and accumulates into dWeight [OC,C,KH,KW] and
// dBias [OC] (either may be nil to skip).
func Conv2DBackward(input, weight, dOut *Tensor, stride, pad int, dWeight, dBias *Tensor) *Tensor {
	n, c, h, w := input.shape[0], input.shape[1], input.shape[2], input.shape[3]
	oc, _, kh, kw := weight.shape[0], weight.shape[1], weight.shape[2], weight.shape[3]
	oh := ConvOut(h, kh, stride, pad)
	ow := ConvOut(w, kw, stride, pad)
	dIn := New(n, c, h, w)
	k := c * kh * kw
	m := oh * ow
	wmatT := Transpose2D(weight.Reshape(oc, k)) // [k, oc]

	var mu sync.Mutex
	parallelFor(n, func(s int) {
		cols := make([]float64, k*m)
		Im2Col(input.data[s*c*h*w:(s+1)*c*h*w], c, h, w, kh, kw, stride, pad, cols)
		dOutS := dOut.data[s*oc*m : (s+1)*oc*m]

		if dWeight != nil || dBias != nil {
			// dW_s = dOut_s [oc,m] @ cols^T [m,k]
			dws := make([]float64, oc*k)
			colsT := make([]float64, m*k)
			for r := 0; r < k; r++ {
				for cc := 0; cc < m; cc++ {
					colsT[cc*k+r] = cols[r*m+cc]
				}
			}
			matMulRows(dws, dOutS, colsT, 0, oc, m, k, false)
			mu.Lock()
			if dWeight != nil {
				for i, v := range dws {
					dWeight.data[i] += v
				}
			}
			if dBias != nil {
				for o := 0; o < oc; o++ {
					sum := 0.0
					for i := 0; i < m; i++ {
						sum += dOutS[o*m+i]
					}
					dBias.data[o] += sum
				}
			}
			mu.Unlock()
		}

		// dCols = W^T [k,oc] @ dOut_s [oc,m]
		dCols := make([]float64, k*m)
		matMulRows(dCols, wmatT.data, dOutS, 0, k, oc, m, false)
		Col2Im(dCols, c, h, w, kh, kw, stride, pad, dIn.data[s*c*h*w:(s+1)*c*h*w])
	})
	return dIn
}

// parallelFor runs f(i) for i in [0,n) across GOMAXPROCS goroutines.
func parallelFor(n int, f func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int, 1)
	go func() {
		for i := 0; i < n; i++ {
			next <- i
		}
		close(next)
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				f(i)
			}
		}()
	}
	wg.Wait()
}

// ParallelFor exposes the worker-pool loop for other packages that iterate
// over batch samples.
func ParallelFor(n int, f func(i int)) { parallelFor(n, f) }

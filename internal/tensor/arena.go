package tensor

import "sync"

// Scratch buffer ids. Each id names one grow-only buffer inside a Scratch;
// a kernel grabs the ids it needs so two buffers live in one scratch
// without aliasing (the conv backward uses four at once).
const (
	// ScratchCols holds the im2col lowering of one sample.
	ScratchCols = iota
	// ScratchColsT is a spare slot (the weight gradient once transposed
	// ScratchCols into it; the NT dot kernel made that pass unnecessary).
	ScratchColsT
	// ScratchDW is the per-worker dWeight accumulator.
	ScratchDW
	// ScratchDWS is the per-sample dWeight term before accumulation.
	ScratchDWS
	// ScratchDB is the per-worker dBias accumulator.
	ScratchDB
	// ScratchDCols holds the column gradient scattered by Col2Im.
	ScratchDCols
	// ScratchWT holds a transposed weight matrix shared read-only by all
	// workers of one dispatch.
	ScratchWT
	// ScratchA and ScratchB are general-purpose slots for callers outside
	// this package (nn.Linear reuses them for transpose scratch).
	ScratchA
	ScratchB

	numScratchBufs
)

// Scratch is one worker's set of grow-only float64 buffers. A Scratch is
// NOT safe for concurrent use: exactly one goroutine may call Buf/BufZero
// between Acquire and Release. Buffers only ever grow, so steady-state
// reuse performs zero allocations.
type Scratch struct {
	bufs [numScratchBufs][]float64
}

// Buf returns the id'th buffer resized to n elements. The contents are
// UNDEFINED (whatever a previous user left); call BufZero for cleared
// memory. The returned slice is valid until the next Buf call with the
// same id or the scratch's release.
func (s *Scratch) Buf(id, n int) []float64 {
	if cap(s.bufs[id]) < n {
		s.bufs[id] = make([]float64, n)
	}
	s.bufs[id] = s.bufs[id][:n]
	return s.bufs[id]
}

// BufZero returns the id'th buffer resized to n elements and zeroed.
func (s *Scratch) BufZero(id, n int) []float64 {
	b := s.Buf(id, n)
	for i := range b {
		b[i] = 0
	}
	return b
}

// Arena is a pool of Scratches shared by every dispatch in the process.
// Within one parallel dispatch the acquired slice is keyed by worker slot
// (ss[slot] belongs exclusively to that worker); across dispatches —
// including concurrent ones from different serve replicas — scratches are
// recycled through a free list, so the hot loop stops allocating after the
// first few iterations grow the buffers to their steady-state sizes.
type Arena struct {
	mu   sync.Mutex
	free []*Scratch
}

// Acquire returns n scratches for exclusive use, one per worker slot.
// Release them with Release when the dispatch has joined.
func (a *Arena) Acquire(n int) []*Scratch {
	out := make([]*Scratch, n)
	a.mu.Lock()
	avail := len(a.free)
	take := n
	if take > avail {
		take = avail
	}
	copy(out, a.free[avail-take:])
	a.free = a.free[:avail-take]
	a.mu.Unlock()
	for i := take; i < n; i++ {
		out[i] = &Scratch{}
	}
	return out
}

// Release returns acquired scratches to the arena. The caller must not
// touch them (or slices obtained from them) afterwards.
func (a *Arena) Release(ss []*Scratch) {
	a.mu.Lock()
	a.free = append(a.free, ss...)
	a.mu.Unlock()
}

// defaultArena backs the package-level conv/matmul kernels and the
// AcquireScratch/ReleaseScratch helpers other packages build on.
var defaultArena Arena

// AcquireScratch takes n per-worker scratches from the process-wide arena.
// Use Workers to size n for a batch dispatch, or pass 1 for a sequential
// caller; pair every call with ReleaseScratch.
func AcquireScratch(n int) []*Scratch { return defaultArena.Acquire(n) }

// ReleaseScratch returns scratches taken with AcquireScratch.
func ReleaseScratch(ss []*Scratch) { defaultArena.Release(ss) }

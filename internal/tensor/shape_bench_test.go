package tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkMatMulDetectorShapes times the production and reference kernels
// on the exact matmul shapes the 64×64 detector's conv layers lower to —
// the shapes DetectorInference spends its time in. Skewed cases (tiny n,
// tall m) behave very differently from square products, so kernel tuning
// is checked here rather than on 128³ alone.
func BenchmarkMatMulDetectorShapes(b *testing.B) {
	shapes := []struct{ m, k, n int }{
		{8, 27, 4096},   // b1: 3->8ch, 64x64
		{16, 72, 1024},  // b2
		{32, 144, 256},  // b3
		{64, 288, 64},   // b4
		{128, 576, 16},  // b5
		{256, 1152, 16}, // b6 (dominant)
		{64, 864, 64},   // h2pre
	}
	for _, s := range shapes {
		rng := rand.New(rand.NewSource(9))
		a := NewRandN(rng, 1, s.m, s.k)
		bb := NewRandN(rng, 1, s.n*s.k).Reshape(s.k, s.n)
		dst := New(s.m, s.n)
		for _, kern := range []string{"blocked", "packed", "ref"} {
			name := fmt.Sprintf("m%dk%dn%d/%s", s.m, s.k, s.n, kern)
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					switch kern {
					case "blocked":
						matMulRowsBlocked(dst.data, a.data, bb.data, 0, s.m, s.k, s.n, false)
					case "packed":
						for j := range dst.data {
							dst.data[j] = 0
						}
						matMulRowsPacked(dst.data, a.data, bb.data, 0, s.m, s.k, s.n)
					case "ref":
						matMulRowsRef(dst.data, a.data, bb.data, 0, s.m, s.k, s.n, false)
					}
				}
			})
		}
	}
}
